#include "cksafe/lattice/lattice.h"

#include <algorithm>
#include <functional>

#include "cksafe/util/string_util.h"

namespace cksafe {

GeneralizationLattice::GeneralizationLattice(std::vector<size_t> num_levels)
    : num_levels_(std::move(num_levels)) {
  CKSAFE_CHECK(!num_levels_.empty());
  for (size_t n : num_levels_) CKSAFE_CHECK_GE(n, 1u);
}

GeneralizationLattice GeneralizationLattice::FromQuasiIdentifiers(
    const std::vector<QuasiIdentifier>& qis) {
  std::vector<size_t> levels;
  levels.reserve(qis.size());
  for (const auto& qi : qis) {
    CKSAFE_CHECK(qi.hierarchy != nullptr);
    levels.push_back(qi.hierarchy->num_levels());
  }
  return GeneralizationLattice(std::move(levels));
}

uint64_t GeneralizationLattice::num_nodes() const {
  uint64_t n = 1;
  for (size_t levels : num_levels_) n *= levels;
  return n;
}

LatticeNode GeneralizationLattice::Bottom() const {
  return LatticeNode(num_levels_.size(), 0);
}

LatticeNode GeneralizationLattice::Top() const {
  LatticeNode top(num_levels_.size());
  for (size_t i = 0; i < num_levels_.size(); ++i) {
    top[i] = static_cast<int>(num_levels_[i]) - 1;
  }
  return top;
}

size_t GeneralizationLattice::Height(const LatticeNode& node) const {
  CKSAFE_CHECK(Validate(node).ok());
  size_t h = 0;
  for (int level : node) h += static_cast<size_t>(level);
  return h;
}

size_t GeneralizationLattice::MaxHeight() const {
  size_t h = 0;
  for (size_t levels : num_levels_) h += levels - 1;
  return h;
}

bool GeneralizationLattice::Leq(const LatticeNode& a,
                                const LatticeNode& b) const {
  CKSAFE_CHECK(Validate(a).ok());
  CKSAFE_CHECK(Validate(b).ok());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

std::vector<LatticeNode> GeneralizationLattice::Parents(
    const LatticeNode& node) const {
  CKSAFE_CHECK(Validate(node).ok());
  std::vector<LatticeNode> out;
  for (size_t i = 0; i < node.size(); ++i) {
    if (node[i] + 1 < static_cast<int>(num_levels_[i])) {
      LatticeNode parent = node;
      ++parent[i];
      out.push_back(std::move(parent));
    }
  }
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::Children(
    const LatticeNode& node) const {
  CKSAFE_CHECK(Validate(node).ok());
  std::vector<LatticeNode> out;
  for (size_t i = 0; i < node.size(); ++i) {
    if (node[i] > 0) {
      LatticeNode child = node;
      --child[i];
      out.push_back(std::move(child));
    }
  }
  return out;
}

uint64_t GeneralizationLattice::Encode(const LatticeNode& node) const {
  CKSAFE_CHECK(Validate(node).ok());
  uint64_t code = 0;
  for (size_t i = 0; i < node.size(); ++i) {
    code = code * num_levels_[i] + static_cast<uint64_t>(node[i]);
  }
  return code;
}

LatticeNode GeneralizationLattice::Decode(uint64_t code) const {
  LatticeNode node(num_levels_.size());
  for (size_t i = num_levels_.size(); i-- > 0;) {
    node[i] = static_cast<int>(code % num_levels_[i]);
    code /= num_levels_[i];
  }
  CKSAFE_CHECK_EQ(code, 0u);
  return node;
}

std::vector<LatticeNode> GeneralizationLattice::NodesAtHeight(
    size_t height) const {
  std::vector<LatticeNode> out;
  LatticeNode node(num_levels_.size(), 0);
  // Depth-first enumeration with remaining-height pruning.
  std::function<void(size_t, size_t)> rec = [&](size_t attr, size_t remaining) {
    if (attr == num_levels_.size()) {
      if (remaining == 0) out.push_back(node);
      return;
    }
    size_t max_rest = 0;
    for (size_t j = attr + 1; j < num_levels_.size(); ++j) {
      max_rest += num_levels_[j] - 1;
    }
    const size_t cap = std::min(remaining, num_levels_[attr] - 1);
    for (size_t level = 0; level <= cap; ++level) {
      if (remaining - level > max_rest) continue;
      node[attr] = static_cast<int>(level);
      rec(attr + 1, remaining - level);
    }
    node[attr] = 0;
  };
  rec(0, height);
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::AllNodes() const {
  std::vector<LatticeNode> out;
  for (size_t h = 0; h <= MaxHeight(); ++h) {
    std::vector<LatticeNode> level = NodesAtHeight(h);
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

std::vector<LatticeNode> GeneralizationLattice::CanonicalChain() const {
  std::vector<LatticeNode> chain;
  LatticeNode node = Bottom();
  chain.push_back(node);
  for (size_t i = 0; i < num_levels_.size(); ++i) {
    while (node[i] + 1 < static_cast<int>(num_levels_[i])) {
      ++node[i];
      chain.push_back(node);
    }
  }
  return chain;
}

std::vector<LatticeNode> GeneralizationLattice::RandomChain(Rng* rng) const {
  CKSAFE_CHECK(rng != nullptr);
  std::vector<LatticeNode> chain;
  LatticeNode node = Bottom();
  chain.push_back(node);
  const LatticeNode top = Top();
  while (node != top) {
    std::vector<size_t> raisable;
    for (size_t i = 0; i < node.size(); ++i) {
      if (node[i] < top[i]) raisable.push_back(i);
    }
    const size_t pick = raisable[rng->NextBelow(raisable.size())];
    ++node[pick];
    chain.push_back(node);
  }
  return chain;
}

Status GeneralizationLattice::Validate(const LatticeNode& node) const {
  if (node.size() != num_levels_.size()) {
    return Status::InvalidArgument(
        StrFormat("node has %zu levels, lattice has %zu attributes",
                  node.size(), num_levels_.size()));
  }
  for (size_t i = 0; i < node.size(); ++i) {
    if (node[i] < 0 || node[i] >= static_cast<int>(num_levels_[i])) {
      return Status::OutOfRange(
          StrFormat("level %d out of range for attribute %zu", node[i], i));
    }
  }
  return Status::OK();
}

}  // namespace cksafe
