#include "cksafe/experiments/figures.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"

namespace cksafe {

StatusOr<Fig5Result> RunFigure5(const Table& table,
                                const std::vector<QuasiIdentifier>& qis,
                                const LatticeNode& node,
                                size_t sensitive_column, size_t max_k) {
  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeAtNode(table, qis, node, sensitive_column));
  // One forward sweep yields both curves for every k (the profile path).
  DisclosureAnalyzer analyzer(bucketization);
  const DisclosureProfile profile = analyzer.Profile(max_k);

  Fig5Result result;
  result.node = node;
  result.num_buckets = bucketization.num_buckets();
  for (size_t k = 0; k <= max_k; ++k) {
    result.rows.push_back(Fig5Row{k, profile.implication[k],
                                  profile.negation[k]});
  }
  return result;
}

StatusOr<Fig6Result> RunFigure6(const Table& table,
                                const std::vector<QuasiIdentifier>& qis,
                                size_t sensitive_column,
                                std::vector<size_t> ks) {
  CKSAFE_CHECK(!ks.empty());
  const size_t max_k = *std::max_element(ks.begin(), ks.end());
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);

  Fig6Result result;
  result.ks = std::move(ks);

  // One shared cache across all 72 tables: bucket histograms recur heavily
  // between neighbouring lattice nodes.
  DisclosureCache cache;
  for (const LatticeNode& node : lattice.AllNodes()) {
    CKSAFE_ASSIGN_OR_RETURN(
        Bucketization bucketization,
        BucketizeAtNode(table, qis, node, sensitive_column));
    DisclosureAnalyzer analyzer(bucketization, &cache);

    Fig6TableResult entry;
    entry.node = node;
    entry.num_buckets = bucketization.num_buckets();
    entry.min_entropy_nats = bucketization.MinBucketEntropyNats();
    const DisclosureProfile profile = analyzer.Profile(max_k);
    for (size_t k : result.ks) {
      entry.disclosure.push_back(profile.implication[k]);
      entry.negation_disclosure.push_back(profile.negation[k]);
    }
    result.tables.push_back(std::move(entry));
  }

  std::sort(result.tables.begin(), result.tables.end(),
            [](const Fig6TableResult& a, const Fig6TableResult& b) {
              return a.min_entropy_nats < b.min_entropy_nats;
            });
  return result;
}

std::vector<Fig6SeriesPoint> AggregateFig6Series(const Fig6Result& result,
                                                 size_t k_index,
                                                 double bin_width,
                                                 bool use_negation) {
  CKSAFE_CHECK_LT(k_index, result.ks.size());
  CKSAFE_CHECK_GT(bin_width, 0.0);
  std::map<int64_t, Fig6SeriesPoint> bins;
  for (const Fig6TableResult& entry : result.tables) {
    const int64_t bin =
        static_cast<int64_t>(std::llround(entry.min_entropy_nats / bin_width));
    auto it = bins.find(bin);
    const double d = use_negation ? entry.negation_disclosure[k_index]
                                  : entry.disclosure[k_index];
    if (it == bins.end()) {
      bins.emplace(bin, Fig6SeriesPoint{entry.min_entropy_nats, d});
    } else {
      it->second.min_disclosure = std::min(it->second.min_disclosure, d);
    }
  }
  std::vector<Fig6SeriesPoint> series;
  series.reserve(bins.size());
  for (const auto& [bin, point] : bins) series.push_back(point);
  return series;
}

}  // namespace cksafe
