#include "cksafe/foundry/fingerprint.h"

namespace cksafe {

uint64_t FingerprintTable(const Table& table) {
  Fingerprint fp;
  fp.MixSize(table.num_rows());
  fp.MixSize(table.num_columns());
  for (size_t col = 0; col < table.num_columns(); ++col) {
    fp.MixSize(table.schema().attribute(col).domain_size());
  }
  for (PersonId row = 0; row < table.num_rows(); ++row) {
    for (size_t col = 0; col < table.num_columns(); ++col) {
      fp.MixInt32(table.at(row, col));
    }
  }
  return fp.digest();
}

uint64_t FingerprintHierarchy(const AttributeHierarchy& hierarchy) {
  Fingerprint fp;
  const AttributeDef& attribute = hierarchy.attribute();
  const int32_t min_code =
      attribute.is_categorical() ? 0 : attribute.min_value();
  const int32_t max_code =
      attribute.is_categorical()
          ? static_cast<int32_t>(attribute.domain_size()) - 1
          : attribute.max_value();
  fp.MixSize(hierarchy.num_levels());
  fp.MixSize(attribute.domain_size());
  for (size_t level = 0; level < hierarchy.num_levels(); ++level) {
    fp.MixSize(hierarchy.NumGroups(level));
    for (int32_t code = min_code; code <= max_code; ++code) {
      fp.MixInt32(hierarchy.GroupOf(code, level));
    }
  }
  return fp.digest();
}

}  // namespace cksafe
