#include "cksafe/foundry/hierarchy_foundry.h"

#include <string>
#include <utility>

#include "cksafe/util/random.h"
#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

Status ValidateConfig(const HierarchyFoundryConfig& config) {
  if (config.fanout < 2) {
    return Status::InvalidArgument("hierarchy fanout must be >= 2");
  }
  if (config.max_levels < 1) {
    return Status::InvalidArgument("hierarchy max_levels must be >= 1");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const AttributeHierarchy>> MakeIntervalLadder(
    const AttributeDef& attribute, const HierarchyFoundryConfig& config) {
  const int64_t domain = static_cast<int64_t>(attribute.domain_size());
  std::vector<int32_t> widths{1};
  int64_t width = 1;
  for (size_t level = 1; level < config.max_levels; ++level) {
    width *= static_cast<int64_t>(config.fanout);
    if (width >= domain) break;  // the suppressed top covers the rest
    widths.push_back(static_cast<int32_t>(width));
  }
  CKSAFE_ASSIGN_OR_RETURN(
      IntervalHierarchy ladder,
      IntervalHierarchy::Create(attribute, std::move(widths),
                                /*add_suppressed_top=*/true));
  return ShareHierarchy(std::move(ladder));
}

StatusOr<std::shared_ptr<const AttributeHierarchy>> MakeTreeLadder(
    const AttributeDef& attribute, const HierarchyFoundryConfig& config) {
  // Shuffle once, then chunk `fanout` groups at a time per level: chunks
  // of chunks nest, which is exactly the TreeHierarchy invariant.
  std::vector<std::string> order = attribute.labels();
  Rng rng(config.seed);
  rng.Shuffle(&order);
  std::vector<std::vector<std::string>> chunks;
  chunks.reserve(order.size());
  for (std::string& label : order) {
    chunks.push_back({std::move(label)});
  }

  std::vector<std::vector<TreeHierarchy::Group>> levels;
  size_t level_no = 0;
  while (chunks.size() > 1 && level_no < config.max_levels) {
    ++level_no;
    std::vector<std::vector<std::string>> merged;
    std::vector<TreeHierarchy::Group> groups;
    for (size_t begin = 0; begin < chunks.size(); begin += config.fanout) {
      std::vector<std::string> members;
      const size_t end = std::min(chunks.size(), begin + config.fanout);
      for (size_t i = begin; i < end; ++i) {
        members.insert(members.end(), chunks[i].begin(), chunks[i].end());
      }
      groups.push_back(TreeHierarchy::Group{
          StrFormat("L%zuG%zu", level_no, merged.size()), members});
      merged.push_back(std::move(members));
    }
    levels.push_back(std::move(groups));
    chunks = std::move(merged);
  }
  if (chunks.size() > 1) {
    // Depth cap reached before the tree closed: append full suppression.
    std::vector<std::string> all;
    for (const auto& chunk : chunks) {
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    levels.push_back({TreeHierarchy::Group{"*", std::move(all)}});
  }
  CKSAFE_ASSIGN_OR_RETURN(TreeHierarchy tree,
                          TreeHierarchy::Create(attribute, std::move(levels)));
  return ShareHierarchy(std::move(tree));
}

}  // namespace

StatusOr<std::shared_ptr<const AttributeHierarchy>>
HierarchyFoundry::MakeLadder(const AttributeDef& attribute,
                             const HierarchyFoundryConfig& config) {
  CKSAFE_RETURN_IF_ERROR(ValidateConfig(config));
  if (attribute.is_categorical()) {
    return MakeTreeLadder(attribute, config);
  }
  return MakeIntervalLadder(attribute, config);
}

StatusOr<std::vector<QuasiIdentifier>> HierarchyFoundry::MakeQuasiIdentifiers(
    const Table& table, size_t sensitive_column,
    const HierarchyFoundryConfig& config) {
  CKSAFE_RETURN_IF_ERROR(ValidateConfig(config));
  if (sensitive_column >= table.num_columns()) {
    return Status::OutOfRange("sensitive column out of range");
  }
  std::vector<QuasiIdentifier> qis;
  for (size_t column = 0; column < table.num_columns(); ++column) {
    if (column == sensitive_column) continue;
    HierarchyFoundryConfig per_column = config;
    per_column.seed = config.seed + column;
    CKSAFE_ASSIGN_OR_RETURN(
        std::shared_ptr<const AttributeHierarchy> ladder,
        MakeLadder(table.schema().attribute(column), per_column));
    qis.push_back(QuasiIdentifier{column, std::move(ladder)});
  }
  return qis;
}

}  // namespace cksafe
