#include "cksafe/foundry/delta_foundry.h"

#include <algorithm>

#include "cksafe/foundry/fingerprint.h"
#include "cksafe/util/random.h"

namespace cksafe {
namespace {

// The generator's simulated state: per-bucket histograms, kept exactly in
// step with what the ops would do to an IncrementalAnalyzer.
struct SimState {
  std::vector<std::vector<uint32_t>> histograms;
  std::vector<uint32_t> sizes;

  size_t num_buckets() const { return histograms.size(); }
};

std::vector<int32_t> SampleValues(const WeightedIndexSampler& sampler,
                                  Rng* rng, size_t count) {
  std::vector<int32_t> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<int32_t>(sampler.Sample(rng)));
  }
  return values;
}

DeltaOp MakeAddBucket(SimState* sim, const WeightedIndexSampler& sampler,
                      Rng* rng, size_t domain, size_t max_batch) {
  const size_t count = 1 + rng->NextBelow(max_batch);
  DeltaOp op;
  op.kind = DeltaKind::kAddBucket;
  op.values = SampleValues(sampler, rng, count);
  std::vector<uint32_t> histogram(domain, 0);
  for (int32_t v : op.values) ++histogram[static_cast<size_t>(v)];
  sim->histograms.push_back(std::move(histogram));
  sim->sizes.push_back(static_cast<uint32_t>(count));
  return op;
}

// Removes `count` tuples from bucket `b`, choosing each victim uniformly
// among the tuples still present (weighted walk over the histogram).
DeltaOp MakeRemoveTuples(SimState* sim, Rng* rng, size_t b, size_t count) {
  DeltaOp op;
  op.kind = DeltaKind::kRemoveTuples;
  op.bucket = b;
  std::vector<uint32_t>& histogram = sim->histograms[b];
  for (size_t i = 0; i < count; ++i) {
    uint64_t r = rng->NextBelow(sim->sizes[b]);
    for (size_t code = 0; code < histogram.size(); ++code) {
      if (r < histogram[code]) {
        op.values.push_back(static_cast<int32_t>(code));
        --histogram[code];
        --sim->sizes[b];
        break;
      }
      r -= histogram[code];
    }
  }
  return op;
}

}  // namespace

StatusOr<DeltaStream> DeltaFoundry::Generate(const DeltaFoundryConfig& config) {
  if (config.domain == 0) {
    return Status::InvalidArgument("delta stream needs a non-empty domain");
  }
  if (config.min_buckets < 1 || config.initial_buckets < config.min_buckets) {
    return Status::InvalidArgument(
        "delta stream needs initial_buckets >= min_buckets >= 1");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("delta stream needs max_batch >= 1");
  }
  if (config.churn_percent > 90) {
    return Status::InvalidArgument("churn_percent must be <= 90");
  }
  CKSAFE_ASSIGN_OR_RETURN(
      std::vector<uint64_t> weights,
      SkewWeights(config.domain, config.skew, config.skew_param));
  CKSAFE_ASSIGN_OR_RETURN(WeightedIndexSampler sampler,
                          WeightedIndexSampler::Create(weights));

  Rng rng(config.seed);
  SimState sim;
  DeltaStream stream;
  for (size_t b = 0; b < config.initial_buckets; ++b) {
    stream.initial.push_back(MakeAddBucket(&sim, sampler, &rng, config.domain,
                                           config.max_batch));
  }

  for (size_t i = 0; i < config.num_ops; ++i) {
    const bool want_removal = rng.NextBelow(100) < config.churn_percent;
    if (want_removal) {
      // Shrinkable buckets can lose tuples and still hold one; whole
      // buckets can go once the floor allows it.
      std::vector<size_t> shrinkable;
      for (size_t b = 0; b < sim.num_buckets(); ++b) {
        if (sim.sizes[b] >= 2) shrinkable.push_back(b);
      }
      const bool can_drop_bucket = sim.num_buckets() > config.min_buckets;
      if (can_drop_bucket && (shrinkable.empty() || rng.NextBelow(5) == 0)) {
        const size_t b = rng.NextBelow(sim.num_buckets());
        DeltaOp op;
        op.kind = DeltaKind::kRemoveBucket;
        op.bucket = b;
        sim.histograms.erase(sim.histograms.begin() + b);
        sim.sizes.erase(sim.sizes.begin() + b);
        stream.ops.push_back(std::move(op));
        continue;
      }
      if (!shrinkable.empty()) {
        const size_t b = shrinkable[rng.NextBelow(shrinkable.size())];
        const size_t removable =
            std::min<size_t>(sim.sizes[b] - 1, config.max_batch);
        const size_t count = 1 + rng.NextBelow(removable);
        stream.ops.push_back(MakeRemoveTuples(&sim, &rng, b, count));
        continue;
      }
      // Nothing to remove; fall through to an insert.
    }
    if (sim.num_buckets() == 0 || rng.NextBelow(100) < 35) {
      stream.ops.push_back(MakeAddBucket(&sim, sampler, &rng, config.domain,
                                         config.max_batch));
    } else {
      const size_t b = rng.NextBelow(sim.num_buckets());
      const size_t count = 1 + rng.NextBelow(config.max_batch);
      DeltaOp op;
      op.kind = DeltaKind::kAddTuples;
      op.bucket = b;
      op.values = SampleValues(sampler, &rng, count);
      for (int32_t v : op.values) {
        ++sim.histograms[b][static_cast<size_t>(v)];
        ++sim.sizes[b];
      }
      stream.ops.push_back(std::move(op));
    }
  }
  return stream;
}

void ApplyDelta(const DeltaOp& op, IncrementalAnalyzer* analyzer) {
  switch (op.kind) {
    case DeltaKind::kAddBucket:
      analyzer->AddBucket(op.values);
      break;
    case DeltaKind::kAddTuples:
      analyzer->AddTuples(op.bucket, op.values);
      break;
    case DeltaKind::kRemoveTuples:
      analyzer->RemoveTuples(op.bucket, op.values);
      break;
    case DeltaKind::kRemoveBucket:
      analyzer->RemoveBucket(op.bucket);
      break;
  }
}

uint64_t FingerprintDeltaStream(const DeltaStream& stream) {
  Fingerprint fp;
  const auto mix_ops = [&fp](const std::vector<DeltaOp>& ops) {
    fp.MixSize(ops.size());
    for (const DeltaOp& op : ops) {
      fp.MixUint64(static_cast<uint64_t>(op.kind));
      fp.MixSize(op.bucket);
      fp.MixSize(op.values.size());
      for (int32_t v : op.values) fp.MixInt32(v);
    }
  };
  mix_ops(stream.initial);
  mix_ops(stream.ops);
  return fp.digest();
}

}  // namespace cksafe
