#include "cksafe/foundry/table_foundry.h"

#include <algorithm>

#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

// Largest cluster count whose top weight 2^(n-1) keeps the cumulative sum
// comfortably inside uint64 for any realistic domain size.
constexpr uint32_t kMaxClusters = 48;

// Zipf weights are floor(kZipfScale / (i + 1)^e), clamped below at 1.
constexpr uint64_t kZipfScale = 1ULL << 32;

StatusOr<AttributeDef> MakeAttribute(const ColumnSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("foundry column needs a name");
  }
  if (spec.domain == 0) {
    return Status::InvalidArgument("foundry column " + spec.name +
                                   " has an empty domain");
  }
  if (spec.categorical) {
    std::vector<std::string> labels;
    labels.reserve(spec.domain);
    for (size_t i = 0; i < spec.domain; ++i) {
      labels.push_back(spec.name + "_v" + std::to_string(i));
    }
    return AttributeDef::Categorical(spec.name, std::move(labels));
  }
  if (spec.domain > size_t{1} << 24) {
    return Status::InvalidArgument("foundry numeric domain too large: " +
                                   spec.name);
  }
  return AttributeDef::Numeric(spec.name, 0,
                               static_cast<int32_t>(spec.domain) - 1);
}

}  // namespace

StatusOr<WeightedIndexSampler> WeightedIndexSampler::Create(
    const std::vector<uint64_t>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("sampler needs at least one weight");
  }
  WeightedIndexSampler sampler;
  sampler.cumulative_.reserve(weights.size());
  uint64_t total = 0;
  for (uint64_t w : weights) {
    if (w > UINT64_MAX - total) {
      return Status::InvalidArgument("sampler weights overflow uint64");
    }
    total += w;
    sampler.cumulative_.push_back(total);
  }
  if (total == 0) {
    return Status::InvalidArgument("sampler weights sum to zero");
  }
  return sampler;
}

size_t WeightedIndexSampler::Sample(Rng* rng) const {
  const uint64_t r = rng->NextBelow(cumulative_.back());
  // First index whose cumulative weight exceeds r; zero-weight entries
  // (equal adjacent cumulatives) are never selected.
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), r);
  return static_cast<size_t>(it - cumulative_.begin());
}

StatusOr<std::vector<uint64_t>> SkewWeights(size_t domain, ValueSkew skew,
                                            uint32_t skew_param) {
  if (domain == 0) {
    return Status::InvalidArgument("skew profile needs a non-empty domain");
  }
  std::vector<uint64_t> weights(domain, 1);
  switch (skew) {
    case ValueSkew::kUniform:
      break;
    case ValueSkew::kZipf: {
      if (skew_param < 1 || skew_param > 16) {
        return Status::InvalidArgument(
            StrFormat("Zipf exponent must be in [1, 16], got %u", skew_param));
      }
      for (size_t i = 0; i < domain; ++i) {
        // Integer (i + 1)^e in 128 bits; once the power exceeds the scale
        // the weight has saturated at the floor of 1.
        unsigned __int128 power = 1;
        bool saturated = false;
        for (uint32_t e = 0; e < skew_param; ++e) {
          power *= static_cast<unsigned __int128>(i + 1);
          if (power > kZipfScale) {
            saturated = true;
            break;
          }
        }
        weights[i] =
            saturated ? 1 : std::max<uint64_t>(
                                1, kZipfScale / static_cast<uint64_t>(power));
      }
      break;
    }
    case ValueSkew::kClustered: {
      if (skew_param < 1 || skew_param > kMaxClusters) {
        return Status::InvalidArgument(
            StrFormat("cluster count must be in [1, %u], got %u", kMaxClusters,
                      skew_param));
      }
      const size_t clusters = std::min<size_t>(skew_param, domain);
      for (size_t i = 0; i < domain; ++i) {
        // Contiguous clusters; cluster j carries half the mass of j - 1.
        const size_t cluster = i * clusters / domain;
        weights[i] = uint64_t{1} << (clusters - 1 - cluster);
      }
      break;
    }
  }
  return weights;
}

StatusOr<Table> TableFoundry::Generate(const TableFoundryConfig& config) {
  if (config.num_rows == 0) {
    return Status::InvalidArgument("foundry table needs at least one row");
  }
  if (config.quasi_identifiers.empty()) {
    return Status::InvalidArgument(
        "foundry table needs at least one quasi-identifier column");
  }
  std::vector<AttributeDef> attributes;
  std::vector<WeightedIndexSampler> samplers;
  std::vector<ColumnSpec> specs = config.quasi_identifiers;
  specs.push_back(config.sensitive);
  for (const ColumnSpec& spec : specs) {
    CKSAFE_ASSIGN_OR_RETURN(AttributeDef attribute, MakeAttribute(spec));
    attributes.push_back(std::move(attribute));
    CKSAFE_ASSIGN_OR_RETURN(
        std::vector<uint64_t> weights,
        SkewWeights(spec.domain, spec.skew, spec.skew_param));
    CKSAFE_ASSIGN_OR_RETURN(WeightedIndexSampler sampler,
                            WeightedIndexSampler::Create(weights));
    samplers.push_back(std::move(sampler));
  }

  Table table{Schema(std::move(attributes))};
  Rng rng(config.seed);
  const size_t sensitive_column = specs.size() - 1;
  const size_t sensitive_domain = config.sensitive.domain;
  std::vector<int32_t> cells(specs.size());
  for (size_t row = 0; row < config.num_rows; ++row) {
    for (size_t col = 0; col < specs.size(); ++col) {
      cells[col] = static_cast<int32_t>(samplers[col].Sample(&rng));
    }
    if (config.correlate_sensitive) {
      cells[sensitive_column] = static_cast<int32_t>(
          (static_cast<size_t>(cells[sensitive_column]) +
           static_cast<size_t>(cells[0])) %
          sensitive_domain);
    }
    CKSAFE_RETURN_IF_ERROR(table.AppendRow(cells));
  }
  return table;
}

}  // namespace cksafe
