#include "cksafe/foundry/scenario.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/serve/serving_engine.h"
#include "cksafe/stream/multi_policy_publisher.h"
#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

constexpr double kOracleTol = 1e-9;

size_t ScaleCount(size_t n, double scale, size_t floor) {
  const double scaled = static_cast<double>(n) * scale;
  if (scaled <= static_cast<double>(floor)) return floor;
  return static_cast<size_t>(scaled);
}

// Rows [begin, end) of `table` as AddBatch-ready cell vectors.
std::vector<std::vector<int32_t>> RowCells(const Table& table, size_t begin,
                                           size_t end) {
  std::vector<std::vector<int32_t>> rows;
  rows.reserve(end - begin);
  for (size_t row = begin; row < end; ++row) {
    std::vector<int32_t> cells(table.num_columns());
    for (size_t col = 0; col < table.num_columns(); ++col) {
      cells[col] = table.at(static_cast<PersonId>(row), col);
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

Query MakeQuery(Rng* rng, const std::vector<ScenarioPolicy>& policies,
                const QueryMixConfig& mix) {
  Query query;
  query.tenant = policies[rng->NextBelow(policies.size())].tenant;
  query.k = rng->NextBelow(mix.max_k + 1);
  switch (rng->NextBelow(4)) {
    case 0:
      query.kind = QueryKind::kIsCkSafe;
      query.c = 0.3 + 0.1 * static_cast<double>(rng->NextBelow(7));
      break;
    case 1:
      query.kind = QueryKind::kDisclosure;
      break;
    case 2:
      query.kind = QueryKind::kProfileAtK;
      break;
    default:
      query.kind = QueryKind::kPerBucket;
      query.bucket = rng->NextBelow(std::max<size_t>(1, mix.max_bucket_probe));
      break;
  }
  return query;
}

// One served query and the answer the router produced for it.
struct Record {
  Query query;
  QueryAnswer answer;
};

using SnapshotRegistry =
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<const ReleaseSnapshot>>;

// Post-hoc bit-identity verification: every answer must equal, with exact
// double equality, a fresh synchronous DisclosureAnalyzer over the ONE
// snapshot the answer names (the serve layer's RCU contract).
Status VerifyRecords(const std::string& scenario,
                     const std::vector<Record>& records,
                     const SnapshotRegistry& registry,
                     ScenarioReport* report) {
  std::map<std::pair<std::string, uint64_t>,
           std::unique_ptr<DisclosureAnalyzer>>
      fresh;
  for (const Record& record : records) {
    const Query& query = record.query;
    const QueryAnswer& answer = record.answer;
    const auto key = std::make_pair(query.tenant, answer.snapshot_sequence);
    const auto snapshot_it = registry.find(key);
    if (snapshot_it == registry.end()) {
      return Status::Internal(StrFormat(
          "scenario %s: answer names unpublished snapshot %llu of tenant %s",
          scenario.c_str(),
          static_cast<unsigned long long>(answer.snapshot_sequence),
          query.tenant.c_str()));
    }
    auto& analyzer = fresh[key];
    if (analyzer == nullptr) {
      analyzer = std::make_unique<DisclosureAnalyzer>(
          snapshot_it->second->bucketization);
    }
    bool match = true;
    switch (query.kind) {
      case QueryKind::kIsCkSafe: {
        const WorstCaseDisclosure worst =
            analyzer->MaxDisclosureImplications(query.k);
        match = answer.safe == IsSafeLogRatio(worst.log_r_min, query.c) &&
                answer.disclosure == worst.disclosure &&
                answer.log_r == worst.log_r_min;
        break;
      }
      case QueryKind::kDisclosure: {
        const WorstCaseDisclosure worst =
            analyzer->MaxDisclosureImplications(query.k);
        match = answer.disclosure == worst.disclosure &&
                answer.log_r == worst.log_r_min;
        break;
      }
      case QueryKind::kProfileAtK: {
        const DisclosureProfile profile = analyzer->Profile(query.k);
        match = answer.disclosure == profile.implication[query.k] &&
                answer.negation == profile.negation[query.k];
        break;
      }
      case QueryKind::kPerBucket:
        match = answer.disclosure ==
                analyzer->PerBucketDisclosure(query.k)[query.bucket];
        break;
    }
    if (!match) {
      return Status::Internal(StrFormat(
          "scenario %s: answer diverged from fresh analyzer (tenant %s, "
          "snapshot %llu)",
          scenario.c_str(), query.tenant.c_str(),
          static_cast<unsigned long long>(answer.snapshot_sequence)));
    }
    ++report->answers_verified;
  }
  return Status::OK();
}

// Exact-oracle pass over every published snapshot small enough to
// enumerate: the DP curves must match world enumeration to 1e-9.
Status CheckExactOracle(const ScenarioConfig& config,
                        const SnapshotRegistry& registry,
                        ScenarioReport* report) {
  for (const auto& [key, snapshot] : registry) {
    if (snapshot->bucketization.num_tuples() > config.exact_max_tuples) {
      continue;
    }
    auto oracle = ExactEngine::Create(snapshot->bucketization);
    if (!oracle.ok()) continue;  // world count still too large
    DisclosureAnalyzer analyzer(snapshot->bucketization);
    const size_t max_k = std::min<size_t>(2, config.queries.max_k);
    const DisclosureProfile profile = analyzer.Profile(max_k);
    for (size_t k = 0; k <= max_k; ++k) {
      CKSAFE_ASSIGN_OR_RETURN(
          ExactDisclosure brute,
          oracle->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true));
      if (std::fabs(profile.implication[k] - brute.disclosure) > kOracleTol) {
        return Status::Internal(StrFormat(
            "scenario %s: implication curve diverges from the exact oracle "
            "at k=%zu (tenant %s)",
            config.name.c_str(), k, key.first.c_str()));
      }
      auto brute_neg = oracle->MaxDisclosureNegations(k);
      if (brute_neg.ok() &&
          std::fabs(profile.negation[k] - brute_neg->disclosure) >
              kOracleTol) {
        return Status::Internal(StrFormat(
            "scenario %s: negation curve diverges from the exact oracle at "
            "k=%zu (tenant %s)",
            config.name.c_str(), k, key.first.c_str()));
      }
      ++report->exact_checks;
    }
  }
  if (report->exact_checks == 0) {
    return Status::Internal(
        "scenario " + config.name +
        ": check_exact is set but no published snapshot was small enough "
        "for the exact oracle");
  }
  return Status::OK();
}

// Delta-stream leg: every op's profile must be bit-identical to a fresh
// analyzer over the materialized state (the stream/ contract).
Status RunDeltaLeg(const ScenarioConfig& config, double scale,
                   ScenarioReport* report) {
  DeltaFoundryConfig delta_config = config.deltas;
  delta_config.num_ops = ScaleCount(config.delta_ops, scale, 1);
  CKSAFE_ASSIGN_OR_RETURN(DeltaStream stream,
                          DeltaFoundry::Generate(delta_config));
  IncrementalAnalyzer incremental(delta_config.domain);
  const auto check = [&]() -> Status {
    const DisclosureProfile live =
        incremental.Profile(config.delta_profile_k);
    const Bucketization current = incremental.CurrentBucketization();
    DisclosureAnalyzer fresh(current);
    const DisclosureProfile reference =
        fresh.Profile(config.delta_profile_k);
    if (live.implication != reference.implication ||
        live.implication_log_r != reference.implication_log_r ||
        live.negation != reference.negation) {
      return Status::Internal(StrFormat(
          "scenario %s: incremental profile diverged from a fresh analyzer "
          "after %llu deltas",
          config.name.c_str(),
          static_cast<unsigned long long>(report->delta_ops_applied)));
    }
    ++report->delta_profiles_verified;
    return Status::OK();
  };
  for (const DeltaOp& op : stream.initial) {
    ApplyDelta(op, &incremental);
    ++report->delta_ops_applied;
  }
  CKSAFE_RETURN_IF_ERROR(check());
  for (const DeltaOp& op : stream.ops) {
    ApplyDelta(op, &incremental);
    ++report->delta_ops_applied;
    CKSAFE_RETURN_IF_ERROR(check());
  }
  return Status::OK();
}

// Publishes one PublishAll round's tenant releases into the engine and
// the registry.
Status PublishRound(const std::vector<TenantRelease>& releases,
                    size_t num_rows, ServingEngine* engine,
                    SnapshotRegistry* registry, ScenarioReport* report) {
  for (const TenantRelease& release : releases) {
    if (!release.release.ok()) continue;  // unsatisfiable policy: skipped
    CKSAFE_ASSIGN_OR_RETURN(
        const auto snapshot,
        engine->PublishRelease(release.tenant, *release.release, num_rows));
    (*registry)[{release.tenant, snapshot->sequence}] = snapshot;
    ++report->releases;
  }
  return Status::OK();
}

}  // namespace

std::string ScenarioReport::ToString() const {
  return StrFormat(
      "%zu releases, %zu answers verified (%zu query errors), %zu exact "
      "checks, %zu deltas (%zu profiles verified)",
      releases, answers_verified, query_errors, exact_checks,
      delta_ops_applied, delta_profiles_verified);
}

StatusOr<ScenarioReport> ScenarioRunner::Run(const ScenarioConfig& config,
                                             double scale) {
  if (config.policies.empty()) {
    return Status::InvalidArgument("scenario " + config.name +
                                   " declares no tenant policies");
  }
  if (config.release_batches < 1) {
    return Status::InvalidArgument("scenario " + config.name +
                                   " needs release_batches >= 1");
  }
  if (scale <= 0.0) {
    return Status::InvalidArgument("scenario scale must be > 0");
  }
  ScenarioReport report;

  // --- Generate the world ------------------------------------------------
  TableFoundryConfig table_config = config.table;
  table_config.num_rows =
      ScaleCount(config.table.num_rows, scale, 4 * config.release_batches);
  CKSAFE_ASSIGN_OR_RETURN(Table table, TableFoundry::Generate(table_config));
  const size_t sensitive_column = table_config.quasi_identifiers.size();
  CKSAFE_ASSIGN_OR_RETURN(
      std::vector<QuasiIdentifier> qis,
      HierarchyFoundry::MakeQuasiIdentifiers(table, sensitive_column,
                                             config.hierarchy));

  const size_t total_rows = table.num_rows();
  const size_t batches = config.release_batches;
  const size_t per_batch = total_rows / batches;
  const auto batch_bounds = [&](size_t b) {
    return std::make_pair(b * per_batch,
                          b + 1 == batches ? total_rows : (b + 1) * per_batch);
  };

  Table initial(table.schema());
  for (const auto& cells : RowCells(table, 0, batch_bounds(0).second)) {
    CKSAFE_RETURN_IF_ERROR(initial.AppendRow(cells));
  }

  PublisherOptions base;
  base.seed = config.publisher_seed;
  MultiPolicyPublisher publisher(std::move(initial), qis, sensitive_column,
                                 base);
  for (const ScenarioPolicy& policy : config.policies) {
    publisher.AddTenant(policy.tenant, policy.c, policy.k);
  }

  const size_t queries_per_round =
      ScaleCount(config.queries.per_release, scale, 1);
  QueryRouter::Options router_options;
  router_options.queue_capacity = std::max<size_t>(4096, 2 * queries_per_round);
  router_options.start_worker = config.concurrent;
  ServingEngine engine(router_options);

  SnapshotRegistry registry;
  std::vector<Record> records;

  CKSAFE_ASSIGN_OR_RETURN(std::vector<TenantRelease> first,
                          publisher.PublishAll());
  CKSAFE_RETURN_IF_ERROR(PublishRound(first, publisher.table().num_rows(),
                                      &engine, &registry, &report));

  if (!config.concurrent) {
    // Deterministic serve loop: publish a round, enqueue the round's query
    // mix, drain it on this thread, repeat.
    Rng query_rng(config.queries.seed);
    for (size_t round = 0; round < batches; ++round) {
      if (round > 0) {
        const auto [begin, end] = batch_bounds(round);
        CKSAFE_RETURN_IF_ERROR(publisher.AddBatch(RowCells(table, begin, end)));
        CKSAFE_ASSIGN_OR_RETURN(std::vector<TenantRelease> releases,
                                publisher.PublishAll());
        CKSAFE_RETURN_IF_ERROR(PublishRound(releases,
                                            publisher.table().num_rows(),
                                            &engine, &registry, &report));
      }
      std::vector<std::pair<Query, std::future<StatusOr<QueryAnswer>>>>
          pending;
      for (size_t q = 0; q < queries_per_round; ++q) {
        Query query = MakeQuery(&query_rng, config.policies, config.queries);
        auto submitted = engine.router()->Submit(query);
        if (!submitted.ok()) return submitted.status();
        pending.emplace_back(std::move(query), std::move(*submitted));
      }
      while (engine.router()->DrainOnce() > 0) {
      }
      for (auto& [query, future] : pending) {
        StatusOr<QueryAnswer> answer = future.get();
        if (answer.ok()) {
          records.push_back(Record{std::move(query), *answer});
          ++report.queries_answered;
        } else {
          ++report.query_errors;
        }
      }
    }
  } else {
    // Serve-under-swap: a live worker serves reader threads while a writer
    // streams the remaining batches and swaps snapshots beneath them.
    std::atomic<bool> writer_failed{false};
    std::thread writer([&] {
      for (size_t round = 1; round < batches; ++round) {
        const auto [begin, end] = batch_bounds(round);
        if (!publisher.AddBatch(RowCells(table, begin, end)).ok()) {
          writer_failed = true;
          return;
        }
        auto releases = publisher.PublishAll();
        if (!releases.ok()) {
          writer_failed = true;
          return;
        }
        if (!PublishRound(*releases, publisher.table().num_rows(), &engine,
                          &registry, &report)
                 .ok()) {
          writer_failed = true;
          return;
        }
      }
    });
    const size_t readers = std::max<size_t>(1, config.reader_threads);
    std::vector<std::vector<Record>> reader_records(readers);
    std::vector<size_t> reader_errors(readers, 0);
    std::vector<std::thread> reader_threads;
    for (size_t r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        Rng rng(config.queries.seed + 1000 * (r + 1));
        const size_t count = queries_per_round * batches;
        for (size_t q = 0; q < count; ++q) {
          Query query = MakeQuery(&rng, config.policies, config.queries);
          StatusOr<QueryAnswer> answer = engine.Ask(query);
          if (answer.ok()) {
            reader_records[r].push_back(Record{std::move(query), *answer});
          } else {
            ++reader_errors[r];
          }
        }
      });
    }
    for (auto& thread : reader_threads) thread.join();
    writer.join();
    engine.router()->Stop();
    if (writer_failed) {
      return Status::Internal("scenario " + config.name +
                              ": streaming writer failed to publish");
    }
    for (size_t r = 0; r < readers; ++r) {
      report.queries_answered += reader_records[r].size();
      report.query_errors += reader_errors[r];
      records.insert(records.end(),
                     std::make_move_iterator(reader_records[r].begin()),
                     std::make_move_iterator(reader_records[r].end()));
    }
  }

  if (report.releases == 0) {
    return Status::Internal("scenario " + config.name +
                            ": no tenant policy was satisfiable");
  }
  CKSAFE_RETURN_IF_ERROR(
      VerifyRecords(config.name, records, registry, &report));
  if (report.answers_verified == 0) {
    return Status::Internal("scenario " + config.name +
                            ": no answer could be verified");
  }
  if (config.check_exact) {
    CKSAFE_RETURN_IF_ERROR(CheckExactOracle(config, registry, &report));
  }
  if (config.delta_ops > 0) {
    CKSAFE_RETURN_IF_ERROR(RunDeltaLeg(config, scale, &report));
  }
  return report;
}

namespace {

ScenarioConfig HeavySkew() {
  ScenarioConfig s;
  s.name = "heavy_skew";
  s.summary =
      "Zipf-skewed QIs, clustered ages, and a QI-correlated sensitive "
      "marginal: very uneven bucket sizes at every lattice node";
  s.table.seed = 0x5e11aULL;
  s.table.num_rows = 900;
  s.table.quasi_identifiers = {
      ColumnSpec{"Region", 12, true, ValueSkew::kZipf, 2},
      ColumnSpec{"Age", 16, false, ValueSkew::kClustered, 4}};
  s.table.sensitive = ColumnSpec{"Dx", 6, true, ValueSkew::kZipf, 1};
  s.table.correlate_sensitive = true;
  s.hierarchy.seed = 0x4ea1ULL;
  s.hierarchy.fanout = 3;
  s.hierarchy.max_levels = 3;
  s.policies = {{"audit", 0.95, 2}, {"lenient", 0.85, 1}};
  s.queries.seed = 0x9a11ULL;
  s.queries.per_release = 48;
  s.queries.max_k = 4;
  return s;
}

ScenarioConfig DeepHierarchy() {
  ScenarioConfig s;
  s.name = "deep_hierarchy";
  s.summary =
      "64-value numeric domain under a fanout-2 interval ladder: the "
      "tallest lattice the hand-written fixtures never build";
  s.table.seed = 0xdee9ULL;
  s.table.num_rows = 600;
  s.table.quasi_identifiers = {
      ColumnSpec{"Code", 64, false, ValueSkew::kUniform, 1},
      ColumnSpec{"Grp", 8, true, ValueSkew::kUniform, 1}};
  s.table.sensitive = ColumnSpec{"Dx", 5, true, ValueSkew::kUniform, 1};
  s.hierarchy.seed = 0xdee9ULL;
  s.hierarchy.fanout = 2;
  s.hierarchy.max_levels = 6;
  s.policies = {{"deep", 0.9, 2}};
  s.queries.seed = 0xdee9aULL;
  s.queries.per_release = 32;
  s.queries.max_k = 3;
  return s;
}

ScenarioConfig HighChurnStream() {
  ScenarioConfig s;
  s.name = "high_churn_stream";
  s.summary =
      "145 mutations at 45% churn through the incremental analyzer, every "
      "op differential-checked; plus a small serve leg";
  s.table.seed = 0xc4a2ULL;
  s.table.num_rows = 240;
  s.table.quasi_identifiers = {
      ColumnSpec{"G", 8, true, ValueSkew::kUniform, 1}};
  s.table.sensitive = ColumnSpec{"S", 5, true, ValueSkew::kUniform, 1};
  s.policies = {{"churn", 0.9, 2}};
  s.queries.seed = 0xc4a21ULL;
  s.queries.per_release = 16;
  s.queries.max_k = 4;
  s.delta_ops = 145;
  s.deltas.seed = 0xc4a22ULL;
  s.deltas.domain = 5;
  s.deltas.initial_buckets = 5;
  s.deltas.min_buckets = 2;
  s.deltas.max_batch = 8;
  s.deltas.churn_percent = 45;
  s.deltas.skew = ValueSkew::kZipf;
  s.deltas.skew_param = 2;
  s.delta_profile_k = 4;
  return s;
}

ScenarioConfig TenantFleet() {
  ScenarioConfig s;
  s.name = "tenant_fleet";
  s.summary =
      "five (c,k) policies served from one shared sweep; the strictest may "
      "be unsatisfiable and must fail without blocking the fleet";
  s.table.seed = 0xf1ee7ULL;
  s.table.num_rows = 800;
  s.table.quasi_identifiers = {
      ColumnSpec{"Zip", 10, true, ValueSkew::kClustered, 3},
      ColumnSpec{"Age", 32, false, ValueSkew::kUniform, 1},
      ColumnSpec{"Sex", 2, true, ValueSkew::kUniform, 1}};
  s.table.sensitive = ColumnSpec{"Dx", 8, true, ValueSkew::kUniform, 1};
  s.hierarchy.seed = 0xf1ee71ULL;
  s.hierarchy.fanout = 2;
  s.hierarchy.max_levels = 4;
  s.policies = {{"gold", 0.5, 4},
                {"silver", 0.6, 3},
                {"std", 0.7, 2},
                {"bronze", 0.8, 1},
                {"free", 0.9, 1}};
  s.release_batches = 2;
  s.queries.seed = 0xf1ee72ULL;
  s.queries.per_release = 40;
  s.queries.max_k = 4;
  return s;
}

ScenarioConfig ServeUnderSwap() {
  ScenarioConfig s;
  s.name = "serve_under_swap";
  s.summary =
      "live router worker + reader threads while a writer re-publishes "
      "four growing batches: RCU consistency under concurrent swaps";
  s.table.seed = 0x5a9b5ULL;
  s.table.num_rows = 600;
  s.table.quasi_identifiers = {
      ColumnSpec{"Reg", 10, true, ValueSkew::kZipf, 2},
      ColumnSpec{"Age", 16, false, ValueSkew::kUniform, 1}};
  s.table.sensitive = ColumnSpec{"Dx", 6, true, ValueSkew::kUniform, 1};
  s.policies = {{"hot", 0.9, 3}, {"cold", 0.8, 2}};
  s.release_batches = 4;
  s.queries.seed = 0x5a9b51ULL;
  s.queries.per_release = 50;
  s.queries.max_k = 4;
  s.concurrent = true;
  s.reader_threads = 2;
  return s;
}

ScenarioConfig SequentialRelease() {
  ScenarioConfig s;
  s.name = "sequential_release";
  s.summary =
      "trajectory-style growth: six releases of one growing table, each "
      "re-searched and served, queries after every release";
  s.table.seed = 0x5e9ecULL;
  s.table.num_rows = 720;
  s.table.quasi_identifiers = {
      ColumnSpec{"Zip", 12, true, ValueSkew::kUniform, 1},
      ColumnSpec{"Age", 24, false, ValueSkew::kClustered, 3}};
  s.table.sensitive = ColumnSpec{"Dx", 6, true, ValueSkew::kUniform, 1};
  s.hierarchy.seed = 0x5e9ec1ULL;
  s.hierarchy.fanout = 2;
  s.hierarchy.max_levels = 4;
  s.policies = {{"seq", 0.9, 2}};
  s.release_batches = 6;
  s.queries.seed = 0x5e9ec2ULL;
  s.queries.per_release = 24;
  s.queries.max_k = 3;
  return s;
}

ScenarioConfig SmallWorldExact() {
  ScenarioConfig s;
  s.name = "small_world_exact";
  s.summary =
      "eight-row world where every disclosure curve is re-proved by exact "
      "world enumeration";
  s.table.seed = 0x0c7ULL;
  s.table.num_rows = 8;
  s.table.quasi_identifiers = {
      ColumnSpec{"G", 3, true, ValueSkew::kUniform, 1}};
  s.table.sensitive = ColumnSpec{"S", 3, true, ValueSkew::kUniform, 1};
  s.hierarchy.seed = 0x0c71ULL;
  s.hierarchy.fanout = 2;
  s.hierarchy.max_levels = 2;
  s.policies = {{"exact", 0.98, 1}};
  s.queries.seed = 0x0c72ULL;
  s.queries.per_release = 40;
  s.queries.max_k = 2;
  s.queries.max_bucket_probe = 1;
  s.check_exact = true;
  s.exact_max_tuples = 10;
  return s;
}

}  // namespace

const std::vector<ScenarioConfig>& ScenarioCatalog() {
  static const std::vector<ScenarioConfig>* catalog = [] {
    auto* list = new std::vector<ScenarioConfig>();
    list->push_back(HeavySkew());
    list->push_back(DeepHierarchy());
    list->push_back(HighChurnStream());
    list->push_back(TenantFleet());
    list->push_back(ServeUnderSwap());
    list->push_back(SequentialRelease());
    list->push_back(SmallWorldExact());
    return list;
  }();
  return *catalog;
}

StatusOr<ScenarioConfig> FindScenario(std::string_view name) {
  std::vector<std::string> known;
  for (const ScenarioConfig& scenario : ScenarioCatalog()) {
    if (scenario.name == name) return scenario;
    known.push_back(scenario.name);
  }
  return Status::NotFound("unknown scenario '" + std::string(name) +
                          "'; known: " + Join(known, ", "));
}

}  // namespace cksafe
