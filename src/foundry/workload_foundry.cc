#include "cksafe/foundry/workload_foundry.h"

#include <utility>

#include "cksafe/util/page_io.h"
#include "cksafe/util/random.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<std::vector<Query>> GenerateWorkload(
    const WorkloadFoundryConfig& config) {
  if (config.tenants.empty()) {
    return Status::InvalidArgument("workload needs at least one tenant");
  }
  const uint64_t total_weight =
      uint64_t{config.weight_safe} + config.weight_disclosure +
      config.weight_profile + config.weight_per_bucket;
  if (total_weight == 0) {
    return Status::InvalidArgument("all kind weights are zero");
  }
  if (config.weight_safe > 0 && config.c_choices.empty()) {
    return Status::InvalidArgument(
        "kIsCkSafe weighted in but no c_choices to draw from");
  }
  for (const double c : config.c_choices) {
    if (!(c > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("threshold choice %g is not > 0", c));
    }
  }
  Rng rng(config.seed);
  std::vector<Query> queries;
  queries.reserve(config.num_queries);
  for (size_t i = 0; i < config.num_queries; ++i) {
    Query query;
    query.tenant = config.tenants[rng.NextBelow(config.tenants.size())];
    query.k = rng.NextBelow(config.max_k + 1);
    const uint64_t pick = rng.NextBelow(total_weight);
    if (pick < config.weight_safe) {
      query.kind = QueryKind::kIsCkSafe;
      query.c = config.c_choices[rng.NextBelow(config.c_choices.size())];
    } else if (pick < uint64_t{config.weight_safe} + config.weight_disclosure) {
      query.kind = QueryKind::kDisclosure;
    } else if (pick < uint64_t{config.weight_safe} + config.weight_disclosure +
                          config.weight_profile) {
      query.kind = QueryKind::kProfileAtK;
    } else {
      query.kind = QueryKind::kPerBucket;
      query.bucket = rng.NextBelow(config.max_bucket + 1);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

uint64_t FingerprintWorkload(const std::vector<Query>& queries) {
  ByteWriter writer;
  writer.PutU64(queries.size());
  for (const Query& query : queries) {
    writer.PutString(query.tenant);
    writer.PutU8(static_cast<uint8_t>(query.kind));
    writer.PutDouble(query.c);
    writer.PutU64(query.k);
    writer.PutU64(query.bucket);
  }
  return Fnv1a64(writer.bytes().data(), writer.size());
}

}  // namespace cksafe
