#include "cksafe/anon/diversity.h"

#include <algorithm>
#include <cmath>

#include "cksafe/util/math_util.h"

namespace cksafe {

bool IsKAnonymous(const Bucketization& b, uint32_t k) {
  return b.MinBucketSize() >= k;
}

uint32_t MaxAnonymityK(const Bucketization& b) { return b.MinBucketSize(); }

namespace {

uint32_t DistinctValues(const Bucket& bucket) {
  uint32_t distinct = 0;
  for (uint32_t c : bucket.histogram) {
    if (c > 0) ++distinct;
  }
  return distinct;
}

}  // namespace

bool IsDistinctLDiverse(const Bucketization& b, uint32_t l) {
  for (const Bucket& bucket : b.buckets()) {
    if (DistinctValues(bucket) < l) return false;
  }
  return true;
}

uint32_t MaxDistinctL(const Bucketization& b) {
  uint32_t min_distinct = UINT32_MAX;
  for (const Bucket& bucket : b.buckets()) {
    min_distinct = std::min(min_distinct, DistinctValues(bucket));
  }
  return b.num_buckets() == 0 ? 0 : min_distinct;
}

bool IsEntropyLDiverse(const Bucketization& b, double l) {
  CKSAFE_CHECK(l >= 1.0);
  return b.MinBucketEntropyNats() >= std::log(l) - 1e-12;
}

double MaxEntropyL(const Bucketization& b) {
  return std::exp(b.MinBucketEntropyNats());
}

bool IsRecursiveCLDiverse(const Bucketization& b, double c, uint32_t l) {
  CKSAFE_CHECK_GE(l, 1u);
  for (const Bucket& bucket : b.buckets()) {
    std::vector<uint32_t> counts;
    for (uint32_t n : bucket.histogram) {
      if (n > 0) counts.push_back(n);
    }
    std::sort(counts.begin(), counts.end(), std::greater<uint32_t>());
    if (counts.size() < l) return false;
    double tail = 0.0;
    for (size_t i = l - 1; i < counts.size(); ++i) tail += counts[i];
    if (static_cast<double>(counts[0]) >= c * tail) return false;
  }
  return true;
}

}  // namespace cksafe
