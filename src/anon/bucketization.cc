#include "cksafe/anon/bucketization.h"

#include <algorithm>
#include <limits>
#include <map>

#include "cksafe/util/math_util.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

Status Bucketization::AddBucket(Bucket bucket) {
  if (bucket.members.empty()) {
    return Status::InvalidArgument("bucket must be non-empty");
  }
  if (bucket.histogram.size() != sensitive_domain_size_) {
    return Status::InvalidArgument(
        StrFormat("histogram size %zu != sensitive domain %zu",
                  bucket.histogram.size(), sensitive_domain_size_));
  }
  uint64_t total = 0;
  for (uint32_t c : bucket.histogram) total += c;
  if (total != bucket.members.size()) {
    return Status::InvalidArgument(
        StrFormat("histogram total %llu != member count %zu",
                  static_cast<unsigned long long>(total),
                  bucket.members.size()));
  }
  for (PersonId p : bucket.members) {
    if (p < bucket_of_.size() && bucket_of_[p] >= 0) {
      return Status::AlreadyExists(
          StrFormat("person %u already in bucket %d", p, bucket_of_[p]));
    }
  }
  const int32_t index = static_cast<int32_t>(buckets_.size());
  for (PersonId p : bucket.members) {
    if (p >= bucket_of_.size()) bucket_of_.resize(p + 1, -1);
    bucket_of_[p] = index;
  }
  num_tuples_ += bucket.members.size();
  buckets_.push_back(std::move(bucket));
  return Status::OK();
}

const Bucket& Bucketization::bucket(size_t i) const {
  CKSAFE_CHECK_LT(i, buckets_.size());
  return buckets_[i];
}

StatusOr<size_t> Bucketization::BucketOf(PersonId person) const {
  if (person >= bucket_of_.size() || bucket_of_[person] < 0) {
    return Status::NotFound(StrFormat("person %u not in any bucket", person));
  }
  return static_cast<size_t>(bucket_of_[person]);
}

uint32_t Bucketization::MinBucketSize() const {
  uint32_t min_size = buckets_.empty() ? 0 : buckets_[0].size();
  for (const Bucket& b : buckets_) min_size = std::min(min_size, b.size());
  return min_size;
}

double Bucketization::MinBucketEntropyNats() const {
  double min_h = std::numeric_limits<double>::infinity();
  for (const Bucket& b : buckets_) {
    min_h = std::min(min_h, EntropyNats(b.histogram));
  }
  return buckets_.empty() ? 0.0 : min_h;
}

double Bucketization::MaxFrequencyRatio() const {
  double worst = 0.0;
  for (const Bucket& b : buckets_) {
    uint32_t max_count = 0;
    for (uint32_t c : b.histogram) max_count = std::max(max_count, c);
    worst = std::max(worst, static_cast<double>(max_count) / b.size());
  }
  return worst;
}

std::vector<int32_t> Bucketization::SamplePublishedAssignment(Rng* rng) const {
  CKSAFE_CHECK(rng != nullptr);
  size_t max_person = 0;
  for (const Bucket& b : buckets_) {
    for (PersonId p : b.members) max_person = std::max<size_t>(max_person, p);
  }
  std::vector<int32_t> assignment(max_person + 1, -1);
  for (const Bucket& b : buckets_) {
    std::vector<int32_t> values;
    values.reserve(b.members.size());
    for (size_t s = 0; s < b.histogram.size(); ++s) {
      values.insert(values.end(), b.histogram[s], static_cast<int32_t>(s));
    }
    rng->Shuffle(&values);
    for (size_t i = 0; i < b.members.size(); ++i) {
      assignment[b.members[i]] = values[i];
    }
  }
  return assignment;
}

bool Bucketization::IsConsistentAssignment(
    const std::vector<int32_t>& assignment) const {
  for (const Bucket& b : buckets_) {
    std::vector<uint32_t> seen(sensitive_domain_size_, 0);
    for (PersonId p : b.members) {
      if (p >= assignment.size()) return false;
      const int32_t v = assignment[p];
      if (v < 0 || static_cast<size_t>(v) >= sensitive_domain_size_) return false;
      ++seen[static_cast<size_t>(v)];
    }
    if (seen != b.histogram) return false;
  }
  return true;
}

std::string Bucketization::ToString() const {
  std::string out = StrFormat("Bucketization: %zu buckets, %zu tuples\n",
                              buckets_.size(), num_tuples_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    out += StrFormat("  bucket %zu [%s] n=%u histogram={", i,
                     b.qi_label.c_str(), b.size());
    bool first = true;
    for (size_t s = 0; s < b.histogram.size(); ++s) {
      if (b.histogram[s] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += StrFormat("%zu:%u", s, b.histogram[s]);
    }
    out += "}\n";
  }
  return out;
}

namespace {

Status ValidateSensitiveColumn(const Table& table, size_t sensitive_column) {
  if (sensitive_column >= table.num_columns()) {
    return Status::OutOfRange("sensitive column out of range");
  }
  if (!table.schema().attribute(sensitive_column).is_categorical()) {
    return Status::InvalidArgument("sensitive attribute must be categorical");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Bucketization> BucketizeAtNode(const Table& table,
                                        const std::vector<QuasiIdentifier>& qis,
                                        const LatticeNode& node,
                                        size_t sensitive_column) {
  CKSAFE_RETURN_IF_ERROR(ValidateSensitiveColumn(table, sensitive_column));
  if (node.size() != qis.size()) {
    return Status::InvalidArgument("node arity != number of quasi-identifiers");
  }
  for (size_t i = 0; i < qis.size(); ++i) {
    if (qis[i].column >= table.num_columns()) {
      return Status::OutOfRange("quasi-identifier column out of range");
    }
    if (node[i] < 0 ||
        static_cast<size_t>(node[i]) >= qis[i].hierarchy->num_levels()) {
      return Status::OutOfRange("generalization level out of range");
    }
  }
  const size_t domain =
      table.schema().attribute(sensitive_column).domain_size();

  // Group rows by their generalized QI key. std::map keeps bucket order
  // deterministic across runs and platforms.
  std::map<std::vector<int32_t>, std::vector<PersonId>> groups;
  for (PersonId row = 0; row < table.num_rows(); ++row) {
    std::vector<int32_t> key(qis.size());
    for (size_t i = 0; i < qis.size(); ++i) {
      key[i] = qis[i].hierarchy->GroupOf(table.at(row, qis[i].column),
                                         static_cast<size_t>(node[i]));
    }
    groups[key].push_back(row);
  }

  Bucketization out(domain);
  for (const auto& [key, members] : groups) {
    Bucket b;
    b.members = members;
    b.histogram.assign(domain, 0);
    for (PersonId p : members) {
      ++b.histogram[static_cast<size_t>(table.at(p, sensitive_column))];
    }
    std::vector<std::string> labels;
    for (size_t i = 0; i < qis.size(); ++i) {
      labels.push_back(qis[i].hierarchy->GroupLabel(
          key[i], static_cast<size_t>(node[i])));
    }
    b.qi_label = Join(labels, ", ");
    CKSAFE_RETURN_IF_ERROR(out.AddBucket(std::move(b)));
  }
  return out;
}

StatusOr<Bucketization> BucketizeAllInOne(const Table& table,
                                          size_t sensitive_column) {
  std::vector<PersonId> all(table.num_rows());
  for (PersonId p = 0; p < table.num_rows(); ++p) all[p] = p;
  return BucketizeExplicit(table, {all}, sensitive_column);
}

StatusOr<Bucketization> BucketizePerRow(const Table& table,
                                        size_t sensitive_column) {
  std::vector<std::vector<PersonId>> groups(table.num_rows());
  for (PersonId p = 0; p < table.num_rows(); ++p) groups[p] = {p};
  return BucketizeExplicit(table, groups, sensitive_column);
}

StatusOr<Bucketization> BucketizeExplicit(
    const Table& table, const std::vector<std::vector<PersonId>>& groups,
    size_t sensitive_column) {
  CKSAFE_RETURN_IF_ERROR(ValidateSensitiveColumn(table, sensitive_column));
  const size_t domain =
      table.schema().attribute(sensitive_column).domain_size();
  Bucketization out(domain);
  for (const auto& members : groups) {
    Bucket b;
    b.members = members;
    b.histogram.assign(domain, 0);
    for (PersonId p : members) {
      if (p >= table.num_rows()) {
        return Status::OutOfRange(StrFormat("person %u out of range", p));
      }
      ++b.histogram[static_cast<size_t>(table.at(p, sensitive_column))];
    }
    CKSAFE_RETURN_IF_ERROR(out.AddBucket(std::move(b)));
  }
  if (out.num_tuples() != table.num_rows()) {
    return Status::InvalidArgument("groups do not cover every row");
  }
  return out;
}

}  // namespace cksafe
