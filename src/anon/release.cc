#include "cksafe/anon/release.h"

#include "cksafe/util/csv.h"
#include "cksafe/util/string_util.h"
#include "cksafe/util/text_table.h"

namespace cksafe {

Status GeneralizedRelease::WriteCsv(const std::string& path) const {
  std::vector<std::vector<std::string>> all;
  all.reserve(rows.size() + 1);
  all.push_back(header);
  all.insert(all.end(), rows.begin(), rows.end());
  return WriteCsvFile(path, all);
}

std::string GeneralizedRelease::Preview(size_t max_rows) const {
  TextTable out;
  out.SetHeader(header);
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    out.AddRow(rows[i]);
  }
  if (rows.size() > max_rows) {
    out.AddRow({StrFormat("... (%zu more rows)", rows.size() - max_rows)});
  }
  return out.Render();
}

StatusOr<GeneralizedRelease> BuildGeneralizedRelease(
    const Table& table, const std::vector<QuasiIdentifier>& qis,
    const LatticeNode& node, size_t sensitive_column, uint64_t seed) {
  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeAtNode(table, qis, node, sensitive_column));

  Rng rng(seed);
  const std::vector<int32_t> published =
      bucketization.SamplePublishedAssignment(&rng);
  const AttributeDef& sensitive = table.schema().attribute(sensitive_column);

  GeneralizedRelease release;
  for (size_t i = 0; i < qis.size(); ++i) {
    release.header.push_back(qis[i].hierarchy->attribute().name());
  }
  release.header.push_back(sensitive.name());

  for (const Bucket& bucket : bucketization.buckets()) {
    for (PersonId person : bucket.members) {
      std::vector<std::string> row;
      row.reserve(qis.size() + 1);
      for (size_t i = 0; i < qis.size(); ++i) {
        const int32_t group = qis[i].hierarchy->GroupOf(
            table.at(person, qis[i].column), static_cast<size_t>(node[i]));
        row.push_back(qis[i].hierarchy->GroupLabel(
            group, static_cast<size_t>(node[i])));
      }
      row.push_back(sensitive.LabelOf(published[person]));
      release.rows.push_back(std::move(row));
    }
  }
  return release;
}

Status AnatomyRelease::WriteCsv(const std::string& qit_path,
                                const std::string& st_path) const {
  std::vector<std::vector<std::string>> qit;
  qit.reserve(qit_rows.size() + 1);
  qit.push_back(qit_header);
  qit.insert(qit.end(), qit_rows.begin(), qit_rows.end());
  CKSAFE_RETURN_IF_ERROR(WriteCsvFile(qit_path, qit));

  std::vector<std::vector<std::string>> st;
  st.reserve(st_rows.size() + 1);
  st.push_back(st_header);
  st.insert(st.end(), st_rows.begin(), st_rows.end());
  return WriteCsvFile(st_path, st);
}

StatusOr<AnatomyRelease> BuildAnatomyRelease(
    const Table& table, const std::vector<QuasiIdentifier>& qis,
    const Bucketization& bucketization, size_t sensitive_column) {
  if (sensitive_column >= table.num_columns()) {
    return Status::OutOfRange("sensitive column out of range");
  }
  const AttributeDef& sensitive = table.schema().attribute(sensitive_column);
  if (bucketization.sensitive_domain_size() != sensitive.domain_size()) {
    return Status::InvalidArgument(
        "bucketization's sensitive domain does not match the table");
  }

  AnatomyRelease release;
  release.qit_header.push_back("record");
  for (const QuasiIdentifier& qi : qis) {
    if (qi.column >= table.num_columns()) {
      return Status::OutOfRange("quasi-identifier column out of range");
    }
    release.qit_header.push_back(qi.hierarchy->attribute().name());
  }
  release.qit_header.push_back("bucket");

  // Pseudonymous record numbering in bucket order: within-bucket identity
  // is exactly what bucketization hides.
  size_t pseudonym = 0;
  for (size_t b = 0; b < bucketization.num_buckets(); ++b) {
    for (PersonId person : bucketization.bucket(b).members) {
      std::vector<std::string> row;
      row.push_back("r" + std::to_string(pseudonym++));
      for (const QuasiIdentifier& qi : qis) {
        row.push_back(qi.hierarchy->attribute().LabelOf(
            table.at(person, qi.column)));
      }
      row.push_back(std::to_string(b));
      release.qit_rows.push_back(std::move(row));
    }
  }

  release.st_header = {"bucket", sensitive.name(), "count"};
  for (size_t b = 0; b < bucketization.num_buckets(); ++b) {
    const Bucket& bucket = bucketization.bucket(b);
    for (size_t s = 0; s < bucket.histogram.size(); ++s) {
      if (bucket.histogram[s] == 0) continue;
      release.st_rows.push_back({std::to_string(b),
                                 sensitive.LabelOf(static_cast<int32_t>(s)),
                                 std::to_string(bucket.histogram[s])});
    }
  }
  return release;
}

}  // namespace cksafe
