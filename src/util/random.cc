#include "cksafe/util/random.h"

#include <algorithm>

namespace cksafe {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  CKSAFE_CHECK(!weights.empty()) << "DiscreteSampler needs at least one weight";
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    CKSAFE_CHECK(w >= 0.0) << "negative weight" << w;
    running += w;
    cumulative_.push_back(running);
  }
  total_ = running;
  CKSAFE_CHECK(total_ > 0.0) << "all weights are zero";
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  CKSAFE_CHECK(rng != nullptr);
  const double u = rng->NextDouble() * total_;
  // First index whose cumulative weight exceeds u. upper_bound copes with
  // zero-weight entries (their cumulative value equals the predecessor's).
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;  // guard against u == total_ rounding
  return static_cast<size_t>(it - cumulative_.begin());
}

double DiscreteSampler::Probability(size_t i) const {
  CKSAFE_CHECK(i < cumulative_.size());
  const double prev = (i == 0) ? 0.0 : cumulative_[i - 1];
  return (cumulative_[i] - prev) / total_;
}

}  // namespace cksafe
