#include "cksafe/util/random.h"

#include <algorithm>

namespace cksafe {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  CKSAFE_CHECK(!weights.empty()) << "DiscreteSampler needs at least one weight";
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    CKSAFE_CHECK(w >= 0.0) << "negative weight" << w;
    running += w;
    cumulative_.push_back(running);
  }
  total_ = running;
  CKSAFE_CHECK(total_ > 0.0) << "all weights are zero";
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  CKSAFE_CHECK(rng != nullptr);
  return IndexForPoint(rng->NextDouble() * total_);
}

size_t DiscreteSampler::IndexForPoint(double point) const {
  // First index whose cumulative weight exceeds the point. upper_bound
  // copes with zero-weight entries (their cumulative value equals the
  // predecessor's) everywhere except at point == total_, where it falls
  // off the end.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), point);
  if (it == cumulative_.end()) --it;
  // The end-guard may have landed on a zero-width entry (a trailing zero
  // weight); step back to the last positive-weight index so a boundary
  // draw can never yield a zero-probability result. For any interior
  // point upper_bound already returns a positive-width entry and this
  // loop does not move.
  while (it != cumulative_.begin() && *it == *(it - 1)) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

double DiscreteSampler::Probability(size_t i) const {
  CKSAFE_CHECK(i < cumulative_.size());
  const double prev = (i == 0) ? 0.0 : cumulative_[i - 1];
  return (cumulative_[i] - prev) / total_;
}

}  // namespace cksafe
