#include "cksafe/util/flags.h"

#include <sstream>

#include "cksafe/util/string_util.h"

namespace cksafe {

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          std::string help) {
  flags_[name] = {Kind::kInt64, target, std::move(help), std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           std::string help) {
  flags_[name] = {Kind::kDouble, target, std::move(help), std::to_string(*target)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           std::string help) {
  flags_[name] = {Kind::kString, target, std::move(help), *target};
}

void FlagParser::AddBool(const std::string& name, bool* target, std::string help) {
  flags_[name] = {Kind::kBool, target, std::move(help), *target ? "true" : "false"};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return Status::InvalidArgument("unknown flag --" + name);
  FlagInfo& info = it->second;
  switch (info.kind) {
    case Kind::kInt64: {
      CKSAFE_ASSIGN_OR_RETURN(*static_cast<int64_t*>(info.target),
                              ParseInt64(value));
      return Status::OK();
    }
    case Kind::kDouble: {
      CKSAFE_ASSIGN_OR_RETURN(*static_cast<double*>(info.target),
                              ParseDouble(value));
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(info.target) = value;
      return Status::OK();
    case Kind::kBool: {
      const std::string v = ToLower(value);
      if (v == "true" || v == "1" || v == "yes" || v.empty()) {
        *static_cast<bool*>(info.target) = true;
      } else if (v == "false" || v == "0" || v == "no") {
        *static_cast<bool*>(info.target) = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + value);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else if (i + 1 < argc) {
        // The next token is another flag: `--rows --k=4` used to consume
        // `--k=4` as the value of --rows, silently dropping a flag and
        // producing a baffling parse error (or worse, a silently accepted
        // string). A flag-shaped token is never a value; say what's
        // missing instead. Values that legitimately start with dashes
        // (negative numbers, strings) still work: `-5` is not
        // flag-shaped, and `--name=--weird` stays available for the rest.
        return Status::InvalidArgument(
            "missing value for --" + name + " (next argument " +
            std::string(argv[i + 1]) +
            " is a flag; use --" + name + "=VALUE to pass a value "
            "beginning with --)");
      } else {
        return Status::InvalidArgument("missing value for --" + name);
      }
    }
    CKSAFE_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    os << "  --" << name << "  (default: " << info.default_value << ")  "
       << info.help << "\n";
  }
  return os.str();
}

}  // namespace cksafe
