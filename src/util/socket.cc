#include "cksafe/util/socket.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

StatusOr<sockaddr_un> MakeAddr(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path length %zu out of range [1, %zu)", path.size(),
                  sizeof(addr.sun_path)));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixSocket::~UnixSocket() { Close(); }

UnixSocket::UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<UnixSocket> UnixSocket::Connect(const std::string& path) {
  CKSAFE_ASSIGN_OR_RETURN(sockaddr_un addr, MakeAddr(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status err = Errno("connect");
    ::close(fd);
    return err;
  }
  return UnixSocket(fd);
}

Status UnixSocket::SendAll(const uint8_t* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that died mid-conversation yields EPIPE here,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::IOError("send: connection closed by peer");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status UnixSocket::RecvExact(uint8_t* out, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, out + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::IOError("recv: connection closed by peer");
      }
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IOError(
          StrFormat("recv: connection closed by peer after %zu of %zu bytes",
                    got, size));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void UnixSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::~UnixListener() { Close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Status UnixListener::Bind(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  CKSAFE_ASSIGN_OR_RETURN(sockaddr_un addr, MakeAddr(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());  // a crashed predecessor's stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Errno("bind");
    ::close(fd);
    return err;
  }
  if (::listen(fd, 64) < 0) {
    Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

StatusOr<UnixSocket> UnixListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  return UnixSocket(fd);
}

void UnixListener::Shutdown() {
  // On Linux, shutdown() of a listening socket wakes a blocked accept()
  // with an error — the server's stop signal. The fd stays valid (and the
  // error sticky) until Close().
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) {
      ::unlink(path_.c_str());
      path_.clear();
    }
  }
}

}  // namespace cksafe
