#include "cksafe/util/text_table.h"

#include <algorithm>

#include "cksafe/util/string_util.h"

namespace cksafe {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string TextTable::Render() const {
  // Compute column widths over header + all rows.
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());
  std::vector<size_t> width(num_cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < num_cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += cell;
      if (i + 1 < num_cols) {
        line += std::string(width[i] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces for ragged last columns.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render_row(header_);
    size_t rule_len = 0;
    for (size_t i = 0; i < num_cols; ++i) {
      rule_len += width[i] + (i + 1 < num_cols ? 2 : 0);
    }
    out += std::string(rule_len, '-');
    out += '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace cksafe
