#include "cksafe/util/page_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cksafe {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed) {
  uint64_t digest = seed;
  for (size_t i = 0; i < size; ++i) {
    digest ^= data[i];
    digest *= 0x00000100000001b3ULL;
  }
  return digest;
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

StatusOr<uint64_t> ByteReader::LittleEndian(int width) {
  if (size_ - pos_ < static_cast<size_t>(width)) {
    return Status::IOError("byte stream truncated");
  }
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += static_cast<size_t>(width);
  return v;
}

StatusOr<uint8_t> ByteReader::U8() {
  CKSAFE_ASSIGN_OR_RETURN(uint64_t v, LittleEndian(1));
  return static_cast<uint8_t>(v);
}
StatusOr<uint16_t> ByteReader::U16() {
  CKSAFE_ASSIGN_OR_RETURN(uint64_t v, LittleEndian(2));
  return static_cast<uint16_t>(v);
}
StatusOr<uint32_t> ByteReader::U32() {
  CKSAFE_ASSIGN_OR_RETURN(uint64_t v, LittleEndian(4));
  return static_cast<uint32_t>(v);
}
StatusOr<uint64_t> ByteReader::U64() { return LittleEndian(8); }
StatusOr<int32_t> ByteReader::I32() {
  CKSAFE_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}
StatusOr<double> ByteReader::Double() {
  CKSAFE_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
StatusOr<std::string> ByteReader::String() {
  CKSAFE_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (size_ - pos_ < len) return Status::IOError("byte stream truncated");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status err = Errno("fstat", path);
    Close();
    return err;
  }
  size_ = static_cast<uint64_t>(st.st_size);
  path_ = path;
  return Status::OK();
}

Status AppendFile::Append(const uint8_t* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("append on closed file");
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  size_ += size;
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("sync on closed file");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status AppendFile::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = size;
  return Status::OK();
}

void AppendFile::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  size_ = 0;
  path_.clear();
}

RandomReadFile::~RandomReadFile() { Close(); }

Status RandomReadFile::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  return Status::OK();
}

Status RandomReadFile::ReadAt(uint64_t offset, uint8_t* out,
                              size_t size) const {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed file");
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd_, out + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " of " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

void RandomReadFile::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  path_.clear();
}

StatusOr<uint64_t> RandomReadFile::Size() const {
  if (fd_ < 0) return Status::FailedPrecondition("size of closed file");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
  return static_cast<uint64_t>(st.st_size);
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  RandomReadFile file;
  CKSAFE_RETURN_IF_ERROR(file.Open(path));
  CKSAFE_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    CKSAFE_RETURN_IF_ERROR(file.ReadAt(0, bytes.data(), bytes.size()));
  }
  return bytes;
}

}  // namespace cksafe
