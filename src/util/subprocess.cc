#include "cksafe/util/subprocess.h"

#include <cerrno>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<pid_t> SpawnProcess(const std::function<int()>& child_main) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IOError(StrFormat("fork: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. _exit (not exit): no parent-installed atexit handlers, no
    // static destructors racing the parent's copies of shared state.
    ::_exit(child_main());
  }
  return pid;
}

Status KillProcess(pid_t pid, int signum) {
  if (::kill(pid, signum) < 0) {
    return Status::IOError(
        StrFormat("kill(%d, %d): %s", static_cast<int>(pid), signum,
                  std::strerror(errno)));
  }
  return Status::OK();
}

StatusOr<ProcessExit> WaitProcess(pid_t pid) {
  int wstatus = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &wstatus, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::IOError(StrFormat("waitpid(%d): %s", static_cast<int>(pid),
                                     std::strerror(errno)));
  }
  ProcessExit exit;
  if (WIFEXITED(wstatus)) {
    exit.exited = true;
    exit.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    exit.signaled = true;
    exit.term_signal = WTERMSIG(wstatus);
  }
  return exit;
}

bool ProcessAlive(pid_t pid) {
  // Probe without reaping. WNOWAIT is a waitid-only flag (waitpid rejects
  // it with EINVAL), and only waitid leaves the zombie reapable for a
  // later WaitProcess. si_pid stays 0 when the child is still running.
  siginfo_t info;
  info.si_pid = 0;
  const int rc = ::waitid(P_PID, pid, &info, WEXITED | WNOHANG | WNOWAIT);
  return rc == 0 && info.si_pid == 0;
}

}  // namespace cksafe
