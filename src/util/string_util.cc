#include "cksafe/util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cksafe {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

StatusOr<int64_t> ParseInt64(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::InvalidArgument("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ParseDouble(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::InvalidArgument("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing characters in double: " + buf);
  }
  // strtod happily parses "nan", "inf" and friends; every numeric flag in
  // the library (thresholds, scales, weights) means a finite value, so
  // non-finite input is a caller error, not a number.
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("non-finite double: " + buf);
  }
  return v;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace cksafe
