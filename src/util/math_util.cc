#include "cksafe/util/math_util.h"

#include <cmath>
#include <limits>

#include "cksafe/util/check.h"

namespace cksafe {

bool ApproxEqual(double a, double b, double eps) {
  return std::fabs(a - b) <= eps;
}

namespace {

double EntropyBase(const std::vector<uint32_t>& counts, double log_base) {
  double total = 0.0;
  for (uint32_t c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (uint32_t c : counts) {
    if (c == 0) continue;
    const double p = c / total;
    h -= p * std::log(p);
  }
  return h / log_base;
}

}  // namespace

double EntropyNats(const std::vector<uint32_t>& counts) {
  return EntropyBase(counts, 1.0);
}

double EntropyBits(const std::vector<uint32_t>& counts) {
  return EntropyBase(counts, std::log(2.0));
}

double SafeDiv(double a, double b) {
  if (b == 0.0) {
    // CheckFailureStream inserts one space before every streamed operand,
    // so the fragments must not carry their own padding or the message
    // double-spaces (pinned by check_death_test).
    CKSAFE_CHECK(a == 0.0) << "division of nonzero" << a << "by zero";
    return 0.0;
  }
  return a / b;
}

double BinomialCoefficient(uint32_t n, uint32_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (uint32_t i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

double MultisetPermutationCount(const std::vector<uint32_t>& multiplicities) {
  // Work in log space and exponentiate, saturating to +inf.
  double log_num = 0.0;
  uint64_t total = 0;
  for (uint32_t m : multiplicities) total += m;
  for (uint64_t i = 2; i <= total; ++i) log_num += std::log(static_cast<double>(i));
  for (uint32_t m : multiplicities) {
    for (uint64_t i = 2; i <= m; ++i) log_num -= std::log(static_cast<double>(i));
  }
  if (log_num > std::log(std::numeric_limits<double>::max())) {
    return std::numeric_limits<double>::infinity();
  }
  return std::round(std::exp(log_num));
}

}  // namespace cksafe
