#include "cksafe/util/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {

ThreadPool::ThreadPool(size_t num_threads) {
  CKSAFE_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CKSAFE_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Self-scheduling loop shared by the pool workers and the caller. The
  // batch tracks its own completion so the caller waits only for these
  // iterations, not for unrelated tasks on a shared pool; shared_ptr keeps
  // the state alive for helpers that wake up after the caller has returned
  // from its own loop but before they observe an empty range.
  struct Batch {
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    size_t n;
    const std::function<void(size_t)>& fn;
    std::mutex mu;
    std::condition_variable done;
    explicit Batch(size_t count, const std::function<void(size_t)>& body)
        : n(count), fn(body) {}
  };
  auto batch = std::make_shared<Batch>(n, fn);
  auto run = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b->n) return;
      b->fn(i);
      if (b->finished.fetch_add(1, std::memory_order_acq_rel) + 1 == b->n) {
        std::unique_lock<std::mutex> lock(b->mu);
        b->done.notify_all();
      }
    }
  };

  const size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t t = 0; t < helpers; ++t) {
    pool->Submit([batch, run] { run(batch); });
  }
  run(batch);  // caller participates
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done.wait(lock, [&] {
    return batch->finished.load(std::memory_order_acquire) == batch->n;
  });
}

}  // namespace cksafe
