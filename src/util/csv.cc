#include "cksafe/util/csv.h"

#include <fstream>

#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

// True when `text` ends inside an unterminated quoted field, i.e. the
// record continues on the next physical line. Quote parity is exact for
// well-formed input: an opening quote and its closing quote toggle once
// each, and a "" escape toggles twice.
bool InsideQuotedField(const std::string& text) {
  bool inside = false;
  for (char c : text) {
    if (c == '"') inside = !inside;
  }
  return inside;
}

bool NeedsQuoting(const std::string& field, char delimiter, bool lone_field) {
  if (field.empty()) {
    // A record that is a single empty field would render as a blank line,
    // which the reader skips; quote it so it survives the round trip.
    return lone_field;
  }
  if (field.find(delimiter) != std::string::npos) return true;
  if (field.find_first_of("\"\r\n") != std::string::npos) return true;
  // Unquoted fields are trimmed on read; preserve surrounding whitespace.
  return Trim(field).size() != field.size();
}

}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  const size_t n = line.size();
  size_t i = 0;
  while (true) {
    // Quoted fields may be preceded by padding; peek past it.
    size_t peek = i;
    while (peek < n && (line[peek] == ' ' || line[peek] == '\t')) ++peek;
    std::string field;
    if (peek < n && line[peek] == '"') {
      i = peek + 1;
      while (i < n) {
        if (line[i] != '"') {
          field += line[i++];
        } else if (i + 1 < n && line[i + 1] == '"') {
          field += '"';  // "" escape
          i += 2;
        } else {
          ++i;  // closing quote
          break;
        }
      }
      // Tolerate padding between the closing quote and the delimiter.
      while (i < n && line[i] != delimiter) ++i;
    } else {
      const size_t start = i;
      while (i < n && line[i] != delimiter) ++i;
      field = std::string(
          Trim(std::string_view(line).substr(start, i - start)));
    }
    fields.push_back(std::move(field));
    if (i >= n) break;
    ++i;  // the delimiter
  }
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string record;
  std::string line;
  while (std::getline(in, line)) {
    if (record.empty()) {
      if (Trim(line).empty()) continue;
      record = line;
    } else {
      // Continuation of a quoted field: the newline is part of the data.
      record += '\n';
      record += line;
    }
    if (InsideQuotedField(record)) continue;
    rows.push_back(ParseCsvLine(record, delimiter));
    record.clear();
  }
  if (!record.empty()) {
    return Status::InvalidArgument("unterminated quoted field in " + path);
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << delimiter;
      const std::string& field = row[i];
      if (!NeedsQuoting(field, delimiter, row.size() == 1)) {
        out << field;
        continue;
      }
      out << '"';
      for (char c : field) {
        if (c == '"') out << '"';
        out << c;
      }
      out << '"';
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace cksafe
