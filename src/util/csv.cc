#include "cksafe/util/csv.h"

#include <fstream>
#include <sstream>

#include "cksafe/util/string_util.h"

namespace cksafe {

std::vector<std::string> ParseCsvLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  for (const std::string& raw : Split(line, delimiter)) {
    fields.emplace_back(Trim(raw));
  }
  return fields;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    rows.push_back(ParseCsvLine(line, delimiter));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].find(delimiter) != std::string::npos) {
        return Status::InvalidArgument("field contains delimiter: " + row[i]);
      }
      if (i > 0) out << delimiter;
      out << row[i];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace cksafe
