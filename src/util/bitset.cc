#include "cksafe/util/bitset.h"

namespace cksafe {

Bitset::Bitset(size_t num_bits, bool all_ones)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, all_ones ? ~0ULL : 0ULL) {
  if (all_ones) TrimTail();
}

void Bitset::TrimTail() {
  const size_t tail = num_bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void Bitset::Set(size_t i) {
  CKSAFE_CHECK_LT(i, num_bits_);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitset::Clear(size_t i) {
  CKSAFE_CHECK_LT(i, num_bits_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool Bitset::Test(size_t i) const {
  CKSAFE_CHECK_LT(i, num_bits_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

size_t Bitset::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  CKSAFE_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  CKSAFE_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset Bitset::Not() const {
  Bitset out(num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.TrimTail();
  return out;
}

size_t Bitset::AndCount(const Bitset& a, const Bitset& b) {
  CKSAFE_CHECK_EQ(a.num_bits_, b.num_bits_);
  size_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += static_cast<size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return count;
}

}  // namespace cksafe
