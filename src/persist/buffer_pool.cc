#include "cksafe/persist/buffer_pool.h"

#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageRef::~PageRef() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

const uint8_t* BufferPool::PageRef::data() const {
  CKSAFE_CHECK(pool_ != nullptr) << "data() on an empty PageRef";
  // No lock needed: the frame's bytes are immutable while pinned, and the
  // pin itself keeps the frame from being recycled.
  return pool_->frames_[frame_].bytes.data();
}

BufferPool::BufferPool(const RandomReadFile* file, size_t capacity_pages)
    : file_(file) {
  CKSAFE_CHECK(file != nullptr);
  CKSAFE_CHECK_GE(capacity_pages, 1u) << "buffer pool needs at least one frame";
  frames_.resize(capacity_pages);
}

StatusOr<BufferPool::PageRef> BufferPool::Fetch(uint64_t page_no) {
  std::lock_guard<std::mutex> lock(mu_);
  ++clock_;
  if (const auto it = resident_.find(page_no); it != resident_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.last_use = clock_;
    ++stats_.hits;
    return PageRef(this, it->second);
  }
  // Miss: pick a free frame, else evict the least-recently-used unpinned one.
  size_t victim = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].occupied) {
      victim = i;
      break;
    }
  }
  if (victim == frames_.size()) {
    uint64_t oldest = 0;
    for (size_t i = 0; i < frames_.size(); ++i) {
      const Frame& frame = frames_[i];
      if (frame.pins > 0) continue;
      if (victim == frames_.size() || frame.last_use < oldest) {
        victim = i;
        oldest = frame.last_use;
      }
    }
    if (victim == frames_.size()) {
      return Status::ResourceExhausted(
          "buffer pool exhausted: all " + std::to_string(frames_.size()) +
          " frames pinned");
    }
    resident_.erase(frames_[victim].page_no);
    ++stats_.evictions;
  }
  Frame& frame = frames_[victim];
  frame.bytes.resize(kPageSize);
  if (Status read = file_->ReadAt(page_no * kPageSize, frame.bytes.data(),
                                  kPageSize);
      !read.ok()) {
    frame.occupied = false;
    return read;
  }
  frame.occupied = true;
  frame.page_no = page_no;
  frame.pins = 1;
  frame.last_use = clock_;
  resident_[page_no] = victim;
  ++stats_.misses;
  return PageRef(this, victim);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  CKSAFE_CHECK_GT(frames_[frame].pins, 0u);
  --frames_[frame].pins;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t BufferPool::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

}  // namespace cksafe
