#include "cksafe/persist/manifest.h"

#include "cksafe/util/page_io.h"

namespace cksafe {
namespace {

constexpr uint32_t kManifestMagic = 0x464d4b43;  // "CKMF"
// Record header: u32 magic, u32 payload_len, u64 payload checksum.
constexpr size_t kRecordHeaderSize = 16;
// A record is a handful of refs and a tenant name; anything bigger than
// this is garbage, not a record (guards the scanner against a corrupt
// length field causing a giant allocation).
constexpr uint32_t kMaxRecordPayload = 1 << 20;

void PutSegmentRef(ByteWriter* w, const SegmentRef& ref) {
  w->PutU64(ref.offset);
  w->PutU32(ref.pages);
  w->PutU64(ref.blob_size);
  w->PutU64(ref.blob_checksum);
}

StatusOr<SegmentRef> GetSegmentRef(ByteReader* r) {
  SegmentRef ref;
  CKSAFE_ASSIGN_OR_RETURN(ref.offset, r->U64());
  CKSAFE_ASSIGN_OR_RETURN(ref.pages, r->U32());
  CKSAFE_ASSIGN_OR_RETURN(ref.blob_size, r->U64());
  CKSAFE_ASSIGN_OR_RETURN(ref.blob_checksum, r->U64());
  return ref;
}

StatusOr<ManifestRecord> DecodeRecordPayload(const uint8_t* data,
                                             size_t size) {
  ByteReader r(data, size);
  ManifestRecord record;
  CKSAFE_ASSIGN_OR_RETURN(record.tenant, r.String());
  CKSAFE_ASSIGN_OR_RETURN(record.sequence, r.U64());
  CKSAFE_ASSIGN_OR_RETURN(record.num_rows, r.U64());
  CKSAFE_ASSIGN_OR_RETURN(record.snapshot, GetSegmentRef(&r));
  CKSAFE_ASSIGN_OR_RETURN(uint8_t has_dict, r.U8());
  if (has_dict > 1) return Status::IOError("bad dictionary marker");
  record.has_dict = has_dict == 1;
  if (record.has_dict) {
    CKSAFE_ASSIGN_OR_RETURN(record.dict_first_id, r.U32());
    CKSAFE_ASSIGN_OR_RETURN(record.dict_count, r.U32());
    CKSAFE_ASSIGN_OR_RETURN(record.dict, GetSegmentRef(&r));
  }
  if (!r.exhausted()) return Status::IOError("record has trailing bytes");
  return record;
}

}  // namespace

std::vector<uint8_t> EncodeManifestRecord(const ManifestRecord& record) {
  ByteWriter payload;
  payload.PutString(record.tenant);
  payload.PutU64(record.sequence);
  payload.PutU64(record.num_rows);
  PutSegmentRef(&payload, record.snapshot);
  payload.PutU8(record.has_dict ? 1 : 0);
  if (record.has_dict) {
    payload.PutU32(record.dict_first_id);
    payload.PutU32(record.dict_count);
    PutSegmentRef(&payload, record.dict);
  }
  ByteWriter framed;
  framed.PutU32(kManifestMagic);
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  framed.PutU64(Fnv1a64(payload.bytes().data(), payload.size()));
  std::vector<uint8_t> bytes = framed.bytes();
  bytes.insert(bytes.end(), payload.bytes().begin(), payload.bytes().end());
  return bytes;
}

ManifestScan ScanManifest(const std::vector<uint8_t>& bytes) {
  ManifestScan scan;
  size_t pos = 0;
  while (bytes.size() - pos >= kRecordHeaderSize) {
    ByteReader header(bytes.data() + pos, kRecordHeaderSize);
    const uint32_t magic = *header.U32();
    const uint32_t payload_len = *header.U32();
    const uint64_t checksum = *header.U64();
    if (magic != kManifestMagic || payload_len > kMaxRecordPayload) break;
    if (bytes.size() - pos - kRecordHeaderSize < payload_len) break;
    const uint8_t* payload = bytes.data() + pos + kRecordHeaderSize;
    if (Fnv1a64(payload, payload_len) != checksum) break;
    auto record = DecodeRecordPayload(payload, payload_len);
    if (!record.ok()) break;
    scan.records.push_back(*std::move(record));
    pos += kRecordHeaderSize + payload_len;
    scan.record_ends.push_back(pos);
  }
  scan.committed_bytes = pos;
  scan.torn_bytes = bytes.size() - pos;
  return scan;
}

}  // namespace cksafe
