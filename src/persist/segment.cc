#include "cksafe/persist/segment.h"

#include <cstring>
#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {
namespace {

constexpr uint32_t kSnapshotBlobMagic = 0x50414e53;    // "SNAP"
constexpr uint32_t kDictionaryBlobMagic = 0x54434944;  // "DICT"

// Offset of the checksum field inside the 16-byte page header; the
// checksum covers bytes [0, kChecksumOffset) plus the payload.
constexpr size_t kChecksumOffset = 8;

uint64_t PageChecksum(const uint8_t* page, size_t payload_len) {
  const uint64_t header_part = Fnv1a64(page, kChecksumOffset);
  return Fnv1a64(page + kPageHeaderSize, payload_len, header_part);
}

void PutLE(uint8_t* out, uint64_t v, int width) {
  for (int i = 0; i < width; ++i) out[i] = (v >> (8 * i)) & 0xffu;
}

uint64_t GetLE(const uint8_t* in, int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

size_t PagesForBlob(size_t blob_size) {
  if (blob_size == 0) return 1;
  return (blob_size + kPagePayloadCapacity - 1) / kPagePayloadCapacity;
}

std::vector<uint8_t> FrameSegmentPages(PageType type,
                                       const std::vector<uint8_t>& blob) {
  const size_t num_pages = PagesForBlob(blob.size());
  std::vector<uint8_t> pages(num_pages * kPageSize, 0);
  size_t consumed = 0;
  for (size_t p = 0; p < num_pages; ++p) {
    uint8_t* page = pages.data() + p * kPageSize;
    const size_t payload_len =
        std::min(kPagePayloadCapacity, blob.size() - consumed);
    uint8_t flags = 0;
    if (p == 0) flags |= kPageFlagFirst;
    if (p + 1 == num_pages) flags |= kPageFlagLast;
    PutLE(page, kPageMagic, 4);
    PutLE(page + 4, payload_len, 2);
    page[6] = static_cast<uint8_t>(type);
    page[7] = flags;
    std::memcpy(page + kPageHeaderSize, blob.data() + consumed, payload_len);
    PutLE(page + kChecksumOffset, PageChecksum(page, payload_len), 8);
    consumed += payload_len;
  }
  CKSAFE_CHECK_EQ(consumed, blob.size());
  return pages;
}

Status UnframeSegmentPage(const uint8_t* page, PageType expected_type,
                          bool expect_first, bool* is_last,
                          std::vector<uint8_t>* blob) {
  if (GetLE(page, 4) != kPageMagic) {
    return Status::IOError("bad page magic");
  }
  const size_t payload_len = GetLE(page + 4, 2);
  if (payload_len > kPagePayloadCapacity) {
    return Status::IOError("page payload length out of range");
  }
  if (page[6] != static_cast<uint8_t>(expected_type)) {
    return Status::IOError("unexpected page type");
  }
  const uint8_t flags = page[7];
  if (expect_first != ((flags & kPageFlagFirst) != 0)) {
    return Status::IOError("page continuation flags inconsistent");
  }
  const uint64_t stored = GetLE(page + kChecksumOffset, 8);
  if (stored != PageChecksum(page, payload_len)) {
    return Status::IOError("page checksum mismatch");
  }
  blob->insert(blob->end(), page + kPageHeaderSize,
               page + kPageHeaderSize + payload_len);
  *is_last = (flags & kPageFlagLast) != 0;
  return Status::OK();
}

uint32_t LabelDictionary::InternInto(const std::string& label,
                                     Delta* delta) const {
  if (const auto it = ids_.find(label); it != ids_.end()) return it->second;
  if (delta->labels.empty()) {
    delta->first_id = static_cast<uint32_t>(labels_.size());
  }
  // The label may already be staged (two buckets sharing a new label).
  for (size_t i = 0; i < delta->labels.size(); ++i) {
    if (delta->labels[i] == label) {
      return delta->first_id + static_cast<uint32_t>(i);
    }
  }
  delta->labels.push_back(label);
  return delta->first_id + static_cast<uint32_t>(delta->labels.size() - 1);
}

Status LabelDictionary::Apply(const Delta& delta) {
  if (delta.empty()) return Status::OK();
  if (delta.first_id != labels_.size()) {
    return Status::IOError(
        "dictionary delta out of order: first id " +
        std::to_string(delta.first_id) + " but dictionary holds " +
        std::to_string(labels_.size()) + " labels");
  }
  for (const std::string& label : delta.labels) {
    if (ids_.count(label) != 0) {
      return Status::IOError("dictionary delta re-adds label: " + label);
    }
    ids_[label] = static_cast<uint32_t>(labels_.size());
    labels_.push_back(label);
  }
  return Status::OK();
}

StatusOr<std::string> LabelDictionary::Lookup(uint32_t id) const {
  if (id >= labels_.size()) {
    return Status::IOError("dictionary id out of range: " + std::to_string(id));
  }
  return labels_[id];
}

std::vector<uint8_t> EncodeDictionaryDelta(
    const LabelDictionary::Delta& delta) {
  ByteWriter w;
  w.PutU32(kDictionaryBlobMagic);
  w.PutU32(delta.first_id);
  w.PutU32(static_cast<uint32_t>(delta.labels.size()));
  for (const std::string& label : delta.labels) w.PutString(label);
  return w.bytes();
}

StatusOr<LabelDictionary::Delta> DecodeDictionaryDelta(
    const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  CKSAFE_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kDictionaryBlobMagic) {
    return Status::IOError("bad dictionary blob magic");
  }
  LabelDictionary::Delta delta;
  CKSAFE_ASSIGN_OR_RETURN(delta.first_id, r.U32());
  CKSAFE_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  delta.labels.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CKSAFE_ASSIGN_OR_RETURN(std::string label, r.String());
    delta.labels.push_back(std::move(label));
  }
  if (!r.exhausted()) return Status::IOError("dictionary blob has trailing bytes");
  return delta;
}

std::vector<uint8_t> EncodeSnapshotBlob(const ReleaseSnapshot& snapshot,
                                        const StoredProfile& profile,
                                        const LabelDictionary& dict,
                                        LabelDictionary::Delta* dict_delta) {
  ByteWriter w;
  w.PutU32(kSnapshotBlobMagic);
  w.PutU64(snapshot.sequence);
  w.PutU64(static_cast<uint64_t>(snapshot.num_rows));
  w.PutU32(static_cast<uint32_t>(snapshot.node.size()));
  for (int level : snapshot.node) w.PutI32(level);
  const Bucketization& b = snapshot.bucketization;
  w.PutU32(static_cast<uint32_t>(b.sensitive_domain_size()));
  w.PutU32(static_cast<uint32_t>(b.num_buckets()));
  for (const Bucket& bucket : b.buckets()) {
    w.PutU32(dict.InternInto(bucket.qi_label, dict_delta));
    w.PutU32(static_cast<uint32_t>(bucket.members.size()));
    for (PersonId member : bucket.members) w.PutU32(member);
    uint32_t nonzero = 0;
    for (uint32_t count : bucket.histogram) nonzero += (count != 0);
    w.PutU32(nonzero);
    for (size_t s = 0; s < bucket.histogram.size(); ++s) {
      if (bucket.histogram[s] == 0) continue;
      w.PutU32(static_cast<uint32_t>(s));
      w.PutU32(bucket.histogram[s]);
    }
  }
  if (profile.empty()) {
    w.PutU8(0);
  } else {
    CKSAFE_CHECK_EQ(profile.implication.size(), profile.negation.size());
    w.PutU8(1);
    w.PutU32(static_cast<uint32_t>(profile.implication.size()));
    for (double v : profile.implication) w.PutDouble(v);
    for (double v : profile.negation) w.PutDouble(v);
  }
  return w.bytes();
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> DecodeSnapshotBlob(
    const std::vector<uint8_t>& blob, const LabelDictionary& dict,
    StoredProfile* profile) {
  ByteReader r(blob);
  CKSAFE_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kSnapshotBlobMagic) {
    return Status::IOError("bad snapshot blob magic");
  }
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  CKSAFE_ASSIGN_OR_RETURN(snapshot->sequence, r.U64());
  CKSAFE_ASSIGN_OR_RETURN(uint64_t num_rows, r.U64());
  snapshot->num_rows = static_cast<size_t>(num_rows);
  CKSAFE_ASSIGN_OR_RETURN(uint32_t node_size, r.U32());
  snapshot->node.resize(node_size);
  for (uint32_t i = 0; i < node_size; ++i) {
    CKSAFE_ASSIGN_OR_RETURN(snapshot->node[i], r.I32());
  }
  CKSAFE_ASSIGN_OR_RETURN(uint32_t domain, r.U32());
  CKSAFE_ASSIGN_OR_RETURN(uint32_t num_buckets, r.U32());
  Bucketization bucketization(domain);
  for (uint32_t bi = 0; bi < num_buckets; ++bi) {
    Bucket bucket;
    CKSAFE_ASSIGN_OR_RETURN(uint32_t label_id, r.U32());
    CKSAFE_ASSIGN_OR_RETURN(bucket.qi_label, dict.Lookup(label_id));
    CKSAFE_ASSIGN_OR_RETURN(uint32_t member_count, r.U32());
    bucket.members.reserve(member_count);
    for (uint32_t m = 0; m < member_count; ++m) {
      CKSAFE_ASSIGN_OR_RETURN(uint32_t member, r.U32());
      bucket.members.push_back(static_cast<PersonId>(member));
    }
    bucket.histogram.assign(domain, 0);
    CKSAFE_ASSIGN_OR_RETURN(uint32_t nonzero, r.U32());
    for (uint32_t n = 0; n < nonzero; ++n) {
      CKSAFE_ASSIGN_OR_RETURN(uint32_t index, r.U32());
      CKSAFE_ASSIGN_OR_RETURN(uint32_t count, r.U32());
      if (index >= domain) {
        return Status::IOError("histogram index out of range");
      }
      bucket.histogram[index] = count;
    }
    // AddBucket re-runs the structural invariants (membership disjoint,
    // histogram totals match), so a decoded-but-inconsistent segment is
    // rejected here rather than surfacing as wrong answers later.
    CKSAFE_RETURN_IF_ERROR(bucketization.AddBucket(std::move(bucket)));
  }
  snapshot->bucketization = std::move(bucketization);
  profile->implication.clear();
  profile->negation.clear();
  CKSAFE_ASSIGN_OR_RETURN(uint8_t has_profile, r.U8());
  if (has_profile == 1) {
    CKSAFE_ASSIGN_OR_RETURN(uint32_t curve_len, r.U32());
    profile->implication.resize(curve_len);
    profile->negation.resize(curve_len);
    for (uint32_t i = 0; i < curve_len; ++i) {
      CKSAFE_ASSIGN_OR_RETURN(profile->implication[i], r.Double());
    }
    for (uint32_t i = 0; i < curve_len; ++i) {
      CKSAFE_ASSIGN_OR_RETURN(profile->negation[i], r.Double());
    }
  } else if (has_profile != 0) {
    return Status::IOError("bad profile marker");
  }
  if (!r.exhausted()) return Status::IOError("snapshot blob has trailing bytes");
  return std::shared_ptr<const ReleaseSnapshot>(std::move(snapshot));
}

}  // namespace cksafe
