#include "cksafe/persist/durable_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "cksafe/core/disclosure.h"
#include "cksafe/util/check.h"

namespace cksafe {
namespace {

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kSegmentsFile[] = "segments.dat";

// Appends are chopped into chunks this small so the test crash seam can
// land a SIGKILL inside a page or manifest record, not only between them.
constexpr size_t kAppendChunk = 512;

StoredProfile ComputeProfile(const Bucketization& bucketization,
                             size_t max_k) {
  StoredProfile profile;
  if (max_k == 0 || bucketization.num_buckets() == 0) return profile;
  const DisclosureProfile curves =
      DisclosureAnalyzer(bucketization).Profile(max_k);
  profile.implication = curves.implication;
  profile.negation = curves.negation;
  return profile;
}

}  // namespace

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Open(
    DurableStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durable store needs a directory");
  }
  if (options.buffer_pool_pages == 0) {
    return Status::InvalidArgument("buffer pool needs at least one page");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + options.dir + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<DurableStore> store(new DurableStore(std::move(options)));
  store->manifest_path_ = store->options_.dir + "/" + kManifestFile;
  store->segments_path_ = store->options_.dir + "/" + kSegmentsFile;
  CKSAFE_RETURN_IF_ERROR(store->Recover());
  return store;
}

Status DurableStore::Recover() {
  // Open (creating if absent) before reading, so a fresh directory scans
  // as an empty store rather than a missing-file error.
  CKSAFE_RETURN_IF_ERROR(segments_.Open(segments_path_));
  CKSAFE_RETURN_IF_ERROR(manifest_.Open(manifest_path_));
  CKSAFE_RETURN_IF_ERROR(reader_.Open(segments_path_));

  CKSAFE_ASSIGN_OR_RETURN(std::vector<uint8_t> manifest_bytes,
                          ReadFileBytes(manifest_path_));
  const ManifestScan scan = ScanManifest(manifest_bytes);

  // The manifest scan validated framing; now validate what each record
  // points at. A record only commits if its segments are whole (every
  // page checksums, extents line up, the dictionary delta applies in
  // order, the per-tenant sequence is contiguous); the first failure cuts
  // the committed prefix there — everything after is a torn tail, even
  // records that would individually validate.
  const uint64_t segment_file_size = segments_.size();
  uint64_t segment_end = 0;
  size_t committed = 0;
  for (const ManifestRecord& record : scan.records) {
    TenantState& state = tenants_[record.tenant];
    if (record.sequence != state.latest + 1) break;
    uint64_t expect_offset = segment_end;
    LabelDictionary::Delta delta;
    if (record.has_dict) {
      if (record.dict.offset != expect_offset) break;
      const uint64_t dict_extent =
          record.dict.offset +
          static_cast<uint64_t>(record.dict.pages) * kPageSize;
      if (dict_extent > segment_file_size) break;
      std::vector<uint8_t> dict_blob;
      if (!ReadSegmentDirect(record.dict, PageType::kDictionary, &dict_blob)
               .ok()) {
        break;
      }
      auto decoded = DecodeDictionaryDelta(dict_blob);
      if (!decoded.ok()) break;
      delta = *std::move(decoded);
      if (delta.first_id != record.dict_first_id ||
          delta.labels.size() != record.dict_count) {
        break;
      }
      expect_offset = dict_extent;
    }
    if (record.snapshot.offset != expect_offset) break;
    const uint64_t snap_extent =
        record.snapshot.offset +
        static_cast<uint64_t>(record.snapshot.pages) * kPageSize;
    if (snap_extent > segment_file_size) break;
    std::vector<uint8_t> snap_blob;
    if (!ReadSegmentDirect(record.snapshot, PageType::kSnapshot, &snap_blob)
             .ok()) {
      break;
    }
    // Commit the record in memory.
    if (!delta.empty()) {
      if (!state.dict.Apply(delta).ok()) break;
    }
    state.latest = record.sequence;
    state.history[record.sequence] = records_.size();
    records_.push_back(record);
    segment_end = snap_extent;
    ++committed;
  }

  // Tenants that only appeared in discarded records must not linger.
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    it = it->second.latest == 0 ? tenants_.erase(it) : std::next(it);
  }

  const uint64_t manifest_committed =
      committed == 0 ? 0 : scan.record_ends[committed - 1];
  recovery_.records = committed;
  recovery_.tenants = tenants_.size();
  recovery_.manifest_bytes = manifest_committed;
  recovery_.manifest_torn_bytes = manifest_bytes.size() - manifest_committed;
  recovery_.segment_bytes = segment_end;
  recovery_.segment_torn_bytes = segment_file_size - segment_end;

  if (recovery_.manifest_torn_bytes > 0) {
    CKSAFE_RETURN_IF_ERROR(manifest_.Truncate(manifest_committed));
    CKSAFE_RETURN_IF_ERROR(manifest_.Sync());
  }
  if (recovery_.segment_torn_bytes > 0) {
    CKSAFE_RETURN_IF_ERROR(segments_.Truncate(segment_end));
    CKSAFE_RETURN_IF_ERROR(segments_.Sync());
  }

  pool_ = std::make_unique<BufferPool>(&reader_, options_.buffer_pool_pages);
  return Status::OK();
}

Status DurableStore::CrashableAppend(AppendFile* file,
                                     const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t chunk = std::min(kAppendChunk, bytes.size() - pos);
    CKSAFE_RETURN_IF_ERROR(file->Append(bytes.data() + pos, chunk));
    pos += chunk;
    appended_bytes_ += chunk;
    if (options_.test_crash_after_bytes >= 0 &&
        appended_bytes_ >=
            static_cast<uint64_t>(options_.test_crash_after_bytes)) {
      // The torture test's simulated power cut: die without flushing,
      // destructing, or syncing anything further.
      ::raise(SIGKILL);
    }
  }
  return Status::OK();
}

Status DurableStore::AppendPublish(const std::string& tenant,
                                   const ReleaseSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable store wedged by an earlier append failure; reopen to "
        "recover");
  }
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  TenantState& state = tenants_[tenant];
  if (snapshot.sequence != state.latest + 1) {
    return Status::InvalidArgument(
        "out-of-order publish for tenant " + tenant + ": expected sequence " +
        std::to_string(state.latest + 1) + ", got " +
        std::to_string(snapshot.sequence));
  }

  const StoredProfile profile =
      ComputeProfile(snapshot.bucketization, options_.profile_max_k);
  LabelDictionary::Delta delta;
  const std::vector<uint8_t> snap_blob =
      EncodeSnapshotBlob(snapshot, profile, state.dict, &delta);

  ManifestRecord record;
  record.tenant = tenant;
  record.sequence = snapshot.sequence;
  record.num_rows = snapshot.num_rows;

  // Protocol step 1: segment pages (dictionary delta first, then the
  // snapshot), then fsync the segment file.
  auto wedge = [this](Status status) {
    wedged_ = true;
    return status;
  };
  if (!delta.empty()) {
    const std::vector<uint8_t> dict_blob = EncodeDictionaryDelta(delta);
    record.has_dict = true;
    record.dict_first_id = delta.first_id;
    record.dict_count = static_cast<uint32_t>(delta.labels.size());
    record.dict.offset = segments_.size();
    record.dict.pages = static_cast<uint32_t>(PagesForBlob(dict_blob.size()));
    record.dict.blob_size = dict_blob.size();
    record.dict.blob_checksum = Fnv1a64(dict_blob.data(), dict_blob.size());
    if (Status s = CrashableAppend(
            &segments_, FrameSegmentPages(PageType::kDictionary, dict_blob));
        !s.ok()) {
      return wedge(std::move(s));
    }
  }
  record.snapshot.offset = segments_.size();
  record.snapshot.pages = static_cast<uint32_t>(PagesForBlob(snap_blob.size()));
  record.snapshot.blob_size = snap_blob.size();
  record.snapshot.blob_checksum = Fnv1a64(snap_blob.data(), snap_blob.size());
  if (Status s = CrashableAppend(
          &segments_, FrameSegmentPages(PageType::kSnapshot, snap_blob));
      !s.ok()) {
    return wedge(std::move(s));
  }
  if (Status s = segments_.Sync(); !s.ok()) return wedge(std::move(s));

  // Protocol step 2: the manifest record — the commit point.
  if (Status s = CrashableAppend(&manifest_, EncodeManifestRecord(record));
      !s.ok()) {
    return wedge(std::move(s));
  }
  if (Status s = manifest_.Sync(); !s.ok()) return wedge(std::move(s));

  // Committed on disk; commit in memory.
  if (!delta.empty()) {
    CKSAFE_CHECK(state.dict.Apply(delta).ok())
        << "self-staged dictionary delta must apply";
  }
  state.latest = snapshot.sequence;
  state.history[snapshot.sequence] = records_.size();
  records_.push_back(std::move(record));
  return Status::OK();
}

Status DurableStore::ReadSegmentDirect(const SegmentRef& ref, PageType type,
                                       std::vector<uint8_t>* blob) const {
  blob->clear();
  blob->reserve(ref.blob_size);
  std::vector<uint8_t> page(kPageSize);
  bool is_last = false;
  for (uint32_t p = 0; p < ref.pages; ++p) {
    if (is_last) return Status::IOError("segment continues past last page");
    CKSAFE_RETURN_IF_ERROR(reader_.ReadAt(
        ref.offset + static_cast<uint64_t>(p) * kPageSize, page.data(),
        kPageSize));
    CKSAFE_RETURN_IF_ERROR(
        UnframeSegmentPage(page.data(), type, p == 0, &is_last, blob));
  }
  if (!is_last) return Status::IOError("segment missing its last page");
  if (blob->size() != ref.blob_size) {
    return Status::IOError("segment blob size mismatch");
  }
  if (Fnv1a64(blob->data(), blob->size()) != ref.blob_checksum) {
    return Status::IOError("segment blob checksum mismatch");
  }
  return Status::OK();
}

Status DurableStore::ReadSegmentPooled(const SegmentRef& ref, PageType type,
                                       std::vector<uint8_t>* blob) const {
  blob->clear();
  blob->reserve(ref.blob_size);
  CKSAFE_CHECK_EQ(ref.offset % kPageSize, 0u) << "segment offset unaligned";
  const uint64_t first_page = ref.offset / kPageSize;
  bool is_last = false;
  for (uint32_t p = 0; p < ref.pages; ++p) {
    if (is_last) return Status::IOError("segment continues past last page");
    CKSAFE_ASSIGN_OR_RETURN(BufferPool::PageRef page,
                            pool_->Fetch(first_page + p));
    CKSAFE_RETURN_IF_ERROR(
        UnframeSegmentPage(page.data(), type, p == 0, &is_last, blob));
  }
  if (!is_last) return Status::IOError("segment missing its last page");
  if (blob->size() != ref.blob_size) {
    return Status::IOError("segment blob size mismatch");
  }
  if (Fnv1a64(blob->data(), blob->size()) != ref.blob_checksum) {
    return Status::IOError("segment blob checksum mismatch");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> DurableStore::LoadSnapshot(
    const std::string& tenant, uint64_t sequence,
    StoredProfile* profile) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound("unknown tenant: " + tenant);
  }
  const auto seq_it = tenant_it->second.history.find(sequence);
  if (seq_it == tenant_it->second.history.end()) {
    return Status::NotFound("tenant " + tenant + " has no committed sequence " +
                            std::to_string(sequence));
  }
  const ManifestRecord& record = records_[seq_it->second];
  std::vector<uint8_t> blob;
  CKSAFE_RETURN_IF_ERROR(
      ReadSegmentPooled(record.snapshot, PageType::kSnapshot, &blob));
  StoredProfile local_profile;
  CKSAFE_ASSIGN_OR_RETURN(
      std::shared_ptr<const ReleaseSnapshot> snapshot,
      DecodeSnapshotBlob(blob, tenant_it->second.dict, &local_profile));
  if (snapshot->sequence != sequence) {
    return Status::IOError("decoded snapshot carries sequence " +
                           std::to_string(snapshot->sequence) +
                           ", record says " + std::to_string(sequence));
  }
  if (profile != nullptr) *profile = std::move(local_profile);
  return snapshot;
}

Status DurableStore::RehydrateInto(ServingDirectory* directory) const {
  CKSAFE_CHECK(directory != nullptr);
  for (const std::string& tenant : tenants()) {
    const uint64_t latest = LatestSequence(tenant);
    if (latest == 0) continue;
    SnapshotStore* store = directory->GetOrAddTenant(tenant);
    const std::shared_ptr<const ReleaseSnapshot> current = store->Current();
    if (current != nullptr && current->sequence >= latest) continue;
    CKSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const ReleaseSnapshot> snapshot,
                            LoadSnapshot(tenant, latest));
    store->Publish(std::move(snapshot));
  }
  return Status::OK();
}

std::vector<std::string> DurableStore::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

std::vector<uint64_t> DurableStore::Sequences(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> sequences;
  if (const auto it = tenants_.find(tenant); it != tenants_.end()) {
    sequences.reserve(it->second.history.size());
    for (const auto& [sequence, index] : it->second.history) {
      sequences.push_back(sequence);
    }
  }
  return sequences;
}

uint64_t DurableStore::LatestSequence(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.latest;
}

std::vector<ManifestRecord> DurableStore::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

StatusOr<DurableStore::VerifyReport> DurableStore::Verify() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerifyReport report;
  // Replay from the first record with fresh dictionaries: the audit must
  // not trust any in-memory state, only bytes on disk.
  std::map<std::string, LabelDictionary> replay_dicts;
  for (size_t i = 0; i < records_.size(); ++i) {
    const ManifestRecord& record = records_[i];
    const std::string where =
        "record " + std::to_string(i) + " (tenant " + record.tenant +
        ", sequence " + std::to_string(record.sequence) + ")";
    LabelDictionary& dict = replay_dicts[record.tenant];
    if (record.has_dict) {
      std::vector<uint8_t> dict_blob;
      CKSAFE_RETURN_IF_ERROR(
          ReadSegmentDirect(record.dict, PageType::kDictionary, &dict_blob));
      report.pages += record.dict.pages;
      CKSAFE_ASSIGN_OR_RETURN(LabelDictionary::Delta delta,
                              DecodeDictionaryDelta(dict_blob));
      if (delta.first_id != record.dict_first_id ||
          delta.labels.size() != record.dict_count) {
        return Status::IOError("dictionary delta disagrees with manifest at " +
                               where);
      }
      CKSAFE_RETURN_IF_ERROR(dict.Apply(delta));
    }
    std::vector<uint8_t> snap_blob;
    CKSAFE_RETURN_IF_ERROR(
        ReadSegmentDirect(record.snapshot, PageType::kSnapshot, &snap_blob));
    report.pages += record.snapshot.pages;
    StoredProfile stored;
    CKSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const ReleaseSnapshot> snapshot,
                            DecodeSnapshotBlob(snap_blob, dict, &stored));
    if (snapshot->sequence != record.sequence ||
        snapshot->num_rows != record.num_rows) {
      return Status::IOError("snapshot header disagrees with manifest at " +
                             where);
    }
    if (!stored.empty()) {
      // Recompute the disclosure curves from the rehydrated buckets and
      // demand bit-identity — this certifies the decoded bucketization
      // semantically (same worst-case disclosure to the last bit), not
      // just structurally.
      const StoredProfile fresh = ComputeProfile(snapshot->bucketization,
                                                 stored.implication.size() - 1);
      if (fresh.implication.size() != stored.implication.size() ||
          fresh.negation.size() != stored.negation.size()) {
        return Status::IOError("recomputed profile shape differs at " + where);
      }
      for (size_t k = 0; k < stored.implication.size(); ++k) {
        if (fresh.implication[k] != stored.implication[k] ||
            fresh.negation[k] != stored.negation[k]) {
          return Status::IOError(
              "recomputed disclosure profile differs at " + where +
              ", budget k=" + std::to_string(k));
        }
      }
      ++report.profiles_checked;
    }
    ++report.records;
  }
  report.tenants = replay_dicts.size();
  return report;
}

}  // namespace cksafe
