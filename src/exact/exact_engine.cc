#include "cksafe/exact/exact_engine.h"

#include <algorithm>
#include <functional>

#include "cksafe/exact/world_enumerator.h"
#include "cksafe/util/math_util.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<ExactEngine> ExactEngine::Create(const Bucketization& bucketization,
                                          ExactEngineOptions options) {
  WorldEnumerator enumerator(bucketization);
  const double world_count = enumerator.WorldCount();
  if (world_count > static_cast<double>(options.max_worlds)) {
    return Status::ResourceExhausted(
        StrFormat("instance has %.3g consistent worlds, cap is %llu",
                  world_count,
                  static_cast<unsigned long long>(options.max_worlds)));
  }

  ExactEngine engine;
  engine.domain_size_ = bucketization.sensitive_domain_size();
  for (const Bucket& b : bucketization.buckets()) {
    for (PersonId p : b.members) engine.persons_.push_back(p);
  }
  std::sort(engine.persons_.begin(), engine.persons_.end());
  const size_t max_person =
      engine.persons_.empty() ? 0 : engine.persons_.back() + 1;
  engine.person_index_.assign(max_person, -1);
  for (size_t i = 0; i < engine.persons_.size(); ++i) {
    engine.person_index_[engine.persons_[i]] = static_cast<int32_t>(i);
  }

  const size_t n_worlds = static_cast<size_t>(world_count);
  engine.num_worlds_ = n_worlds;
  engine.atom_bits_.assign(engine.persons_.size() * engine.domain_size_,
                           Bitset(n_worlds));
  engine.present_.assign(engine.atom_bits_.size(), false);
  for (const Bucket& b : bucketization.buckets()) {
    for (PersonId p : b.members) {
      const size_t dense = static_cast<size_t>(engine.person_index_[p]);
      for (size_t s = 0; s < engine.domain_size_; ++s) {
        if (b.histogram[s] > 0) {
          engine.present_[dense * engine.domain_size_ + s] = true;
        }
      }
    }
  }

  size_t world_index = 0;
  enumerator.ForEachWorld([&](const std::vector<int32_t>& world) {
    CKSAFE_CHECK_LT(world_index, n_worlds);
    for (size_t i = 0; i < engine.persons_.size(); ++i) {
      const int32_t value = world[engine.persons_[i]];
      CKSAFE_CHECK_GE(value, 0);
      engine.atom_bits_[i * engine.domain_size_ + static_cast<size_t>(value)]
          .Set(world_index);
    }
    ++world_index;
    return true;
  });
  CKSAFE_CHECK_EQ(world_index, n_worlds);
  return engine;
}

size_t ExactEngine::AtomIndex(const Atom& atom) const {
  CKSAFE_CHECK_LT(atom.person, person_index_.size());
  const int32_t dense = person_index_[atom.person];
  CKSAFE_CHECK_GE(dense, 0) << "person not in bucketization";
  CKSAFE_CHECK_GE(atom.value, 0);
  CKSAFE_CHECK_LT(static_cast<size_t>(atom.value), domain_size_);
  return static_cast<size_t>(dense) * domain_size_ +
         static_cast<size_t>(atom.value);
}

const Bitset& ExactEngine::AtomWorlds(const Atom& atom) const {
  return atom_bits_[AtomIndex(atom)];
}

Bitset ExactEngine::FormulaWorlds(const KnowledgeFormula& formula) const {
  Bitset result(num_worlds_, /*all_ones=*/true);
  for (const BasicImplication& imp : formula.implications()) {
    // (∧ antecedents) → (∨ consequents) == ¬(∧ antecedents) ∨ (∨ consequents)
    Bitset antecedent(num_worlds_, /*all_ones=*/true);
    for (const Atom& a : imp.antecedents) antecedent &= AtomWorlds(a);
    Bitset holds = antecedent.Not();
    for (const Atom& b : imp.consequents) holds |= AtomWorlds(b);
    result &= holds;
  }
  return result;
}

bool ExactEngine::IsConsistent(const KnowledgeFormula& formula) const {
  return FormulaWorlds(formula).Any();
}

uint64_t ExactEngine::CountWorlds(const KnowledgeFormula& formula) const {
  return FormulaWorlds(formula).Count();
}

StatusOr<double> ExactEngine::ConditionalProbability(
    const Atom& target, const KnowledgeFormula& formula) const {
  const Bitset sat = FormulaWorlds(formula);
  const size_t denom = sat.Count();
  if (denom == 0) {
    return Status::FailedPrecondition(
        "formula is inconsistent with the bucketization");
  }
  const size_t numer = Bitset::AndCount(sat, AtomWorlds(target));
  return static_cast<double>(numer) / static_cast<double>(denom);
}

StatusOr<ExactDisclosure> ExactEngine::DisclosureRisk(
    const KnowledgeFormula& formula) const {
  const Bitset sat = FormulaWorlds(formula);
  const size_t denom = sat.Count();
  if (denom == 0) {
    return Status::FailedPrecondition(
        "formula is inconsistent with the bucketization");
  }
  ExactDisclosure best;
  best.formula = formula;
  for (size_t i = 0; i < persons_.size(); ++i) {
    for (size_t s = 0; s < domain_size_; ++s) {
      const size_t numer =
          Bitset::AndCount(sat, atom_bits_[i * domain_size_ + s]);
      const double p = static_cast<double>(numer) / static_cast<double>(denom);
      if (p > best.disclosure) {
        best.disclosure = p;
        best.target = Atom{persons_[i], static_cast<int32_t>(s)};
      }
    }
  }
  return best;
}

namespace {

// Disclosure of a satisfying-world bitset against either all atoms or a
// specific set of candidate targets.
struct TargetScan {
  double disclosure = 0.0;
  size_t best_atom_index = 0;
};

}  // namespace

StatusOr<ExactDisclosure> ExactEngine::MaxDisclosureSimpleImplications(
    size_t k, bool same_consequent, BruteForceOptions options) const {
  const size_t num_atoms = persons_.size() * domain_size_;
  // Formula count estimate: multisets of implications.
  //   same consequent: num_atoms consequents x C(num_atoms + k - 1, k)
  //   general: C(num_atoms^2 + k - 1, k)
  double formula_count;
  if (same_consequent) {
    formula_count = static_cast<double>(num_atoms) *
                    BinomialCoefficient(static_cast<uint32_t>(num_atoms + k - 1),
                                        static_cast<uint32_t>(k));
  } else {
    const double pairs = static_cast<double>(num_atoms) * num_atoms;
    formula_count = 1.0;
    for (size_t i = 0; i < k; ++i) formula_count *= (pairs + i);
    for (size_t i = 1; i <= k; ++i) formula_count /= static_cast<double>(i);
  }
  if (formula_count > static_cast<double>(options.max_formulas)) {
    return Status::ResourceExhausted(
        StrFormat("brute force would evaluate %.3g formulas, cap is %llu",
                  formula_count,
                  static_cast<unsigned long long>(options.max_formulas)));
  }

  auto atom_at = [&](size_t index) {
    return Atom{persons_[index / domain_size_],
                static_cast<int32_t>(index % domain_size_)};
  };

  ExactDisclosure best;
  bool found = false;

  // Evaluates one candidate conjunction bitmap; updates `best`.
  auto consider = [&](const Bitset& sat,
                      const std::vector<SimpleImplication>& implications) {
    const size_t denom = sat.Count();
    if (denom == 0) return;  // inconsistent knowledge: conditioning undefined
    auto scan_target = [&](const Bitset& target_bits, const Atom& target) {
      const size_t numer = Bitset::AndCount(sat, target_bits);
      const double p = static_cast<double>(numer) / static_cast<double>(denom);
      if (!found || p > best.disclosure) {
        found = true;
        best.disclosure = p;
        best.target = target;
        KnowledgeFormula formula;
        for (const SimpleImplication& imp : implications) {
          formula.AddSimple(imp);
        }
        best.formula = std::move(formula);
      }
    };
    if (options.all_targets) {
      for (size_t t = 0; t < num_atoms; ++t) {
        scan_target(atom_bits_[t], atom_at(t));
      }
    } else {
      for (const SimpleImplication& imp : implications) {
        scan_target(AtomWorlds(imp.consequent), imp.consequent);
      }
    }
  };

  std::vector<SimpleImplication> current;

  if (same_consequent) {
    // For each consequent atom, choose a multiset of k antecedents.
    for (size_t c = 0; c < num_atoms; ++c) {
      if (options.require_present_values && !IsPresentValue(c)) continue;
      const Atom consequent = atom_at(c);
      std::function<void(size_t, const Bitset&)> rec = [&](size_t start,
                                                           const Bitset& sat) {
        if (current.size() == k) {
          consider(sat, current);
          return;
        }
        for (size_t a = start; a < num_atoms; ++a) {
          if (options.require_present_values && !IsPresentValue(a)) continue;
          const Atom antecedent = atom_at(a);
          if (options.require_distinct_persons &&
              antecedent.person == consequent.person) {
            continue;
          }
          Bitset imp_bits = AtomWorlds(antecedent).Not();
          imp_bits |= atom_bits_[c];
          current.push_back(SimpleImplication{antecedent, consequent});
          rec(a, sat & imp_bits);
          current.pop_back();
        }
      };
      rec(0, Bitset(num_worlds_, /*all_ones=*/true));
    }
  } else {
    // Multisets of k arbitrary simple implications (ordered pairs of atoms).
    const size_t num_pairs = num_atoms * num_atoms;
    std::function<void(size_t, const Bitset&)> rec = [&](size_t start,
                                                         const Bitset& sat) {
      if (current.size() == k) {
        consider(sat, current);
        return;
      }
      for (size_t pair = start; pair < num_pairs; ++pair) {
        if (options.require_present_values &&
            (!IsPresentValue(pair / num_atoms) ||
             !IsPresentValue(pair % num_atoms))) {
          continue;
        }
        const Atom antecedent = atom_at(pair / num_atoms);
        const Atom consequent = atom_at(pair % num_atoms);
        if (options.require_distinct_persons &&
            antecedent.person == consequent.person) {
          continue;
        }
        Bitset imp_bits = AtomWorlds(antecedent).Not();
        imp_bits |= AtomWorlds(consequent);
        current.push_back(SimpleImplication{antecedent, consequent});
        rec(pair, sat & imp_bits);
        current.pop_back();
      }
    };
    rec(0, Bitset(num_worlds_, /*all_ones=*/true));
  }

  if (!found) {
    return Status::Internal("no consistent formula found (empty instance?)");
  }
  return best;
}

StatusOr<ExactDisclosure> ExactEngine::MaxDisclosureBasicImplications(
    size_t k, size_t max_antecedents, size_t max_consequents,
    BruteForceOptions options) const {
  if (max_antecedents == 0 || max_consequents == 0) {
    return Status::InvalidArgument("basic implications need >= 1 atom per side");
  }
  const size_t num_atoms = persons_.size() * domain_size_;
  auto atom_at = [&](size_t index) {
    return Atom{persons_[index / domain_size_],
                static_cast<int32_t>(index % domain_size_)};
  };

  // Materialize every candidate implication: (non-empty atom subset of size
  // <= max_antecedents) -> (non-empty atom subset of size <= max_consequents).
  std::vector<std::vector<size_t>> sides[2];
  const size_t side_caps[2] = {max_antecedents, max_consequents};
  for (int side = 0; side < 2; ++side) {
    std::vector<size_t> current;
    std::function<void(size_t)> rec = [&](size_t start) {
      if (!current.empty()) sides[side].push_back(current);
      if (current.size() == side_caps[side]) return;
      for (size_t a = start; a < num_atoms; ++a) {
        current.push_back(a);
        rec(a + 1);
        current.pop_back();
      }
    };
    rec(0);
  }

  const double num_implications =
      static_cast<double>(sides[0].size()) * sides[1].size();
  // Multisets of k implications.
  double formula_count = 1.0;
  for (size_t i = 0; i < k; ++i) formula_count *= (num_implications + i);
  for (size_t i = 1; i <= k; ++i) formula_count /= static_cast<double>(i);
  if (formula_count > static_cast<double>(options.max_formulas)) {
    return Status::ResourceExhausted(
        StrFormat("brute force would evaluate %.3g formulas, cap is %llu",
                  formula_count,
                  static_cast<unsigned long long>(options.max_formulas)));
  }

  // Bitmap and AST per candidate implication.
  std::vector<Bitset> imp_bits;
  std::vector<BasicImplication> imp_ast;
  imp_bits.reserve(sides[0].size() * sides[1].size());
  for (const auto& ante : sides[0]) {
    Bitset ante_bits(num_worlds_, /*all_ones=*/true);
    for (size_t a : ante) ante_bits &= atom_bits_[a];
    const Bitset not_ante = ante_bits.Not();
    for (const auto& cons : sides[1]) {
      Bitset holds = not_ante;
      for (size_t c : cons) holds |= atom_bits_[c];
      imp_bits.push_back(std::move(holds));
      BasicImplication imp;
      for (size_t a : ante) imp.antecedents.push_back(atom_at(a));
      for (size_t c : cons) imp.consequents.push_back(atom_at(c));
      imp_ast.push_back(std::move(imp));
    }
  }

  ExactDisclosure best;
  bool found = false;
  std::vector<size_t> chosen;
  auto consider = [&](const Bitset& sat) {
    const size_t denom = sat.Count();
    if (denom == 0) return;
    for (size_t t = 0; t < num_atoms; ++t) {
      const size_t numer = Bitset::AndCount(sat, atom_bits_[t]);
      const double p = static_cast<double>(numer) / static_cast<double>(denom);
      if (!found || p > best.disclosure) {
        found = true;
        best.disclosure = p;
        best.target = atom_at(t);
        KnowledgeFormula formula;
        for (size_t i : chosen) formula.Add(imp_ast[i]);
        best.formula = std::move(formula);
      }
    }
  };
  std::function<void(size_t, const Bitset&)> rec = [&](size_t start,
                                                       const Bitset& sat) {
    if (chosen.size() == k) {
      consider(sat);
      return;
    }
    for (size_t i = start; i < imp_bits.size(); ++i) {
      chosen.push_back(i);
      rec(i, sat & imp_bits[i]);
      chosen.pop_back();
    }
  };
  rec(0, Bitset(num_worlds_, /*all_ones=*/true));

  if (!found) return Status::Internal("no consistent formula found");
  return best;
}

StatusOr<ExactDisclosure> ExactEngine::MaxDisclosureNegations(
    size_t k, BruteForceOptions options) const {
  const size_t num_atoms = persons_.size() * domain_size_;
  const double formula_count =
      BinomialCoefficient(static_cast<uint32_t>(num_atoms),
                          static_cast<uint32_t>(k));
  if (formula_count > static_cast<double>(options.max_formulas)) {
    return Status::ResourceExhausted(
        StrFormat("brute force would evaluate %.3g formulas, cap is %llu",
                  formula_count,
                  static_cast<unsigned long long>(options.max_formulas)));
  }

  auto atom_at = [&](size_t index) {
    return Atom{persons_[index / domain_size_],
                static_cast<int32_t>(index % domain_size_)};
  };

  ExactDisclosure best;
  bool found = false;
  std::vector<size_t> chosen;

  auto consider = [&](const Bitset& sat) {
    const size_t denom = sat.Count();
    if (denom == 0) return;
    for (size_t t = 0; t < num_atoms; ++t) {
      const size_t numer = Bitset::AndCount(sat, atom_bits_[t]);
      const double p = static_cast<double>(numer) / static_cast<double>(denom);
      if (!found || p > best.disclosure) {
        found = true;
        best.disclosure = p;
        best.target = atom_at(t);
        KnowledgeFormula formula;
        for (size_t index : chosen) {
          const Atom atom = atom_at(index);
          const int32_t other =
              (atom.value + 1) % static_cast<int32_t>(domain_size_);
          formula.AddNegation(atom, other);
        }
        best.formula = std::move(formula);
      }
    }
  };

  // Combinations (no repetition: a duplicated negation is redundant).
  std::function<void(size_t, const Bitset&)> rec = [&](size_t start,
                                                       const Bitset& sat) {
    if (chosen.size() == k) {
      consider(sat);
      return;
    }
    for (size_t a = start; a < num_atoms; ++a) {
      if (options.require_present_values && !IsPresentValue(a)) continue;
      chosen.push_back(a);
      rec(a + 1, sat & atom_bits_[a].Not());
      chosen.pop_back();
    }
  };
  rec(0, Bitset(num_worlds_, /*all_ones=*/true));

  if (!found) {
    return Status::Internal("no consistent negation set found");
  }
  return best;
}

}  // namespace cksafe
