#include "cksafe/exact/world_enumerator.h"

#include <algorithm>

#include "cksafe/util/math_util.h"

namespace cksafe {

WorldEnumerator::WorldEnumerator(const Bucketization& bucketization)
    : bucketization_(bucketization) {
  for (const Bucket& b : bucketization.buckets()) {
    for (PersonId p : b.members) {
      world_size_ = std::max<size_t>(world_size_, p + 1);
    }
  }
}

double WorldEnumerator::WorldCount() const {
  double count = 1.0;
  for (const Bucket& b : bucketization_.buckets()) {
    count *= MultisetPermutationCount(b.histogram);
  }
  return count;
}

void WorldEnumerator::ForEachWorld(const Visitor& visitor) const {
  std::vector<int32_t> world(world_size_, -1);
  const auto& buckets = bucketization_.buckets();
  bool stopped = false;

  // remaining[s] = how many copies of value s are still unassigned in the
  // current bucket.
  std::function<void(size_t, size_t, std::vector<uint32_t>&)> assign_member =
      [&](size_t bucket_index, size_t member_index,
          std::vector<uint32_t>& remaining) {
        if (stopped) return;
        const Bucket& bucket = buckets[bucket_index];
        if (member_index == bucket.members.size()) {
          // Bucket fully assigned; move to the next bucket.
          if (bucket_index + 1 == buckets.size()) {
            if (!visitor(world)) stopped = true;
            return;
          }
          std::vector<uint32_t> next_remaining =
              buckets[bucket_index + 1].histogram;
          assign_member(bucket_index + 1, 0, next_remaining);
          return;
        }
        const PersonId person = bucket.members[member_index];
        for (size_t s = 0; s < remaining.size() && !stopped; ++s) {
          if (remaining[s] == 0) continue;
          --remaining[s];
          world[person] = static_cast<int32_t>(s);
          assign_member(bucket_index, member_index + 1, remaining);
          world[person] = -1;
          ++remaining[s];
        }
      };

  if (buckets.empty()) {
    visitor(world);
    return;
  }
  std::vector<uint32_t> remaining = buckets[0].histogram;
  assign_member(0, 0, remaining);
}

}  // namespace cksafe
