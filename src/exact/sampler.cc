#include "cksafe/exact/sampler.h"

#include <algorithm>
#include <cmath>

#include "cksafe/util/string_util.h"

namespace cksafe {

double PosteriorEstimate::MaxDisclosure(Atom* argmax) const {
  double best = 0.0;
  for (size_t i = 0; i < persons.size(); ++i) {
    for (size_t s = 0; s < probability[i].size(); ++s) {
      if (probability[i][s] > best) {
        best = probability[i][s];
        if (argmax != nullptr) {
          *argmax = Atom{persons[i], static_cast<int32_t>(s)};
        }
      }
    }
  }
  return best;
}

MonteCarloEngine::MonteCarloEngine(const Bucketization& bucketization,
                                   SamplerOptions options)
    : bucketization_(bucketization), options_(options) {
  CKSAFE_CHECK_GT(options_.samples, 0u);
  CKSAFE_CHECK_GT(bucketization.num_buckets(), 0u)
      << "cannot sample an empty bucketization";
}

StatusOr<SampledProbability> MonteCarloEngine::EstimateConditionalProbability(
    const Atom& target, const KnowledgeFormula& phi) const {
  Rng rng(options_.seed);
  uint64_t accepted = 0;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < options_.samples; ++i) {
    const std::vector<int32_t> world =
        bucketization_.SamplePublishedAssignment(&rng);
    if (!phi.Holds(world)) continue;
    ++accepted;
    if (target.Holds(world)) ++hits;
  }
  if (accepted < options_.min_accepted) {
    return Status::FailedPrecondition(StrFormat(
        "only %llu of %llu sampled worlds satisfy the formula (need %llu); "
        "the knowledge is too selective for rejection sampling",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(options_.samples),
        static_cast<unsigned long long>(options_.min_accepted)));
  }
  SampledProbability out;
  out.accepted = accepted;
  out.samples = options_.samples;
  out.estimate = static_cast<double>(hits) / static_cast<double>(accepted);
  out.std_error = std::sqrt(out.estimate * (1.0 - out.estimate) /
                            static_cast<double>(accepted));
  return out;
}

StatusOr<PosteriorEstimate> MonteCarloEngine::EstimatePosteriors(
    const KnowledgeFormula& phi) const {
  PosteriorEstimate out;
  for (const Bucket& b : bucketization_.buckets()) {
    for (PersonId p : b.members) out.persons.push_back(p);
  }
  std::sort(out.persons.begin(), out.persons.end());
  const size_t domain = bucketization_.sensitive_domain_size();
  std::vector<std::vector<uint64_t>> counts(
      out.persons.size(), std::vector<uint64_t>(domain, 0));

  // Dense person -> row index (person ids are dense row ids in practice,
  // but tolerate gaps).
  std::vector<int32_t> row_of(out.persons.back() + 1, -1);
  for (size_t i = 0; i < out.persons.size(); ++i) {
    row_of[out.persons[i]] = static_cast<int32_t>(i);
  }

  Rng rng(options_.seed);
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < options_.samples; ++i) {
    const std::vector<int32_t> world =
        bucketization_.SamplePublishedAssignment(&rng);
    if (!phi.Holds(world)) continue;
    ++accepted;
    for (PersonId p : out.persons) {
      ++counts[static_cast<size_t>(row_of[p])][static_cast<size_t>(world[p])];
    }
  }
  if (accepted < options_.min_accepted) {
    return Status::FailedPrecondition(StrFormat(
        "only %llu of %llu sampled worlds satisfy the formula (need %llu); "
        "the knowledge is too selective for rejection sampling",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(options_.samples),
        static_cast<unsigned long long>(options_.min_accepted)));
  }
  out.accepted = accepted;
  out.samples = options_.samples;
  out.probability.resize(out.persons.size());
  for (size_t i = 0; i < out.persons.size(); ++i) {
    out.probability[i].resize(domain);
    for (size_t s = 0; s < domain; ++s) {
      out.probability[i][s] = static_cast<double>(counts[i][s]) /
                              static_cast<double>(accepted);
    }
  }
  return out;
}

double MonteCarloEngine::EstimateFormulaProbability(
    const KnowledgeFormula& phi) const {
  Rng rng(options_.seed);
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < options_.samples; ++i) {
    if (phi.Holds(bucketization_.SamplePublishedAssignment(&rng))) {
      ++accepted;
    }
  }
  return static_cast<double>(accepted) / static_cast<double>(options_.samples);
}

}  // namespace cksafe
