#include "cksafe/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cksafe {

// Backend registration: each TU returns its kernel table, or nullptr when
// the backend is not compiled into this binary (wrong arch, or the AVX2
// path disabled via CKSAFE_ENABLE_AVX2=OFF / a -mno-avx2 toolchain).
const ScanKernels* GetScalarScanKernels();
const ScanKernels* GetAvx2ScanKernels();
const ScanKernels* GetNeonScanKernels();

namespace {

// -1 = no override; otherwise a SimdLevel. Relaxed is enough: the tests
// that flip it run sweeps on the flipping thread.
std::atomic<int> g_test_override{-1};

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

const ScanKernels* CompiledKernels(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return GetScalarScanKernels();
    case SimdLevel::kAvx2:
      return GetAvx2ScanKernels();
    case SimdLevel::kNeon:
      return GetNeonScanKernels();
  }
  return nullptr;
}

SimdLevel Detect() {
  if (SimdLevelUsable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (SimdLevelUsable(SimdLevel::kNeon)) return SimdLevel::kNeon;
  return SimdLevel::kScalar;
}

SimdLevel ResolveEnv(SimdLevel detected) {
  const char* env = std::getenv("CKSAFE_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return detected;
  }
  SimdLevel requested = SimdLevel::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    requested = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "neon") == 0) {
    requested = SimdLevel::kNeon;
  }
  // Unknown strings and unusable requests degrade to scalar rather than
  // abort: the env override is an operator knob, not an API.
  return SimdLevelUsable(requested) ? requested : SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SimdLevelUsable(SimdLevel level) {
  return CompiledKernels(level) != nullptr && CpuSupports(level);
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = Detect();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  const int override_level = g_test_override.load(std::memory_order_relaxed);
  if (override_level >= 0) {
    const auto level = static_cast<SimdLevel>(override_level);
    return SimdLevelUsable(level) ? level : SimdLevel::kScalar;
  }
  static const SimdLevel resolved = ResolveEnv(DetectedSimdLevel());
  return resolved;
}

const ScanKernels& ScanKernelsFor(SimdLevel level) {
  const ScanKernels* kernels =
      SimdLevelUsable(level) ? CompiledKernels(level) : nullptr;
  if (kernels == nullptr) kernels = GetScalarScanKernels();
  return *kernels;
}

const ScanKernels& ActiveScanKernels() {
  return ScanKernelsFor(ActiveSimdLevel());
}

void SetSimdLevelForTest(SimdLevel level) {
  g_test_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearSimdLevelForTest() {
  g_test_override.store(-1, std::memory_order_relaxed);
}

}  // namespace cksafe
