// The scalar reference backend: the exact per-element scans the MINIMIZE2
// driver ran before the dispatch seam existed, re-indexed onto the
// reversed rows (rev[offset + t] == original row[h - t]). This backend is
// the bit-identity anchor every vector backend is differential-tested
// against, so its semantics are frozen: candidates are evaluated left to
// right with strict-improvement updates (ties keep the earlier t, and at
// equal t the wa scan evaluates branch 0 before branch 1), infeasible
// (+inf) heads are skipped, and the monotone pruning bound is re-checked
// per element — a NaN bound from (-inf) + kLogInfeasible compares false
// and merely keeps the branch scanning, so pruning stays conservative.

#include <algorithm>

#include "cksafe/simd/dispatch.h"

namespace cksafe {
namespace {

void PrepareRowScalar(const LogProb* row, size_t width, LogProb* rev,
                      LogProb* rev_pm) {
  LogProb run = kLogInfeasible;
  for (size_t s = 0; s < width; ++s) {
    const size_t j = width - 1 - s;
    rev[j] = row[s];
    run = std::min(run, row[s]);
    rev_pm[j] = run;
  }
}

void FusedScanScalar(const LogProb* f, double log_ratio,
                     const LogProb* rev_no, const LogProb* rev_wa,
                     const LogProb* rev_pm_no, const LogProb* rev_pm_wa,
                     size_t offset, size_t h, FusedScanCell* out) {
  // Monotone floors of the per-bucket minima over the remaining scan: f is
  // nonincreasing as stored (clamped in minimize1.cc), so min over t' in
  // [t, h] of f(t') is f[h] and of f(t' + 1) is f[h + 1].
  const LogProb f_floor = f[h];
  const LogProb f_floor_target = f[h + 1] + log_ratio;

  // Monotone-argmin pruning per branch: every remaining candidate at
  // position t is >= floor + rev_pm[offset + t] (f monotone, rev_pm a
  // prefix min of the original row, the bound nondecreasing in t, and
  // floating addition monotone — so the bound holds for the *computed*
  // sums too); once a branch's bound cannot beat its current best that
  // branch stops scanning, never changing which candidate wins. The tile
  // is the cache-blocking unit (<= kScanTile consecutive reversed-row
  // reads per burst).
  LogProb best = kLogInfeasible;
  uint16_t best_t = 0;
  LogProb best_w = kLogInfeasible;
  uint16_t best_w_t = 0;
  uint8_t best_w_branch = 0;
  bool no_done = false;
  bool wa0_done = false;  // branch 0 of with_a (head in the wa row)
  bool wa1_done = false;  // branch 1 of with_a (target joins the bucket)
  for (size_t t0 = 0; t0 <= h && !(no_done && wa0_done && wa1_done);
       t0 += kScanTile) {
    const size_t t_end = std::min(h, t0 + kScanTile - 1);
    for (size_t t = t0; t <= t_end; ++t) {
      const size_t j = offset + t;
      const LogProb pm_no = rev_pm_no[j];
      const LogProb head_no = rev_no[j];
      if (!no_done) {
        if (f_floor + pm_no >= best) {
          no_done = true;
        } else if (head_no != kLogInfeasible) {
          const LogProb candidate = f[t] + head_no;
          if (candidate < best) {
            best = candidate;
            best_t = static_cast<uint16_t>(t);
          }
        }
      }
      // with_a evaluates branch 0 before branch 1 at each t, exactly like
      // the historical kernel, so tie-breaking is unchanged.
      if (!wa0_done) {
        if (f_floor + rev_pm_wa[j] >= best_w) {
          wa0_done = true;
        } else {
          const LogProb head_with = rev_wa[j];
          if (head_with != kLogInfeasible) {
            const LogProb candidate = f[t] + head_with;
            if (candidate < best_w) {
              best_w = candidate;
              best_w_t = static_cast<uint16_t>(t);
              best_w_branch = 0;
            }
          }
        }
      }
      if (!wa1_done) {
        if (f_floor_target + pm_no >= best_w) {
          wa1_done = true;
        } else if (head_no != kLogInfeasible) {
          const LogProb candidate = f[t + 1] + log_ratio + head_no;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint16_t>(t);
            best_w_branch = 1;
          }
        }
      }
      if (no_done && wa0_done && wa1_done) break;
    }
  }
  out->no = best;
  out->no_t = best_t;
  out->wa = best_w;
  out->wa_t = best_w_t;
  out->wa_branch = best_w_branch;
}

LogProb SuffixScanScalar(const LogProb* f, const LogProb* rev_next,
                         const LogProb* rev_pm, size_t offset, size_t h) {
  const LogProb f_floor = f[h];
  LogProb best = kLogInfeasible;
  bool done = false;
  for (size_t t0 = 0; t0 <= h && !done; t0 += kScanTile) {
    const size_t t_end = std::min(h, t0 + kScanTile - 1);
    for (size_t t = t0; t <= t_end; ++t) {
      // rev_pm may be +inf (no feasible tail yet): a NaN bound from
      // (-inf) + inf compares false and merely keeps scanning.
      if (f_floor + rev_pm[offset + t] >= best) {
        done = true;
        break;
      }
      const LogProb tail = rev_next[offset + t];
      if (tail == kLogInfeasible) continue;
      best = std::min(best, f[t] + tail);
    }
  }
  return best;
}

LogProb ConvScanScalar(const LogProb* head, const LogProb* rev_tail,
                       size_t offset, size_t h) {
  LogProb best = kLogInfeasible;
  for (size_t a = 0; a <= h; ++a) {
    const LogProb head_v = head[a];
    const LogProb tail_v = rev_tail[offset + a];
    if (head_v == kLogInfeasible || tail_v == kLogInfeasible) continue;
    best = std::min(best, head_v + tail_v);
  }
  return best;
}

LogProb ComposeScanScalar(const LogProb* f, double log_ratio,
                          const LogProb* rev_others, size_t k) {
  LogProb best = kLogInfeasible;
  for (size_t t = 0; t <= k; ++t) {
    if (rev_others[t] == kLogInfeasible) continue;
    best = std::min(best, f[t + 1] + log_ratio + rev_others[t]);
  }
  return best;
}

const ScanKernels kScalarKernels = {
    "scalar",          PrepareRowScalar, FusedScanScalar,
    SuffixScanScalar,  ConvScanScalar,   ComposeScanScalar,
};

}  // namespace

const ScanKernels* GetScalarScanKernels() { return &kScalarKernels; }

}  // namespace cksafe
