// NEON backend stub (aarch64). Registers behind the same dispatch seam as
// the AVX2 path so the selection logic, env/test overrides, and the
// differential tests all exercise the ARM route today; the ops currently
// forward to the scalar reference, so results are trivially bit-identical.
// A tuned float64x2_t implementation can replace the forwarding table
// without touching the driver or the dispatch surface.

#include "cksafe/simd/dispatch.h"

#if defined(__aarch64__)

namespace cksafe {

const ScanKernels* GetScalarScanKernels();

namespace {

const ScanKernels MakeNeonKernels() {
  ScanKernels kernels = *GetScalarScanKernels();
  kernels.name = "neon";
  return kernels;
}

}  // namespace

const ScanKernels* GetNeonScanKernels() {
  static const ScanKernels kernels = MakeNeonKernels();
  return &kernels;
}

}  // namespace cksafe

#else  // !defined(__aarch64__)

namespace cksafe {
const ScanKernels* GetNeonScanKernels() { return nullptr; }
}  // namespace cksafe

#endif
