// AVX2 backend for the MINIMIZE2 scans. Compiled with -mavx2 for this one
// TU (see CMakeLists.txt: per-file ISA flags, never global, so the rest of
// the binary stays runnable on pre-AVX2 hosts); selected at runtime via
// cpuid in simd/dispatch.cc.
//
// Bit-identity discipline (the contract simd_kernel_test enforces against
// the scalar backend):
//   * only IEEE adds, mins, compares and blends — no FMA, which would
//     contract two roundings into one and change low bits;
//   * infeasible (+inf) operands are masked to +inf candidates instead of
//     branching; a +inf candidate can never win a strict-improvement
//     update, which is exactly the scalar `continue`;
//   * NaN lanes cannot arise in candidates: f and the pruning floors are
//     never +inf, and every +inf head/tail lane is masked *before* the
//     add, so the (-inf) + (+inf) trap is confined to the pruning bound —
//     which both backends evaluate as a scalar compare where NaN >= best
//     is false (keep scanning; conservative-exact, DESIGN.md §11);
//   * argmins reproduce the scalar left-to-right strict-improvement scan:
//     per 4-lane chunk a running lane-min keeps the earliest t per lane,
//     the horizontal fold picks the smallest t among lanes attaining the
//     chunk min, and cross-tile/tail merges update on strictly-less only;
//   * the wa branches are merged per tile by the lexicographic
//     (value, t, branch) rule, which equals the scalar interleaved order
//     (t ascending, branch 0 before branch 1 at equal t).
//
// Pruning runs at block granularity: the monotone bound (nondecreasing in
// t) is checked once per kPruneBlock elements with the block's first —
// smallest — bound value, so a block is skipped only when the scalar
// reference would have evaluated no winning candidate in it either;
// conversely any candidate the vector path evaluates beyond the scalar
// stop point sits at or above the branch's best and cannot win a
// strict-improvement update. Exactness argument in DESIGN.md §11. The
// block is deliberately much smaller than kScanTile: the scalar reference
// re-checks the bound per element and typically stops within a few
// candidates once the best tightens, so a coarse-grained vector path
// would evaluate tens of doomed candidates per cell and lose to scalar
// outright (observed 4-10x on the E9 kernel shapes with 64-element
// granularity). Two vector iterations per bound check keeps the pruned
// regime within a small constant of scalar while dense scans still run
// 4 lanes wide.

#include "cksafe/simd/dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace cksafe {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kNoPos = static_cast<size_t>(-1);

// Bound re-check granularity of the pruned scans (see file comment).
constexpr size_t kPruneBlock = 8;

// Length of the scalar probe head of the pruned scans: the first
// kScalarProbe candidates run the exact per-element scalar loop (bound
// re-checked per element) before the vector blocks take over. The scalar
// reference usually stops inside this window once the DP's best
// tightens, so the probe keeps the pruned regime at scalar cost; only
// branches still alive after it — the dense scans vectorization is for —
// pay the block-granularity overshoot.
constexpr size_t kScalarProbe = 8;

struct TileMin {
  double value = kInf;  // +inf: no feasible candidate in the range
  size_t t = kNoPos;
};

/// min over t in [t0, t_end] of a[t] (+ addend when kAddend) + b[offset+t]
/// with b == +inf lanes masked out, plus the smallest t attaining it.
/// Matches a scalar scan doing strict-improvement updates in t order.
template <bool kAddend>
inline TileMin MaskedMinPlusArgmin(const double* a, double addend,
                                   const double* b, size_t offset, size_t t0,
                                   size_t t_end) {
  TileMin r;
  size_t t = t0;
  if (t + 3 <= t_end) {
    const __m256d vinf = _mm256_set1_pd(kInf);
    const __m256d vadd = _mm256_set1_pd(addend);
    __m256d vmin = vinf;
    __m256i vidx = _mm256_setzero_si256();
    __m256i curidx =
        _mm256_set_epi64x(static_cast<long long>(t0) + 3,
                          static_cast<long long>(t0) + 2,
                          static_cast<long long>(t0) + 1,
                          static_cast<long long>(t0));
    const __m256i vstep = _mm256_set1_epi64x(4);
    for (; t + 3 <= t_end; t += 4) {
      const __m256d va = _mm256_loadu_pd(a + t);
      const __m256d vb = _mm256_loadu_pd(b + offset + t);
      __m256d cand = kAddend ? _mm256_add_pd(_mm256_add_pd(va, vadd), vb)
                             : _mm256_add_pd(va, vb);
      const __m256d feasible = _mm256_cmp_pd(vb, vinf, _CMP_NEQ_OQ);
      cand = _mm256_blendv_pd(vinf, cand, feasible);
      // Strictly-less keeps the earliest t per lane, like the scalar scan.
      const __m256d improved = _mm256_cmp_pd(cand, vmin, _CMP_LT_OQ);
      vmin = _mm256_blendv_pd(vmin, cand, improved);
      vidx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vidx), _mm256_castsi256_pd(curidx), improved));
      curidx = _mm256_add_epi64(curidx, vstep);
    }
    alignas(32) double vals[4];
    alignas(32) long long idxs[4];
    _mm256_store_pd(vals, vmin);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), vidx);
    // Horizontal fold: the chunk min, attained at the smallest recorded t
    // (each lane already holds its own earliest attainer).
    for (int lane = 0; lane < 4; ++lane) {
      const auto lane_t = static_cast<size_t>(idxs[lane]);
      if (vals[lane] < r.value) {
        r.value = vals[lane];
        r.t = lane_t;
      } else if (vals[lane] == r.value && lane_t < r.t) {
        r.t = lane_t;
      }
    }
    if (r.value == kInf) r.t = kNoPos;  // untouched lanes carry idx 0
  }
  for (; t <= t_end; ++t) {
    const double head = b[offset + t];
    if (head == kInf) continue;
    const double cand = kAddend ? (a[t] + addend) + head : a[t] + head;
    if (cand < r.value) {
      r.value = cand;
      r.t = t;
    }
  }
  return r;
}

/// Value-only variant, same masking, for scans that record no argmin.
template <bool kDualMask>
inline double MaskedMinPlus(const double* a, const double* b, size_t offset,
                            size_t t0, size_t t_end) {
  double m = kInf;
  size_t t = t0;
  if (t + 3 <= t_end) {
    const __m256d vinf = _mm256_set1_pd(kInf);
    __m256d vmin = vinf;
    for (; t + 3 <= t_end; t += 4) {
      const __m256d va = _mm256_loadu_pd(a + t);
      const __m256d vb = _mm256_loadu_pd(b + offset + t);
      __m256d cand = _mm256_add_pd(va, vb);
      __m256d feasible = _mm256_cmp_pd(vb, vinf, _CMP_NEQ_OQ);
      if (kDualMask) {
        feasible =
            _mm256_and_pd(feasible, _mm256_cmp_pd(va, vinf, _CMP_NEQ_OQ));
      }
      cand = _mm256_blendv_pd(vinf, cand, feasible);
      const __m256d improved = _mm256_cmp_pd(cand, vmin, _CMP_LT_OQ);
      vmin = _mm256_blendv_pd(vmin, cand, improved);
    }
    alignas(32) double vals[4];
    _mm256_store_pd(vals, vmin);
    for (int lane = 0; lane < 4; ++lane) m = std::min(m, vals[lane]);
  }
  for (; t <= t_end; ++t) {
    const double av = a[t];
    const double bv = b[offset + t];
    if (bv == kInf || (kDualMask && av == kInf)) continue;
    const double cand = av + bv;
    m = std::min(m, cand);
  }
  return m;
}

void PrepareRowAvx2(const LogProb* row, size_t width, LogProb* rev,
                    LogProb* rev_pm) {
  const __m256d vinf = _mm256_set1_pd(kInf);
  __m256d vcarry = vinf;  // running min over row[0 .. s - 1], broadcast
  size_t s = 0;
  for (; s + 3 < width; s += 4) {
    const __m256d v = _mm256_loadu_pd(row + s);
    // In-register prefix min over the 4 lanes (log-step shifts), then
    // fold in the carry from previous chunks. Plain mins only: the result
    // is the same multiset-min std::min computes, element for element.
    const __m256d shift1 = _mm256_blend_pd(
        _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0)), vinf, 0x1);
    const __m256d m1 = _mm256_min_pd(v, shift1);
    const __m256d shift2 = _mm256_blend_pd(
        _mm256_permute4x64_pd(m1, _MM_SHUFFLE(1, 0, 0, 0)), vinf, 0x3);
    const __m256d m2 = _mm256_min_pd(m1, shift2);
    const __m256d pm = _mm256_min_pd(m2, vcarry);
    vcarry = _mm256_permute4x64_pd(pm, _MM_SHUFFLE(3, 3, 3, 3));
    // Destination indices j = width - 1 - s' run *down* as s' runs up, so
    // the chunk lands reversed at the matching descending j range.
    const size_t j = width - 1 - s - 3;
    _mm256_storeu_pd(rev + j, _mm256_permute4x64_pd(v, _MM_SHUFFLE(0, 1, 2, 3)));
    _mm256_storeu_pd(rev_pm + j,
                     _mm256_permute4x64_pd(pm, _MM_SHUFFLE(0, 1, 2, 3)));
  }
  double run = _mm256_cvtsd_f64(vcarry);
  for (; s < width; ++s) {
    const size_t j = width - 1 - s;
    rev[j] = row[s];
    run = std::min(run, row[s]);
    rev_pm[j] = run;
  }
}

void FusedScanAvx2(const LogProb* f, double log_ratio, const LogProb* rev_no,
                   const LogProb* rev_wa, const LogProb* rev_pm_no,
                   const LogProb* rev_pm_wa, size_t offset, size_t h,
                   FusedScanCell* out) {
  const LogProb f_floor = f[h];
  const LogProb f_floor_target = f[h + 1] + log_ratio;
  LogProb best = kLogInfeasible;
  uint16_t best_t = 0;
  LogProb best_w = kLogInfeasible;
  uint16_t best_w_t = 0;
  uint8_t best_w_branch = 0;
  bool no_done = false;
  bool wa0_done = false;
  bool wa1_done = false;
  // Scalar probe: bit-for-bit the scalar reference loop over the first
  // candidates, bounds re-checked per element.
  const size_t head_end = std::min(h, kScalarProbe - 1);
  for (size_t t = 0; t <= head_end; ++t) {
    const size_t j = offset + t;
    const LogProb pm_no = rev_pm_no[j];
    const LogProb head_no = rev_no[j];
    if (!no_done) {
      if (f_floor + pm_no >= best) {
        no_done = true;
      } else if (head_no != kLogInfeasible) {
        const LogProb candidate = f[t] + head_no;
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<uint16_t>(t);
        }
      }
    }
    if (!wa0_done) {
      if (f_floor + rev_pm_wa[j] >= best_w) {
        wa0_done = true;
      } else {
        const LogProb head_with = rev_wa[j];
        if (head_with != kLogInfeasible) {
          const LogProb candidate = f[t] + head_with;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint16_t>(t);
            best_w_branch = 0;
          }
        }
      }
    }
    if (!wa1_done) {
      if (f_floor_target + pm_no >= best_w) {
        wa1_done = true;
      } else if (head_no != kLogInfeasible) {
        const LogProb candidate = f[t + 1] + log_ratio + head_no;
        if (candidate < best_w) {
          best_w = candidate;
          best_w_t = static_cast<uint16_t>(t);
          best_w_branch = 1;
        }
      }
    }
    if (no_done && wa0_done && wa1_done) break;
  }
  for (size_t t0 = kScalarProbe;
       t0 <= h && !(no_done && wa0_done && wa1_done); t0 += kPruneBlock) {
    const size_t t_end = std::min(h, t0 + kPruneBlock - 1);
    // Block-granularity pruning: the bound is nondecreasing in t, so the
    // block's first bound is its smallest; NaN compares false (scan on).
    const size_t j0 = offset + t0;
    if (!no_done && f_floor + rev_pm_no[j0] >= best) no_done = true;
    if (!wa0_done && f_floor + rev_pm_wa[j0] >= best_w) wa0_done = true;
    if (!wa1_done && f_floor_target + rev_pm_no[j0] >= best_w) wa1_done = true;
    if (no_done && wa0_done && wa1_done) break;

    if (!no_done) {
      const TileMin r =
          MaskedMinPlusArgmin<false>(f, 0.0, rev_no, offset, t0, t_end);
      if (r.value < best) {
        best = r.value;
        best_t = static_cast<uint16_t>(r.t);
      }
    }
    if (!wa0_done || !wa1_done) {
      TileMin r0, r1;
      if (!wa0_done) {
        r0 = MaskedMinPlusArgmin<false>(f, 0.0, rev_wa, offset, t0, t_end);
      }
      if (!wa1_done) {
        r1 = MaskedMinPlusArgmin<true>(f + 1, log_ratio, rev_no, offset, t0,
                                       t_end);
      }
      // Lexicographic (value, t, branch) merge == the scalar interleaved
      // scan order: smaller value wins; at equal value the smaller t; at
      // equal t branch 0 (evaluated first) wins. kNoPos sentinels make a
      // skipped branch lose every tie.
      if (r1.value < r0.value || (r1.value == r0.value && r1.t < r0.t)) {
        if (r1.value < best_w) {
          best_w = r1.value;
          best_w_t = static_cast<uint16_t>(r1.t);
          best_w_branch = 1;
        }
      } else if (r0.value < best_w) {
        best_w = r0.value;
        best_w_t = static_cast<uint16_t>(r0.t);
        best_w_branch = 0;
      }
    }
  }
  out->no = best;
  out->no_t = best_t;
  out->wa = best_w;
  out->wa_t = best_w_t;
  out->wa_branch = best_w_branch;
}

LogProb SuffixScanAvx2(const LogProb* f, const LogProb* rev_next,
                       const LogProb* rev_pm, size_t offset, size_t h) {
  const LogProb f_floor = f[h];
  LogProb best = kLogInfeasible;
  // Scalar probe, then vector blocks — same structure as the fused scan.
  const size_t head_end = std::min(h, kScalarProbe - 1);
  for (size_t t = 0; t <= head_end; ++t) {
    if (f_floor + rev_pm[offset + t] >= best) return best;
    const LogProb tail = rev_next[offset + t];
    if (tail == kLogInfeasible) continue;
    best = std::min(best, f[t] + tail);
  }
  for (size_t t0 = kScalarProbe; t0 <= h; t0 += kPruneBlock) {
    if (f_floor + rev_pm[offset + t0] >= best) break;
    const size_t t_end = std::min(h, t0 + kPruneBlock - 1);
    best = std::min(best,
                    MaskedMinPlus<false>(f, rev_next, offset, t0, t_end));
  }
  return best;
}

LogProb ConvScanAvx2(const LogProb* head, const LogProb* rev_tail,
                     size_t offset, size_t h) {
  return MaskedMinPlus<true>(head, rev_tail, offset, 0, h);
}

LogProb ComposeScanAvx2(const LogProb* f, double log_ratio,
                        const LogProb* rev_others, size_t k) {
  const TileMin r =
      MaskedMinPlusArgmin<true>(f + 1, log_ratio, rev_others, 0, 0, k);
  return r.value == kInf ? kLogInfeasible : r.value;
}

const ScanKernels kAvx2Kernels = {
    "avx2",         PrepareRowAvx2, FusedScanAvx2,
    SuffixScanAvx2, ConvScanAvx2,   ComposeScanAvx2,
};

}  // namespace

const ScanKernels* GetAvx2ScanKernels() { return &kAvx2Kernels; }

}  // namespace cksafe

#else  // !defined(__AVX2__)

namespace cksafe {
const ScanKernels* GetAvx2ScanKernels() { return nullptr; }
}  // namespace cksafe

#endif
