#include "cksafe/shard/wire.h"

#include <algorithm>
#include <utility>

#include "cksafe/util/check.h"
#include "cksafe/util/string_util.h"

namespace cksafe {
namespace {

// ---------------------------------------------------------------------------
// Header plumbing shared by the buffer and socket paths.

struct FrameHeader {
  WireType type = WireType::kQueryRequest;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

bool ValidWireType(uint8_t type) {
  return type >= static_cast<uint8_t>(WireType::kQueryRequest) &&
         type <= static_cast<uint8_t>(WireType::kShutdownResponse);
}

/// Parses and validates the fixed 20-byte header (everything except the
/// checksum match, which needs the payload).
StatusOr<FrameHeader> ParseHeader(const uint8_t* data) {
  ByteReader reader(data, kWireHeaderSize);
  CKSAFE_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kWireMagic) {
    return Status::InvalidArgument(
        StrFormat("bad frame magic 0x%08x", magic));
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint8_t version, reader.U8());
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported wire version %u (speak %u)", version,
                  kWireVersion));
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint8_t type, reader.U8());
  if (!ValidWireType(type)) {
    return Status::InvalidArgument(StrFormat("unknown message type %u", type));
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint16_t reserved, reader.U16());
  if (reserved != 0) {
    return Status::InvalidArgument(
        StrFormat("reserved header bits set (0x%04x)", reserved));
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint32_t payload_len, reader.U32());
  if (payload_len > kMaxWirePayload) {
    // The length is bounded BEFORE anyone allocates a payload buffer: an
    // attacker-controlled length field must not become an allocation.
    return Status::InvalidArgument(
        StrFormat("payload length %u exceeds cap %u", payload_len,
                  kMaxWirePayload));
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint64_t checksum, reader.U64());
  FrameHeader header;
  header.type = static_cast<WireType>(type);
  header.payload_len = payload_len;
  header.checksum = checksum;
  return header;
}

uint64_t FrameChecksum(const uint8_t* header12, const uint8_t* payload,
                       size_t payload_len) {
  const uint64_t seed = Fnv1a64(header12, 12);
  return Fnv1a64(payload, payload_len, seed);
}

// ---------------------------------------------------------------------------
// Field codecs.

void EncodeStatus(const Status& status, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutString(status.message());
}

Status DecodeStatus(ByteReader* reader, Status* out) {
  CKSAFE_ASSIGN_OR_RETURN(const uint8_t code, reader->U8());
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(StrFormat("unknown status code %u", code));
  }
  CKSAFE_ASSIGN_OR_RETURN(std::string message, reader->String());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void EncodeQuery(const Query& query, ByteWriter* writer) {
  writer->PutString(query.tenant);
  writer->PutU8(static_cast<uint8_t>(query.kind));
  writer->PutDouble(query.c);
  writer->PutU64(query.k);
  writer->PutU64(query.bucket);
}

Status DecodeQuery(ByteReader* reader, Query* out) {
  CKSAFE_ASSIGN_OR_RETURN(out->tenant, reader->String());
  CKSAFE_ASSIGN_OR_RETURN(const uint8_t kind, reader->U8());
  if (kind > static_cast<uint8_t>(QueryKind::kPerBucket)) {
    return Status::InvalidArgument(StrFormat("unknown query kind %u", kind));
  }
  out->kind = static_cast<QueryKind>(kind);
  CKSAFE_ASSIGN_OR_RETURN(out->c, reader->Double());
  CKSAFE_ASSIGN_OR_RETURN(const uint64_t k, reader->U64());
  CKSAFE_ASSIGN_OR_RETURN(const uint64_t bucket, reader->U64());
  out->k = static_cast<size_t>(k);
  out->bucket = static_cast<size_t>(bucket);
  return Status::OK();
}

void EncodeAnswer(const QueryAnswer& answer, ByteWriter* writer) {
  writer->PutU64(answer.snapshot_sequence);
  writer->PutU8(answer.safe ? 1 : 0);
  writer->PutDouble(answer.disclosure);
  writer->PutDouble(answer.negation);
  writer->PutDouble(answer.log_r);
}

Status DecodeAnswer(ByteReader* reader, QueryAnswer* out) {
  CKSAFE_ASSIGN_OR_RETURN(out->snapshot_sequence, reader->U64());
  CKSAFE_ASSIGN_OR_RETURN(const uint8_t safe, reader->U8());
  if (safe > 1) {
    return Status::InvalidArgument(StrFormat("non-boolean safe byte %u", safe));
  }
  out->safe = safe == 1;
  CKSAFE_ASSIGN_OR_RETURN(out->disclosure, reader->Double());
  CKSAFE_ASSIGN_OR_RETURN(out->negation, reader->Double());
  CKSAFE_ASSIGN_OR_RETURN(out->log_r, reader->Double());
  return Status::OK();
}

/// Bounds a decoded element count by the bytes actually present: each
/// element consumes at least `element_bytes`, so a count the remaining
/// buffer cannot possibly hold is rejected before any allocation.
Status BoundCount(const ByteReader& reader, uint64_t count,
                  size_t element_bytes, const char* what) {
  if (count > reader.remaining() / element_bytes) {
    return Status::InvalidArgument(
        StrFormat("%s count %llu exceeds the %zu bytes remaining", what,
                  static_cast<unsigned long long>(count), reader.remaining()));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame layer.

std::vector<uint8_t> EncodeFrame(WireType type, std::vector<uint8_t> payload) {
  CKSAFE_CHECK_LE(payload.size(), size_t{kMaxWirePayload})
      << "oversized frame payload is a sender bug";
  ByteWriter header;
  header.PutU32(kWireMagic);
  header.PutU8(kWireVersion);
  header.PutU8(static_cast<uint8_t>(type));
  header.PutU16(0);  // reserved
  header.PutU32(static_cast<uint32_t>(payload.size()));
  const uint64_t checksum =
      FrameChecksum(header.bytes().data(), payload.data(), payload.size());
  std::vector<uint8_t> frame;
  frame.reserve(kWireHeaderSize + payload.size());
  frame.insert(frame.end(), header.bytes().begin(), header.bytes().end());
  ByteWriter sum;
  sum.PutU64(checksum);
  frame.insert(frame.end(), sum.bytes().begin(), sum.bytes().end());
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

StatusOr<WireFrame> DecodeFrame(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < kWireHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("frame truncated: %zu bytes < %zu-byte header",
                  buffer.size(), kWireHeaderSize));
  }
  CKSAFE_ASSIGN_OR_RETURN(const FrameHeader header, ParseHeader(buffer.data()));
  const size_t body = buffer.size() - kWireHeaderSize;
  if (body != header.payload_len) {
    return Status::InvalidArgument(
        StrFormat("frame length %u disagrees with the %zu payload bytes "
                  "present",
                  header.payload_len, body));
  }
  const uint64_t expect = FrameChecksum(
      buffer.data(), buffer.data() + kWireHeaderSize, body);
  if (expect != header.checksum) {
    return Status::InvalidArgument(
        StrFormat("frame checksum mismatch (stored %016llx, computed %016llx)",
                  static_cast<unsigned long long>(header.checksum),
                  static_cast<unsigned long long>(expect)));
  }
  WireFrame frame;
  frame.type = header.type;
  frame.payload.assign(buffer.begin() + kWireHeaderSize, buffer.end());
  return frame;
}

Status SendFrame(UnixSocket* socket, WireType type,
                 std::vector<uint8_t> payload) {
  return socket->SendAll(EncodeFrame(type, std::move(payload)));
}

StatusOr<WireFrame> RecvFrame(UnixSocket* socket) {
  uint8_t header_bytes[kWireHeaderSize];
  CKSAFE_RETURN_IF_ERROR(socket->RecvExact(header_bytes, kWireHeaderSize));
  CKSAFE_ASSIGN_OR_RETURN(const FrameHeader header, ParseHeader(header_bytes));
  WireFrame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_len);  // bounded by ParseHeader
  if (header.payload_len > 0) {
    CKSAFE_RETURN_IF_ERROR(
        socket->RecvExact(frame.payload.data(), header.payload_len));
  }
  const uint64_t expect =
      FrameChecksum(header_bytes, frame.payload.data(), frame.payload.size());
  if (expect != header.checksum) {
    return Status::InvalidArgument(
        StrFormat("frame checksum mismatch (stored %016llx, computed %016llx)",
                  static_cast<unsigned long long>(header.checksum),
                  static_cast<unsigned long long>(expect)));
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Snapshot codec.

void EncodeSnapshotInline(const ReleaseSnapshot& snapshot, ByteWriter* writer) {
  writer->PutU64(snapshot.sequence);
  writer->PutU64(snapshot.num_rows);
  writer->PutU32(static_cast<uint32_t>(snapshot.node.size()));
  for (const int level : snapshot.node) writer->PutI32(level);
  const Bucketization& buckets = snapshot.bucketization;
  writer->PutU64(buckets.sensitive_domain_size());
  writer->PutU32(static_cast<uint32_t>(buckets.num_buckets()));
  for (const Bucket& bucket : buckets.buckets()) {
    writer->PutString(bucket.qi_label);
    writer->PutU32(static_cast<uint32_t>(bucket.members.size()));
    for (const PersonId member : bucket.members) writer->PutU32(member);
    for (const uint32_t count : bucket.histogram) writer->PutU32(count);
  }
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> DecodeSnapshotInline(
    ByteReader* reader) {
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  CKSAFE_ASSIGN_OR_RETURN(snapshot->sequence, reader->U64());
  if (snapshot->sequence == 0) {
    return Status::InvalidArgument("snapshot sequence 0 is reserved");
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint64_t num_rows, reader->U64());
  snapshot->num_rows = static_cast<size_t>(num_rows);
  CKSAFE_ASSIGN_OR_RETURN(const uint32_t node_size, reader->U32());
  CKSAFE_RETURN_IF_ERROR(BoundCount(*reader, node_size, 4, "lattice node"));
  snapshot->node.reserve(node_size);
  for (uint32_t i = 0; i < node_size; ++i) {
    CKSAFE_ASSIGN_OR_RETURN(const int32_t level, reader->I32());
    snapshot->node.push_back(level);
  }
  CKSAFE_ASSIGN_OR_RETURN(const uint64_t domain, reader->U64());
  CKSAFE_ASSIGN_OR_RETURN(const uint32_t num_buckets, reader->U32());
  // Two-pass decode: buckets are materialized first so the dense-partition
  // invariant (member ids < total members) can be enforced against the
  // complete total, THEN handed to Bucketization, whose person-indexed
  // table is thereby bounded by the payload size instead of by whatever
  // 32-bit id a hostile frame carries.
  std::vector<Bucket> staged;
  staged.reserve(std::min<size_t>(num_buckets, 1024));
  uint64_t total_members = 0;
  for (uint32_t b = 0; b < num_buckets; ++b) {
    Bucket bucket;
    CKSAFE_ASSIGN_OR_RETURN(bucket.qi_label, reader->String());
    CKSAFE_ASSIGN_OR_RETURN(const uint32_t member_count, reader->U32());
    CKSAFE_RETURN_IF_ERROR(BoundCount(*reader, member_count, 4, "member"));
    bucket.members.reserve(member_count);
    for (uint32_t i = 0; i < member_count; ++i) {
      CKSAFE_ASSIGN_OR_RETURN(const uint32_t member, reader->U32());
      bucket.members.push_back(member);
    }
    CKSAFE_RETURN_IF_ERROR(BoundCount(*reader, domain, 4, "histogram"));
    bucket.histogram.reserve(static_cast<size_t>(domain));
    for (uint64_t s = 0; s < domain; ++s) {
      CKSAFE_ASSIGN_OR_RETURN(const uint32_t count, reader->U32());
      bucket.histogram.push_back(count);
    }
    total_members += member_count;
    staged.push_back(std::move(bucket));
  }
  Bucketization bucketization(static_cast<size_t>(domain));
  for (Bucket& bucket : staged) {
    for (const PersonId member : bucket.members) {
      if (member >= total_members) {
        return Status::InvalidArgument(
            StrFormat("member id %u outside the dense partition of %llu "
                      "tuples",
                      member, static_cast<unsigned long long>(total_members)));
      }
    }
    // AddBucket re-validates histogram totals and membership disjointness;
    // its errors propagate as the decode error.
    CKSAFE_RETURN_IF_ERROR(bucketization.AddBucket(std::move(bucket)));
  }
  snapshot->bucketization = std::move(bucketization);
  return std::shared_ptr<const ReleaseSnapshot>(std::move(snapshot));
}

// ---------------------------------------------------------------------------
// Message codecs.

std::vector<uint8_t> EncodeQueryRequest(const WireQueryRequest& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeQuery(msg.query, &writer);
  return writer.bytes();
}

StatusOr<WireQueryRequest> DecodeQueryRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireQueryRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeQuery(&reader, &msg.query));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after query request");
  }
  return msg;
}

std::vector<uint8_t> EncodeQueryResponse(const WireQueryResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  EncodeAnswer(msg.answer, &writer);
  return writer.bytes();
}

StatusOr<WireQueryResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireQueryResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  CKSAFE_RETURN_IF_ERROR(DecodeAnswer(&reader, &msg.answer));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after query response");
  }
  return msg;
}

std::vector<uint8_t> EncodePublishRequest(const WirePublishRequest& msg) {
  CKSAFE_CHECK(msg.snapshot != nullptr);
  ByteWriter writer;
  writer.PutU64(msg.id);
  writer.PutString(msg.tenant);
  EncodeSnapshotInline(*msg.snapshot, &writer);
  return writer.bytes();
}

StatusOr<WirePublishRequest> DecodePublishRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WirePublishRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.tenant, reader.String());
  if (msg.tenant.empty()) {
    return Status::InvalidArgument("publish with empty tenant name");
  }
  CKSAFE_ASSIGN_OR_RETURN(msg.snapshot, DecodeSnapshotInline(&reader));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after publish request");
  }
  return msg;
}

std::vector<uint8_t> EncodePublishResponse(const WirePublishResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  writer.PutU64(msg.sequence);
  return writer.bytes();
}

StatusOr<WirePublishResponse> DecodePublishResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WirePublishResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  CKSAFE_ASSIGN_OR_RETURN(msg.sequence, reader.U64());
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after publish response");
  }
  return msg;
}

std::vector<uint8_t> EncodeHandoffRequest(const WireHandoffRequest& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  writer.PutString(msg.tenant);
  return writer.bytes();
}

StatusOr<WireHandoffRequest> DecodeHandoffRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireHandoffRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.tenant, reader.String());
  if (msg.tenant.empty()) {
    return Status::InvalidArgument("handoff with empty tenant name");
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after handoff request");
  }
  return msg;
}

std::vector<uint8_t> EncodeHandoffResponse(const WireHandoffResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  writer.PutU32(static_cast<uint32_t>(msg.snapshots.size()));
  for (const auto& snapshot : msg.snapshots) {
    CKSAFE_CHECK(snapshot != nullptr);
    EncodeSnapshotInline(*snapshot, &writer);
  }
  return writer.bytes();
}

StatusOr<WireHandoffResponse> DecodeHandoffResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireHandoffResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  CKSAFE_ASSIGN_OR_RETURN(const uint32_t count, reader.U32());
  // Each snapshot costs >= 32 payload bytes; bound before reserving.
  CKSAFE_RETURN_IF_ERROR(BoundCount(reader, count, 32, "handoff snapshot"));
  msg.snapshots.reserve(count);
  uint64_t previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    CKSAFE_ASSIGN_OR_RETURN(std::shared_ptr<const ReleaseSnapshot> snapshot,
                            DecodeSnapshotInline(&reader));
    if (snapshot->sequence <= previous) {
      return Status::InvalidArgument(
          StrFormat("handoff sequences not ascending (%llu after %llu)",
                    static_cast<unsigned long long>(snapshot->sequence),
                    static_cast<unsigned long long>(previous)));
    }
    previous = snapshot->sequence;
    msg.snapshots.push_back(std::move(snapshot));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after handoff response");
  }
  return msg;
}

std::vector<uint8_t> EncodeDropRequest(const WireDropRequest& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  writer.PutString(msg.tenant);
  return writer.bytes();
}

StatusOr<WireDropRequest> DecodeDropRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireDropRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.tenant, reader.String());
  if (msg.tenant.empty()) {
    return Status::InvalidArgument("drop with empty tenant name");
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after drop request");
  }
  return msg;
}

std::vector<uint8_t> EncodeDropResponse(const WireDropResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  return writer.bytes();
}

StatusOr<WireDropResponse> DecodeDropResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireDropResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after drop response");
  }
  return msg;
}

std::vector<uint8_t> EncodePingRequest(const WirePingRequest& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  return writer.bytes();
}

StatusOr<WirePingRequest> DecodePingRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WirePingRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after ping request");
  }
  return msg;
}

std::vector<uint8_t> EncodePingResponse(const WirePingResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  writer.PutU64(msg.stats.submitted);
  writer.PutU64(msg.stats.rejected);
  writer.PutU64(msg.stats.answered);
  writer.PutU64(msg.stats.batches);
  writer.PutU64(msg.stats.profile_sweeps);
  writer.PutU64(msg.stats.per_bucket_sweeps);
  writer.PutU64(msg.stats.snapshot_reloads);
  writer.PutU64(msg.stats.publishes);
  writer.PutU64(msg.stats.tenants);
  return writer.bytes();
}

StatusOr<WirePingResponse> DecodePingResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WirePingResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.submitted, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.rejected, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.answered, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.batches, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.profile_sweeps, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.per_bucket_sweeps, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.snapshot_reloads, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.publishes, reader.U64());
  CKSAFE_ASSIGN_OR_RETURN(msg.stats.tenants, reader.U64());
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after ping response");
  }
  return msg;
}

std::vector<uint8_t> EncodeShutdownRequest(const WireShutdownRequest& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  return writer.bytes();
}

StatusOr<WireShutdownRequest> DecodeShutdownRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireShutdownRequest msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after shutdown request");
  }
  return msg;
}

std::vector<uint8_t> EncodeShutdownResponse(const WireShutdownResponse& msg) {
  ByteWriter writer;
  writer.PutU64(msg.id);
  EncodeStatus(msg.status, &writer);
  return writer.bytes();
}

StatusOr<WireShutdownResponse> DecodeShutdownResponse(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WireShutdownResponse msg;
  CKSAFE_ASSIGN_OR_RETURN(msg.id, reader.U64());
  CKSAFE_RETURN_IF_ERROR(DecodeStatus(&reader, &msg.status));
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after shutdown response");
  }
  return msg;
}

}  // namespace cksafe
