#include "cksafe/shard/shard_server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <utility>

#include "cksafe/util/check.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

/// The per-connection pipeline. The reader thread admits queries and
/// pushes (id, future) pairs; the sender thread waits each future in FIFO
/// order and writes the response under send_mu (which also serializes the
/// reader's inline control responses against it).
struct ShardServer::Connection {
  UnixSocket socket;
  std::mutex send_mu;

  struct InFlight {
    uint64_t id = 0;
    std::future<StatusOr<QueryAnswer>> future;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> in_flight;
  bool reader_done = false;

  std::thread reader;
  std::thread sender;
};

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)) {}

ShardServer::~ShardServer() {
  Stop();
  // Serve() joins the handler threads; if Serve was never entered (or
  // already returned) there is nothing left running, but join any
  // stragglers from a Create-then-destroy without Serve.
  JoinConnections();
}

void ShardServer::JoinConnections() {
  // Snapshot under the lock, join outside it: a reader thread handling a
  // shutdown frame is itself inside Stop() waiting for conns_mu_, so
  // joining while holding the lock would deadlock. Once stopping_ is set
  // the accept loop adds no new connections, so the snapshot is complete.
  std::vector<Connection*> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    to_join.reserve(conns_.size());
    for (auto& conn : conns_) to_join.push_back(conn.get());
  }
  for (Connection* conn : to_join) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->sender.joinable()) conn->sender.join();
  }
}

StatusOr<std::unique_ptr<ShardServer>> ShardServer::Create(
    ShardServerOptions options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("shard needs a socket path");
  }
  std::unique_ptr<ShardServer> server(new ShardServer(options));
  QueryRouter::Options router_options;
  router_options.queue_capacity = options.router_queue_capacity;
  if (options.durable_dir.empty()) {
    server->engine_ = std::make_unique<ServingEngine>(router_options);
  } else {
    DurableStoreOptions store_options;
    store_options.dir = options.durable_dir;
    store_options.buffer_pool_pages = options.buffer_pool_pages;
    store_options.profile_max_k = options.profile_max_k;
    store_options.test_crash_after_bytes = options.test_crash_after_bytes;
    CKSAFE_ASSIGN_OR_RETURN(
        server->engine_,
        ServingEngine::CreateDurable(store_options, router_options));
    // Rebuild the adopted-publish history the handoff path serves from:
    // the store holds every committed sequence, and decode is
    // deterministic, so the rebuilt history is bit-identical to the
    // pre-crash one.
    const DurableStore* store = server->engine_->durable_store();
    for (const std::string& tenant : store->tenants()) {
      auto& per_tenant = server->history_[tenant];
      for (const uint64_t sequence : store->Sequences(tenant)) {
        CKSAFE_ASSIGN_OR_RETURN(per_tenant[sequence],
                                store->LoadSnapshot(tenant, sequence));
      }
    }
  }
  CKSAFE_RETURN_IF_ERROR(server->listener_.Bind(options.socket_path));
  return server;
}

Status ShardServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    StatusOr<UnixSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      return accepted.status();
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { HandleConnection(raw); });
    raw->sender = std::thread([this, raw] { SenderLoop(raw); });
  }
  JoinConnections();
  return Status::OK();
}

void ShardServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.Shutdown();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    conn->socket.Shutdown();
  }
}

void ShardServer::HandleConnection(Connection* conn) {
  for (;;) {
    StatusOr<WireFrame> frame = RecvFrame(&conn->socket);
    if (!frame.ok()) break;  // peer gone, malformed frame, or Stop()
    if (Status handled = HandleFrame(conn, std::move(frame).value());
        !handled.ok()) {
      break;  // send failed: the peer is gone
    }
  }
  // Unblock the sender; it drains in-flight futures before exiting (the
  // router resolves every admitted promise, so the drain terminates).
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
}

void ShardServer::SenderLoop(Connection* conn) {
  for (;;) {
    Connection::InFlight next;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return conn->reader_done || !conn->in_flight.empty();
      });
      if (conn->in_flight.empty()) return;  // reader done and drained
      next = std::move(conn->in_flight.front());
      conn->in_flight.pop_front();
    }
    WireQueryResponse response;
    response.id = next.id;
    StatusOr<QueryAnswer> answer = next.future.get();
    if (answer.ok()) {
      response.answer = std::move(answer).value();
    } else {
      response.status = answer.status();
    }
    std::lock_guard<std::mutex> lock(conn->send_mu);
    if (Status sent = SendFrame(&conn->socket, WireType::kQueryResponse,
                                EncodeQueryResponse(response));
        !sent.ok()) {
      // Peer gone: keep draining futures (so every promise's value is
      // consumed) but nothing more goes on the wire.
      conn->socket.Shutdown();
    }
  }
}

Status ShardServer::RespondControl(Connection* conn, WireType type,
                                   std::vector<uint8_t> payload) {
  std::lock_guard<std::mutex> lock(conn->send_mu);
  return SendFrame(&conn->socket, type, std::move(payload));
}

WireShardStats ShardServer::Stats() const {
  const RouterStats router = engine_->router()->stats();
  WireShardStats stats;
  stats.submitted = router.submitted;
  stats.rejected = router.rejected;
  stats.answered = router.answered;
  stats.batches = router.batches;
  stats.profile_sweeps = router.profile_sweeps;
  stats.per_bucket_sweeps = router.per_bucket_sweeps;
  stats.snapshot_reloads = router.snapshot_reloads;
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(history_mu_);
  stats.tenants = history_.size();
  return stats;
}

Status ShardServer::HandleFrame(Connection* conn, WireFrame frame) {
  switch (frame.type) {
    case WireType::kQueryRequest: {
      StatusOr<WireQueryRequest> request = DecodeQueryRequest(frame.payload);
      if (!request.ok()) return request.status();  // protocol error: hang up
      if (options_.test_stall_queries_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.test_stall_queries_ms));
      }
      StatusOr<std::future<StatusOr<QueryAnswer>>> submitted =
          engine_->router()->Submit(request->query);
      if (!submitted.ok()) {
        // Admission failure — including the ResourceExhausted backpressure
        // signal — is answered inline; nothing was queued.
        WireQueryResponse response;
        response.id = request->id;
        response.status = submitted.status();
        return RespondControl(conn, WireType::kQueryResponse,
                              EncodeQueryResponse(response));
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        Connection::InFlight in_flight;
        in_flight.id = request->id;
        in_flight.future = std::move(submitted).value();
        conn->in_flight.push_back(std::move(in_flight));
      }
      conn->cv.notify_one();
      return Status::OK();
    }
    case WireType::kPublishRequest: {
      StatusOr<WirePublishRequest> request =
          DecodePublishRequest(frame.payload);
      if (!request.ok()) return request.status();
      WirePublishResponse response;
      response.id = request->id;
      const std::shared_ptr<const ReleaseSnapshot>& snapshot =
          request->snapshot;
      const SnapshotStore* slot = engine_->directory()->Find(request->tenant);
      const std::shared_ptr<const ReleaseSnapshot> current =
          slot == nullptr ? nullptr : slot->Current();
      if (current != nullptr && snapshot->sequence <= current->sequence) {
        // Idempotent re-adopt: a migrate-back hands this shard sequences
        // it has already served (the serving slot only moves forward, and
        // a durable store holds every sequence up to its latest). Same
        // sequence must mean the same bytes — verify, record into the
        // handoff history if it was dropped, and acknowledge.
        std::lock_guard<std::mutex> lock(history_mu_);
        auto& per_tenant = history_[request->tenant];
        auto it = per_tenant.find(snapshot->sequence);
        if (it != per_tenant.end() &&
            !SnapshotsBitIdentical(*it->second, *snapshot)) {
          response.status = Status::AlreadyExists(StrFormat(
              "tenant '%s' sequence %llu re-published with different bytes",
              request->tenant.c_str(),
              static_cast<unsigned long long>(snapshot->sequence)));
        } else {
          if (it == per_tenant.end()) per_tenant[snapshot->sequence] = snapshot;
          response.sequence = snapshot->sequence;
        }
      } else {
        response.status =
            engine_->PublishSnapshot(request->tenant, snapshot);
        if (response.status.ok()) {
          response.sequence = snapshot->sequence;
          publishes_.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(history_mu_);
          history_[request->tenant][snapshot->sequence] = snapshot;
        }
      }
      return RespondControl(conn, WireType::kPublishResponse,
                            EncodePublishResponse(response));
    }
    case WireType::kHandoffRequest: {
      StatusOr<WireHandoffRequest> request =
          DecodeHandoffRequest(frame.payload);
      if (!request.ok()) return request.status();
      WireHandoffResponse response;
      response.id = request->id;
      {
        std::lock_guard<std::mutex> lock(history_mu_);
        auto it = history_.find(request->tenant);
        if (it == history_.end()) {
          response.status = Status::NotFound(
              StrFormat("tenant '%s' has no publishes on this shard",
                        request->tenant.c_str()));
        } else {
          // std::map iterates ascending by sequence — the order the
          // migration target must adopt (and a durable target must
          // append) them in.
          response.snapshots.reserve(it->second.size());
          for (const auto& [sequence, snapshot] : it->second) {
            (void)sequence;
            response.snapshots.push_back(snapshot);
          }
        }
      }
      return RespondControl(conn, WireType::kHandoffResponse,
                            EncodeHandoffResponse(response));
    }
    case WireType::kDropRequest: {
      StatusOr<WireDropRequest> request = DecodeDropRequest(frame.payload);
      if (!request.ok()) return request.status();
      WireDropResponse response;
      response.id = request->id;
      {
        // Drop forgets the handoff history; the serving slot itself stays
        // (ServingDirectory has no removal — harmless, since the fleet
        // routes the tenant elsewhere after the migration flip, and on a
        // durable shard the store keeps the history anyway).
        std::lock_guard<std::mutex> lock(history_mu_);
        if (history_.erase(request->tenant) == 0) {
          response.status = Status::NotFound(
              StrFormat("tenant '%s' has no publishes on this shard",
                        request->tenant.c_str()));
        }
      }
      return RespondControl(conn, WireType::kDropResponse,
                            EncodeDropResponse(response));
    }
    case WireType::kPingRequest: {
      StatusOr<WirePingRequest> request = DecodePingRequest(frame.payload);
      if (!request.ok()) return request.status();
      WirePingResponse response;
      response.id = request->id;
      response.stats = Stats();
      return RespondControl(conn, WireType::kPingResponse,
                            EncodePingResponse(response));
    }
    case WireType::kShutdownRequest: {
      StatusOr<WireShutdownRequest> request =
          DecodeShutdownRequest(frame.payload);
      if (!request.ok()) return request.status();
      WireShutdownResponse response;
      response.id = request->id;
      // Acknowledge BEFORE stopping: the fleet's shutdown call completes
      // only once the shard has committed to stopping.
      const Status sent = RespondControl(conn, WireType::kShutdownResponse,
                                         EncodeShutdownResponse(response));
      Stop();
      return sent;
    }
    case WireType::kQueryResponse:
    case WireType::kPublishResponse:
    case WireType::kHandoffResponse:
    case WireType::kDropResponse:
    case WireType::kPingResponse:
    case WireType::kShutdownResponse:
      return Status::InvalidArgument(
          "response frame sent to a shard (client/server confusion)");
  }
  return Status::InvalidArgument("unhandled frame type");
}

int RunShardProcess(const ShardServerOptions& options) {
  StatusOr<std::unique_ptr<ShardServer>> server = ShardServer::Create(options);
  if (!server.ok()) return 1;
  const Status served = (*server)->Serve();
  return served.ok() ? 0 : 2;
}

}  // namespace cksafe
