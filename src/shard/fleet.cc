#include "cksafe/shard/fleet.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <signal.h>
#include <sys/stat.h>

#include "cksafe/util/check.h"
#include "cksafe/util/page_io.h"
#include "cksafe/util/string_util.h"
#include "cksafe/util/subprocess.h"

namespace cksafe {
namespace {

uint64_t HashBytes(const std::string& s) {
  // Raw FNV-1a clusters badly on short keys that differ in one trailing
  // character: each shard's virtual nodes would sort into one contiguous
  // arc and a single shard would own almost the whole ring. Finish with a
  // SplitMix64-style avalanche so ring positions are uniform.
  uint64_t h = Fnv1a64(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Response frame (or link failure) -> the caller-facing query answer.
StatusOr<QueryAnswer> DecodeAnswerFrame(StatusOr<WireFrame> frame) {
  CKSAFE_ASSIGN_OR_RETURN(WireFrame resolved, std::move(frame));
  if (resolved.type != WireType::kQueryResponse) {
    return Status::Internal("non-query response to a query request");
  }
  CKSAFE_ASSIGN_OR_RETURN(WireQueryResponse response,
                          DecodeQueryResponse(resolved.payload));
  CKSAFE_RETURN_IF_ERROR(response.status);
  return response.answer;
}

}  // namespace

ShardFleet::ShardFleet(ShardFleetOptions options)
    : options_(std::move(options)) {}

StatusOr<std::unique_ptr<ShardFleet>> ShardFleet::Start(
    ShardFleetOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("a fleet needs at least one shard");
  }
  if (options.socket_dir.empty()) {
    return Status::InvalidArgument("a fleet needs a socket directory");
  }
  if (!options.durable_root.empty()) {
    // Each shard's store mkdirs its own leaf; the shared root is ours.
    if (::mkdir(options.durable_root.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(StrFormat("mkdir %s: %s",
                                       options.durable_root.c_str(),
                                       std::strerror(errno)));
    }
  }
  std::unique_ptr<ShardFleet> fleet(new ShardFleet(options));
  for (size_t i = 0; i < options.num_shards; ++i) {
    ShardServerOptions shard;
    shard.socket_path =
        StrFormat("%s/shard-%zu.sock", options.socket_dir.c_str(), i);
    if (!options.durable_root.empty()) {
      shard.durable_dir =
          StrFormat("%s/shard-%zu", options.durable_root.c_str(), i);
    }
    shard.buffer_pool_pages = options.buffer_pool_pages;
    shard.profile_max_k = options.profile_max_k;
    shard.router_queue_capacity = options.router_queue_capacity;
    shard.test_stall_queries_ms = options.test_stall_queries_ms;
    if (options.tweak_shard) options.tweak_shard(i, &shard);
    fleet->shard_options_.push_back(std::move(shard));
  }
  // The ring is fixed for the fleet's lifetime: virtual nodes smooth the
  // per-shard tenant share, migration overrides handle the rest.
  for (size_t i = 0; i < options.num_shards; ++i) {
    for (size_t v = 0; v < std::max<size_t>(options.virtual_nodes, 1); ++v) {
      fleet->ring_.emplace_back(
          HashBytes(StrFormat("shard-%zu#%zu", i, v)), i);
    }
  }
  std::sort(fleet->ring_.begin(), fleet->ring_.end());
  for (size_t i = 0; i < options.num_shards; ++i) {
    // On failure ~ShardFleet reaps everything already forked.
    CKSAFE_RETURN_IF_ERROR(fleet->SpawnAndConnect(i));
  }
  return fleet;
}

ShardFleet::~ShardFleet() {
  {
    // Best effort: frames to live shards, SIGKILL for the rest.
    Status ignored = ShutdownAll();
    (void)ignored;
  }
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto& link : links_) {
    if (link == nullptr) continue;
    if (!link->reaped && link->pid >= 0) {
      Status killed = KillProcess(link->pid, SIGKILL);
      (void)killed;
      if (auto reaped = WaitProcess(link->pid); reaped.ok()) {
        link->reaped = true;
      }
    }
    link->down.store(true, std::memory_order_release);
    link->socket.Shutdown();
    if (link->receiver.joinable()) link->receiver.join();
    FailPending(link.get(), Status::Unavailable("fleet shut down"));
  }
}

Status ShardFleet::SpawnAndConnect(size_t shard) {
  const ShardServerOptions& shard_options = shard_options_[shard];
  auto link = std::make_shared<Link>();
  CKSAFE_ASSIGN_OR_RETURN(
      link->pid, SpawnProcess([shard_options]() {
        return RunShardProcess(shard_options);
      }));
  // The child binds its listener asynchronously; retry the connect until
  // it is up (or provably dead).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.connect_timeout_ms);
  for (;;) {
    StatusOr<UnixSocket> connected =
        UnixSocket::Connect(shard_options.socket_path);
    if (connected.ok()) {
      link->socket = std::move(connected).value();
      break;
    }
    if (!ProcessAlive(link->pid)) {
      StatusOr<ProcessExit> reaped = WaitProcess(link->pid);
      if (reaped.ok()) link->reaped = true;
      return Status::Unavailable(
          StrFormat("shard %zu exited before accepting connections "
                    "(socket %s)",
                    shard, shard_options.socket_path.c_str()));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          StrFormat("shard %zu did not come up within %lld ms", shard,
                    static_cast<long long>(options_.connect_timeout_ms)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  link->receiver = std::thread([this, link] { ReceiverLoop(link); });
  std::lock_guard<std::mutex> lock(links_mu_);
  if (links_.size() <= shard) links_.resize(shard + 1);
  links_[shard] = std::move(link);
  return Status::OK();
}

std::shared_ptr<ShardFleet::Link> ShardFleet::GetLink(size_t shard) const {
  std::lock_guard<std::mutex> lock(links_mu_);
  CKSAFE_CHECK_LT(shard, links_.size());
  return links_[shard];
}

void ShardFleet::FailPending(Link* link, const Status& error) {
  std::map<uint64_t, PendingCall> orphaned;
  {
    std::lock_guard<std::mutex> lock(link->pending_mu);
    orphaned.swap(link->pending);
  }
  for (auto& [id, call] : orphaned) {
    (void)id;
    if (call.counted) link->in_flight.fetch_sub(1, std::memory_order_relaxed);
    call.resolve(error);
  }
}

void ShardFleet::ReceiverLoop(std::shared_ptr<Link> link) {
  for (;;) {
    StatusOr<WireFrame> frame = RecvFrame(&link->socket);
    if (!frame.ok()) {
      // The shard is gone (killed, crashed, or shut down) or the stream
      // is corrupt: either way nothing more will be answered on this
      // link. Every caller still waiting gets Unavailable NOW — the
      // "SIGKILLed shard never wedges the router" contract.
      link->down.store(true, std::memory_order_release);
      FailPending(link.get(),
                  Status::Unavailable(StrFormat(
                      "shard link lost: %s", frame.status().message().c_str())));
      return;
    }
    // Every response payload leads with the correlation id.
    ByteReader reader(frame->payload);
    StatusOr<uint64_t> id = reader.U64();
    if (!id.ok()) continue;  // unparseable frame: drop, keep the link
    PendingCall call;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(link->pending_mu);
      auto it = link->pending.find(*id);
      if (it != link->pending.end()) {
        call = std::move(it->second);
        link->pending.erase(it);
        found = true;
      }
    }
    if (!found) continue;  // late response for a call already failed
    if (call.counted) link->in_flight.fetch_sub(1, std::memory_order_relaxed);
    call.resolve(std::move(frame).value());
  }
}

Status ShardFleet::CallRegistered(
    const std::shared_ptr<Link>& link, WireType type,
    std::vector<uint8_t> payload, uint64_t id, bool counted,
    std::function<void(StatusOr<WireFrame>)> resolve) {
  if (link->down.load(std::memory_order_acquire)) {
    if (counted) link->in_flight.fetch_sub(1, std::memory_order_relaxed);
    return Status::Unavailable("shard is down");
  }
  {
    std::lock_guard<std::mutex> lock(link->pending_mu);
    PendingCall& call = link->pending[id];
    call.counted = counted;
    call.resolve = std::move(resolve);
  }
  Status sent = Status::OK();
  {
    std::lock_guard<std::mutex> lock(link->send_mu);
    sent = SendFrame(&link->socket, type, std::move(payload));
  }
  if (!sent.ok()) {
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(link->pending_mu);
      erased = link->pending.erase(id) > 0;
    }
    link->down.store(true, std::memory_order_release);
    link->socket.Shutdown();  // wake the receiver so it fails the rest
    if (erased) {
      if (counted) link->in_flight.fetch_sub(1, std::memory_order_relaxed);
      return Status::Unavailable(
          StrFormat("shard send failed: %s", sent.message().c_str()));
    }
    // The receiver failed the entry first; the resolver already ran with
    // its error — from the caller's side the call is registered and done.
  }
  return Status::OK();
}

StatusOr<std::future<StatusOr<WireFrame>>> ShardFleet::CallAsync(
    const std::shared_ptr<Link>& link, WireType type,
    std::vector<uint8_t> payload, uint64_t id, bool counted) {
  auto state = std::make_shared<std::promise<StatusOr<WireFrame>>>();
  std::future<StatusOr<WireFrame>> future = state->get_future();
  CKSAFE_RETURN_IF_ERROR(CallRegistered(
      link, type, std::move(payload), id, counted,
      [state](StatusOr<WireFrame> frame) { state->set_value(std::move(frame)); }));
  return future;
}

StatusOr<WireFrame> ShardFleet::CallSync(size_t shard, WireType type,
                                         std::vector<uint8_t> payload,
                                         uint64_t id, WireType expect) {
  const std::shared_ptr<Link> link = GetLink(shard);
  CKSAFE_ASSIGN_OR_RETURN(
      std::future<StatusOr<WireFrame>> future,
      CallAsync(link, type, std::move(payload), id, /*counted=*/false));
  CKSAFE_ASSIGN_OR_RETURN(WireFrame frame, future.get());
  if (frame.type != expect) {
    return Status::Internal(
        StrFormat("shard %zu answered frame type %u where %u was expected",
                  shard, static_cast<unsigned>(frame.type),
                  static_cast<unsigned>(expect)));
  }
  return frame;
}

size_t ShardFleet::ShardOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(routing_mu_);
  if (auto it = overrides_.find(tenant); it != overrides_.end()) {
    return it->second;
  }
  const uint64_t hash = HashBytes(tenant);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), hash,
      [](uint64_t h, const std::pair<uint64_t, size_t>& node) {
        return h < node.first;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

bool ShardFleet::ShardDown(size_t shard) const {
  return GetLink(shard)->down.load(std::memory_order_acquire);
}

StatusOr<std::future<StatusOr<QueryAnswer>>> ShardFleet::Submit(
    const Query& query) {
  const size_t shard = ShardOf(query.tenant);
  const std::shared_ptr<Link> link = GetLink(shard);
  if (link->down.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        StrFormat("shard %zu (tenant '%s') is down", shard,
                  query.tenant.c_str()));
  }
  // Fleet-side backpressure BEFORE any bytes move: the in-flight window
  // is claimed up front and released when the response (or link failure)
  // resolves the call.
  const size_t in_flight =
      link->in_flight.fetch_add(1, std::memory_order_relaxed);
  if (in_flight >= options_.max_in_flight_per_shard) {
    link->in_flight.fetch_sub(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrFormat("shard %zu in-flight window full (%zu)", shard,
                  options_.max_in_flight_per_shard));
  }
  WireQueryRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.query = query;
  // Promise-backed future, resolved (decode included) by whoever settles
  // the pending call — the receiver thread, FailPending, or the send-
  // failure path. The caller can wait_for/poll it like any QueryRouter
  // future; decode errors and shard-side per-query errors surface as the
  // StatusOr. CallRegistered releases the window slot on any error path.
  auto state = std::make_shared<std::promise<StatusOr<QueryAnswer>>>();
  std::future<StatusOr<QueryAnswer>> future = state->get_future();
  CKSAFE_RETURN_IF_ERROR(CallRegistered(
      link, WireType::kQueryRequest, EncodeQueryRequest(request), request.id,
      /*counted=*/true, [state](StatusOr<WireFrame> frame) {
        state->set_value(DecodeAnswerFrame(std::move(frame)));
      }));
  return future;
}

StatusOr<QueryAnswer> ShardFleet::Ask(const Query& query) {
  CKSAFE_ASSIGN_OR_RETURN(std::future<StatusOr<QueryAnswer>> future,
                          Submit(query));
  return future.get();
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> ShardFleet::Publish(
    const std::string& tenant, const PublishedRelease& release,
    size_t num_rows) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t sequence = next_sequence_[tenant] + 1;
  std::shared_ptr<const ReleaseSnapshot> snapshot =
      MakeReleaseSnapshot(sequence, num_rows, release);
  WirePublishRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.tenant = tenant;
  request.snapshot = snapshot;
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame frame,
      CallSync(ShardOf(tenant), WireType::kPublishRequest,
               EncodePublishRequest(request), request.id,
               WireType::kPublishResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WirePublishResponse response,
                          DecodePublishResponse(frame.payload));
  CKSAFE_RETURN_IF_ERROR(response.status);
  next_sequence_[tenant] = sequence;
  published_[{tenant, sequence}] = snapshot;
  return snapshot;
}

Status ShardFleet::PublishSnapshot(
    const std::string& tenant,
    std::shared_ptr<const ReleaseSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  WirePublishRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.tenant = tenant;
  request.snapshot = snapshot;
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame frame,
      CallSync(ShardOf(tenant), WireType::kPublishRequest,
               EncodePublishRequest(request), request.id,
               WireType::kPublishResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WirePublishResponse response,
                          DecodePublishResponse(frame.payload));
  CKSAFE_RETURN_IF_ERROR(response.status);
  next_sequence_[tenant] =
      std::max(next_sequence_[tenant], snapshot->sequence);
  published_[{tenant, snapshot->sequence}] = std::move(snapshot);
  return Status::OK();
}

Status ShardFleet::ResyncTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  WireHandoffRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.tenant = tenant;
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame frame,
      CallSync(ShardOf(tenant), WireType::kHandoffRequest,
               EncodeHandoffRequest(request), request.id,
               WireType::kHandoffResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WireHandoffResponse response,
                          DecodeHandoffResponse(frame.payload));
  if (response.status.code() == StatusCode::kNotFound) {
    // Nothing committed: the in-doubt publish did NOT survive.
    next_sequence_[tenant] = 0;
    return Status::OK();
  }
  CKSAFE_RETURN_IF_ERROR(response.status);
  uint64_t latest = 0;
  for (const auto& snapshot : response.snapshots) {
    latest = std::max(latest, snapshot->sequence);
    auto [it, inserted] =
        published_.try_emplace({tenant, snapshot->sequence}, snapshot);
    if (!inserted && !SnapshotsBitIdentical(*it->second, *snapshot)) {
      return Status::Internal(StrFormat(
          "resync: tenant '%s' sequence %llu differs from the writer's copy",
          tenant.c_str(),
          static_cast<unsigned long long>(snapshot->sequence)));
    }
  }
  next_sequence_[tenant] = std::max(next_sequence_[tenant], latest);
  return Status::OK();
}

Status ShardFleet::AdoptAll(
    size_t shard, const std::string& tenant,
    const std::vector<std::shared_ptr<const ReleaseSnapshot>>& snapshots) {
  for (const auto& snapshot : snapshots) {
    WirePublishRequest request;
    request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    request.tenant = tenant;
    request.snapshot = snapshot;
    CKSAFE_ASSIGN_OR_RETURN(
        const WireFrame frame,
        CallSync(shard, WireType::kPublishRequest,
                 EncodePublishRequest(request), request.id,
                 WireType::kPublishResponse));
    CKSAFE_ASSIGN_OR_RETURN(const WirePublishResponse response,
                            DecodePublishResponse(frame.payload));
    CKSAFE_RETURN_IF_ERROR(response.status);
  }
  return Status::OK();
}

Status ShardFleet::MigrateTenant(const std::string& tenant,
                                 size_t target_shard) {
  if (target_shard >= num_shards()) {
    return Status::OutOfRange(
        StrFormat("no shard %zu in a fleet of %zu", target_shard,
                  num_shards()));
  }
  // publish_mu_ serializes migration against the write path, so the
  // history shipped below is complete: no publish can land on the source
  // between the handoff and the routing flip.
  std::lock_guard<std::mutex> lock(publish_mu_);
  const size_t source_shard = ShardOf(tenant);
  if (source_shard == target_shard) return Status::OK();
  WireHandoffRequest handoff;
  handoff.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  handoff.tenant = tenant;
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame frame,
      CallSync(source_shard, WireType::kHandoffRequest,
               EncodeHandoffRequest(handoff), handoff.id,
               WireType::kHandoffResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WireHandoffResponse history,
                          DecodeHandoffResponse(frame.payload));
  CKSAFE_RETURN_IF_ERROR(history.status);
  // Publish-to-new: the target adopts the FULL ascending history, so the
  // tenant's sequences — and, on a durable target, the store's contiguity
  // — are preserved verbatim.
  CKSAFE_RETURN_IF_ERROR(AdoptAll(target_shard, tenant, history.snapshots));
  {
    // The flip: queries routed from this instant land on the target.
    // In-flight queries on the source answer from bit-identical
    // snapshots, so no answer anywhere reflects the migration.
    std::lock_guard<std::mutex> routing_lock(routing_mu_);
    overrides_[tenant] = target_shard;
  }
  // Drain-old: the source forgets its handoff history. Its serving slot
  // stays (harmless — nothing routes there), and a durable source keeps
  // the history on disk.
  WireDropRequest drop;
  drop.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  drop.tenant = tenant;
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame drop_frame,
      CallSync(source_shard, WireType::kDropRequest, EncodeDropRequest(drop),
               drop.id, WireType::kDropResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WireDropResponse dropped,
                          DecodeDropResponse(drop_frame.payload));
  if (!dropped.status.ok() &&
      dropped.status.code() != StatusCode::kNotFound) {
    return dropped.status;
  }
  return Status::OK();
}

Status ShardFleet::KillShard(size_t shard) {
  const std::shared_ptr<Link> link = GetLink(shard);
  link->down.store(true, std::memory_order_release);
  if (link->pid >= 0 && !link->reaped) {
    // ESRCH (already gone) is fine — the link teardown below still runs.
    Status killed = KillProcess(link->pid, SIGKILL);
    (void)killed;
    CKSAFE_ASSIGN_OR_RETURN(const ProcessExit proc_exit,
                            WaitProcess(link->pid));
    (void)proc_exit;
    link->reaped = true;
  }
  link->socket.Shutdown();
  if (link->receiver.joinable()) link->receiver.join();
  FailPending(link.get(),
              Status::Unavailable(StrFormat("shard %zu was killed", shard)));
  return Status::OK();
}

Status ShardFleet::RestartShard(size_t shard) {
  const std::shared_ptr<Link> link = GetLink(shard);
  if (!link->down.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        StrFormat("shard %zu is still up; kill or shut it down first",
                  shard));
  }
  if (!link->reaped && link->pid >= 0) {
    CKSAFE_ASSIGN_OR_RETURN(const ProcessExit proc_exit,
                            WaitProcess(link->pid));
    (void)proc_exit;
    link->reaped = true;
  }
  if (link->receiver.joinable()) link->receiver.join();
  FailPending(link.get(), Status::Unavailable("shard restarting"));
  // Same socket path, same durable directory: a durable shard recovers
  // its store and rehydrates — the kill-and-recover contract.
  return SpawnAndConnect(shard);
}

StatusOr<WireShardStats> ShardFleet::PingShard(size_t shard) {
  WirePingRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  CKSAFE_ASSIGN_OR_RETURN(
      const WireFrame frame,
      CallSync(shard, WireType::kPingRequest, EncodePingRequest(request),
               request.id, WireType::kPingResponse));
  CKSAFE_ASSIGN_OR_RETURN(const WirePingResponse response,
                          DecodePingResponse(frame.payload));
  CKSAFE_RETURN_IF_ERROR(response.status);
  return response.stats;
}

Status ShardFleet::ShutdownAll() {
  Status first_error = Status::OK();
  for (size_t shard = 0; shard < num_shards(); ++shard) {
    std::shared_ptr<Link> link;
    {
      std::lock_guard<std::mutex> lock(links_mu_);
      if (shard >= links_.size() || links_[shard] == nullptr) continue;
      link = links_[shard];
    }
    if (!link->down.load(std::memory_order_acquire)) {
      WireShutdownRequest request;
      request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      StatusOr<WireFrame> acked =
          CallSync(shard, WireType::kShutdownRequest,
                   EncodeShutdownRequest(request), request.id,
                   WireType::kShutdownResponse);
      if (!acked.ok() && first_error.ok()) first_error = acked.status();
    }
    link->down.store(true, std::memory_order_release);
    link->socket.Shutdown();
    if (link->receiver.joinable()) link->receiver.join();
    FailPending(link.get(), Status::Unavailable("fleet shutting down"));
    if (!link->reaped && link->pid >= 0) {
      StatusOr<ProcessExit> reaped = WaitProcess(link->pid);
      if (reaped.ok()) {
        link->reaped = true;
      } else if (first_error.ok()) {
        first_error = reaped.status();
      }
    }
  }
  return first_error;
}

std::map<std::pair<std::string, uint64_t>,
         std::shared_ptr<const ReleaseSnapshot>>
ShardFleet::PublishedRegistry() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return published_;
}

}  // namespace cksafe
