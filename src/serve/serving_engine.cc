#include "cksafe/serve/serving_engine.h"

#include <utility>

namespace cksafe {

ServingEngine::ServingEngine(QueryRouter::Options router_options)
    : router_(&directory_, router_options) {}

std::shared_ptr<const ReleaseSnapshot> ServingEngine::PublishRelease(
    const std::string& tenant, const PublishedRelease& release,
    size_t num_rows) {
  SnapshotStore* store = directory_.GetOrAddTenant(tenant);
  const std::shared_ptr<const ReleaseSnapshot> previous = store->Current();
  const uint64_t sequence = (previous == nullptr ? 0 : previous->sequence) + 1;
  std::shared_ptr<const ReleaseSnapshot> snapshot =
      MakeReleaseSnapshot(sequence, num_rows, release);
  store->Publish(snapshot);
  return snapshot;
}

std::shared_ptr<const ReleaseSnapshot> ServingEngine::PublishStreaming(
    const std::string& tenant, const StreamingRelease& release) {
  return PublishRelease(tenant, release.release, release.num_rows);
}

std::vector<std::shared_ptr<const ReleaseSnapshot>>
ServingEngine::PublishTenantReleases(const std::vector<TenantRelease>& releases,
                                     size_t num_rows) {
  std::vector<std::shared_ptr<const ReleaseSnapshot>> published;
  published.reserve(releases.size());
  for (const TenantRelease& tenant : releases) {
    if (!tenant.release.ok()) continue;
    published.push_back(
        PublishRelease(tenant.tenant, *tenant.release, num_rows));
  }
  return published;
}

}  // namespace cksafe
