#include "cksafe/serve/serving_engine.h"

#include <utility>

#include "cksafe/util/string_util.h"

namespace cksafe {

ServingEngine::ServingEngine(QueryRouter::Options router_options)
    : router_(&directory_, router_options) {}

StatusOr<std::unique_ptr<ServingEngine>> ServingEngine::CreateDurable(
    DurableStoreOptions store_options, QueryRouter::Options router_options) {
  CKSAFE_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                          DurableStore::Open(std::move(store_options)));
  std::unique_ptr<ServingEngine> engine(new ServingEngine(router_options));
  CKSAFE_RETURN_IF_ERROR(store->RehydrateInto(&engine->directory_));
  engine->durable_store_ = std::move(store);
  return engine;
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> ServingEngine::PublishRelease(
    const std::string& tenant, const PublishedRelease& release,
    size_t num_rows) {
  SnapshotStore* store = directory_.GetOrAddTenant(tenant);
  const std::shared_ptr<const ReleaseSnapshot> previous = store->Current();
  const uint64_t sequence = (previous == nullptr ? 0 : previous->sequence) + 1;
  std::shared_ptr<const ReleaseSnapshot> snapshot =
      MakeReleaseSnapshot(sequence, num_rows, release);
  // Durable commit first: once the RCU swap makes a snapshot observable,
  // no crash may lose it. A failed append leaves the slot untouched.
  if (durable_store_ != nullptr) {
    CKSAFE_RETURN_IF_ERROR(durable_store_->AppendPublish(tenant, *snapshot));
  }
  store->Publish(snapshot);
  return snapshot;
}

Status ServingEngine::PublishSnapshot(
    const std::string& tenant,
    std::shared_ptr<const ReleaseSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot adopt a null snapshot");
  }
  if (snapshot->sequence == 0) {
    return Status::InvalidArgument("snapshot sequence 0 is reserved");
  }
  SnapshotStore* store = directory_.GetOrAddTenant(tenant);
  const std::shared_ptr<const ReleaseSnapshot> previous = store->Current();
  const uint64_t current = previous == nullptr ? 0 : previous->sequence;
  if (snapshot->sequence <= current) {
    // Checked here (not left to SnapshotStore's CHECK): a stale publish
    // arriving over the wire is input, not a programming error.
    return Status::FailedPrecondition(StrFormat(
        "adopted sequence %llu does not advance tenant '%s' (at %llu)",
        static_cast<unsigned long long>(snapshot->sequence), tenant.c_str(),
        static_cast<unsigned long long>(current)));
  }
  if (durable_store_ != nullptr) {
    CKSAFE_RETURN_IF_ERROR(durable_store_->AppendPublish(tenant, *snapshot));
  }
  store->Publish(std::move(snapshot));
  return Status::OK();
}

StatusOr<std::shared_ptr<const ReleaseSnapshot>> ServingEngine::PublishStreaming(
    const std::string& tenant, const StreamingRelease& release) {
  return PublishRelease(tenant, release.release, release.num_rows);
}

StatusOr<std::vector<std::shared_ptr<const ReleaseSnapshot>>>
ServingEngine::PublishTenantReleases(const std::vector<TenantRelease>& releases,
                                     size_t num_rows) {
  std::vector<std::shared_ptr<const ReleaseSnapshot>> published;
  published.reserve(releases.size());
  for (const TenantRelease& tenant : releases) {
    if (!tenant.release.ok()) continue;
    CKSAFE_ASSIGN_OR_RETURN(
        std::shared_ptr<const ReleaseSnapshot> snapshot,
        PublishRelease(tenant.tenant, *tenant.release, num_rows));
    published.push_back(std::move(snapshot));
  }
  return published;
}

}  // namespace cksafe
