#include "cksafe/serve/snapshot_store.h"

#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {

void SnapshotStore::Publish(std::shared_ptr<const ReleaseSnapshot> snapshot) {
  CKSAFE_CHECK(snapshot != nullptr) << "cannot publish a null snapshot";
  // CAS loop so racing publishers cannot silently regress the slot: the
  // swap only lands against the exact snapshot whose sequence was
  // compared, and a stale publish trips the CHECK instead of clobbering
  // a newer release.
  std::shared_ptr<const ReleaseSnapshot> previous =
      current_.load(std::memory_order_acquire);
  do {
    CKSAFE_CHECK(previous == nullptr ||
                 snapshot->sequence > previous->sequence)
        << "snapshot sequences must strictly increase (publishing "
        << snapshot->sequence << " over " << previous->sequence << ")";
  } while (!current_.compare_exchange_weak(previous, snapshot,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

SnapshotStore* ServingDirectory::GetOrAddTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<SnapshotStore>& slot = stores_[tenant];
  if (slot == nullptr) slot = std::make_unique<SnapshotStore>();
  return slot.get();
}

const SnapshotStore* ServingDirectory::Find(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stores_.find(tenant);
  return it == stores_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ServingDirectory::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, store] : stores_) names.push_back(name);
  return names;
}

}  // namespace cksafe
