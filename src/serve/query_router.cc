#include "cksafe/serve/query_router.h"

#include <algorithm>
#include <utility>

#include "cksafe/core/minimize2.h"
#include "cksafe/util/check.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

QueryRouter::QueryRouter(const ServingDirectory* directory, Options options)
    : directory_(directory),
      queue_(options.queue_capacity),
      manual_mode_(!options.start_worker) {
  CKSAFE_CHECK(directory != nullptr);
  if (!manual_mode_) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

QueryRouter::~QueryRouter() { Stop(); }

StatusOr<std::future<StatusOr<QueryAnswer>>> QueryRouter::Submit(Query query) {
  // Admission-time validation: absurd budgets and malformed thresholds are
  // rejected before they consume queue space or reach the sweep.
  if (Status budget = Minimize2Forward::ValidateBudget(query.k);
      !budget.ok()) {
    return budget;
  }
  if (query.kind == QueryKind::kIsCkSafe && !(query.c > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("kIsCkSafe requires a threshold c > 0, got %g", query.c));
  }
  Pending pending;
  pending.query = std::move(query);
  std::future<StatusOr<QueryAnswer>> future = pending.promise.get_future();
  // Count the submission BEFORE the push: the instant TryPush succeeds the
  // worker may pop and answer the query, so incrementing afterwards let a
  // concurrent stats() reader observe answered > submitted. Counting first
  // and rolling back on rejection keeps the invariant answered <= submitted
  // at every instant (a not-yet-rolled-back rejection only overcounts
  // submitted, which is the benign direction).
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (Status admitted = queue_.TryPush(std::move(pending)); !admitted.ok()) {
    stats_.submitted.fetch_sub(1, std::memory_order_relaxed);
    if (admitted.code() == StatusCode::kResourceExhausted) {
      // Only genuine backpressure counts; a closed-queue rejection after
      // Stop() is shutdown, not load.
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }
  return future;
}

StatusOr<QueryAnswer> QueryRouter::Ask(Query query) {
  auto submitted = Submit(std::move(query));
  if (!submitted.ok()) return submitted.status();
  return submitted.value().get();
}

size_t QueryRouter::DrainOnce() {
  CKSAFE_CHECK(manual_mode_)
      << "DrainOnce is only available with start_worker = false";
  if (!queue_.TryPopAll(&drain_buffer_)) return 0;
  const size_t served = drain_buffer_.size();
  ServeBatch(&drain_buffer_);
  return served;
}

void QueryRouter::Stop() {
  // stop_mu_ is held across the ENTIRE close-and-drain, not just the
  // stopped_ flip: when any Stop() call returns, every future that was
  // accepted by Submit has been resolved. Flipping the flag first and
  // draining outside the lock let a concurrent second caller return while
  // the first was still joining the worker — exactly the window the
  // multi-process drain path (a shard handling a shutdown frame while the
  // fleet tears it down) would hit. Safe to hold: neither the worker loop
  // nor Submit ever takes stop_mu_, so there is no lock-order cycle, and a
  // Submit racing past queue_.Close() gets FailedPrecondition from TryPush
  // without having created an unresolved future.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();  // the worker drains admitted queries before exiting
  } else {
    // Manual mode: resolve anything still queued so no future dangles.
    while (queue_.TryPopAll(&drain_buffer_)) {
      for (Pending& pending : drain_buffer_) {
        Answer(&pending, Status::FailedPrecondition("router stopped"));
      }
    }
  }
  stopped_ = true;
}

RouterStats QueryRouter::stats() const {
  RouterStats out;
  out.submitted = stats_.submitted.load(std::memory_order_relaxed);
  out.rejected = stats_.rejected.load(std::memory_order_relaxed);
  out.answered = stats_.answered.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.profile_sweeps = stats_.profile_sweeps.load(std::memory_order_relaxed);
  out.per_bucket_sweeps =
      stats_.per_bucket_sweeps.load(std::memory_order_relaxed);
  out.snapshot_reloads =
      stats_.snapshot_reloads.load(std::memory_order_relaxed);
  return out;
}

void QueryRouter::WorkerLoop() {
  while (queue_.PopAll(&drain_buffer_)) {
    ServeBatch(&drain_buffer_);
  }
}

void QueryRouter::Answer(Pending* pending, StatusOr<QueryAnswer> answer) {
  // Count BEFORE resolving the promise: the instant set_value runs, the
  // submitter can observe its answer (and, over the shard wire, ping for
  // stats), so incrementing afterwards let a client that already holds a
  // response read answered as if the query were still pending. Submitted
  // was counted before the push, so answered <= submitted still holds.
  stats_.answered.fetch_add(1, std::memory_order_relaxed);
  pending->promise.set_value(std::move(answer));
}

void QueryRouter::ServeBatch(std::vector<Pending>* batch) {
  if (batch->empty()) return;
  uint64_t profile_sweeps = 0;
  uint64_t per_bucket_sweeps = 0;
  uint64_t reloads = 0;

  // Group by tenant (pointers into *batch stay stable — no reallocation).
  std::map<std::string, std::vector<Pending*>> by_tenant;
  for (Pending& pending : *batch) {
    by_tenant[pending.query.tenant].push_back(&pending);
  }

  for (auto& [tenant, queries] : by_tenant) {
    const SnapshotStore* store = directory_->Find(tenant);
    if (store == nullptr) {
      for (Pending* pending : queries) {
        Answer(pending, Status::NotFound("unknown tenant '" + tenant + "'"));
      }
      continue;
    }
    // Resolve the snapshot ONCE per (tenant, batch): every answer below is
    // consistent with exactly this snapshot even while a writer swaps, and
    // the shared_ptr pins it for the duration of the batch.
    const std::shared_ptr<const ReleaseSnapshot> snapshot = store->Current();
    if (snapshot == nullptr) {
      for (Pending* pending : queries) {
        Answer(pending,
               Status::FailedPrecondition("tenant '" + tenant +
                                          "' has no published release yet"));
      }
      continue;
    }

    TenantServingState& state = tenant_state_[tenant];
    if (state.snapshot != snapshot) {
      state.snapshot = snapshot;
      state.analyzer = std::make_unique<DisclosureAnalyzer>(
          snapshot->bucketization, &table_cache_);
      state.profile_valid = false;
      state.per_bucket.clear();
      ++reloads;
    }

    // One profile sweep at the batch's maximum requested budget answers
    // every curve-shaped query in it: column k of the wider sweep is
    // bit-identical to a dedicated budget-k sweep (the one-sweep profile
    // contract), so widening the cached profile never changes an answer.
    size_t needed_k = 0;
    bool needs_profile = false;
    for (const Pending* pending : queries) {
      if (pending->query.kind != QueryKind::kPerBucket) {
        needs_profile = true;
        needed_k = std::max(needed_k, pending->query.k);
      }
    }
    if (needs_profile &&
        (!state.profile_valid || state.profile.max_k() < needed_k)) {
      // Sweep at the tenant's historical high-water budget, not just this
      // batch's maximum: a snapshot reload invalidates the cached profile,
      // and recomputing at exactly needed_k used to narrow the cache so
      // the next wide query forced a second sweep per swap. Widening is
      // free of answer drift (column k of a wider sweep is bit-identical
      // to a dedicated budget-k sweep), so remembering the width only
      // removes sweeps.
      state.profile_budget = std::max(needed_k, state.profile_budget);
      state.profile = state.analyzer->Profile(state.profile_budget,
                                              &workspace_);
      state.profile_valid = true;
      ++profile_sweeps;
    }

    for (Pending* pending : queries) {
      const Query& query = pending->query;
      QueryAnswer answer;
      answer.snapshot_sequence = snapshot->sequence;
      if (query.kind == QueryKind::kPerBucket) {
        if (query.bucket >= snapshot->bucketization.num_buckets()) {
          Answer(pending,
                 Status::OutOfRange(StrFormat(
                     "bucket %zu out of range (snapshot %llu has %zu buckets)",
                     query.bucket,
                     static_cast<unsigned long long>(snapshot->sequence),
                     snapshot->bucketization.num_buckets())));
          continue;
        }
        auto it = state.per_bucket.find(query.k);
        if (it == state.per_bucket.end()) {
          it = state.per_bucket
                   .emplace(query.k, state.analyzer->PerBucketDisclosure(
                                         query.k, &workspace_))
                   .first;
          ++per_bucket_sweeps;
        }
        answer.disclosure = it->second[query.bucket];
      } else {
        answer.disclosure = state.profile.implication[query.k];
        answer.log_r = state.profile.implication_log_r[query.k];
        if (query.kind == QueryKind::kIsCkSafe) {
          answer.safe = state.profile.IsCkSafe(query.c, query.k);
        } else if (query.kind == QueryKind::kProfileAtK) {
          answer.negation = state.profile.negation[query.k];
        }
      }
      Answer(pending, std::move(answer));
    }
  }

  // `answered` is counted per query inside Answer(), before each promise
  // resolves — see the comment there.
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.profile_sweeps.fetch_add(profile_sweeps, std::memory_order_relaxed);
  stats_.per_bucket_sweeps.fetch_add(per_bucket_sweeps,
                                     std::memory_order_relaxed);
  stats_.snapshot_reloads.fetch_add(reloads, std::memory_order_relaxed);
}

}  // namespace cksafe
