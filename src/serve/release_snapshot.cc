#include "cksafe/serve/release_snapshot.h"

#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {

std::shared_ptr<const ReleaseSnapshot> MakeReleaseSnapshot(
    uint64_t sequence, size_t num_rows, const PublishedRelease& release) {
  CKSAFE_CHECK_GE(sequence, uint64_t{1}) << "sequence 0 means 'no release'";
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  snapshot->sequence = sequence;
  snapshot->num_rows = num_rows;
  snapshot->node = release.node;
  snapshot->bucketization = release.bucketization;
  return snapshot;
}

std::shared_ptr<const ReleaseSnapshot> MakeReleaseSnapshot(
    uint64_t sequence, Bucketization bucketization, LatticeNode node) {
  CKSAFE_CHECK_GE(sequence, uint64_t{1}) << "sequence 0 means 'no release'";
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  snapshot->sequence = sequence;
  snapshot->num_rows = bucketization.num_tuples();
  snapshot->node = std::move(node);
  snapshot->bucketization = std::move(bucketization);
  return snapshot;
}

bool SnapshotsBitIdentical(const ReleaseSnapshot& a, const ReleaseSnapshot& b) {
  if (a.sequence != b.sequence || a.num_rows != b.num_rows ||
      a.node != b.node) {
    return false;
  }
  const Bucketization& ba = a.bucketization;
  const Bucketization& bb = b.bucketization;
  if (ba.sensitive_domain_size() != bb.sensitive_domain_size() ||
      ba.num_buckets() != bb.num_buckets()) {
    return false;
  }
  for (size_t i = 0; i < ba.num_buckets(); ++i) {
    const Bucket& x = ba.buckets()[i];
    const Bucket& y = bb.buckets()[i];
    if (x.qi_label != y.qi_label || x.members != y.members ||
        x.histogram != y.histogram) {
      return false;
    }
  }
  return true;
}

}  // namespace cksafe
