#include "cksafe/serve/release_snapshot.h"

#include <utility>

#include "cksafe/util/check.h"

namespace cksafe {

std::shared_ptr<const ReleaseSnapshot> MakeReleaseSnapshot(
    uint64_t sequence, size_t num_rows, const PublishedRelease& release) {
  CKSAFE_CHECK_GE(sequence, uint64_t{1}) << "sequence 0 means 'no release'";
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  snapshot->sequence = sequence;
  snapshot->num_rows = num_rows;
  snapshot->node = release.node;
  snapshot->bucketization = release.bucketization;
  return snapshot;
}

std::shared_ptr<const ReleaseSnapshot> MakeReleaseSnapshot(
    uint64_t sequence, Bucketization bucketization, LatticeNode node) {
  CKSAFE_CHECK_GE(sequence, uint64_t{1}) << "sequence 0 means 'no release'";
  auto snapshot = std::make_shared<ReleaseSnapshot>();
  snapshot->sequence = sequence;
  snapshot->num_rows = bucketization.num_tuples();
  snapshot->node = std::move(node);
  snapshot->bucketization = std::move(bucketization);
  return snapshot;
}

}  // namespace cksafe
