#include "cksafe/hierarchy/hierarchy.h"

#include <unordered_map>
#include <unordered_set>

#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<IntervalHierarchy> IntervalHierarchy::Create(
    AttributeDef attribute, std::vector<int32_t> widths,
    bool add_suppressed_top) {
  if (attribute.is_categorical()) {
    return Status::InvalidArgument("IntervalHierarchy requires a numeric attribute");
  }
  if (widths.empty()) return Status::InvalidArgument("widths must be non-empty");
  if (widths[0] != 1) {
    return Status::InvalidArgument("level 0 must be the identity (width 1)");
  }
  for (size_t i = 1; i < widths.size(); ++i) {
    if (widths[i] <= 0 || widths[i] % widths[i - 1] != 0 ||
        widths[i] == widths[i - 1]) {
      return Status::InvalidArgument(StrFormat(
          "width %d at level %zu must be a strictly larger multiple of %d",
          widths[i], i, widths[i - 1]));
    }
  }
  IntervalHierarchy h;
  h.attribute_ = std::move(attribute);
  h.widths_ = std::move(widths);
  h.suppressed_top_ = add_suppressed_top;
  return h;
}

int32_t IntervalHierarchy::GroupOf(int32_t code, size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  CKSAFE_CHECK(attribute_.IsValidCode(code)) << "code" << code;
  if (suppressed_top_ && level == widths_.size()) return 0;
  return (code - attribute_.min_value()) / widths_[level];
}

size_t IntervalHierarchy::NumGroups(size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  if (suppressed_top_ && level == widths_.size()) return 1;
  const int32_t span = attribute_.max_value() - attribute_.min_value() + 1;
  return static_cast<size_t>((span + widths_[level] - 1) / widths_[level]);
}

std::string IntervalHierarchy::GroupLabel(int32_t group, size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  CKSAFE_CHECK_GE(group, 0);
  CKSAFE_CHECK_LT(static_cast<size_t>(group), NumGroups(level));
  if (suppressed_top_ && level == widths_.size()) return "*";
  const int32_t w = widths_[level];
  const int32_t lo = attribute_.min_value() + group * w;
  if (w == 1) return std::to_string(lo);
  const int32_t hi = std::min(lo + w - 1, attribute_.max_value());
  return StrFormat("[%d-%d]", lo, hi);
}

StatusOr<TreeHierarchy> TreeHierarchy::Create(
    AttributeDef attribute, std::vector<std::vector<Group>> levels) {
  if (!attribute.is_categorical()) {
    return Status::InvalidArgument("TreeHierarchy requires a categorical attribute");
  }
  TreeHierarchy h;
  const size_t domain = attribute.domain_size();

  // Level 0: identity.
  std::vector<int32_t> identity(domain);
  std::vector<std::string> identity_labels(domain);
  for (size_t c = 0; c < domain; ++c) {
    identity[c] = static_cast<int32_t>(c);
    identity_labels[c] = attribute.LabelOf(static_cast<int32_t>(c));
  }
  h.group_of_.push_back(std::move(identity));
  h.labels_.push_back(std::move(identity_labels));

  for (size_t li = 0; li < levels.size(); ++li) {
    const auto& groups = levels[li];
    std::vector<int32_t> mapping(domain, -1);
    std::vector<std::string> labels;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].members.empty()) {
        return Status::InvalidArgument("empty group '" + groups[g].label + "'");
      }
      labels.push_back(groups[g].label);
      for (const std::string& member : groups[g].members) {
        CKSAFE_ASSIGN_OR_RETURN(int32_t code, attribute.CodeOf(member));
        if (mapping[static_cast<size_t>(code)] != -1) {
          return Status::InvalidArgument("label '" + member +
                                         "' assigned to two groups");
        }
        mapping[static_cast<size_t>(code)] = static_cast<int32_t>(g);
      }
    }
    for (size_t c = 0; c < domain; ++c) {
      if (mapping[c] == -1) {
        return Status::InvalidArgument(
            StrFormat("level %zu does not cover label '%s'", li + 1,
                      attribute.LabelOf(static_cast<int32_t>(c)).c_str()));
      }
    }
    // Nesting: same group at the previous level implies same group here.
    const std::vector<int32_t>& prev = h.group_of_.back();
    std::unordered_map<int32_t, int32_t> prev_to_new;
    for (size_t c = 0; c < domain; ++c) {
      auto [it, inserted] = prev_to_new.emplace(prev[c], mapping[c]);
      if (!inserted && it->second != mapping[c]) {
        return Status::InvalidArgument(StrFormat(
            "level %zu splits a level-%zu group (value '%s')", li + 1, li,
            attribute.LabelOf(static_cast<int32_t>(c)).c_str()));
      }
    }
    h.group_of_.push_back(std::move(mapping));
    h.labels_.push_back(std::move(labels));
  }
  h.attribute_ = std::move(attribute);
  return h;
}

TreeHierarchy TreeHierarchy::SuppressionOnly(AttributeDef attribute) {
  std::vector<Group> top(1);
  top[0].label = "*";
  for (const std::string& label : attribute.labels()) {
    top[0].members.push_back(label);
  }
  auto result = Create(std::move(attribute), {std::move(top)});
  CKSAFE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::shared_ptr<const AttributeHierarchy> MakeDefaultHierarchy(
    const AttributeDef& attribute) {
  if (attribute.is_categorical()) {
    return ShareHierarchy(TreeHierarchy::SuppressionOnly(attribute));
  }
  const int64_t span = static_cast<int64_t>(attribute.max_value()) -
                       attribute.min_value() + 1;
  std::vector<int32_t> widths = {1};
  while (widths.size() < 4 && widths.back() * 4 < span) {
    widths.push_back(widths.back() * 4);
  }
  auto hierarchy = IntervalHierarchy::Create(attribute, std::move(widths),
                                             /*add_suppressed_top=*/true);
  CKSAFE_CHECK(hierarchy.ok()) << hierarchy.status().ToString();
  return ShareHierarchy(*std::move(hierarchy));
}

int32_t TreeHierarchy::GroupOf(int32_t code, size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  CKSAFE_CHECK(attribute_.IsValidCode(code)) << "code" << code;
  return group_of_[level][static_cast<size_t>(code)];
}

size_t TreeHierarchy::NumGroups(size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  return labels_[level].size();
}

std::string TreeHierarchy::GroupLabel(int32_t group, size_t level) const {
  CKSAFE_CHECK_LT(level, num_levels());
  CKSAFE_CHECK_GE(group, 0);
  CKSAFE_CHECK_LT(static_cast<size_t>(group), labels_[level].size());
  return labels_[level][static_cast<size_t>(group)];
}

}  // namespace cksafe
