#include "cksafe/data/csv_table.h"

#include <algorithm>
#include <map>
#include <set>

#include "cksafe/util/csv.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<Table> TableFromCsv(const std::string& path,
                             CsvTableOptions options) {
  CKSAFE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path, options.delimiter));
  if (rows.empty()) return Status::InvalidArgument("no header row in " + path);
  const std::vector<std::string> header = rows.front();
  const size_t num_columns = header.size();
  if (num_columns == 0) return Status::InvalidArgument("empty header");

  // Pass 1: drop rows with missing values, validate arity, classify
  // columns and collect labels / ranges.
  std::vector<const std::vector<std::string>*> data;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != num_columns) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu fields, header has %zu", r,
                    rows[r].size(), num_columns));
    }
    bool missing = false;
    if (!options.missing_marker.empty()) {
      for (const std::string& cell : rows[r]) {
        if (cell == options.missing_marker) missing = true;
      }
    }
    if (!missing) data.push_back(&rows[r]);
  }
  if (data.empty()) {
    return Status::InvalidArgument("no complete data rows in " + path);
  }

  std::vector<AttributeDef> defs;
  defs.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    bool numeric = true;
    int64_t min_value = 0;
    int64_t max_value = 0;
    bool first = true;
    for (const auto* row : data) {
      auto parsed = ParseInt64((*row)[c]);
      if (!parsed.ok()) {
        numeric = false;
        break;
      }
      if (first || *parsed < min_value) min_value = *parsed;
      if (first || *parsed > max_value) max_value = *parsed;
      first = false;
    }
    if (numeric && min_value >= INT32_MIN && max_value <= INT32_MAX) {
      defs.push_back(AttributeDef::Numeric(header[c],
                                           static_cast<int32_t>(min_value),
                                           static_cast<int32_t>(max_value)));
      continue;
    }
    // Categorical: labels in first-occurrence order for determinism.
    std::vector<std::string> labels;
    std::set<std::string> seen;
    for (const auto* row : data) {
      if (seen.insert((*row)[c]).second) labels.push_back((*row)[c]);
      if (labels.size() > options.max_categories) {
        return Status::ResourceExhausted(
            StrFormat("column '%s' exceeds %zu distinct labels",
                      header[c].c_str(), options.max_categories));
      }
    }
    defs.push_back(AttributeDef::Categorical(header[c], std::move(labels)));
  }

  Table table{Schema(std::move(defs))};
  for (const auto* row : data) {
    CKSAFE_RETURN_IF_ERROR(table.AppendRowFromText(*row));
  }
  return table;
}

}  // namespace cksafe
