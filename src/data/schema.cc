#include "cksafe/data/schema.h"

#include "cksafe/util/string_util.h"

namespace cksafe {

AttributeDef AttributeDef::Numeric(std::string name, int32_t min_value,
                                   int32_t max_value) {
  CKSAFE_CHECK_LE(min_value, max_value);
  AttributeDef def;
  def.name_ = std::move(name);
  def.type_ = AttributeType::kNumeric;
  def.min_value_ = min_value;
  def.max_value_ = max_value;
  return def;
}

AttributeDef AttributeDef::Categorical(std::string name,
                                       std::vector<std::string> labels) {
  CKSAFE_CHECK(!labels.empty()) << "categorical attribute needs labels";
  AttributeDef def;
  def.name_ = std::move(name);
  def.type_ = AttributeType::kCategorical;
  def.labels_ = std::move(labels);
  for (size_t i = 0; i < def.labels_.size(); ++i) {
    auto [it, inserted] =
        def.label_index_.emplace(def.labels_[i], static_cast<int32_t>(i));
    CKSAFE_CHECK(inserted) << "duplicate label" << def.labels_[i];
    (void)it;
  }
  def.min_value_ = 0;
  def.max_value_ = static_cast<int32_t>(def.labels_.size()) - 1;
  return def;
}

size_t AttributeDef::domain_size() const {
  return static_cast<size_t>(max_value_ - min_value_ + 1);
}

StatusOr<int32_t> AttributeDef::CodeOf(std::string_view text) const {
  if (type_ == AttributeType::kCategorical) {
    auto it = label_index_.find(std::string(Trim(text)));
    if (it == label_index_.end()) {
      return Status::NotFound("no label '" + std::string(text) +
                              "' in attribute " + name_);
    }
    return it->second;
  }
  CKSAFE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
  if (v < min_value_ || v > max_value_) {
    return Status::OutOfRange("value " + std::to_string(v) +
                              " outside domain of " + name_);
  }
  return static_cast<int32_t>(v);
}

std::string AttributeDef::LabelOf(int32_t code) const {
  if (type_ == AttributeType::kCategorical) {
    CKSAFE_CHECK(IsValidCode(code)) << "bad code" << code << "for" << name_;
    return labels_[static_cast<size_t>(code)];
  }
  return std::to_string(code);
}

bool AttributeDef::IsValidCode(int32_t code) const {
  return code >= min_value_ && code <= max_value_;
}

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    auto [it, inserted] = name_index_.emplace(attributes_[i].name(), i);
    CKSAFE_CHECK(inserted) << "duplicate attribute" << attributes_[i].name();
    (void)it;
  }
}

const AttributeDef& Schema::attribute(size_t i) const {
  CKSAFE_CHECK_LT(i, attributes_.size());
  return attributes_[i];
}

StatusOr<size_t> Schema::IndexOf(std::string_view name) const {
  auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

}  // namespace cksafe
