#include "cksafe/data/table.h"

#include "cksafe/util/string_util.h"

namespace cksafe {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

int32_t Table::at(PersonId row, size_t col) const {
  CKSAFE_CHECK_LT(row, num_rows_);
  CKSAFE_CHECK_LT(col, columns_.size());
  return columns_[col][row];
}

Status Table::AppendRow(const std::vector<int32_t>& cells) {
  if (cells.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, schema has %zu attributes", cells.size(),
                  schema_.num_attributes()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (!schema_.attribute(i).IsValidCode(cells[i])) {
      return Status::OutOfRange(StrFormat(
          "code %d invalid for attribute %s", cells[i],
          schema_.attribute(i).name().c_str()));
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) columns_[i].push_back(cells[i]);
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRowFromText(const std::vector<std::string>& cells) {
  if (cells.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, schema has %zu attributes", cells.size(),
                  schema_.num_attributes()));
  }
  std::vector<int32_t> codes(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    CKSAFE_ASSIGN_OR_RETURN(codes[i], schema_.attribute(i).CodeOf(cells[i]));
  }
  return AppendRow(codes);
}

void Table::SetRowLabel(PersonId row, std::string label) {
  CKSAFE_CHECK_LT(row, num_rows_);
  if (row_labels_.size() <= row) row_labels_.resize(row + 1);
  row_labels_[row] = std::move(label);
}

std::string Table::RowLabel(PersonId row) const {
  CKSAFE_CHECK_LT(row, num_rows_);
  if (row < row_labels_.size() && !row_labels_[row].empty()) {
    return row_labels_[row];
  }
  return "p" + std::to_string(row);
}

StatusOr<PersonId> Table::FindRowByLabel(std::string_view label) const {
  for (size_t i = 0; i < row_labels_.size(); ++i) {
    if (row_labels_[i] == label) return static_cast<PersonId>(i);
  }
  return Status::NotFound("no row labeled '" + std::string(label) + "'");
}

const std::vector<int32_t>& Table::column(size_t col) const {
  CKSAFE_CHECK_LT(col, columns_.size());
  return columns_[col];
}

StatusOr<Table> Table::Project(const std::vector<size_t>& cols) const {
  std::vector<AttributeDef> defs;
  for (size_t c : cols) {
    if (c >= schema_.num_attributes()) {
      return Status::OutOfRange("projection column out of range");
    }
    defs.push_back(schema_.attribute(c));
  }
  Table out{Schema(std::move(defs))};
  out.num_rows_ = num_rows_;
  out.columns_.clear();
  for (size_t c : cols) out.columns_.push_back(columns_[c]);
  out.row_labels_ = row_labels_;
  return out;
}

std::string Table::RowToString(PersonId row) const {
  std::string out = RowLabel(row) + ": ";
  for (size_t c = 0; c < schema_.num_attributes(); ++c) {
    if (c > 0) out += ", ";
    out += schema_.attribute(c).name() + "=" +
           schema_.attribute(c).LabelOf(at(row, c));
  }
  return out;
}

}  // namespace cksafe
