#include "cksafe/core/bucket_stats.h"

#include <algorithm>
#include <numeric>

namespace cksafe {

uint32_t BucketStats::TopSum(size_t j) const {
  return prefix[std::min(j, d())];
}

BucketStats BucketStats::FromHistogram(const std::vector<uint32_t>& histogram) {
  BucketStats stats;
  for (size_t code = 0; code < histogram.size(); ++code) {
    if (histogram[code] == 0) continue;
    stats.counts.push_back(histogram[code]);
    stats.value_codes.push_back(static_cast<int32_t>(code));
    stats.n += histogram[code];
  }
  // Sort by count descending, value code ascending.
  std::vector<size_t> order(stats.counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (stats.counts[a] != stats.counts[b]) {
      return stats.counts[a] > stats.counts[b];
    }
    return stats.value_codes[a] < stats.value_codes[b];
  });
  std::vector<uint32_t> sorted_counts(order.size());
  std::vector<int32_t> sorted_codes(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_counts[i] = stats.counts[order[i]];
    sorted_codes[i] = stats.value_codes[order[i]];
  }
  stats.counts = std::move(sorted_counts);
  stats.value_codes = std::move(sorted_codes);

  stats.prefix.resize(stats.counts.size() + 1);
  stats.prefix[0] = 0;
  for (size_t j = 0; j < stats.counts.size(); ++j) {
    stats.prefix[j + 1] = stats.prefix[j] + stats.counts[j];
  }
  return stats;
}

std::string BucketStats::CountsKey() const {
  std::string key;
  key.reserve(counts.size() * sizeof(uint32_t));
  for (uint32_t c : counts) {
    key.append(reinterpret_cast<const char*>(&c), sizeof(c));
  }
  return key;
}

std::vector<BucketStats> ComputeBucketStats(const Bucketization& b) {
  std::vector<BucketStats> stats;
  stats.reserve(b.num_buckets());
  for (const Bucket& bucket : b.buckets()) {
    stats.push_back(BucketStats::FromHistogram(bucket.histogram));
  }
  return stats;
}

}  // namespace cksafe
