#include "cksafe/core/bucket_stats.h"

#include <algorithm>
#include <numeric>

#include "cksafe/util/check.h"

namespace cksafe {

uint32_t BucketStats::TopSum(size_t j) const {
  return prefix[std::min(j, d())];
}

BucketStats BucketStats::FromHistogram(const std::vector<uint32_t>& histogram) {
  BucketStats stats;
  for (size_t code = 0; code < histogram.size(); ++code) {
    if (histogram[code] == 0) continue;
    stats.counts.push_back(histogram[code]);
    stats.value_codes.push_back(static_cast<int32_t>(code));
    stats.n += histogram[code];
  }
  // Sort by count descending, value code ascending.
  std::vector<size_t> order(stats.counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (stats.counts[a] != stats.counts[b]) {
      return stats.counts[a] > stats.counts[b];
    }
    return stats.value_codes[a] < stats.value_codes[b];
  });
  std::vector<uint32_t> sorted_counts(order.size());
  std::vector<int32_t> sorted_codes(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_counts[i] = stats.counts[order[i]];
    sorted_codes[i] = stats.value_codes[order[i]];
  }
  stats.counts = std::move(sorted_counts);
  stats.value_codes = std::move(sorted_codes);

  stats.prefix.resize(stats.counts.size() + 1);
  stats.prefix[0] = 0;
  for (size_t j = 0; j < stats.counts.size(); ++j) {
    stats.prefix[j + 1] = stats.prefix[j] + stats.counts[j];
  }
  return stats;
}

namespace {

// Re-sorts entry `pos` after its count changed, preserving the global
// (count descending, code ascending) order, and rebuilds the prefix sums.
void RestoreOrder(BucketStats* stats, size_t pos) {
  const uint32_t count = stats->counts[pos];
  const int32_t code = stats->value_codes[pos];
  auto before = [&](size_t i) {
    // True iff entry i must precede (count, code).
    if (stats->counts[i] != count) return stats->counts[i] > count;
    return stats->value_codes[i] < code;
  };
  // Bubble left while the predecessor should come after us...
  while (pos > 0 && !before(pos - 1)) {
    std::swap(stats->counts[pos], stats->counts[pos - 1]);
    std::swap(stats->value_codes[pos], stats->value_codes[pos - 1]);
    --pos;
  }
  // ...or right while the successor should come before us.
  while (pos + 1 < stats->counts.size() && before(pos + 1)) {
    std::swap(stats->counts[pos], stats->counts[pos + 1]);
    std::swap(stats->value_codes[pos], stats->value_codes[pos + 1]);
    ++pos;
  }
  stats->prefix.resize(stats->counts.size() + 1);
  stats->prefix[0] = 0;
  for (size_t j = 0; j < stats->counts.size(); ++j) {
    stats->prefix[j + 1] = stats->prefix[j] + stats->counts[j];
  }
}

}  // namespace

void BucketStats::AddValue(int32_t code) {
  ++n;
  for (size_t i = 0; i < value_codes.size(); ++i) {
    if (value_codes[i] == code) {
      ++counts[i];
      RestoreOrder(this, i);
      return;
    }
  }
  counts.push_back(1);
  value_codes.push_back(code);
  RestoreOrder(this, counts.size() - 1);
}

void BucketStats::RemoveValue(int32_t code) {
  for (size_t i = 0; i < value_codes.size(); ++i) {
    if (value_codes[i] != code) continue;
    CKSAFE_CHECK_GT(n, 0u);
    --n;
    if (--counts[i] == 0) {
      counts.erase(counts.begin() + i);
      value_codes.erase(value_codes.begin() + i);
      prefix.resize(counts.size() + 1);
      prefix[0] = 0;
      for (size_t j = 0; j < counts.size(); ++j) {
        prefix[j + 1] = prefix[j] + counts[j];
      }
    } else {
      RestoreOrder(this, i);
    }
    return;
  }
  CKSAFE_CHECK(false) << "RemoveValue: code " << code << " absent from bucket";
}

std::vector<BucketStats> ComputeBucketStats(const Bucketization& b) {
  std::vector<BucketStats> stats;
  stats.reserve(b.num_buckets());
  for (const Bucket& bucket : b.buckets()) {
    stats.push_back(BucketStats::FromHistogram(bucket.histogram));
  }
  return stats;
}

}  // namespace cksafe
