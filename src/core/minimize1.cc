#include "cksafe/core/minimize1.h"

#include <algorithm>
#include <cmath>

namespace cksafe {

Minimize1Table::Minimize1Table(std::vector<uint32_t> sorted_counts,
                               size_t max_k)
    : counts_(std::move(sorted_counts)), max_k_(max_k) {
  CKSAFE_CHECK(!counts_.empty()) << "bucket must contain at least one tuple";
  CKSAFE_CHECK_LE(max_k, kMaxBudget) << "atom budget too large for choice storage";
  prefix_.resize(counts_.size() + 1);
  prefix_[0] = 0;
  for (size_t j = 0; j < counts_.size(); ++j) {
    CKSAFE_CHECK_GT(counts_[j], 0u);
    if (j > 0) CKSAFE_CHECK_LE(counts_[j], counts_[j - 1]);
    prefix_[j + 1] = prefix_[j] + counts_[j];
    n_ += counts_[j];
  }
  i_limit_ = std::min<size_t>(max_k_, n_);

  const size_t states = (i_limit_ + 1) * (max_k_ + 1) * (max_k_ + 1);
  memo_.assign(states, 0.0);
  computed_.assign(states, 0);
  choice_.assign(states, 0);
  // Precompute every entry reachable from the public entry points
  // (0, m, m) for m <= max_k, then clamp the per-budget minima with a
  // running min: the true minimum is nonincreasing in m (an m-structure
  // extends to m + 1 without increasing the product), and the MINIMIZE2
  // pruning bound relies on that holding for the *stored* doubles too.
  log_min_.resize(max_k_ + 1);
  log_min_[0] = 0.0;
  for (size_t m = 1; m <= max_k_; ++m) {
    log_min_[m] = std::min(Solve(0, m, m), log_min_[m - 1]);
  }
}

size_t Minimize1Table::Index(size_t i, size_t cap, size_t rem) const {
  CKSAFE_CHECK_LE(i, i_limit_);
  CKSAFE_CHECK_LE(cap, max_k_);
  CKSAFE_CHECK_LE(rem, max_k_);
  return (i * (max_k_ + 1) + cap) * (max_k_ + 1) + rem;
}

LogProb Minimize1Table::LogFactor(size_t i, size_t ki) const {
  // Probability that the i-th chosen person avoids the bucket's top
  // min(ki, d) values, given persons 0..i-1 avoided their (weakly larger)
  // top sets. Lemma 12's telescoping term, as a log.
  const double denom = static_cast<double>(n_) - static_cast<double>(i);
  CKSAFE_CHECK_GT(denom, 0.0);
  const double numer = static_cast<double>(n_) - static_cast<double>(i) -
                       static_cast<double>(prefix_[std::min(ki, counts_.size())]);
  return numer <= 0.0 ? kLogZero : std::log(numer / denom);
}

LogProb Minimize1Table::Solve(size_t i, size_t cap, size_t rem) {
  if (rem == 0) return 0.0;  // empty product: log 1
  if (i >= i_limit_ || i >= n_) return kLogInfeasible;  // no unused person
  const size_t index = Index(i, cap, rem);
  if (computed_[index]) return memo_[index];

  LogProb best = kLogInfeasible;
  uint16_t best_ki = 0;
  const size_t ki_max = std::min(cap, rem);
  for (size_t ki = 1; ki <= ki_max; ++ki) {
    const LogProb child = Solve(i + 1, ki, rem - ki);
    if (child == kLogInfeasible) continue;
    const LogProb candidate = LogFactor(i, ki) + child;
    if (candidate < best) {
      best = candidate;
      best_ki = static_cast<uint16_t>(ki);
    }
  }
  computed_[index] = 1;
  memo_[index] = best;
  choice_[index] = best_ki;
  return best;
}

double Minimize1Table::MinProbability(size_t m) const {
  CKSAFE_CHECK_LE(m, max_k_);
  // Feasibility: at least one person exists, so with m >= 1 a structure
  // always exists ((m) on one person).
  CKSAFE_CHECK(log_min_[m] != kLogInfeasible);
  return std::exp(log_min_[m]);
}

std::vector<uint32_t> Minimize1Table::WitnessPartition(size_t m) const {
  CKSAFE_CHECK_LE(m, max_k_);
  std::vector<uint32_t> partition;
  size_t i = 0;
  size_t cap = m;
  size_t rem = m;
  while (rem > 0) {
    const size_t index = Index(i, cap, rem);
    CKSAFE_CHECK(computed_[index]);
    const uint16_t ki = choice_[index];
    CKSAFE_CHECK_GT(ki, 0u);
    partition.push_back(ki);
    cap = ki;
    rem -= ki;
    ++i;
  }
  return partition;
}

}  // namespace cksafe
