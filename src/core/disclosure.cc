#include "cksafe/core/disclosure.h"

#include <algorithm>
#include <limits>

#include "cksafe/util/math_util.h"

namespace cksafe {

KnowledgeFormula WorstCaseDisclosure::ToFormula() const {
  KnowledgeFormula formula;
  for (const Atom& a : antecedents) {
    formula.AddSimple(SimpleImplication{a, target});
  }
  return formula;
}

DisclosureCache::Shard& DisclosureCache::ShardFor(
    const std::vector<uint32_t>& key) {
  return shards_[CountsHash{}(key) % kNumShards];
}

std::shared_ptr<const Minimize1Table> DisclosureCache::GetOrCompute(
    const std::vector<uint32_t>& sorted_counts, size_t max_k) {
  Shard& shard = ShardFor(sorted_counts);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.tables.find(sorted_counts);
    if (it != shard.tables.end() && it->second->max_k() >= max_k) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock so a slow O(k^3) build does not serialize the
  // shard. Two threads may race to build the same table; the loser's copy
  // is dropped unless it has the larger budget.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto table = std::make_shared<const Minimize1Table>(sorted_counts, max_k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.tables[sorted_counts];
  if (slot == nullptr || slot->max_k() < max_k) slot = std::move(table);
  return slot;  // covers max_k either way: ours, or a larger racing upgrade
}

size_t DisclosureCache::entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.tables.size();
  }
  return total;
}

void DisclosureCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tables.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void Minimize1BatchView::Prepare(const std::vector<uint32_t>& sorted_counts,
                                 size_t max_k) {
  CKSAFE_CHECK(!frozen_) << "Prepare on a frozen Minimize1BatchView";
  auto it = tables_.find(sorted_counts);
  if (it != tables_.end() && it->second->max_k() >= max_k) {
    ++local_hits_;
    return;
  }
  ++shared_lookups_;
  tables_[sorted_counts] = shared_->GetOrCompute(sorted_counts, max_k);
}

std::shared_ptr<const Minimize1Table> Minimize1BatchView::Get(
    const std::vector<uint32_t>& sorted_counts, size_t max_k) const {
  const auto it = tables_.find(sorted_counts);
  CKSAFE_CHECK(it != tables_.end())
      << "Minimize1BatchView::Get of a histogram never Prepared";
  CKSAFE_CHECK_GE(it->second->max_k(), max_k);
  return it->second;
}

void AppendBucketWitnessAtoms(const std::vector<PersonId>& members,
                              const BucketStats& stats,
                              const std::vector<uint32_t>& partition,
                              bool skip_target_atom, std::vector<Atom>* out) {
  CKSAFE_CHECK_LE(partition.size(), members.size());
  for (size_t person_i = 0; person_i < partition.size(); ++person_i) {
    const PersonId person = members[person_i];
    // Clamp to d: beyond that the structure is already impossible
    // (probability 0) and no distinct values remain (see minimize1.h).
    const size_t values = std::min<size_t>(partition[person_i], stats.d());
    for (size_t j = 0; j < values; ++j) {
      if (skip_target_atom && person_i == 0 && j == 0) continue;
      out->push_back(Atom{person, stats.value_codes[j]});
    }
  }
}

WorstCaseDisclosure AssembleImplicationWitness(
    LogProb log_r_min, const std::vector<Minimize2Placement>& placements,
    const std::vector<const std::vector<PersonId>*>& members,
    const std::vector<const BucketStats*>& stats,
    const std::vector<Minimize2Bucket>& buckets) {
  WorstCaseDisclosure result;
  result.disclosure = DisclosureFromLogRatio(log_r_min);
  result.log_r_min = log_r_min;
  for (size_t i = 0; i < placements.size(); ++i) {
    const Minimize2Placement& p = placements[i];
    if (p.has_target) {
      // A lives in bucket i together with p.atoms antecedent atoms.
      result.target = Atom{(*members[i])[0], stats[i]->value_codes[0]};
      AppendBucketWitnessAtoms(*members[i], *stats[i],
                               buckets[i].table->WitnessPartition(p.atoms + 1),
                               /*skip_target_atom=*/true, &result.antecedents);
    } else if (p.atoms > 0) {
      AppendBucketWitnessAtoms(*members[i], *stats[i],
                               buckets[i].table->WitnessPartition(p.atoms),
                               /*skip_target_atom=*/false, &result.antecedents);
    }
  }
  return result;
}

WorstCaseDisclosure MaxNegationsOverBuckets(
    const std::vector<const BucketStats*>& stats,
    const std::vector<const std::vector<PersonId>*>& members, size_t k) {
  CKSAFE_CHECK_EQ(stats.size(), members.size());
  WorstCaseDisclosure best;
  best.disclosure = -1.0;
  size_t best_bucket = 0;
  BucketNegationBest best_local;
  for (size_t i = 0; i < stats.size(); ++i) {
    const BucketNegationBest local = ComputeBucketNegationBest(*stats[i], k);
    if (local.disclosure > best.disclosure) {
      best.disclosure = local.disclosure;
      best_bucket = i;
      best_local = local;
    }
  }
  CKSAFE_CHECK_GE(best.disclosure, 0.0);
  // The negation adversary is computed directly as a disclosure; derive
  // the log-ratio view so both adversary classes report the same fields.
  best.log_r_min = LogRatioFromDisclosure(best.disclosure);
  const BucketStats& winner = *stats[best_bucket];
  const PersonId person = (*members[best_bucket])[0];
  best.target = Atom{person, winner.value_codes[best_local.value_index]};
  for (size_t j = 0; j < best_local.negated + 1 &&
                     best.antecedents.size() < best_local.negated;
       ++j) {
    if (j == best_local.value_index) continue;
    best.antecedents.push_back(Atom{person, winner.value_codes[j]});
  }
  return best;
}

BucketNegationBest ComputeBucketNegationBest(const BucketStats& stats,
                                             size_t k) {
  BucketNegationBest best;
  for (size_t t = 0; t < stats.d(); ++t) {
    // Negate the e most frequent values other than t, where
    // e = min(k, d - 1); negating values absent from the bucket changes
    // nothing.
    const size_t e = std::min<size_t>(k, stats.d() - 1);
    uint32_t eliminated;
    if (t < e + 1) {
      eliminated = stats.prefix[e + 1] - stats.counts[t];
    } else {
      eliminated = stats.prefix[e];
    }
    const double denom = static_cast<double>(stats.n) - eliminated;
    CKSAFE_CHECK_GT(denom, 0.0);
    const double disclosure = static_cast<double>(stats.counts[t]) / denom;
    if (disclosure > best.disclosure) {
      best.disclosure = disclosure;
      best.value_index = t;
      best.negated = e;
    }
  }
  return best;
}

std::vector<LogProb> ImplicationLogRatioCurveFromSweep(
    const Minimize2Forward& dp) {
  CKSAFE_CHECK_GT(dp.num_buckets(), 0u);
  std::vector<LogProb> curve(dp.k() + 1);
  for (size_t h = 0; h <= dp.k(); ++h) {
    const LogProb log_r_min = dp.LogRMinAt(h);
    CKSAFE_CHECK(log_r_min != kLogInfeasible) << "no feasible atom placement";
    curve[h] = log_r_min;
  }
  return curve;
}

std::vector<double> ImplicationCurveFromSweep(const Minimize2Forward& dp) {
  std::vector<double> curve = ImplicationLogRatioCurveFromSweep(dp);
  for (double& value : curve) value = DisclosureFromLogRatio(value);
  return curve;
}

std::vector<double> NegationCurveOverBuckets(
    const std::vector<const BucketStats*>& stats, size_t max_k) {
  CKSAFE_CHECK(!stats.empty());
  std::vector<double> curve(max_k + 1);
  for (size_t k = 0; k <= max_k; ++k) {
    double best = -1.0;
    for (const BucketStats* bucket : stats) {
      const double local = ComputeBucketNegationBest(*bucket, k).disclosure;
      if (local > best) best = local;
    }
    CKSAFE_CHECK_GE(best, 0.0);
    curve[k] = best;
  }
  return curve;
}

DisclosureAnalyzer::DisclosureAnalyzer(const Bucketization& bucketization,
                                       DisclosureCache* cache)
    : bucketization_(bucketization),
      stats_(ComputeBucketStats(bucketization)),
      cache_(cache != nullptr ? cache : &local_cache_) {
  CKSAFE_CHECK_GT(bucketization.num_buckets(), 0u)
      << "cannot analyze an empty bucketization";
}

DisclosureAnalyzer::DisclosureAnalyzer(const Bucketization& bucketization,
                                       DisclosureCache* cache,
                                       const Minimize1BatchView* batch_tables)
    : DisclosureAnalyzer(bucketization, cache) {
  batch_tables_ = batch_tables;
}

std::shared_ptr<const Minimize1Table> DisclosureAnalyzer::Table(
    size_t bucket_index, size_t max_k) const {
  if (batch_tables_ != nullptr) {
    return batch_tables_->Get(stats_[bucket_index].counts, max_k);
  }
  return cache_->GetOrCompute(stats_[bucket_index], max_k);
}

void DisclosureAnalyzer::Minimize2Inputs(
    size_t max_k, std::vector<Minimize2Bucket>* inputs) const {
  // Budget max_k = k + 1: the target atom A joins the k antecedents in its
  // own bucket. The shared_ptrs pin the tables for the whole computation
  // even if a concurrent analyzer upgrades the cache.
  inputs->resize(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    (*inputs)[i].table = Table(i, max_k);
    (*inputs)[i].ratio = static_cast<double>(stats_[i].n) /
                         static_cast<double>(stats_[i].counts[0]);
  }
}

WorstCaseDisclosure DisclosureAnalyzer::MaxDisclosureImplications(
    size_t k, Minimize2Workspace* workspace) const {
  Minimize2Workspace local;
  Minimize2Workspace& ws = workspace != nullptr ? *workspace : local;
  Minimize2Inputs(k + 1, &ws.inputs);
  Minimize2Forward& dp = ws.SweepForBudget(k);
  dp.Recompute(ws.inputs, 0);
  const LogProb log_r_min = dp.LogRMin();
  CKSAFE_CHECK(log_r_min != kLogInfeasible) << "no feasible atom placement";

  std::vector<const std::vector<PersonId>*> members(stats_.size());
  std::vector<const BucketStats*> stats(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    members[i] = &bucketization_.bucket(i).members;
    stats[i] = &stats_[i];
  }
  WorstCaseDisclosure result = AssembleImplicationWitness(
      log_r_min, dp.WitnessPlacements(), members, stats, ws.inputs);
  // Drop the table pins (capacity stays): a long-lived worker thread's
  // workspace must not keep the last node's MINIMIZE1 tables alive.
  ws.inputs.clear();
  return result;
}

WorstCaseDisclosure DisclosureAnalyzer::MaxDisclosureNegations(size_t k) const {
  std::vector<const BucketStats*> stats(stats_.size());
  std::vector<const std::vector<PersonId>*> members(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats[i] = &stats_[i];
    members[i] = &bucketization_.bucket(i).members;
  }
  return MaxNegationsOverBuckets(stats, members, k);
}

bool DisclosureAnalyzer::IsCkSafe(double c, size_t k,
                                  Minimize2Workspace* workspace) const {
  // Verdict straight off the sweep in log space: no witness assembly, and
  // exact where the linear disclosure saturates at 1.0 (DESIGN.md §9.3).
  Minimize2Workspace local;
  Minimize2Workspace& ws = workspace != nullptr ? *workspace : local;
  Minimize2Inputs(k + 1, &ws.inputs);
  Minimize2Forward& dp = ws.SweepForBudget(k);
  dp.Recompute(ws.inputs, 0);
  const LogProb log_r_min = dp.LogRMin();
  CKSAFE_CHECK(log_r_min != kLogInfeasible) << "no feasible atom placement";
  ws.inputs.clear();  // release table pins, keep capacity
  return IsSafeLogRatio(log_r_min, c);
}

std::vector<double> DisclosureAnalyzer::PerBucketDisclosure(
    size_t k, Minimize2Workspace* workspace) const {
  Minimize2Workspace local;
  Minimize2Workspace& ws = workspace != nullptr ? *workspace : local;
  Minimize2Inputs(k + 1, &ws.inputs);
  Minimize2Forward& prefix = ws.SweepForBudget(k);
  prefix.Recompute(ws.inputs, 0);
  ComputeNoASuffix(ws.inputs, k, &ws.suffix);
  std::vector<double> result =
      PerBucketLogRatioSweep(ws.inputs, k, prefix, ws.suffix);
  for (double& value : result) value = DisclosureFromLogRatio(value);
  ws.inputs.clear();  // release table pins, keep capacity
  return result;
}

DisclosureProfile DisclosureAnalyzer::Profile(size_t max_k,
                                              Minimize2Workspace* workspace,
                                              bool with_negation) const {
  Minimize2Workspace local;
  Minimize2Workspace& ws = workspace != nullptr ? *workspace : local;
  Minimize2Inputs(max_k + 1, &ws.inputs);
  Minimize2Forward& dp = ws.SweepForBudget(max_k);
  dp.Recompute(ws.inputs, 0);

  DisclosureProfile profile;
  profile.implication_log_r = ImplicationLogRatioCurveFromSweep(dp);
  profile.implication = ImplicationCurveFromSweep(dp);
  if (with_negation) {
    std::vector<const BucketStats*> stats(stats_.size());
    for (size_t i = 0; i < stats_.size(); ++i) stats[i] = &stats_[i];
    profile.negation = NegationCurveOverBuckets(stats, max_k);
  }
  ws.inputs.clear();  // release table pins, keep capacity
  return profile;
}

std::vector<double> DisclosureAnalyzer::ImplicationCurve(
    size_t max_k, Minimize2Workspace* workspace) const {
  Minimize2Workspace local;
  Minimize2Workspace& ws = workspace != nullptr ? *workspace : local;
  Minimize2Inputs(max_k + 1, &ws.inputs);
  Minimize2Forward& dp = ws.SweepForBudget(max_k);
  dp.Recompute(ws.inputs, 0);
  std::vector<double> curve = ImplicationCurveFromSweep(dp);
  ws.inputs.clear();  // release table pins, keep capacity
  return curve;
}

std::vector<double> DisclosureAnalyzer::NegationCurve(size_t max_k) const {
  std::vector<const BucketStats*> stats(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) stats[i] = &stats_[i];
  return NegationCurveOverBuckets(stats, max_k);
}

}  // namespace cksafe
