#include "cksafe/core/disclosure.h"

#include <algorithm>
#include <limits>

#include "cksafe/util/math_util.h"

namespace cksafe {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

KnowledgeFormula WorstCaseDisclosure::ToFormula() const {
  KnowledgeFormula formula;
  for (const Atom& a : antecedents) {
    formula.AddSimple(SimpleImplication{a, target});
  }
  return formula;
}

DisclosureCache::Shard& DisclosureCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::shared_ptr<const Minimize1Table> DisclosureCache::GetOrCompute(
    const BucketStats& stats, size_t max_k) {
  const std::string key = stats.CountsKey();
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.tables.find(key);
    if (it != shard.tables.end() && it->second->max_k() >= max_k) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock so a slow O(k^3) build does not serialize the
  // shard. Two threads may race to build the same table; the loser's copy
  // is dropped unless it has the larger budget.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto table = std::make_shared<const Minimize1Table>(stats.counts, max_k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.tables[key];
  if (slot == nullptr || slot->max_k() < max_k) slot = std::move(table);
  return slot;  // covers max_k either way: ours, or a larger racing upgrade
}

size_t DisclosureCache::entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.tables.size();
  }
  return total;
}

void DisclosureCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tables.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

DisclosureAnalyzer::DisclosureAnalyzer(const Bucketization& bucketization,
                                       DisclosureCache* cache)
    : bucketization_(bucketization),
      stats_(ComputeBucketStats(bucketization)),
      cache_(cache != nullptr ? cache : &local_cache_) {
  CKSAFE_CHECK_GT(bucketization.num_buckets(), 0u)
      << "cannot analyze an empty bucketization";
}

std::shared_ptr<const Minimize1Table> DisclosureAnalyzer::Table(
    size_t bucket_index, size_t max_k) const {
  return cache_->GetOrCompute(stats_[bucket_index], max_k);
}

void DisclosureAnalyzer::AppendWitnessAtoms(
    size_t bucket_index, const std::vector<uint32_t>& partition,
    bool skip_target_atom, std::vector<Atom>* out) const {
  const Bucket& bucket = bucketization_.bucket(bucket_index);
  const BucketStats& stats = stats_[bucket_index];
  CKSAFE_CHECK_LE(partition.size(), bucket.members.size());
  for (size_t person_i = 0; person_i < partition.size(); ++person_i) {
    const PersonId person = bucket.members[person_i];
    // Clamp to d: beyond that the structure is already impossible
    // (probability 0) and no distinct values remain (see minimize1.h).
    const size_t values = std::min<size_t>(partition[person_i], stats.d());
    for (size_t j = 0; j < values; ++j) {
      if (skip_target_atom && person_i == 0 && j == 0) continue;
      out->push_back(Atom{person, stats.value_codes[j]});
    }
  }
}

WorstCaseDisclosure DisclosureAnalyzer::MaxDisclosureImplications(
    size_t k) const {
  const size_t m = bucketization_.num_buckets();

  // Pre-fetch MINIMIZE1 tables (budget k+1: the target atom A joins the k
  // antecedents in its own bucket). The shared_ptrs pin the tables for the
  // whole computation even if a concurrent analyzer upgrades the cache.
  std::vector<std::shared_ptr<const Minimize1Table>> tables(m);
  for (size_t i = 0; i < m; ++i) tables[i] = Table(i, k + 1);

  // MINIMIZE2 as a backward DP over buckets.
  //   placed[i][h]: min prod over buckets i.. with h atoms left, A already
  //                 placed in an earlier bucket.
  //   pending[i][h]: same but A still to be placed in bucket >= i.
  // Choices record (t = atoms assigned to bucket i, branch).
  const size_t width = k + 1;
  std::vector<double> placed((m + 1) * width, kInf);
  std::vector<double> pending((m + 1) * width, kInf);
  // branch: 0 = A not here (pending stays pending), 1 = A placed here.
  std::vector<uint8_t> placed_choice(m * width, 0);
  std::vector<uint8_t> pending_choice_t(m * width, 0);
  std::vector<uint8_t> pending_choice_branch(m * width, 0);

  placed[m * width + 0] = 1.0;  // all atoms distributed, A placed
  for (size_t i = m; i-- > 0;) {
    for (size_t h = 0; h < width; ++h) {
      // placed: distribute t of the h remaining atoms into bucket i.
      double best = kInf;
      uint8_t best_t = 0;
      for (size_t t = 0; t <= h; ++t) {
        const double tail = placed[(i + 1) * width + (h - t)];
        if (tail == kInf) continue;
        const double u = tables[i]->MinProbability(t);
        const double candidate = u * tail;
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<uint8_t>(t);
        }
      }
      placed[i * width + h] = best;
      placed_choice[i * width + h] = best_t;

      // pending: either A goes into bucket i (with t other atoms, so the
      // bucket minimizes over t + 1 atoms and contributes the 1/Pr(A|B)
      // factor n_b / n_b(s^0_b)), or A goes later.
      double best_p = kInf;
      uint8_t best_p_t = 0;
      uint8_t best_p_branch = 0;
      const double ratio =
          static_cast<double>(stats_[i].n) / static_cast<double>(stats_[i].counts[0]);
      for (size_t t = 0; t <= h; ++t) {
        const double tail_placed = placed[(i + 1) * width + (h - t)];
        if (tail_placed != kInf) {
          const double v = tables[i]->MinProbability(t + 1);
          const double candidate = v * ratio * tail_placed;
          if (candidate < best_p) {
            best_p = candidate;
            best_p_t = static_cast<uint8_t>(t);
            best_p_branch = 1;
          }
        }
        const double tail_pending = pending[(i + 1) * width + (h - t)];
        if (tail_pending != kInf) {
          const double u = tables[i]->MinProbability(t);
          const double candidate = u * tail_pending;
          if (candidate < best_p) {
            best_p = candidate;
            best_p_t = static_cast<uint8_t>(t);
            best_p_branch = 0;
          }
        }
      }
      pending[i * width + h] = best_p;
      pending_choice_t[i * width + h] = best_p_t;
      pending_choice_branch[i * width + h] = best_p_branch;
    }
  }

  const double r_min = pending[0 * width + k];
  CKSAFE_CHECK(r_min != kInf) << "no feasible atom placement";
  WorstCaseDisclosure result;
  result.disclosure = 1.0 / (1.0 + r_min);

  // Reconstruct the witness: walk the recorded choices forward.
  bool a_placed = false;
  size_t h = k;
  for (size_t i = 0; i < m; ++i) {
    if (!a_placed) {
      const uint8_t t = pending_choice_t[i * width + h];
      const uint8_t branch = pending_choice_branch[i * width + h];
      if (branch == 1) {
        // A lives in bucket i together with t antecedent atoms.
        const std::vector<uint32_t> partition =
            tables[i]->WitnessPartition(t + 1);
        result.target = Atom{bucketization_.bucket(i).members[0],
                             stats_[i].value_codes[0]};
        AppendWitnessAtoms(i, partition, /*skip_target_atom=*/true,
                           &result.antecedents);
        a_placed = true;
      } else if (t > 0) {
        AppendWitnessAtoms(i, tables[i]->WitnessPartition(t),
                           /*skip_target_atom=*/false, &result.antecedents);
      }
      h -= t;
    } else {
      const uint8_t t = placed_choice[i * width + h];
      if (t > 0) {
        AppendWitnessAtoms(i, tables[i]->WitnessPartition(t),
                           /*skip_target_atom=*/false, &result.antecedents);
      }
      h -= t;
    }
  }
  CKSAFE_CHECK(a_placed);
  CKSAFE_CHECK_EQ(h, 0u);
  return result;
}

WorstCaseDisclosure DisclosureAnalyzer::MaxDisclosureNegations(size_t k) const {
  WorstCaseDisclosure best;
  best.disclosure = -1.0;
  for (size_t i = 0; i < stats_.size(); ++i) {
    const BucketStats& stats = stats_[i];
    const Bucket& bucket = bucketization_.bucket(i);
    for (size_t t = 0; t < stats.d(); ++t) {
      // Negate the e most frequent values other than t, where
      // e = min(k, d - 1); negating values absent from the bucket changes
      // nothing.
      const size_t e = std::min<size_t>(k, stats.d() - 1);
      uint32_t eliminated;
      if (t < e + 1) {
        eliminated = stats.prefix[e + 1] - stats.counts[t];
      } else {
        eliminated = stats.prefix[e];
      }
      const double denom = static_cast<double>(stats.n) - eliminated;
      CKSAFE_CHECK_GT(denom, 0.0);
      const double disclosure = static_cast<double>(stats.counts[t]) / denom;
      if (disclosure > best.disclosure) {
        best.disclosure = disclosure;
        const PersonId person = bucket.members[0];
        best.target = Atom{person, stats.value_codes[t]};
        best.antecedents.clear();
        for (size_t j = 0; j < e + 1 && best.antecedents.size() < e; ++j) {
          if (j == t) continue;
          best.antecedents.push_back(Atom{person, stats.value_codes[j]});
        }
      }
    }
  }
  CKSAFE_CHECK_GE(best.disclosure, 0.0);
  return best;
}

bool DisclosureAnalyzer::IsCkSafe(double c, size_t k) const {
  return MaxDisclosureImplications(k).disclosure < c;
}

std::vector<double> DisclosureAnalyzer::PerBucketDisclosure(size_t k) const {
  const size_t m = bucketization_.num_buckets();
  const size_t width = k + 1;
  std::vector<std::shared_ptr<const Minimize1Table>> tables(m);
  for (size_t i = 0; i < m; ++i) tables[i] = Table(i, k + 1);

  // prefix[i][h]: min over distributions of h antecedent atoms among
  // buckets [0, i); suffix[i][h]: among buckets [i, m).
  std::vector<double> prefix((m + 1) * width, kInf);
  std::vector<double> suffix((m + 1) * width, kInf);
  prefix[0 * width + 0] = 1.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      for (size_t t = 0; t <= h; ++t) {
        const double head = prefix[i * width + (h - t)];
        if (head == kInf) continue;
        best = std::min(best, tables[i]->MinProbability(t) * head);
      }
      prefix[(i + 1) * width + h] = best;
    }
  }
  suffix[m * width + 0] = 1.0;
  for (size_t i = m; i-- > 0;) {
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      for (size_t t = 0; t <= h; ++t) {
        const double tail = suffix[(i + 1) * width + (h - t)];
        if (tail == kInf) continue;
        best = std::min(best, tables[i]->MinProbability(t) * tail);
      }
      suffix[i * width + h] = best;
    }
  }

  std::vector<double> result(m);
  for (size_t j = 0; j < m; ++j) {
    // others[h] = min product when h atoms go to buckets other than j.
    std::vector<double> others(width, kInf);
    for (size_t h = 0; h < width; ++h) {
      for (size_t a = 0; a <= h; ++a) {
        const double head = prefix[j * width + a];
        const double tail = suffix[(j + 1) * width + (h - a)];
        if (head == kInf || tail == kInf) continue;
        others[h] = std::min(others[h], head * tail);
      }
    }
    const double ratio = static_cast<double>(stats_[j].n) /
                         static_cast<double>(stats_[j].counts[0]);
    double r_min = kInf;
    for (size_t t = 0; t <= k; ++t) {
      if (others[k - t] == kInf) continue;
      r_min = std::min(r_min,
                       tables[j]->MinProbability(t + 1) * ratio * others[k - t]);
    }
    CKSAFE_CHECK(r_min != kInf);
    result[j] = 1.0 / (1.0 + r_min);
  }
  return result;
}

std::vector<double> DisclosureAnalyzer::ImplicationCurve(size_t max_k) const {
  // Warm the shared tables once at the largest budget so per-k runs reuse
  // them.
  for (const BucketStats& stats : stats_) {
    cache_->GetOrCompute(stats, max_k + 1);
  }
  std::vector<double> curve(max_k + 1);
  for (size_t k = 0; k <= max_k; ++k) {
    curve[k] = MaxDisclosureImplications(k).disclosure;
  }
  return curve;
}

std::vector<double> DisclosureAnalyzer::NegationCurve(size_t max_k) const {
  std::vector<double> curve(max_k + 1);
  for (size_t k = 0; k <= max_k; ++k) {
    curve[k] = MaxDisclosureNegations(k).disclosure;
  }
  return curve;
}

}  // namespace cksafe
