#include "cksafe/core/minimize2.h"

#include <algorithm>
#include <cmath>

#include "cksafe/simd/dispatch.h"
#include "cksafe/util/check.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

Status Minimize2Forward::ValidateBudget(size_t k) {
  if (k > kMaxAnalysisBudget) {
    return Status::OutOfRange(
        StrFormat("atom budget k=%zu exceeds the supported maximum %zu "
                  "(the O(k^3) MINIMIZE1 memo is intractable beyond it)",
                  k, kMaxAnalysisBudget));
  }
  return Status::OK();
}

Minimize2Forward::Minimize2Forward(size_t k) : k_(k) {
  CKSAFE_CHECK_LE(k, kMaxBudget) << "atom budget too large for choice storage";
}

void Minimize2Forward::Reset(size_t k) {
  CKSAFE_CHECK_LE(k, kMaxBudget) << "atom budget too large for choice storage";
  k_ = k;
  num_rows_ = 0;
}

void Minimize2Forward::Recompute(const std::vector<Minimize2Bucket>& buckets,
                                 size_t first_dirty) {
  const size_t m = buckets.size();
  const size_t width = k_ + 1;
  const size_t rows = m + 1;
  // Row i is derived from row i - 1 and bucket i - 1; a change to bucket j
  // invalidates rows > j, so resume at row first_dirty + 1 — but never
  // beyond what a previous sweep actually computed (row 0, the constant
  // boundary, always counts as computed). Rows kept from a previous sweep
  // are valid exactly when their bucket prefix is unchanged, which is the
  // caller's contract. When the bucket list shrank, first_dirty <= m caps
  // the kept prefix at the surviving buckets and the resize below discards
  // the stale tail rows (audited in the streaming shrink regression test).
  const size_t prev_rows = std::max<size_t>(num_rows_, 1);
  const size_t start = std::min(std::min(first_dirty, m) + 1, prev_rows);

  no_a_.resize(rows * width);
  with_a_.resize(rows * width);
  no_choice_t_.resize(rows * width);
  wa_choice_t_.resize(rows * width);
  wa_choice_branch_.resize(rows * width);
  rev_no_.resize(width);
  rev_wa_.resize(width);
  rev_pm_no_.resize(width);
  rev_pm_wa_.resize(width);
  num_rows_ = rows;

  // Resolved once per sweep: a concurrent override (test-only) can never
  // mix backends inside one recomputation. Every backend is bit-identical
  // to the scalar reference (simd/dispatch.h), so which one runs is
  // unobservable in the results — including incremental row reuse across
  // calls that happen to resolve different backends.
  const ScanKernels& kernels = ActiveScanKernels();

  // Boundary: the empty bucket prefix has the empty product (log 1 = 0)
  // and no way to have placed the target atom.
  no_a_[RowIndex(0, 0)] = 0.0;
  for (size_t h = 1; h < width; ++h) no_a_[RowIndex(0, h)] = kLogInfeasible;
  for (size_t h = 0; h < width; ++h) with_a_[RowIndex(0, h)] = kLogInfeasible;

  for (size_t i = start; i <= m; ++i) {
    const Minimize1Table& table = *buckets[i - 1].table;
    // The with_a recurrence reads budget h + 1 <= k_ + 1 of the table.
    CKSAFE_CHECK_GT(table.max_k(), k_) << "table budget too small for sweep";
    const LogProb* f = table.MinLogRow();  // nonincreasing (clamped)
    const double log_ratio = std::log(buckets[i - 1].ratio);
    const LogProb* no_prev = no_a_.data() + RowIndex(i - 1, 0);
    const LogProb* wa_prev = with_a_.data() + RowIndex(i - 1, 0);

    // Structure-of-arrays row preparation: the previous rows reversed
    // (rev[j] = row[width - 1 - j]) together with their reversed prefix-min
    // pruning companions, so the anti-diagonal read prev[h - t] of the
    // recurrence becomes the forward-contiguous rev[(width - 1 - h) + t]
    // every backend can stream. no_prev[0] is always 0 (log of the empty
    // product), so rev_pm_no_ is finite everywhere; rev_pm_wa_ may be
    // kLogInfeasible (row 0).
    kernels.prepare_row(no_prev, width, rev_no_.data(), rev_pm_no_.data());
    kernels.prepare_row(wa_prev, width, rev_wa_.data(), rev_pm_wa_.data());

    // One fused scan per cell pair computes both DP cells, exactly like
    // the historical kernel shared its head reads; minima, argmins, and
    // monotone pruning semantics live in the backend (simd/dispatch.h).
    for (size_t h = 0; h < width; ++h) {
      FusedScanCell cell;
      kernels.fused_scan(f, log_ratio, rev_no_.data(), rev_wa_.data(),
                         rev_pm_no_.data(), rev_pm_wa_.data(),
                         width - 1 - h, h, &cell);
      no_a_[RowIndex(i, h)] = cell.no;
      no_choice_t_[RowIndex(i, h)] = cell.no_t;
      with_a_[RowIndex(i, h)] = cell.wa;
      wa_choice_t_[RowIndex(i, h)] = cell.wa_t;
      wa_choice_branch_[RowIndex(i, h)] = cell.wa_branch;
    }
  }
}

LogProb Minimize2Forward::LogRMinAt(size_t h) const {
  CKSAFE_CHECK_GT(num_rows_, 0u) << "Recompute before querying";
  CKSAFE_CHECK_LE(h, k_);
  return with_a_[RowIndex(num_rows_ - 1, h)];
}

std::vector<Minimize2Placement> Minimize2Forward::WitnessPlacements() const {
  CKSAFE_CHECK(LogRMin() != kLogInfeasible) << "no feasible atom placement";
  const size_t m = num_buckets();
  std::vector<Minimize2Placement> placements(m);
  size_t h = k_;
  bool in_with_a = true;
  for (size_t i = m; i >= 1; --i) {
    uint16_t t;
    if (in_with_a) {
      t = wa_choice_t_[RowIndex(i, h)];
      if (wa_choice_branch_[RowIndex(i, h)] == 1) {
        placements[i - 1].has_target = true;
        in_with_a = false;
      }
    } else {
      t = no_choice_t_[RowIndex(i, h)];
    }
    placements[i - 1].atoms = t;
    h -= t;
  }
  CKSAFE_CHECK(!in_with_a);
  CKSAFE_CHECK_EQ(h, 0u);
  return placements;
}

const LogProb* Minimize2Forward::NoALogRow(size_t i) const {
  CKSAFE_CHECK_LT(i, num_rows_);
  return no_a_.data() + RowIndex(i, 0);
}

void ComputeNoASuffix(const std::vector<Minimize2Bucket>& buckets, size_t k,
                      std::vector<LogProb>* suffix) {
  CKSAFE_CHECK(suffix != nullptr);
  const size_t m = buckets.size();
  const size_t width = k + 1;
  suffix->assign((m + 1) * width, kLogInfeasible);
  (*suffix)[m * width + 0] = 0.0;  // log 1
  const ScanKernels& kernels = ActiveScanKernels();
  // Row i + 1 reversed, with its reversed prefix-min pruning companion.
  std::vector<LogProb> rev_next(width);
  std::vector<LogProb> rev_pm(width);
  for (size_t i = m; i-- > 0;) {
    const LogProb* next = suffix->data() + (i + 1) * width;
    kernels.prepare_row(next, width, rev_next.data(), rev_pm.data());
    const Minimize1Table& table = *buckets[i].table;
    CKSAFE_CHECK_GE(table.max_k(), k) << "table budget too small for sweep";
    const LogProb* f = table.MinLogRow();
    for (size_t h = 0; h < width; ++h) {
      (*suffix)[i * width + h] = kernels.suffix_scan(
          f, rev_next.data(), rev_pm.data(), width - 1 - h, h);
    }
  }
}

std::vector<LogProb> ComputeNoASuffix(
    const std::vector<Minimize2Bucket>& buckets, size_t k) {
  std::vector<LogProb> suffix;
  ComputeNoASuffix(buckets, k, &suffix);
  return suffix;
}

std::vector<LogProb> PerBucketLogRatioSweep(
    const std::vector<Minimize2Bucket>& buckets, size_t k,
    const Minimize2Forward& prefix, const std::vector<LogProb>& suffix) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  CKSAFE_CHECK_EQ(prefix.num_buckets(), m);
  CKSAFE_CHECK_EQ(prefix.k(), k);
  CKSAFE_CHECK_EQ(suffix.size(), (m + 1) * width);

  const ScanKernels& kernels = ActiveScanKernels();
  std::vector<LogProb> result(m);
  std::vector<LogProb> rev_tail(width);
  std::vector<LogProb> rev_others(width);
  for (size_t j = 0; j < m; ++j) {
    // rev_others[t] = others[k - t] = min log-product when k - t atoms go
    // to buckets other than j: the unpruned min-plus convolution of the
    // forward no-target row with the reversed suffix row, built directly
    // in the reversed layout the composition below consumes.
    const LogProb* head_row = prefix.NoALogRow(j);
    const LogProb* tail = suffix.data() + (j + 1) * width;
    for (size_t s = 0; s < width; ++s) rev_tail[width - 1 - s] = tail[s];
    for (size_t h = 0; h < width; ++h) {
      rev_others[width - 1 - h] =
          kernels.conv_scan(head_row, rev_tail.data(), width - 1 - h, h);
    }
    // Close with the MINIMIZE1 MinLogRow composition: the bucket absorbs
    // t + 1 atoms (its t antecedent atoms plus the target), the rest go
    // elsewhere. The CHECK keeps the raw row read at t + 1 <= k + 1 in
    // bounds, as MinLogProbability's own guard did historically.
    const double log_ratio = std::log(buckets[j].ratio);
    const Minimize1Table& table = *buckets[j].table;
    CKSAFE_CHECK_GT(table.max_k(), k) << "table budget too small for sweep";
    const LogProb log_r_min =
        kernels.compose_scan(table.MinLogRow(), log_ratio,
                             rev_others.data(), k);
    // No feasible placement for this bucket: report certain disclosure
    // (log R = log 0) rather than aborting. Unreachable from the
    // analyzers — others[0] (head 0, tail 0 atoms) is always feasible —
    // but direct kernel callers stay total (regression-tested with
    // budgets beyond every bucket's distinct values).
    result[j] = log_r_min == kLogInfeasible ? kLogZero : log_r_min;
  }
  return result;
}

}  // namespace cksafe
