#include "cksafe/core/minimize2.h"

#include <algorithm>
#include <cmath>

#include "cksafe/util/check.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

namespace {

// Tile width of the inner minimization scans: the unit of both cache
// blocking (a tile touches <= kTile consecutive previous-row entries) and
// pruning granularity (the monotone bound is checked once per tile).
constexpr size_t kScanTile = 64;

}  // namespace

Status Minimize2Forward::ValidateBudget(size_t k) {
  if (k > kMaxAnalysisBudget) {
    return Status::OutOfRange(
        StrFormat("atom budget k=%zu exceeds the supported maximum %zu "
                  "(the O(k^3) MINIMIZE1 memo is intractable beyond it)",
                  k, kMaxAnalysisBudget));
  }
  return Status::OK();
}

Minimize2Forward::Minimize2Forward(size_t k) : k_(k) {
  CKSAFE_CHECK_LE(k, kMaxBudget) << "atom budget too large for choice storage";
}

void Minimize2Forward::Reset(size_t k) {
  CKSAFE_CHECK_LE(k, kMaxBudget) << "atom budget too large for choice storage";
  k_ = k;
  num_rows_ = 0;
}

void Minimize2Forward::Recompute(const std::vector<Minimize2Bucket>& buckets,
                                 size_t first_dirty) {
  const size_t m = buckets.size();
  const size_t width = k_ + 1;
  const size_t rows = m + 1;
  // Row i is derived from row i - 1 and bucket i - 1; a change to bucket j
  // invalidates rows > j, so resume at row first_dirty + 1 — but never
  // beyond what a previous sweep actually computed (row 0, the constant
  // boundary, always counts as computed). Rows kept from a previous sweep
  // are valid exactly when their bucket prefix is unchanged, which is the
  // caller's contract. When the bucket list shrank, first_dirty <= m caps
  // the kept prefix at the surviving buckets and the resize below discards
  // the stale tail rows (audited in the streaming shrink regression test).
  const size_t prev_rows = std::max<size_t>(num_rows_, 1);
  const size_t start = std::min(std::min(first_dirty, m) + 1, prev_rows);

  no_a_.resize(rows * width);
  with_a_.resize(rows * width);
  no_choice_t_.resize(rows * width);
  wa_choice_t_.resize(rows * width);
  wa_choice_branch_.resize(rows * width);
  pm_no_.resize(width);
  pm_wa_.resize(width);
  num_rows_ = rows;

  // Boundary: the empty bucket prefix has the empty product (log 1 = 0)
  // and no way to have placed the target atom.
  no_a_[RowIndex(0, 0)] = 0.0;
  for (size_t h = 1; h < width; ++h) no_a_[RowIndex(0, h)] = kLogInfeasible;
  for (size_t h = 0; h < width; ++h) with_a_[RowIndex(0, h)] = kLogInfeasible;

  for (size_t i = start; i <= m; ++i) {
    const Minimize1Table& table = *buckets[i - 1].table;
    // The with_a recurrence reads budget h + 1 <= k_ + 1 of the table.
    CKSAFE_CHECK_GT(table.max_k(), k_) << "table budget too small for sweep";
    const LogProb* f = table.MinLogRow();  // nonincreasing (clamped)
    const double log_ratio = std::log(buckets[i - 1].ratio);
    const LogProb* no_prev = no_a_.data() + RowIndex(i - 1, 0);
    const LogProb* wa_prev = with_a_.data() + RowIndex(i - 1, 0);

    // Prefix minima of the previous row: pm[s] = min over columns 0..s.
    // no_prev[0] is always 0 (log of the empty product), so pm_no_ is
    // finite everywhere; pm_wa_ may be kLogInfeasible (row 0).
    LogProb run_no = kLogInfeasible;
    LogProb run_wa = kLogInfeasible;
    for (size_t s = 0; s < width; ++s) {
      run_no = std::min(run_no, no_prev[s]);
      run_wa = std::min(run_wa, wa_prev[s]);
      pm_no_[s] = run_no;
      pm_wa_[s] = run_wa;
    }

    for (size_t h = 0; h < width; ++h) {
      // Monotone floors of the per-bucket minima over the remaining scan:
      // f is nonincreasing as stored (clamped in minimize1.cc), so min
      // over t' in [t, h] of f(t') is f[h] and of f(t' + 1) is f[h + 1].
      const LogProb f_floor = f[h];
      const LogProb f_floor_target = f[h + 1] + log_ratio;

      // One fused scan computes both cells, exactly like the historical
      // kernel shared its head reads. Monotone-argmin pruning per branch:
      // every remaining candidate at position t is >= floor + pm[h - t]
      // (f monotone, pm a prefix min, the bound nondecreasing in t, and
      // floating addition monotone — so the bound holds for the
      // *computed* sums too); once a branch's bound cannot beat its
      // current best that branch stops scanning, never changing which
      // candidate wins. The tile is the cache-blocking unit (<= kScanTile
      // consecutive previous-row reads per burst). The bound sums are
      // plain adds: pm_no_ and the floors are never +inf, and a NaN from
      // (-inf) + kLogInfeasible in bound0 compares false, which merely
      // keeps branch 0 scanning — pruning stays conservative-exact.
      LogProb best = kLogInfeasible;
      uint16_t best_t = 0;
      LogProb best_w = kLogInfeasible;
      uint16_t best_w_t = 0;
      uint8_t best_w_branch = 0;
      bool no_done = false;
      bool wa0_done = false;  // branch 0 of with_a (head in wa_prev)
      bool wa1_done = false;  // branch 1 of with_a (target joins bucket)
      for (size_t t0 = 0; t0 <= h && !(no_done && wa0_done && wa1_done);
           t0 += kScanTile) {
        const size_t t_end = std::min(h, t0 + kScanTile - 1);
        for (size_t t = t0; t <= t_end; ++t) {
          const size_t s = h - t;
          const LogProb pm_no = pm_no_[s];
          const LogProb head_no = no_prev[s];
          if (!no_done) {
            if (f_floor + pm_no >= best) {
              no_done = true;
            } else if (head_no != kLogInfeasible) {
              const LogProb candidate = f[t] + head_no;
              if (candidate < best) {
                best = candidate;
                best_t = static_cast<uint16_t>(t);
              }
            }
          }
          // with_a evaluates branch 0 before branch 1 at each t, exactly
          // like the historical kernel, so tie-breaking is unchanged.
          if (!wa0_done) {
            if (f_floor + pm_wa_[s] >= best_w) {
              wa0_done = true;
            } else {
              const LogProb head_with = wa_prev[s];
              if (head_with != kLogInfeasible) {
                const LogProb candidate = f[t] + head_with;
                if (candidate < best_w) {
                  best_w = candidate;
                  best_w_t = static_cast<uint16_t>(t);
                  best_w_branch = 0;
                }
              }
            }
          }
          if (!wa1_done) {
            if (f_floor_target + pm_no >= best_w) {
              wa1_done = true;
            } else if (head_no != kLogInfeasible) {
              const LogProb candidate = f[t + 1] + log_ratio + head_no;
              if (candidate < best_w) {
                best_w = candidate;
                best_w_t = static_cast<uint16_t>(t);
                best_w_branch = 1;
              }
            }
          }
          if (no_done && wa0_done && wa1_done) break;
        }
      }
      no_a_[RowIndex(i, h)] = best;
      no_choice_t_[RowIndex(i, h)] = best_t;
      with_a_[RowIndex(i, h)] = best_w;
      wa_choice_t_[RowIndex(i, h)] = best_w_t;
      wa_choice_branch_[RowIndex(i, h)] = best_w_branch;
    }
  }
}

LogProb Minimize2Forward::LogRMinAt(size_t h) const {
  CKSAFE_CHECK_GT(num_rows_, 0u) << "Recompute before querying";
  CKSAFE_CHECK_LE(h, k_);
  return with_a_[RowIndex(num_rows_ - 1, h)];
}

std::vector<Minimize2Placement> Minimize2Forward::WitnessPlacements() const {
  CKSAFE_CHECK(LogRMin() != kLogInfeasible) << "no feasible atom placement";
  const size_t m = num_buckets();
  std::vector<Minimize2Placement> placements(m);
  size_t h = k_;
  bool in_with_a = true;
  for (size_t i = m; i >= 1; --i) {
    uint16_t t;
    if (in_with_a) {
      t = wa_choice_t_[RowIndex(i, h)];
      if (wa_choice_branch_[RowIndex(i, h)] == 1) {
        placements[i - 1].has_target = true;
        in_with_a = false;
      }
    } else {
      t = no_choice_t_[RowIndex(i, h)];
    }
    placements[i - 1].atoms = t;
    h -= t;
  }
  CKSAFE_CHECK(!in_with_a);
  CKSAFE_CHECK_EQ(h, 0u);
  return placements;
}

const LogProb* Minimize2Forward::NoALogRow(size_t i) const {
  CKSAFE_CHECK_LT(i, num_rows_);
  return no_a_.data() + RowIndex(i, 0);
}

void ComputeNoASuffix(const std::vector<Minimize2Bucket>& buckets, size_t k,
                      std::vector<LogProb>* suffix) {
  CKSAFE_CHECK(suffix != nullptr);
  const size_t m = buckets.size();
  const size_t width = k + 1;
  suffix->assign((m + 1) * width, kLogInfeasible);
  (*suffix)[m * width + 0] = 0.0;  // log 1
  std::vector<LogProb> pm(width);  // prefix minima of row i + 1
  for (size_t i = m; i-- > 0;) {
    const LogProb* next = suffix->data() + (i + 1) * width;
    LogProb run = kLogInfeasible;
    for (size_t s = 0; s < width; ++s) {
      run = std::min(run, next[s]);
      pm[s] = run;
    }
    const Minimize1Table& table = *buckets[i].table;
    CKSAFE_CHECK_GE(table.max_k(), k) << "table budget too small for sweep";
    const LogProb* f = table.MinLogRow();
    for (size_t h = 0; h < width; ++h) {
      const LogProb f_floor = f[h];
      LogProb best = kLogInfeasible;
      bool done = false;
      for (size_t t0 = 0; t0 <= h && !done; t0 += kScanTile) {
        const size_t t_end = std::min(h, t0 + kScanTile - 1);
        for (size_t t = t0; t <= t_end; ++t) {
          // pm may be +inf (no feasible tail yet): a NaN bound from
          // (-inf) + inf compares false and merely keeps scanning.
          if (f_floor + pm[h - t] >= best) {
            done = true;
            break;
          }
          const LogProb tail = next[h - t];
          if (tail == kLogInfeasible) continue;
          best = std::min(best, f[t] + tail);
        }
      }
      (*suffix)[i * width + h] = best;
    }
  }
}

std::vector<LogProb> ComputeNoASuffix(
    const std::vector<Minimize2Bucket>& buckets, size_t k) {
  std::vector<LogProb> suffix;
  ComputeNoASuffix(buckets, k, &suffix);
  return suffix;
}

std::vector<LogProb> PerBucketLogRatioSweep(
    const std::vector<Minimize2Bucket>& buckets, size_t k,
    const Minimize2Forward& prefix, const std::vector<LogProb>& suffix) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  CKSAFE_CHECK_EQ(prefix.num_buckets(), m);
  CKSAFE_CHECK_EQ(prefix.k(), k);
  CKSAFE_CHECK_EQ(suffix.size(), (m + 1) * width);

  std::vector<LogProb> result(m);
  std::vector<LogProb> others(width);
  for (size_t j = 0; j < m; ++j) {
    // others[h] = min log-product when h atoms go to buckets other than j.
    const LogProb* head_row = prefix.NoALogRow(j);
    std::fill(others.begin(), others.end(), kLogInfeasible);
    for (size_t h = 0; h < width; ++h) {
      for (size_t a = 0; a <= h; ++a) {
        const LogProb head = head_row[a];
        const LogProb tail = suffix[(j + 1) * width + (h - a)];
        if (head == kLogInfeasible || tail == kLogInfeasible) continue;
        others[h] = std::min(others[h], head + tail);
      }
    }
    const double log_ratio = std::log(buckets[j].ratio);
    LogProb log_r_min = kLogInfeasible;
    for (size_t t = 0; t <= k; ++t) {
      if (others[k - t] == kLogInfeasible) continue;
      log_r_min = std::min(log_r_min,
                           buckets[j].table->MinLogProbability(t + 1) +
                               log_ratio + others[k - t]);
    }
    // No feasible placement for this bucket: report certain disclosure
    // (log R = log 0) rather than aborting. Unreachable from the
    // analyzers — others[0] (head 0, tail 0 atoms) is always feasible —
    // but direct kernel callers stay total (regression-tested with
    // budgets beyond every bucket's distinct values).
    result[j] = log_r_min == kLogInfeasible ? kLogZero : log_r_min;
  }
  return result;
}

}  // namespace cksafe
