#include "cksafe/core/minimize2.h"

#include <algorithm>
#include <limits>

#include "cksafe/util/check.h"

namespace cksafe {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Minimize2Forward::Minimize2Forward(size_t k) : k_(k) {
  CKSAFE_CHECK_LE(k, 255u) << "atom budget too large for choice storage";
}

void Minimize2Forward::Recompute(const std::vector<Minimize2Bucket>& buckets,
                                 size_t first_dirty) {
  const size_t m = buckets.size();
  const size_t width = k_ + 1;
  const size_t rows = m + 1;
  // Row i is derived from row i - 1 and bucket i - 1; a change to bucket j
  // invalidates rows > j, so resume at row first_dirty + 1 — but never
  // beyond what a previous sweep actually computed (row 0, the constant
  // boundary, always counts as computed). Rows kept from a previous sweep
  // are valid exactly when their bucket prefix is unchanged, which is the
  // caller's contract.
  const size_t prev_rows = std::max<size_t>(num_rows_, 1);
  const size_t start = std::min(std::min(first_dirty, m) + 1, prev_rows);

  no_a_.resize(rows * width);
  with_a_.resize(rows * width);
  no_choice_t_.resize(rows * width);
  wa_choice_t_.resize(rows * width);
  wa_choice_branch_.resize(rows * width);
  num_rows_ = rows;

  // Boundary: the empty bucket prefix has the empty product and no way to
  // have placed the target atom.
  no_a_[RowIndex(0, 0)] = 1.0;
  for (size_t h = 1; h < width; ++h) no_a_[RowIndex(0, h)] = kInf;
  for (size_t h = 0; h < width; ++h) with_a_[RowIndex(0, h)] = kInf;

  for (size_t i = start; i <= m; ++i) {
    const Minimize1Table& table = *buckets[i - 1].table;
    const double ratio = buckets[i - 1].ratio;
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      uint8_t best_t = 0;
      for (size_t t = 0; t <= h; ++t) {
        const double head = no_a_[RowIndex(i - 1, h - t)];
        if (head == kInf) continue;
        const double candidate = table.MinProbability(t) * head;
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<uint8_t>(t);
        }
      }
      no_a_[RowIndex(i, h)] = best;
      no_choice_t_[RowIndex(i, h)] = best_t;

      // with_a: either the target atom was placed in an earlier bucket
      // (branch 0), or it joins bucket i - 1 with t antecedents, minimizing
      // over t + 1 atoms and contributing the 1/Pr(A|B) ratio (branch 1).
      double best_w = kInf;
      uint8_t best_w_t = 0;
      uint8_t best_w_branch = 0;
      for (size_t t = 0; t <= h; ++t) {
        const double head_with = with_a_[RowIndex(i - 1, h - t)];
        if (head_with != kInf) {
          const double candidate = table.MinProbability(t) * head_with;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint8_t>(t);
            best_w_branch = 0;
          }
        }
        const double head_no = no_a_[RowIndex(i - 1, h - t)];
        if (head_no != kInf) {
          const double candidate =
              table.MinProbability(t + 1) * ratio * head_no;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint8_t>(t);
            best_w_branch = 1;
          }
        }
      }
      with_a_[RowIndex(i, h)] = best_w;
      wa_choice_t_[RowIndex(i, h)] = best_w_t;
      wa_choice_branch_[RowIndex(i, h)] = best_w_branch;
    }
  }
}

double Minimize2Forward::RMin() const { return RMinAt(k_); }

double Minimize2Forward::RMinAt(size_t h) const {
  CKSAFE_CHECK_GT(num_rows_, 0u) << "Recompute before querying";
  CKSAFE_CHECK_LE(h, k_);
  return with_a_[RowIndex(num_rows_ - 1, h)];
}

std::vector<Minimize2Placement> Minimize2Forward::WitnessPlacements() const {
  CKSAFE_CHECK(RMin() != kInf) << "no feasible atom placement";
  const size_t m = num_buckets();
  std::vector<Minimize2Placement> placements(m);
  size_t h = k_;
  bool in_with_a = true;
  for (size_t i = m; i >= 1; --i) {
    uint8_t t;
    if (in_with_a) {
      t = wa_choice_t_[RowIndex(i, h)];
      if (wa_choice_branch_[RowIndex(i, h)] == 1) {
        placements[i - 1].has_target = true;
        in_with_a = false;
      }
    } else {
      t = no_choice_t_[RowIndex(i, h)];
    }
    placements[i - 1].atoms = t;
    h -= t;
  }
  CKSAFE_CHECK(!in_with_a);
  CKSAFE_CHECK_EQ(h, 0u);
  return placements;
}

const double* Minimize2Forward::NoARow(size_t i) const {
  CKSAFE_CHECK_LT(i, num_rows_);
  return no_a_.data() + RowIndex(i, 0);
}

std::vector<double> ComputeNoASuffix(const std::vector<Minimize2Bucket>& buckets,
                                     size_t k) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  std::vector<double> suffix((m + 1) * width, kInf);
  suffix[m * width + 0] = 1.0;
  for (size_t i = m; i-- > 0;) {
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      for (size_t t = 0; t <= h; ++t) {
        const double tail = suffix[(i + 1) * width + (h - t)];
        if (tail == kInf) continue;
        best = std::min(best, buckets[i].table->MinProbability(t) * tail);
      }
      suffix[i * width + h] = best;
    }
  }
  return suffix;
}

std::vector<double> PerBucketDisclosureSweep(
    const std::vector<Minimize2Bucket>& buckets, size_t k,
    const Minimize2Forward& prefix, const std::vector<double>& suffix) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  CKSAFE_CHECK_EQ(prefix.num_buckets(), m);
  CKSAFE_CHECK_EQ(prefix.k(), k);
  CKSAFE_CHECK_EQ(suffix.size(), (m + 1) * width);

  std::vector<double> result(m);
  std::vector<double> others(width);
  for (size_t j = 0; j < m; ++j) {
    // others[h] = min product when h atoms go to buckets other than j.
    const double* head_row = prefix.NoARow(j);
    std::fill(others.begin(), others.end(),
              std::numeric_limits<double>::infinity());
    for (size_t h = 0; h < width; ++h) {
      for (size_t a = 0; a <= h; ++a) {
        const double head = head_row[a];
        const double tail = suffix[(j + 1) * width + (h - a)];
        if (head == std::numeric_limits<double>::infinity() ||
            tail == std::numeric_limits<double>::infinity()) {
          continue;
        }
        others[h] = std::min(others[h], head * tail);
      }
    }
    double r_min = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t <= k; ++t) {
      if (others[k - t] == std::numeric_limits<double>::infinity()) continue;
      r_min = std::min(r_min, buckets[j].table->MinProbability(t + 1) *
                                  buckets[j].ratio * others[k - t]);
    }
    CKSAFE_CHECK(r_min != std::numeric_limits<double>::infinity());
    result[j] = 1.0 / (1.0 + r_min);
  }
  return result;
}

}  // namespace cksafe
