#include "cksafe/knowledge/parser.h"

#include "cksafe/util/string_util.h"

namespace cksafe {

KnowledgeParser::KnowledgeParser(const Table& table, size_t sensitive_column)
    : table_(table), sensitive_column_(sensitive_column) {
  CKSAFE_CHECK_LT(sensitive_column, table.num_columns());
}

StatusOr<Atom> KnowledgeParser::ParseAtom(std::string_view text) const {
  std::string_view rest = Trim(text);
  if (!StartsWith(rest, "t[")) {
    return Status::InvalidArgument("atom must start with 't[': " +
                                   std::string(text));
  }
  rest.remove_prefix(2);
  const size_t close = rest.find(']');
  if (close == std::string_view::npos) {
    return Status::InvalidArgument("missing ']' in atom: " + std::string(text));
  }
  const std::string_view row_label = Trim(rest.substr(0, close));
  rest.remove_prefix(close + 1);
  rest = Trim(rest);
  if (rest.empty() || rest[0] != '.') {
    return Status::InvalidArgument("expected '.<attribute>' in atom: " +
                                   std::string(text));
  }
  rest.remove_prefix(1);
  const size_t eq = rest.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("missing '=' in atom: " + std::string(text));
  }
  const std::string_view attr_name = Trim(rest.substr(0, eq));
  const std::string_view value_label = Trim(rest.substr(eq + 1));

  const AttributeDef& sensitive = table_.schema().attribute(sensitive_column_);
  if (attr_name != sensitive.name()) {
    return Status::InvalidArgument(
        "atoms may only mention the sensitive attribute '" + sensitive.name() +
        "', got '" + std::string(attr_name) + "'");
  }
  Atom atom;
  CKSAFE_ASSIGN_OR_RETURN(atom.person, table_.FindRowByLabel(row_label));
  CKSAFE_ASSIGN_OR_RETURN(atom.value, sensitive.CodeOf(value_label));
  return atom;
}

StatusOr<BasicImplication> KnowledgeParser::ParseImplication(
    std::string_view line) const {
  std::string_view text = Trim(line);
  if (StartsWith(text, "!")) {
    text.remove_prefix(1);
    CKSAFE_ASSIGN_OR_RETURN(Atom atom, ParseAtom(text));
    // Encode ¬atom as atom -> (same person, any other value).
    const AttributeDef& sensitive =
        table_.schema().attribute(sensitive_column_);
    const int32_t other =
        (atom.value + 1 <= sensitive.max_value()) ? atom.value + 1
                                                  : sensitive.min_value();
    if (other == atom.value) {
      return Status::InvalidArgument(
          "cannot negate an atom over a single-value domain");
    }
    return BasicImplication::Negation(atom, other);
  }

  const size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("missing '->' in implication: " +
                                   std::string(line));
  }
  BasicImplication imp;
  for (const std::string& part :
       Split(std::string(text.substr(0, arrow)), '&')) {
    CKSAFE_ASSIGN_OR_RETURN(Atom atom, ParseAtom(part));
    imp.antecedents.push_back(atom);
  }
  for (const std::string& part :
       Split(std::string(text.substr(arrow + 2)), '|')) {
    CKSAFE_ASSIGN_OR_RETURN(Atom atom, ParseAtom(part));
    imp.consequents.push_back(atom);
  }
  CKSAFE_RETURN_IF_ERROR(imp.Validate());
  return imp;
}

StatusOr<KnowledgeFormula> KnowledgeParser::ParseFormula(
    std::string_view text) const {
  KnowledgeFormula formula;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    CKSAFE_ASSIGN_OR_RETURN(BasicImplication imp, ParseImplication(line));
    formula.Add(std::move(imp));
  }
  return formula;
}

}  // namespace cksafe
