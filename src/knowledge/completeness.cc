#include "cksafe/knowledge/completeness.h"

#include "cksafe/util/string_util.h"

namespace cksafe {

StatusOr<KnowledgeFormula> ExpressPredicateAsImplications(
    size_t num_persons, size_t domain_size, const WorldPredicate& predicate,
    uint64_t max_worlds) {
  if (num_persons == 0) {
    return Status::InvalidArgument("need at least one person");
  }
  if (domain_size < 2) {
    return Status::InvalidArgument(
        "domain must have >= 2 values (the consequent needs a value "
        "different from the antecedent's)");
  }
  // total = domain_size ^ num_persons with overflow / budget guard.
  uint64_t total = 1;
  for (size_t i = 0; i < num_persons; ++i) {
    if (total > max_worlds / domain_size) {
      return Status::ResourceExhausted(
          StrFormat("world count %zu^%zu exceeds budget %llu", domain_size,
                    num_persons, static_cast<unsigned long long>(max_worlds)));
    }
    total *= domain_size;
  }

  KnowledgeFormula formula;
  std::vector<int32_t> world(num_persons, 0);
  for (uint64_t index = 0; index < total; ++index) {
    uint64_t rest = index;
    for (size_t p = 0; p < num_persons; ++p) {
      world[p] = static_cast<int32_t>(rest % domain_size);
      rest /= domain_size;
    }
    if (predicate(world)) continue;
    BasicImplication imp;
    for (size_t p = 0; p < num_persons; ++p) {
      imp.antecedents.push_back(Atom{static_cast<PersonId>(p), world[p]});
    }
    const int32_t forbidden = world[0];
    const int32_t other = (forbidden + 1) % static_cast<int32_t>(domain_size);
    imp.consequents.push_back(Atom{0, other});
    formula.Add(std::move(imp));
  }
  return formula;
}

}  // namespace cksafe
