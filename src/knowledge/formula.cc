#include "cksafe/knowledge/formula.h"

#include "cksafe/util/string_util.h"

namespace cksafe {

bool Atom::Holds(const std::vector<int32_t>& world) const {
  CKSAFE_CHECK_LT(person, world.size());
  return world[person] == value;
}

bool SimpleImplication::Holds(const std::vector<int32_t>& world) const {
  return !antecedent.Holds(world) || consequent.Holds(world);
}

Status BasicImplication::Validate() const {
  if (antecedents.empty()) {
    return Status::InvalidArgument("basic implication needs >= 1 antecedent");
  }
  if (consequents.empty()) {
    return Status::InvalidArgument("basic implication needs >= 1 consequent");
  }
  return Status::OK();
}

bool BasicImplication::Holds(const std::vector<int32_t>& world) const {
  for (const Atom& a : antecedents) {
    if (!a.Holds(world)) return true;  // antecedent false => implication true
  }
  for (const Atom& b : consequents) {
    if (b.Holds(world)) return true;
  }
  return false;
}

BasicImplication BasicImplication::FromSimple(const SimpleImplication& simple) {
  BasicImplication imp;
  imp.antecedents = {simple.antecedent};
  imp.consequents = {simple.consequent};
  return imp;
}

BasicImplication BasicImplication::Negation(const Atom& atom,
                                            int32_t other_value) {
  CKSAFE_CHECK_NE(atom.value, other_value)
      << "negation encoding needs a different value";
  BasicImplication imp;
  imp.antecedents = {atom};
  imp.consequents = {Atom{atom.person, other_value}};
  return imp;
}

bool BasicImplication::IsNegationShape() const {
  return antecedents.size() == 1 && consequents.size() == 1 &&
         antecedents[0].person == consequents[0].person &&
         antecedents[0].value != consequents[0].value;
}

void KnowledgeFormula::Add(BasicImplication implication) {
  implications_.push_back(std::move(implication));
}

void KnowledgeFormula::AddSimple(const SimpleImplication& simple) {
  implications_.push_back(BasicImplication::FromSimple(simple));
}

void KnowledgeFormula::AddNegation(const Atom& atom, int32_t other_value) {
  implications_.push_back(BasicImplication::Negation(atom, other_value));
}

bool KnowledgeFormula::Holds(const std::vector<int32_t>& world) const {
  for (const BasicImplication& imp : implications_) {
    if (!imp.Holds(world)) return false;
  }
  return true;
}

Status KnowledgeFormula::Validate() const {
  for (const BasicImplication& imp : implications_) {
    CKSAFE_RETURN_IF_ERROR(imp.Validate());
  }
  return Status::OK();
}

KnowledgePrinter::KnowledgePrinter(const Table& table, size_t sensitive_column)
    : table_(table), sensitive_column_(sensitive_column) {
  CKSAFE_CHECK_LT(sensitive_column, table.num_columns());
}

std::string KnowledgePrinter::AtomToString(const Atom& atom) const {
  const AttributeDef& attr = table_.schema().attribute(sensitive_column_);
  return StrFormat("t[%s].%s=%s", table_.RowLabel(atom.person).c_str(),
                   attr.name().c_str(), attr.LabelOf(atom.value).c_str());
}

std::string KnowledgePrinter::ImplicationToString(
    const BasicImplication& imp) const {
  std::vector<std::string> lhs;
  for (const Atom& a : imp.antecedents) lhs.push_back(AtomToString(a));
  std::vector<std::string> rhs;
  for (const Atom& b : imp.consequents) rhs.push_back(AtomToString(b));
  return Join(lhs, " & ") + " -> " + Join(rhs, " | ");
}

std::string KnowledgePrinter::FormulaToString(
    const KnowledgeFormula& formula) const {
  std::vector<std::string> parts;
  for (const BasicImplication& imp : formula.implications()) {
    parts.push_back("(" + ImplicationToString(imp) + ")");
  }
  return Join(parts, " AND ");
}

}  // namespace cksafe
