#include "cksafe/stream/incremental_analyzer.h"

#include <algorithm>
#include <limits>

#include "cksafe/util/check.h"

namespace cksafe {

IncrementalAnalyzer::IncrementalAnalyzer(size_t sensitive_domain_size,
                                         DisclosureCache* cache)
    : sensitive_domain_size_(sensitive_domain_size),
      cache_(cache != nullptr ? cache : &local_cache_) {
  CKSAFE_CHECK_GT(sensitive_domain_size, 0u);
}

size_t IncrementalAnalyzer::AddBucket(const std::vector<int32_t>& values) {
  CKSAFE_CHECK(!values.empty()) << "bucket must be non-empty";
  BucketState state;
  state.histogram.assign(sensitive_domain_size_, 0);
  for (int32_t code : values) {
    CKSAFE_CHECK_GE(code, 0);
    CKSAFE_CHECK_LT(static_cast<size_t>(code), sensitive_domain_size_);
    state.members.push_back(next_person_++);
    ++state.histogram[code];
    state.stats.AddValue(code);
  }
  num_tuples_ += values.size();
  const size_t index = buckets_.size();
  buckets_.push_back(std::move(state));
  Invalidate(index);
  return index;
}

void IncrementalAnalyzer::AddTuples(size_t bucket,
                                    const std::vector<int32_t>& values) {
  CKSAFE_CHECK_LT(bucket, buckets_.size());
  if (values.empty()) return;
  BucketState& state = buckets_[bucket];
  for (int32_t code : values) {
    CKSAFE_CHECK_GE(code, 0);
    CKSAFE_CHECK_LT(static_cast<size_t>(code), sensitive_domain_size_);
    state.members.push_back(next_person_++);
    ++state.histogram[code];
    state.stats.AddValue(code);
  }
  num_tuples_ += values.size();
  state.table = nullptr;  // histogram changed: re-pin at next query
  Invalidate(bucket);
}

void IncrementalAnalyzer::RemoveTuples(size_t bucket,
                                       const std::vector<int32_t>& values) {
  CKSAFE_CHECK_LT(bucket, buckets_.size());
  if (values.empty()) return;
  BucketState& state = buckets_[bucket];
  CKSAFE_CHECK_LT(values.size(), state.members.size())
      << "RemoveTuples would empty the bucket; use RemoveBucket";
  for (int32_t code : values) {
    CKSAFE_CHECK_GE(code, 0);
    CKSAFE_CHECK_LT(static_cast<size_t>(code), sensitive_domain_size_);
    CKSAFE_CHECK_GT(state.histogram[code], 0u)
        << "RemoveTuples: value " << code << " absent from bucket " << bucket;
    --state.histogram[code];
    state.stats.RemoveValue(code);
    state.members.pop_back();
  }
  num_tuples_ -= values.size();
  state.table = nullptr;  // histogram changed: re-pin at next query
  Invalidate(bucket);
}

void IncrementalAnalyzer::RemoveBucket(size_t bucket) {
  CKSAFE_CHECK_LT(bucket, buckets_.size());
  num_tuples_ -= buckets_[bucket].members.size();
  buckets_.erase(buckets_.begin() + bucket);
  Invalidate(bucket);
}

void IncrementalAnalyzer::Invalidate(size_t bucket) {
  ++stats_.deltas;
  for (auto& [k, state] : k_states_) {
    state.first_dirty = std::min(state.first_dirty, bucket);
    state.suffix_valid = false;
  }
}

const BucketStats& IncrementalAnalyzer::bucket_stats(size_t bucket) const {
  CKSAFE_CHECK_LT(bucket, buckets_.size());
  return buckets_[bucket].stats;
}

const std::vector<PersonId>& IncrementalAnalyzer::bucket_members(
    size_t bucket) const {
  CKSAFE_CHECK_LT(bucket, buckets_.size());
  return buckets_[bucket].members;
}

Bucketization IncrementalAnalyzer::CurrentBucketization() const {
  Bucketization b(sensitive_domain_size_);
  for (const BucketState& state : buckets_) {
    Bucket bucket;
    bucket.members = state.members;
    bucket.histogram = state.histogram;
    const Status status = b.AddBucket(std::move(bucket));
    CKSAFE_CHECK(status.ok()) << status.ToString();
  }
  return b;
}

std::vector<Minimize2Bucket> IncrementalAnalyzer::Inputs(size_t k) {
  const size_t budget = k + 1;  // target atom joins the antecedents
  std::vector<Minimize2Bucket> inputs(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    BucketState& state = buckets_[i];
    if (state.table == nullptr || state.table->max_k() < budget) {
      state.table = cache_->GetOrCompute(state.stats, budget);
      ++stats_.tables_refetched;
    }
    inputs[i].table = state.table;
    inputs[i].ratio = static_cast<double>(state.stats.n) /
                      static_cast<double>(state.stats.counts[0]);
  }
  return inputs;
}

IncrementalAnalyzer::KState& IncrementalAnalyzer::UpToDate(
    size_t k, const std::vector<Minimize2Bucket>& inputs) {
  auto it = k_states_.find(k);
  if (it == k_states_.end()) {
    it = k_states_.emplace(k, KState(k)).first;
    it->second.first_dirty = 0;
  }
  KState& state = it->second;
  const size_t m = inputs.size();
  if (state.first_dirty < m || state.dp.num_buckets() != m) {
    const size_t kept =
        std::min({state.first_dirty, state.dp.num_buckets(), m});
    stats_.rows_reused += kept;
    stats_.rows_recomputed += m - kept;
    state.dp.Recompute(inputs, state.first_dirty);
    state.first_dirty = m;
  } else {
    stats_.rows_reused += m;
  }
  return state;
}

WorstCaseDisclosure IncrementalAnalyzer::MaxDisclosureImplications(size_t k) {
  CKSAFE_CHECK_GT(buckets_.size(), 0u)
      << "cannot analyze an empty bucketization";
  const std::vector<Minimize2Bucket> inputs = Inputs(k);
  KState& state = UpToDate(k, inputs);
  const LogProb log_r_min = state.dp.LogRMin();
  CKSAFE_CHECK(log_r_min != kLogInfeasible) << "no feasible atom placement";

  std::vector<const std::vector<PersonId>*> members(buckets_.size());
  std::vector<const BucketStats*> stats(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    members[i] = &buckets_[i].members;
    stats[i] = &buckets_[i].stats;
  }
  return AssembleImplicationWitness(log_r_min, state.dp.WitnessPlacements(),
                                    members, stats, inputs);
}

WorstCaseDisclosure IncrementalAnalyzer::MaxDisclosureNegations(size_t k) {
  CKSAFE_CHECK_GT(buckets_.size(), 0u)
      << "cannot analyze an empty bucketization";
  std::vector<const BucketStats*> stats(buckets_.size());
  std::vector<const std::vector<PersonId>*> members(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    stats[i] = &buckets_[i].stats;
    members[i] = &buckets_[i].members;
  }
  return MaxNegationsOverBuckets(stats, members, k);
}

DisclosureProfile IncrementalAnalyzer::Profile(size_t max_k) {
  CKSAFE_CHECK_GT(buckets_.size(), 0u)
      << "cannot analyze an empty bucketization";
  const std::vector<Minimize2Bucket> inputs = Inputs(max_k);
  KState& state = UpToDate(max_k, inputs);

  std::vector<const BucketStats*> stats(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) stats[i] = &buckets_[i].stats;

  DisclosureProfile profile;
  profile.implication_log_r = ImplicationLogRatioCurveFromSweep(state.dp);
  profile.implication = ImplicationCurveFromSweep(state.dp);
  profile.negation = NegationCurveOverBuckets(stats, max_k);
  return profile;
}

bool IncrementalAnalyzer::IsCkSafe(double c, size_t k) {
  // Same log-space rule as DisclosureAnalyzer::IsCkSafe, off the
  // persistent row-granular sweep — no witness assembly.
  CKSAFE_CHECK_GT(buckets_.size(), 0u)
      << "cannot analyze an empty bucketization";
  const std::vector<Minimize2Bucket> inputs = Inputs(k);
  KState& state = UpToDate(k, inputs);
  const LogProb log_r_min = state.dp.LogRMin();
  CKSAFE_CHECK(log_r_min != kLogInfeasible) << "no feasible atom placement";
  return IsSafeLogRatio(log_r_min, c);
}

std::vector<double> IncrementalAnalyzer::PerBucketDisclosure(size_t k) {
  CKSAFE_CHECK_GT(buckets_.size(), 0u)
      << "cannot analyze an empty bucketization";
  const std::vector<Minimize2Bucket> inputs = Inputs(k);
  KState& state = UpToDate(k, inputs);
  if (!state.suffix_valid) {
    ComputeNoASuffix(inputs, k, &state.suffix);
    state.suffix_valid = true;
  }
  std::vector<double> result =
      PerBucketLogRatioSweep(inputs, k, state.dp, state.suffix);
  for (double& value : result) value = DisclosureFromLogRatio(value);
  return result;
}

}  // namespace cksafe
