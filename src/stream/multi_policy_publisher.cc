#include "cksafe/stream/multi_policy_publisher.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

namespace cksafe {

MultiPolicyPublisher::MultiPolicyPublisher(Table initial,
                                           std::vector<QuasiIdentifier> qis,
                                           size_t sensitive_column,
                                           PublisherOptions base)
    : table_(std::move(initial)),
      qis_(std::move(qis)),
      sensitive_column_(sensitive_column),
      base_(base) {
  CKSAFE_CHECK_LT(sensitive_column_, table_.num_columns());
  CKSAFE_CHECK(!qis_.empty());
}

size_t MultiPolicyPublisher::AddTenant(std::string tenant, double c,
                                       size_t k) {
  CKSAFE_CHECK_GT(c, 0.0);
  tenants_.push_back(std::move(tenant));
  policies_.push_back(CkPolicy{c, k});
  return policies_.size() - 1;
}

Status MultiPolicyPublisher::AddBatch(
    const std::vector<std::vector<int32_t>>& rows) {
  for (const std::vector<int32_t>& row : rows) {
    CKSAFE_RETURN_IF_ERROR(table_.AppendRow(row));
  }
  return Status::OK();
}

StatusOr<std::vector<TenantRelease>> MultiPolicyPublisher::PublishAll() {
  if (policies_.empty()) {
    return Status::InvalidArgument("no tenants registered; AddTenant first");
  }
  if (table_.num_rows() == 0) {
    return Status::InvalidArgument("cannot publish an empty table");
  }
  if (!base_.use_pruning) {
    // The multi-policy sweep IS the pruned Incognito algorithm; there is
    // no exhaustive ablation path here, and silently running pruned would
    // break the bit-identity-with-dedicated-Publisher contract for this
    // setting (the ablation path orders frontiers differently).
    return Status::InvalidArgument(
        "MultiPolicyPublisher requires use_pruning; run per-tenant "
        "Publishers for the exhaustive ablation");
  }
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis_);
  size_t max_k = 0;
  for (const CkPolicy& policy : policies_) max_k = std::max(max_k, policy.k);
  CKSAFE_RETURN_IF_ERROR(Minimize2Forward::ValidateBudget(max_k));

  // One profile per node answers every tenant; the shared cache makes
  // MINIMIZE1 tables recur across nodes and publishes exactly as in the
  // single-tenant PublishSession.
  Status first_error = Status::OK();
  std::mutex error_mu;
  const auto record_error = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok()) first_error = status;
  };
  const NodeProfiler profile_of =
      [&](const LatticeNode& node) -> std::optional<DisclosureProfile> {
    auto bucketization = BucketizeAtNode(table_, qis_, node, sensitive_column_);
    if (!bucketization.ok()) {
      record_error(bucketization.status());
      return std::nullopt;
    }
    // Classification reads only the implication curves (linear + log), so
    // skip the negation scan on this hot path (NodeProfiler permits an
    // empty negation curve), and reuse one DP arena per worker thread.
    thread_local Minimize2Workspace workspace;
    DisclosureAnalyzer analyzer(*bucketization, &cache_);
    return analyzer.Profile(max_k, &workspace, /*with_negation=*/false);
  };

  // Whole-level batching: the sweep hands each level's surviving nodes
  // over at once, and the three phases below turn the per-bucket shard
  // traffic of the per-node path into one shared-cache resolution per
  // distinct histogram for the WHOLE level (and, since the view persists
  // across levels, per publish). Each phase is answer-neutral — phase 3
  // runs the exact sweeps profile_of would — so the batch path inherits
  // the bit-identity contract of FindMinimalSafeNodesMultiPolicy.
  Minimize1BatchView batch_tables(&cache_);
  struct NodeEval {
    std::optional<Bucketization> bucketization;
    std::optional<DisclosureAnalyzer> analyzer;
  };
  const NodeBatchProfiler profile_batch =
      [&](const std::vector<LatticeNode>& batch, ThreadPool* pool)
      -> std::vector<std::optional<DisclosureProfile>> {
    // Phase 1 (parallel): bucketize and compute bucket statistics — no
    // table traffic yet. `evals` is pre-sized, so the analyzers' internal
    // references to their sibling bucketizations stay stable.
    std::vector<NodeEval> evals(batch.size());
    ParallelFor(pool, batch.size(), [&](size_t i) {
      auto bucketization =
          BucketizeAtNode(table_, qis_, batch[i], sensitive_column_);
      if (!bucketization.ok()) {
        record_error(bucketization.status());
        return;
      }
      evals[i].bucketization = *std::move(bucketization);
      evals[i].analyzer.emplace(*evals[i].bucketization, &cache_,
                                &batch_tables);
    });
    // Phase 2 (sequential): resolve every histogram the level needs, once
    // each, at the one budget every sweep below uses (max_k + 1: the
    // target atom joins the k antecedents).
    batch_tables.Thaw();
    for (const NodeEval& eval : evals) {
      if (!eval.analyzer.has_value()) continue;
      for (const BucketStats& stats : eval.analyzer->bucket_stats()) {
        batch_tables.Prepare(stats.counts, max_k + 1);
      }
    }
    batch_tables.Freeze();
    // Phase 3 (parallel): the candidate sweeps, served lock-free from the
    // frozen view.
    std::vector<std::optional<DisclosureProfile>> profiles(batch.size());
    ParallelFor(pool, batch.size(), [&](size_t i) {
      if (!evals[i].analyzer.has_value()) return;
      thread_local Minimize2Workspace workspace;
      profiles[i] =
          evals[i].analyzer->Profile(max_k, &workspace,
                                     /*with_negation=*/false);
    });
    return profiles;
  };

  MultiPolicySearchOptions search_options = search_options_;
  if (search_options.batch_profiler == nullptr) {
    search_options.batch_profiler = profile_batch;
  }
  MultiPolicySearchResult search = FindMinimalSafeNodesMultiPolicy(
      lattice, profile_of, policies_, search_options);
  CKSAFE_RETURN_IF_ERROR(first_error);
  last_search_stats_ = search.stats;
  last_table_traffic_ = BatchTableTraffic{
      batch_tables.local_hits() + batch_tables.shared_lookups(),
      batch_tables.shared_lookups()};

  std::vector<TenantRelease> releases;
  releases.reserve(policies_.size());
  for (size_t i = 0; i < policies_.size(); ++i) {
    PublisherOptions options = base_;
    options.c = policies_[i].c;
    options.k = policies_[i].k;
    releases.push_back(TenantRelease{
        tenants_[i], policies_[i],
        BuildReleaseFromSearch(table_, qis_, sensitive_column_, options,
                               &cache_, std::move(search.per_policy[i]))});
  }
  return releases;
}

}  // namespace cksafe
