#include "cksafe/stream/multi_policy_publisher.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

namespace cksafe {

MultiPolicyPublisher::MultiPolicyPublisher(Table initial,
                                           std::vector<QuasiIdentifier> qis,
                                           size_t sensitive_column,
                                           PublisherOptions base)
    : table_(std::move(initial)),
      qis_(std::move(qis)),
      sensitive_column_(sensitive_column),
      base_(base) {
  CKSAFE_CHECK_LT(sensitive_column_, table_.num_columns());
  CKSAFE_CHECK(!qis_.empty());
}

size_t MultiPolicyPublisher::AddTenant(std::string tenant, double c,
                                       size_t k) {
  CKSAFE_CHECK_GT(c, 0.0);
  tenants_.push_back(std::move(tenant));
  policies_.push_back(CkPolicy{c, k});
  return policies_.size() - 1;
}

Status MultiPolicyPublisher::AddBatch(
    const std::vector<std::vector<int32_t>>& rows) {
  for (const std::vector<int32_t>& row : rows) {
    CKSAFE_RETURN_IF_ERROR(table_.AppendRow(row));
  }
  return Status::OK();
}

StatusOr<std::vector<TenantRelease>> MultiPolicyPublisher::PublishAll() {
  if (policies_.empty()) {
    return Status::InvalidArgument("no tenants registered; AddTenant first");
  }
  if (table_.num_rows() == 0) {
    return Status::InvalidArgument("cannot publish an empty table");
  }
  if (!base_.use_pruning) {
    // The multi-policy sweep IS the pruned Incognito algorithm; there is
    // no exhaustive ablation path here, and silently running pruned would
    // break the bit-identity-with-dedicated-Publisher contract for this
    // setting (the ablation path orders frontiers differently).
    return Status::InvalidArgument(
        "MultiPolicyPublisher requires use_pruning; run per-tenant "
        "Publishers for the exhaustive ablation");
  }
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis_);
  size_t max_k = 0;
  for (const CkPolicy& policy : policies_) max_k = std::max(max_k, policy.k);
  CKSAFE_RETURN_IF_ERROR(Minimize2Forward::ValidateBudget(max_k));

  // One profile per node answers every tenant; the shared cache makes
  // MINIMIZE1 tables recur across nodes and publishes exactly as in the
  // single-tenant PublishSession.
  Status first_error = Status::OK();
  std::mutex error_mu;
  const NodeProfiler profile_of =
      [&](const LatticeNode& node) -> std::optional<DisclosureProfile> {
    auto bucketization = BucketizeAtNode(table_, qis_, node, sensitive_column_);
    if (!bucketization.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = bucketization.status();
      return std::nullopt;
    }
    // Classification reads only the implication curves (linear + log), so
    // skip the negation scan on this hot path (NodeProfiler permits an
    // empty negation curve), and reuse one DP arena per worker thread.
    thread_local Minimize2Workspace workspace;
    DisclosureAnalyzer analyzer(*bucketization, &cache_);
    return analyzer.Profile(max_k, &workspace, /*with_negation=*/false);
  };

  MultiPolicySearchResult search = FindMinimalSafeNodesMultiPolicy(
      lattice, profile_of, policies_, search_options_);
  CKSAFE_RETURN_IF_ERROR(first_error);
  last_search_stats_ = search.stats;

  std::vector<TenantRelease> releases;
  releases.reserve(policies_.size());
  for (size_t i = 0; i < policies_.size(); ++i) {
    PublisherOptions options = base_;
    options.c = policies_[i].c;
    options.k = policies_[i].k;
    releases.push_back(TenantRelease{
        tenants_[i], policies_[i],
        BuildReleaseFromSearch(table_, qis_, sensitive_column_, options,
                               &cache_, std::move(search.per_policy[i]))});
  }
  return releases;
}

}  // namespace cksafe
