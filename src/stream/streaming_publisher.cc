#include "cksafe/stream/streaming_publisher.h"

#include <utility>

namespace cksafe {

StreamingPublisher::StreamingPublisher(Table initial,
                                       std::vector<QuasiIdentifier> qis,
                                       size_t sensitive_column,
                                       PublisherOptions options)
    : table_(std::move(initial)),
      qis_(std::move(qis)),
      sensitive_column_(sensitive_column),
      publisher_(options) {}

Status StreamingPublisher::AddBatch(
    const std::vector<std::vector<int32_t>>& rows) {
  for (const std::vector<int32_t>& row : rows) {
    CKSAFE_RETURN_IF_ERROR(table_.AppendRow(row));
  }
  return Status::OK();
}

StatusOr<StreamingRelease> StreamingPublisher::PublishNext() {
  const size_t sequence = static_cast<size_t>(session_.releases);
  CKSAFE_ASSIGN_OR_RETURN(
      PublishedRelease release,
      publisher_.Publish(table_, qis_, sensitive_column_, &session_));
  return StreamingRelease{sequence, table_.num_rows(), std::move(release)};
}

}  // namespace cksafe
