#include "cksafe/adult/adult.h"

#include <array>
#include <cmath>

#include "cksafe/util/csv.h"
#include "cksafe/util/random.h"
#include "cksafe/util/string_util.h"

namespace cksafe {

namespace {

const char* const kMaritalLabels[] = {
    "Married-civ-spouse", "Divorced",      "Never-married",
    "Separated",          "Widowed",       "Married-spouse-absent",
    "Married-AF-spouse",
};

const char* const kRaceLabels[] = {
    "White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other",
};

const char* const kGenderLabels[] = {"Male", "Female"};

const char* const kOccupationLabels[] = {
    "Prof-specialty",  "Craft-repair",      "Exec-managerial",
    "Adm-clerical",    "Sales",             "Other-service",
    "Machine-op-inspct", "Transport-moving", "Handlers-cleaners",
    "Farming-fishing", "Tech-support",      "Protective-serv",
    "Priv-house-serv", "Armed-Forces",
};

constexpr int32_t kMinAge = 17;
constexpr int32_t kMaxAge = 90;

std::vector<std::string> Labels(const char* const* begin, size_t n) {
  return std::vector<std::string>(begin, begin + n);
}

}  // namespace

Schema AdultSchema() {
  return Schema({
      AttributeDef::Numeric("Age", kMinAge, kMaxAge),
      AttributeDef::Categorical("MaritalStatus", Labels(kMaritalLabels, 7)),
      AttributeDef::Categorical("Race", Labels(kRaceLabels, 5)),
      AttributeDef::Categorical("Gender", Labels(kGenderLabels, 2)),
      AttributeDef::Categorical("Occupation", Labels(kOccupationLabels, 14)),
  });
}

StatusOr<std::vector<QuasiIdentifier>> AdultQuasiIdentifiers() {
  const Schema schema = AdultSchema();

  // Age: raw, 5, 10, 20, 40-year intervals, suppressed — 6 levels.
  CKSAFE_ASSIGN_OR_RETURN(
      IntervalHierarchy age,
      IntervalHierarchy::Create(schema.attribute(kAdultAgeColumn),
                                {1, 5, 10, 20, 40},
                                /*add_suppressed_top=*/true));

  // Marital status: raw, {Married / Was-married / Never-married},
  // suppressed — 3 levels.
  std::vector<TreeHierarchy::Group> marital_mid = {
      {"Married",
       {"Married-civ-spouse", "Married-spouse-absent", "Married-AF-spouse"}},
      {"Was-married", {"Divorced", "Separated", "Widowed"}},
      {"Never-married", {"Never-married"}},
  };
  std::vector<TreeHierarchy::Group> marital_top = {
      {"*",
       {"Married-civ-spouse", "Divorced", "Never-married", "Separated",
        "Widowed", "Married-spouse-absent", "Married-AF-spouse"}},
  };
  CKSAFE_ASSIGN_OR_RETURN(
      TreeHierarchy marital,
      TreeHierarchy::Create(schema.attribute(kAdultMaritalColumn),
                            {marital_mid, marital_top}));

  // Race and Gender: raw or suppressed — 2 levels each.
  TreeHierarchy race =
      TreeHierarchy::SuppressionOnly(schema.attribute(kAdultRaceColumn));
  TreeHierarchy gender =
      TreeHierarchy::SuppressionOnly(schema.attribute(kAdultGenderColumn));

  std::vector<QuasiIdentifier> qis(4);
  qis[0] = {kAdultAgeColumn, ShareHierarchy(std::move(age))};
  qis[1] = {kAdultMaritalColumn, ShareHierarchy(std::move(marital))};
  qis[2] = {kAdultRaceColumn, ShareHierarchy(std::move(race))};
  qis[3] = {kAdultGenderColumn, ShareHierarchy(std::move(gender))};
  return qis;
}

LatticeNode AdultFigure5Node() {
  // Age -> 20-year intervals (level 3); everything else suppressed.
  return LatticeNode{3, 2, 1, 1};
}

namespace {

// ---------------------------------------------------------------------------
// Synthetic generator.
//
// Distributions approximate the cleaned UCI Adult marginals; occupation is
// conditioned on gender and a coarse age band, which is the dependency that
// shapes the paper's disclosure curves. All weights are unnormalized.
// ---------------------------------------------------------------------------

// Right-skewed age curve peaking in the early thirties, long tail to 90.
double AgeWeight(int32_t age) {
  const double x = static_cast<double>(age - kMinAge + 1);  // >= 1
  const double log_x = std::log(x / 18.0);                  // mode near 34
  return std::exp(-0.5 * (log_x / 0.62) * (log_x / 0.62)) / x * 18.0;
}

// Age bands aligned with the paper's 20-year generalization intervals
// ([17-36], [37-56], [57-90]) so the conditional occupation skew embedded
// below survives aggregation to the Figure-5 table.
enum AgeBand { kYoung = 0, kMid = 1, kSenior = 2 };

AgeBand BandOf(int32_t age) {
  if (age < 37) return kYoung;
  if (age < 57) return kMid;
  return kSenior;
}

// Marital-status weights per (age band, gender); order matches
// kMaritalLabels.
const double kMaritalWeights[3][2][7] = {
    // kYoung
    {{0.30, 0.040, 0.60, 0.020, 0.002, 0.035, 0.003},   // male
     {0.33, 0.070, 0.52, 0.050, 0.010, 0.018, 0.002}},  // female
    // kMid
    {{0.66, 0.11, 0.14, 0.025, 0.012, 0.050, 0.003},
     {0.46, 0.19, 0.17, 0.060, 0.065, 0.054, 0.001}},
    // kSenior
    {{0.74, 0.09, 0.045, 0.015, 0.065, 0.045, 0.000},
     {0.40, 0.14, 0.060, 0.025, 0.330, 0.045, 0.000}},
};

// Race marginal (order matches kRaceLabels).
const double kRaceWeights[5] = {0.855, 0.096, 0.031, 0.010, 0.008};

// Gender marginal.
const double kGenderWeights[2] = {0.675, 0.325};

// Occupation weights per (gender, age band); order matches
// kOccupationLabels:
//   Prof-specialty, Craft-repair, Exec-managerial, Adm-clerical, Sales,
//   Other-service, Machine-op-inspct, Transport-moving, Handlers-cleaners,
//   Farming-fishing, Tech-support, Protective-serv, Priv-house-serv,
//   Armed-Forces.
// Each band has one clearly dominant occupation in the gender mixture
// (services when young, management mid-career, professions late), mirroring
// the within-age skew of the real dataset that drives the Figure-5 gap
// between implication and negation adversaries.
const double kOccupationWeights[2][3][14] = {
    // male
    {
        // young: services / manual work over-represented
        {0.050, 0.150, 0.055, 0.070, 0.140, 0.170, 0.085, 0.055, 0.120,
         0.045, 0.030, 0.027, 0.001, 0.002},
        // mid-career: management dominates
        {0.120, 0.175, 0.210, 0.040, 0.100, 0.045, 0.070, 0.080, 0.040,
         0.038, 0.030, 0.050, 0.001, 0.001},
        // senior: professions and farming
        {0.180, 0.120, 0.150, 0.050, 0.110, 0.060, 0.055, 0.065, 0.025,
         0.130, 0.018, 0.030, 0.004, 0.000},
    },
    // female
    {
        {0.090, 0.020, 0.060, 0.280, 0.150, 0.220, 0.040, 0.008, 0.030,
         0.009, 0.045, 0.008, 0.014, 0.001},
        {0.160, 0.025, 0.180, 0.260, 0.090, 0.130, 0.050, 0.010, 0.015,
         0.010, 0.038, 0.009, 0.012, 0.000},
        {0.200, 0.018, 0.100, 0.240, 0.110, 0.190, 0.045, 0.006, 0.012,
         0.020, 0.025, 0.005, 0.048, 0.000},
    },
};

}  // namespace

Table GenerateSyntheticAdult(size_t num_rows, uint64_t seed) {
  Table table(AdultSchema());
  Rng rng(seed);

  std::vector<double> age_weights;
  age_weights.reserve(kMaxAge - kMinAge + 1);
  for (int32_t age = kMinAge; age <= kMaxAge; ++age) {
    age_weights.push_back(AgeWeight(age));
  }
  const DiscreteSampler age_sampler(age_weights);
  const DiscreteSampler race_sampler(
      std::vector<double>(kRaceWeights, kRaceWeights + 5));
  const DiscreteSampler gender_sampler(
      std::vector<double>(kGenderWeights, kGenderWeights + 2));

  // Pre-build the conditional samplers (3 bands x 2 genders each).
  std::vector<DiscreteSampler> marital_samplers;
  std::vector<DiscreteSampler> occupation_samplers;
  for (int band = 0; band < 3; ++band) {
    for (int gender = 0; gender < 2; ++gender) {
      marital_samplers.emplace_back(std::vector<double>(
          kMaritalWeights[band][gender], kMaritalWeights[band][gender] + 7));
      occupation_samplers.emplace_back(
          std::vector<double>(kOccupationWeights[gender][band],
                              kOccupationWeights[gender][band] + 14));
    }
  }

  for (size_t row = 0; row < num_rows; ++row) {
    const int32_t age = kMinAge + static_cast<int32_t>(age_sampler.Sample(&rng));
    const int band = BandOf(age);
    const int32_t gender = static_cast<int32_t>(gender_sampler.Sample(&rng));
    const size_t cond = static_cast<size_t>(band) * 2 + static_cast<size_t>(gender);
    const int32_t marital =
        static_cast<int32_t>(marital_samplers[cond].Sample(&rng));
    const int32_t race = static_cast<int32_t>(race_sampler.Sample(&rng));
    const int32_t occupation =
        static_cast<int32_t>(occupation_samplers[cond].Sample(&rng));
    const Status st =
        table.AppendRow({age, marital, race, gender, occupation});
    CKSAFE_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

StatusOr<Table> LoadAdultCsv(const std::string& path) {
  // Column positions in the raw UCI file.
  constexpr size_t kRawAge = 0;
  constexpr size_t kRawMarital = 5;
  constexpr size_t kRawOccupation = 6;
  constexpr size_t kRawRace = 8;
  constexpr size_t kRawSex = 9;
  constexpr size_t kRawColumns = 15;

  CKSAFE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  Table table(AdultSchema());
  const Schema& schema = table.schema();
  for (const auto& row : rows) {
    if (row.size() != kRawColumns) continue;  // header/footer noise
    const std::array<std::string, 5> projected = {
        row[kRawAge], row[kRawMarital], row[kRawRace], row[kRawSex],
        row[kRawOccupation]};
    bool missing = false;
    for (const std::string& field : projected) {
      if (field == "?") missing = true;
    }
    if (missing) continue;

    std::vector<int32_t> codes(5);
    bool bad = false;
    const std::array<size_t, 5> columns = {kAdultAgeColumn, kAdultMaritalColumn,
                                           kAdultRaceColumn, kAdultGenderColumn,
                                           kAdultOccupationColumn};
    for (size_t i = 0; i < 5; ++i) {
      auto code = schema.attribute(columns[i]).CodeOf(projected[i]);
      if (!code.ok()) {
        bad = true;
        break;
      }
      codes[columns[i]] = *code;
    }
    if (bad) continue;
    CKSAFE_RETURN_IF_ERROR(table.AppendRow(codes));
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("no usable rows in " + path);
  }
  return table;
}

}  // namespace cksafe
