#include "cksafe/search/utility.h"

namespace cksafe {

UtilityMetrics ComputeUtility(const Table& table,
                              const std::vector<QuasiIdentifier>& qis,
                              const LatticeNode& node,
                              const Bucketization& bucketization) {
  CKSAFE_CHECK_EQ(node.size(), qis.size());
  UtilityMetrics metrics;
  for (const Bucket& b : bucketization.buckets()) {
    metrics.discernibility += static_cast<double>(b.size()) * b.size();
  }
  metrics.avg_class_size =
      bucketization.num_buckets() == 0
          ? 0.0
          : static_cast<double>(bucketization.num_tuples()) /
                static_cast<double>(bucketization.num_buckets());
  for (int level : node) metrics.height += level;

  // Loss metric: for each record and quasi-identifier, the fraction
  // (group size - 1) / (domain size - 1) of the base domain its published
  // group covers.
  if (table.num_rows() > 0 && !qis.empty()) {
    double total = 0.0;
    for (size_t q = 0; q < qis.size(); ++q) {
      const AttributeHierarchy& h = *qis[q].hierarchy;
      const size_t level = static_cast<size_t>(node[q]);
      const AttributeDef& attr = h.attribute();
      const size_t domain = attr.domain_size();
      // group id -> number of base values it covers.
      std::vector<uint32_t> group_size(h.NumGroups(level), 0);
      for (size_t c = 0; c < domain; ++c) {
        const int32_t code = attr.min_value() + static_cast<int32_t>(c);
        ++group_size[static_cast<size_t>(h.GroupOf(code, level))];
      }
      if (domain <= 1) continue;
      const std::vector<int32_t>& column = table.column(qis[q].column);
      for (int32_t code : column) {
        const uint32_t size =
            group_size[static_cast<size_t>(h.GroupOf(code, level))];
        total += static_cast<double>(size - 1) /
                 static_cast<double>(domain - 1);
      }
    }
    metrics.loss = total / (static_cast<double>(table.num_rows()) *
                            static_cast<double>(qis.size()));
  }
  return metrics;
}

double UtilityScore(const UtilityMetrics& metrics, UtilityObjective objective) {
  switch (objective) {
    case UtilityObjective::kDiscernibility:
      return metrics.discernibility;
    case UtilityObjective::kAvgClassSize:
      return metrics.avg_class_size;
    case UtilityObjective::kHeight:
      return metrics.height;
    case UtilityObjective::kLoss:
      return metrics.loss;
  }
  CKSAFE_CHECK(false) << "unknown utility objective";
  return 0.0;
}

std::string UtilityObjectiveName(UtilityObjective objective) {
  switch (objective) {
    case UtilityObjective::kDiscernibility:
      return "discernibility";
    case UtilityObjective::kAvgClassSize:
      return "avg_class_size";
    case UtilityObjective::kHeight:
      return "height";
    case UtilityObjective::kLoss:
      return "loss";
  }
  return "unknown";
}

}  // namespace cksafe
