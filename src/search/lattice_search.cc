#include "cksafe/search/lattice_search.h"

#include <unordered_set>

namespace cksafe {

namespace {

// Inserts `node` and every strict ancestor into `implied`.
void MarkAncestorsSafe(const GeneralizationLattice& lattice,
                       const LatticeNode& node,
                       std::unordered_set<uint64_t>* implied) {
  for (const LatticeNode& parent : lattice.Parents(node)) {
    const uint64_t code = lattice.Encode(parent);
    if (implied->insert(code).second) {
      MarkAncestorsSafe(lattice, parent, implied);
    }
  }
}

}  // namespace

LatticeSearchResult FindMinimalSafeNodes(const GeneralizationLattice& lattice,
                                         const NodePredicate& is_safe,
                                         bool use_pruning) {
  LatticeSearchResult result;
  if (use_pruning) {
    std::unordered_set<uint64_t> implied_safe;
    for (size_t h = 0; h <= lattice.MaxHeight(); ++h) {
      for (const LatticeNode& node : lattice.NodesAtHeight(h)) {
        ++result.stats.nodes_visited;
        if (implied_safe.count(lattice.Encode(node)) > 0) {
          ++result.stats.implied_safe;
          continue;
        }
        ++result.stats.evaluations;
        if (!is_safe(node)) continue;
        // Bottom-up invariant: a safe strict descendant would have marked
        // this node implied-safe, so this node is minimal.
        result.minimal_safe_nodes.push_back(node);
        MarkAncestorsSafe(lattice, node, &implied_safe);
      }
    }
    return result;
  }

  // Ablation path: evaluate everything, then filter minimal safe nodes.
  std::unordered_set<uint64_t> safe;
  std::vector<LatticeNode> all = lattice.AllNodes();
  for (const LatticeNode& node : all) {
    ++result.stats.nodes_visited;
    ++result.stats.evaluations;
    if (is_safe(node)) safe.insert(lattice.Encode(node));
  }
  for (const LatticeNode& node : all) {
    if (safe.count(lattice.Encode(node)) == 0) continue;
    bool has_safe_child = false;
    for (const LatticeNode& child : lattice.Children(node)) {
      if (safe.count(lattice.Encode(child)) > 0) {
        has_safe_child = true;
        break;
      }
    }
    if (!has_safe_child) result.minimal_safe_nodes.push_back(node);
  }
  return result;
}

std::optional<size_t> ChainBinarySearch(const std::vector<LatticeNode>& chain,
                                        const NodePredicate& is_safe,
                                        LatticeSearchStats* stats) {
  CKSAFE_CHECK(!chain.empty());
  LatticeSearchStats local;
  LatticeSearchStats* s = stats != nullptr ? stats : &local;

  size_t lo = 0;
  size_t hi = chain.size();  // first safe index in [lo, hi]; hi == none yet
  // Invariant: indices < lo are unsafe; if a safe index exists it is < hi
  // only after we have seen one. Start by testing the top.
  ++s->evaluations;
  ++s->nodes_visited;
  if (!is_safe(chain.back())) return std::nullopt;
  hi = chain.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++s->evaluations;
    ++s->nodes_visited;
    if (is_safe(chain[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace cksafe
