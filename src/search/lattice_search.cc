#include "cksafe/search/lattice_search.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace cksafe {

namespace {

// Inserts `node` and every strict ancestor into `implied`.
void MarkAncestorsSafe(const GeneralizationLattice& lattice,
                       const LatticeNode& node,
                       std::unordered_set<uint64_t>* implied) {
  for (const LatticeNode& parent : lattice.Parents(node)) {
    const uint64_t code = lattice.Encode(parent);
    if (implied->insert(code).second) {
      MarkAncestorsSafe(lattice, parent, implied);
    }
  }
}

// Evaluates is_safe on every node of `batch`, fanning out over `pool`
// (serial when pool is null). Results are positional, so downstream
// consumption can stay in deterministic batch order.
std::vector<uint8_t> EvaluateBatch(const std::vector<LatticeNode>& batch,
                                   const NodePredicate& is_safe,
                                   ThreadPool* pool) {
  std::vector<uint8_t> safe(batch.size(), 0);
  ParallelFor(pool, batch.size(),
              [&](size_t i) { safe[i] = is_safe(batch[i]) ? 1 : 0; });
  return safe;
}

}  // namespace

LatticeSearchResult FindMinimalSafeNodes(const GeneralizationLattice& lattice,
                                         const NodePredicate& is_safe,
                                         const LatticeSearchOptions& options) {
  // Resolve the threading mode: an owned transient pool only when asked for
  // parallelism without providing one. The pool contributes *extra* threads
  // on top of the calling thread (which participates in ParallelFor), so
  // num_threads = T maps to a pool of T - 1 workers.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.num_threads - 1);
    pool = owned_pool.get();
  }

  LatticeSearchResult result;
  if (options.use_pruning) {
    // Warm start: evaluate the seed frontier up front. Safe seeds prune
    // their strict ancestors; all verdicts are memoized so the sweep below
    // never re-runs the predicate on a seed. Seeds are hints only — the
    // minimal-safe set is still decided entirely by the sweep, so a stale
    // frontier costs extra evaluations, never correctness.
    std::unordered_set<uint64_t> implied_safe;
    std::unordered_map<uint64_t, uint8_t> memo;
    if (!options.seed_frontier.empty()) {
      std::vector<LatticeNode> seeds;
      for (const LatticeNode& node : options.seed_frontier) {
        if (!lattice.Validate(node).ok()) continue;
        if (memo.count(lattice.Encode(node)) > 0) continue;
        memo.emplace(lattice.Encode(node), 0);  // placeholder, filled below
        seeds.push_back(node);
      }
      const std::vector<uint8_t> safe = EvaluateBatch(seeds, is_safe, pool);
      result.stats.evaluations += seeds.size();
      result.stats.seed_evaluations += seeds.size();
      for (size_t i = 0; i < seeds.size(); ++i) {
        memo[lattice.Encode(seeds[i])] = safe[i];
        if (safe[i]) MarkAncestorsSafe(lattice, seeds[i], &implied_safe);
      }
    }

    // Incognito sweep, one BFS level at a time. Ancestor marking only ever
    // targets strictly higher levels, so within one level the surviving
    // nodes' evaluations are independent: batching them over the pool
    // reproduces the sequential visit/evaluation/pruning counts exactly.
    for (size_t h = 0; h <= lattice.MaxHeight(); ++h) {
      // Survivors of the level in lexicographic order; verdicts for the
      // non-memoized ones are batch-evaluated, then the level is consumed
      // in its original order so minimal_safe_nodes (content AND order) is
      // independent of the seed frontier.
      std::vector<LatticeNode> level;
      std::vector<int> verdict;  // -1 = needs evaluation
      std::vector<LatticeNode> batch;
      for (LatticeNode& node : lattice.NodesAtHeight(h)) {
        ++result.stats.nodes_visited;
        if (implied_safe.count(lattice.Encode(node)) > 0) {
          ++result.stats.implied_safe;
          continue;
        }
        if (auto it = memo.find(lattice.Encode(node)); it != memo.end()) {
          ++result.stats.seed_reused;
          verdict.push_back(it->second);
        } else {
          ++result.stats.evaluations;
          verdict.push_back(-1);
          batch.push_back(node);
        }
        level.push_back(std::move(node));
      }
      const std::vector<uint8_t> safe = EvaluateBatch(batch, is_safe, pool);
      size_t next_evaluated = 0;
      for (size_t i = 0; i < level.size(); ++i) {
        const bool is_node_safe =
            verdict[i] >= 0 ? verdict[i] != 0 : safe[next_evaluated++] != 0;
        if (!is_node_safe) continue;
        // Bottom-up invariant: a safe strict descendant would have marked
        // this node implied-safe, so this node is minimal.
        result.minimal_safe_nodes.push_back(level[i]);
        MarkAncestorsSafe(lattice, level[i], &implied_safe);
      }
    }
    return result;
  }

  // Ablation path: evaluate everything, then filter minimal safe nodes.
  std::unordered_set<uint64_t> safe;
  const std::vector<LatticeNode> all = lattice.AllNodes();
  result.stats.nodes_visited += all.size();
  result.stats.evaluations += all.size();
  const std::vector<uint8_t> is_node_safe = EvaluateBatch(all, is_safe, pool);
  for (size_t i = 0; i < all.size(); ++i) {
    if (is_node_safe[i]) safe.insert(lattice.Encode(all[i]));
  }
  for (const LatticeNode& node : all) {
    if (safe.count(lattice.Encode(node)) == 0) continue;
    bool has_safe_child = false;
    for (const LatticeNode& child : lattice.Children(node)) {
      if (safe.count(lattice.Encode(child)) > 0) {
        has_safe_child = true;
        break;
      }
    }
    if (!has_safe_child) result.minimal_safe_nodes.push_back(node);
  }
  return result;
}

LatticeSearchResult FindMinimalSafeNodes(const GeneralizationLattice& lattice,
                                         const NodePredicate& is_safe,
                                         bool use_pruning) {
  LatticeSearchOptions options;
  options.use_pruning = use_pruning;
  return FindMinimalSafeNodes(lattice, is_safe, options);
}

MultiPolicySearchResult FindMinimalSafeNodesMultiPolicy(
    const GeneralizationLattice& lattice, const NodeProfiler& profile_of,
    const std::vector<CkPolicy>& policies,
    const MultiPolicySearchOptions& options) {
  CKSAFE_CHECK(!policies.empty());
  const size_t num_policies = policies.size();

  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.num_threads - 1);
    pool = owned_pool.get();
  }

  MultiPolicySearchResult result;
  result.per_policy.resize(num_policies);
  std::vector<std::unordered_set<uint64_t>> implied(num_policies);

  for (size_t h = 0; h <= lattice.MaxHeight(); ++h) {
    // Survivors of the level in lexicographic order, each with the set of
    // policies still needing a verdict there; one shared profile per
    // surviving node is batch-evaluated for all of them, then the level
    // is consumed in its original order (per-policy frontier content AND
    // order match the single-policy sweep). The per-policy counters are
    // bumped exactly where a dedicated single-policy sweep would bump
    // them, which is what keeps each per_policy entry bit-identical to an
    // independent FindMinimalSafeNodes run.
    std::vector<LatticeNode> level;
    std::vector<std::vector<uint8_t>> needs;
    for (LatticeNode& node : lattice.NodesAtHeight(h)) {
      const uint64_t code = lattice.Encode(node);
      std::vector<uint8_t> node_needs(num_policies, 0);
      bool any_verdict = false;
      for (size_t p = 0; p < num_policies; ++p) {
        LatticeSearchStats& stats = result.per_policy[p].stats;
        ++stats.nodes_visited;
        if (implied[p].count(code) > 0) {
          ++stats.implied_safe;
          continue;
        }
        ++stats.evaluations;
        ++result.stats.verdicts;
        node_needs[p] = 1;
        any_verdict = true;
      }
      if (!any_verdict) continue;
      level.push_back(std::move(node));
      needs.push_back(std::move(node_needs));
    }

    // One shared profile per surviving node, fanned out over the pool
    // (results positional, so consumption stays deterministic). This is
    // where the double monotonicity pays: the profile is nondecreasing in
    // k, so a single curve classifies every (c_i, k_i) at once, and a
    // dominated policy never forces a profile a dominating policy did not
    // already require (its implied set is a superset, so its needs are a
    // subset — see MultiPolicySearchStats).
    std::vector<std::optional<DisclosureProfile>> profiles;
    if (options.batch_profiler != nullptr && !level.empty()) {
      profiles = options.batch_profiler(level, pool);
      CKSAFE_CHECK_EQ(profiles.size(), level.size())
          << "batch profiler must return one result per node";
    } else {
      profiles.resize(level.size());
      ParallelFor(pool, level.size(),
                  [&](size_t i) { profiles[i] = profile_of(level[i]); });
    }
    result.stats.profiles_computed += level.size();

    for (size_t i = 0; i < level.size(); ++i) {
      const std::optional<DisclosureProfile>& profile = profiles[i];
      for (size_t p = 0; p < num_policies; ++p) {
        if (needs[i][p] == 0) continue;
        const bool is_node_safe =
            profile.has_value() &&
            profile->IsCkSafe(policies[p].c, policies[p].k);
        if (!is_node_safe) continue;
        // Bottom-up invariant per policy: a safe strict descendant would
        // have marked this node implied-safe, so this node is minimal.
        result.per_policy[p].minimal_safe_nodes.push_back(level[i]);
        MarkAncestorsSafe(lattice, level[i], &implied[p]);
      }
    }
  }
  return result;
}

std::optional<size_t> ChainBinarySearch(const std::vector<LatticeNode>& chain,
                                        const NodePredicate& is_safe,
                                        LatticeSearchStats* stats) {
  CKSAFE_CHECK(!chain.empty());
  LatticeSearchStats local;
  LatticeSearchStats* s = stats != nullptr ? stats : &local;

  size_t lo = 0;
  size_t hi = chain.size();  // first safe index in [lo, hi]; hi == none yet
  // Invariant: indices < lo are unsafe; if a safe index exists it is < hi
  // only after we have seen one. Start by testing the top.
  ++s->evaluations;
  ++s->nodes_visited;
  if (!is_safe(chain.back())) return std::nullopt;
  hi = chain.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++s->evaluations;
    ++s->nodes_visited;
    if (is_safe(chain[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace cksafe
