#include "cksafe/search/publisher.h"

#include <algorithm>
#include <unordered_map>

#include "cksafe/util/string_util.h"
#include "cksafe/util/text_table.h"

namespace cksafe {

StatusOr<PublishedRelease> Publisher::Publish(
    const Table& table, const std::vector<QuasiIdentifier>& qis,
    size_t sensitive_column) const {
  PublishSession local_session;
  return Publish(table, qis, sensitive_column, &local_session);
}

StatusOr<PublishedRelease> BuildReleaseFromSearch(
    const Table& table, const std::vector<QuasiIdentifier>& qis,
    size_t sensitive_column, const PublisherOptions& options,
    DisclosureCache* cache, LatticeSearchResult search) {
  CKSAFE_CHECK(cache != nullptr);
  if (search.minimal_safe_nodes.empty()) {
    return Status::NotFound(StrFormat(
        "no (c=%g, k=%zu)-safe generalization exists for this table",
        options.c, options.k));
  }

  // Pick the minimal safe node with the best utility.
  const LatticeNode* best_node = nullptr;
  double best_score = 0.0;
  for (const LatticeNode& node : search.minimal_safe_nodes) {
    CKSAFE_ASSIGN_OR_RETURN(Bucketization b, BucketizeAtNode(table, qis, node,
                                                             sensitive_column));
    const UtilityMetrics metrics = ComputeUtility(table, qis, node, b);
    const double score = UtilityScore(metrics, options.objective);
    if (best_node == nullptr || score < best_score) {
      best_node = &node;
      best_score = score;
    }
  }
  CKSAFE_CHECK(best_node != nullptr);

  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeAtNode(table, qis, *best_node, sensitive_column));
  DisclosureAnalyzer analyzer(bucketization, cache);

  PublishedRelease release{*best_node,
                           bucketization,
                           ComputeUtility(table, qis, *best_node, bucketization),
                           analyzer.MaxDisclosureImplications(options.k),
                           {},
                           std::move(search.minimal_safe_nodes),
                           search.stats};
  Rng rng(options.seed);
  release.published_sensitive = bucketization.SamplePublishedAssignment(&rng);
  return release;
}

StatusOr<PublishedRelease> Publisher::Publish(
    const Table& table, const std::vector<QuasiIdentifier>& qis,
    size_t sensitive_column, PublishSession* session) const {
  CKSAFE_CHECK(session != nullptr);
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot publish an empty table");
  }
  CKSAFE_RETURN_IF_ERROR(Minimize2Forward::ValidateBudget(options_.k));
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);

  // One shared MINIMIZE1 cache across all nodes (and, via the session,
  // across sequential releases): buckets recur across lattice nodes, so
  // this is the paper's incremental-recomputation win.
  DisclosureCache& cache = session->cache;
  Status first_error = Status::OK();
  auto is_safe = [&](const LatticeNode& node) {
    auto bucketization = BucketizeAtNode(table, qis, node, sensitive_column);
    if (!bucketization.ok()) {
      if (first_error.ok()) first_error = bucketization.status();
      return false;
    }
    // One DP arena per worker thread: per-node evaluations reuse the row
    // buffers instead of reallocating them (values are unaffected).
    thread_local Minimize2Workspace workspace;
    DisclosureAnalyzer analyzer(*bucketization, &cache);
    return analyzer.IsCkSafe(options_.c, options_.k, &workspace);
  };

  LatticeSearchOptions search_options;
  search_options.use_pruning = options_.use_pruning;
  if (options_.use_pruning) search_options.seed_frontier = session->seed_frontier;
  LatticeSearchResult search =
      FindMinimalSafeNodes(lattice, is_safe, search_options);
  CKSAFE_RETURN_IF_ERROR(first_error);
  CKSAFE_ASSIGN_OR_RETURN(
      PublishedRelease release,
      BuildReleaseFromSearch(table, qis, sensitive_column, options_, &cache,
                             std::move(search)));
  session->seed_frontier = release.minimal_safe_nodes;
  ++session->releases;
  return release;
}

std::string Publisher::Summary(const PublishedRelease& release,
                               const Table& table, size_t sensitive_column) {
  const AttributeDef& sensitive = table.schema().attribute(sensitive_column);
  std::string out;
  out += StrFormat("chosen node: [");
  for (size_t i = 0; i < release.node.size(); ++i) {
    out += StrFormat("%s%d", i > 0 ? ", " : "", release.node[i]);
  }
  out += StrFormat("], %zu buckets, worst-case disclosure %.4f\n",
                   release.bucketization.num_buckets(),
                   release.worst_case.disclosure);
  out += StrFormat(
      "utility: discernibility=%.0f avg_class=%.2f height=%.0f loss=%.4f\n",
      release.utility.discernibility, release.utility.avg_class_size,
      release.utility.height, release.utility.loss);
  out += StrFormat("minimal safe nodes: %zu; search evaluated %llu of %llu "
                   "nodes (%llu pruned)\n",
                   release.minimal_safe_nodes.size(),
                   static_cast<unsigned long long>(release.search_stats.evaluations),
                   static_cast<unsigned long long>(release.search_stats.nodes_visited),
                   static_cast<unsigned long long>(release.search_stats.implied_safe));

  TextTable table_out;
  table_out.SetHeader({"bucket", "quasi-identifiers", "n", "sensitive values"});
  const size_t max_rows = 12;
  for (size_t i = 0; i < release.bucketization.num_buckets(); ++i) {
    if (i >= max_rows) {
      table_out.AddRow({"...", "", "", ""});
      break;
    }
    const Bucket& b = release.bucketization.bucket(i);
    std::vector<std::string> values;
    for (size_t s = 0; s < b.histogram.size(); ++s) {
      if (b.histogram[s] == 0) continue;
      values.push_back(StrFormat("%s x%u",
                                 sensitive.LabelOf(static_cast<int32_t>(s)).c_str(),
                                 b.histogram[s]));
    }
    table_out.AddRow({std::to_string(i), b.qi_label,
                      std::to_string(b.size()), Join(values, ", ")});
  }
  out += table_out.Render();
  return out;
}

}  // namespace cksafe
