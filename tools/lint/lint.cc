#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.h"

namespace cksafe_lint {
namespace {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// ---------------------------------------------------------------------------
// Scopes: which paths each rule applies to.

// L2: subsystems whose outputs must be byte-identical across runs and
// toolchains (seeded generation, the numeric kernel, the on-disk format).
constexpr std::string_view kDeterminismScopes[] = {
    "src/foundry/", "include/cksafe/foundry/", "src/core/",
    "include/cksafe/core/", "src/persist/", "include/cksafe/persist/",
    "src/util/page_io.cc", "include/cksafe/util/page_io.h",
};

// L2 addendum: foundry *generator* TUs are integer-only (PR 6: identical
// seeds must yield byte-identical tables on any compiler; no FP anywhere
// in the generation path). The scenario runner is exempt — it consumes
// analyzer output (disclosure probabilities), it does not generate.
constexpr std::string_view kIntegerOnlyFiles[] = {
    "src/foundry/table_foundry.cc", "src/foundry/hierarchy_foundry.cc",
    "src/foundry/delta_foundry.cc", "src/foundry/fingerprint.cc",
    "include/cksafe/foundry/table_foundry.h",
    "include/cksafe/foundry/hierarchy_foundry.h",
    "include/cksafe/foundry/delta_foundry.h",
    "include/cksafe/foundry/fingerprint.h",
};

// L4: the only code allowed to touch the raw file primitives. Everything
// else goes through DurableStore, whose manifest record is the commit
// point (DESIGN.md §12).
constexpr std::string_view kPersistScopes[] = {
    "src/persist/", "include/cksafe/persist/", "src/util/page_io.cc",
    "include/cksafe/util/page_io.h",
};

bool InScopes(std::string_view path, const std::string_view* scopes,
              size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (StartsWith(path, scopes[i])) return true;
  }
  return false;
}

// Identifiers banned outright in L2 scopes: ambient-entropy and
// wall-clock sources, and the std distribution/engine types whose
// sequences are not pinned across standard library implementations.
const std::set<std::string, std::less<>> kBannedIdentifiers = {
    "rand",          "srand",          "rand_r",        "drand48",
    "lrand48",       "mrand48",        "random",        "random_device",
    "mt19937",       "mt19937_64",     "minstd_rand",   "minstd_rand0",
    "ranlux24",      "ranlux48",       "knuth_b",       "default_random_engine",
    "random_shuffle", "gettimeofday",  "system_clock",  "steady_clock",
    "high_resolution_clock",
};

// Banned only in call position (common variable names otherwise).
const std::set<std::string, std::less<>> kBannedCalls = {"time", "clock"};

// ---------------------------------------------------------------------------

struct FileTokens {
  const SourceFile* file;
  std::vector<Token> tokens;
};

// Walks backwards from the callee identifier at `callee` over a postfix
// chain (obj.member->Method, ns::Class::Fn, Make().Then) and returns the
// index of the chain's first token.
int ChainStart(const std::vector<Token>& toks, int callee) {
  int start = callee;
  for (;;) {
    const int p = PrevSignificant(toks, start);
    if (p < 0) return start;
    if (toks[p].IsPunct(".") || toks[p].IsPunct("->") ||
        toks[p].IsPunct("::")) {
      const int q = PrevSignificant(toks, p);
      if (q < 0) return start;
      if (toks[q].kind == TokenKind::kIdentifier) {
        start = q;
        continue;
      }
      if (toks[q].IsPunct(")") || toks[q].IsPunct("]")) {
        // Back over a balanced (...) or [...] group, then over the
        // identifier that precedes it if any (a call or index).
        const std::string_view close = toks[q].text;
        const std::string_view open = (close == ")") ? "(" : "[";
        int depth = 0;
        int j = q;
        for (; j >= 0; --j) {
          if (toks[j].kind == TokenKind::kComment) continue;
          if (toks[j].text == close && toks[j].kind == TokenKind::kPunct)
            ++depth;
          if (toks[j].text == open && toks[j].kind == TokenKind::kPunct) {
            if (--depth == 0) break;
          }
        }
        if (j < 0) return start;
        const int before = PrevSignificant(toks, j);
        if (before >= 0 && toks[before].kind == TokenKind::kIdentifier) {
          start = before;
        } else {
          start = j;
        }
        continue;
      }
      return start;
    }
    return start;
  }
}

// ---------------------------------------------------------------------------
// L1: build the Status/StatusOr function-name registry from the headers.

// Declaration-context keywords: an identifier preceded by one of these is
// NOT a `Type name(...)` declaration (it is a call or an expression).
const std::set<std::string, std::less<>> kNonTypeKeywords = {
    "return",   "new",      "delete",  "throw",    "co_return", "case",
    "goto",     "else",     "do",      "sizeof",   "alignof",   "if",
    "while",    "for",      "switch",  "operator", "using",     "typedef",
    "template", "typename", "class",   "struct",   "enum",      "namespace",
    "public",   "private",  "protected",
};

void BuildStatusRegistry(const std::vector<FileTokens>& lexed,
                         std::set<std::string>* registry) {
  std::set<std::string> status_returning;
  // Names also declared with a NON-Status return type anywhere in the
  // headers. A name-based registry cannot tell `QueryRouter::Submit`
  // (StatusOr) from `ThreadPool::Submit` (void) at a call site, so
  // ambiguous names are pruned: for those, the compiler's
  // [[nodiscard]] + -Werror=unused-result is the (type-accurate)
  // enforcement, and the lint covers the unambiguous rest plus the
  // `(void)`-cast escape hatch.
  std::set<std::string> otherwise_returning;

  for (const auto& ft : lexed) {
    if (!StartsWith(ft.file->path, "include/") ||
        !EndsWith(ft.file->path, ".h")) {
      continue;
    }
    const auto& toks = ft.tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const bool is_status = toks[i].text == "Status";
      const bool is_status_or = toks[i].text == "StatusOr";
      if (is_status || is_status_or) {
        // Candidate return type. Not one if preceded by class/struct (a
        // definition) or a member access.
        const int prev = PrevSignificant(toks, i);
        if (prev >= 0 &&
            (toks[prev].IsIdent("class") || toks[prev].IsIdent("struct") ||
             toks[prev].IsPunct(".") || toks[prev].IsPunct("->"))) {
          continue;
        }
        int j = NextSignificant(toks, i);
        if (is_status_or) {
          // Skip the template argument list.
          if (j < 0 || !toks[j].IsPunct("<")) continue;
          int depth = 0;
          while (j < static_cast<int>(toks.size())) {
            if (toks[j].IsPunct("<")) ++depth;
            if (toks[j].IsPunct(">")) {
              if (--depth == 0) break;
            }
            ++j;
          }
          j = NextSignificant(toks, j);
        }
        if (j < 0 || toks[j].kind != TokenKind::kIdentifier) continue;
        const int call = NextSignificant(toks, j);
        if (call < 0 || !toks[call].IsPunct("(")) continue;
        status_returning.insert(toks[j].text);
        continue;
      }
      // `Type name(` with Type != Status/StatusOr: record `name` as
      // ambiguous when Type is a plain identifier (void, size_t, ...),
      // a closing template `>`, or a pointer/reference declarator.
      const int open = NextSignificant(toks, i);
      if (open < 0 || !toks[open].IsPunct("(")) continue;
      const int prev = PrevSignificant(toks, i);
      if (prev < 0) continue;
      const Token& p = toks[prev];
      const bool type_like =
          (p.kind == TokenKind::kIdentifier &&
           kNonTypeKeywords.find(p.text) == kNonTypeKeywords.end() &&
           p.text != "Status" && p.text != "StatusOr") ||
          p.IsPunct(">") || p.IsPunct("*") || p.IsPunct("&");
      if (!type_like) continue;
      // `StatusOr<T> Name(` reaches here with prev == ">": walk back to
      // the template head to see whether it is StatusOr.
      if (p.IsPunct(">")) {
        int depth = 0;
        int j = prev;
        for (; j >= 0; --j) {
          if (toks[j].kind == TokenKind::kComment) continue;
          if (toks[j].IsPunct(">")) ++depth;
          if (toks[j].IsPunct("<")) {
            if (--depth == 0) break;
          }
        }
        const int head = j >= 0 ? PrevSignificant(toks, j) : -1;
        if (head >= 0 && toks[head].IsIdent("StatusOr")) continue;
      }
      otherwise_returning.insert(toks[i].text);
    }
  }
  for (const auto& name : status_returning) {
    if (otherwise_returning.find(name) == otherwise_returning.end()) {
      registry->insert(name);
    }
  }
}

void RunUncheckedStatus(const std::vector<FileTokens>& lexed,
                        const std::set<std::string>& registry,
                        std::vector<Finding>* findings) {
  for (const auto& ft : lexed) {
    const auto& toks = ft.tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (registry.find(toks[i].text) == registry.end()) continue;
      const int open = NextSignificant(toks, i);
      if (open < 0 || !toks[open].IsPunct("(")) continue;
      const int close = MatchParen(toks, open);
      if (close < 0) continue;
      const int after = NextSignificant(toks, close);
      // Only a call whose full statement is `expr;` can be a discard.
      if (after < 0 || !toks[after].IsPunct(";")) continue;

      const int start = ChainStart(toks, i);
      const int pre = PrevSignificant(toks, start);
      bool discarded = false;
      bool voided = false;
      if (pre < 0) {
        discarded = true;
      } else {
        const Token& t = toks[pre];
        if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}") ||
            t.IsPunct(":") || t.IsIdent("else") || t.IsIdent("do")) {
          discarded = true;
        } else if (t.IsPunct(")")) {
          // Either a control clause `if (...) Call();` or a C-style void
          // cast `(void)Call();` — both discard the Status.
          discarded = true;
          const int cast_inner = PrevSignificant(toks, pre);
          if (cast_inner >= 0 && toks[cast_inner].IsIdent("void")) {
            voided = true;
          }
        }
      }
      if (!discarded) continue;
      // A declaration (`Status Open(...);` in a header) is not a call:
      // the token before the chain is the return type itself.
      if (pre >= 0 && toks[pre].kind == TokenKind::kIdentifier &&
          (toks[pre].text == "Status" || toks[pre].text == "StatusOr")) {
        continue;
      }
      Finding f;
      f.rule = "L1";
      f.file = ft.file->path;
      f.line = toks[i].line;
      f.token = toks[i].text;
      f.message =
          voided
              ? "`(void)`-cast discard of a Status-returning call to '" +
                    toks[i].text +
                    "' — assert or propagate instead (allowlist with a "
                    "justification if the drop is genuinely intended)"
              : "result of Status-returning call to '" + toks[i].text +
                    "' is discarded — assert or propagate it";
      findings->push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// L2: determinism ban.

void RunDeterminismBan(const std::vector<FileTokens>& lexed,
                       std::vector<Finding>* findings) {
  for (const auto& ft : lexed) {
    const std::string_view path = ft.file->path;
    if (!InScopes(path, kDeterminismScopes, std::size(kDeterminismScopes))) {
      continue;
    }
    const bool integer_only =
        std::find(std::begin(kIntegerOnlyFiles), std::end(kIntegerOnlyFiles),
                  path) != std::end(kIntegerOnlyFiles);
    const auto& toks = ft.tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kIdentifier) {
        const bool banned =
            kBannedIdentifiers.count(t.text) > 0 ||
            EndsWith(t.text, "_distribution");
        const int next = NextSignificant(toks, i);
        const bool banned_call = kBannedCalls.count(t.text) > 0 &&
                                 next >= 0 && toks[next].IsPunct("(");
        if (banned || banned_call) {
          findings->push_back(
              {"L2", ft.file->path, t.line, t.text,
               "nondeterminism source '" + t.text +
                   "' in a byte-identical subsystem (use util/random.h "
                   "seeded generators / caller-provided seeds)"});
          continue;
        }
        if (integer_only && (t.text == "float" || t.text == "double")) {
          findings->push_back(
              {"L2", ft.file->path, t.line, t.text,
               "floating-point type '" + t.text +
                   "' in an integer-only foundry generator TU (PR 6 "
                   "contract: identical seeds => byte-identical bytes "
                   "on every compiler)"});
        }
      } else if (integer_only && t.kind == TokenKind::kNumber) {
        const bool is_hex = StartsWith(t.text, "0x") || StartsWith(t.text, "0X");
        const bool fp =
            !is_hex && (t.text.find('.') != std::string::npos ||
                        t.text.find('e') != std::string::npos ||
                        t.text.find('E') != std::string::npos);
        if (fp) {
          findings->push_back({"L2", ft.file->path, t.line, t.text,
                               "floating-point literal '" + t.text +
                                   "' in an integer-only foundry generator "
                                   "TU"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3: layer tower.

// `include/cksafe/X/...` or `src/X/...` => layer X; otherwise "".
std::string LayerOfPath(std::string_view path) {
  std::string_view rest;
  if (StartsWith(path, "include/cksafe/")) {
    rest = path.substr(strlen("include/cksafe/"));
  } else if (StartsWith(path, "src/")) {
    rest = path.substr(strlen("src/"));
  } else {
    return "";
  }
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";  // e.g. a root header
  return std::string(rest.substr(0, slash));
}

void RunLayerTower(const LayerConfig& layers,
                   const std::vector<SourceFile>& files,
                   std::vector<Finding>* findings) {
  // Config rot check: every layer directory present in the tree must be
  // declared, so a new subsystem cannot silently join with no position
  // in the tower.
  std::set<std::string> seen_layers;
  for (const auto& f : files) {
    const std::string layer = LayerOfPath(f.path);
    if (!layer.empty()) seen_layers.insert(layer);
  }
  for (const auto& layer : seen_layers) {
    if (layers.Find(layer) == nullptr) {
      findings->push_back(
          {"L3", "", 0, layer,
           "layer '" + layer +
               "' exists in the tree but is not declared in layers.txt — "
               "add it at its rank in the tower"});
    }
  }

  for (const auto& f : files) {
    const std::string from_name = LayerOfPath(f.path);
    if (from_name.empty()) continue;  // examples/tests/bench/tools: exempt
    const LayerConfig::Layer* from = layers.Find(from_name);
    if (from == nullptr) continue;  // already reported above

    std::istringstream lines(f.content);
    std::string line;
    int line_no = 0;
    while (std::getline(lines, line)) {
      ++line_no;
      const std::string trimmed = Trim(line);
      constexpr std::string_view kPrefix = "#include \"cksafe/";
      if (!StartsWith(trimmed, kPrefix)) continue;
      const std::string_view rest =
          std::string_view(trimmed).substr(kPrefix.size());
      const size_t slash = rest.find('/');
      if (slash == std::string_view::npos) continue;  // root header
      const std::string to_name(rest.substr(0, slash));
      const LayerConfig::Layer* to = layers.Find(to_name);
      if (to == nullptr) {
        findings->push_back({"L3", f.path, line_no, to_name,
                             "include of undeclared layer '" + to_name +
                                 "' (declare it in layers.txt)"});
        continue;
      }
      if (to_name == from_name) continue;
      const bool ok = to->rank < from->rank ||
                      (to->rank == from->rank && to->group == from->group);
      if (!ok) {
        findings->push_back(
            {"L3", f.path, line_no, to_name,
             "layer '" + from_name + "' (rank " +
                 std::to_string(from->rank) + ") may not include layer '" +
                 to_name + "' (rank " + std::to_string(to->rank) +
                 "): edges must point down the tower, or stay inside a "
                 "declared cohesive group"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L4: persist write-path ordering.

void RunPersistOrdering(const std::vector<FileTokens>& lexed,
                        std::vector<Finding>* findings) {
  for (const auto& ft : lexed) {
    const std::string_view path = ft.file->path;
    if (InScopes(path, kPersistScopes, std::size(kPersistScopes))) continue;
    if (StartsWith(path, "tools/lint/")) continue;  // the linter itself
    const auto& toks = ft.tokens;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "AppendFile" || t.text == "RandomReadFile") {
        findings->push_back(
            {"L4", ft.file->path, t.line, t.text,
             "direct use of '" + t.text +
                 "' outside persist/ + util/page_io — the manifest owns "
                 "the commit point; go through DurableStore"});
        continue;
      }
      if (t.text == "Sync") {
        const int prev = PrevSignificant(toks, i);
        const int next = NextSignificant(toks, i);
        const bool member_call =
            prev >= 0 && next >= 0 &&
            (toks[prev].IsPunct(".") || toks[prev].IsPunct("->")) &&
            toks[next].IsPunct("(");
        if (member_call) {
          findings->push_back(
              {"L4", ft.file->path, t.line, t.text,
               "direct '.Sync()' outside persist/ + util/page_io — "
               "durability points are sequenced by the manifest commit "
               "protocol"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L5: NOLINT discipline.

void RunNolintDiscipline(const std::vector<FileTokens>& lexed, int max_nolint,
                         std::vector<Finding>* findings, int* nolint_count) {
  *nolint_count = 0;
  for (const auto& ft : lexed) {
    // The linter's own sources discuss NOLINT syntax in comments; they are
    // not suppressions and do not count against the cap.
    if (StartsWith(ft.file->path, "tools/lint/")) continue;
    for (const auto& t : ft.tokens) {
      if (t.kind != TokenKind::kComment) continue;
      size_t pos = 0;
      while ((pos = t.text.find("NOLINT", pos)) != std::string::npos) {
        ++*nolint_count;
        // Accepted shapes: NOLINT(check): reason / NOLINTNEXTLINE(check):
        // reason — the check list and the reason are both mandatory.
        size_t p = pos + strlen("NOLINT");
        if (t.text.compare(p, strlen("NEXTLINE"), "NEXTLINE") == 0) {
          p += strlen("NEXTLINE");
        }
        bool ok = false;
        if (p < t.text.size() && t.text[p] == '(') {
          const size_t close = t.text.find(')', p + 1);
          if (close != std::string::npos && close > p + 1) {
            size_t r = close + 1;
            if (r < t.text.size() && t.text[r] == ':') {
              ok = !Trim(t.text.substr(r + 1)).empty();
            }
          }
        }
        if (!ok) {
          findings->push_back(
              {"L5", ft.file->path, t.line, "NOLINT",
               "NOLINT without a named check and trailing reason — write "
               "`NOLINT(check-name): why this is safe`"});
        }
        pos = p;
      }
    }
  }
  if (*nolint_count > max_nolint) {
    findings->push_back(
        {"L5", "", 0, "NOLINT",
         "tree-wide NOLINT count " + std::to_string(*nolint_count) +
             " exceeds the cap of " + std::to_string(max_nolint) +
             " — fix the findings instead of suppressing them, or raise "
             "the cap in a reviewed change"});
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::string out;
  if (!file.empty()) {
    out = file + ":" + std::to_string(line) + ": ";
  }
  out += "[" + rule + "] " + message;
  return out;
}

const LayerConfig::Layer* LayerConfig::Find(std::string_view name) const {
  for (const auto& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

bool ParseLayerConfig(std::string_view text, LayerConfig* out,
                      std::string* error) {
  out->layers.clear();
  int rank = 0;
  int next_group = 0;
  std::istringstream lines{std::string(text)};
  std::string raw;
  while (std::getline(lines, raw)) {
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;
    for (const std::string& group : SplitWhitespace(line)) {
      const int group_id = next_group++;
      std::string member;
      std::istringstream members(group);
      while (std::getline(members, member, '+')) {
        if (member.empty()) {
          *error = "layers.txt: empty layer name in group '" + group + "'";
          return false;
        }
        if (out->Find(member) != nullptr) {
          *error = "layers.txt: layer '" + member + "' declared twice";
          return false;
        }
        out->layers.push_back({member, rank, group_id});
      }
    }
    ++rank;
  }
  if (out->layers.empty()) {
    *error = "layers.txt: no layers declared";
    return false;
  }
  return true;
}

bool ParseAllowlist(std::string_view text, std::vector<AllowlistEntry>* out,
                    std::string* error) {
  out->clear();
  std::istringstream lines{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const size_t sep = line.find(" -- ");
    if (sep == std::string::npos || Trim(line.substr(sep + 4)).empty()) {
      *error = "allowlist.txt:" + std::to_string(line_no) +
               ": entry without a ` -- justification` (every exception "
               "carries its reason)";
      return false;
    }
    const std::vector<std::string> fields =
        SplitWhitespace(line.substr(0, sep));
    if (fields.size() < 2 || fields.size() > 3) {
      *error = "allowlist.txt:" + std::to_string(line_no) +
               ": expected `RULE path [token] -- justification`";
      return false;
    }
    AllowlistEntry e;
    e.rule = fields[0];
    e.path = fields[1];
    if (fields.size() == 3) e.token = fields[2];
    e.justification = Trim(line.substr(sep + 4));
    e.line = line_no;
    out->push_back(std::move(e));
  }
  return true;
}

LintReport RunLint(const LintOptions& options,
                   const std::vector<SourceFile>& files) {
  LintReport report;
  report.files_scanned = static_cast<int>(files.size());

  std::vector<FileTokens> lexed;
  lexed.reserve(files.size());
  for (const auto& f : files) {
    lexed.push_back({&f, Lex(f.content)});
  }

  std::set<std::string> registry;
  BuildStatusRegistry(lexed, &registry);
  report.status_registry.assign(registry.begin(), registry.end());

  std::vector<Finding> findings;
  RunUncheckedStatus(lexed, registry, &findings);
  RunDeterminismBan(lexed, &findings);
  RunLayerTower(options.layers, files, &findings);
  RunPersistOrdering(lexed, &findings);
  RunNolintDiscipline(lexed, options.max_nolint, &findings,
                      &report.nolint_count);

  // Apply the allowlist; stale entries (matching nothing) are findings in
  // their own right, so exceptions disappear when their reason does.
  std::vector<bool> used(options.allowlist.size(), false);
  for (auto& f : findings) {
    for (size_t i = 0; i < options.allowlist.size(); ++i) {
      const AllowlistEntry& e = options.allowlist[i];
      if (e.rule == f.rule && e.path == f.file &&
          (e.token.empty() || e.token == f.token)) {
        used[i] = true;
        f.rule.clear();  // mark suppressed
        break;
      }
    }
  }
  for (auto& f : findings) {
    if (!f.rule.empty()) report.findings.push_back(std::move(f));
  }
  for (size_t i = 0; i < options.allowlist.size(); ++i) {
    if (!used[i]) {
      const AllowlistEntry& e = options.allowlist[i];
      report.findings.push_back(
          {"config", "", 0, e.token,
           "stale allowlist entry (allowlist.txt:" + std::to_string(e.line) +
               ": " + e.rule + " " + e.path +
               ") matches no finding — delete it"});
    }
  }
  return report;
}

bool CollectTree(const std::string& root, std::vector<SourceFile>* out,
                 std::string* error) {
  namespace fs = std::filesystem;
  out->clear();
  const char* kDirs[] = {"include", "src", "examples", "bench", "tests",
                         "tools"};
  for (const char* dir : kDirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        *error = "cannot read " + it->path().string();
        return false;
      }
      std::ostringstream content;
      content << in.rdbuf();
      const std::string rel =
          fs::relative(it->path(), root, ec).generic_string();
      out->push_back({rel, content.str()});
    }
    if (ec) {
      *error = "walking " + base.string() + ": " + ec.message();
      return false;
    }
  }
  std::sort(out->begin(), out->end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

}  // namespace cksafe_lint
