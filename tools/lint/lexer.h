// A lightweight C++ lexer for cksafe_lint.
//
// The lint rules (docs/STATIC_ANALYSIS.md) need far less than a real C++
// front end: identifiers in call position, matched parentheses, comment
// text (for the NOLINT discipline rule), and nothing from inside string
// literals. This lexer produces exactly that — a flat token stream with
// line numbers, where comments are tokens (so rules can inspect them) and
// string/character literals are single opaque tokens (so `"rand("` inside
// a diagnostic message can never trip the determinism rule). It
// understands line/block comments, raw strings R"delim(...)delim", digit
// separators, and the handful of multi-character operators the rules care
// about (`::`, `->`); everything else is a single-character punctuator.
//
// It is deliberately independent of the cksafe library: the linter must
// stay buildable even when the library itself is mid-refactor.

#ifndef CKSAFE_TOOLS_LINT_LEXER_H_
#define CKSAFE_TOOLS_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cksafe_lint {

enum class TokenKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*  (keywords are identifiers here)
  kNumber,      // pp-number, including hex/exponents/digit separators
  kString,      // "...", R"d(...)d", '...'; text() is the raw literal
  kComment,     // // ... or /* ... */; text() includes the delimiters
  kPunct,       // one punctuator, or one of the multi-char ops :: ->
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool IsIdent(std::string_view t) const {
    return Is(TokenKind::kIdentifier, t);
  }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
};

/// Lexes a whole translation unit. Never fails: malformed input (an
/// unterminated literal, say) degrades to opaque tokens rather than an
/// error, because the linter must keep scanning the rest of the tree.
std::vector<Token> Lex(std::string_view source);

/// Index of the previous token at `i` that is not a comment, or -1.
int PrevSignificant(const std::vector<Token>& tokens, int i);

/// Index of the next token after `i` that is not a comment, or -1.
int NextSignificant(const std::vector<Token>& tokens, int i);

/// Given `tokens[open]` == "(", returns the index of its matching ")"
/// (ignoring parens inside comments/strings, which are opaque tokens),
/// or -1 when unbalanced.
int MatchParen(const std::vector<Token>& tokens, int open);

}  // namespace cksafe_lint

#endif  // CKSAFE_TOOLS_LINT_LEXER_H_
