#include "lexer.h"

#include <cctype>

namespace cksafe_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto peek = [&](size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };
  auto count_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      out.push_back({TokenKind::kComment, std::string(src.substr(i, end - i)),
                     line});
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t end = src.find("*/", i + 2);
      end = (end == std::string_view::npos) ? n : end + 2;
      std::string text(src.substr(i, end - i));
      out.push_back({TokenKind::kComment, text, line});
      count_lines(text);
      i = end;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        std::string closer = ")";
        closer += std::string(src.substr(i + 2, d - (i + 2)));
        closer += '"';
        size_t end = src.find(closer, d + 1);
        end = (end == std::string_view::npos) ? n : end + closer.size();
        std::string text(src.substr(i, end - i));
        out.push_back({TokenKind::kString, text, line});
        count_lines(text);
        i = end;
        continue;
      }
      // Not actually a raw string ("R" the identifier); fall through.
    }

    // String / character literal (escapes honored, never spans lines in
    // well-formed code; on a missing closer we stop at end of line so the
    // rest of the file still lexes).
    if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && src[j] != c && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n && src[j] == c) ++j;
      out.push_back({TokenKind::kString, std::string(src.substr(i, j - i)),
                     line});
      i = j;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.push_back({TokenKind::kIdentifier,
                     std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // pp-number: a digit, or '.' followed by a digit. Consumes exponent
    // signs and digit separators so `1'000e+3` is one token.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back({TokenKind::kNumber, std::string(src.substr(i, j - i)),
                     line});
      i = j;
      continue;
    }

    // Multi-char operators the rules need to walk member chains.
    if (c == ':' && peek(1) == ':') {
      out.push_back({TokenKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.push_back({TokenKind::kPunct, "->", line});
      i += 2;
      continue;
    }

    out.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

int PrevSignificant(const std::vector<Token>& tokens, int i) {
  for (int j = i - 1; j >= 0; --j) {
    if (tokens[j].kind != TokenKind::kComment) return j;
  }
  return -1;
}

int NextSignificant(const std::vector<Token>& tokens, int i) {
  for (int j = i + 1; j < static_cast<int>(tokens.size()); ++j) {
    if (tokens[j].kind != TokenKind::kComment) return j;
  }
  return -1;
}

int MatchParen(const std::vector<Token>& tokens, int open) {
  int depth = 0;
  for (int j = open; j < static_cast<int>(tokens.size()); ++j) {
    if (tokens[j].IsPunct("(")) ++depth;
    if (tokens[j].IsPunct(")")) {
      if (--depth == 0) return j;
    }
  }
  return -1;
}

}  // namespace cksafe_lint
