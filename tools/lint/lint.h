// cksafe_lint: project-invariant static analysis.
//
// The rules enforce contracts that hold the cksafe tower together but
// that no unit test can reliably catch (docs/STATIC_ANALYSIS.md is the
// user-facing catalog):
//
//   L1 unchecked-status   a call returning Status/StatusOr whose result
//                         is discarded. The compiler enforces this where
//                         it can ([[nodiscard]] + -Werror=unused-result);
//                         the rule additionally flags `(void)`-cast
//                         discards and keeps non-default build configs
//                         honest. The set of Status-returning functions
//                         is *derived* by scanning the real headers, not
//                         hand-maintained.
//   L2 determinism-ban    nondeterminism sources (rand/time/clock/
//                         std::*_distribution/...) in the subsystems
//                         whose outputs must be byte-identical across
//                         runs and compilers: foundry/, core/, persist/,
//                         util/page_io. Foundry *generator* TUs are
//                         additionally floating-point-free (PR 6's
//                         integer-only contract).
//   L3 layer-tower        every `#include "cksafe/..."` edge must respect
//                         the layer DAG declared in tools/lint/layers.txt
//                         (the docs/ARCHITECTURE.md tower). Same-rank
//                         edges are only legal inside an explicitly
//                         declared cohesive group (`core+simd`,
//                         `persist+serve`).
//   L4 persist-ordering   direct AppendFile/RandomReadFile/.Sync() use
//                         outside persist/ + util/page_io. The manifest
//                         owns the commit point; ad-hoc file IO elsewhere
//                         can reorder writes around it.
//   L5 nolint-discipline  every NOLINT must name its check and carry a
//                         trailing `: reason`, and the tree-wide NOLINT
//                         count is capped so suppressions stay the
//                         exception.
//
// Exceptions live in tools/lint/allowlist.txt; every entry carries a
// written justification and unused entries are themselves findings, so
// the allowlist cannot rot.

#ifndef CKSAFE_TOOLS_LINT_LINT_H_
#define CKSAFE_TOOLS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace cksafe_lint {

/// One source file presented to the linter. `path` is repo-root-relative
/// with forward slashes (rules dispatch on it); tests feed synthetic
/// paths with embedded snippet contents.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation (or configuration error, rule "config").
struct Finding {
  std::string rule;     // "L1".."L5" or "config"
  std::string file;     // root-relative path ("" for config findings)
  int line = 0;         // 1-based; 0 when not tied to a line
  std::string token;    // the offending identifier, for allowlist matching
  std::string message;

  std::string ToString() const;
};

/// The layer DAG from layers.txt: ranks bottom-up; each rank holds one or
/// more groups; members of one group may include each other, members of
/// different groups (same or different rank) may only include strictly
/// lower ranks.
struct LayerConfig {
  struct Layer {
    std::string name;
    int rank = 0;
    int group = 0;  // globally unique group id
  };
  std::vector<Layer> layers;

  const Layer* Find(std::string_view name) const;
};

/// One allowlist exception: rule + path (+ optional token), with a
/// mandatory justification.
struct AllowlistEntry {
  std::string rule;
  std::string path;
  std::string token;  // empty = any token in that file
  std::string justification;
  int line = 0;  // line in allowlist.txt, for stale-entry reporting
};

struct LintOptions {
  LayerConfig layers;
  std::vector<AllowlistEntry> allowlist;
  // Hard cap on tree-wide NOLINT suppressions (L5). Raising it is a
  // reviewed change to this default or an explicit --max-nolint.
  int max_nolint = 8;
};

struct LintReport {
  std::vector<Finding> findings;
  int files_scanned = 0;
  int nolint_count = 0;
  // Status/StatusOr-returning function names derived from the headers
  // (exposed for --dump-registry and the self-scan test's sanity checks).
  std::vector<std::string> status_registry;
};

/// Parses layers.txt. Format, one rank per line, bottom-up:
///   util
///   hierarchy knowledge        # same rank, independent groups
///   core+simd                  # one cohesive group, mutual includes OK
/// `#` starts a comment. Returns false and sets `error` on malformed
/// input (duplicate layer, empty group, ...).
bool ParseLayerConfig(std::string_view text, LayerConfig* out,
                      std::string* error);

/// Parses allowlist.txt. Format, one entry per line:
///   L4 tests/persist_test.cc Sync -- codec tests write torn bytes ...
///   L2 src/foundry/x.cc -- <justification>
/// The ` -- justification` part is mandatory and non-empty.
bool ParseAllowlist(std::string_view text, std::vector<AllowlistEntry>* out,
                    std::string* error);

/// Runs every rule over `files` (paths root-relative). Pure function of
/// its inputs: the same tree and config always produce the same report.
LintReport RunLint(const LintOptions& options,
                   const std::vector<SourceFile>& files);

/// Collects the lintable tree (include/ src/ examples/ bench/ tests/
/// tools/, extensions .h/.cc) under `root`. Returns false on IO errors.
bool CollectTree(const std::string& root, std::vector<SourceFile>* out,
                 std::string* error);

}  // namespace cksafe_lint

#endif  // CKSAFE_TOOLS_LINT_LINT_H_
