// cksafe_lint CLI. Usage:
//
//   cksafe_lint --root=REPO_ROOT [--layers=FILE] [--allowlist=FILE]
//               [--max-nolint=N] [--dump-registry]
//
// Scans include/ src/ examples/ bench/ tests/ tools/ under the root,
// runs rules L1-L5 (see lint.h / docs/STATIC_ANALYSIS.md), prints every
// finding as `file:line: [rule] message`, and exits nonzero when any
// survive the allowlist. Exit codes: 0 clean, 1 findings, 2 bad
// configuration (unreadable tree, malformed layers.txt/allowlist.txt).

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint.h"

namespace {

bool ReadFileOrDie(const std::string& path, std::string* out,
                   bool required) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (required) {
      std::cerr << "cksafe_lint: cannot read " << path << "\n";
    }
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string layers_path;
  std::string allowlist_path;
  int max_nolint = 8;
  bool dump_registry = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* root_v = value("--root=")) {
      root = root_v;
    } else if (const char* layers_v = value("--layers=")) {
      layers_path = layers_v;
    } else if (const char* allow_v = value("--allowlist=")) {
      allowlist_path = allow_v;
    } else if (const char* nolint_v = value("--max-nolint=")) {
      max_nolint = std::atoi(nolint_v);
    } else if (arg == "--dump-registry") {
      dump_registry = true;
    } else {
      std::cerr << "cksafe_lint: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "cksafe_lint: --root=REPO_ROOT is required\n";
    return 2;
  }
  if (layers_path.empty()) layers_path = root + "/tools/lint/layers.txt";
  if (allowlist_path.empty())
    allowlist_path = root + "/tools/lint/allowlist.txt";

  cksafe_lint::LintOptions options;
  options.max_nolint = max_nolint;
  std::string text, error;
  if (!ReadFileOrDie(layers_path, &text, /*required=*/true)) return 2;
  if (!cksafe_lint::ParseLayerConfig(text, &options.layers, &error)) {
    std::cerr << "cksafe_lint: " << error << "\n";
    return 2;
  }
  // The allowlist is optional on disk (an absent file means "no
  // exceptions"), but malformed entries are fatal.
  if (ReadFileOrDie(allowlist_path, &text, /*required=*/false)) {
    if (!cksafe_lint::ParseAllowlist(text, &options.allowlist, &error)) {
      std::cerr << "cksafe_lint: " << error << "\n";
      return 2;
    }
  }

  std::vector<cksafe_lint::SourceFile> files;
  if (!cksafe_lint::CollectTree(root, &files, &error)) {
    std::cerr << "cksafe_lint: " << error << "\n";
    return 2;
  }

  const cksafe_lint::LintReport report =
      cksafe_lint::RunLint(options, files);

  if (dump_registry) {
    std::cout << "# Status/StatusOr-returning functions derived from "
                 "include/ ("
              << report.status_registry.size() << "):\n";
    for (const auto& name : report.status_registry) {
      std::cout << "  " << name << "\n";
    }
  }

  for (const auto& f : report.findings) {
    std::cout << f.ToString() << "\n";
  }
  std::cout << "cksafe_lint: " << report.files_scanned << " files, "
            << report.findings.size() << " findings, "
            << report.nolint_count << "/" << max_nolint
            << " NOLINT suppressions\n";
  return report.findings.empty() ? 0 : 1;
}
