// cksafe_cli — command-line front end for the whole library.
//
//   cksafe_cli analyze  [data flags] --node=... [--max_k --c --k]
//   cksafe_cli publish  [data flags] --c --k [--objective --out --out_qit --out_st]
//   cksafe_cli multi    [data flags] --policies=gold=0.5:4,free=0.8:1 [--objective]
//   cksafe_cli serve    [data flags] --replay=FILE [--policies --readers
//                       --stream_batches --queue --rounds --persist=DIR]
//   cksafe_cli fleet    [data flags] [--replay=FILE | --queries=N] [--shards
//                       --policies --readers --rounds --queue --migrations
//                       --persist=DIR --json=PATH]
//   cksafe_cli persist  --dir=DIR [--dump] [--verify]
//   cksafe_cli audit    [data flags] --node=... --knowledge=FILE [--approx]
//   cksafe_cli fig5     [--rows --seed --adult_csv --max_k]
//   cksafe_cli fig6     [--rows --seed --adult_csv]
//   cksafe_cli foundry  [--scenario=NAME | --rows --seed] [--out=PATH]
//   cksafe_cli scenario [--list | --scenario=NAME] [--scale=X]
//
// Data flags (analyze / publish / audit):
//   --adult              use the built-in synthetic Adult workload
//   --rows, --seed       synthetic Adult size / seed
//   --adult_csv=PATH     the genuine UCI adult.data
//   --input=PATH         any CSV (header row; schema inferred) with
//   --sensitive=NAME       the sensitive column and
//   --qi=A,B,C             comma-separated quasi-identifier columns
//                          (default ladders: doubling intervals /
//                           suppression; see MakeDefaultHierarchy)
//   --node=3,2,1,1       generalization levels (default: all zeros)
//
// Examples:
//   cksafe_cli analyze --adult --rows=10000 --node=3,2,1,1 --max_k=13
//   cksafe_cli publish --adult --c=0.6 --k=3 --out=/tmp/release.csv
//   cksafe_cli multi --adult --rows=2000 --policies=gold=0.5:4,std=0.7:2,free=0.85:1
//   cksafe_cli analyze --input=patients.csv --sensitive=Disease --qi=Age,Sex,Zip

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/diversity.h"
#include "cksafe/anon/release.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/data/csv_table.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/exact/sampler.h"
#include "cksafe/experiments/figures.h"
#include "cksafe/foundry/fingerprint.h"
#include "cksafe/foundry/scenario.h"
#include "cksafe/foundry/workload_foundry.h"
#include "cksafe/knowledge/parser.h"
#include "cksafe/persist/durable_store.h"
#include "cksafe/search/publisher.h"
#include "cksafe/serve/query_router.h"
#include "cksafe/serve/serving_engine.h"
#include "cksafe/shard/fleet.h"
#include "cksafe/stream/multi_policy_publisher.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/string_util.h"
#include "cksafe/util/text_table.h"

namespace cksafe {
namespace {

struct CliConfig {
  // Data source.
  bool adult = false;
  int64_t rows = 10000;
  int64_t seed = 20070419;
  std::string adult_csv;
  std::string input;
  std::string sensitive;
  std::string qi;  // comma-separated
  std::string node;
  // Analysis.
  int64_t max_k = 6;
  double c = 0.7;
  int64_t k = 3;
  std::string objective = "discernibility";
  // Publishing outputs.
  std::string out;
  std::string out_qit;
  std::string out_st;
  // Audit.
  std::string knowledge;
  bool approx = false;
  // Multi-tenant publishing: comma-separated [name=]c:k policies.
  std::string policies;
  // Serving (the `serve` replay driver).
  std::string replay;
  int64_t readers = 4;
  int64_t queue = 4096;
  int64_t stream_batches = 0;
  int64_t rounds = 1;
  // Fleet (the multi-process shard replay driver).
  int64_t shards = 2;
  int64_t queries = 20000;
  int64_t migrations = 0;
  std::string json;
  // Foundry / scenario catalog.
  std::string scenario;
  double scale = 1.0;
  bool list = false;
  // Durable store (serve --persist=DIR writes through; the `persist`
  // command inspects/audits a store directory).
  std::string persist;
  std::string dir;
  int64_t pool_pages = 64;
  bool dump = false;
  bool verify = false;
};

struct LoadedData {
  Table table;
  std::vector<QuasiIdentifier> qis;
  size_t sensitive_column;
};

StatusOr<LoadedData> LoadData(const CliConfig& config) {
  if (config.adult || !config.adult_csv.empty()) {
    Table table = [&] {
      if (!config.adult_csv.empty()) {
        auto loaded = LoadAdultCsv(config.adult_csv);
        CKSAFE_CHECK(loaded.ok()) << loaded.status().ToString();
        return *std::move(loaded);
      }
      return GenerateSyntheticAdult(static_cast<size_t>(config.rows),
                                    static_cast<uint64_t>(config.seed));
    }();
    CKSAFE_ASSIGN_OR_RETURN(std::vector<QuasiIdentifier> qis,
                            AdultQuasiIdentifiers());
    return LoadedData{std::move(table), std::move(qis),
                      kAdultOccupationColumn};
  }
  if (config.input.empty()) {
    return Status::InvalidArgument(
        "need a data source: --adult, --adult_csv=... or --input=...");
  }
  CKSAFE_ASSIGN_OR_RETURN(Table table, TableFromCsv(config.input));
  if (config.sensitive.empty()) {
    return Status::InvalidArgument("--input requires --sensitive=<column>");
  }
  CKSAFE_ASSIGN_OR_RETURN(size_t sensitive_column,
                          table.schema().IndexOf(config.sensitive));
  if (config.qi.empty()) {
    return Status::InvalidArgument("--input requires --qi=<col,col,...>");
  }
  std::vector<QuasiIdentifier> qis;
  for (const std::string& raw : Split(config.qi, ',')) {
    const std::string name(Trim(raw));
    CKSAFE_ASSIGN_OR_RETURN(size_t column, table.schema().IndexOf(name));
    if (column == sensitive_column) {
      return Status::InvalidArgument(
          "sensitive column cannot be a quasi-identifier: " + name);
    }
    qis.push_back(QuasiIdentifier{
        column, MakeDefaultHierarchy(table.schema().attribute(column))});
  }
  return LoadedData{std::move(table), std::move(qis), sensitive_column};
}

// Flag-level validation of attacker powers: an absurd budget surfaces as a
// clean flag error *before* any data loads, instead of a CHECK-abort (or a
// multi-gigabyte DP allocation) deep in the sweep.
Status ValidateAttackerPower(const char* flag, int64_t value) {
  if (value < 0) {
    return Status::InvalidArgument(
        StrFormat("--%s must be non-negative, got %lld", flag,
                  static_cast<long long>(value)));
  }
  const Status budget =
      Minimize2Forward::ValidateBudget(static_cast<size_t>(value));
  if (!budget.ok()) {
    return Status::OutOfRange(
        StrFormat("--%s: %s", flag, budget.message().c_str()));
  }
  return Status::OK();
}

StatusOr<LatticeNode> ParseNode(const std::string& spec,
                                const std::vector<QuasiIdentifier>& qis) {
  LatticeNode node(qis.size(), 0);
  if (spec.empty()) return node;
  const std::vector<std::string> parts = Split(spec, ',');
  if (parts.size() != qis.size()) {
    return Status::InvalidArgument(
        StrFormat("--node has %zu levels but there are %zu quasi-identifiers",
                  parts.size(), qis.size()));
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    CKSAFE_ASSIGN_OR_RETURN(int64_t level, ParseInt64(parts[i]));
    if (level < 0 ||
        static_cast<size_t>(level) >= qis[i].hierarchy->num_levels()) {
      return Status::OutOfRange(StrFormat(
          "level %lld out of range for quasi-identifier %zu (max %zu)",
          static_cast<long long>(level), i,
          qis[i].hierarchy->num_levels() - 1));
    }
    node[i] = static_cast<int>(level);
  }
  return node;
}

Status RunAnalyze(const CliConfig& config) {
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("k", config.k));
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("max_k", config.max_k));
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));
  CKSAFE_ASSIGN_OR_RETURN(LatticeNode node, ParseNode(config.node, data.qis));
  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeAtNode(data.table, data.qis, node, data.sensitive_column));

  std::printf("table: %zu rows; node: [", data.table.num_rows());
  for (size_t i = 0; i < node.size(); ++i) {
    std::printf("%s%d", i ? "," : "", node[i]);
  }
  std::printf("]; buckets: %zu; min bucket size: %u (k-anonymity)\n",
              bucketization.num_buckets(), bucketization.MinBucketSize());
  std::printf("min bucket entropy: %.4f nats (entropy l-diversity l=%.2f); "
              "distinct l-diversity: %u\n",
              bucketization.MinBucketEntropyNats(),
              MaxEntropyL(bucketization), MaxDistinctL(bucketization));

  DisclosureAnalyzer analyzer(bucketization);
  KnowledgePrinter printer(data.table, data.sensitive_column);
  TextTable curve;
  curve.SetHeader({"k", "implication", "negation"});
  const std::vector<double> imp =
      analyzer.ImplicationCurve(static_cast<size_t>(config.max_k));
  const std::vector<double> neg =
      analyzer.NegationCurve(static_cast<size_t>(config.max_k));
  for (size_t k = 0; k < imp.size(); ++k) {
    curve.AddRow({std::to_string(k), TextTable::FormatDouble(imp[k]),
                  TextTable::FormatDouble(neg[k])});
  }
  std::printf("\nworst-case disclosure vs. attacker power:\n%s",
              curve.Render().c_str());

  const WorstCaseDisclosure worst =
      analyzer.MaxDisclosureImplications(static_cast<size_t>(config.k));
  // The verdict compares in log space (exact even where the printed
  // disclosure saturates at 1.0 — see README "Numerics").
  std::printf("\n(c=%.2f, k=%lld)-safe: %s  (max disclosure %.4f)\n", config.c,
              static_cast<long long>(config.k),
              IsSafeLogRatio(worst.log_r_min, config.c) ? "YES" : "NO",
              worst.disclosure);
  if (!worst.antecedents.empty()) {
    std::printf("worst-case knowledge: %s\n",
                printer.FormulaToString(worst.ToFormula()).c_str());
  }

  // Per-bucket vulnerability at the configured k: which groups carry the
  // residual risk.
  const std::vector<double> per_bucket =
      analyzer.PerBucketDisclosure(static_cast<size_t>(config.k));
  std::vector<size_t> order(per_bucket.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return per_bucket[a] > per_bucket[b];
  });
  TextTable vulnerable;
  vulnerable.SetHeader({"bucket", "quasi-identifiers", "n", "worst-case"});
  for (size_t i = 0; i < order.size() && i < 10; ++i) {
    const Bucket& bucket = bucketization.bucket(order[i]);
    vulnerable.AddRow({std::to_string(order[i]), bucket.qi_label,
                       std::to_string(bucket.size()),
                       TextTable::FormatDouble(per_bucket[order[i]])});
  }
  std::printf("\nmost vulnerable buckets at k=%lld:\n%s",
              static_cast<long long>(config.k), vulnerable.Render().c_str());
  return Status::OK();
}

StatusOr<UtilityObjective> ParseObjective(const std::string& name) {
  if (name == "discernibility") return UtilityObjective::kDiscernibility;
  if (name == "avg_class_size") return UtilityObjective::kAvgClassSize;
  if (name == "height") return UtilityObjective::kHeight;
  if (name == "loss") return UtilityObjective::kLoss;
  return Status::InvalidArgument("unknown --objective " + name);
}

Status RunPublish(const CliConfig& config) {
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("k", config.k));
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));

  PublisherOptions options;
  options.c = config.c;
  options.k = static_cast<size_t>(config.k);
  options.seed = static_cast<uint64_t>(config.seed);
  CKSAFE_ASSIGN_OR_RETURN(options.objective, ParseObjective(config.objective));

  Publisher publisher(options);
  CKSAFE_ASSIGN_OR_RETURN(
      PublishedRelease release,
      publisher.Publish(data.table, data.qis, data.sensitive_column));
  std::printf("%s", Publisher::Summary(release, data.table,
                                       data.sensitive_column)
                        .c_str());

  if (!config.out.empty()) {
    CKSAFE_ASSIGN_OR_RETURN(
        GeneralizedRelease generalized,
        BuildGeneralizedRelease(data.table, data.qis, release.node,
                                data.sensitive_column, options.seed));
    CKSAFE_RETURN_IF_ERROR(generalized.WriteCsv(config.out));
    std::printf("wrote generalized release: %s (%zu rows)\n",
                config.out.c_str(), generalized.rows.size());
  }
  if (!config.out_qit.empty() && !config.out_st.empty()) {
    CKSAFE_ASSIGN_OR_RETURN(
        AnatomyRelease anatomy,
        BuildAnatomyRelease(data.table, data.qis, release.bucketization,
                            data.sensitive_column));
    CKSAFE_RETURN_IF_ERROR(anatomy.WriteCsv(config.out_qit, config.out_st));
    std::printf("wrote Anatomy release: %s + %s\n", config.out_qit.c_str(),
                config.out_st.c_str());
  }
  return Status::OK();
}

// One parsed [name=]c:k tenant policy.
struct ParsedPolicy {
  std::string name;
  double c = 0.7;
  size_t k = 3;
};

// Parses the --policies flag ([name=]c:k, comma-separated), validating
// every attacker power through the budget gate.
StatusOr<std::vector<ParsedPolicy>> ParsePolicies(const std::string& flag) {
  std::vector<ParsedPolicy> policies;
  for (const std::string& raw : Split(flag, ',')) {
    std::string_view spec = Trim(raw);
    std::string name = "tenant" + std::to_string(policies.size());
    if (const size_t eq = spec.find('='); eq != std::string_view::npos) {
      name = std::string(Trim(spec.substr(0, eq)));
      spec = Trim(spec.substr(eq + 1));
    }
    const size_t colon = spec.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("policy must be [name=]c:k, got '" +
                                     std::string(raw) + "'");
    }
    CKSAFE_ASSIGN_OR_RETURN(double c,
                            ParseDouble(std::string(spec.substr(0, colon))));
    CKSAFE_ASSIGN_OR_RETURN(int64_t k,
                            ParseInt64(std::string(spec.substr(colon + 1))));
    if (c <= 0.0) {
      return Status::OutOfRange("policy needs c > 0: " + std::string(raw));
    }
    if (Status power = ValidateAttackerPower("policies", k); !power.ok()) {
      // Minimize2Forward::kMaxAnalysisBudget is the user-facing
      // atom-budget ceiling; reject here as a flag error instead of
      // aborting (or OOMing on the O(k^3) memo) deep in the sweep.
      return power;
    }
    policies.push_back(ParsedPolicy{std::move(name), c, static_cast<size_t>(k)});
  }
  return policies;
}

// Serves every tenant policy from ONE multi-policy lattice sweep: each
// node's disclosure profile is computed once and classified against all
// (c_i, k_i), so adding a tenant costs classification, not a search.
Status RunMulti(const CliConfig& config) {
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));
  if (config.policies.empty()) {
    return Status::InvalidArgument(
        "multi requires --policies=[name=]c:k,[name=]c:k,...");
  }

  PublisherOptions base;
  base.seed = static_cast<uint64_t>(config.seed);
  CKSAFE_ASSIGN_OR_RETURN(base.objective, ParseObjective(config.objective));

  MultiPolicyPublisher publisher(std::move(data.table), data.qis,
                                 data.sensitive_column, base);
  CKSAFE_ASSIGN_OR_RETURN(std::vector<ParsedPolicy> policies,
                          ParsePolicies(config.policies));
  for (ParsedPolicy& policy : policies) {
    publisher.AddTenant(std::move(policy.name), policy.c, policy.k);
  }

  CKSAFE_ASSIGN_OR_RETURN(std::vector<TenantRelease> releases,
                          publisher.PublishAll());
  TextTable out;
  out.SetHeader({"tenant", "c", "k", "node", "buckets", "worst-case",
                 "utility(" + config.objective + ")"});
  for (const TenantRelease& tenant : releases) {
    std::string node = "-";
    std::string buckets = "-";
    std::string worst = "-";
    std::string utility = tenant.release.ok()
                              ? TextTable::FormatDouble(UtilityScore(
                                    tenant.release->utility, base.objective))
                              : tenant.release.status().ToString();
    if (tenant.release.ok()) {
      node = "[";
      for (size_t i = 0; i < tenant.release->node.size(); ++i) {
        node += StrFormat("%s%d", i ? "," : "", tenant.release->node[i]);
      }
      node += "]";
      buckets = std::to_string(tenant.release->bucketization.num_buckets());
      worst = TextTable::FormatDouble(tenant.release->worst_case.disclosure);
    }
    out.AddRow({tenant.tenant, TextTable::FormatDouble(tenant.policy.c),
                std::to_string(tenant.policy.k), node, buckets, worst,
                utility});
  }
  std::printf("%zu tenants served from one sweep over %zu rows:\n%s",
              releases.size(), publisher.table().num_rows(),
              out.Render().c_str());
  const MultiPolicySearchStats& stats = publisher.last_search_stats();
  std::printf("shared sweep: %llu profiles answered %llu per-tenant "
              "verdicts (%llu served without their own evaluation)\n",
              static_cast<unsigned long long>(stats.profiles_computed),
              static_cast<unsigned long long>(stats.verdicts),
              static_cast<unsigned long long>(stats.shared_verdicts()));
  return Status::OK();
}

// --- serve: the replay driver over the serve/ subsystem --------------------

// One replayed query plus everything recorded about its serving.
struct ReplayRecord {
  Query query;
  StatusOr<QueryAnswer> answer = Status::FailedPrecondition("not served");
  int64_t latency_ns = 0;
};

// Parses a replay file: one `tenant,kind,c,k,bucket` query per line, where
// kind is safe|disclosure|profile|bucket. Blank lines and '#' comments are
// skipped.
StatusOr<std::vector<Query>> LoadReplayQueries(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read " + path);
  std::vector<Query> queries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> fields = Split(std::string(trimmed), ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: want tenant,kind,c,k,bucket (5 fields), got %zu",
                    path.c_str(), line_no, fields.size()));
    }
    Query query;
    query.tenant = std::string(Trim(fields[0]));
    const std::string kind(Trim(fields[1]));
    if (kind == "safe") {
      query.kind = QueryKind::kIsCkSafe;
    } else if (kind == "disclosure") {
      query.kind = QueryKind::kDisclosure;
    } else if (kind == "profile") {
      query.kind = QueryKind::kProfileAtK;
    } else if (kind == "bucket") {
      query.kind = QueryKind::kPerBucket;
    } else {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: unknown kind '%s'", path.c_str(), line_no,
                    kind.c_str()));
    }
    CKSAFE_ASSIGN_OR_RETURN(query.c, ParseDouble(std::string(Trim(fields[2]))));
    CKSAFE_ASSIGN_OR_RETURN(int64_t k, ParseInt64(std::string(Trim(fields[3]))));
    CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("replay k", k));
    query.k = static_cast<size_t>(k);
    CKSAFE_ASSIGN_OR_RETURN(int64_t bucket,
                            ParseInt64(std::string(Trim(fields[4]))));
    if (bucket < 0) {
      return Status::OutOfRange(
          StrFormat("%s:%zu: bucket must be >= 0", path.c_str(), line_no));
    }
    query.bucket = static_cast<size_t>(bucket);
    queries.push_back(std::move(query));
  }
  if (queries.empty()) {
    return Status::InvalidArgument(path + " holds no queries");
  }
  return queries;
}

// Extracts rows [begin, end) of `table` as AddBatch-ready cell vectors.
std::vector<std::vector<int32_t>> RowCells(const Table& table, size_t begin,
                                           size_t end) {
  std::vector<std::vector<int32_t>> rows;
  rows.reserve(end - begin);
  for (size_t row = begin; row < end; ++row) {
    std::vector<int32_t> cells(table.num_columns());
    for (size_t col = 0; col < table.num_columns(); ++col) {
      cells[col] = table.at(static_cast<PersonId>(row), col);
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

// Replays a query file against the serving layer: publishes every tenant
// policy through one MultiPolicyPublisher, spreads the queries over
// --readers threads calling the batching QueryRouter, optionally streams
// additional row batches through the publisher (each re-publish atomically
// swaps new snapshots under the live readers), then verifies every served
// answer bit-identically against a fresh synchronous DisclosureAnalyzer
// over the snapshot the answer names.
Status RunServe(const CliConfig& config) {
  if (config.replay.empty()) {
    return Status::InvalidArgument("serve requires --replay=FILE");
  }
  if (config.readers < 1) {
    return Status::InvalidArgument("--readers must be >= 1");
  }
  if (config.rounds < 1) {
    return Status::InvalidArgument("--rounds must be >= 1");
  }
  if (config.queue < 1) {
    return Status::InvalidArgument("--queue must be >= 1");
  }
  if (config.stream_batches < 0) {
    return Status::InvalidArgument("--stream_batches must be >= 0");
  }
  CKSAFE_ASSIGN_OR_RETURN(std::vector<Query> replay,
                          LoadReplayQueries(config.replay));
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));

  std::vector<ParsedPolicy> policies;
  if (config.policies.empty()) {
    CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("k", config.k));
    policies.push_back(
        ParsedPolicy{"default", config.c, static_cast<size_t>(config.k)});
  } else {
    CKSAFE_ASSIGN_OR_RETURN(policies, ParsePolicies(config.policies));
  }

  PublisherOptions base;
  base.seed = static_cast<uint64_t>(config.seed);
  CKSAFE_ASSIGN_OR_RETURN(base.objective, ParseObjective(config.objective));

  // Hold back a slice of the table for streaming writes: the readers must
  // observe snapshot swaps mid-replay when --stream_batches > 0.
  const size_t total_rows = data.table.num_rows();
  const size_t batches = static_cast<size_t>(config.stream_batches);
  const size_t held_back =
      batches == 0 ? 0 : std::min(total_rows / 4, batches * 50);
  const size_t initial_rows = total_rows - held_back;
  Table initial = [&] {
    if (held_back == 0) return std::move(data.table);  // no copy needed
    Table truncated(data.table.schema());
    for (const auto& cells : RowCells(data.table, 0, initial_rows)) {
      CKSAFE_CHECK(truncated.AppendRow(cells).ok());
    }
    return truncated;
  }();

  MultiPolicyPublisher publisher(std::move(initial), data.qis,
                                 data.sensitive_column, base);
  for (const ParsedPolicy& policy : policies) {
    publisher.AddTenant(policy.name, policy.c, policy.k);
  }

  QueryRouter::Options router_options;
  router_options.queue_capacity = static_cast<size_t>(config.queue);
  std::unique_ptr<ServingEngine> engine_owner;
  if (config.persist.empty()) {
    engine_owner = std::make_unique<ServingEngine>(router_options);
  } else {
    DurableStoreOptions store_options;
    store_options.dir = config.persist;
    store_options.buffer_pool_pages = static_cast<size_t>(config.pool_pages);
    store_options.profile_max_k = static_cast<size_t>(config.max_k);
    CKSAFE_ASSIGN_OR_RETURN(
        engine_owner, ServingEngine::CreateDurable(std::move(store_options),
                                                   router_options));
    const RecoveryInfo& recovery = engine_owner->durable_store()->recovery();
    std::printf(
        "durable store %s: recovered %zu publishes across %zu tenants "
        "(%llu torn manifest bytes, %llu orphaned segment bytes discarded)\n",
        config.persist.c_str(), recovery.records, recovery.tenants,
        static_cast<unsigned long long>(recovery.manifest_torn_bytes),
        static_cast<unsigned long long>(recovery.segment_torn_bytes));
  }
  ServingEngine& engine = *engine_owner;

  // Registry of everything ever published, per (tenant, sequence): the
  // verification pass resolves each answer's named snapshot here.
  std::mutex registry_mu;
  std::map<std::pair<std::string, uint64_t>,
           std::shared_ptr<const ReleaseSnapshot>>
      registry;
  CKSAFE_ASSIGN_OR_RETURN(std::vector<TenantRelease> first_releases,
                          publisher.PublishAll());
  {
    for (const TenantRelease& release : first_releases) {
      if (!release.release.ok()) {
        std::printf("tenant %s: %s (not served)\n", release.tenant.c_str(),
                    release.release.status().ToString().c_str());
        continue;
      }
      CKSAFE_ASSIGN_OR_RETURN(
          const auto snapshot,
          engine.PublishRelease(release.tenant, *release.release,
                                publisher.table().num_rows()));
      std::lock_guard<std::mutex> lock(registry_mu);
      registry[{release.tenant, snapshot->sequence}] = snapshot;
    }
  }

  // Writer: stream held-back rows through the shared publisher; every
  // re-publish swaps fresh snapshots under the readers.
  std::thread writer;
  std::atomic<bool> writer_failed{false};
  if (batches > 0 && held_back > 0) {
    writer = std::thread([&] {
      const size_t per_batch = held_back / batches;
      for (size_t b = 0; b < batches; ++b) {
        const size_t begin = initial_rows + b * per_batch;
        const size_t end =
            b + 1 == batches ? total_rows : begin + per_batch;
        if (Status st = publisher.AddBatch(RowCells(data.table, begin, end));
            !st.ok()) {
          writer_failed = true;
          return;
        }
        auto releases = publisher.PublishAll();
        if (!releases.ok()) {
          writer_failed = true;
          return;
        }
        for (const TenantRelease& release : *releases) {
          if (!release.release.ok()) continue;
          auto snapshot = engine.PublishRelease(
              release.tenant, *release.release, publisher.table().num_rows());
          if (!snapshot.ok()) {
            writer_failed = true;
            return;
          }
          std::lock_guard<std::mutex> lock(registry_mu);
          registry[{release.tenant, (*snapshot)->sequence}] = *snapshot;
        }
      }
    });
  }

  // Readers: split the replayed queries round-robin across --readers
  // threads, --rounds times.
  const size_t readers = static_cast<size_t>(config.readers);
  const size_t rounds = static_cast<size_t>(config.rounds);
  std::vector<std::vector<ReplayRecord>> per_reader(readers);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> reader_threads;
  for (size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = r; i < replay.size(); i += readers) {
          ReplayRecord record;
          record.query = replay[i];
          const auto t0 = std::chrono::steady_clock::now();
          record.answer = engine.Ask(record.query);
          record.latency_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          per_reader[r].push_back(std::move(record));
        }
      }
    });
  }
  for (auto& thread : reader_threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (writer.joinable()) writer.join();
  if (writer_failed) {
    return Status::Internal("streaming writer failed to publish");
  }
  engine.router()->Stop();

  // Traffic summary.
  size_t ok_answers = 0;
  size_t error_answers = 0;
  std::vector<int64_t> latencies;
  for (const auto& records : per_reader) {
    for (const ReplayRecord& record : records) {
      record.answer.ok() ? ++ok_answers : ++error_answers;
      latencies.push_back(record.latency_ns);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) -> double {
    if (latencies.empty()) return 0.0;
    const size_t index = std::min(
        latencies.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies.size())));
    return static_cast<double>(latencies[index]) / 1e3;  // microseconds
  };
  const RouterStats stats = engine.router()->stats();
  std::printf(
      "served %zu queries (%zu ok, %zu errors) from %zu readers in %.3fs "
      "(%.0f queries/sec)\n",
      ok_answers + error_answers, ok_answers, error_answers, readers,
      elapsed_s, static_cast<double>(ok_answers + error_answers) / elapsed_s);
  std::printf("latency: p50 %.1fus  p99 %.1fus\n", percentile(0.50),
              percentile(0.99));
  std::printf(
      "router: %llu batches, %llu profile sweeps, %llu per-bucket sweeps, "
      "%llu snapshot reloads, %llu rejected; %.1f queries/sweep\n",
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.profile_sweeps),
      static_cast<unsigned long long>(stats.per_bucket_sweeps),
      static_cast<unsigned long long>(stats.snapshot_reloads),
      static_cast<unsigned long long>(stats.rejected),
      stats.CoalescingFactor());

  if (!config.persist.empty()) {
    // Reopen the directory exactly as a post-crash recovery would and
    // demand that every snapshot served this run reloads bit-identically.
    DurableStoreOptions reopen_options;
    reopen_options.dir = config.persist;
    reopen_options.buffer_pool_pages = static_cast<size_t>(config.pool_pages);
    CKSAFE_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> reopened,
                            DurableStore::Open(std::move(reopen_options)));
    size_t durable_checked = 0;
    for (const auto& [key, snapshot] : registry) {
      CKSAFE_ASSIGN_OR_RETURN(
          const std::shared_ptr<const ReleaseSnapshot> reloaded,
          reopened->LoadSnapshot(key.first, key.second));
      if (!SnapshotsBitIdentical(*reloaded, *snapshot)) {
        return Status::Internal(StrFormat(
            "rehydrated snapshot %llu of tenant %s differs from the served "
            "one",
            static_cast<unsigned long long>(key.second), key.first.c_str()));
      }
      ++durable_checked;
    }
    CKSAFE_ASSIGN_OR_RETURN(const DurableStore::VerifyReport audit,
                            reopened->Verify());
    std::printf(
        "durable store: %zu rehydrated snapshots bit-identical to served "
        "(%zu records, %zu pages audited)\n",
        durable_checked, audit.records, audit.pages);
  }

  // Verification: every OK answer must be bit-identical to a fresh
  // synchronous analyzer over the snapshot it names.
  size_t verified = 0;
  std::map<std::pair<std::string, uint64_t>,
           std::unique_ptr<DisclosureAnalyzer>>
      fresh_analyzers;
  for (const auto& records : per_reader) {
    for (const ReplayRecord& record : records) {
      if (!record.answer.ok()) continue;
      const Query& query = record.query;
      const QueryAnswer& answer = *record.answer;
      const auto key = std::make_pair(query.tenant, answer.snapshot_sequence);
      const auto snapshot_it = registry.find(key);
      if (snapshot_it == registry.end()) {
        return Status::Internal(StrFormat(
            "answer names unpublished snapshot %llu of tenant %s",
            static_cast<unsigned long long>(answer.snapshot_sequence),
            query.tenant.c_str()));
      }
      auto& analyzer = fresh_analyzers[key];
      if (analyzer == nullptr) {
        analyzer = std::make_unique<DisclosureAnalyzer>(
            snapshot_it->second->bucketization);
      }
      bool match = true;
      switch (query.kind) {
        case QueryKind::kIsCkSafe: {
          const WorstCaseDisclosure worst =
              analyzer->MaxDisclosureImplications(query.k);
          match = answer.safe == IsSafeLogRatio(worst.log_r_min, query.c) &&
                  answer.disclosure == worst.disclosure &&
                  answer.log_r == worst.log_r_min;
          break;
        }
        case QueryKind::kDisclosure: {
          const WorstCaseDisclosure worst =
              analyzer->MaxDisclosureImplications(query.k);
          match = answer.disclosure == worst.disclosure &&
                  answer.log_r == worst.log_r_min;
          break;
        }
        case QueryKind::kProfileAtK: {
          const DisclosureProfile profile = analyzer->Profile(query.k);
          match = answer.disclosure == profile.implication[query.k] &&
                  answer.negation == profile.negation[query.k];
          break;
        }
        case QueryKind::kPerBucket:
          match = answer.disclosure ==
                  analyzer->PerBucketDisclosure(query.k)[query.bucket];
          break;
      }
      if (!match) {
        return Status::Internal(StrFormat(
            "answer diverged from fresh analyzer (tenant %s, snapshot %llu)",
            query.tenant.c_str(),
            static_cast<unsigned long long>(answer.snapshot_sequence)));
      }
      ++verified;
    }
  }
  if (verified == 0) {
    // Don't print a vacuous success (the integration test pattern-matches
    // the verified line): a replay where nothing could be verified is
    // almost always a tenant-name mismatch between --policies and the
    // replay file.
    std::printf("nothing to verify: no query was answered successfully "
                "(do the replay file's tenants match --policies?)\n");
    return Status::OK();
  }
  std::printf("all %zu verified answers bit-identical to a fresh "
              "synchronous analyzer\n",
              verified);
  return Status::OK();
}

// --- fleet: the multi-process shard replay driver --------------------------

// One replayed fleet query plus everything recorded about its serving.
struct FleetRecord {
  Query query;
  size_t shard = 0;  ///< shard the query was routed to at submit time
  StatusOr<QueryAnswer> answer = Status::FailedPrecondition("not served");
  int64_t latency_ns = 0;
};

// Per-shard traffic aggregates for the report / JSON emit.
struct ShardTraffic {
  size_t ok = 0;
  size_t errors = 0;
  size_t shed = 0;  ///< ResourceExhausted (fleet window or shard queue)
  std::vector<int64_t> latencies_ns;
};

// Sorts in place; p in [0, 1); microseconds.
double PercentileUs(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return static_cast<double>((*latencies)[index]) / 1e3;
}

// Machine-readable E13 row (BENCHMARKS.md assembles BENCH_PR10.json from
// one of these per shard count).
Status WriteFleetJson(const CliConfig& config, size_t num_shards,
                      size_t total, size_t ok_answers, size_t error_answers,
                      size_t shed, double elapsed_s, double p50, double p99,
                      size_t migrations, const std::vector<ShardTraffic>& traffic,
                      std::vector<double> shard_p50,
                      std::vector<double> shard_p99) {
  std::ofstream out(config.json);
  if (!out) return Status::IOError("cannot write " + config.json);
  out << "{\n  \"experiment\": \"E13\",\n";
  out << "  \"shards\": " << num_shards << ",\n";
  out << "  \"clients\": " << config.readers << ",\n";
  out << "  \"queries\": " << total << ",\n";
  out << "  \"ok\": " << ok_answers << ",\n";
  out << "  \"errors\": " << error_answers << ",\n";
  out << "  \"shed\": " << shed << ",\n";
  out << "  \"migrations\": " << migrations << ",\n";
  out << StrFormat("  \"elapsed_s\": %.6f,\n", elapsed_s);
  out << StrFormat("  \"qps\": %.1f,\n",
                   static_cast<double>(total) / elapsed_s);
  out << StrFormat("  \"p50_us\": %.1f,\n  \"p99_us\": %.1f,\n", p50, p99);
  out << "  \"per_shard\": [\n";
  for (size_t s = 0; s < traffic.size(); ++s) {
    out << StrFormat(
        "    {\"shard\": %zu, \"ok\": %zu, \"errors\": %zu, \"shed\": %zu, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
        s, traffic[s].ok, traffic[s].errors, traffic[s].shed, shard_p50[s],
        shard_p99[s], s + 1 == traffic.size() ? "" : ",");
  }
  out << "  ]\n}\n";
  return Status::OK();
}

// Replays a workload against a forked multi-process shard fleet: publishes
// every tenant policy through one MultiPolicyPublisher and hands each
// release to its tenant's shard, then open-loop clients pipeline a window
// of submits per thread (sheds on ResourceExhausted instead of blocking),
// optionally churns live tenant migrations under the load, reports
// qps + p50/p99 per shard, and finally verifies every served answer
// bit-identically against a fresh synchronous DisclosureAnalyzer over the
// snapshot the answer names — across process boundaries, the wire codec,
// and any migrations.
Status RunFleet(const CliConfig& config) {
  if (config.shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (config.readers < 1) {
    return Status::InvalidArgument("--readers must be >= 1");
  }
  if (config.rounds < 1) {
    return Status::InvalidArgument("--rounds must be >= 1");
  }
  if (config.queue < 1) {
    return Status::InvalidArgument("--queue must be >= 1");
  }
  if (config.migrations < 0) {
    return Status::InvalidArgument("--migrations must be >= 0");
  }
  if (config.replay.empty() && config.queries < 1) {
    return Status::InvalidArgument("--queries must be >= 1");
  }
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("max_k", config.max_k));
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));

  std::vector<ParsedPolicy> policies;
  if (config.policies.empty()) {
    CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("k", config.k));
    policies.push_back(
        ParsedPolicy{"default", config.c, static_cast<size_t>(config.k)});
  } else {
    CKSAFE_ASSIGN_OR_RETURN(policies, ParsePolicies(config.policies));
  }
  std::vector<std::string> tenant_names;
  for (const ParsedPolicy& policy : policies) {
    tenant_names.push_back(policy.name);
  }

  // The workload: a replay file verbatim, or the seeded workload foundry
  // over the configured tenants.
  std::vector<Query> replay;
  if (!config.replay.empty()) {
    CKSAFE_ASSIGN_OR_RETURN(replay, LoadReplayQueries(config.replay));
  } else {
    WorkloadFoundryConfig workload;
    workload.seed = static_cast<uint64_t>(config.seed);
    workload.num_queries = static_cast<size_t>(config.queries);
    workload.tenants = tenant_names;
    workload.max_k = static_cast<size_t>(config.max_k);
    CKSAFE_ASSIGN_OR_RETURN(replay, GenerateWorkload(workload));
    std::printf("workload: %zu foundry queries (seed %llu), "
                "fingerprint %016llx\n",
                replay.size(), static_cast<unsigned long long>(workload.seed),
                static_cast<unsigned long long>(FingerprintWorkload(replay)));
  }

  // Socket directory: fresh and short-named (sockaddr_un caps the path).
  char socket_dir[] = "/tmp/cksafe-fleet-XXXXXX";
  if (mkdtemp(socket_dir) == nullptr) {
    return Status::IOError("mkdtemp failed for the fleet socket directory");
  }
  ShardFleetOptions fleet_options;
  fleet_options.num_shards = static_cast<size_t>(config.shards);
  fleet_options.socket_dir = socket_dir;
  fleet_options.durable_root = config.persist;
  fleet_options.router_queue_capacity = static_cast<size_t>(config.queue);
  fleet_options.buffer_pool_pages = static_cast<size_t>(config.pool_pages);
  auto fleet_or = ShardFleet::Start(std::move(fleet_options));
  if (!fleet_or.ok()) {
    ::rmdir(socket_dir);
    return fleet_or.status();
  }
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();
  const size_t num_shards = fleet->num_shards();

  // Publish every tenant policy from one shared sweep, each release to
  // its tenant's shard.
  PublisherOptions base;
  base.seed = static_cast<uint64_t>(config.seed);
  CKSAFE_ASSIGN_OR_RETURN(base.objective, ParseObjective(config.objective));
  MultiPolicyPublisher publisher(std::move(data.table), data.qis,
                                 data.sensitive_column, base);
  for (const ParsedPolicy& policy : policies) {
    publisher.AddTenant(policy.name, policy.c, policy.k);
  }
  CKSAFE_ASSIGN_OR_RETURN(std::vector<TenantRelease> releases,
                          publisher.PublishAll());
  size_t published = 0;
  for (const TenantRelease& release : releases) {
    if (!release.release.ok()) {
      std::printf("tenant %s: %s (not served)\n", release.tenant.c_str(),
                  release.release.status().ToString().c_str());
      continue;
    }
    CKSAFE_ASSIGN_OR_RETURN(
        const auto snapshot,
        fleet->Publish(release.tenant, *release.release,
                       publisher.table().num_rows()));
    std::printf("tenant %s -> shard %zu (snapshot %llu, %zu buckets)\n",
                release.tenant.c_str(), fleet->ShardOf(release.tenant),
                static_cast<unsigned long long>(snapshot->sequence),
                snapshot->bucketization.num_buckets());
    ++published;
  }
  if (published == 0) {
    return Status::InvalidArgument("no tenant produced a publishable release");
  }

  // Optional live-migration churn under the load: round-robin tenants to
  // their next shard while the clients replay.
  std::atomic<bool> stop_migrator{false};
  std::atomic<size_t> migrations_done{0};
  std::atomic<bool> migration_failed{false};
  std::thread migrator;
  if (config.migrations > 0 && num_shards > 1) {
    migrator = std::thread([&] {
      for (int64_t m = 0; m < config.migrations && !stop_migrator; ++m) {
        const std::string& tenant =
            tenant_names[static_cast<size_t>(m) % tenant_names.size()];
        const size_t target = (fleet->ShardOf(tenant) + 1) % num_shards;
        if (!fleet->MigrateTenant(tenant, target).ok()) {
          migration_failed = true;
          return;
        }
        ++migrations_done;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // Open-loop clients: each pipelines up to kClientWindow submits before
  // harvesting the oldest half, so the submit rate is not gated on
  // individual answers. Latency is submit-to-harvest, which includes any
  // head-of-line wait inside the harvesting client — the usual open-loop
  // pipelining artifact, consistent across shard counts.
  const size_t clients = static_cast<size_t>(config.readers);
  const size_t rounds = static_cast<size_t>(config.rounds);
  constexpr size_t kClientWindow = 256;
  std::vector<std::vector<FleetRecord>> per_client(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  for (size_t r = 0; r < clients; ++r) {
    client_threads.emplace_back([&, r] {
      struct InFlight {
        size_t record;  // index into `records`
        std::chrono::steady_clock::time_point t0;
        std::future<StatusOr<QueryAnswer>> future;
      };
      std::vector<FleetRecord>& records = per_client[r];
      std::deque<InFlight> window;
      const auto harvest = [&](size_t down_to) {
        while (window.size() > down_to) {
          InFlight call = std::move(window.front());
          window.pop_front();
          FleetRecord& record = records[call.record];
          record.answer = call.future.get();
          record.latency_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - call.t0)
                  .count();
        }
      };
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = r; i < replay.size(); i += clients) {
          FleetRecord record;
          record.query = replay[i];
          record.shard = fleet->ShardOf(record.query.tenant);
          records.push_back(std::move(record));
          const auto t0 = std::chrono::steady_clock::now();
          auto submitted = fleet->Submit(replay[i]);
          if (!submitted.ok()) {
            records.back().answer = submitted.status();
            records.back().latency_ns = 0;
            continue;
          }
          window.push_back(InFlight{records.size() - 1, t0,
                                    std::move(submitted).value()});
          if (window.size() >= kClientWindow) harvest(kClientWindow / 2);
        }
      }
      harvest(0);
    });
  }
  for (auto& thread : client_threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stop_migrator = true;
  if (migrator.joinable()) migrator.join();
  if (migration_failed) {
    return Status::Internal("live migration failed during the replay");
  }

  // Aggregate per shard. ResourceExhausted (window or shard queue) is
  // deliberate open-loop shedding, not an error.
  std::vector<ShardTraffic> traffic(num_shards);
  std::vector<int64_t> all_latencies;
  size_t ok_answers = 0;
  size_t error_answers = 0;
  size_t shed = 0;
  for (const auto& records : per_client) {
    for (const FleetRecord& record : records) {
      ShardTraffic& t = traffic[record.shard];
      if (record.answer.ok()) {
        ++t.ok;
        ++ok_answers;
        t.latencies_ns.push_back(record.latency_ns);
        all_latencies.push_back(record.latency_ns);
      } else if (record.answer.status().code() ==
                 StatusCode::kResourceExhausted) {
        ++t.shed;
        ++shed;
      } else {
        ++t.errors;
        ++error_answers;
      }
    }
  }
  const size_t total = ok_answers + error_answers + shed;
  std::printf(
      "fleet: %zu shards served %zu queries (%zu ok, %zu errors, %zu shed) "
      "from %zu clients in %.3fs (%.0f queries/sec)\n",
      num_shards, total, ok_answers, error_answers, shed, clients, elapsed_s,
      static_cast<double>(total) / elapsed_s);
  if (config.migrations > 0) {
    std::printf("migrations: %zu completed live during the replay\n",
                migrations_done.load());
  }
  const double p50 = PercentileUs(&all_latencies, 0.50);
  const double p99 = PercentileUs(&all_latencies, 0.99);
  std::printf("latency: p50 %.1fus  p99 %.1fus\n", p50, p99);

  std::vector<double> shard_p50(num_shards);
  std::vector<double> shard_p99(num_shards);
  TextTable shard_table;
  shard_table.SetHeader({"shard", "ok", "errors", "shed", "p50 us", "p99 us",
                         "batches", "coalesce", "tenants"});
  for (size_t s = 0; s < num_shards; ++s) {
    shard_p50[s] = PercentileUs(&traffic[s].latencies_ns, 0.50);
    shard_p99[s] = PercentileUs(&traffic[s].latencies_ns, 0.99);
    std::string batches = "-";
    std::string coalesce = "-";
    std::string tenants = "-";
    if (auto stats = fleet->PingShard(s); stats.ok()) {
      batches = std::to_string(stats->batches);
      const uint64_t sweeps = stats->profile_sweeps + stats->per_bucket_sweeps;
      coalesce = TextTable::FormatDouble(
          sweeps == 0 ? static_cast<double>(stats->answered)
                      : static_cast<double>(stats->answered) /
                            static_cast<double>(sweeps));
      tenants = std::to_string(stats->tenants);
    }
    shard_table.AddRow({std::to_string(s), std::to_string(traffic[s].ok),
                        std::to_string(traffic[s].errors),
                        std::to_string(traffic[s].shed),
                        TextTable::FormatDouble(shard_p50[s]),
                        TextTable::FormatDouble(shard_p99[s]), batches,
                        coalesce, tenants});
  }
  std::printf("%s", shard_table.Render().c_str());

  if (!config.json.empty()) {
    CKSAFE_RETURN_IF_ERROR(WriteFleetJson(
        config, num_shards, total, ok_answers, error_answers, shed, elapsed_s,
        p50, p99, migrations_done.load(), traffic, shard_p50, shard_p99));
    std::printf("wrote %s\n", config.json.c_str());
  }

  // Stop the fleet before verifying: verification only needs the writer's
  // registry, and a clean shutdown here means a wedged shard fails the run
  // instead of hanging the exit.
  const auto registry = fleet->PublishedRegistry();
  CKSAFE_RETURN_IF_ERROR(fleet->ShutdownAll());
  fleet.reset();
  ::rmdir(socket_dir);

  // Verification: every OK answer must be bit-identical to a fresh
  // synchronous analyzer over the snapshot it names — across the process
  // boundary, the wire codec, and any live migrations.
  size_t verified = 0;
  std::map<std::pair<std::string, uint64_t>,
           std::unique_ptr<DisclosureAnalyzer>>
      fresh_analyzers;
  for (const auto& records : per_client) {
    for (const FleetRecord& record : records) {
      if (!record.answer.ok()) continue;
      const Query& query = record.query;
      const QueryAnswer& answer = *record.answer;
      const auto key = std::make_pair(query.tenant, answer.snapshot_sequence);
      const auto snapshot_it = registry.find(key);
      if (snapshot_it == registry.end()) {
        return Status::Internal(StrFormat(
            "answer names unpublished snapshot %llu of tenant %s",
            static_cast<unsigned long long>(answer.snapshot_sequence),
            query.tenant.c_str()));
      }
      auto& analyzer = fresh_analyzers[key];
      if (analyzer == nullptr) {
        analyzer = std::make_unique<DisclosureAnalyzer>(
            snapshot_it->second->bucketization);
      }
      bool match = true;
      switch (query.kind) {
        case QueryKind::kIsCkSafe: {
          const WorstCaseDisclosure worst =
              analyzer->MaxDisclosureImplications(query.k);
          match = answer.safe == IsSafeLogRatio(worst.log_r_min, query.c) &&
                  answer.disclosure == worst.disclosure &&
                  answer.log_r == worst.log_r_min;
          break;
        }
        case QueryKind::kDisclosure: {
          const WorstCaseDisclosure worst =
              analyzer->MaxDisclosureImplications(query.k);
          match = answer.disclosure == worst.disclosure &&
                  answer.log_r == worst.log_r_min;
          break;
        }
        case QueryKind::kProfileAtK: {
          const DisclosureProfile profile = analyzer->Profile(query.k);
          match = answer.disclosure == profile.implication[query.k] &&
                  answer.negation == profile.negation[query.k];
          break;
        }
        case QueryKind::kPerBucket:
          match = answer.disclosure ==
                  analyzer->PerBucketDisclosure(query.k)[query.bucket];
          break;
      }
      if (!match) {
        return Status::Internal(StrFormat(
            "answer diverged from fresh analyzer (tenant %s, snapshot %llu)",
            query.tenant.c_str(),
            static_cast<unsigned long long>(answer.snapshot_sequence)));
      }
      ++verified;
    }
  }
  if (verified == 0) {
    std::printf("nothing to verify: no query was answered successfully "
                "(do the workload tenants match --policies?)\n");
    return Status::OK();
  }
  std::printf("all %zu verified answers bit-identical to a fresh "
              "synchronous analyzer\n",
              verified);
  return Status::OK();
}

// Inspects / audits a durable store directory. Opening performs the same
// recovery a restart would (scanning the manifest, discarding torn tails),
// so `persist` on a crashed directory reports exactly what a reopening
// server will serve.
Status RunPersist(const CliConfig& config) {
  if (config.dir.empty()) {
    return Status::InvalidArgument("persist requires --dir=DIR");
  }
  DurableStoreOptions options;
  options.dir = config.dir;
  options.buffer_pool_pages = static_cast<size_t>(config.pool_pages);
  CKSAFE_ASSIGN_OR_RETURN(std::unique_ptr<DurableStore> store,
                          DurableStore::Open(std::move(options)));
  const RecoveryInfo& recovery = store->recovery();
  std::printf(
      "store %s: %zu committed publishes across %zu tenants\n"
      "manifest: %llu committed bytes, %llu torn bytes discarded\n"
      "segments: %llu committed bytes, %llu orphaned bytes discarded\n",
      config.dir.c_str(), recovery.records, recovery.tenants,
      static_cast<unsigned long long>(recovery.manifest_bytes),
      static_cast<unsigned long long>(recovery.manifest_torn_bytes),
      static_cast<unsigned long long>(recovery.segment_bytes),
      static_cast<unsigned long long>(recovery.segment_torn_bytes));
  if (config.dump) {
    TextTable out;
    out.SetHeader({"tenant", "seq", "rows", "pages", "offset", "dict"});
    for (const ManifestRecord& record : store->records()) {
      out.AddRow({record.tenant, std::to_string(record.sequence),
                  std::to_string(record.num_rows),
                  std::to_string(record.snapshot.pages),
                  std::to_string(record.snapshot.offset),
                  record.has_dict ? "+" + std::to_string(record.dict_count)
                                  : "-"});
    }
    std::printf("%s", out.Render().c_str());
  }
  if (config.verify) {
    CKSAFE_ASSIGN_OR_RETURN(const DurableStore::VerifyReport report,
                            store->Verify());
    std::printf(
        "verify OK: %zu records re-read (%zu pages), %zu disclosure "
        "profiles recomputed bit-identically\n",
        report.records, report.pages, report.profiles_checked);
  }
  return Status::OK();
}

Status RunAudit(const CliConfig& config) {
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));
  // phi.k() (parsed from the knowledge file) is validated below before it
  // reaches the certified-bound sweep.
  CKSAFE_ASSIGN_OR_RETURN(LatticeNode node, ParseNode(config.node, data.qis));
  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeAtNode(data.table, data.qis, node, data.sensitive_column));

  if (config.knowledge.empty()) {
    return Status::InvalidArgument("audit requires --knowledge=FILE");
  }
  std::ifstream in(config.knowledge);
  if (!in) return Status::IOError("cannot read " + config.knowledge);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  KnowledgeParser parser(data.table, data.sensitive_column);
  CKSAFE_ASSIGN_OR_RETURN(KnowledgeFormula phi,
                          parser.ParseFormula(buffer.str()));
  KnowledgePrinter printer(data.table, data.sensitive_column);
  std::printf("attacker knowledge (k=%zu): %s\n", phi.k(),
              printer.FormulaToString(phi).c_str());
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("knowledge",
                                               static_cast<int64_t>(phi.k())));

  bool approx = config.approx;
  auto engine = ExactEngine::Create(bucketization);
  if (!approx && !engine.ok()) {
    std::printf("exact engine unavailable (%s); using Monte Carlo\n",
                engine.status().ToString().c_str());
    approx = true;
  }
  double risk = 0.0;
  Atom target;
  if (!approx) {
    if (!engine->IsConsistent(phi)) {
      std::printf("knowledge is inconsistent with the release\n");
      return Status::OK();
    }
    CKSAFE_ASSIGN_OR_RETURN(ExactDisclosure result,
                            engine->DisclosureRisk(phi));
    risk = result.disclosure;
    target = result.target;
  } else {
    SamplerOptions sampler_options;
    sampler_options.seed = static_cast<uint64_t>(config.seed);
    MonteCarloEngine sampler(bucketization, sampler_options);
    CKSAFE_ASSIGN_OR_RETURN(PosteriorEstimate posterior,
                            sampler.EstimatePosteriors(phi));
    risk = posterior.MaxDisclosure(&target);
    std::printf("(Monte Carlo: %llu accepted of %llu samples)\n",
                static_cast<unsigned long long>(posterior.accepted),
                static_cast<unsigned long long>(posterior.samples));
  }
  DisclosureAnalyzer analyzer(bucketization);
  const double bound = analyzer.MaxDisclosureImplications(phi.k()).disclosure;
  std::printf("disclosure risk of this formula: %.4f (%s)%s\n", risk,
              printer.AtomToString(target).c_str(),
              approx ? " [estimated]" : "");
  std::printf("certified worst case at k=%zu:   %.4f\n", phi.k(), bound);
  return Status::OK();
}

Status RunFig5(const CliConfig& config) {
  CKSAFE_RETURN_IF_ERROR(ValidateAttackerPower("max_k", config.max_k));
  CliConfig adult_config = config;
  adult_config.adult = true;
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(adult_config));
  CKSAFE_ASSIGN_OR_RETURN(
      Fig5Result result,
      RunFigure5(data.table, data.qis, AdultFigure5Node(),
                 data.sensitive_column, static_cast<size_t>(config.max_k)));
  TextTable out;
  out.SetHeader({"k", "implication", "negation"});
  for (const Fig5Row& row : result.rows) {
    out.AddRow({std::to_string(row.k), TextTable::FormatDouble(row.implication),
                TextTable::FormatDouble(row.negation)});
  }
  std::printf("%s", out.Render().c_str());
  return Status::OK();
}

Status RunFig6(const CliConfig& config) {
  CliConfig adult_config = config;
  adult_config.adult = true;
  CKSAFE_ASSIGN_OR_RETURN(LoadedData data, LoadData(adult_config));
  CKSAFE_ASSIGN_OR_RETURN(
      Fig6Result result,
      RunFigure6(data.table, data.qis, data.sensitive_column));
  TextTable out;
  out.SetHeader({"min entropy", "k=1", "k=3", "k=5", "k=7", "k=9", "k=11"});
  const auto base = AggregateFig6Series(result, 0);
  std::vector<std::vector<Fig6SeriesPoint>> series;
  for (size_t i = 0; i < result.ks.size(); ++i) {
    series.push_back(AggregateFig6Series(result, i));
  }
  for (size_t p = 0; p < base.size(); ++p) {
    std::vector<std::string> row = {TextTable::FormatDouble(base[p].entropy)};
    for (const auto& s : series) {
      row.push_back(TextTable::FormatDouble(s[p].min_disclosure));
    }
    out.AddRow(std::move(row));
  }
  std::printf("%s", out.Render().c_str());
  return Status::OK();
}

// Textual CSV dump of a foundry table (labels for categoricals, raw codes
// for numerics) — inspectable with any external tool.
Status DumpFoundryCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  for (size_t col = 0; col < table.num_columns(); ++col) {
    out << (col ? "," : "") << table.schema().attribute(col).name();
  }
  out << "\n";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t col = 0; col < table.num_columns(); ++col) {
      const AttributeDef& attr = table.schema().attribute(col);
      const int32_t code = table.at(static_cast<PersonId>(row), col);
      out << (col ? "," : "")
          << (attr.is_categorical() ? attr.LabelOf(code)
                                    : std::to_string(code));
    }
    out << "\n";
  }
  return Status::OK();
}

Status RunFoundry(const CliConfig& config) {
  TableFoundryConfig table_config;
  HierarchyFoundryConfig hierarchy_config;
  DeltaFoundryConfig delta_config;
  bool with_deltas = false;
  if (!config.scenario.empty()) {
    CKSAFE_ASSIGN_OR_RETURN(ScenarioConfig scenario,
                            FindScenario(config.scenario));
    table_config = scenario.table;
    hierarchy_config = scenario.hierarchy;
    delta_config = scenario.deltas;
    delta_config.num_ops = scenario.delta_ops;
    with_deltas = scenario.delta_ops > 0;
  } else {
    table_config.seed = static_cast<uint64_t>(config.seed);
    table_config.num_rows = static_cast<size_t>(config.rows);
    table_config.quasi_identifiers = {
        ColumnSpec{"Region", 12, true, ValueSkew::kZipf, 2},
        ColumnSpec{"Age", 16, false, ValueSkew::kClustered, 4}};
    table_config.sensitive = ColumnSpec{"Dx", 6, true, ValueSkew::kUniform, 1};
    hierarchy_config.seed = static_cast<uint64_t>(config.seed);
  }
  CKSAFE_ASSIGN_OR_RETURN(Table table, TableFoundry::Generate(table_config));
  std::printf("table: %zu rows x %zu columns (seed %llu)\n", table.num_rows(),
              table.num_columns(),
              static_cast<unsigned long long>(table_config.seed));
  std::printf("table fingerprint: %016llx\n",
              static_cast<unsigned long long>(FingerprintTable(table)));
  const size_t sensitive_column = table_config.quasi_identifiers.size();
  CKSAFE_ASSIGN_OR_RETURN(
      std::vector<QuasiIdentifier> qis,
      HierarchyFoundry::MakeQuasiIdentifiers(table, sensitive_column,
                                             hierarchy_config));
  for (const QuasiIdentifier& qi : qis) {
    std::printf("hierarchy %s: %zu levels, fingerprint %016llx\n",
                table.schema().attribute(qi.column).name().c_str(),
                qi.hierarchy->num_levels(),
                static_cast<unsigned long long>(
                    FingerprintHierarchy(*qi.hierarchy)));
  }
  if (with_deltas) {
    CKSAFE_ASSIGN_OR_RETURN(DeltaStream stream,
                            DeltaFoundry::Generate(delta_config));
    std::printf("delta stream: %zu initial + %zu ops, fingerprint %016llx\n",
                stream.initial.size(), stream.ops.size(),
                static_cast<unsigned long long>(
                    FingerprintDeltaStream(stream)));
  }
  if (!config.out.empty()) {
    CKSAFE_RETURN_IF_ERROR(DumpFoundryCsv(table, config.out));
    std::printf("wrote %s\n", config.out.c_str());
  }
  return Status::OK();
}

Status RunScenario(const CliConfig& config) {
  if (config.list) {
    for (const ScenarioConfig& scenario : ScenarioCatalog()) {
      std::printf("%-20s %s\n", scenario.name.c_str(),
                  scenario.summary.c_str());
    }
    return Status::OK();
  }
  std::vector<ScenarioConfig> to_run;
  if (!config.scenario.empty()) {
    CKSAFE_ASSIGN_OR_RETURN(ScenarioConfig scenario,
                            FindScenario(config.scenario));
    to_run.push_back(std::move(scenario));
  } else {
    to_run = ScenarioCatalog();
  }
  for (const ScenarioConfig& scenario : to_run) {
    CKSAFE_ASSIGN_OR_RETURN(ScenarioReport report,
                            ScenarioRunner::Run(scenario, config.scale));
    std::printf("scenario %s: PASS (%s)\n", scenario.name.c_str(),
                report.ToString().c_str());
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  CliConfig config;
  FlagParser flags;
  flags.AddBool("adult", &config.adult, "use the synthetic Adult workload");
  flags.AddInt64("rows", &config.rows, "synthetic Adult rows");
  flags.AddInt64("seed", &config.seed, "generator / permutation seed");
  flags.AddString("adult_csv", &config.adult_csv, "real UCI adult.data path");
  flags.AddString("input", &config.input, "arbitrary CSV dataset");
  flags.AddString("sensitive", &config.sensitive, "sensitive column name");
  flags.AddString("qi", &config.qi, "comma-separated quasi-identifier names");
  flags.AddString("node", &config.node, "generalization levels, e.g. 3,2,1,1");
  flags.AddInt64("max_k", &config.max_k, "largest attacker power for curves");
  flags.AddDouble("c", &config.c, "(c,k)-safety threshold");
  flags.AddInt64("k", &config.k, "attacker power for safety checks");
  flags.AddString("objective", &config.objective,
                  "discernibility | avg_class_size | height | loss");
  flags.AddString("out", &config.out, "generalized release CSV path");
  flags.AddString("out_qit", &config.out_qit, "Anatomy QI table CSV path");
  flags.AddString("out_st", &config.out_st, "Anatomy sensitive table CSV path");
  flags.AddString("knowledge", &config.knowledge, "attacker formula file");
  flags.AddBool("approx", &config.approx, "force Monte Carlo audit");
  flags.AddString("policies", &config.policies,
                  "multi-tenant policies, comma-separated [name=]c:k");
  flags.AddString("replay", &config.replay,
                  "serve: query file (tenant,kind,c,k,bucket per line)");
  flags.AddInt64("readers", &config.readers, "serve: reader thread count");
  flags.AddInt64("queue", &config.queue, "serve: admission queue capacity");
  flags.AddInt64("stream_batches", &config.stream_batches,
                 "serve: row batches streamed (and re-published) while "
                 "readers run");
  flags.AddInt64("rounds", &config.rounds,
                 "serve: times each reader replays its query share");
  flags.AddInt64("shards", &config.shards, "fleet: shard process count");
  flags.AddInt64("queries", &config.queries,
                 "fleet: foundry workload size when no --replay file is given");
  flags.AddInt64("migrations", &config.migrations,
                 "fleet: live tenant migrations performed during the replay");
  flags.AddString("json", &config.json,
                  "fleet: write the machine-readable report to this path");
  flags.AddString("scenario", &config.scenario,
                  "foundry/scenario: catalog entry name");
  flags.AddDouble("scale", &config.scale,
                  "scenario: multiplier on rows, ops and query counts");
  flags.AddBool("list", &config.list, "scenario: list the catalog and exit");
  flags.AddString("persist", &config.persist,
                  "serve: write-through durable store directory");
  flags.AddString("dir", &config.dir, "persist: store directory to inspect");
  flags.AddInt64("pool_pages", &config.pool_pages,
                 "durable store buffer pool capacity (4 KiB pages)");
  flags.AddBool("dump", &config.dump, "persist: list committed records");
  flags.AddBool("verify", &config.verify,
                "persist: re-read, decode and recompute everything");

  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage("cksafe_cli <command>").c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: cksafe_cli <analyze|publish|multi|serve|fleet|audit|"
                 "fig5|fig6|foundry|scenario|persist> [flags]\n%s",
                 flags.Usage("cksafe_cli <command>").c_str());
    return 1;
  }
  const std::string& command = flags.positional()[0];
  Status st;
  if (command == "analyze") {
    st = RunAnalyze(config);
  } else if (command == "publish") {
    st = RunPublish(config);
  } else if (command == "multi") {
    st = RunMulti(config);
  } else if (command == "serve") {
    st = RunServe(config);
  } else if (command == "fleet") {
    st = RunFleet(config);
  } else if (command == "audit") {
    st = RunAudit(config);
  } else if (command == "fig5") {
    st = RunFig5(config);
  } else if (command == "fig6") {
    st = RunFig6(config);
  } else if (command == "foundry") {
    st = RunFoundry(config);
  } else if (command == "scenario") {
    st = RunScenario(config);
  } else if (command == "persist") {
    st = RunPersist(config);
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 1;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cksafe

int main(int argc, char** argv) { return cksafe::Main(argc, argv); }
