// Attacker audit: given a concrete piece of background knowledge written in
// the textual formula language, compute the exact posterior disclosure it
// causes on a published bucketization — and contrast it with the worst-case
// bound the publisher certified.
//
//   $ ./attacker_audit
//   $ ./attacker_audit --knowledge=attack.txt
//
// attack.txt holds one basic implication per line, e.g.
//   ! t[Ed].Disease = mumps
//   t[Hannah].Disease = flu -> t[Charlie].Disease = flu

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/exact/sampler.h"
#include "cksafe/knowledge/parser.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/text_table.h"

using namespace cksafe;

namespace {

Table MakeFigure1Table() {
  Schema schema({
      AttributeDef::Categorical("Zip", {"14850", "14853"}),
      AttributeDef::Numeric("Age", 21, 29),
      AttributeDef::Categorical("Sex", {"M", "F"}),
      AttributeDef::Categorical("Disease",
                                {"flu", "lung cancer", "mumps", "breast cancer",
                                 "ovarian cancer", "heart disease"}),
  });
  Table table(std::move(schema));
  const char* rows[][4] = {
      {"14850", "23", "M", "flu"},         {"14850", "24", "M", "flu"},
      {"14850", "25", "M", "lung cancer"}, {"14850", "27", "M", "lung cancer"},
      {"14853", "29", "M", "mumps"},       {"14850", "21", "F", "flu"},
      {"14850", "22", "F", "flu"},         {"14853", "24", "F", "breast cancer"},
      {"14853", "26", "F", "ovarian cancer"},
      {"14853", "28", "F", "heart disease"},
  };
  const char* names[] = {"Bob",    "Charlie", "Dave", "Ed",      "Frank",
                         "Gloria", "Hannah",  "Irma", "Jessica", "Karen"};
  for (size_t i = 0; i < std::size(rows); ++i) {
    Status st = table.AppendRowFromText(
        {rows[i][0], rows[i][1], rows[i][2], rows[i][3]});
    CKSAFE_CHECK(st.ok()) << st.ToString();
    table.SetRowLabel(static_cast<PersonId>(i), names[i]);
  }
  return table;
}

constexpr const char* kDefaultKnowledge =
    "# Alice's dossier\n"
    "! t[Ed].Disease = mumps\n"
    "t[Hannah].Disease = flu -> t[Charlie].Disease = flu\n";

}  // namespace

int main(int argc, char** argv) {
  std::string knowledge_path;
  bool approx = false;
  FlagParser flags;
  flags.AddString("knowledge", &knowledge_path,
                  "file with one basic implication per line (default: a "
                  "built-in two-line dossier)");
  flags.AddBool("approx", &approx,
                "use Monte Carlo estimation instead of exact enumeration "
                "(automatic for instances past the exact engine's cap)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }

  const Table table = MakeFigure1Table();
  const size_t sensitive = 3;
  auto bucketization =
      BucketizeExplicit(table, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, sensitive);
  CKSAFE_CHECK(bucketization.ok());

  std::string knowledge_text = kDefaultKnowledge;
  if (!knowledge_path.empty()) {
    std::ifstream in(knowledge_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", knowledge_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    knowledge_text = buffer.str();
  }

  KnowledgeParser parser(table, sensitive);
  auto phi = parser.ParseFormula(knowledge_text);
  if (!phi.ok()) {
    std::fprintf(stderr, "parse error: %s\n", phi.status().ToString().c_str());
    return 1;
  }
  // The parsed formula's k flows into the certified-bound sweep below;
  // route it through the validated budget API so a pathological dossier
  // (hundreds of implications) prints a clean Status instead of tripping
  // the kernel's CHECK or an intractable O(k^3) memoization.
  if (Status budget = Minimize2Forward::ValidateBudget(phi->k());
      !budget.ok()) {
    std::fprintf(stderr, "error: %s\n", budget.ToString().c_str());
    return 1;
  }
  KnowledgePrinter printer(table, sensitive);
  std::printf("attacker knowledge (k = %zu):\n  %s\n\n", phi->k(),
              printer.FormulaToString(*phi).c_str());

  auto engine = ExactEngine::Create(*bucketization);
  if (!approx && !engine.ok()) {
    std::printf("exact engine unavailable (%s); falling back to Monte Carlo\n",
                engine.status().ToString().c_str());
    approx = true;
  }

  const AttributeDef& disease = table.schema().attribute(sensitive);
  TextTable audit;
  audit.SetHeader({"person", "most likely disease", "posterior", "prior"});
  double risk_value = 0.0;
  Atom risk_atom;

  if (!approx) {
    if (!engine->IsConsistent(*phi)) {
      std::printf("this knowledge is inconsistent with the published buckets "
                  "— the attacker has been fooled or the release is wrong.\n");
      return 0;
    }
    // Exact per-person posterior: the most likely disease per patient.
    for (PersonId p = 0; p < table.num_rows(); ++p) {
      double best = 0;
      int32_t best_value = 0;
      for (int32_t s = 0; s <= disease.max_value(); ++s) {
        auto prob = engine->ConditionalProbability(Atom{p, s}, *phi);
        CKSAFE_CHECK(prob.ok());
        if (*prob > best) {
          best = *prob;
          best_value = s;
        }
      }
      auto prior = engine->ConditionalProbability(Atom{p, best_value},
                                                  KnowledgeFormula());
      CKSAFE_CHECK(prior.ok());
      audit.AddRow({table.RowLabel(p), disease.LabelOf(best_value),
                    TextTable::FormatDouble(best),
                    TextTable::FormatDouble(*prior)});
    }
    auto risk = engine->DisclosureRisk(*phi);
    CKSAFE_CHECK(risk.ok());
    risk_value = risk->disclosure;
    risk_atom = risk->target;
  } else {
    // Monte Carlo audit (Theorem 8 makes exact computation intractable at
    // scale; rejection sampling estimates the same posteriors).
    MonteCarloEngine sampler(*bucketization, SamplerOptions{});
    auto posterior = sampler.EstimatePosteriors(*phi);
    if (!posterior.ok()) {
      std::printf("sampling failed: %s\n",
                  posterior.status().ToString().c_str());
      return 1;
    }
    std::printf("(Monte Carlo estimate from %llu accepted of %llu sampled "
                "worlds)\n",
                static_cast<unsigned long long>(posterior->accepted),
                static_cast<unsigned long long>(posterior->samples));
    for (size_t i = 0; i < posterior->persons.size(); ++i) {
      const PersonId p = posterior->persons[i];
      size_t best_value = 0;
      for (size_t s = 0; s < posterior->probability[i].size(); ++s) {
        if (posterior->probability[i][s] >
            posterior->probability[i][best_value]) {
          best_value = s;
        }
      }
      const auto bucket = bucketization->BucketOf(p);
      CKSAFE_CHECK(bucket.ok());
      const Bucket& b = bucketization->bucket(*bucket);
      const double prior =
          static_cast<double>(b.histogram[best_value]) / b.size();
      audit.AddRow({table.RowLabel(p),
                    disease.LabelOf(static_cast<int32_t>(best_value)),
                    TextTable::FormatDouble(posterior->probability[i][best_value]),
                    TextTable::FormatDouble(prior)});
    }
    risk_value = posterior->MaxDisclosure(&risk_atom);
  }
  std::printf("%s\n", audit.Render().c_str());

  DisclosureAnalyzer analyzer(*bucketization);
  const double bound =
      analyzer.MaxDisclosureImplications(phi->k()).disclosure;
  std::printf("disclosure risk of THIS formula:        %.4f (%s)%s\n",
              risk_value, printer.AtomToString(risk_atom).c_str(),
              approx ? " [estimated]" : "");
  std::printf("worst case over ALL %zu-implication sets: %.4f\n", phi->k(),
              bound);
  CKSAFE_CHECK(risk_value <= bound + (approx ? 0.02 : 1e-9))
      << "risk exceeded the certified worst case";
  return 0;
}
