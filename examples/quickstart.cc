// Quickstart: build a tiny table, bucketize it, measure worst-case
// disclosure, and check (c,k)-safety.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; see hospital.cc for the
// paper's full running example and publish_adult.cc for the end-to-end
// publishing pipeline.

#include <cstdio>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/knowledge/formula.h"

using namespace cksafe;

int main() {
  // 1. A microdata table: one row per person, one sensitive attribute.
  Schema schema({
      AttributeDef::Numeric("Age", 20, 39),
      AttributeDef::Categorical("Diagnosis",
                                {"flu", "asthma", "diabetes", "healthy"}),
  });
  Table table(std::move(schema));
  const int32_t rows[][2] = {{23, 0}, {25, 1}, {27, 0}, {29, 2},
                             {31, 3}, {33, 2}, {35, 1}, {38, 3}};
  for (const auto& row : rows) {
    Status st = table.AppendRow({row[0], row[1]});
    CKSAFE_CHECK(st.ok()) << st.ToString();
  }

  // 2. Bucketize: here, by decade of age (rows 0-3 vs 4-7).
  auto bucketization =
      BucketizeExplicit(table, {{0, 1, 2, 3}, {4, 5, 6, 7}}, 1);
  CKSAFE_CHECK(bucketization.ok()) << bucketization.status().ToString();
  std::printf("%s\n", bucketization->ToString().c_str());

  // 3. Worst-case disclosure against an attacker with k pieces of
  //    background knowledge (basic implications, Definition 6).
  DisclosureAnalyzer analyzer(*bucketization);
  KnowledgePrinter printer(table, /*sensitive_column=*/1);
  for (size_t k = 0; k <= 3; ++k) {
    const WorstCaseDisclosure worst = analyzer.MaxDisclosureImplications(k);
    std::printf("k=%zu  max disclosure %.4f  worst-case knowledge: %s\n", k,
                worst.disclosure,
                worst.antecedents.empty()
                    ? "(none)"
                    : printer.FormulaToString(worst.ToFormula()).c_str());
  }

  // 4. (c,k)-safety (Definition 13): tolerate any 2 pieces of knowledge
  //    while keeping disclosure below 0.9.
  const double c = 0.9;
  const size_t k = 2;
  std::printf("\n(c=%.2f, k=%zu)-safe? %s\n", c, k,
              analyzer.IsCkSafe(c, k) ? "yes" : "no");
  return 0;
}
