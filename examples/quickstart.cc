// Quickstart: build a tiny table, bucketize it, measure worst-case
// disclosure, and check (c,k)-safety.
//
//   $ ./quickstart
//   $ ./quickstart --c=0.8 --k=3 --max_k=5
//
// This is the 60-second tour of the public API; see hospital.cc for the
// paper's full running example and publish_adult.cc for the end-to-end
// publishing pipeline.
//
// Attacker powers route through the validated budget API
// (Minimize2Forward::ValidateBudget) before any analysis runs: an absurd
// --k or --max_k prints a clean `error:` Status instead of CHECK-aborting
// or attempting the intractable O(k^3) memoization (the same gate
// cksafe_cli and the publishers use).

#include <cstdio>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/knowledge/formula.h"
#include "cksafe/util/flags.h"

using namespace cksafe;

namespace {

// Validates an attacker-power flag through the shared budget gate.
Status ValidatePower(const char* flag, int64_t value) {
  if (value < 0) {
    return Status::InvalidArgument(std::string("--") + flag +
                                   " must be non-negative");
  }
  Status budget = Minimize2Forward::ValidateBudget(static_cast<size_t>(value));
  if (!budget.ok()) {
    return Status(budget.code(),
                  std::string("--") + flag + ": " + budget.message());
  }
  return Status::OK();
}

Status Run(double c, int64_t k, int64_t max_k) {
  CKSAFE_RETURN_IF_ERROR(ValidatePower("k", k));
  CKSAFE_RETURN_IF_ERROR(ValidatePower("max_k", max_k));
  if (!(c > 0.0)) {
    return Status::InvalidArgument("--c must be > 0");
  }

  // 1. A microdata table: one row per person, one sensitive attribute.
  Schema schema({
      AttributeDef::Numeric("Age", 20, 39),
      AttributeDef::Categorical("Diagnosis",
                                {"flu", "asthma", "diabetes", "healthy"}),
  });
  Table table(std::move(schema));
  const int32_t rows[][2] = {{23, 0}, {25, 1}, {27, 0}, {29, 2},
                             {31, 3}, {33, 2}, {35, 1}, {38, 3}};
  for (const auto& row : rows) {
    CKSAFE_RETURN_IF_ERROR(table.AppendRow({row[0], row[1]}));
  }

  // 2. Bucketize: here, by decade of age (rows 0-3 vs 4-7).
  CKSAFE_ASSIGN_OR_RETURN(
      Bucketization bucketization,
      BucketizeExplicit(table, {{0, 1, 2, 3}, {4, 5, 6, 7}}, 1));
  std::printf("%s\n", bucketization.ToString().c_str());

  // 3. Worst-case disclosure against an attacker with up to max_k pieces
  //    of background knowledge (basic implications, Definition 6).
  DisclosureAnalyzer analyzer(bucketization);
  KnowledgePrinter printer(table, /*sensitive_column=*/1);
  for (size_t power = 0; power <= static_cast<size_t>(max_k); ++power) {
    const WorstCaseDisclosure worst =
        analyzer.MaxDisclosureImplications(power);
    std::printf("k=%zu  max disclosure %.4f  worst-case knowledge: %s\n",
                power, worst.disclosure,
                worst.antecedents.empty()
                    ? "(none)"
                    : printer.FormulaToString(worst.ToFormula()).c_str());
  }

  // 4. (c,k)-safety (Definition 13): tolerate any k pieces of knowledge
  //    while keeping disclosure below c.
  std::printf("\n(c=%.2f, k=%lld)-safe? %s\n", c,
              static_cast<long long>(k),
              analyzer.IsCkSafe(c, static_cast<size_t>(k)) ? "yes" : "no");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  double c = 0.9;
  int64_t k = 2;
  int64_t max_k = 3;
  FlagParser flags;
  flags.AddDouble("c", &c, "(c,k)-safety threshold");
  flags.AddInt64("k", &k, "attacker power for the safety check");
  flags.AddInt64("max_k", &max_k, "largest attacker power for the tour");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "error: %s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (Status st = Run(c, k, max_k); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
