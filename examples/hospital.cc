// The paper's running example (Sections 1-2), end to end:
//
//  * Figure 1's table of ten patients and the Figure 3 bucketization;
//  * Alice's inference chain about Ed: 2/5 -> 1/2 -> 1;
//  * the Hannah -> Charlie implication raising Pr(Charlie = flu) to 10/19;
//  * the algorithmic maximum disclosure over L^k_basic, with reconstructed
//    worst-case formulas (including the 2/3 self-implication the prose of
//    Section 2.3 overlooks — see DESIGN.md);
//  * a (c,k)-safety verdict for the bucketization.

#include <cstdio>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/knowledge/parser.h"
#include "cksafe/util/text_table.h"

using namespace cksafe;

namespace {

Table MakeFigure1Table() {
  Schema schema({
      AttributeDef::Categorical("Zip", {"14850", "14853"}),
      AttributeDef::Numeric("Age", 21, 29),
      AttributeDef::Categorical("Sex", {"M", "F"}),
      AttributeDef::Categorical("Disease",
                                {"flu", "lung cancer", "mumps", "breast cancer",
                                 "ovarian cancer", "heart disease"}),
  });
  Table table(std::move(schema));
  struct Row {
    const char* name;
    const char* zip;
    const char* age;
    const char* sex;
    const char* disease;
  };
  const Row rows[] = {
      {"Bob", "14850", "23", "M", "flu"},
      {"Charlie", "14850", "24", "M", "flu"},
      {"Dave", "14850", "25", "M", "lung cancer"},
      {"Ed", "14850", "27", "M", "lung cancer"},
      {"Frank", "14853", "29", "M", "mumps"},
      {"Gloria", "14850", "21", "F", "flu"},
      {"Hannah", "14850", "22", "F", "flu"},
      {"Irma", "14853", "24", "F", "breast cancer"},
      {"Jessica", "14853", "26", "F", "ovarian cancer"},
      {"Karen", "14853", "28", "F", "heart disease"},
  };
  for (size_t i = 0; i < std::size(rows); ++i) {
    Status st = table.AppendRowFromText(
        {rows[i].zip, rows[i].age, rows[i].sex, rows[i].disease});
    CKSAFE_CHECK(st.ok()) << st.ToString();
    table.SetRowLabel(static_cast<PersonId>(i), rows[i].name);
  }
  return table;
}

void PrintProbability(const ExactEngine& engine, const KnowledgePrinter& printer,
                      const Atom& target, const KnowledgeFormula& phi,
                      const char* label) {
  auto p = engine.ConditionalProbability(target, phi);
  CKSAFE_CHECK(p.ok()) << p.status().ToString();
  std::printf("  %-52s Pr(%s) = %.4f\n", label,
              printer.AtomToString(target).c_str(), *p);
}

}  // namespace

int main() {
  const Table table = MakeFigure1Table();
  const size_t sensitive = 3;

  std::printf("== Figure 1: the original table ==\n");
  for (PersonId p = 0; p < table.num_rows(); ++p) {
    std::printf("  %s\n", table.RowToString(p).c_str());
  }

  // Figure 2/3: bucketize by Sex (the 5-anonymous grouping).
  auto bucketization =
      BucketizeExplicit(table, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, sensitive);
  CKSAFE_CHECK(bucketization.ok());
  std::printf("\n== Figure 3: the published bucketization ==\n%s",
              bucketization->ToString().c_str());
  Rng rng(2007);
  const std::vector<int32_t> published =
      bucketization->SamplePublishedAssignment(&rng);
  std::printf("  one published permutation: ");
  for (PersonId p = 0; p < table.num_rows(); ++p) {
    std::printf("%s%s", p > 0 ? ", " : "",
                table.schema().attribute(sensitive).LabelOf(published[p]).c_str());
  }
  std::printf("\n");

  auto engine = ExactEngine::Create(*bucketization);
  CKSAFE_CHECK(engine.ok());
  KnowledgeParser parser(table, sensitive);
  KnowledgePrinter printer(table, sensitive);

  std::printf("\n== Section 1: Alice reasons about Ed ==\n");
  const Atom ed_lung = *parser.ParseAtom("t[Ed].Disease = lung cancer");
  PrintProbability(*engine, printer, ed_lung, KnowledgeFormula(),
                   "no background knowledge:");
  KnowledgeFormula no_mumps =
      *parser.ParseFormula("! t[Ed].Disease = mumps");
  PrintProbability(*engine, printer, ed_lung, no_mumps,
                   "knowing Ed had mumps as a child:");
  KnowledgeFormula no_mumps_no_flu = *parser.ParseFormula(
      "! t[Ed].Disease = mumps\n! t[Ed].Disease = flu");
  PrintProbability(*engine, printer, ed_lung, no_mumps_no_flu,
                   "additionally knowing Ed does not have flu:");

  std::printf("\n== Section 1: Alice reasons about the couple ==\n");
  const Atom charlie_flu = *parser.ParseAtom("t[Charlie].Disease = flu");
  PrintProbability(*engine, printer, charlie_flu, KnowledgeFormula(),
                   "no background knowledge:");
  KnowledgeFormula couple = *parser.ParseFormula(
      "t[Hannah].Disease = flu -> t[Charlie].Disease = flu");
  PrintProbability(*engine, printer, charlie_flu, couple,
                   "knowing flu spreads within the household:");

  std::printf("\n== Definition 6: maximum disclosure over L^k_basic ==\n");
  DisclosureAnalyzer analyzer(*bucketization);
  TextTable curve;
  curve.SetHeader({"k", "implications", "negations", "worst-case knowledge"});
  for (size_t k = 0; k <= 4; ++k) {
    const WorstCaseDisclosure imp = analyzer.MaxDisclosureImplications(k);
    const WorstCaseDisclosure neg = analyzer.MaxDisclosureNegations(k);
    curve.AddRow({std::to_string(k), TextTable::FormatDouble(imp.disclosure),
                  TextTable::FormatDouble(neg.disclosure),
                  k == 0 ? "(none)"
                         : printer.FormulaToString(imp.ToFormula())});
  }
  std::printf("%s", curve.Render().c_str());
  std::printf(
      "  note: at k=1 the maximum is 2/3 (ruling out one disease for one\n"
      "  patient), achieved by a self-implication; the paper's Section 2.3\n"
      "  example formula (Hannah=flu -> Charlie=flu) scores 10/19 = %.4f.\n",
      10.0 / 19.0);

  std::printf("\n== Definition 13: (c,k)-safety of this bucketization ==\n");
  for (const auto& [c, k] : {std::pair<double, size_t>{0.7, 1},
                             {0.7, 2},
                             {0.9, 2}}) {
    std::printf("  (c=%.1f, k=%zu)-safe? %s\n", c, k,
                analyzer.IsCkSafe(c, k) ? "yes" : "no");
  }
  return 0;
}
