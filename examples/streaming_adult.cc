// Streaming release demo: the synthetic Adult table arrives in batches; a
// StreamingPublisher re-publishes after each batch, warm-starting the
// lattice search from the previous release's minimal-safe frontier and
// reusing MINIMIZE1 tables across releases, while an IncrementalAnalyzer
// tracks the worst-case disclosure of the live Figure-5 bucketization
// tuple-by-tuple. Run: ./streaming_adult [rows] [batch]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/search/publisher.h"
#include "cksafe/stream/incremental_analyzer.h"
#include "cksafe/stream/streaming_publisher.h"

using namespace cksafe;

int main(int argc, char** argv) {
  const size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const size_t batch = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  const Table full = GenerateSyntheticAdult(rows, 7);
  auto qis = AdultQuasiIdentifiers();
  if (!qis.ok()) {
    std::fprintf(stderr, "%s\n", qis.status().ToString().c_str());
    return 1;
  }

  PublisherOptions options;
  options.c = 0.75;
  options.k = 2;

  auto row_cells = [&](size_t row) {
    std::vector<int32_t> cells(full.num_columns());
    for (size_t c = 0; c < full.num_columns(); ++c) {
      cells[c] = full.at(static_cast<PersonId>(row), c);
    }
    return cells;
  };

  // Live monitor: the Figure-5 bucketization (Age in 20-year intervals,
  // everything else suppressed) maintained incrementally.
  const LatticeNode fig5 = AdultFigure5Node();
  IncrementalAnalyzer monitor(kAdultOccupationValues);
  std::unordered_map<int32_t, size_t> bucket_of_group;

  StreamingPublisher stream(Table(full.schema()), *qis,
                            kAdultOccupationColumn, options);
  std::printf("streaming %zu synthetic Adult rows in batches of %zu "
              "(c=%.2f, k=%zu)\n\n",
              rows, batch, options.c, options.k);
  std::printf("%8s %8s %10s %12s %14s %12s\n", "rows", "node", "monitor",
              "disclosure", "evals(seed)", "cache hit%");

  for (size_t start = 0; start < rows; ) {
    const size_t end = std::min(start + batch, rows);  // final batch may be short
    // Feed the batch to both consumers.
    std::vector<std::vector<int32_t>> cells;
    std::unordered_map<size_t, std::vector<int32_t>> deltas;
    for (size_t r = start; r < end; ++r) {
      cells.push_back(row_cells(r));
      const int32_t age = full.at(static_cast<PersonId>(r), kAdultAgeColumn);
      const int32_t group =
          (*qis)[0].hierarchy->GroupOf(age, static_cast<size_t>(fig5[0]));
      const int32_t s =
          full.at(static_cast<PersonId>(r), kAdultOccupationColumn);
      auto it = bucket_of_group.find(group);
      if (it == bucket_of_group.end()) {
        // New group: open the bucket right away so later rows of the batch
        // can join it through AddTuples.
        bucket_of_group.emplace(group, monitor.AddBucket({s}));
      } else {
        deltas[it->second].push_back(s);
      }
    }
    for (auto& [bucket, values] : deltas) {
      if (!values.empty()) monitor.AddTuples(bucket, values);
    }
    const double live = monitor.MaxDisclosureImplications(options.k).disclosure;

    if (stream.AddBatch(cells).ok() == false) return 1;
    auto release = stream.PublishNext();
    if (!release.ok()) {
      std::fprintf(stderr, "release failed: %s\n",
                   release.status().ToString().c_str());
      return 1;
    }
    const auto& stats = release->release.search_stats;
    const auto& cache = stream.session().cache;
    std::string node = "[";
    for (size_t i = 0; i < release->release.node.size(); ++i) {
      node += (i > 0 ? " " : "") + std::to_string(release->release.node[i]);
    }
    node += "]";
    std::printf(
        "%8zu %8s %10.4f %12.4f %9llu(%llu) %11.1f%%\n", release->num_rows,
        node.c_str(), live, release->release.worst_case.disclosure,
        static_cast<unsigned long long>(stats.evaluations),
        static_cast<unsigned long long>(stats.seed_evaluations),
        100.0 * static_cast<double>(cache.hits()) /
            static_cast<double>(cache.hits() + cache.misses()));
    start = end;
  }

  const IncrementalStats& mstats = monitor.stats();
  std::printf(
      "\nincremental monitor: %llu deltas, %llu DP rows recomputed, "
      "%llu reused, %llu table re-pins\n",
      static_cast<unsigned long long>(mstats.deltas),
      static_cast<unsigned long long>(mstats.rows_recomputed),
      static_cast<unsigned long long>(mstats.rows_reused),
      static_cast<unsigned long long>(mstats.tables_refetched));
  return 0;
}
