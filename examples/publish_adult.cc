// End-to-end publishing pipeline on the Adult workload (Section 3.4):
// search the 72-node generalization lattice for all minimal (c,k)-safe
// nodes, pick the best by a utility objective, and print the release.
//
//   $ ./publish_adult --rows=10000 --c=0.6 --k=3 --objective=discernibility
//   $ ./publish_adult --adult_csv=/path/to/adult.data   # real UCI data
//
// Compare thresholds or k to watch the chosen generalization move up and
// down the lattice.

#include <cstdio>

#include "cksafe/adult/adult.h"
#include "cksafe/search/publisher.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/text_table.h"

using namespace cksafe;

int main(int argc, char** argv) {
  int64_t rows = 10000;
  int64_t seed = 20070419;
  double c = 0.6;
  int64_t k = 3;
  std::string objective = "discernibility";
  std::string adult_csv;

  FlagParser flags;
  flags.AddInt64("rows", &rows, "synthetic Adult rows to generate");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddDouble("c", &c, "(c,k)-safety disclosure threshold");
  flags.AddInt64("k", &k, "attacker power (basic implications)");
  flags.AddString("objective", &objective,
                  "discernibility | avg_class_size | height | loss");
  flags.AddString("adult_csv", &adult_csv,
                  "path to the real UCI adult.data (overrides --rows)");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }

  Table table = [&] {
    if (!adult_csv.empty()) {
      auto loaded = LoadAdultCsv(adult_csv);
      CKSAFE_CHECK(loaded.ok()) << loaded.status().ToString();
      std::printf("loaded %zu tuples from %s\n", loaded->num_rows(),
                  adult_csv.c_str());
      return *std::move(loaded);
    }
    std::printf("generated %lld synthetic Adult tuples (seed %lld)\n",
                static_cast<long long>(rows), static_cast<long long>(seed));
    return GenerateSyntheticAdult(static_cast<size_t>(rows),
                                  static_cast<uint64_t>(seed));
  }();

  auto qis = AdultQuasiIdentifiers();
  CKSAFE_CHECK(qis.ok()) << qis.status().ToString();

  PublisherOptions options;
  options.c = c;
  options.k = static_cast<size_t>(k);
  if (objective == "discernibility") {
    options.objective = UtilityObjective::kDiscernibility;
  } else if (objective == "avg_class_size") {
    options.objective = UtilityObjective::kAvgClassSize;
  } else if (objective == "height") {
    options.objective = UtilityObjective::kHeight;
  } else if (objective == "loss") {
    options.objective = UtilityObjective::kLoss;
  } else {
    std::fprintf(stderr, "unknown objective '%s'\n", objective.c_str());
    return 1;
  }

  Publisher publisher(options);
  auto release = publisher.Publish(table, *qis, kAdultOccupationColumn);
  if (!release.ok()) {
    std::fprintf(stderr, "publishing failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== minimal (c=%.2f, k=%lld)-safe generalizations ==\n", c,
              static_cast<long long>(k));
  TextTable nodes;
  nodes.SetHeader({"Age", "Marital", "Race", "Gender", "chosen"});
  for (const LatticeNode& node : release->minimal_safe_nodes) {
    nodes.AddRow({std::to_string(node[0]), std::to_string(node[1]),
                  std::to_string(node[2]), std::to_string(node[3]),
                  node == release->node ? "<==" : ""});
  }
  std::printf("%s\n", nodes.Render().c_str());

  std::printf("== release (objective: %s) ==\n%s\n",
              UtilityObjectiveName(options.objective).c_str(),
              Publisher::Summary(*release, table, kAdultOccupationColumn)
                  .c_str());

  KnowledgePrinter printer(table, kAdultOccupationColumn);
  std::printf("residual worst-case attacker (k=%lld):\n  target %s\n",
              static_cast<long long>(k),
              printer.AtomToString(release->worst_case.target).c_str());
  for (const Atom& atom : release->worst_case.antecedents) {
    std::printf("  antecedent %s\n", printer.AtomToString(atom).c_str());
  }
  return 0;
}
