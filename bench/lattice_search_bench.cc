// Benchmarks for the safe-bucketization search (experiment E5 in DESIGN.md):
// Incognito-style enumeration with and without monotonicity pruning, chain
// binary search vs. linear scan (Theorem 14), and the per-node cost of the
// (c,k)-safety check next to the k-anonymity / ℓ-diversity baselines it
// replaces inside Incognito.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/anon/diversity.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/lattice_search.h"

namespace cksafe {
namespace {

constexpr size_t kRows = 5000;

const Table& AdultTable() {
  static const Table* table = new Table(GenerateSyntheticAdult(kRows, 99));
  return *table;
}

const std::vector<QuasiIdentifier>& AdultQis() {
  static const auto* qis = [] {
    auto q = AdultQuasiIdentifiers();
    CKSAFE_CHECK(q.ok());
    return new std::vector<QuasiIdentifier>(*std::move(q));
  }();
  return *qis;
}

NodePredicate CkSafetyPredicate(DisclosureCache* cache, double c, size_t k) {
  return [cache, c, k](const LatticeNode& node) {
    auto b = BucketizeAtNode(AdultTable(), AdultQis(), node,
                             kAdultOccupationColumn);
    CKSAFE_CHECK(b.ok());
    return DisclosureAnalyzer(*b, cache).IsCkSafe(c, k);
  };
}

void BM_IncognitoCkSafety(benchmark::State& state) {
  const bool pruning = state.range(0) == 1;
  const double c = static_cast<double>(state.range(1)) / 100.0;
  const size_t k = static_cast<size_t>(state.range(2));
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(AdultQis());
  for (auto _ : state) {
    DisclosureCache cache;
    auto result =
        FindMinimalSafeNodes(lattice, CkSafetyPredicate(&cache, c, k), pruning);
    benchmark::DoNotOptimize(result.minimal_safe_nodes.size());
    state.counters["evaluations"] =
        static_cast<double>(result.stats.evaluations);
  }
  state.SetLabel(std::string(pruning ? "pruning" : "exhaustive") +
                 (c > 0.8 ? ", loose threshold (much of the lattice safe)"
                          : ", tight threshold (few nodes safe)"));
}
BENCHMARK(BM_IncognitoCkSafety)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 60, 3})
    ->Args({0, 60, 3})
    ->Args({1, 90, 1})
    ->Args({0, 90, 1});

// The parallel batch-evaluation subsystem: same Incognito search, same
// lattice, predicate evaluations of each BFS level fanned out over a
// thread pool with one shared (sharded) DisclosureCache. Output is
// asserted identical to the sequential search every iteration; compare
// real_time across the threads argument for the speedup.
void BM_ParallelIncognitoCkSafety(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const double c = 0.6;
  const size_t k = 3;
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(AdultQis());

  DisclosureCache baseline_cache;
  const LatticeSearchResult baseline = FindMinimalSafeNodes(
      lattice, CkSafetyPredicate(&baseline_cache, c, k), true);

  // The caller participates in ParallelFor, so a total of `threads` workers
  // means a pool of threads - 1 (kept across iterations to amortize spawn).
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  for (auto _ : state) {
    DisclosureCache cache;
    LatticeSearchOptions options;
    options.pool = pool.get();
    auto result =
        FindMinimalSafeNodes(lattice, CkSafetyPredicate(&cache, c, k), options);
    CKSAFE_CHECK(result.minimal_safe_nodes == baseline.minimal_safe_nodes)
        << "parallel search diverged from sequential output";
    CKSAFE_CHECK_EQ(result.stats.evaluations, baseline.stats.evaluations);
    benchmark::DoNotOptimize(result.minimal_safe_nodes.size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel("pool of " + std::to_string(threads) +
                 " threads incl. caller, shared sharded cache");
}
BENCHMARK(BM_ParallelIncognitoCkSafety)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_IncognitoBaselines(benchmark::State& state) {
  // 0: k-anonymity, 1: entropy ℓ-diversity, 2: (c,k)-safety.
  const int which = static_cast<int>(state.range(0));
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(AdultQis());
  for (auto _ : state) {
    DisclosureCache cache;
    NodePredicate predicate;
    switch (which) {
      case 0:
        predicate = [](const LatticeNode& node) {
          auto b = BucketizeAtNode(AdultTable(), AdultQis(), node,
                                   kAdultOccupationColumn);
          CKSAFE_CHECK(b.ok());
          return IsKAnonymous(*b, 50);
        };
        break;
      case 1:
        predicate = [](const LatticeNode& node) {
          auto b = BucketizeAtNode(AdultTable(), AdultQis(), node,
                                   kAdultOccupationColumn);
          CKSAFE_CHECK(b.ok());
          return IsEntropyLDiverse(*b, 4.0);
        };
        break;
      default:
        predicate = CkSafetyPredicate(&cache, 0.6, 3);
    }
    auto result = FindMinimalSafeNodes(lattice, predicate, true);
    benchmark::DoNotOptimize(result.minimal_safe_nodes.size());
  }
  state.SetLabel(which == 0   ? "k-anonymity (k=50)"
                 : which == 1 ? "entropy l-diversity (l=4)"
                              : "(c,k)-safety (c=0.6, k=3)");
}
BENCHMARK(BM_IncognitoBaselines)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

void BM_ChainSearch(benchmark::State& state) {
  const bool binary = state.range(0) == 1;
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(AdultQis());
  const auto chain = lattice.CanonicalChain();
  for (auto _ : state) {
    DisclosureCache cache;
    const NodePredicate safe = CkSafetyPredicate(&cache, 0.6, 3);
    if (binary) {
      benchmark::DoNotOptimize(ChainBinarySearch(chain, safe));
    } else {
      size_t first = chain.size();
      for (size_t i = 0; i < chain.size(); ++i) {
        if (safe(chain[i])) {
          first = i;
          break;
        }
      }
      benchmark::DoNotOptimize(first);
    }
  }
  state.SetLabel(binary ? "binary search (Theorem 14)" : "linear scan");
}
BENCHMARK(BM_ChainSearch)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(0);

void BM_PerNodeCheckCost(benchmark::State& state) {
  // Cost of one predicate evaluation at the Figure-5 node.
  const int which = static_cast<int>(state.range(0));
  auto b = BucketizeAtNode(AdultTable(), AdultQis(), AdultFigure5Node(),
                           kAdultOccupationColumn);
  CKSAFE_CHECK(b.ok());
  for (auto _ : state) {
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(IsKAnonymous(*b, 50));
        break;
      case 1:
        benchmark::DoNotOptimize(IsEntropyLDiverse(*b, 4.0));
        break;
      default: {
        DisclosureAnalyzer analyzer(*b);
        benchmark::DoNotOptimize(analyzer.IsCkSafe(0.6, 3));
      }
    }
  }
  state.SetLabel(which == 0   ? "k-anonymity"
                 : which == 1 ? "entropy l-diversity"
                              : "(c,k)-safety");
}
BENCHMARK(BM_PerNodeCheckCost)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
