// E12: durable-store cost model — publish overhead, cold start vs
// rehydration, and buffer-pool behaviour across pool sizes.
//
//   BM_AppendPublish       fsync-bound durable publish, per snapshot
//   BM_ColdStartPublish    build a tenant fleet's serving state from
//                          scratch (publisher search + publish), the cost
//                          a restart pays WITHOUT the durable store
//   BM_RehydrateDirectory  Open() + RehydrateInto over the same fleet —
//                          the restart cost WITH the store: decode, no
//                          search
//   BM_LoadSnapshotPooled  random loads across a history for pool sizes
//                          straddling the working set; reports hit rate
//
// Correctness is asserted in-bench: every rehydrated and every
// pool-loaded snapshot is CHECKed bit-identical (SnapshotsBitIdentical)
// to the snapshot originally published. Numbers land in BENCH_PR8.json.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/persist/durable_store.h"
#include "cksafe/search/publisher.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/serve/snapshot_store.h"
#include "cksafe/util/check.h"

namespace cksafe {
namespace {

constexpr size_t kRows = 1200;
constexpr size_t kTenants = 8;
constexpr size_t kSequences = 4;  // publishes per tenant

std::string BenchDir(const std::string& name) {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The fleet's publish stream, built once: kTenants tenants, kSequences
/// releases each, all derived from the synthetic Adult workload at
/// different row counts so snapshots differ.
struct Fleet {
  std::vector<std::string> tenants;
  // [tenant][seq - 1] -> snapshot
  std::map<std::string, std::vector<std::shared_ptr<const ReleaseSnapshot>>>
      published;

  Fleet() {
    auto qis = AdultQuasiIdentifiers();
    CKSAFE_CHECK(qis.ok()) << qis.status();
    PublisherOptions options;
    options.c = 0.75;
    options.k = 3;
    Publisher publisher(options);
    for (size_t t = 0; t < kTenants; ++t) {
      const std::string tenant = "tenant" + std::to_string(t);
      tenants.push_back(tenant);
      PublishSession session;
      for (size_t s = 0; s < kSequences; ++s) {
        const size_t rows = kRows + 100 * t + 50 * s;
        const Table table = GenerateSyntheticAdult(rows, /*seed=*/20070419 + t);
        auto release =
            publisher.Publish(table, *qis, kAdultOccupationColumn, &session);
        CKSAFE_CHECK(release.ok()) << release.status();
        published[tenant].push_back(MakeReleaseSnapshot(s + 1, rows, *release));
      }
    }
  }
};

Fleet* GetFleet() {
  static Fleet* fleet = new Fleet();
  return fleet;
}

/// Writes the whole fleet into a fresh store at `dir`.
std::unique_ptr<DurableStore> WriteFleet(const std::string& dir,
                                         size_t pool_pages) {
  DurableStoreOptions options;
  options.dir = dir;
  options.buffer_pool_pages = pool_pages;
  auto store = DurableStore::Open(options);
  CKSAFE_CHECK(store.ok()) << store.status();
  Fleet* fleet = GetFleet();
  for (const std::string& tenant : fleet->tenants) {
    for (const auto& snapshot : fleet->published[tenant]) {
      CKSAFE_CHECK((*store)->AppendPublish(tenant, *snapshot).ok());
    }
  }
  return std::move(*store);
}

void BM_AppendPublish(benchmark::State& state) {
  Fleet* fleet = GetFleet();
  const std::string dir = BenchDir("cksafe_bench_append");
  DurableStoreOptions options;
  options.dir = dir;
  auto store = DurableStore::Open(options);
  CKSAFE_CHECK(store.ok()) << store.status();
  uint64_t round = 0;
  const auto& base = *fleet->published[fleet->tenants[0]][0];
  for (auto _ : state) {
    // Re-publish the same bucketization under a fresh sequence: measures
    // encode + append + 2x fsync, the steady-state durable publish cost.
    auto snapshot = std::make_shared<ReleaseSnapshot>(base);
    snapshot->sequence = ++round;
    CKSAFE_CHECK((*store)->AppendPublish("bench", *snapshot).ok());
  }
  state.SetItemsProcessed(state.iterations());
  store->reset();
  std::filesystem::remove_all(dir);
}

void BM_ColdStartPublish(benchmark::State& state) {
  // The restart path without durability: re-run the publisher search for
  // every tenant's latest release and publish into a fresh directory.
  auto qis = AdultQuasiIdentifiers();
  CKSAFE_CHECK(qis.ok()) << qis.status();
  for (auto _ : state) {
    PublisherOptions options;
    options.c = 0.75;
    options.k = 3;
    Publisher publisher(options);
    ServingDirectory directory;
    for (size_t t = 0; t < kTenants; ++t) {
      PublishSession session;
      const size_t rows = kRows + 100 * t + 50 * (kSequences - 1);
      const Table table = GenerateSyntheticAdult(rows, /*seed=*/20070419 + t);
      auto release =
          publisher.Publish(table, *qis, kAdultOccupationColumn, &session);
      CKSAFE_CHECK(release.ok()) << release.status();
      directory.GetOrAddTenant("tenant" + std::to_string(t))
          ->Publish(MakeReleaseSnapshot(1, rows, *release));
    }
    benchmark::DoNotOptimize(directory.tenants().size());
  }
  state.SetItemsProcessed(state.iterations() * kTenants);
}

void BM_RehydrateDirectory(benchmark::State& state) {
  // The restart path with durability: Open (recovery scan + validation)
  // plus RehydrateInto (decode each tenant's latest snapshot). No search.
  Fleet* fleet = GetFleet();
  const std::string dir = BenchDir("cksafe_bench_rehydrate");
  WriteFleet(dir, 64).reset();
  for (auto _ : state) {
    DurableStoreOptions options;
    options.dir = dir;
    options.buffer_pool_pages = 64;
    auto store = DurableStore::Open(options);
    CKSAFE_CHECK(store.ok()) << store.status();
    ServingDirectory directory;
    CKSAFE_CHECK((*store)->RehydrateInto(&directory).ok());
    for (const std::string& tenant : fleet->tenants) {
      const auto current = directory.Find(tenant)->Current();
      CKSAFE_CHECK(SnapshotsBitIdentical(
          *current, *fleet->published[tenant].back()));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTenants);
  std::filesystem::remove_all(dir);
}

void BM_LoadSnapshotPooled(benchmark::State& state) {
  // Random loads across the full fleet history through pools straddling
  // the working set; the hit-rate counter shows the tiering cliff.
  Fleet* fleet = GetFleet();
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  const std::string dir =
      BenchDir("cksafe_bench_pool_" + std::to_string(pool_pages));
  auto store = WriteFleet(dir, pool_pages);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string& tenant = fleet->tenants[i % kTenants];
    const uint64_t seq = 1 + (i / kTenants) % kSequences;
    const auto loaded = store->LoadSnapshot(tenant, seq);
    CKSAFE_CHECK(loaded.ok()) << loaded.status();
    CKSAFE_CHECK(
        SnapshotsBitIdentical(**loaded, *fleet->published[tenant][seq - 1]));
    ++i;
  }
  const BufferPool::Stats stats = store->buffer_stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  state.counters["hit_rate"] =
      total == 0 ? 0.0 : static_cast<double>(stats.hits) / total;
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.SetItemsProcessed(state.iterations());
  store.reset();
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_AppendPublish);
BENCHMARK(BM_ColdStartPublish)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RehydrateDirectory)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadSnapshotPooled)->Arg(2)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
