// Regenerates Figure 5: maximum disclosure vs. number of pieces of
// background knowledge, for basic implications vs. negated atoms, on the
// Adult table with Age in 20-year intervals and all other quasi-identifiers
// suppressed.
//
//   $ ./fig5_disclosure_vs_k                          # synthetic Adult
//   $ ./fig5_disclosure_vs_k --adult_csv=adult.data   # real UCI data
//
// Expected shape (paper, Figure 5): both curves increase with k, the
// implication curve dominates the negation curve but not by much, and both
// reach 1 by k = 13 (fourteen sensitive values).

#include <cstdio>
#include <string>

#include "cksafe/adult/adult.h"
#include "cksafe/experiments/figures.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/text_table.h"

using namespace cksafe;

namespace {

std::string Bar(double value, size_t width = 40) {
  const size_t filled = static_cast<size_t>(value * width + 0.5);
  std::string bar(filled, '#');
  bar.resize(width, ' ');
  return bar;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rows = static_cast<int64_t>(kAdultTupleCount);
  int64_t seed = 20070419;
  int64_t max_k = 13;
  std::string adult_csv;

  FlagParser flags;
  flags.AddInt64("rows", &rows, "synthetic Adult rows");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("max_k", &max_k, "largest attacker power to evaluate");
  flags.AddString("adult_csv", &adult_csv, "path to the real UCI adult.data");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }

  Table table = [&] {
    if (!adult_csv.empty()) {
      auto loaded = LoadAdultCsv(adult_csv);
      CKSAFE_CHECK(loaded.ok()) << loaded.status().ToString();
      return *std::move(loaded);
    }
    return GenerateSyntheticAdult(static_cast<size_t>(rows),
                                  static_cast<uint64_t>(seed));
  }();
  auto qis = AdultQuasiIdentifiers();
  CKSAFE_CHECK(qis.ok());

  auto result = RunFigure5(table, *qis, AdultFigure5Node(),
                           kAdultOccupationColumn,
                           static_cast<size_t>(max_k));
  CKSAFE_CHECK(result.ok()) << result.status().ToString();

  std::printf("Figure 5 — disclosure vs. number of pieces of background "
              "knowledge\n");
  std::printf("table: %zu tuples, Age -> 20-year intervals, Marital/Race/"
              "Gender suppressed (%zu buckets)\n\n",
              table.num_rows(), result->num_buckets);
  TextTable out;
  out.SetHeader({"k", "implication", "negation", "implication curve"});
  for (const Fig5Row& row : result->rows) {
    out.AddRow({std::to_string(row.k),
                TextTable::FormatDouble(row.implication),
                TextTable::FormatDouble(row.negation),
                "|" + Bar(row.implication) + "|"});
  }
  std::printf("%s", out.Render().c_str());

  // Sanity summary mirroring the paper's observations.
  bool dominated = true;
  bool monotone = true;
  for (size_t i = 0; i < result->rows.size(); ++i) {
    if (result->rows[i].implication + 1e-12 < result->rows[i].negation) {
      dominated = false;
    }
    if (i > 0 &&
        result->rows[i].implication + 1e-12 <
            result->rows[i - 1].implication) {
      monotone = false;
    }
  }
  std::printf("\nimplication >= negation for every k: %s\n",
              dominated ? "yes" : "NO (unexpected)");
  std::printf("curves monotone in k:               %s\n",
              monotone ? "yes" : "NO (unexpected)");
  if (static_cast<size_t>(max_k) >= kAdultOccupationValues - 1) {
    std::printf("disclosure reaches 1 by k = %zu:      %s\n",
                kAdultOccupationValues - 1,
                result->rows[kAdultOccupationValues - 1].implication >
                        1.0 - 1e-9
                    ? "yes"
                    : "NO (unexpected)");
  }
  return 0;
}
