// E10: the serving layer under concurrent readers and streaming writes.
//
// Measures queries/sec for two serving strategies over the same snapshot
// store, at 1/2/4/8 reader threads, while a writer thread swaps release
// snapshots every ~2 ms (the streaming re-publish cadence):
//
//   BM_ServeNaive    "per-query locking" baseline: a global mutex
//                    serializes each query, which resolves the current
//                    snapshot and runs its own dedicated point query
//                    (fresh DisclosureAnalyzer; it does get the shared
//                    MINIMIZE1 table cache — the baseline is naive about
//                    locking and sweep sharing, not about table reuse).
//   BM_ServeBatched  the QueryRouter: bounded admission queue, worker
//                    drains batches, one profile sweep per
//                    (tenant, snapshot) answers every coalesced query.
//
// Acceptance (BENCH_PR5.json): batched >= 2x naive queries/sec at 8
// reader threads. Correctness is asserted in-bench: a verification pass
// runs the full query mix through the router WHILE the writer swaps and
// CHECKs every answer bit-identical (exact double equality) to a fresh
// synchronous DisclosureAnalyzer over the snapshot the answer names.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/publisher.h"
#include "cksafe/serve/query_router.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/serve/snapshot_store.h"
#include "cksafe/util/check.h"

namespace cksafe {
namespace {

constexpr size_t kRows = 2500;
// The query mix spans the paper's Figure-5 budget range: the serving layer
// must answer any k a curve consumer asks for, not just the policy's k.
constexpr size_t kMaxK = 13;
constexpr char kTenant[] = "tenant";

/// Shared fixture: a snapshot store fed by a background writer that swaps
/// between releases of a growing synthetic Adult stream, a registry of
/// everything ever published (for bit-identity verification), and both
/// serving front ends.
struct ServingFixture {
  ServingDirectory directory;
  SnapshotStore* store = nullptr;
  // All snapshots the writer can publish, pre-built so the writer's swap
  // cost (not its release-search cost) is what readers contend with.
  std::vector<std::shared_ptr<const ReleaseSnapshot>> variants;
  std::mutex registry_mu;
  std::map<uint64_t, std::shared_ptr<const ReleaseSnapshot>> registry;
  std::atomic<uint64_t> next_sequence{1};
  std::atomic<bool> stop_writer{false};
  std::thread writer;
  std::unique_ptr<QueryRouter> router;

  // Naive baseline state: one big lock, a shared table cache.
  std::mutex naive_mu;
  DisclosureCache naive_cache;

  ServingFixture() {
    // Two releases of a growing stream: the warm-started publisher path
    // the serving layer is fed by in production.
    auto qis = AdultQuasiIdentifiers();
    CKSAFE_CHECK(qis.ok()) << qis.status();
    PublisherOptions options;
    options.c = 0.75;
    options.k = 3;
    Publisher publisher(options);
    PublishSession session;
    for (const size_t rows : {kRows, kRows + kRows / 4}) {
      const Table table = GenerateSyntheticAdult(rows, /*seed=*/20070419);
      auto release =
          publisher.Publish(table, *qis, kAdultOccupationColumn, &session);
      CKSAFE_CHECK(release.ok()) << release.status();
      variants.push_back(MakeReleaseSnapshot(1, rows, *release));
    }
    store = directory.GetOrAddTenant(kTenant);
    PublishNextVariant();
    router = std::make_unique<QueryRouter>(&directory);
    writer = std::thread([this] {
      while (!stop_writer.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        PublishNextVariant();
      }
    });
  }

  ~ServingFixture() {
    stop_writer = true;
    writer.join();
    router->Stop();
  }

  void PublishNextVariant() {
    const uint64_t sequence = next_sequence.fetch_add(1);
    const auto& variant = variants[sequence % variants.size()];
    auto snapshot = std::make_shared<ReleaseSnapshot>(*variant);
    snapshot->sequence = sequence;
    {
      std::lock_guard<std::mutex> lock(registry_mu);
      registry[sequence] = snapshot;
    }
    store->Publish(std::move(snapshot));
  }

  std::shared_ptr<const ReleaseSnapshot> Published(uint64_t sequence) {
    std::lock_guard<std::mutex> lock(registry_mu);
    const auto it = registry.find(sequence);
    CKSAFE_CHECK(it != registry.end());
    return it->second;
  }

  /// The deterministic query mix both strategies serve: cycles kinds and
  /// budgets. i is the caller's query counter.
  static Query MixedQuery(uint64_t i) {
    Query query;
    query.tenant = kTenant;
    query.k = 1 + i % kMaxK;
    switch (i % 4) {
      case 0:
        query.kind = QueryKind::kIsCkSafe;
        query.c = 0.75;
        break;
      case 1:
        query.kind = QueryKind::kDisclosure;
        break;
      case 2:
        query.kind = QueryKind::kProfileAtK;
        break;
      default:
        query.kind = QueryKind::kPerBucket;
        query.bucket = 0;
        break;
    }
    return query;
  }

  /// Naive per-query locking: the whole query — snapshot resolve, analyzer
  /// construction, dedicated point query — runs under one global mutex.
  QueryAnswer AskNaive(const Query& query) {
    std::lock_guard<std::mutex> lock(naive_mu);
    const auto snapshot = store->Current();
    DisclosureAnalyzer analyzer(snapshot->bucketization, &naive_cache);
    QueryAnswer answer;
    answer.snapshot_sequence = snapshot->sequence;
    switch (query.kind) {
      case QueryKind::kIsCkSafe: {
        const WorstCaseDisclosure worst =
            analyzer.MaxDisclosureImplications(query.k);
        answer.safe = IsSafeLogRatio(worst.log_r_min, query.c);
        answer.disclosure = worst.disclosure;
        answer.log_r = worst.log_r_min;
        break;
      }
      case QueryKind::kDisclosure: {
        const WorstCaseDisclosure worst =
            analyzer.MaxDisclosureImplications(query.k);
        answer.disclosure = worst.disclosure;
        answer.log_r = worst.log_r_min;
        break;
      }
      case QueryKind::kProfileAtK: {
        const DisclosureProfile profile = analyzer.Profile(query.k);
        answer.disclosure = profile.implication[query.k];
        answer.negation = profile.negation[query.k];
        answer.log_r = profile.implication_log_r[query.k];
        break;
      }
      case QueryKind::kPerBucket:
        answer.disclosure = analyzer.PerBucketDisclosure(query.k)[query.bucket];
        break;
    }
    return answer;
  }

  /// In-bench bit-identity gate: run the mix through the router while the
  /// writer is swapping and CHECK every answer against a fresh analyzer
  /// over the snapshot it names.
  void VerifyBatchedAnswers() {
    for (uint64_t i = 0; i < 64; ++i) {
      const Query query = MixedQuery(i);
      const auto answer = router->Ask(query);
      CKSAFE_CHECK(answer.ok()) << answer.status();
      const auto snapshot = Published(answer->snapshot_sequence);
      DisclosureAnalyzer fresh(snapshot->bucketization);
      switch (query.kind) {
        case QueryKind::kIsCkSafe: {
          const WorstCaseDisclosure worst =
              fresh.MaxDisclosureImplications(query.k);
          CKSAFE_CHECK(answer->safe == IsSafeLogRatio(worst.log_r_min, query.c));
          CKSAFE_CHECK(answer->disclosure == worst.disclosure);
          break;
        }
        case QueryKind::kDisclosure: {
          const WorstCaseDisclosure worst =
              fresh.MaxDisclosureImplications(query.k);
          CKSAFE_CHECK(answer->disclosure == worst.disclosure);
          CKSAFE_CHECK(answer->log_r == worst.log_r_min);
          break;
        }
        case QueryKind::kProfileAtK: {
          const DisclosureProfile profile = fresh.Profile(query.k);
          CKSAFE_CHECK(answer->disclosure == profile.implication[query.k]);
          CKSAFE_CHECK(answer->negation == profile.negation[query.k]);
          break;
        }
        case QueryKind::kPerBucket:
          CKSAFE_CHECK(answer->disclosure ==
                       fresh.PerBucketDisclosure(query.k)[query.bucket]);
          break;
      }
    }
  }
};

ServingFixture* Fixture() {
  static ServingFixture* fixture = [] {
    auto* f = new ServingFixture();
    f->VerifyBatchedAnswers();
    return f;
  }();
  return fixture;
}

void BM_ServeNaive(benchmark::State& state) {
  ServingFixture* fixture = Fixture();
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    const QueryAnswer answer = fixture->AskNaive(ServingFixture::MixedQuery(i++));
    benchmark::DoNotOptimize(answer.disclosure);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ServeBatched(benchmark::State& state) {
  ServingFixture* fixture = Fixture();
  uint64_t i = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    const auto answer = fixture->router->Ask(ServingFixture::MixedQuery(i++));
    CKSAFE_CHECK(answer.ok()) << answer.status();
    benchmark::DoNotOptimize(answer->disclosure);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const RouterStats stats = fixture->router->stats();
    state.counters["coalescing"] = stats.CoalescingFactor();
    state.counters["profile_sweeps"] =
        static_cast<double>(stats.profile_sweeps);
  }
}

BENCHMARK(BM_ServeNaive)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_ServeBatched)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
