// Experiment E9 (DESIGN.md §9.4): the PR-4 disclosure kernel — log-space
// rows, arena reuse, tiled scans with monotone-argmin pruning — against a
// verbatim reproduction of the historical linear-domain kernel (chained
// double products, full O(k) scan per cell, fresh vectors per node).
//
// Each iteration computes the full disclosure profile sweep (every budget
// h <= k from one forward pass) the way the lattice searches consume it.
// On non-underflowing workloads the two kernels must agree: every
// iteration CHECKs the curves against each other at 1e-9 relative before
// the timing counts. Tracked run: BENCH_PR4.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "cksafe/core/logprob.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/util/check.h"
#include "cksafe/util/random.h"

namespace cksafe {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Random descending histograms over a 14-value domain, as the Adult-style
// workloads produce them; tables are prebuilt and shared (the cache does
// that in production), so the timing isolates the sweep itself.
std::vector<Minimize2Bucket> RandomInputs(size_t num_buckets, size_t budget,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::shared_ptr<const Minimize1Table>> tables;
  std::vector<Minimize2Bucket> inputs;
  for (size_t i = 0; i < num_buckets; ++i) {
    std::vector<uint32_t> histogram(14, 0);
    const uint32_t size = 2 + static_cast<uint32_t>(rng.NextBelow(24));
    for (uint32_t t = 0; t < size; ++t) ++histogram[rng.NextBelow(14)];
    std::sort(histogram.begin(), histogram.end(), std::greater<uint32_t>());
    while (histogram.back() == 0) histogram.pop_back();
    // A handful of distinct tables: reuse one in four to mimic the
    // histogram dedup the DisclosureCache provides.
    if (tables.size() < 4 || rng.NextBelow(4) == 0) {
      tables.push_back(
          std::make_shared<const Minimize1Table>(histogram, budget));
    }
    const auto& table = tables[rng.NextBelow(tables.size())];
    // ratio = n_b / n_b(s0), recovered from the table itself:
    // MinProbability(1) = (n - c0) / n  =>  c0 = n (1 - p1).
    const double p1 = std::exp(table->MinLogProbability(1));
    const double c0 = std::max(
        1.0, std::round(static_cast<double>(table->n()) * (1.0 - p1)));
    inputs.push_back(
        Minimize2Bucket{table, static_cast<double>(table->n()) / c0});
  }
  return inputs;
}

// The historical kernel, verbatim: linear-domain forward sweep, fresh
// vectors per invocation, unpruned O(k) scans. Per-bucket minima are read
// from memoized linear arrays, exactly as the pre-PR4 Minimize1Table
// served them (the exp() the linear view costs today must not be billed
// to the baseline). Returns with_a[m][h].
std::vector<double> LinearKernelProfile(
    const std::vector<Minimize2Bucket>& buckets,
    const std::vector<const double*>& linear_min, size_t k) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  std::vector<double> no_a((m + 1) * width, kInf);
  std::vector<double> with_a((m + 1) * width, kInf);
  no_a[0] = 1.0;
  for (size_t i = 1; i <= m; ++i) {
    const double* min_prob = linear_min[i - 1];
    const double ratio = buckets[i - 1].ratio;
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      double best_w = kInf;
      for (size_t t = 0; t <= h; ++t) {
        const double head = no_a[(i - 1) * width + (h - t)];
        if (head != kInf) {
          best = std::min(best, min_prob[t] * head);
          best_w = std::min(best_w, min_prob[t + 1] * ratio * head);
        }
        const double head_with = with_a[(i - 1) * width + (h - t)];
        if (head_with != kInf) {
          best_w = std::min(best_w, min_prob[t] * head_with);
        }
      }
      no_a[i * width + h] = best;
      with_a[i * width + h] = best_w;
    }
  }
  return std::vector<double>(with_a.begin() + m * width, with_a.end());
}

// Memoized linear minima per bucket (aliasing shared tables), budget k+1.
struct LinearTables {
  std::vector<std::vector<double>> storage;   // one per distinct table
  std::vector<const double*> per_bucket;      // aliases into storage
};

LinearTables MaterializeLinearMinima(
    const std::vector<Minimize2Bucket>& buckets, size_t k) {
  LinearTables out;
  std::vector<const Minimize1Table*> seen;
  for (const Minimize2Bucket& bucket : buckets) {
    size_t index = seen.size();
    for (size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == bucket.table.get()) index = i;
    }
    if (index == seen.size()) {
      seen.push_back(bucket.table.get());
      std::vector<double> linear(k + 2);
      for (size_t t = 0; t <= k + 1; ++t) {
        linear[t] = bucket.table->MinProbability(t);
      }
      out.storage.push_back(std::move(linear));
    }
    out.per_bucket.push_back(nullptr);  // fixed up below (storage may move)
  }
  size_t b = 0;
  for (const Minimize2Bucket& bucket : buckets) {
    size_t index = 0;
    for (size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] == bucket.table.get()) index = i;
    }
    out.per_bucket[b++] = out.storage[index].data();
  }
  return out;
}

// --- E9: profile sweep, historical linear kernel vs log-space kernel ------

void BM_MinimizeKernelProfileSweep(benchmark::State& state) {
  const bool log_kernel = state.range(0) == 1;
  const size_t num_buckets = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  const std::vector<Minimize2Bucket> inputs =
      RandomInputs(num_buckets, k + 1, /*seed=*/42);
  const LinearTables linear_tables = MaterializeLinearMinima(inputs, k);

  // Cross-check once up front: on this (non-underflowing) workload the
  // kernels agree to 1e-9 relative on every profile column.
  {
    const std::vector<double> linear =
        LinearKernelProfile(inputs, linear_tables.per_bucket, k);
    Minimize2Forward dp(k);
    dp.Recompute(inputs, 0);
    for (size_t h = 0; h <= k; ++h) {
      const double r_new = std::exp(dp.LogRMinAt(h));
      CKSAFE_CHECK(std::abs(r_new - linear[h]) <=
                   1e-9 * std::max(linear[h], 1e-300))
          << "kernel mismatch at h=" << h;
    }
  }

  Minimize2Workspace workspace;
  double sink = 0.0;
  for (auto _ : state) {
    if (log_kernel) {
      Minimize2Forward& dp = workspace.SweepForBudget(k);
      dp.Recompute(inputs, 0);
      for (size_t h = 0; h <= k; ++h) sink += dp.LogRMinAt(h);
    } else {
      const std::vector<double> curve =
          LinearKernelProfile(inputs, linear_tables.per_bucket, k);
      for (size_t h = 0; h <= k; ++h) sink += curve[h];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_buckets));
  state.SetLabel(log_kernel ? "log-space kernel (pruned, arena reuse)"
                            : "historical linear kernel");
}
BENCHMARK(BM_MinimizeKernelProfileSweep)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 2000, 13})
    ->Args({1, 2000, 13})
    ->Args({0, 500, 64})
    ->Args({1, 500, 64})
    ->Args({0, 200, 128})
    ->Args({1, 200, 128});

// --- E9b: the per-bucket vulnerability sweep under the same comparison ----

void BM_MinimizeKernelPerBucketSweep(benchmark::State& state) {
  const size_t num_buckets = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const std::vector<Minimize2Bucket> inputs =
      RandomInputs(num_buckets, k + 1, /*seed=*/7);
  Minimize2Workspace workspace;
  double sink = 0.0;
  for (auto _ : state) {
    Minimize2Forward& dp = workspace.SweepForBudget(k);
    dp.Recompute(inputs, 0);
    ComputeNoASuffix(inputs, k, &workspace.suffix);
    const std::vector<LogProb> per_bucket =
        PerBucketLogRatioSweep(inputs, k, dp, workspace.suffix);
    sink += per_bucket[0];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_buckets));
}
BENCHMARK(BM_MinimizeKernelPerBucketSweep)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 13})
    ->Args({500, 64});

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
