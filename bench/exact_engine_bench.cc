// Benchmarks exhibiting Theorem 8 (experiment E6 in DESIGN.md): the exact
// engine's cost is the number of consistent worlds, which grows factorially
// with bucket size — the reason the paper's polynomial DP matters. The last
// benchmarks put the exponential brute force and the O(|B| k^3) DP side by
// side on the same instance.

#include <benchmark/benchmark.h>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/exact/world_enumerator.h"

namespace cksafe {
namespace {

// One bucket holding `pairs` sensitive values twice each: n = 2*pairs,
// world count = (2p)! / 2^p.
Bucketization PairedBucket(size_t pairs) {
  Bucketization b(pairs);
  Bucket bucket;
  bucket.histogram.assign(pairs, 2);
  for (PersonId p = 0; p < 2 * pairs; ++p) bucket.members.push_back(p);
  CKSAFE_CHECK(b.AddBucket(std::move(bucket)).ok());
  return b;
}

// The paper's Figure 3 bucketization (two buckets of five, 1800 worlds).
Bucketization HospitalBuckets() {
  Bucketization b(6);
  Bucket males;
  males.members = {0, 1, 2, 3, 4};
  males.histogram = {2, 2, 1, 0, 0, 0};
  CKSAFE_CHECK(b.AddBucket(std::move(males)).ok());
  Bucket females;
  females.members = {5, 6, 7, 8, 9};
  females.histogram = {2, 0, 0, 1, 1, 1};
  CKSAFE_CHECK(b.AddBucket(std::move(females)).ok());
  return b;
}

void BM_WorldEnumeration(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  const Bucketization b = PairedBucket(pairs);
  const WorldEnumerator enumerator(b);
  for (auto _ : state) {
    size_t count = 0;
    enumerator.ForEachWorld([&](const std::vector<int32_t>&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
    state.counters["worlds"] = static_cast<double>(count);
  }
}
BENCHMARK(BM_WorldEnumeration)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2)   //       6 worlds
    ->Arg(3)   //      90 worlds
    ->Arg(4)   //   2,520 worlds
    ->Arg(5);  // 113,400 worlds

void BM_ExactEngineCreate(benchmark::State& state) {
  const size_t pairs = static_cast<size_t>(state.range(0));
  const Bucketization b = PairedBucket(pairs);
  for (auto _ : state) {
    auto engine = ExactEngine::Create(b);
    CKSAFE_CHECK(engine.ok());
    benchmark::DoNotOptimize(engine->num_worlds());
  }
}
BENCHMARK(BM_ExactEngineCreate)
    ->Unit(benchmark::kMillisecond)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5);

// --- brute force vs. DP on the identical question ---

void BM_BruteForceMaxDisclosure(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Bucketization b = HospitalBuckets();
  auto engine = ExactEngine::Create(b);
  CKSAFE_CHECK(engine.ok());
  for (auto _ : state) {
    auto result =
        engine->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true);
    CKSAFE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->disclosure);
  }
  state.SetLabel("exhaustive search over formulas");
}
BENCHMARK(BM_BruteForceMaxDisclosure)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2);

void BM_DpMaxDisclosure(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Bucketization b = HospitalBuckets();
  for (auto _ : state) {
    DisclosureAnalyzer analyzer(b);
    benchmark::DoNotOptimize(analyzer.MaxDisclosureImplications(k).disclosure);
  }
  state.SetLabel("Theorem 9 + MINIMIZE2 DP");
}
BENCHMARK(BM_DpMaxDisclosure)->Arg(1)->Arg(2)->Arg(4);

void BM_ExactConditionalProbability(benchmark::State& state) {
  const Bucketization b = HospitalBuckets();
  auto engine = ExactEngine::Create(b);
  CKSAFE_CHECK(engine.ok());
  KnowledgeFormula phi;
  phi.AddSimple(SimpleImplication{Atom{6, 0}, Atom{1, 0}});
  for (auto _ : state) {
    auto p = engine->ConditionalProbability(Atom{1, 0}, phi);
    CKSAFE_CHECK(p.ok());
    benchmark::DoNotOptimize(*p);
  }
}
BENCHMARK(BM_ExactConditionalProbability);

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
