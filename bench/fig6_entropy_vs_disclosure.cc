// Regenerates Figure 6: minimum worst-case disclosure vs. minimum bucket
// entropy, across all 72 tables of the Adult generalization lattice, for
// k = 1, 3, 5, 7, 9, 11 implications.
//
//   $ ./fig6_entropy_vs_disclosure
//   $ ./fig6_entropy_vs_disclosure --per_table   # raw 72-table sweep too
//
// Expected shape (paper, Figure 6): for each k, disclosure decreases as the
// minimum entropy h grows (higher-entropy buckets are harder to attack),
// and larger k shifts the whole curve upward.

#include <cstdio>
#include <string>

#include "cksafe/adult/adult.h"
#include "cksafe/experiments/figures.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/string_util.h"
#include "cksafe/util/text_table.h"

using namespace cksafe;

int main(int argc, char** argv) {
  int64_t rows = static_cast<int64_t>(kAdultTupleCount);
  int64_t seed = 20070419;
  bool per_table = false;
  std::string adult_csv;

  FlagParser flags;
  flags.AddInt64("rows", &rows, "synthetic Adult rows");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddBool("per_table", &per_table, "also dump the raw 72-table sweep");
  flags.AddString("adult_csv", &adult_csv, "path to the real UCI adult.data");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }

  Table table = [&] {
    if (!adult_csv.empty()) {
      auto loaded = LoadAdultCsv(adult_csv);
      CKSAFE_CHECK(loaded.ok()) << loaded.status().ToString();
      return *std::move(loaded);
    }
    return GenerateSyntheticAdult(static_cast<size_t>(rows),
                                  static_cast<uint64_t>(seed));
  }();
  auto qis = AdultQuasiIdentifiers();
  CKSAFE_CHECK(qis.ok());

  auto result = RunFigure6(table, *qis, kAdultOccupationColumn);
  CKSAFE_CHECK(result.ok()) << result.status().ToString();

  std::printf("Figure 6 — min worst-case disclosure vs. min bucket entropy "
              "(nats)\n");
  std::printf("table: %zu tuples; %zu lattice nodes evaluated; series "
              "k = 1,3,5,7,9,11\n\n",
              table.num_rows(), result->tables.size());

  if (per_table) {
    TextTable sweep;
    sweep.SetHeader({"node (Age,Mar,Race,Gen)", "buckets", "min entropy",
                     "w(T,1)", "w(T,3)", "w(T,5)", "w(T,7)", "w(T,9)",
                     "w(T,11)"});
    for (const Fig6TableResult& t : result->tables) {
      std::vector<std::string> row = {
          StrFormat("[%d,%d,%d,%d]", t.node[0], t.node[1], t.node[2],
                    t.node[3]),
          std::to_string(t.num_buckets),
          TextTable::FormatDouble(t.min_entropy_nats)};
      for (double d : t.disclosure) row.push_back(TextTable::FormatDouble(d));
      sweep.AddRow(std::move(row));
    }
    std::printf("%s\n", sweep.Render().c_str());
  }

  // Aggregated series: one row per distinct entropy value, min disclosure
  // among the tables attaining it (the plotted curves).
  TextTable series;
  series.SetHeader({"min entropy", "k=1", "k=3", "k=5", "k=7", "k=9",
                    "k=11"});
  const auto base = AggregateFig6Series(*result, 0);
  std::vector<std::vector<Fig6SeriesPoint>> all_series;
  for (size_t i = 0; i < result->ks.size(); ++i) {
    all_series.push_back(AggregateFig6Series(*result, i));
  }
  for (size_t point = 0; point < base.size(); ++point) {
    std::vector<std::string> row = {
        TextTable::FormatDouble(base[point].entropy)};
    for (const auto& s : all_series) {
      row.push_back(TextTable::FormatDouble(s[point].min_disclosure));
    }
    series.AddRow(std::move(row));
  }
  std::printf("%s", series.Render().c_str());

  // The paper: "We plotted an analogous graph (which we do not show here)
  // for negation statements and observed very similar behavior." Here it is.
  TextTable neg_series;
  neg_series.SetHeader({"min entropy", "k=1", "k=3", "k=5", "k=7", "k=9",
                        "k=11", "(negated-atom adversary)"});
  std::vector<std::vector<Fig6SeriesPoint>> neg_all;
  for (size_t i = 0; i < result->ks.size(); ++i) {
    neg_all.push_back(AggregateFig6Series(*result, i, 1e-6,
                                          /*use_negation=*/true));
  }
  for (size_t point = 0; point < base.size(); ++point) {
    std::vector<std::string> row = {
        TextTable::FormatDouble(neg_all[0][point].entropy)};
    for (const auto& s : neg_all) {
      row.push_back(TextTable::FormatDouble(s[point].min_disclosure));
    }
    row.push_back("");
    neg_series.AddRow(std::move(row));
  }
  std::printf("\nFigure 6 analog for negation statements (not shown in the "
              "paper):\n%s",
              neg_series.Render().c_str());

  // Shape checks mirroring the paper's observations.
  bool k_ordered = true;
  for (size_t point = 0; point < base.size(); ++point) {
    for (size_t i = 1; i < all_series.size(); ++i) {
      if (all_series[i][point].min_disclosure + 1e-12 <
          all_series[i - 1][point].min_disclosure) {
        k_ordered = false;
      }
    }
  }
  const double low_h = all_series[0].front().min_disclosure;
  const double high_h = all_series[0].back().min_disclosure;
  std::printf("\nlarger k gives pointwise larger disclosure: %s\n",
              k_ordered ? "yes" : "NO (unexpected)");
  std::printf("k=1 disclosure falls from %.4f (lowest h) to %.4f "
              "(highest h): %s\n",
              low_h, high_h, high_h <= low_h ? "yes" : "NO (unexpected)");
  return 0;
}
