// Benchmarks for the profile + multi-policy subsystem (experiment E8 in
// DESIGN.md): one-sweep disclosure profiles vs. the historical per-k
// MINIMIZE2 loop, and the shared multi-policy lattice search vs. N
// independent per-policy searches. Every timed win is CHECKed correct
// first: the one-sweep curve must equal the per-k loop's curve exactly,
// and the multi-policy per-policy frontiers must equal the independent
// searches' (the full differential contract lives in
// tests/multi_policy_search_test.cc).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/lattice_search.h"

namespace cksafe {
namespace {

constexpr size_t kRows = 5000;
constexpr size_t kMaxK = 12;

const Table& AdultTable() {
  static const Table* table = new Table(GenerateSyntheticAdult(kRows, 7));
  return *table;
}

const std::vector<QuasiIdentifier>& AdultQis() {
  static const auto* qis = [] {
    auto q = AdultQuasiIdentifiers();
    CKSAFE_CHECK(q.ok());
    return new std::vector<QuasiIdentifier>(*std::move(q));
  }();
  return *qis;
}

const Bucketization& Fig5Bucketization() {
  static const Bucketization* b = [] {
    auto made = BucketizeAtNode(AdultTable(), AdultQis(), AdultFigure5Node(),
                                kAdultOccupationColumn);
    CKSAFE_CHECK(made.ok());
    return new Bucketization(*std::move(made));
  }();
  return *b;
}

// The implication curve, mode 0: the historical per-k loop — one full
// MINIMIZE2 sweep per budget (max_k + 1 sweeps); mode 1: the one-sweep
// profile. Both modes share warmed MINIMIZE1 tables so the measured gap
// is pure sweep count.
void BM_ProfileVsPerKLoop(benchmark::State& state) {
  const bool one_sweep = state.range(0) == 1;
  const Bucketization& bucketization = Fig5Bucketization();
  DisclosureCache cache;
  DisclosureAnalyzer analyzer(bucketization, &cache);

  // Reference: the per-k point queries (what the old loop computed).
  std::vector<double> reference(kMaxK + 1);
  for (size_t k = 0; k <= kMaxK; ++k) {
    reference[k] = analyzer.MaxDisclosureImplications(k).disclosure;
  }

  for (auto _ : state) {
    std::vector<double> curve;
    if (one_sweep) {
      curve = analyzer.ImplicationCurve(kMaxK);
    } else {
      curve.resize(kMaxK + 1);
      for (size_t k = 0; k <= kMaxK; ++k) {
        curve[k] = analyzer.MaxDisclosureImplications(k).disclosure;
      }
    }
    CKSAFE_CHECK(curve == reference) << "curve diverged from per-k queries";
    benchmark::DoNotOptimize(curve.data());
  }
  state.counters["sweeps_per_curve"] =
      static_cast<double>(one_sweep ? 1 : kMaxK + 1);
  state.SetLabel(one_sweep ? "one-sweep profile"
                           : "per-k loop (historical ImplicationCurve)");
}
BENCHMARK(BM_ProfileVsPerKLoop)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1);

const std::vector<CkPolicy>& TenantPolicies() {
  // Four tenants, strictest first: (0.5, 4) dominates the rest, the shape
  // cross-policy pruning exploits.
  static const auto* policies = new std::vector<CkPolicy>{
      {0.5, 4}, {0.6, 3}, {0.7, 2}, {0.8, 1}};
  return *policies;
}

// Multi-policy search, mode 0: N independent FindMinimalSafeNodes runs
// (one per policy, shared table cache — the strongest per-tenant
// baseline); mode 1: one FindMinimalSafeNodesMultiPolicy sweep. The
// frontier equality CHECK runs every iteration.
void BM_MultiPolicySearch(benchmark::State& state) {
  const bool multi = state.range(0) == 1;
  const size_t num_policies = static_cast<size_t>(state.range(1));
  const Table& table = AdultTable();
  const auto& qis = AdultQis();
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);
  std::vector<CkPolicy> policies(TenantPolicies().begin(),
                                 TenantPolicies().begin() + num_policies);
  size_t max_k = 0;
  for (const CkPolicy& policy : policies) max_k = std::max(max_k, policy.k);

  // Reference frontiers from independent runs (cold, outside timing).
  std::vector<std::vector<LatticeNode>> reference;
  for (const CkPolicy& policy : policies) {
    DisclosureCache cache;
    const NodePredicate is_safe = [&](const LatticeNode& node) {
      auto b = BucketizeAtNode(table, qis, node, kAdultOccupationColumn);
      CKSAFE_CHECK(b.ok());
      return DisclosureAnalyzer(*b, &cache).IsCkSafe(policy.c, policy.k);
    };
    reference.push_back(
        FindMinimalSafeNodes(lattice, is_safe, LatticeSearchOptions{})
            .minimal_safe_nodes);
  }

  uint64_t shared_profiles = 0;
  uint64_t point_evaluations = 0;
  for (auto _ : state) {
    if (multi) {
      DisclosureCache cache;
      const NodeProfiler profile_of =
          [&](const LatticeNode& node) -> std::optional<DisclosureProfile> {
        auto b = BucketizeAtNode(table, qis, node, kAdultOccupationColumn);
        CKSAFE_CHECK(b.ok());
        // Classification reads only the implication curve.
        DisclosureProfile profile;
        profile.implication =
            DisclosureAnalyzer(*b, &cache).ImplicationCurve(max_k);
        return profile;
      };
      const MultiPolicySearchResult result = FindMinimalSafeNodesMultiPolicy(
          lattice, profile_of, policies, MultiPolicySearchOptions{});
      shared_profiles = result.stats.profiles_computed;
      for (size_t p = 0; p < policies.size(); ++p) {
        CKSAFE_CHECK(result.per_policy[p].minimal_safe_nodes == reference[p])
            << "multi-policy frontier diverged from independent search";
      }
    } else {
      point_evaluations = 0;
      // One table cache shared across the N runs — stronger than the
      // realistic per-tenant-session baseline, so the measured speedup is
      // all sweep/bucketization sharing, not MINIMIZE1 reuse.
      DisclosureCache cache;
      for (size_t p = 0; p < policies.size(); ++p) {
        const CkPolicy& policy = policies[p];
        const NodePredicate is_safe = [&](const LatticeNode& node) {
          auto b = BucketizeAtNode(table, qis, node, kAdultOccupationColumn);
          CKSAFE_CHECK(b.ok());
          return DisclosureAnalyzer(*b, &cache).IsCkSafe(policy.c, policy.k);
        };
        const LatticeSearchResult result =
            FindMinimalSafeNodes(lattice, is_safe, LatticeSearchOptions{});
        point_evaluations += result.stats.evaluations;
        CKSAFE_CHECK(result.minimal_safe_nodes == reference[p]);
      }
    }
  }
  if (multi) {
    state.counters["profiles"] = static_cast<double>(shared_profiles);
  } else {
    state.counters["evaluations"] = static_cast<double>(point_evaluations);
  }
  state.counters["policies"] = static_cast<double>(num_policies);
  state.SetLabel(multi ? "one shared multi-policy sweep"
                       : "independent per-policy searches");
}
BENCHMARK(BM_MultiPolicySearch)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 2})
    ->Args({1, 2});

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
