// Benchmarks for the incremental streaming engine (experiment E7 in
// DESIGN.md): re-analysis cost after batched inserts, incremental vs. a
// from-scratch DisclosureAnalyzer per batch (with and without a persistent
// MINIMIZE1 cache), and warm- vs. cold-started sequential publishing.
// Every incremental re-analysis result is CHECKed bit-identical to the
// from-scratch answer before it is timed as a win; publish-path warm/cold
// equivalence is asserted in tests/streaming_property_test.cc.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/publisher.h"
#include "cksafe/stream/incremental_analyzer.h"
#include "cksafe/stream/multi_policy_publisher.h"
#include "cksafe/stream/streaming_publisher.h"

namespace cksafe {
namespace {

constexpr size_t kRows = 20000;
constexpr size_t kK = 3;

const Table& AdultTable() {
  static const Table* table = new Table(GenerateSyntheticAdult(kRows, 7));
  return *table;
}

const std::vector<QuasiIdentifier>& AdultQis() {
  static const auto* qis = [] {
    auto q = AdultQuasiIdentifiers();
    CKSAFE_CHECK(q.ok());
    return new std::vector<QuasiIdentifier>(*std::move(q));
  }();
  return *qis;
}

// The stream fixture: every row mapped to its bucket at `node` (generalized
// quasi-identifier tuple), in row order — the arrival order both engines
// see, so person ids agree and results can be compared exactly.
struct StreamFixture {
  std::vector<size_t> bucket_of_row;   // dense bucket ids by first arrival
  std::vector<int32_t> sensitive;      // per row
  size_t num_buckets = 0;
};

StreamFixture MakeFixture(const LatticeNode& node) {
  const Table& table = AdultTable();
  const auto& qis = AdultQis();
  StreamFixture fixture;
  std::unordered_map<uint64_t, size_t> bucket_ids;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    uint64_t key = 0;
    for (size_t q = 0; q < qis.size(); ++q) {
      const int32_t code = table.at(static_cast<PersonId>(row), qis[q].column);
      key = key * 1000003 +
            static_cast<uint64_t>(
                qis[q].hierarchy->GroupOf(code, static_cast<size_t>(node[q])));
    }
    auto [it, inserted] = bucket_ids.emplace(key, bucket_ids.size());
    fixture.bucket_of_row.push_back(it->second);
    fixture.sensitive.push_back(
        table.at(static_cast<PersonId>(row), kAdultOccupationColumn));
  }
  fixture.num_buckets = bucket_ids.size();
  return fixture;
}

const StreamFixture& Fixture(int which) {
  // 0: the Figure-5 node (few fat buckets); 1: a fine node (age in 5-year
  // intervals, marital kept) with two orders of magnitude more buckets,
  // where per-batch DP-row reuse dominates.
  static const StreamFixture* coarse = new StreamFixture(
      MakeFixture(AdultFigure5Node()));
  static const StreamFixture* fine = new StreamFixture(
      MakeFixture(LatticeNode{1, 0, 1, 0}));
  return which == 0 ? *coarse : *fine;
}

// From-scratch baseline: rebuilds member lists, histograms and the analyzer
// for the whole prefix, then queries. This is what every release paid
// before the stream/ subsystem existed.
double FreshAnalysis(const StreamFixture& fixture, size_t prefix,
                     size_t num_buckets, DisclosureCache* cache) {
  Bucketization b(kAdultOccupationValues);
  std::vector<Bucket> buckets(num_buckets);
  for (auto& bucket : buckets) {
    bucket.histogram.assign(kAdultOccupationValues, 0);
  }
  for (size_t row = 0; row < prefix; ++row) {
    Bucket& bucket = buckets[fixture.bucket_of_row[row]];
    bucket.members.push_back(static_cast<PersonId>(row));
    ++bucket.histogram[fixture.sensitive[row]];
  }
  for (auto& bucket : buckets) {
    if (bucket.members.empty()) continue;
    CKSAFE_CHECK(b.AddBucket(std::move(bucket)).ok());
  }
  DisclosureAnalyzer analyzer(b, cache);
  return analyzer.MaxDisclosureImplications(kK).disclosure;
}

// One pass over the stream: `batch` rows arrive, the engine re-analyzes.
// mode 0: fresh analyzer + cold cache per batch (full recomputation),
// mode 1: fresh analyzer + persistent cache (PR-1 state of the art),
// mode 2: IncrementalAnalyzer (this PR).
void BM_StreamingReanalysis(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  const size_t batch = static_cast<size_t>(state.range(2));
  const StreamFixture& fixture = Fixture(which);
  const size_t rows = fixture.bucket_of_row.size();

  // Reference curve (one disclosure value per batch) for the CHECK below.
  static std::unordered_map<std::string, std::vector<double>> reference;
  const std::string ref_key = std::to_string(which) + ":" + std::to_string(batch);
  if (reference.find(ref_key) == reference.end()) {
    std::vector<double> curve;
    for (size_t end = batch; end <= rows; end += batch) {
      DisclosureCache cold;
      curve.push_back(FreshAnalysis(fixture, end, fixture.num_buckets, &cold));
    }
    reference.emplace(ref_key, std::move(curve));
  }
  const std::vector<double>& expected = reference[ref_key];

  for (auto _ : state) {
    size_t checks = 0;
    if (mode == 2) {
      DisclosureCache cache;
      IncrementalAnalyzer inc(kAdultOccupationValues, &cache);
      std::vector<int64_t> bucket_index(fixture.num_buckets, -1);
      std::vector<std::vector<int32_t>> pending(fixture.num_buckets);
      for (size_t end = batch; end <= rows; end += batch) {
        std::vector<size_t> touched;
        for (size_t row = end - batch; row < end; ++row) {
          const size_t key = fixture.bucket_of_row[row];
          if (pending[key].empty()) touched.push_back(key);
          pending[key].push_back(fixture.sensitive[row]);
        }
        for (size_t key : touched) {
          if (bucket_index[key] < 0) {
            bucket_index[key] = static_cast<int64_t>(inc.AddBucket(pending[key]));
          } else {
            inc.AddTuples(static_cast<size_t>(bucket_index[key]), pending[key]);
          }
          pending[key].clear();
        }
        const double d = inc.MaxDisclosureImplications(kK).disclosure;
        CKSAFE_CHECK(d == expected[checks])
            << "incremental diverged from full recomputation";
        ++checks;
      }
    } else {
      DisclosureCache persistent;
      for (size_t end = batch; end <= rows; end += batch) {
        DisclosureCache cold;
        DisclosureCache* cache = mode == 1 ? &persistent : &cold;
        const double d = FreshAnalysis(fixture, end, fixture.num_buckets, cache);
        CKSAFE_CHECK(d == expected[checks]);
        ++checks;
      }
    }
    benchmark::DoNotOptimize(checks);
  }
  state.counters["batches"] = static_cast<double>(rows / batch);
  state.counters["buckets"] = static_cast<double>(fixture.num_buckets);
  state.SetLabel(std::string(which == 0 ? "coarse (Fig5 node)" : "fine node") +
                 (mode == 0   ? ", fresh + cold cache"
                  : mode == 1 ? ", fresh + persistent cache"
                              : ", incremental"));
}
BENCHMARK(BM_StreamingReanalysis)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 0, 500})
    ->Args({0, 1, 500})
    ->Args({0, 2, 500})
    ->Args({1, 0, 500})
    ->Args({1, 1, 500})
    ->Args({1, 2, 500});

// Sequential publishing: warm-started (persistent PublishSession: shared
// cache + seed frontier) vs. cold Publisher::Publish per prefix. Warm/cold
// output equivalence is asserted per release by
// StreamingPublisherTest.EachReleaseIsBitIdenticalToColdPublish; here only
// success is CHECKed so the timed loop does not pay for a second publish.
void BM_StreamingPublish(benchmark::State& state) {
  const bool warm = state.range(0) == 1;
  constexpr size_t kPublishRows = 2000;
  constexpr size_t kBatch = 400;
  const Table full = GenerateSyntheticAdult(kPublishRows, 7);
  PublisherOptions options;
  options.c = 0.75;
  options.k = 2;

  auto row_cells = [&](size_t row) {
    std::vector<int32_t> cells(full.num_columns());
    for (size_t c = 0; c < full.num_columns(); ++c) {
      cells[c] = full.at(static_cast<PersonId>(row), c);
    }
    return cells;
  };

  uint64_t evaluations = 0;
  for (auto _ : state) {
    evaluations = 0;
    if (warm) {
      Table initial(full.schema());
      for (size_t r = 0; r < kBatch; ++r) {
        CKSAFE_CHECK(initial.AppendRow(row_cells(r)).ok());
      }
      StreamingPublisher stream(std::move(initial), AdultQis(),
                                kAdultOccupationColumn, options);
      for (size_t end = kBatch; end <= kPublishRows; end += kBatch) {
        auto release = stream.PublishNext();
        CKSAFE_CHECK(release.ok());
        evaluations += release->release.search_stats.evaluations;
        if (end + kBatch <= kPublishRows) {
          std::vector<std::vector<int32_t>> rows;
          for (size_t r = end; r < end + kBatch; ++r) {
            rows.push_back(row_cells(r));
          }
          CKSAFE_CHECK(stream.AddBatch(rows).ok());
        }
      }
    } else {
      const Publisher publisher(options);
      Table prefix(full.schema());
      for (size_t end = kBatch; end <= kPublishRows; end += kBatch) {
        for (size_t r = prefix.num_rows(); r < end; ++r) {
          CKSAFE_CHECK(prefix.AppendRow(row_cells(r)).ok());
        }
        auto release = publisher.Publish(prefix, AdultQis(),
                                         kAdultOccupationColumn);
        CKSAFE_CHECK(release.ok());
        evaluations += release->search_stats.evaluations;
      }
    }
    benchmark::DoNotOptimize(evaluations);
  }
  state.counters["evaluations"] = static_cast<double>(evaluations);
  state.SetLabel(warm ? "warm session (shared cache + seed frontier)"
                      : "cold publish per prefix");
}
BENCHMARK(BM_StreamingPublish)->Unit(benchmark::kMillisecond)->Arg(1)->Arg(0);

// E11 thread matrix: the multi-tenant streaming publish at 1/2/4/8 worker
// threads. Each iteration grows the table by one batch and republishes all
// tenants through MultiPolicyPublisher, whose batched profile evaluation
// (Minimize1BatchView) fans each lattice level out over the pool. Output
// is CHECKed against a 1-thread baseline publisher every iteration;
// compare real_time across the threads argument for the scaling, and the
// table_* counters for the batch view's shared-cache amortization.
void BM_MultiPolicyStreamingPublish(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  constexpr size_t kPublishRows = 2000;
  constexpr size_t kBatch = 500;
  const Table full = GenerateSyntheticAdult(kPublishRows, 7);
  PublisherOptions base;

  auto row_cells = [&](size_t row) {
    std::vector<int32_t> cells(full.num_columns());
    for (size_t c = 0; c < full.num_columns(); ++c) {
      cells[c] = full.at(static_cast<PersonId>(row), c);
    }
    return cells;
  };
  auto make_publisher = [&](size_t num_threads) {
    Table initial(full.schema());
    for (size_t r = 0; r < kBatch; ++r) {
      CKSAFE_CHECK(initial.AppendRow(row_cells(r)).ok());
    }
    auto publisher = std::make_unique<MultiPolicyPublisher>(
        std::move(initial), AdultQis(), kAdultOccupationColumn, base);
    publisher->AddTenant("strict", 0.7, 3);
    publisher->AddTenant("medium", 0.8, 2);
    publisher->AddTenant("loose", 0.9, 1);
    publisher->mutable_search_options()->num_threads = num_threads;
    return publisher;
  };

  // Reference frontier nodes per prefix from a sequential run (built once,
  // shared across the thread-count args).
  static std::vector<std::vector<LatticeNode>>* reference = [&] {
    auto* nodes = new std::vector<std::vector<LatticeNode>>;
    auto baseline = make_publisher(1);
    for (size_t end = kBatch; end <= kPublishRows; end += kBatch) {
      if (end > kBatch) {
        std::vector<std::vector<int32_t>> rows;
        for (size_t r = end - kBatch; r < end; ++r) rows.push_back(row_cells(r));
        CKSAFE_CHECK(baseline->AddBatch(rows).ok());
      }
      auto releases = baseline->PublishAll();
      CKSAFE_CHECK(releases.ok()) << releases.status();
      std::vector<LatticeNode> per_tenant;
      for (const TenantRelease& tenant : *releases) {
        CKSAFE_CHECK(tenant.release.ok());
        per_tenant.push_back(tenant.release->node);
      }
      nodes->push_back(std::move(per_tenant));
    }
    return nodes;
  }();

  uint64_t prepare_calls = 0;
  uint64_t shared_lookups = 0;
  for (auto _ : state) {
    auto publisher = make_publisher(threads);
    prepare_calls = shared_lookups = 0;
    size_t prefix = 0;
    for (size_t end = kBatch; end <= kPublishRows; end += kBatch, ++prefix) {
      if (end > kBatch) {
        std::vector<std::vector<int32_t>> rows;
        for (size_t r = end - kBatch; r < end; ++r) rows.push_back(row_cells(r));
        CKSAFE_CHECK(publisher->AddBatch(rows).ok());
      }
      auto releases = publisher->PublishAll();
      CKSAFE_CHECK(releases.ok()) << releases.status();
      for (size_t t = 0; t < releases->size(); ++t) {
        CKSAFE_CHECK((*releases)[t].release.ok());
        CKSAFE_CHECK((*releases)[t].release->node == (*reference)[prefix][t])
            << "threaded multi-policy publish diverged from sequential";
      }
      prepare_calls += publisher->last_table_traffic().prepare_calls;
      shared_lookups += publisher->last_table_traffic().shared_lookups;
    }
    benchmark::DoNotOptimize(prefix);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["table_requests"] = static_cast<double>(prepare_calls);
  state.counters["table_shared_lookups"] = static_cast<double>(shared_lookups);
  state.SetLabel("3 tenants, " + std::to_string(threads) +
                 " threads incl. caller, level-batched table view");
}
BENCHMARK(BM_MultiPolicyStreamingPublish)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
