// Performance benchmarks for the paper's core algorithms (experiment E4 in
// DESIGN.md): MINIMIZE1's O(k^3) table construction, MINIMIZE2's O(|B| k^2)
// sweep, the effect of histogram deduplication (DisclosureCache), and the
// incremental re-computation the paper describes in Section 3.3.3.

#include <benchmark/benchmark.h>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/util/random.h"

namespace cksafe {
namespace {

// Zipf-ish descending histogram over `d` values summing to ~n.
std::vector<uint32_t> ZipfCounts(size_t d, uint32_t n) {
  std::vector<uint32_t> counts(d);
  double h = 0;
  for (size_t i = 1; i <= d; ++i) h += 1.0 / i;
  for (size_t i = 0; i < d; ++i) {
    counts[i] = std::max<uint32_t>(
        1, static_cast<uint32_t>(n / (h * (i + 1))));
  }
  return counts;
}

// A bucketization with `num_buckets` random buckets over a 14-value domain
// (no Table needed: members are synthetic dense ids).
Bucketization RandomBucketization(size_t num_buckets, uint64_t seed,
                                  uint32_t max_bucket_size = 24) {
  constexpr size_t kDomain = 14;
  Rng rng(seed);
  Bucketization b(kDomain);
  PersonId next = 0;
  for (size_t i = 0; i < num_buckets; ++i) {
    Bucket bucket;
    bucket.histogram.assign(kDomain, 0);
    const uint32_t size = 2 + static_cast<uint32_t>(rng.NextBelow(max_bucket_size));
    for (uint32_t t = 0; t < size; ++t) {
      ++bucket.histogram[rng.NextBelow(kDomain)];
      bucket.members.push_back(next++);
    }
    CKSAFE_CHECK(b.AddBucket(std::move(bucket)).ok());
  }
  return b;
}

// --- MINIMIZE1: table construction is O(k^3) per distinct histogram ---

void BM_Minimize1Construction(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const std::vector<uint32_t> counts = ZipfCounts(14, 1000);
  for (auto _ : state) {
    Minimize1Table table(counts, k);
    benchmark::DoNotOptimize(table.MinProbability(k));
  }
  state.SetComplexityN(static_cast<int64_t>(k));
}
BENCHMARK(BM_Minimize1Construction)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity(benchmark::oNCubed);

// --- MINIMIZE2: O(|B| k^2) after MINIMIZE1 memoization ---

void BM_MaxDisclosure(benchmark::State& state) {
  const size_t num_buckets = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const Bucketization b = RandomBucketization(num_buckets, 42);
  for (auto _ : state) {
    // Fresh cache each iteration: the cost being measured includes the
    // per-histogram MINIMIZE1 work.
    DisclosureAnalyzer analyzer(b);
    benchmark::DoNotOptimize(analyzer.MaxDisclosureImplications(k).disclosure);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_buckets));
}
BENCHMARK(BM_MaxDisclosure)
    ->Unit(benchmark::kMillisecond)
    ->Args({100, 3})
    ->Args({100, 13})
    ->Args({1000, 3})
    ->Args({1000, 13})
    ->Args({10000, 3})
    ->Args({10000, 13});

// --- Ablation: shared DisclosureCache (histogram dedup) vs cold ---

void BM_CacheAblation(benchmark::State& state) {
  const bool warm = state.range(0) == 1;
  const Bucketization b = RandomBucketization(5000, 7);
  DisclosureCache shared;
  if (warm) {
    DisclosureAnalyzer(b, &shared).MaxDisclosureImplications(13);
  }
  for (auto _ : state) {
    if (warm) {
      DisclosureAnalyzer analyzer(b, &shared);
      benchmark::DoNotOptimize(
          analyzer.MaxDisclosureImplications(13).disclosure);
    } else {
      DisclosureAnalyzer analyzer(b);  // private cold cache
      benchmark::DoNotOptimize(
          analyzer.MaxDisclosureImplications(13).disclosure);
    }
  }
  state.SetLabel(warm ? "warm shared cache" : "cold cache");
}
BENCHMARK(BM_CacheAblation)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1);

// --- Incremental re-computation (paper §3.3.3): B* = B + x new buckets ---

void BM_IncrementalRecompute(benchmark::State& state) {
  const bool incremental = state.range(0) == 1;
  const size_t x = 64;  // new buckets
  const Bucketization base = RandomBucketization(4000, 11);
  const Bucketization star = RandomBucketization(4000 + x, 11);
  DisclosureCache cache;
  DisclosureAnalyzer(base, &cache).MaxDisclosureImplications(13);
  for (auto _ : state) {
    if (incremental) {
      // Reuse the memoized MINIMIZE1 tables: cost O(|B*| k + x k^3).
      DisclosureAnalyzer analyzer(star, &cache);
      benchmark::DoNotOptimize(
          analyzer.MaxDisclosureImplications(13).disclosure);
    } else {
      DisclosureAnalyzer analyzer(star);
      benchmark::DoNotOptimize(
          analyzer.MaxDisclosureImplications(13).disclosure);
    }
  }
  state.SetLabel(incremental ? "reuse MINIMIZE1 memo" : "from scratch");
}
BENCHMARK(BM_IncrementalRecompute)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

// --- The negation adversary is much cheaper (closed form per bucket) ---

void BM_NegationDisclosure(benchmark::State& state) {
  const Bucketization b =
      RandomBucketization(static_cast<size_t>(state.range(0)), 13);
  DisclosureAnalyzer analyzer(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.MaxDisclosureNegations(13).disclosure);
  }
}
BENCHMARK(BM_NegationDisclosure)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1000)
    ->Arg(10000);

// --- End-to-end: the Figure 5 table on the full-size Adult workload ---

void BM_AdultFig5Curve(benchmark::State& state) {
  static const Table* table =
      new Table(GenerateSyntheticAdult(kAdultTupleCount, 20070419));
  static const auto* qis = [] {
    auto q = AdultQuasiIdentifiers();
    CKSAFE_CHECK(q.ok());
    return new std::vector<QuasiIdentifier>(*std::move(q));
  }();
  auto b = BucketizeAtNode(*table, *qis, AdultFigure5Node(),
                           kAdultOccupationColumn);
  CKSAFE_CHECK(b.ok());
  for (auto _ : state) {
    DisclosureAnalyzer analyzer(*b);
    benchmark::DoNotOptimize(analyzer.ImplicationCurve(13));
  }
}
BENCHMARK(BM_AdultFig5Curve)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cksafe

BENCHMARK_MAIN();
