#!/usr/bin/env python3
"""Markdown link checker for the cksafe docs.

Validates every relative link and intra-repo anchor in the repo's Markdown
documentation (README.md, docs/*.md, DESIGN.md, ...). External http(s)
links are not fetched — only repo-local targets are checked:

  * [text](path)          -> path must exist relative to the linking file
  * [text](path#anchor)   -> path must exist AND contain a heading whose
                             GitHub slug equals `anchor`
  * [text](#anchor)       -> the linking file must contain the heading

Exits non-zero listing every broken link, so doc rot fails CI (and
`ctest -R docs_link_check`) instead of accumulating.
"""

import re
import sys
import unicodedata
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# The documentation surface under link hygiene. Glob patterns are relative
# to the repo root.
DOC_GLOBS = ["README.md", "DESIGN.md", "ROADMAP.md", "docs/*.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, spaces to dashes,
    punctuation dropped (unicode letters/digits/dashes/underscores kept)."""
    text = heading.strip().lower()
    # Strip inline code/emphasis markers but keep their contents.
    text = re.sub(r"[`*_]", "", text)
    out = []
    for ch in text:
        if ch in (" ", "-"):
            out.append("-")
        elif ch == "_" or unicodedata.category(ch)[0] in ("L", "N"):
            out.append(ch)
        # everything else (punctuation, symbols) is dropped
    return "".join(out)


def anchors_of(markdown: str) -> set:
    """All heading anchors of a document, with GitHub's -1/-2 dedup."""
    slugs = {}
    anchors = set()
    for match in HEADING_RE.finditer(CODE_FENCE_RE.sub("", markdown)):
        slug = github_slug(match.group(1))
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check_file(path: Path, anchor_cache: dict) -> list:
    errors = []
    markdown = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    checkable = CODE_FENCE_RE.sub("", markdown)
    for match in LINK_RE.finditer(checkable):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            file_part, anchor = "", target[1:]
        elif "#" in target:
            file_part, anchor = target.split("#", 1)
        else:
            file_part, anchor = target, ""
        target_path = (
            path if not file_part else (path.parent / file_part).resolve()
        )
        if not target_path.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                          f"'{target}' (no such file {file_part})")
            continue
        if anchor:
            if target_path.suffix.lower() != ".md":
                continue  # anchors into non-Markdown files are not checked
            if target_path not in anchor_cache:
                anchor_cache[target_path] = anchors_of(
                    target_path.read_text(encoding="utf-8"))
            if anchor.lower() not in anchor_cache[target_path]:
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken anchor "
                              f"'{target}' (no heading for #{anchor})")
    return errors


def main() -> int:
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    if not files:
        print("check_doc_links: no documentation files found", file=sys.stderr)
        return 2
    anchor_cache = {}
    errors = []
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"check_doc_links: {len(errors)} broken link(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
