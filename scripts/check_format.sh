#!/usr/bin/env bash
# Formatting gate: every tracked C++ file must be clang-format-clean
# under the checked-in .clang-format (docs/STATIC_ANALYSIS.md).
#
# Usage: scripts/check_format.sh [--fix]
#   default   dry-run; prints each offending file plus the diff hunk
#             count, exits 1 on any drift
#   --fix     rewrites the files in place instead
#
# When clang-format is not installed (the minimal local toolchain), the
# check SKIPS with exit 77 — the ctest entry maps that to "skipped", and
# the CI docs job installs the tool so the gate is always real there.

set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed — skipping (CI enforces)"
  exit 77
fi

mode="check"
if [ "${1:-}" = "--fix" ]; then
  mode="fix"
fi

# Tracked C++ sources only: generated trees (build*/) never qualify.
files=$(git ls-files '*.h' '*.cc')
if [ -z "$files" ]; then
  echo "check_format: no tracked C++ files found" >&2
  exit 2
fi

if [ "$mode" = "fix" ]; then
  # shellcheck disable=SC2086
  clang-format -i --style=file $files
  echo "check_format: formatted $(echo "$files" | wc -l) files"
  exit 0
fi

bad=0
total=0
for f in $files; do
  total=$((total + 1))
  if ! clang-format --style=file --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=$((bad + 1))
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_format: $bad/$total files need formatting" \
       "(run scripts/check_format.sh --fix)"
  exit 1
fi
echo "check_format: all $total files clean"
exit 0
