// Bit-identity of the runtime-dispatched scan backends (simd/dispatch.h):
// at every (m, k) stress shape kernel_stress_test runs, every usable
// backend must reproduce the scalar reference exactly — the full LogRMin
// columns, every recorded argmin choice, the suffix rows, the per-bucket
// sweep, and the end-to-end publisher frontier. Exact double equality
// everywhere; no tolerances. On hosts (or builds — the no-AVX2 CI job)
// where only the scalar backend is usable, the same shapes still run to
// pin the fallback path, and the dispatch surface is asserted to degrade
// to scalar rather than abort.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/core/logprob.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/search/publisher.h"
#include "cksafe/simd/dispatch.h"

namespace cksafe {
namespace {

/// Restores the dispatch default on scope exit, so one failing test can't
/// leak a forced backend into the rest of the suite.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { SetSimdLevelForTest(level); }
  ~ScopedSimdLevel() { ClearSimdLevelForTest(); }
};

/// Every backend the binary + machine can actually run.
std::vector<SimdLevel> UsableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelUsable(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<Minimize2Bucket> IdenticalBuckets(
    size_t count, const std::vector<uint32_t>& histogram, size_t budget) {
  auto table = std::make_shared<const Minimize1Table>(histogram, budget);
  uint64_t n = 0;
  for (uint32_t c : histogram) n += c;
  return std::vector<Minimize2Bucket>(
      count, Minimize2Bucket{table, static_cast<double>(n) /
                                        static_cast<double>(histogram[0])});
}

/// Everything one full kernel pass produces, captured for comparison.
struct KernelOutputs {
  std::vector<LogProb> log_r_min;        // LogRMinAt(0..k)
  std::vector<uint16_t> no_choices;      // full argmin arrays
  std::vector<uint16_t> wa_choices;
  std::vector<uint8_t> wa_branches;
  std::vector<Minimize2Placement> witness;
  std::vector<LogProb> suffix;           // ComputeNoASuffix rows
  std::vector<LogProb> per_bucket;       // PerBucketLogRatioSweep
};

KernelOutputs RunKernel(const std::vector<Minimize2Bucket>& inputs, size_t k,
                        SimdLevel level) {
  ScopedSimdLevel scoped(level);
  KernelOutputs out;
  Minimize2Forward dp(k);
  dp.Recompute(inputs, 0);
  for (size_t h = 0; h <= k; ++h) out.log_r_min.push_back(dp.LogRMinAt(h));
  out.no_choices = dp.NoChoicesForTest();
  out.wa_choices = dp.WaChoicesForTest();
  out.wa_branches = dp.WaBranchesForTest();
  if (dp.LogRMin() != kLogInfeasible) out.witness = dp.WitnessPlacements();
  out.suffix = ComputeNoASuffix(inputs, k);
  out.per_bucket = PerBucketLogRatioSweep(inputs, k, dp, out.suffix);
  return out;
}

void ExpectBitIdentical(const KernelOutputs& reference,
                        const KernelOutputs& candidate, SimdLevel level) {
  SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
  // EXPECT_EQ on doubles is exact equality — the bit-identity contract.
  EXPECT_EQ(reference.log_r_min, candidate.log_r_min);
  EXPECT_EQ(reference.no_choices, candidate.no_choices);
  EXPECT_EQ(reference.wa_choices, candidate.wa_choices);
  EXPECT_EQ(reference.wa_branches, candidate.wa_branches);
  ASSERT_EQ(reference.witness.size(), candidate.witness.size());
  for (size_t i = 0; i < reference.witness.size(); ++i) {
    EXPECT_EQ(reference.witness[i].atoms, candidate.witness[i].atoms) << i;
    EXPECT_EQ(reference.witness[i].has_target, candidate.witness[i].has_target)
        << i;
  }
  EXPECT_EQ(reference.suffix, candidate.suffix);
  EXPECT_EQ(reference.per_bucket, candidate.per_bucket);
}

/// The exact (m, k) shapes kernel_stress_test runs, per the tentpole
/// contract: the SIMD differential must cover every stress shape.
struct StressShape {
  size_t buckets;
  size_t k;
  std::vector<uint32_t> histogram;
};

std::vector<StressShape> StressShapes() {
  return {
      {1200, 96, {5, 3, 2, 1, 1}},       // LargeBucketCountLargeBudget
      {40, 300, {6, 5, 4, 3, 2, 1}},     // BudgetBeyondHistoricalUint8Ceiling
      {400, 80, {9, 7, 5, 3, 1, 1, 1}},  // WideSweepColumnsBitMatch...
      {60, 64, {4, 2, 1}},               // WorkspaceReuse... (largest budget)
  };
}

TEST(SimdKernelTest, EveryBackendBitMatchesScalarAtEveryStressShape) {
  for (const StressShape& shape : StressShapes()) {
    SCOPED_TRACE("m=" + std::to_string(shape.buckets) +
                 " k=" + std::to_string(shape.k));
    const std::vector<Minimize2Bucket> inputs =
        IdenticalBuckets(shape.buckets, shape.histogram, shape.k + 1);
    const KernelOutputs reference =
        RunKernel(inputs, shape.k, SimdLevel::kScalar);
    // Saturating histograms make the full-budget minimum log 0 and large
    // stretches of the rows -inf/+inf: the shapes exercise masked lanes
    // and the NaN-producing pruning bounds, not just the happy path.
    ASSERT_NE(reference.log_r_min[shape.k], kLogInfeasible);
    for (SimdLevel level : UsableLevels()) {
      if (level == SimdLevel::kScalar) continue;
      ExpectBitIdentical(reference, RunKernel(inputs, shape.k, level), level);
    }
  }
}

TEST(SimdKernelTest, WorkspaceReuseBudgetLadderBitMatchesAcrossBackends) {
  // The arena path (Reset + Recompute) across the stress ladder of budget
  // changes in both directions, per backend, against the scalar fresh run.
  const std::vector<Minimize2Bucket> small = IdenticalBuckets(60, {4, 2, 1}, 130);
  for (size_t k : {size_t{12}, size_t{129}, size_t{5}, size_t{64}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const KernelOutputs reference = RunKernel(small, k, SimdLevel::kScalar);
    for (SimdLevel level : UsableLevels()) {
      ScopedSimdLevel scoped(level);
      SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
      Minimize2Workspace ws;
      Minimize2Forward& reused = ws.SweepForBudget(k);
      reused.Recompute(small, 0);
      for (size_t h = 0; h <= k; ++h) {
        ASSERT_EQ(reused.LogRMinAt(h), reference.log_r_min[h]) << "h=" << h;
      }
    }
  }
}

TEST(SimdKernelTest, IncrementalRowReuseBitMatchesAcrossBackends) {
  // Row-granular recomputation (the streaming engine's workhorse) must be
  // backend-independent too: recompute a dirty suffix under each backend
  // and compare against a scalar from-scratch sweep over the mutated
  // inputs — including a mid-sweep backend switch, which the per-sweep
  // kernel resolution makes safe.
  constexpr size_t kAtoms = 75;
  std::vector<Minimize2Bucket> inputs =
      IdenticalBuckets(300, {7, 4, 2, 1}, kAtoms + 1);
  const std::vector<Minimize2Bucket> mutated = [&] {
    std::vector<Minimize2Bucket> copy = inputs;
    const std::vector<uint32_t> other = {3, 3, 1};
    copy[120] = IdenticalBuckets(1, other, kAtoms + 1)[0];
    return copy;
  }();
  const KernelOutputs reference = RunKernel(mutated, kAtoms, SimdLevel::kScalar);
  for (SimdLevel level : UsableLevels()) {
    SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
    Minimize2Forward dp(kAtoms);
    {
      ScopedSimdLevel scalar_first(SimdLevel::kScalar);
      dp.Recompute(inputs, 0);  // clean prefix computed by scalar
    }
    ScopedSimdLevel scoped(level);
    dp.Recompute(mutated, 120);  // dirty suffix recomputed by `level`
    for (size_t h = 0; h <= kAtoms; ++h) {
      ASSERT_EQ(dp.LogRMinAt(h), reference.log_r_min[h]) << "h=" << h;
    }
    EXPECT_EQ(dp.NoChoicesForTest(), reference.no_choices);
    EXPECT_EQ(dp.WaChoicesForTest(), reference.wa_choices);
    EXPECT_EQ(dp.WaBranchesForTest(), reference.wa_branches);
  }
}

TEST(SimdKernelTest, PublisherFrontierBitMatchesAcrossBackends) {
  // End-to-end: the Incognito frontier, chosen node, and published column
  // must not depend on the backend — the whole-pipeline face of the
  // bit-identity contract.
  const Table table = GenerateSyntheticAdult(220, /*seed=*/19);
  const auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  PublisherOptions options;
  options.c = 0.6;
  options.k = 3;
  const Publisher publisher(options);

  std::optional<PublishedRelease> reference;
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    auto release = publisher.Publish(table, *qis, kAdultOccupationColumn);
    ASSERT_TRUE(release.ok()) << release.status();
    reference = *std::move(release);
  }
  for (SimdLevel level : UsableLevels()) {
    if (level == SimdLevel::kScalar) continue;
    SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
    ScopedSimdLevel scoped(level);
    auto release = publisher.Publish(table, *qis, kAdultOccupationColumn);
    ASSERT_TRUE(release.ok()) << release.status();
    EXPECT_EQ(release->node, reference->node);
    EXPECT_EQ(release->minimal_safe_nodes, reference->minimal_safe_nodes);
    EXPECT_EQ(release->worst_case.disclosure, reference->worst_case.disclosure);
    EXPECT_EQ(release->worst_case.log_r_min, reference->worst_case.log_r_min);
    EXPECT_EQ(release->published_sensitive, reference->published_sensitive);
  }
}

TEST(SimdKernelTest, DispatchSurfaceDegradesToScalarNeverAborts) {
  // The active level must always be usable, and forcing an unusable level
  // must degrade to the scalar kernels, not abort — the contract the
  // no-AVX2 CI build relies on to keep this very test meaningful there.
  EXPECT_TRUE(SimdLevelUsable(ActiveSimdLevel()));
  EXPECT_TRUE(SimdLevelUsable(SimdLevel::kScalar));
  EXPECT_STREQ(ScanKernelsFor(SimdLevel::kScalar).name, "scalar");
  for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (!SimdLevelUsable(level)) {
      EXPECT_STREQ(ScanKernelsFor(level).name, "scalar");
      ScopedSimdLevel scoped(level);
      EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    }
  }
  // x86 binaries compile the AVX2 backend unless the no-AVX2 build
  // disabled it; either way the name matches what dispatch resolved.
  const SimdLevel active = ActiveSimdLevel();
  EXPECT_STREQ(ScanKernelsFor(active).name, SimdLevelName(active));
}

}  // namespace
}  // namespace cksafe
