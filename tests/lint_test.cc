// Per-rule tests for cksafe_lint (tools/lint) on embedded snippets: each
// rule gets deliberately-seeded violations that must be detected and
// near-miss negatives that must not. The complementary lint_self_scan
// ctest entry runs the real binary over the real tree and asserts zero
// findings, so the two directions together pin both rule sensitivity and
// tree cleanliness.

#include "lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"

namespace cksafe_lint {
namespace {

LintOptions DefaultOptions() {
  LintOptions options;
  std::string error;
  // A miniature tower mirroring the real file's shape: a base layer, two
  // independent peers, a cohesive group, and a top layer.
  const char* kLayers =
      "util\n"
      "hierarchy knowledge\n"
      "core+simd\n"
      "serve\n";
  EXPECT_TRUE(ParseLayerConfig(kLayers, &options.layers, &error)) << error;
  return options;
}

std::vector<std::string> RuleFindings(const LintReport& report,
                                      const std::string& rule) {
  std::vector<std::string> out;
  for (const auto& f : report.findings) {
    if (f.rule == rule) out.push_back(f.ToString());
  }
  return out;
}

// The header every L1 test shares: declares the Status surface the
// registry is derived from, including one deliberately ambiguous name.
const char kStatusHeader[] = R"cc(
  namespace cksafe {
  class Status {};
  template <typename T> class StatusOr {};
  Status Frob(int x);
  StatusOr<int> Grab();
  Status Overloaded();      // ambiguous: void overload below
  void Overloaded(int x);   // => pruned from the registry
  }  // namespace cksafe
)cc";

// --- Lexer ------------------------------------------------------------------

TEST(LexerTest, StringsAndCommentsAreOpaque) {
  const auto toks = Lex(
      "int a = 1; // rand in a comment\n"
      "const char* s = \"rand(\\\"x\\\")\";\n"
      "auto r = R\"(time( clock( )\" ;\n");
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "time");
      EXPECT_NE(t.text, "clock");
    }
  }
}

TEST(LexerTest, LineNumbersAndMultiCharOperators) {
  const auto toks = Lex("a\n/* two\nlines */ b->c::d");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_TRUE(toks[0].IsIdent("a"));
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].kind, TokenKind::kComment);
  EXPECT_TRUE(toks[2].IsIdent("b"));
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_TRUE(toks[3].IsPunct("->"));
  EXPECT_TRUE(toks[5].IsPunct("::"));
}

TEST(LexerTest, NumbersIncludingExponentsAreSingleTokens) {
  const auto toks = Lex("x = 1'000e+3 + 0x1F + .5;");
  std::vector<std::string> numbers;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  EXPECT_EQ(numbers, (std::vector<std::string>{"1'000e+3", "0x1F", ".5"}));
}

TEST(LexerTest, MatchParenBalancesNesting) {
  const auto toks = Lex("f(g(x), h(y))");
  // tokens: f ( g ( x ) , h ( y ) )
  EXPECT_EQ(MatchParen(toks, 1), 11);
  EXPECT_EQ(MatchParen(toks, 3), 5);
}

// --- L1: unchecked-status ---------------------------------------------------

LintReport LintWithStatusHeader(const std::string& body) {
  return RunLint(DefaultOptions(),
                 {{"include/cksafe/util/status.h", kStatusHeader},
                  {"src/util/user.cc", body}});
}

TEST(L1Test, BareDiscardedCallIsFlagged) {
  const auto report = LintWithStatusHeader("void f() { Frob(1); }");
  ASSERT_EQ(RuleFindings(report, "L1").size(), 1u);
  EXPECT_NE(RuleFindings(report, "L1")[0].find("Frob"), std::string::npos);
}

TEST(L1Test, MemberChainDiscardIsFlagged) {
  const auto report =
      LintWithStatusHeader("void f(W& w) { w.file->Frob(2); }");
  EXPECT_EQ(RuleFindings(report, "L1").size(), 1u);
}

TEST(L1Test, ControlClauseDiscardIsFlagged) {
  const auto report =
      LintWithStatusHeader("void f(bool b) { if (b) Frob(1); }");
  EXPECT_EQ(RuleFindings(report, "L1").size(), 1u);
}

TEST(L1Test, VoidCastDiscardIsFlagged) {
  const auto report = LintWithStatusHeader("void f() { (void)Frob(1); }");
  const auto findings = RuleFindings(report, "L1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("(void)"), std::string::npos);
}

TEST(L1Test, UsedResultsAreNotFlagged) {
  const auto report = LintWithStatusHeader(R"cc(
    Status g() { return Frob(1); }
    Status h() {
      Status s = Frob(2);
      CKSAFE_RETURN_IF_ERROR(Frob(3));
      if (Frob(4).ok()) { }
      auto v = Grab();
      return s;
    }
  )cc");
  EXPECT_TRUE(RuleFindings(report, "L1").empty());
}

TEST(L1Test, HeaderDeclarationIsNotACall) {
  // The declaration itself (`Status Frob(int);`) must not be mistaken
  // for a discarded call — nor a definition followed by a brace.
  const auto report = RunLint(
      DefaultOptions(), {{"include/cksafe/util/status.h", kStatusHeader}});
  EXPECT_TRUE(RuleFindings(report, "L1").empty());
}

TEST(L1Test, AmbiguousNamesArePrunedFromRegistry) {
  // `Overloaded` has both Status and void declarations: a name-based
  // registry cannot judge its call sites, so the compiler's
  // [[nodiscard]] owns them and the lint stays silent.
  const auto report = LintWithStatusHeader("void f() { Overloaded(); }");
  EXPECT_TRUE(RuleFindings(report, "L1").empty());
  EXPECT_EQ(std::count(report.status_registry.begin(),
                       report.status_registry.end(), "Overloaded"),
            0);
  EXPECT_EQ(std::count(report.status_registry.begin(),
                       report.status_registry.end(), "Frob"),
            1);
}

// --- L2: determinism-ban ----------------------------------------------------

TEST(L2Test, EntropySourcesInScopedDirsAreFlagged) {
  const auto report = RunLint(DefaultOptions(), {{"src/core/kernel.cc", R"cc(
    #include <random>
    int f() {
      std::mt19937 rng(std::random_device{}());
      std::uniform_int_distribution<int> dist(0, 9);
      return dist(rng) + time(nullptr) + clock();
    }
  )cc"}});
  // mt19937, random_device, uniform_int_distribution (x2: declaration and
  // the dist variable is fine — only the type name matches the suffix),
  // time(, clock(.
  EXPECT_GE(RuleFindings(report, "L2").size(), 5u);
}

TEST(L2Test, TimeAsVariableNameIsNotFlagged) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/persist/manifest.cc",
        "int f(int time) { int clock = time; return clock; }"}});
  EXPECT_TRUE(RuleFindings(report, "L2").empty());
}

TEST(L2Test, OutOfScopeDirsAreExempt) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/serve/router.cc", "int f() { return rand(); }"},
       {"bench/some_bench.cc", "int g() { return clock(); }"}});
  EXPECT_TRUE(RuleFindings(report, "L2").empty());
}

TEST(L2Test, FloatingPointBannedOnlyInGeneratorTUs) {
  const auto fp_in_generator = RunLint(
      DefaultOptions(),
      {{"src/foundry/table_foundry.cc", "double Skew() { return 0.5; }"}});
  // Both the type and the literal are findings.
  EXPECT_EQ(RuleFindings(fp_in_generator, "L2").size(), 2u);

  const auto fp_in_runner = RunLint(
      DefaultOptions(),
      {{"src/foundry/scenario.cc", "double Verify() { return 0.5; }"}});
  EXPECT_TRUE(RuleFindings(fp_in_runner, "L2").empty());
}

TEST(L2Test, HexLiteralsAreNotFloatingPoint) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/foundry/fingerprint.cc",
        "unsigned long long kSeed = 0xcbf29ce484222325ULL;"}});
  EXPECT_TRUE(RuleFindings(report, "L2").empty());
}

// --- L3: layer tower --------------------------------------------------------

TEST(L3Test, DownTowerIncludeIsAllowed) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/serve/router.cc", "#include \"cksafe/util/status.h\"\n"}});
  EXPECT_TRUE(RuleFindings(report, "L3").empty());
}

TEST(L3Test, UpTowerIncludeIsFlagged) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/util/helper.cc", "#include \"cksafe/serve/engine.h\"\n"}});
  ASSERT_EQ(RuleFindings(report, "L3").size(), 1u);
  EXPECT_NE(RuleFindings(report, "L3")[0].find("down the tower"),
            std::string::npos);
}

TEST(L3Test, SameRankPeersMayNotIncludeEachOther) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/hierarchy/tree.cc", "#include \"cksafe/knowledge/f.h\"\n"}});
  EXPECT_EQ(RuleFindings(report, "L3").size(), 1u);
}

TEST(L3Test, CohesiveGroupMayIncludeBothWays) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/core/minimize.cc", "#include \"cksafe/simd/dispatch.h\"\n"},
       {"include/cksafe/simd/dispatch.h",
        "#include \"cksafe/core/logprob.h\"\n"}});
  EXPECT_TRUE(RuleFindings(report, "L3").empty());
}

TEST(L3Test, UndeclaredLayerOnDiskIsFlagged) {
  const auto report =
      RunLint(DefaultOptions(), {{"src/newthing/a.cc", "int x;\n"}});
  ASSERT_EQ(RuleFindings(report, "L3").size(), 1u);
  EXPECT_NE(RuleFindings(report, "L3")[0].find("newthing"),
            std::string::npos);
}

TEST(L3Test, IncludeOfUndeclaredLayerIsFlagged) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/serve/router.cc", "#include \"cksafe/mystery/x.h\"\n"}});
  EXPECT_EQ(RuleFindings(report, "L3").size(), 1u);
}

TEST(L3Test, TestsAndExamplesAreExemptFromTheTower) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"tests/serve_test.cc", "#include \"cksafe/serve/engine.h\"\n"
                               "#include \"cksafe/util/status.h\"\n"}});
  EXPECT_TRUE(RuleFindings(report, "L3").empty());
}

// --- L4: persist ordering ---------------------------------------------------

TEST(L4Test, RawFilePrimitivesOutsidePersistAreFlagged) {
  const auto report = RunLint(DefaultOptions(), {{"src/serve/engine.cc", R"cc(
    void f() {
      AppendFile file;
      file.Sync();
    }
  )cc"}});
  EXPECT_EQ(RuleFindings(report, "L4").size(), 2u);
}

TEST(L4Test, PersistAndPageIoOwnThePrimitives) {
  const char kBody[] = "void f(AppendFile& w) { w.Sync(); }";
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/persist/manifest.cc", kBody},
       {"include/cksafe/persist/segment.h", kBody},
       {"src/util/page_io.cc", kBody}});
  EXPECT_TRUE(RuleFindings(report, "L4").empty());
}

TEST(L4Test, FreeFunctionNamedSyncIsNotAMemberCall) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/serve/engine.cc", "void Sync(); void f() { Sync(); }"}});
  EXPECT_TRUE(RuleFindings(report, "L4").empty());
}

// --- L5: suppression discipline ---------------------------------------------

TEST(L5Test, BareNolintIsFlagged) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/util/a.cc", "int x; // NOLINT\n"},
       {"src/util/b.cc", "int y; // NOLINT(bugprone-foo)\n"}});
  EXPECT_EQ(RuleFindings(report, "L5").size(), 2u);
}

TEST(L5Test, ReasonedNolintIsCountedNotFlagged) {
  const auto report = RunLint(
      DefaultOptions(),
      {{"src/util/a.cc",
        "int x; // NOLINT(bugprone-foo): pinned by vendor ABI\n"}});
  EXPECT_TRUE(RuleFindings(report, "L5").empty());
  EXPECT_EQ(report.nolint_count, 1);
}

TEST(L5Test, TreeWideCapIsEnforced) {
  LintOptions options = DefaultOptions();
  options.max_nolint = 1;
  const auto report = RunLint(
      options,
      {{"src/util/a.cc",
        "int x; // NOLINTNEXTLINE(bugprone-foo): reason one\n"
        "int y; // NOLINT(bugprone-bar): reason two\n"}});
  ASSERT_EQ(RuleFindings(report, "L5").size(), 1u);
  EXPECT_NE(RuleFindings(report, "L5")[0].find("cap"), std::string::npos);
  EXPECT_EQ(report.nolint_count, 2);
}

// --- Allowlist and configs --------------------------------------------------

TEST(AllowlistTest, EntrySuppressesAndStaleEntryIsAFinding) {
  LintOptions options = DefaultOptions();
  std::string error;
  ASSERT_TRUE(ParseAllowlist(
      "L4 src/serve/engine.cc AppendFile -- fixture justification\n"
      "L2 src/core/gone.cc -- stale: the file was deleted\n",
      &options.allowlist, &error))
      << error;
  const auto report = RunLint(
      options, {{"src/serve/engine.cc", "AppendFile f;"}});
  EXPECT_TRUE(RuleFindings(report, "L4").empty());
  ASSERT_EQ(RuleFindings(report, "config").size(), 1u);
  EXPECT_NE(RuleFindings(report, "config")[0].find("stale"),
            std::string::npos);
}

TEST(AllowlistTest, JustificationIsMandatory) {
  std::vector<AllowlistEntry> entries;
  std::string error;
  EXPECT_FALSE(
      ParseAllowlist("L4 tests/persist_test.cc Sync\n", &entries, &error));
  EXPECT_NE(error.find("justification"), std::string::npos);
  EXPECT_FALSE(
      ParseAllowlist("L4 tests/persist_test.cc Sync -- \n", &entries,
                     &error));
}

TEST(LayerConfigTest, RejectsDuplicatesAndEmptyConfigs) {
  LayerConfig layers;
  std::string error;
  EXPECT_FALSE(ParseLayerConfig("util\nutil\n", &layers, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
  EXPECT_FALSE(ParseLayerConfig("# only comments\n", &layers, &error));
}

TEST(LayerConfigTest, RanksAndGroupsParse) {
  LayerConfig layers;
  std::string error;
  ASSERT_TRUE(ParseLayerConfig("util\na b\ncore+simd  # kernel\n", &layers,
                               &error))
      << error;
  ASSERT_EQ(layers.layers.size(), 5u);
  EXPECT_EQ(layers.Find("util")->rank, 0);
  EXPECT_EQ(layers.Find("a")->rank, 1);
  EXPECT_EQ(layers.Find("b")->rank, 1);
  EXPECT_NE(layers.Find("a")->group, layers.Find("b")->group);
  EXPECT_EQ(layers.Find("core")->group, layers.Find("simd")->group);
}

}  // namespace
}  // namespace cksafe_lint
