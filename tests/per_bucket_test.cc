// Per-bucket vulnerability tests: the prefix/suffix variant of MINIMIZE2
// against a target-restricted brute force, and its consistency with the
// global maximum.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;
using testing::MakeHospitalBucketization;
using testing::MakeHospitalTable;
using testing::RandomHistograms;

// Brute-force oracle: max over multisets of k simple implications and over
// target atoms belonging to `persons`.
double BruteForceTargetRestricted(const ExactEngine& engine, size_t k,
                                  const std::vector<PersonId>& persons) {
  const size_t num_atoms = engine.num_persons() * engine.domain_size();
  auto atom_at = [&](size_t index) {
    return Atom{static_cast<PersonId>(index / engine.domain_size()),
                static_cast<int32_t>(index % engine.domain_size())};
  };
  std::vector<size_t> targets;
  for (size_t t = 0; t < num_atoms; ++t) {
    const Atom a = atom_at(t);
    if (std::find(persons.begin(), persons.end(), a.person) != persons.end()) {
      targets.push_back(t);
    }
  }
  double best = 0.0;
  const size_t num_pairs = num_atoms * num_atoms;
  std::function<void(size_t, size_t, const Bitset&)> rec =
      [&](size_t start, size_t chosen, const Bitset& sat) {
        if (chosen == k) {
          const size_t denom = sat.Count();
          if (denom == 0) return;
          for (size_t t : targets) {
            const double p =
                static_cast<double>(Bitset::AndCount(
                    sat, engine.AtomWorlds(atom_at(t)))) /
                static_cast<double>(denom);
            best = std::max(best, p);
          }
          return;
        }
        for (size_t pair = start; pair < num_pairs; ++pair) {
          Bitset imp =
              engine.AtomWorlds(atom_at(pair / num_atoms)).Not();
          imp |= engine.AtomWorlds(atom_at(pair % num_atoms));
          rec(pair, chosen + 1, sat & imp);
        }
      };
  rec(0, 0, Bitset(engine.num_worlds(), /*all_ones=*/true));
  return best;
}

TEST(PerBucketTest, MaxOverBucketsEqualsGlobalMaximum) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  for (size_t k = 0; k <= 4; ++k) {
    const std::vector<double> per_bucket = analyzer.PerBucketDisclosure(k);
    ASSERT_EQ(per_bucket.size(), 2u);
    const double global = analyzer.MaxDisclosureImplications(k).disclosure;
    EXPECT_NEAR(*std::max_element(per_bucket.begin(), per_bucket.end()),
                global, 1e-12)
        << "k=" << k;
    for (double d : per_bucket) EXPECT_LE(d, global + 1e-12);
  }
}

TEST(PerBucketTest, HospitalValuesByHand) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  // k=0: per-bucket frequency ratios 2/5 and 2/5.
  const std::vector<double> k0 = analyzer.PerBucketDisclosure(0);
  EXPECT_NEAR(k0[0], 0.4, kProbabilityEpsilon);
  EXPECT_NEAR(k0[1], 0.4, kProbabilityEpsilon);
  // k=1: males {2,2,1} -> 2/3; females {2,1,1,1} -> best R uses the
  // (1,1)-structure within the bucket (4/5); check against the DP.
  const std::vector<double> k1 = analyzer.PerBucketDisclosure(1);
  EXPECT_NEAR(k1[0], 2.0 / 3.0, kProbabilityEpsilon);
  EXPECT_GT(k1[1], 0.4);
  EXPECT_LT(k1[1], 2.0 / 3.0 + 1e-9);
}

struct PerBucketCase {
  std::vector<std::vector<uint32_t>> histograms;
  size_t domain;
  size_t max_k;
};

class PerBucketPropertyTest
    : public ::testing::TestWithParam<PerBucketCase> {};

TEST_P(PerBucketPropertyTest, MatchesTargetRestrictedBruteForce) {
  const PerBucketCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  DisclosureAnalyzer analyzer(fixture.bucketization);
  for (size_t k = 0; k <= param.max_k; ++k) {
    const std::vector<double> per_bucket = analyzer.PerBucketDisclosure(k);
    for (size_t j = 0; j < fixture.bucketization.num_buckets(); ++j) {
      const double brute = BruteForceTargetRestricted(
          *engine, k, fixture.bucketization.bucket(j).members);
      EXPECT_NEAR(per_bucket[j], brute, 1e-9) << "bucket " << j << " k " << k;
    }
  }
}

std::vector<PerBucketCase> MakePerBucketCases() {
  std::vector<PerBucketCase> cases = {
      {{{2, 1, 0}, {1, 1, 1}}, 3, 2},
      {{{3, 1}, {1, 2}}, 2, 2},
      {{{1, 1}, {2, 0}, {1, 1}}, 2, 1},
  };
  Rng rng(2024);
  for (int i = 0; i < 3; ++i) {
    cases.push_back({RandomHistograms(&rng, 2, 3, 4), 3, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, PerBucketPropertyTest,
    ::testing::ValuesIn(MakePerBucketCases()),
    [](const ::testing::TestParamInfo<PerBucketCase>& param_info) {
      return "case" + std::to_string(param_info.index);
    });

TEST(PerBucketTest, MaxOverBucketsEqualsGlobalOnRandomInstances) {
  Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    auto fixture =
        MakeBuckets(RandomHistograms(&rng, 4, 5, 8), 5);
    DisclosureAnalyzer analyzer(fixture.bucketization);
    for (size_t k = 0; k <= 3; ++k) {
      const std::vector<double> per_bucket = analyzer.PerBucketDisclosure(k);
      EXPECT_NEAR(*std::max_element(per_bucket.begin(), per_bucket.end()),
                  analyzer.MaxDisclosureImplications(k).disclosure, 1e-12)
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(PerBucketTest, MonotoneInK) {
  auto fixture = MakeBuckets({{3, 2, 1, 1}, {2, 2, 2, 1}}, 4);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  std::vector<double> prev = analyzer.PerBucketDisclosure(0);
  for (size_t k = 1; k <= 4; ++k) {
    const std::vector<double> cur = analyzer.PerBucketDisclosure(k);
    for (size_t j = 0; j < cur.size(); ++j) {
      EXPECT_GE(cur[j] + 1e-12, prev[j]) << "bucket " << j << " k " << k;
    }
    prev = cur;
  }
}

}  // namespace
}  // namespace cksafe
