// Knowledge language tests: atom/implication semantics, parser round trips,
// printer output, negation encoding, and the Theorem 3 completeness
// construction.

#include <gtest/gtest.h>

#include "cksafe/knowledge/completeness.h"
#include "cksafe/knowledge/formula.h"
#include "cksafe/knowledge/parser.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kFlu;
using testing::kHospitalSensitiveColumn;
using testing::kLungCancer;
using testing::kMumps;
using testing::MakeHospitalTable;

TEST(FormulaTest, AtomSemantics) {
  const std::vector<int32_t> world = {0, 2, 1};
  EXPECT_TRUE((Atom{0, 0}).Holds(world));
  EXPECT_FALSE((Atom{0, 1}).Holds(world));
  EXPECT_TRUE((Atom{1, 2}).Holds(world));
  EXPECT_TRUE((Atom{2, 1}).Holds(world));
}

TEST(FormulaTest, SimpleImplicationSemantics) {
  const std::vector<int32_t> world = {0, 2};
  // False antecedent: holds vacuously.
  EXPECT_TRUE((SimpleImplication{{0, 1}, {1, 0}}).Holds(world));
  // True antecedent, true consequent.
  EXPECT_TRUE((SimpleImplication{{0, 0}, {1, 2}}).Holds(world));
  // True antecedent, false consequent.
  EXPECT_FALSE((SimpleImplication{{0, 0}, {1, 0}}).Holds(world));
}

TEST(FormulaTest, BasicImplicationConjunctionAndDisjunction) {
  const std::vector<int32_t> world = {0, 2, 1};
  BasicImplication imp;
  imp.antecedents = {{0, 0}, {1, 2}};  // both true
  imp.consequents = {{2, 0}, {2, 1}};  // second true
  EXPECT_TRUE(imp.Holds(world));

  imp.consequents = {{2, 0}, {2, 2}};  // both false
  EXPECT_FALSE(imp.Holds(world));

  imp.antecedents = {{0, 0}, {1, 0}};  // second false -> vacuous
  EXPECT_TRUE(imp.Holds(world));
}

TEST(FormulaTest, ValidationRejectsEmptySides) {
  BasicImplication no_antecedent;
  no_antecedent.consequents = {{0, 0}};
  EXPECT_FALSE(no_antecedent.Validate().ok());

  BasicImplication no_consequent;
  no_consequent.antecedents = {{0, 0}};
  EXPECT_FALSE(no_consequent.Validate().ok());
}

TEST(FormulaTest, NegationEncodingSemantics) {
  // ¬(t_0 = 1) encoded as (t_0 = 1) -> (t_0 = 0): holds exactly when
  // t_0 != 1 (a tuple has one sensitive value).
  const BasicImplication neg = BasicImplication::Negation(Atom{0, 1}, 0);
  EXPECT_TRUE(neg.IsNegationShape());
  EXPECT_TRUE(neg.Holds({0}));
  EXPECT_TRUE(neg.Holds({2}));
  EXPECT_FALSE(neg.Holds({1}));
}

TEST(FormulaTest, FormulaConjunction) {
  KnowledgeFormula formula;
  formula.AddSimple(SimpleImplication{{0, 0}, {1, 1}});
  formula.AddNegation(Atom{1, 0}, 1);
  EXPECT_EQ(formula.k(), 2u);
  EXPECT_TRUE(formula.Holds({0, 1}));   // implication + negation both hold
  EXPECT_FALSE(formula.Holds({0, 0}));  // consequent fails, negation fails
  EXPECT_TRUE(formula.Holds({1, 1}));   // vacuous + negation holds
}

TEST(ParserTest, ParsesAtomsAndImplications) {
  const Table table = MakeHospitalTable();
  KnowledgeParser parser(table, kHospitalSensitiveColumn);

  auto atom = parser.ParseAtom("t[Ed].Disease = lung cancer");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->person, 3u);
  EXPECT_EQ(atom->value, kLungCancer);

  auto imp = parser.ParseImplication(
      "t[Hannah].Disease = flu -> t[Charlie].Disease = flu");
  ASSERT_TRUE(imp.ok());
  EXPECT_EQ(imp->antecedents.size(), 1u);
  EXPECT_EQ(imp->consequents.size(), 1u);
  EXPECT_EQ(imp->antecedents[0].person, 6u);

  auto multi = parser.ParseImplication(
      "t[Bob].Disease = flu & t[Ed].Disease = flu -> "
      "t[Dave].Disease = mumps | t[Frank].Disease = mumps");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->antecedents.size(), 2u);
  EXPECT_EQ(multi->consequents.size(), 2u);
}

TEST(ParserTest, ParsesNegationSugar) {
  const Table table = MakeHospitalTable();
  KnowledgeParser parser(table, kHospitalSensitiveColumn);
  auto neg = parser.ParseImplication("! t[Ed].Disease = mumps");
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->IsNegationShape());
  EXPECT_EQ(neg->antecedents[0].value, kMumps);
}

TEST(ParserTest, ParseFormulaSkipsCommentsAndBlanks) {
  const Table table = MakeHospitalTable();
  KnowledgeParser parser(table, kHospitalSensitiveColumn);
  auto formula = parser.ParseFormula(
      "# what Alice knows\n"
      "\n"
      "! t[Ed].Disease = mumps   # childhood immunity\n"
      "t[Hannah].Disease = flu -> t[Charlie].Disease = flu\n");
  ASSERT_TRUE(formula.ok());
  EXPECT_EQ(formula->k(), 2u);
}

TEST(ParserTest, RejectsMalformedInput) {
  const Table table = MakeHospitalTable();
  KnowledgeParser parser(table, kHospitalSensitiveColumn);
  EXPECT_FALSE(parser.ParseAtom("Ed has flu").ok());
  EXPECT_FALSE(parser.ParseAtom("t[Nobody].Disease = flu").ok());
  EXPECT_FALSE(parser.ParseAtom("t[Ed].Disease = gout").ok());
  EXPECT_FALSE(parser.ParseAtom("t[Ed].Age = 27").ok());  // not sensitive
  EXPECT_FALSE(parser.ParseImplication("t[Ed].Disease = flu").ok());
}

TEST(PrinterTest, RendersAtomsAndFormulas) {
  const Table table = MakeHospitalTable();
  KnowledgePrinter printer(table, kHospitalSensitiveColumn);
  EXPECT_EQ(printer.AtomToString(Atom{3, kFlu}), "t[Ed].Disease=flu");

  KnowledgeFormula formula;
  formula.AddSimple(SimpleImplication{Atom{6, kFlu}, Atom{1, kFlu}});
  EXPECT_EQ(printer.FormulaToString(formula),
            "(t[Hannah].Disease=flu -> t[Charlie].Disease=flu)");
}

TEST(PrinterParserTest, RoundTrip) {
  const Table table = MakeHospitalTable();
  KnowledgePrinter printer(table, kHospitalSensitiveColumn);
  KnowledgeParser parser(table, kHospitalSensitiveColumn);
  BasicImplication imp;
  imp.antecedents = {Atom{0, kFlu}, Atom{3, kLungCancer}};
  imp.consequents = {Atom{4, kMumps}};
  auto reparsed = parser.ParseImplication(printer.ImplicationToString(imp));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->antecedents, imp.antecedents);
  EXPECT_EQ(reparsed->consequents, imp.consequents);
}

// --- Theorem 3 (completeness) ---

TEST(CompletenessTest, ExpressesArbitraryPredicates) {
  // Predicate over 3 persons with 3 values: "persons 0 and 1 agree".
  const WorldPredicate agree = [](const std::vector<int32_t>& w) {
    return w[0] == w[1];
  };
  auto formula = ExpressPredicateAsImplications(3, 3, agree);
  ASSERT_TRUE(formula.ok());
  // Verify pointwise equality over all 27 worlds.
  for (int32_t a = 0; a < 3; ++a) {
    for (int32_t b = 0; b < 3; ++b) {
      for (int32_t c = 0; c < 3; ++c) {
        const std::vector<int32_t> world = {a, b, c};
        EXPECT_EQ(formula->Holds(world), agree(world))
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(CompletenessTest, ExpressesParityPredicate) {
  const WorldPredicate parity = [](const std::vector<int32_t>& w) {
    int sum = 0;
    for (int32_t v : w) sum += v;
    return sum % 2 == 0;
  };
  auto formula = ExpressPredicateAsImplications(4, 2, parity);
  ASSERT_TRUE(formula.ok());
  // 2^4 = 16 worlds, 8 violating -> 8 implications.
  EXPECT_EQ(formula->k(), 8u);
  for (uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<int32_t> world(4);
    for (size_t p = 0; p < 4; ++p) world[p] = (mask >> p) & 1;
    EXPECT_EQ(formula->Holds(world), parity(world)) << mask;
  }
}

TEST(CompletenessTest, TautologyNeedsNoImplications) {
  auto formula = ExpressPredicateAsImplications(
      2, 2, [](const std::vector<int32_t>&) { return true; });
  ASSERT_TRUE(formula.ok());
  EXPECT_EQ(formula->k(), 0u);
}

TEST(CompletenessTest, EnforcesBudgetAndDomainRequirements) {
  const WorldPredicate any = [](const std::vector<int32_t>&) { return true; };
  EXPECT_EQ(ExpressPredicateAsImplications(40, 10, any).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ExpressPredicateAsImplications(2, 1, any).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExpressPredicateAsImplications(0, 3, any).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cksafe
