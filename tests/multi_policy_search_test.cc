// Differential oracle for the multi-policy lattice search.
//
// The contract under test: FindMinimalSafeNodesMultiPolicy's per-policy
// results are IDENTICAL — frontier nodes, their order, and every
// LatticeSearchStats counter — to independent FindMinimalSafeNodes runs
// with each policy's point predicate, for random lattices/profiles and
// for real (c,k)-safety over real tables, at 1, 2, and 8 threads. On top
// of bit-identity, the shared sweep must actually share:
// profiles_computed <= the sum of per-policy evaluations (collapsing to
// the strictest policy's count on a domination chain), and the
// MultiPolicyPublisher's per-tenant releases must equal dedicated
// Publisher runs.

#include "cksafe/search/lattice_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/publisher.h"
#include "cksafe/stream/multi_policy_publisher.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

void ExpectIdenticalResults(const LatticeSearchResult& expected,
                            const LatticeSearchResult& actual,
                            const std::string& label) {
  EXPECT_EQ(expected.minimal_safe_nodes, actual.minimal_safe_nodes) << label;
  EXPECT_EQ(expected.stats.nodes_visited, actual.stats.nodes_visited) << label;
  EXPECT_EQ(expected.stats.evaluations, actual.stats.evaluations) << label;
  EXPECT_EQ(expected.stats.implied_safe, actual.stats.implied_safe) << label;
  EXPECT_EQ(expected.stats.seed_evaluations, 0u) << label;
  EXPECT_EQ(expected.stats.seed_reused, 0u) << label;
}

// A random synthetic profiler: disclosure decreases with (weighted) node
// height and increases with k — monotone on the lattice (Theorem 14) and
// nondecreasing in k, like the real thing, but cheap enough for many
// random trials.
NodeProfiler RandomProfiler(Rng* rng, size_t num_attributes, size_t max_k) {
  std::vector<double> weights(num_attributes);
  for (double& w : weights) w = 1.0 + static_cast<double>(rng->NextBelow(3));
  const double slope = 0.02 + 0.1 * rng->NextDouble();
  return [weights, slope,
          max_k](const LatticeNode& node) -> std::optional<DisclosureProfile> {
    double height = 0.0;
    for (size_t i = 0; i < node.size(); ++i) height += weights[i] * node[i];
    DisclosureProfile profile;
    for (size_t k = 0; k <= max_k; ++k) {
      const double d =
          std::min(1.0, 1.0 / (1.0 + 0.35 * height) + slope * k);
      profile.implication.push_back(d);
      profile.negation.push_back(d);
    }
    return profile;
  };
}

std::vector<CkPolicy> RandomPolicies(Rng* rng, size_t count, size_t max_k) {
  std::vector<CkPolicy> policies(count);
  for (CkPolicy& policy : policies) {
    policy.c = 0.05 + 0.95 * rng->NextDouble();
    policy.k = rng->NextBelow(max_k + 1);
  }
  return policies;
}

// The independent-run oracle: one FindMinimalSafeNodes per policy, its
// predicate reading the same profile source.
std::vector<LatticeSearchResult> IndependentRuns(
    const GeneralizationLattice& lattice, const NodeProfiler& profile_of,
    const std::vector<CkPolicy>& policies) {
  std::vector<LatticeSearchResult> results;
  for (const CkPolicy& policy : policies) {
    const NodePredicate is_safe = [&](const LatticeNode& node) {
      const std::optional<DisclosureProfile> profile = profile_of(node);
      return profile.has_value() && profile->IsCkSafe(policy.c, policy.k);
    };
    results.push_back(FindMinimalSafeNodes(lattice, is_safe,
                                           LatticeSearchOptions{}));
  }
  return results;
}

void ExpectMatchesIndependentRuns(const GeneralizationLattice& lattice,
                                  const NodeProfiler& profile_of,
                                  const std::vector<CkPolicy>& policies,
                                  const std::string& label) {
  const std::vector<LatticeSearchResult> independent =
      IndependentRuns(lattice, profile_of, policies);
  uint64_t total_evaluations = 0;
  for (const LatticeSearchResult& run : independent) {
    total_evaluations += run.stats.evaluations;
  }

  for (const size_t threads : {1u, 2u, 8u}) {
    MultiPolicySearchOptions options;
    options.num_threads = threads;
    const MultiPolicySearchResult multi = FindMinimalSafeNodesMultiPolicy(
        lattice, profile_of, policies, options);
    ASSERT_EQ(multi.per_policy.size(), policies.size());
    const std::string sub = label + " threads=" + std::to_string(threads);
    for (size_t p = 0; p < policies.size(); ++p) {
      ExpectIdenticalResults(independent[p], multi.per_policy[p],
                             sub + " policy=" + std::to_string(p));
    }
    // The whole point of the shared sweep: one profile answers every
    // policy, so shared work (the union of per-policy evaluation sets)
    // never exceeds the independent total.
    EXPECT_EQ(multi.stats.verdicts, total_evaluations) << sub;
    EXPECT_LE(multi.stats.profiles_computed, total_evaluations) << sub;
    EXPECT_EQ(multi.stats.shared_verdicts(),
              total_evaluations - multi.stats.profiles_computed)
        << sub;
  }
}

TEST(MultiPolicySearchTest, RandomLatticesMatchIndependentRuns) {
  Rng rng(20260726);
  const GeneralizationLattice lattice({4, 3, 3, 2});
  constexpr size_t kMaxK = 6;
  for (int trial = 0; trial < 8; ++trial) {
    const NodeProfiler profile_of =
        RandomProfiler(&rng, lattice.num_attributes(), kMaxK);
    const size_t count = 3 + rng.NextBelow(4);  // 3..6 policies
    const std::vector<CkPolicy> policies =
        RandomPolicies(&rng, count, kMaxK);
    ExpectMatchesIndependentRuns(lattice, profile_of, policies,
                                 "trial " + std::to_string(trial));
  }
}

TEST(MultiPolicySearchTest, RealCkSafetyMatchesIndependentRuns) {
  // The production shape: real (c,k)-safety profiles over synthetic Adult,
  // every policy answered from one shared cache.
  const Table table = GenerateSyntheticAdult(/*num_rows=*/120, /*seed=*/7);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(*qis);

  Rng rng(42);
  for (int trial = 0; trial < 3; ++trial) {
    const size_t count = 3 + rng.NextBelow(4);
    std::vector<CkPolicy> policies = RandomPolicies(&rng, count, 4);
    // Keep thresholds in the interesting band where frontiers are
    // non-trivial on this table.
    for (CkPolicy& policy : policies) policy.c = 0.5 + policy.c * 0.45;

    size_t max_k = 0;
    for (const CkPolicy& policy : policies) {
      max_k = std::max(max_k, policy.k);
    }
    DisclosureCache cache;
    const NodeProfiler profile_of =
        [&](const LatticeNode& node) -> std::optional<DisclosureProfile> {
      auto b = BucketizeAtNode(table, *qis, node, kAdultOccupationColumn);
      CKSAFE_CHECK(b.ok()) << b.status().ToString();
      return DisclosureAnalyzer(*b, &cache).Profile(max_k);
    };
    // The independent oracle uses the POINT path (MaxDisclosureImplications
    // via IsCkSafe), not the profile: agreement additionally proves the
    // one-sweep curve classifies exactly like per-k point queries.
    std::vector<LatticeSearchResult> independent;
    for (const CkPolicy& policy : policies) {
      DisclosureCache fresh_cache;
      const NodePredicate is_safe = [&](const LatticeNode& node) {
        auto b = BucketizeAtNode(table, *qis, node, kAdultOccupationColumn);
        CKSAFE_CHECK(b.ok()) << b.status().ToString();
        return DisclosureAnalyzer(*b, &fresh_cache)
            .IsCkSafe(policy.c, policy.k);
      };
      independent.push_back(FindMinimalSafeNodes(lattice, is_safe,
                                                 LatticeSearchOptions{}));
    }

    for (const size_t threads : {1u, 2u, 8u}) {
      MultiPolicySearchOptions options;
      options.num_threads = threads;
      const MultiPolicySearchResult multi =
          FindMinimalSafeNodesMultiPolicy(lattice, profile_of, policies,
                                          options);
      for (size_t p = 0; p < policies.size(); ++p) {
        ExpectIdenticalResults(independent[p], multi.per_policy[p],
                               "trial " + std::to_string(trial) +
                                   " threads=" + std::to_string(threads) +
                                   " policy=" + std::to_string(p));
      }
    }
  }
}

TEST(MultiPolicySearchTest, DominationChainCollapsesProfilesToStrictest) {
  // Double monotonicity across policies: when policy 0 dominates every
  // other (lowest c, highest k), any node a dominated policy still needs
  // is also needed by policy 0 (its implied-safe set is a superset of
  // policy 0's at every level). The shared profile set therefore
  // collapses to EXACTLY the strictest policy's evaluation set — three
  // dominated tenants ride along for free.
  const GeneralizationLattice lattice({4, 3, 3, 2});
  Rng rng(9);
  const std::vector<CkPolicy> policies = {
      {0.45, 4}, {0.55, 3}, {0.7, 2}, {0.85, 1}};
  for (size_t p = 1; p < policies.size(); ++p) {
    ASSERT_TRUE(policies[0].Dominates(policies[p]));
  }
  for (int trial = 0; trial < 5; ++trial) {
    const NodeProfiler profile_of =
        RandomProfiler(&rng, lattice.num_attributes(), 4);
    const MultiPolicySearchResult multi = FindMinimalSafeNodesMultiPolicy(
        lattice, profile_of, policies, MultiPolicySearchOptions{});
    EXPECT_EQ(multi.stats.profiles_computed,
              multi.per_policy[0].stats.evaluations)
        << "trial " << trial;
    EXPECT_EQ(multi.stats.shared_verdicts(),
              multi.per_policy[1].stats.evaluations +
                  multi.per_policy[2].stats.evaluations +
                  multi.per_policy[3].stats.evaluations)
        << "trial " << trial;
  }
}

TEST(MultiPolicyPublisherTest, TenantReleasesMatchDedicatedPublishers) {
  const Table adult = GenerateSyntheticAdult(240, 11);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  PublisherOptions base;
  base.objective = UtilityObjective::kDiscernibility;

  struct Tenant {
    const char* name;
    double c;
    size_t k;
  };
  const Tenant tenants[] = {
      {"strict", 0.7, 3}, {"medium", 0.8, 2}, {"loose", 0.9, 1},
      {"impossible", 0.05, 4}};

  MultiPolicyPublisher multi(adult, *qis, kAdultOccupationColumn, base);
  for (const Tenant& tenant : tenants) {
    multi.AddTenant(tenant.name, tenant.c, tenant.k);
  }
  auto releases = multi.PublishAll();
  ASSERT_TRUE(releases.ok()) << releases.status();
  ASSERT_EQ(releases->size(), std::size(tenants));
  EXPECT_GT(multi.last_search_stats().profiles_computed, 0u);
  EXPECT_GE(multi.last_search_stats().verdicts,
            multi.last_search_stats().profiles_computed);

  for (size_t i = 0; i < std::size(tenants); ++i) {
    const TenantRelease& tenant_release = (*releases)[i];
    EXPECT_EQ(tenant_release.tenant, tenants[i].name);
    PublisherOptions options = base;
    options.c = tenants[i].c;
    options.k = tenants[i].k;
    const Publisher dedicated(options);
    auto expected = dedicated.Publish(adult, *qis, kAdultOccupationColumn);
    ASSERT_EQ(expected.ok(), tenant_release.release.ok()) << tenants[i].name;
    if (!expected.ok()) {
      EXPECT_EQ(expected.status().code(), tenant_release.release.status().code())
          << tenants[i].name;
      continue;
    }
    EXPECT_EQ(expected->node, tenant_release.release->node) << tenants[i].name;
    EXPECT_EQ(expected->minimal_safe_nodes,
              tenant_release.release->minimal_safe_nodes)
        << tenants[i].name;
    EXPECT_EQ(expected->worst_case.disclosure,
              tenant_release.release->worst_case.disclosure)
        << tenants[i].name;
    EXPECT_EQ(expected->published_sensitive,
              tenant_release.release->published_sensitive)
        << tenants[i].name;
  }
}

TEST(MultiPolicyPublisherTest, StreamingBatchesKeepTenantsConsistent) {
  // Growth via AddBatch: every PublishAll over the grown table must still
  // match dedicated publishers over the same prefix.
  const Table adult = GenerateSyntheticAdult(200, 3);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  PublisherOptions base;

  Table initial(adult.schema());
  auto row_cells = [&](size_t row) {
    std::vector<int32_t> cells(adult.num_columns());
    for (size_t c = 0; c < adult.num_columns(); ++c) {
      cells[c] = adult.at(static_cast<PersonId>(row), c);
    }
    return cells;
  };
  for (size_t r = 0; r < 120; ++r) {
    ASSERT_TRUE(initial.AppendRow(row_cells(r)).ok());
  }

  MultiPolicyPublisher multi(std::move(initial), *qis,
                             kAdultOccupationColumn, base);
  multi.AddTenant("a", 0.8, 2);
  multi.AddTenant("b", 0.9, 1);

  for (int batch = 0; batch < 2; ++batch) {
    if (batch > 0) {
      std::vector<std::vector<int32_t>> rows;
      for (size_t r = 120; r < 200; ++r) rows.push_back(row_cells(r));
      ASSERT_TRUE(multi.AddBatch(rows).ok());
    }
    auto releases = multi.PublishAll();
    ASSERT_TRUE(releases.ok()) << releases.status();
    for (const TenantRelease& tenant_release : *releases) {
      PublisherOptions options = base;
      options.c = tenant_release.policy.c;
      options.k = tenant_release.policy.k;
      auto expected = Publisher(options).Publish(multi.table(), *qis,
                                                 kAdultOccupationColumn);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(tenant_release.release.ok())
          << tenant_release.release.status();
      EXPECT_EQ(expected->node, tenant_release.release->node);
      EXPECT_EQ(expected->published_sensitive,
                tenant_release.release->published_sensitive);
    }
  }
  // The session cache persisted across tenants and batches.
  EXPECT_GT(multi.cache().hits(), 0u);
}

TEST(MultiPolicySearchTest, BatchProfilerIsAnswerNeutral) {
  // The NodeBatchProfiler contract: a pure-batching evaluator (element i ==
  // what the NodeProfiler returns for node i) must leave every frontier,
  // order, and counter bit-identical to the per-node path — the batch hook
  // may only amortize setup, never change answers. Also pins the plumbing:
  // the hook really is called once per level with the surviving nodes, and
  // their total matches profiles_computed.
  Rng rng(20260809);
  const GeneralizationLattice lattice({4, 3, 3, 2});
  constexpr size_t kMaxK = 5;
  for (int trial = 0; trial < 6; ++trial) {
    const NodeProfiler profile_of =
        RandomProfiler(&rng, lattice.num_attributes(), kMaxK);
    const std::vector<CkPolicy> policies =
        RandomPolicies(&rng, 3 + rng.NextBelow(3), kMaxK);
    const MultiPolicySearchResult plain = FindMinimalSafeNodesMultiPolicy(
        lattice, profile_of, policies, MultiPolicySearchOptions{});

    for (const size_t threads : {1u, 2u, 8u}) {
      uint64_t batch_calls = 0;
      uint64_t batched_nodes = 0;
      MultiPolicySearchOptions options;
      options.num_threads = threads;
      options.batch_profiler =
          [&](const std::vector<LatticeNode>& batch, ThreadPool* pool)
          -> std::vector<std::optional<DisclosureProfile>> {
        ++batch_calls;
        batched_nodes += batch.size();
        std::vector<std::optional<DisclosureProfile>> profiles(batch.size());
        ParallelFor(pool, batch.size(),
                    [&](size_t i) { profiles[i] = profile_of(batch[i]); });
        return profiles;
      };
      const MultiPolicySearchResult batched = FindMinimalSafeNodesMultiPolicy(
          lattice, profile_of, policies, options);
      const std::string label = "trial " + std::to_string(trial) +
                                " threads=" + std::to_string(threads);
      for (size_t p = 0; p < policies.size(); ++p) {
        ExpectIdenticalResults(plain.per_policy[p], batched.per_policy[p],
                               label + " policy=" + std::to_string(p));
      }
      EXPECT_EQ(batched.stats.profiles_computed,
                plain.stats.profiles_computed)
          << label;
      EXPECT_EQ(batched.stats.verdicts, plain.stats.verdicts) << label;
      EXPECT_EQ(batched_nodes, batched.stats.profiles_computed) << label;
      // One call per level that had survivors; never more than the height
      // range, and at least one (the bottom level always needs verdicts).
      EXPECT_GE(batch_calls, 1u) << label;
      EXPECT_LE(batch_calls, lattice.MaxHeight() + 1) << label;
    }
  }
}

TEST(MultiPolicyPublisherTest, BatchedTableResolutionAmortizesSharedLookups) {
  // The point of the Minimize1BatchView inside PublishAll: every bucket of
  // every profiled node requests a MINIMIZE1 table (prepare_calls), but
  // only distinct unresolved histograms reach the shard-locked shared
  // cache (shared_lookups). On real data histograms recur heavily across
  // nodes and levels, so the gap must be large — while the releases stay
  // exactly what dedicated publishers produce (answer neutrality of the
  // batch path end to end).
  const Table adult = GenerateSyntheticAdult(180, 5);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  PublisherOptions base;

  MultiPolicyPublisher multi(adult, *qis, kAdultOccupationColumn, base);
  multi.AddTenant("strict", 0.75, 3);
  multi.AddTenant("loose", 0.9, 1);
  auto releases = multi.PublishAll();
  ASSERT_TRUE(releases.ok()) << releases.status();

  const auto traffic = multi.last_table_traffic();
  // Every profiled node has >= 1 bucket, so prepare_calls covers at least
  // the profile count; and the whole sweep resolves each distinct
  // histogram against the shared cache at most once, so the local view
  // must absorb the (strictly positive) remainder.
  EXPECT_GE(traffic.prepare_calls,
            multi.last_search_stats().profiles_computed);
  EXPECT_GT(traffic.shared_lookups, 0u);
  EXPECT_LT(traffic.shared_lookups, traffic.prepare_calls)
      << "batched table view absorbed no traffic";

  for (const TenantRelease& tenant_release : *releases) {
    PublisherOptions options = base;
    options.c = tenant_release.policy.c;
    options.k = tenant_release.policy.k;
    auto expected =
        Publisher(options).Publish(adult, *qis, kAdultOccupationColumn);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(tenant_release.release.ok())
        << tenant_release.release.status();
    EXPECT_EQ(expected->node, tenant_release.release->node)
        << tenant_release.tenant;
    EXPECT_EQ(expected->minimal_safe_nodes,
              tenant_release.release->minimal_safe_nodes)
        << tenant_release.tenant;
    EXPECT_EQ(expected->published_sensitive,
              tenant_release.release->published_sensitive)
        << tenant_release.tenant;
  }
}

}  // namespace
}  // namespace cksafe
