// WorkloadFoundry: a (seed, config) pair is a reproducible workload. The
// fleet load generator and BENCHMARKS.md recipes both lean on that — the
// fingerprint printed by `cksafe_cli fleet` only means anything if the
// same seed always yields the same queries, byte for byte.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cksafe/foundry/workload_foundry.h"
#include "testing_util.h"

namespace cksafe {
namespace {

WorkloadFoundryConfig BaseConfig() {
  WorkloadFoundryConfig config;
  config.seed = 0xfeedULL;
  config.num_queries = 400;
  config.tenants = {"gold", "std", "free"};
  return config;
}

TEST(WorkloadFoundryTest, SameConfigYieldsIdenticalWorkloads) {
  const auto a = GenerateWorkload(BaseConfig());
  const auto b = GenerateWorkload(BaseConfig());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].tenant, (*b)[i].tenant);
    EXPECT_EQ((*a)[i].kind, (*b)[i].kind);
    EXPECT_EQ((*a)[i].c, (*b)[i].c);  // exact: same bits, same draw
    EXPECT_EQ((*a)[i].k, (*b)[i].k);
    EXPECT_EQ((*a)[i].bucket, (*b)[i].bucket);
  }
  EXPECT_EQ(FingerprintWorkload(*a), FingerprintWorkload(*b));
}

TEST(WorkloadFoundryTest, SeedAndConfigChangesChangeTheFingerprint) {
  const auto base = GenerateWorkload(BaseConfig());
  ASSERT_TRUE(base.ok());

  WorkloadFoundryConfig reseeded = BaseConfig();
  reseeded.seed ^= 1;
  const auto other = GenerateWorkload(reseeded);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(FingerprintWorkload(*base), FingerprintWorkload(*other));

  WorkloadFoundryConfig wider = BaseConfig();
  wider.max_k += 1;
  const auto widened = GenerateWorkload(wider);
  ASSERT_TRUE(widened.ok());
  EXPECT_NE(FingerprintWorkload(*base), FingerprintWorkload(*widened));
}

TEST(WorkloadFoundryTest, DrawsRespectTheConfigDomain) {
  WorkloadFoundryConfig config = BaseConfig();
  config.num_queries = 2000;
  const auto workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  ASSERT_EQ(workload->size(), config.num_queries);

  std::vector<bool> tenant_seen(config.tenants.size(), false);
  bool kind_seen[4] = {false, false, false, false};
  for (const Query& query : *workload) {
    size_t tenant = config.tenants.size();
    for (size_t t = 0; t < config.tenants.size(); ++t) {
      if (config.tenants[t] == query.tenant) tenant = t;
    }
    ASSERT_LT(tenant, config.tenants.size())
        << "unknown tenant " << query.tenant;
    tenant_seen[tenant] = true;
    kind_seen[static_cast<size_t>(query.kind)] = true;
    EXPECT_LE(query.k, config.max_k);
    if (query.kind == QueryKind::kPerBucket) {
      EXPECT_LE(query.bucket, config.max_bucket);
    }
    if (query.kind == QueryKind::kIsCkSafe) {
      // c is drawn from c_choices verbatim — exact equality, no rounding.
      bool from_choices = false;
      for (const double c : config.c_choices) from_choices |= (query.c == c);
      EXPECT_TRUE(from_choices) << "c=" << query.c << " not a listed choice";
    }
  }
  for (size_t t = 0; t < tenant_seen.size(); ++t) {
    EXPECT_TRUE(tenant_seen[t]) << config.tenants[t] << " never drawn";
  }
  for (size_t kind = 0; kind < 4; ++kind) {
    EXPECT_TRUE(kind_seen[kind]) << "kind " << kind << " never drawn";
  }
}

TEST(WorkloadFoundryTest, ZeroWeightKindsAreNeverDrawn) {
  WorkloadFoundryConfig config = BaseConfig();
  config.weight_safe = 0;
  config.weight_per_bucket = 0;
  const auto workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  for (const Query& query : *workload) {
    EXPECT_NE(query.kind, QueryKind::kIsCkSafe);
    EXPECT_NE(query.kind, QueryKind::kPerBucket);
  }
}

TEST(WorkloadFoundryTest, InvalidConfigsAreRejected) {
  WorkloadFoundryConfig no_tenants = BaseConfig();
  no_tenants.tenants.clear();
  EXPECT_FALSE(GenerateWorkload(no_tenants).ok());

  WorkloadFoundryConfig no_weights = BaseConfig();
  no_weights.weight_safe = 0;
  no_weights.weight_disclosure = 0;
  no_weights.weight_profile = 0;
  no_weights.weight_per_bucket = 0;
  EXPECT_FALSE(GenerateWorkload(no_weights).ok());

  WorkloadFoundryConfig no_choices = BaseConfig();
  no_choices.c_choices.clear();  // weight_safe > 0 needs choices to draw
  EXPECT_FALSE(GenerateWorkload(no_choices).ok());

  WorkloadFoundryConfig bad_c = BaseConfig();
  bad_c.c_choices = {0.5, -0.25};
  EXPECT_FALSE(GenerateWorkload(bad_c).ok());
}

}  // namespace
}  // namespace cksafe
