// BoundedQueue: the serving layer's backpressure/drain primitive.

#include "cksafe/util/bounded_queue.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cksafe {
namespace {

TEST(BoundedQueueTest, PopAllDrainsInFifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPush(i).ok());
  }
  EXPECT_EQ(queue.size(), 5u);
  std::vector<int> out;
  ASSERT_TRUE(queue.PopAll(&out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushBackpressureAtCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  const Status full = queue.TryPush(3);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // Draining frees capacity again.
  std::vector<int> out;
  ASSERT_TRUE(queue.PopAll(&out));
  EXPECT_TRUE(queue.TryPush(3).ok());
}

TEST(BoundedQueueTest, CloseRejectsPushesButDeliversPending) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush(8).code(), StatusCode::kFailedPrecondition);
  std::vector<int> out;
  ASSERT_TRUE(queue.PopAll(&out));  // pending item still delivered
  EXPECT_EQ(out, std::vector<int>{7});
  EXPECT_FALSE(queue.PopAll(&out));  // closed and drained
}

TEST(BoundedQueueTest, TryPopAllNonBlockingOnEmpty) {
  BoundedQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_FALSE(queue.TryPopAll(&out));
  ASSERT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPopAll(&out));
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_FALSE(queue.PopAll(&out));
    returned = true;
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothing) {
  BoundedQueue<int> queue(1 << 16);
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&queue, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.TryPush(t * kPerProducer + i).ok());
      }
    });
  }
  std::vector<int> all;
  std::vector<int> out;
  while (all.size() < 4 * kPerProducer) {
    if (queue.PopAll(&out)) {
      all.insert(all.end(), out.begin(), out.end());
    }
  }
  for (auto& producer : producers) producer.join();
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    ASSERT_EQ(all[i], i);
  }
}

}  // namespace
}  // namespace cksafe
