// Stress configuration for the log-space MINIMIZE2 kernel: large bucket
// counts and large atom budgets — including budgets beyond the historical
// uint8 ceiling of 255 — inside the 5-second `ctest -L unit` budget
// (DESIGN.md §9, satellite of PR 4). The point is to run the widened
// choice storage, the tiled scans, and the pruning bounds at sizes the
// property suites don't reach, while asserting the structural contracts:
// finiteness, monotonicity, column/point bit-identity, and arena reuse.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cksafe/core/logprob.h"
#include "cksafe/core/minimize2.h"

namespace cksafe {
namespace {

std::vector<Minimize2Bucket> IdenticalBuckets(
    size_t count, const std::vector<uint32_t>& histogram, size_t budget) {
  auto table = std::make_shared<const Minimize1Table>(histogram, budget);
  uint64_t n = 0;
  for (uint32_t c : histogram) n += c;
  return std::vector<Minimize2Bucket>(
      count, Minimize2Bucket{
                 table, static_cast<double>(n) /
                            static_cast<double>(histogram[0])});
}

TEST(KernelStressTest, LargeBucketCountLargeBudget) {
  // 1200 buckets at budget 96: ~11M candidate scans without pruning.
  constexpr size_t kBuckets = 1200;
  constexpr size_t kAtoms = 96;
  const std::vector<Minimize2Bucket> inputs =
      IdenticalBuckets(kBuckets, {5, 3, 2, 1, 1}, kAtoms + 1);
  Minimize2Forward dp(kAtoms);
  dp.Recompute(inputs, 0);
  // Small buckets saturate quickly: the full-budget minimum is log 0, but
  // every column must be feasible and the curve monotone.
  for (size_t h = 1; h <= kAtoms; ++h) {
    ASSERT_NE(dp.LogRMinAt(h), kLogInfeasible) << "h=" << h;
    EXPECT_LE(dp.LogRMinAt(h), dp.LogRMinAt(h - 1)) << "h=" << h;
  }
  EXPECT_LT(dp.LogRMinAt(1), 0.0);
}

TEST(KernelStressTest, BudgetBeyondHistoricalUint8Ceiling) {
  // k = 300 would have CHECK-aborted before the uint16 widening.
  constexpr size_t kBuckets = 40;
  constexpr size_t kAtoms = 300;
  ASSERT_TRUE(Minimize2Forward::ValidateBudget(kAtoms).ok());
  const std::vector<uint32_t> histogram = {6, 5, 4, 3, 2, 1};
  const std::vector<Minimize2Bucket> inputs =
      IdenticalBuckets(kBuckets, histogram, kAtoms + 1);
  Minimize2Forward dp(kAtoms);
  dp.Recompute(inputs, 0);
  for (size_t h = 1; h <= kAtoms; ++h) {
    ASSERT_NE(dp.LogRMinAt(h), kLogInfeasible) << "h=" << h;
    EXPECT_LE(dp.LogRMinAt(h), dp.LogRMinAt(h - 1)) << "h=" << h;
  }
  // The witness at full budget still reconstructs (uint16 choices).
  const std::vector<Minimize2Placement> placements = dp.WitnessPlacements();
  uint32_t placed = 0;
  for (const Minimize2Placement& p : placements) placed += p.atoms;
  EXPECT_EQ(placed, kAtoms);

  // The user-facing validation accepts exactly up to the practical
  // analysis cap and reports a clean Status beyond it (the CLI path
  // relies on this; the uint16 storage ceiling is far higher and only
  // guards direct kernel users via the constructor CHECK).
  EXPECT_TRUE(
      Minimize2Forward::ValidateBudget(Minimize2Forward::kMaxAnalysisBudget)
          .ok());
  const Status absurd = Minimize2Forward::ValidateBudget(
      Minimize2Forward::kMaxAnalysisBudget + 1);
  EXPECT_EQ(absurd.code(), StatusCode::kOutOfRange);
  EXPECT_LT(Minimize2Forward::kMaxAnalysisBudget,
            Minimize2Forward::kMaxBudget);
}

TEST(KernelStressTest, WideSweepColumnsBitMatchDedicatedSweeps) {
  // The one-sweep profile contract at stress sizes: column h of a wide
  // sweep == a dedicated budget-h sweep, bit for bit, pruning included.
  constexpr size_t kBuckets = 400;
  constexpr size_t kAtoms = 80;
  const std::vector<Minimize2Bucket> inputs =
      IdenticalBuckets(kBuckets, {9, 7, 5, 3, 1, 1, 1}, kAtoms + 1);
  Minimize2Forward wide(kAtoms);
  wide.Recompute(inputs, 0);
  for (size_t h : {size_t{0}, size_t{7}, size_t{33}, size_t{80}}) {
    Minimize2Forward dedicated(h);
    dedicated.Recompute(inputs, 0);
    EXPECT_EQ(wide.LogRMinAt(h), dedicated.LogRMin()) << "h=" << h;
  }
}

TEST(KernelStressTest, WorkspaceReuseAcrossBudgetsIsValueIdentical) {
  // The arena path (Reset + Recompute) must produce the same values as a
  // freshly constructed sweep, across budget changes in both directions.
  const std::vector<Minimize2Bucket> small =
      IdenticalBuckets(60, {4, 2, 1}, 130);
  Minimize2Workspace ws;
  for (size_t k : {size_t{12}, size_t{129}, size_t{5}, size_t{64}}) {
    Minimize2Forward& reused = ws.SweepForBudget(k);
    reused.Recompute(small, 0);
    Minimize2Forward fresh(k);
    fresh.Recompute(small, 0);
    for (size_t h = 0; h <= k; ++h) {
      ASSERT_EQ(reused.LogRMinAt(h), fresh.LogRMinAt(h))
          << "k=" << k << " h=" << h;
    }
  }
}

}  // namespace
}  // namespace cksafe
