// Death tests for the fatal-assertion layer: CHECK macros must abort with a
// diagnostic, StatusOr accessors must refuse to yield absent values, and
// contract violations in core types must be caught rather than corrupting
// results.

#include <gtest/gtest.h>

#include "cksafe/core/minimize1.h"
#include "cksafe/data/table.h"
#include "cksafe/util/check.h"
#include "cksafe/util/math_util.h"
#include "cksafe/util/random.h"
#include "cksafe/util/status.h"

namespace cksafe {
namespace {

TEST(CheckDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH(CKSAFE_CHECK(1 == 2) << "extra context", "CKSAFE_CHECK failed");
  EXPECT_DEATH(CKSAFE_CHECK_EQ(3, 4), "3.*4");
  EXPECT_DEATH(CKSAFE_CHECK_LT(5, 5), "CKSAFE_CHECK failed");
}

TEST(CheckDeathTest, SafeDivNonzeroByZeroAbortsWithReadableMessage) {
  // Regression (PR 7): the diagnostic used to print
  // "division of nonzero0.5by zero" — missing both spaces around the
  // operand. The pattern pins the spacing so the message stays readable.
  EXPECT_DEATH((void)SafeDiv(0.5, 0.0), "division of nonzero 0\\.5 by zero");
}

TEST(CheckDeathTest, NegativeWeightAbortsWithReadableMessage) {
  // Same class as the SafeDiv fix: CheckFailureStream inserts one space
  // before each streamed operand, so fragments must not carry their own
  // padding. Pin the rendered message — "negative weight -0.25", with the
  // space — so a regression in either the fragment or the stream shows up
  // here.
  EXPECT_DEATH({ DiscreteSampler bad({1.0, -0.25}); },
               "negative weight -0\\.25");
  EXPECT_DEATH({ DiscreteSampler empty({0.0, 0.0}); },
               "all weights are zero");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  CKSAFE_CHECK(true) << "never evaluated";
  CKSAFE_CHECK_EQ(2, 2);
  CKSAFE_CHECK_LE(2, 3);
  CKSAFE_DCHECK(true);
}

TEST(CheckDeathTest, StatusOrValueOnErrorAborts) {
  StatusOr<int> err(Status::NotFound("nope"));
  EXPECT_DEATH({ (void)err.value(); }, "StatusOr::value");
}

TEST(CheckDeathTest, StatusOrFromOkStatusAborts) {
  EXPECT_DEATH({ StatusOr<int> bad{Status::OK()}; }, "without value");
}

TEST(CheckDeathTest, TableOutOfRangeAccessAborts) {
  Table table{Schema({AttributeDef::Numeric("X", 0, 9)})};
  CKSAFE_CHECK(table.AppendRow({1}).ok());
  EXPECT_DEATH({ (void)table.at(5, 0); }, "CKSAFE_CHECK failed");
  EXPECT_DEATH({ (void)table.at(0, 7); }, "CKSAFE_CHECK failed");
}

TEST(CheckDeathTest, Minimize1ContractViolationsAbort) {
  // Non-descending counts violate the Lemma 12 precondition.
  EXPECT_DEATH({ Minimize1Table bad({1, 3}, 2); }, "CKSAFE_CHECK failed");
  // Querying beyond the table's budget.
  Minimize1Table table({3, 2}, 2);
  EXPECT_DEATH({ (void)table.MinProbability(5); }, "CKSAFE_CHECK failed");
}

}  // namespace
}  // namespace cksafe
