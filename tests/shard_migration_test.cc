// Live tenant migration: publish-to-new / drain-old must be invisible in
// the answers. Sequences are fleet-assigned and adopted verbatim, so a
// migrated tenant keeps its history; every answer produced while a
// migration is racing the readers — and after it — must be bit-identical
// to a fresh synchronous DisclosureAnalyzer over the snapshot the answer
// names. Also covered: migrate-back (A -> B -> A, the idempotent re-adopt
// path), publishing after a migration, no-op and unknown-tenant edges, and
// a durable target surviving a kill/restart cycle after the handoff.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cksafe/serve/release_snapshot.h"
#include "cksafe/shard/fleet.h"
#include "cksafe/util/random.h"
#include "shard_testing_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::AnswerMatchesFresh;
using testing::RandomQuery;
using testing::RandomSnapshot;
using testing::ScopedTempDir;
using testing::SeedTrace;
using testing::TestIters;
using testing::TestSeed;

struct ServedRecord {
  Query query;
  QueryAnswer answer;
};

TEST(ShardMigrationTest, AnswersStayBitIdenticalWhileMigrationRaces) {
  const uint64_t seed = TestSeed(20260830);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  ShardFleetOptions options;
  options.num_shards = 2;
  options.socket_dir = dir.path();
  auto fleet_or = ShardFleet::Start(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  for (uint64_t sequence = 1; sequence <= 3; ++sequence) {
    ASSERT_TRUE(
        fleet->PublishSnapshot("gold", RandomSnapshot(&rng, sequence)).ok());
  }
  const auto registry = fleet->PublishedRegistry();
  const size_t source = fleet->ShardOf("gold");
  const size_t target = (source + 1) % fleet->num_shards();

  // Readers hammer the tenant while the writer migrates it. Per-thread
  // rngs: query choice must not race.
  constexpr size_t kReaders = 2;
  std::atomic<bool> halt{false};
  std::vector<std::vector<ServedRecord>> served(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng(seed ^ (0x9e3779b97f4a7c15ULL * (r + 1)));
      while (!halt.load(std::memory_order_acquire)) {
        const Query query = RandomQuery(&reader_rng, "gold");
        const auto answer = fleet->Ask(query);
        // Migration must be invisible: no window of failure exists.
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        served[r].push_back(ServedRecord{query, *answer});
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(fleet->MigrateTenant("gold", target).ok());
  EXPECT_EQ(fleet->ShardOf("gold"), target);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  halt.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  size_t verified = 0;
  for (const auto& records : served) {
    for (const ServedRecord& record : records) {
      const auto snapshot =
          registry.find({"gold", record.answer.snapshot_sequence});
      ASSERT_NE(snapshot, registry.end())
          << "answer names unpublished sequence "
          << record.answer.snapshot_sequence;
      EXPECT_EQ(record.answer.snapshot_sequence, 3u);
      ASSERT_TRUE(
          AnswerMatchesFresh(record.query, record.answer, *snapshot->second));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardMigrationTest, MigrateBackThenPublishAdvancesSequences) {
  const uint64_t seed = TestSeed(20260831);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  ShardFleetOptions options;
  options.num_shards = 3;
  options.socket_dir = dir.path();
  auto fleet_or = ShardFleet::Start(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  for (uint64_t sequence = 1; sequence <= 2; ++sequence) {
    ASSERT_TRUE(
        fleet->PublishSnapshot("gold", RandomSnapshot(&rng, sequence)).ok());
  }
  const size_t home = fleet->ShardOf("gold");
  const size_t away = (home + 1) % fleet->num_shards();

  // A -> B, then B -> A: the second hop re-adopts sequences the home
  // shard already holds — the idempotent-re-adopt seam.
  ASSERT_TRUE(fleet->MigrateTenant("gold", away).ok());
  ASSERT_TRUE(fleet->MigrateTenant("gold", home).ok());
  EXPECT_EQ(fleet->ShardOf("gold"), home);

  // Publishing after the round trip keeps assigning fleet sequences.
  ASSERT_TRUE(fleet->PublishSnapshot("gold", RandomSnapshot(&rng, 3)).ok());
  const auto registry = fleet->PublishedRegistry();
  const size_t iters = TestIters(40);
  for (size_t i = 0; i < iters; ++i) {
    const Query query = RandomQuery(&rng, "gold");
    const auto answer = fleet->Ask(query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->snapshot_sequence, 3u);
    const auto snapshot = registry.find({"gold", answer->snapshot_sequence});
    ASSERT_NE(snapshot, registry.end());
    EXPECT_TRUE(AnswerMatchesFresh(query, *answer, *snapshot->second));
  }

  // And the migrated history is complete: one more hop still carries all
  // three sequences (a durable target would insist on the full prefix).
  ASSERT_TRUE(fleet->MigrateTenant("gold", away).ok());
  const auto answer = fleet->Ask(RandomQuery(&rng, "gold"));
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->snapshot_sequence, 3u);
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardMigrationTest, MigrationEdges) {
  const uint64_t seed = TestSeed(20260832);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  ShardFleetOptions options;
  options.num_shards = 2;
  options.socket_dir = dir.path();
  auto fleet_or = ShardFleet::Start(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();
  ASSERT_TRUE(fleet->PublishSnapshot("gold", RandomSnapshot(&rng, 1)).ok());

  // Migrating to the shard the tenant already lives on is a no-op.
  const size_t home = fleet->ShardOf("gold");
  EXPECT_TRUE(fleet->MigrateTenant("gold", home).ok());
  EXPECT_EQ(fleet->ShardOf("gold"), home);

  // A tenant with no history has nothing to hand off. (Target a shard it
  // does NOT hash to, or the call degenerates to the same-shard no-op.)
  const size_t elsewhere =
      (fleet->ShardOf("nobody") + 1) % fleet->num_shards();
  EXPECT_EQ(fleet->MigrateTenant("nobody", elsewhere).code(),
            StatusCode::kNotFound);

  // Out-of-range target shard must not wedge the routing table.
  EXPECT_FALSE(fleet->MigrateTenant("gold", 99).ok());
  EXPECT_EQ(fleet->ShardOf("gold"), home);
  EXPECT_TRUE(fleet->Ask(RandomQuery(&rng, "gold")).ok());
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardMigrationTest, DurableTargetServesBitIdenticallyAfterCrash) {
  const uint64_t seed = TestSeed(20260833);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir sockets;
  ScopedTempDir stores;
  ShardFleetOptions options;
  options.num_shards = 2;
  options.socket_dir = sockets.path();
  options.durable_root = stores.path() + "/fleet";
  auto fleet_or = ShardFleet::Start(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  for (uint64_t sequence = 1; sequence <= 2; ++sequence) {
    ASSERT_TRUE(
        fleet->PublishSnapshot("gold", RandomSnapshot(&rng, sequence)).ok());
  }
  const size_t source = fleet->ShardOf("gold");
  const size_t target = (source + 1) % fleet->num_shards();
  // The durable target must accept the full contiguous history (its store
  // appends from sequence 1) — a latest-only handoff would fail here.
  ASSERT_TRUE(fleet->MigrateTenant("gold", target).ok());

  // SIGKILL the target, restart it onto the same store: the migrated
  // history must rehydrate bit-identically from disk.
  ASSERT_TRUE(fleet->KillShard(target).ok());
  ASSERT_TRUE(fleet->RestartShard(target).ok());
  ASSERT_TRUE(fleet->ResyncTenant("gold").ok());  // bit-identity enforced

  const auto registry = fleet->PublishedRegistry();
  ASSERT_EQ(registry.size(), 2u);
  const size_t iters = TestIters(40);
  for (size_t i = 0; i < iters; ++i) {
    const Query query = RandomQuery(&rng, "gold");
    const auto answer = fleet->Ask(query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->snapshot_sequence, 2u);
    const auto snapshot = registry.find({"gold", answer->snapshot_sequence});
    ASSERT_NE(snapshot, registry.end());
    EXPECT_TRUE(AnswerMatchesFresh(query, *answer, *snapshot->second));
  }
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

}  // namespace
}  // namespace cksafe
