// Generic CSV ingestion tests: schema inference, missing-value handling,
// error paths, and the default-hierarchy helper the CLI builds on.

#include "cksafe/data/csv_table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cksafe/hierarchy/hierarchy.h"

namespace cksafe {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvTableTest, InfersNumericAndCategoricalColumns) {
  const std::string path = WriteTemp("mixed.csv",
                                     "Age,City,Score\n"
                                     "34,Ithaca,10\n"
                                     "28,Dryden,-3\n"
                                     "41,Ithaca,7\n");
  auto table = TableFromCsv(path);
  ASSERT_TRUE(table.ok()) << table.status();
  const Schema& schema = table->schema();
  EXPECT_FALSE(schema.attribute(0).is_categorical());
  EXPECT_EQ(schema.attribute(0).min_value(), 28);
  EXPECT_EQ(schema.attribute(0).max_value(), 41);
  EXPECT_TRUE(schema.attribute(1).is_categorical());
  EXPECT_EQ(schema.attribute(1).labels(),
            (std::vector<std::string>{"Ithaca", "Dryden"}));
  EXPECT_FALSE(schema.attribute(2).is_categorical());
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->at(1, 2), -3);
  std::remove(path.c_str());
}

TEST(CsvTableTest, DropsRowsWithMissingValues) {
  const std::string path = WriteTemp("missing.csv",
                                     "Age,Job\n"
                                     "30,nurse\n"
                                     "?,clerk\n"
                                     "45,?\n"
                                     "50,nurse\n");
  auto table = TableFromCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);

  // Disabling the marker keeps every row ('?' becomes a label, and the Age
  // column degrades to categorical).
  CsvTableOptions options;
  options.missing_marker.clear();
  auto all = TableFromCsv(path, options);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 4u);
  EXPECT_TRUE(all->schema().attribute(0).is_categorical());
  std::remove(path.c_str());
}

TEST(CsvTableTest, ErrorPaths) {
  EXPECT_FALSE(TableFromCsv("/nonexistent.csv").ok());

  const std::string ragged = WriteTemp("ragged.csv", "A,B\n1,2\n3\n");
  EXPECT_EQ(TableFromCsv(ragged).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(ragged.c_str());

  const std::string empty = WriteTemp("only_header.csv", "A,B\n");
  EXPECT_FALSE(TableFromCsv(empty).ok());
  std::remove(empty.c_str());

  const std::string wide = WriteTemp("wide.csv",
                                     "Key\nA\nB\nC\nD\n");
  CsvTableOptions options;
  options.max_categories = 3;
  EXPECT_EQ(TableFromCsv(wide, options).status().code(),
            StatusCode::kResourceExhausted);
  std::remove(wide.c_str());
}

TEST(DefaultHierarchyTest, NumericDoublingLadder) {
  const AttributeDef age = AttributeDef::Numeric("Age", 17, 90);
  auto h = MakeDefaultHierarchy(age);
  // Widths 1, 4, 16, 64 + suppressed -> 5 levels.
  ASSERT_EQ(h->num_levels(), 5u);
  EXPECT_EQ(h->GroupOf(17, 0), 0);
  EXPECT_EQ(h->GroupOf(20, 1), 0);   // [17-20]
  EXPECT_EQ(h->GroupOf(21, 1), 1);
  EXPECT_EQ(h->NumGroups(4), 1u);    // suppressed
  EXPECT_EQ(h->GroupLabel(0, 4), "*");
}

TEST(DefaultHierarchyTest, SmallDomainAndCategorical) {
  // Span 3: only the identity interval level fits, plus suppression.
  auto tiny = MakeDefaultHierarchy(AttributeDef::Numeric("N", 0, 2));
  EXPECT_EQ(tiny->num_levels(), 2u);

  auto cat = MakeDefaultHierarchy(
      AttributeDef::Categorical("C", {"x", "y", "z"}));
  EXPECT_EQ(cat->num_levels(), 2u);
  EXPECT_EQ(cat->GroupOf(0, 1), cat->GroupOf(2, 1));
}

}  // namespace
}  // namespace cksafe
