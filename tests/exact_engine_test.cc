// Exact engine tests: world enumeration, the paper's Section 1 / 2.3
// worked probabilities, and Theorem 8's decision/counting queries.

#include "cksafe/exact/exact_engine.h"

#include <gtest/gtest.h>

#include "cksafe/exact/world_enumerator.h"
#include "cksafe/knowledge/parser.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kFlu;
using testing::kHospitalSensitiveColumn;
using testing::kLungCancer;
using testing::kMumps;
using testing::MakeBuckets;
using testing::MakeHospitalBucketization;
using testing::MakeHospitalTable;

class HospitalExactTest : public ::testing::Test {
 protected:
  HospitalExactTest()
      : table_(MakeHospitalTable()),
        bucketization_(MakeHospitalBucketization(table_)),
        parser_(table_, kHospitalSensitiveColumn) {
    auto engine = ExactEngine::Create(bucketization_);
    CKSAFE_CHECK(engine.ok());
    engine_.emplace(*std::move(engine));
  }

  Atom AtomOf(const std::string& person, int32_t disease) {
    auto row = table_.FindRowByLabel(person);
    CKSAFE_CHECK(row.ok());
    return Atom{*row, disease};
  }

  Table table_;
  Bucketization bucketization_;
  KnowledgeParser parser_;
  std::optional<ExactEngine> engine_;
};

TEST_F(HospitalExactTest, WorldCountIsProductOfMultisetPermutations) {
  WorldEnumerator enumerator(bucketization_);
  // Bucket 1: {flu:2, lung:2, mumps:1} -> 5!/(2!2!1!) = 30 arrangements.
  // Bucket 2: {flu:2, breast:1, ovarian:1, heart:1} -> 5!/2! = 60.
  EXPECT_DOUBLE_EQ(enumerator.WorldCount(), 30.0 * 60.0);
  EXPECT_EQ(engine_->num_worlds(), 1800u);

  size_t visited = 0;
  enumerator.ForEachWorld([&](const std::vector<int32_t>& world) {
    ++visited;
    EXPECT_TRUE(bucketization_.IsConsistentAssignment(world));
    return true;
  });
  EXPECT_EQ(visited, 1800u);
}

TEST_F(HospitalExactTest, EnumerationStopsEarlyWhenVisitorReturnsFalse) {
  WorldEnumerator enumerator(bucketization_);
  size_t visited = 0;
  enumerator.ForEachWorld([&](const std::vector<int32_t>&) {
    ++visited;
    return visited < 7;
  });
  EXPECT_EQ(visited, 7u);
}

TEST_F(HospitalExactTest, BaselineProbabilityIsFrequencyRatio) {
  // Section 1: "Alice's estimate of the probability that Ed has lung cancer
  // is 2/5" with no background knowledge.
  KnowledgeFormula empty;
  auto p = engine_->ConditionalProbability(AtomOf("Ed", kLungCancer), empty);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 2.0 / 5.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, RulingOutMumpsGivesOneHalf) {
  // Section 1: knowing Ed does not have mumps raises lung cancer to 1/2.
  KnowledgeFormula phi;
  phi.AddNegation(AtomOf("Ed", kMumps), kFlu);
  auto p = engine_->ConditionalProbability(AtomOf("Ed", kLungCancer), phi);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0 / 2.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, RulingOutMumpsAndFluGivesCertainty) {
  // Section 1: "if Alice also somehow discovers that Ed does not have flu,
  // then the fact that he has lung cancer becomes certain."
  KnowledgeFormula phi;
  phi.AddNegation(AtomOf("Ed", kMumps), kFlu);
  phi.AddNegation(AtomOf("Ed", kFlu), kMumps);
  auto p = engine_->ConditionalProbability(AtomOf("Ed", kLungCancer), phi);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, HannahCharlieImplicationGivesTenNineteenths) {
  // Section 1 / 2.3: "if Hannah has the flu then Charlie has the flu"
  // raises Pr(Charlie = flu) from 2/5 to 10/19.
  KnowledgeFormula phi;
  phi.AddSimple(SimpleImplication{AtomOf("Hannah", kFlu), AtomOf("Charlie", kFlu)});
  auto p = engine_->ConditionalProbability(AtomOf("Charlie", kFlu), phi);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 10.0 / 19.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, ParserRoundTripsTheWorkedExample) {
  auto phi = parser_.ParseFormula(
      "# Alice's knowledge about the couple\n"
      "t[Hannah].Disease = flu -> t[Charlie].Disease = flu\n");
  ASSERT_TRUE(phi.ok());
  ASSERT_EQ(phi->k(), 1u);
  auto p = engine_->ConditionalProbability(AtomOf("Charlie", kFlu), *phi);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 10.0 / 19.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, SelfImplicationActsAsNegation) {
  // Section 2.2: ¬(t[S]=s) is (t[S]=s) -> (t[S]=s') for any s' != s.
  // Ruling out lung cancer makes Pr(Ed = flu) = 2/3.
  KnowledgeFormula phi;
  phi.AddSimple(SimpleImplication{AtomOf("Ed", kLungCancer), AtomOf("Ed", kFlu)});
  auto p = engine_->ConditionalProbability(AtomOf("Ed", kFlu), phi);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 2.0 / 3.0, kProbabilityEpsilon);
}

TEST_F(HospitalExactTest, MaxDisclosureOneImplication) {
  // Over all of L^1_basic the maximum is 2/3 (a self-implication on a
  // male-bucket member, i.e. a negation). The paper's Section 2.3 quotes
  // 10/19, but exhaustive search shows that value is not the maximum under
  // any natural restriction: even limited to implications between distinct
  // persons mentioning only values present in their buckets, the formula
  // (Bob=flu) -> (Gloria=breast cancer) pushes Pr(Bob=lung cancer) to
  // 10/17 > 10/19. See DESIGN.md on the discrepancy.
  auto unrestricted = engine_->MaxDisclosureSimpleImplications(
      1, /*same_consequent=*/false);
  ASSERT_TRUE(unrestricted.ok());
  EXPECT_NEAR(unrestricted->disclosure, 2.0 / 3.0, kProbabilityEpsilon);

  BruteForceOptions options;
  options.require_distinct_persons = true;
  options.require_present_values = true;
  auto distinct = engine_->MaxDisclosureSimpleImplications(
      1, /*same_consequent=*/false, options);
  ASSERT_TRUE(distinct.ok());
  EXPECT_NEAR(distinct->disclosure, 10.0 / 17.0, kProbabilityEpsilon);
  EXPECT_GT(distinct->disclosure, 10.0 / 19.0);
}

TEST_F(HospitalExactTest, SameConsequentFamilyAttainsTheMaximum) {
  // Theorem 9: restricting to a common consequent loses nothing.
  for (size_t k = 1; k <= 2; ++k) {
    auto full = engine_->MaxDisclosureSimpleImplications(k, false);
    auto same = engine_->MaxDisclosureSimpleImplications(k, true);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(same.ok());
    EXPECT_NEAR(full->disclosure, same->disclosure, kProbabilityEpsilon)
        << "k=" << k;
  }
}

TEST_F(HospitalExactTest, ConsistencyAndCounting) {
  // Consistent: Ed has flu (flu appears in his bucket).
  KnowledgeFormula consistent;
  consistent.AddSimple(
      SimpleImplication{AtomOf("Ed", kFlu), AtomOf("Ed", kFlu)});
  EXPECT_TRUE(engine_->IsConsistent(consistent));

  // Inconsistent: forcing both Bob and Charlie onto mumps (their bucket
  // holds a single mumps tuple) by ruling out their other options.
  KnowledgeFormula both;
  for (const char* name : {"Bob", "Charlie"}) {
    both.AddNegation(AtomOf(name, kFlu), kMumps);
    both.AddNegation(AtomOf(name, kLungCancer), kMumps);
  }
  EXPECT_FALSE(engine_->IsConsistent(both));
  EXPECT_EQ(engine_->CountWorlds(both), 0u);

  // Counting: worlds where Ed has lung cancer = (2/5) * 1800 = 720.
  KnowledgeFormula empty;
  EXPECT_EQ(engine_->CountWorlds(empty), 1800u);
  const Bitset ed_lung = engine_->AtomWorlds(AtomOf("Ed", kLungCancer));
  EXPECT_EQ(ed_lung.Count(), 720u);
}

TEST_F(HospitalExactTest, InconsistentKnowledgeYieldsFailedPrecondition) {
  KnowledgeFormula both;
  for (const char* name : {"Bob", "Charlie"}) {
    both.AddNegation(AtomOf(name, kFlu), kMumps);
    both.AddNegation(AtomOf(name, kLungCancer), kMumps);
  }
  auto p = engine_->ConditionalProbability(AtomOf("Ed", kFlu), both);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExactEngineTest, RefusesOversizedInstances) {
  auto fixture = MakeBuckets({{4, 4, 4, 4}}, 4);  // 16!/(4!^4) = 63,063,000
  ExactEngineOptions options;
  options.max_worlds = 1u << 20;
  auto engine = ExactEngine::Create(fixture.bucketization, options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExactEngineTest, DisclosureRiskMatchesHandComputation) {
  // One bucket {v0:2, v1:1}: with no knowledge the risk is 2/3.
  auto fixture = MakeBuckets({{2, 1}}, 2);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  auto risk = engine->DisclosureRisk(KnowledgeFormula());
  ASSERT_TRUE(risk.ok());
  EXPECT_NEAR(risk->disclosure, 2.0 / 3.0, kProbabilityEpsilon);
  EXPECT_EQ(risk->target.value, 0);
}

TEST(ExactEngineTest, BruteForceRespectsFormulaBudget) {
  auto fixture = MakeBuckets({{2, 1, 1}}, 3);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  BruteForceOptions options;
  options.max_formulas = 10;
  auto result = engine->MaxDisclosureSimpleImplications(3, false, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cksafe
