// Unit tests for the log-domain probability helpers (core/logprob.h):
// the conversions and the exact log-space safety rule the disclosure
// kernel is built on (DESIGN.md §9).

#include <gtest/gtest.h>

#include <cmath>

#include "cksafe/core/logprob.h"

namespace cksafe {
namespace {

TEST(LogProbTest, DisclosureFromLogRatioMatchesLinearFormula) {
  // Moderate ratios: agree with 1 / (1 + r) to an ulp or two.
  for (double r : {1e-6, 0.25, 1.0, 3.0, 1e6}) {
    EXPECT_NEAR(DisclosureFromLogRatio(std::log(r)), 1.0 / (1.0 + r),
                1e-15)
        << "r=" << r;
  }
  EXPECT_EQ(DisclosureFromLogRatio(0.0), 0.5);
}

TEST(LogProbTest, DisclosureFromLogRatioIsStableAtBothEnds) {
  // Huge positive log r: 1 / (1 + e^L) would overflow e^L; the stable
  // form returns the honest denormal-or-zero disclosure.
  EXPECT_NEAR(DisclosureFromLogRatio(800.0), 0.0, 1e-300);
  EXPECT_GT(DisclosureFromLogRatio(700.0), 0.0);
  // Deep negative log r: linear r underflows; disclosure saturates to 1.
  EXPECT_EQ(DisclosureFromLogRatio(-800.0), 1.0);
  EXPECT_EQ(DisclosureFromLogRatio(kLogZero), 1.0);
  EXPECT_EQ(DisclosureFromLogRatio(kLogInfeasible), 0.0);
}

TEST(LogProbTest, LogRatioFromDisclosureRoundTrips) {
  for (double d : {0.1, 0.4, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(DisclosureFromLogRatio(LogRatioFromDisclosure(d)), d, 1e-12)
        << "d=" << d;
  }
  EXPECT_EQ(LogRatioFromDisclosure(1.0), kLogZero);
  EXPECT_EQ(LogRatioFromDisclosure(0.0), kLogInfeasible);
}

TEST(LogProbTest, SafetyRuleMatchesLinearRuleAwayFromSaturation) {
  // Where the linear disclosure has full precision the two rules agree.
  for (double c : {0.2, 0.5, 0.7, 0.95}) {
    for (double r : {1e-3, 0.2, 0.42857142857, 1.0, 4.0, 1e3}) {
      const double disclosure = 1.0 / (1.0 + r);
      EXPECT_EQ(IsSafeLogRatio(std::log(r), c), disclosure < c)
          << "c=" << c << " r=" << r;
    }
  }
}

TEST(LogProbTest, SafetyRuleIsExactWhereLinearSaturates) {
  // r = e^-800 underflows to 0 in linear, so the linear rule calls the
  // degenerate c = 1 policy ("never certain") violated. The log rule
  // knows r > 0, i.e. disclosure < 1: safe.
  const LogProb deep = -800.0;
  EXPECT_EQ(DisclosureFromLogRatio(deep), 1.0);     // linear saturates...
  EXPECT_TRUE(IsSafeLogRatio(deep, 1.0));           // ...log stays exact
  EXPECT_FALSE(IsSafeLogRatio(kLogZero, 1.0));      // true certainty: unsafe
  // c > 1 is vacuously safe — disclosure never exceeds 1, so even exact
  // certainty passes (the linear rule 1.0 < c agreed; keep that).
  EXPECT_TRUE(IsSafeLogRatio(kLogZero, 1.5));
  EXPECT_TRUE(IsSafeLogRatio(deep, 1.5));
  // c <= 0 admits nothing; infeasible (no adversary) is vacuously safe
  // for any positive threshold.
  EXPECT_FALSE(IsSafeLogRatio(deep, 0.0));
  EXPECT_FALSE(IsSafeLogRatio(kLogInfeasible, 0.0));
  EXPECT_TRUE(IsSafeLogRatio(kLogInfeasible, 0.5));
  EXPECT_EQ(LogRatioSafetyThreshold(1.0), kLogZero);
  EXPECT_NEAR(LogRatioSafetyThreshold(0.5), 0.0, 1e-15);
}

}  // namespace
}  // namespace cksafe
