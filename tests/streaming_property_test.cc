// Differential oracle for the incremental streaming engine.
//
// The contract under test: after EVERY delta of an arbitrary
// insert/remove stream, IncrementalAnalyzer answers exactly — bit for bit,
// not approximately — what a fresh DisclosureAnalyzer over the same
// bucketization answers, and (on tiny tables, k <= 2) what the exact
// world-enumeration oracle computes. The warm-started lattice search and
// the StreamingPublisher are covered by the same standard: identical output
// to their cold counterparts, with strictly less work on stable frontiers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/search/lattice_search.h"
#include "cksafe/search/publisher.h"
#include "cksafe/stream/incremental_analyzer.h"
#include "cksafe/stream/streaming_publisher.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

std::vector<int32_t> RandomValues(Rng* rng, size_t domain, size_t max_count) {
  const size_t count = 1 + rng->NextBelow(max_count);
  std::vector<int32_t> values(count);
  for (auto& v : values) v = static_cast<int32_t>(rng->NextBelow(domain));
  return values;
}

// Applies one random delta.
void RandomDelta(Rng* rng, size_t domain, IncrementalAnalyzer* inc) {
  const uint64_t pick = rng->NextBelow(5);
  if (pick == 0 && inc->num_buckets() > 1) {
    inc->RemoveBucket(rng->NextBelow(inc->num_buckets()));
  } else if (pick == 1 && inc->num_buckets() > 0) {
    inc->AddTuples(rng->NextBelow(inc->num_buckets()),
                   RandomValues(rng, domain, 3));
  } else if (pick == 2 && inc->num_buckets() > 0) {
    // Remove up to 2 tuples from a bucket that stays non-empty, picking
    // values actually present (one at a time: each removal shifts stats).
    const size_t bucket = rng->NextBelow(inc->num_buckets());
    size_t removable = inc->bucket_members(bucket).size() - 1;
    while (removable > 0 && rng->NextBelow(2) == 0) {
      const BucketStats& stats = inc->bucket_stats(bucket);
      inc->RemoveTuples(bucket,
                        {stats.value_codes[rng->NextBelow(stats.d())]});
      --removable;
    }
  } else {
    inc->AddBucket(RandomValues(rng, domain, 5));
  }
}

// Exact equality of worst-case adversaries — doubles compared with ==.
void ExpectIdentical(const WorstCaseDisclosure& a,
                     const WorstCaseDisclosure& b) {
  EXPECT_EQ(a.disclosure, b.disclosure);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.antecedents, b.antecedents);
}

TEST(StreamingDifferentialTest, RandomStreamsMatchFreshAnalyzerBitForBit) {
  constexpr size_t kDomain = 4;
  const uint64_t seed = testing::TestSeed(20260726);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(6);
  for (size_t trial = 0; trial < trials; ++trial) {
    IncrementalAnalyzer inc(kDomain);
    inc.AddBucket(RandomValues(&rng, kDomain, 5));
    for (int step = 0; step < 25; ++step) {
      RandomDelta(&rng, kDomain, &inc);
      const Bucketization reference = inc.CurrentBucketization();
      DisclosureAnalyzer fresh(reference);
      // Whole curves first: the incremental profile (updated via DP-row
      // reuse) must equal a fresh one-sweep profile element-for-element,
      // and both curves must be nondecreasing in k.
      const DisclosureProfile inc_profile = inc.Profile(4);
      const DisclosureProfile fresh_profile = fresh.Profile(4);
      ASSERT_EQ(inc_profile.implication, fresh_profile.implication)
          << "trial " << trial << " step " << step;
      ASSERT_EQ(inc_profile.negation, fresh_profile.negation)
          << "trial " << trial << " step " << step;
      for (size_t k = 1; k <= inc_profile.max_k(); ++k) {
        EXPECT_GE(inc_profile.implication[k], inc_profile.implication[k - 1]);
        EXPECT_GE(inc_profile.negation[k], inc_profile.negation[k - 1]);
      }
      for (size_t k = 0; k <= 4; ++k) {
        // The curve element equals the point query bit-for-bit.
        EXPECT_EQ(inc_profile.implication[k],
                  fresh.MaxDisclosureImplications(k).disclosure);
        ExpectIdentical(inc.MaxDisclosureImplications(k),
                        fresh.MaxDisclosureImplications(k));
        ExpectIdentical(inc.MaxDisclosureNegations(k),
                        fresh.MaxDisclosureNegations(k));
        // Per-bucket vulnerabilities: element-wise ==.
        const std::vector<double> inc_pb = inc.PerBucketDisclosure(k);
        const std::vector<double> fresh_pb = fresh.PerBucketDisclosure(k);
        ASSERT_EQ(inc_pb.size(), fresh_pb.size());
        for (size_t j = 0; j < inc_pb.size(); ++j) {
          EXPECT_EQ(inc_pb[j], fresh_pb[j])
              << "trial " << trial << " step " << step << " k=" << k
              << " bucket " << j;
        }
        for (double c : {0.3, 0.6, 0.9}) {
          EXPECT_EQ(inc.IsCkSafe(c, k), fresh.IsCkSafe(c, k));
        }
      }
    }
  }
}

TEST(StreamingDifferentialTest, QueriesBetweenDeltasReuseAllRows) {
  IncrementalAnalyzer inc(3);
  inc.AddBucket({0, 0, 1, 2});
  inc.AddBucket({1, 1, 2});
  inc.MaxDisclosureImplications(2);
  const uint64_t recomputed = inc.stats().rows_recomputed;
  // Re-query without a delta: the running sweep answers without rebuilding.
  inc.MaxDisclosureImplications(2);
  inc.IsCkSafe(0.5, 2);
  inc.PerBucketDisclosure(2);
  EXPECT_EQ(inc.stats().rows_recomputed, recomputed);
  EXPECT_GT(inc.stats().rows_reused, 0u);
}

TEST(StreamingDifferentialTest, AppendOnlyStreamsRecomputeOnlyNewRows) {
  IncrementalAnalyzer inc(3);
  for (int i = 0; i < 10; ++i) inc.AddBucket({0, 0, 1, 2});
  inc.MaxDisclosureImplications(3);
  const uint64_t after_warmup = inc.stats().rows_recomputed;
  // Each appended bucket costs exactly one new DP row at this k.
  for (int i = 0; i < 5; ++i) {
    inc.AddBucket({1, 2, 2});
    inc.MaxDisclosureImplications(3);
  }
  EXPECT_EQ(inc.stats().rows_recomputed, after_warmup + 5);
  // And the MINIMIZE1 tables for repeated histograms come from the cache:
  // two distinct histograms -> at most two table builds at this budget.
  EXPECT_EQ(inc.cache()->misses(), 2u);
}

TEST(StreamingDifferentialTest, ShrinkThenQueryMatchesFreshAnalyzer) {
  // Audit regression for the Recompute resume bound when the bucket list
  // SHRINKS (PR 4 satellite): after RemoveBucket the previous sweep has
  // more rows than the new bucket count, and the kept-prefix bound must
  // cap at the surviving rows so no stale tail row is ever observable
  // (via NoALogRow-consuming queries like PerBucketDisclosure). Each
  // scenario below is checked against a fresh analyzer bit-for-bit.
  constexpr size_t kDomain = 4;
  constexpr size_t kAtoms = 3;
  IncrementalAnalyzer inc(kDomain);
  for (int i = 0; i < 8; ++i) {
    inc.AddBucket({0, 0, 1, static_cast<int32_t>(i % kDomain)});
  }
  auto expect_matches_fresh = [&](const char* label) {
    const Bucketization reference = inc.CurrentBucketization();
    DisclosureAnalyzer fresh(reference);
    const DisclosureProfile inc_profile = inc.Profile(kAtoms);
    const DisclosureProfile fresh_profile = fresh.Profile(kAtoms);
    ASSERT_EQ(inc_profile.implication, fresh_profile.implication) << label;
    ASSERT_EQ(inc_profile.implication_log_r, fresh_profile.implication_log_r)
        << label;
    const std::vector<double> inc_pb = inc.PerBucketDisclosure(kAtoms);
    const std::vector<double> fresh_pb = fresh.PerBucketDisclosure(kAtoms);
    ASSERT_EQ(inc_pb, fresh_pb) << label;
    ASSERT_EQ(inc_pb.size(), inc.num_buckets()) << label;
  };
  expect_matches_fresh("warmup");

  // Remove the LAST bucket: every surviving row is reusable, so the
  // query must not rebuild anything (prev_rows > rows is the audited
  // shrink case: the stale tail is discarded, not recomputed).
  const uint64_t before_tail_removal = inc.stats().rows_recomputed;
  inc.RemoveBucket(7);
  expect_matches_fresh("remove last");
  EXPECT_EQ(inc.stats().rows_recomputed, before_tail_removal);

  // Remove a MIDDLE bucket: rows above it rebuild, rows below reuse.
  inc.RemoveBucket(3);
  expect_matches_fresh("remove middle");

  // Shrink to a prefix, then grow again past the old length: resize up
  // must not resurrect stale row contents.
  inc.RemoveBucket(5);
  inc.RemoveBucket(4);
  inc.RemoveBucket(3);
  expect_matches_fresh("shrink to prefix");
  for (int i = 0; i < 6; ++i) inc.AddBucket({2, 3, 3, 1});
  expect_matches_fresh("regrow past old length");

  // Remove-then-append at the same index without an intervening query:
  // the replacement bucket's row must be recomputed even though the
  // bucket count matches the previous sweep.
  inc.RemoveBucket(inc.num_buckets() - 1);
  inc.AddBucket({1, 1, 0, 2});
  expect_matches_fresh("replace tail bucket");
}

TEST(StreamingDifferentialTest, MatchesExactOracleOnTinyStreams) {
  constexpr size_t kDomain = 3;
  const uint64_t seed = testing::TestSeed(77);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(4);
  for (size_t trial = 0; trial < trials; ++trial) {
    IncrementalAnalyzer inc(kDomain);
    inc.AddBucket(RandomValues(&rng, kDomain, 3));
    for (int step = 0; step < 10; ++step) {
      RandomDelta(&rng, kDomain, &inc);
      if (inc.num_tuples() > 8) {
        // Keep the world count enumerable: drop a bucket and continue.
        while (inc.num_buckets() > 1) inc.RemoveBucket(0);
        continue;
      }
      const Bucketization reference = inc.CurrentBucketization();
      auto engine = ExactEngine::Create(reference);
      ASSERT_TRUE(engine.ok()) << engine.status();
      const DisclosureProfile profile = inc.Profile(2);
      for (size_t k = 0; k <= 2; ++k) {
        const WorstCaseDisclosure dp = inc.MaxDisclosureImplications(k);
        // The streaming profile agrees with the point query and (below)
        // with the world-enumeration oracle.
        EXPECT_EQ(profile.implication[k], dp.disclosure);
        auto brute = engine->MaxDisclosureSimpleImplications(
            k, /*same_consequent=*/true);
        ASSERT_TRUE(brute.ok()) << brute.status();
        EXPECT_NEAR(dp.disclosure, brute->disclosure, 1e-9)
            << "trial " << trial << " step " << step << " k=" << k;
        // The incremental witness really attains its claimed value.
        auto rescored =
            engine->ConditionalProbability(dp.target, dp.ToFormula());
        ASSERT_TRUE(rescored.ok()) << rescored.status();
        EXPECT_NEAR(*rescored, dp.disclosure, 1e-9);

        const WorstCaseDisclosure neg = inc.MaxDisclosureNegations(k);
        auto brute_neg = engine->MaxDisclosureNegations(k);
        ASSERT_TRUE(brute_neg.ok()) << brute_neg.status();
        EXPECT_NEAR(neg.disclosure, brute_neg->disclosure, 1e-9);
      }
    }
  }
}

// --- Warm-started lattice search ------------------------------------------

NodePredicate HospitalCkSafety(const Table& table,
                               const std::vector<QuasiIdentifier>& qis,
                               DisclosureCache* cache, double c, size_t k) {
  return [&table, &qis, cache, c, k](const LatticeNode& node) {
    auto b = BucketizeAtNode(table, qis, node,
                             testing::kHospitalSensitiveColumn);
    CKSAFE_CHECK(b.ok());
    return DisclosureAnalyzer(*b, cache).IsCkSafe(c, k);
  };
}

std::vector<QuasiIdentifier> HospitalQis(const Table& table) {
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};
  auto age = IntervalHierarchy::Create(table.schema().attribute(1), {1, 3},
                                       /*add_suppressed_top=*/true);
  CKSAFE_CHECK(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};
  return qis;
}

TEST(WarmStartSearchTest, SeededSearchIsIdenticalAndDoesLessWork) {
  const Table table = testing::MakeHospitalTable();
  const auto qis = HospitalQis(table);
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);

  DisclosureCache cache;
  const NodePredicate is_safe =
      HospitalCkSafety(table, qis, &cache, 0.75, 1);
  const LatticeSearchResult cold =
      FindMinimalSafeNodes(lattice, is_safe, LatticeSearchOptions{});
  ASSERT_FALSE(cold.minimal_safe_nodes.empty());

  // Seed with the converged frontier: identical nodes (content and order),
  // and the sweep itself never re-evaluates a seed.
  LatticeSearchOptions warm;
  warm.seed_frontier = cold.minimal_safe_nodes;
  const LatticeSearchResult seeded =
      FindMinimalSafeNodes(lattice, is_safe, warm);
  EXPECT_EQ(seeded.minimal_safe_nodes, cold.minimal_safe_nodes);
  EXPECT_EQ(seeded.stats.seed_evaluations, cold.minimal_safe_nodes.size());
  EXPECT_EQ(seeded.stats.seed_reused, cold.minimal_safe_nodes.size());
  EXPECT_LE(seeded.stats.evaluations, cold.stats.evaluations +
                                          seeded.stats.seed_evaluations);

  // A garbage seed (unsafe node, wrong arity) costs evaluations but cannot
  // change the result.
  LatticeSearchOptions noisy;
  noisy.seed_frontier = {lattice.Bottom(), {9, 9, 9, 9, 9}};
  const LatticeSearchResult junk =
      FindMinimalSafeNodes(lattice, is_safe, noisy);
  EXPECT_EQ(junk.minimal_safe_nodes, cold.minimal_safe_nodes);
}

TEST(WarmStartSearchTest, StableFrontierSkipsTheLatticeTop) {
  // With the previous frontier safe and unchanged, everything strictly
  // above it prunes; the warm sweep evaluates only nodes not above the
  // frontier.
  const Table table = testing::MakeHospitalTable();
  const auto qis = HospitalQis(table);
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);
  DisclosureCache cache;
  const NodePredicate is_safe =
      HospitalCkSafety(table, qis, &cache, 0.75, 1);
  const LatticeSearchResult cold =
      FindMinimalSafeNodes(lattice, is_safe, LatticeSearchOptions{});

  LatticeSearchOptions warm;
  warm.seed_frontier = cold.minimal_safe_nodes;
  const LatticeSearchResult seeded =
      FindMinimalSafeNodes(lattice, is_safe, warm);
  // Work in the sweep proper (total minus warm start) must shrink.
  EXPECT_LT(seeded.stats.evaluations - seeded.stats.seed_evaluations,
            cold.stats.evaluations);
  EXPECT_GE(seeded.stats.implied_safe, cold.stats.implied_safe);
}

// --- Streaming publisher --------------------------------------------------

TEST(StreamingPublisherTest, EachReleaseIsBitIdenticalToColdPublish) {
  const Table adult = GenerateSyntheticAdult(240, 11);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  PublisherOptions options;
  options.c = 0.85;
  options.k = 2;

  // Start from the first 120 rows, then stream 3 batches of 40.
  Table initial(adult.schema());
  size_t cursor = 0;
  auto row_cells = [&](size_t row) {
    std::vector<int32_t> cells(adult.num_columns());
    for (size_t c = 0; c < adult.num_columns(); ++c) {
      cells[c] = adult.at(static_cast<PersonId>(row), c);
    }
    return cells;
  };
  for (; cursor < 120; ++cursor) {
    ASSERT_TRUE(initial.AppendRow(row_cells(cursor)).ok());
  }

  StreamingPublisher stream(std::move(initial), *qis, kAdultOccupationColumn,
                            options);
  const Publisher cold_publisher(options);
  for (int batch = 0; batch < 4; ++batch) {
    if (batch > 0) {
      std::vector<std::vector<int32_t>> rows;
      for (int i = 0; i < 40 && cursor < adult.num_rows(); ++i, ++cursor) {
        rows.push_back(row_cells(cursor));
      }
      ASSERT_TRUE(stream.AddBatch(rows).ok());
    }
    auto warm = stream.PublishNext();
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->sequence, static_cast<size_t>(batch));
    EXPECT_EQ(warm->num_rows, stream.table().num_rows());

    auto cold = cold_publisher.Publish(stream.table(), *qis,
                                       kAdultOccupationColumn);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(warm->release.node, cold->node);
    EXPECT_EQ(warm->release.minimal_safe_nodes, cold->minimal_safe_nodes);
    EXPECT_EQ(warm->release.worst_case.disclosure,
              cold->worst_case.disclosure);
    EXPECT_EQ(warm->release.published_sensitive, cold->published_sensitive);
    // The warm search may not do more sweep work than the cold one.
    EXPECT_LE(warm->release.search_stats.evaluations -
                  warm->release.search_stats.seed_evaluations,
              cold->search_stats.evaluations);
  }
  EXPECT_EQ(stream.session().releases, 4u);
  // The session cache persisted across releases.
  EXPECT_GT(stream.session().cache.hits(), 0u);
}

}  // namespace
}  // namespace cksafe
