// BucketStats and DisclosureCache unit tests, plus MINIMIZE2 edge cases the
// property sweeps do not isolate: multi-bucket witnesses, saturation, cache
// upgrades, and numeric behaviour on large buckets.

#include "cksafe/core/bucket_stats.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cksafe/core/disclosure.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;

TEST(BucketStatsTest, SortsCountsDescendingWithStableCodes) {
  // histogram indexed by code: code 0 -> 1, code 1 -> 4, code 2 -> 0,
  // code 3 -> 4, code 4 -> 2.
  const BucketStats stats =
      BucketStats::FromHistogram({1, 4, 0, 4, 2});
  EXPECT_EQ(stats.n, 11u);
  EXPECT_EQ(stats.counts, (std::vector<uint32_t>{4, 4, 2, 1}));
  // Ties broken by ascending code: code 1 before code 3.
  EXPECT_EQ(stats.value_codes, (std::vector<int32_t>{1, 3, 4, 0}));
  EXPECT_EQ(stats.prefix, (std::vector<uint32_t>{0, 4, 8, 10, 11}));
  EXPECT_EQ(stats.d(), 4u);
  EXPECT_EQ(stats.TopSum(2), 8u);
  EXPECT_EQ(stats.TopSum(99), 11u);  // clamped to d
}

TEST(BucketStatsTest, CacheKeyIgnoresValueIdentity) {
  // Two histograms with the same count multiset share a key (and hence a
  // MINIMIZE1 table); a different multiset does not. The key is the sorted
  // count vector itself, so equality is exact vector equality.
  const BucketStats a = BucketStats::FromHistogram({3, 1, 0});
  const BucketStats b = BucketStats::FromHistogram({0, 1, 3});
  const BucketStats c = BucketStats::FromHistogram({2, 2, 0});
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_NE(a.counts, c.counts);

  DisclosureCache cache;
  EXPECT_EQ(cache.GetOrCompute(a, 3).get(), cache.GetOrCompute(b, 3).get());
  EXPECT_NE(cache.GetOrCompute(a, 3).get(), cache.GetOrCompute(c, 3).get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(BucketStatsTest, CacheKeyCollisionsStayDistinct) {
  // Count vectors whose hashes may collide (same multiset-sum, same length,
  // permuted positions, length-extension shapes) must still map to distinct
  // tables: the map compares full keys, a hash collision only costs a probe.
  const std::vector<std::vector<uint32_t>> keys = {
      {4},       {3, 1},    {2, 2},    {2, 1, 1}, {1, 1, 1, 1},
      {4, 3, 1}, {4, 1, 3}, {1, 3, 4}, {8},       {7, 1},
  };
  DisclosureCache cache;
  std::vector<const Minimize1Table*> tables;
  for (const auto& counts : keys) {
    // Keys must be descending for the DP; sort a copy where needed.
    std::vector<uint32_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    tables.push_back(cache.GetOrCompute(sorted, 2).get());
  }
  // {4,3,1} and its permutations all normalize to one key; everything else
  // is pairwise distinct.
  EXPECT_EQ(tables[5], tables[6]);
  EXPECT_EQ(tables[5], tables[7]);
  EXPECT_EQ(cache.entries(), 8u);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      if (i == 5 || i == 6 || i == 7) {
        if (j == 5 || j == 6 || j == 7) continue;
      }
      EXPECT_NE(tables[i], tables[j]) << i << " vs " << j;
    }
  }
}

TEST(BucketStatsTest, AddValueMatchesFromHistogramRebuild) {
  // Delta updates must be *identical* (not just equivalent) to a rebuild:
  // the streaming analyzer's bit-identity rests on it.
  Rng rng(424242);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t domain = 1 + rng.NextBelow(6);
    std::vector<uint32_t> histogram(domain, 0);
    BucketStats stats;  // empty bucket: n = 0, no counts
    for (int step = 0; step < 30; ++step) {
      const bool remove = stats.n > 0 && rng.NextBelow(3) == 0;
      if (remove) {
        // Pick a present code.
        std::vector<int32_t> present;
        for (size_t s = 0; s < domain; ++s) {
          if (histogram[s] > 0) present.push_back(static_cast<int32_t>(s));
        }
        const int32_t code = present[rng.NextBelow(present.size())];
        --histogram[code];
        stats.RemoveValue(code);
      } else {
        const int32_t code = static_cast<int32_t>(rng.NextBelow(domain));
        ++histogram[code];
        stats.AddValue(code);
      }
      const BucketStats rebuilt = BucketStats::FromHistogram(histogram);
      ASSERT_EQ(stats.n, rebuilt.n) << "trial " << trial << " step " << step;
      ASSERT_EQ(stats.counts, rebuilt.counts);
      ASSERT_EQ(stats.value_codes, rebuilt.value_codes);
      ASSERT_EQ(stats.prefix, rebuilt.prefix);
    }
  }
}

TEST(DisclosureCacheTest, UpgradesTablesToLargerBudgets) {
  DisclosureCache cache;
  const BucketStats stats = BucketStats::FromHistogram({3, 2, 1});
  const auto small = cache.GetOrCompute(stats, 2);
  EXPECT_EQ(small->max_k(), 2u);
  EXPECT_EQ(cache.misses(), 1u);

  // Same budget or smaller: hit.
  cache.GetOrCompute(stats, 2);
  cache.GetOrCompute(stats, 1);
  EXPECT_EQ(cache.hits(), 2u);

  // Larger budget: recompute (upgrade), values consistent with before.
  const auto big = cache.GetOrCompute(stats, 6);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GE(big->max_k(), 6u);
  Minimize1Table fresh({3, 2, 1}, 6);
  for (size_t m = 0; m <= 6; ++m) {
    EXPECT_NEAR(big->MinProbability(m), fresh.MinProbability(m), 1e-15);
  }
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(DisclosureCacheTest, UpgradeDoesNotInvalidateOutstandingTables) {
  // Regression: with the original unique_ptr cache, upgrading a histogram's
  // table to a larger budget destroyed the old table while callers could
  // still hold a reference to it (the documented lifetime hazard). Tables
  // are now refcounted, so a pre-upgrade handle stays valid and correct.
  DisclosureCache cache;
  const BucketStats stats = BucketStats::FromHistogram({4, 3, 2, 1});
  const auto before = cache.GetOrCompute(stats, 2);
  const double p0 = before->MinProbability(0);
  const double p2 = before->MinProbability(2);

  const auto upgraded = cache.GetOrCompute(stats, 8);
  EXPECT_GE(upgraded->max_k(), 8u);
  EXPECT_NE(before.get(), upgraded.get());

  // The old handle still dereferences to the same values.
  EXPECT_EQ(before->max_k(), 2u);
  EXPECT_NEAR(before->MinProbability(0), p0, 1e-15);
  EXPECT_NEAR(before->MinProbability(2), p2, 1e-15);
  EXPECT_NEAR(upgraded->MinProbability(2), p2, 1e-15);

  // Clear() drops the cache's references but not the caller's.
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_NEAR(before->MinProbability(2), p2, 1e-15);
}

TEST(Minimize2EdgeTest, WitnessSpansBucketsWhenTargetBucketSaturates) {
  // Target bucket {2,1} saturates at one antecedent (d-1 = 1); with k = 3
  // the remaining atoms must land somewhere. Disclosure is 1 and the
  // witness remains a valid formula.
  auto fixture = MakeBuckets({{2, 1, 0, 0}, {1, 1, 1, 1}}, 4);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const WorstCaseDisclosure result = analyzer.MaxDisclosureImplications(3);
  EXPECT_NEAR(result.disclosure, 1.0, kProbabilityEpsilon);
  EXPECT_TRUE(result.ToFormula().Validate().ok());
}

TEST(Minimize2EdgeTest, SingleTupleBucketsDiscloseImmediately) {
  auto fixture = MakeBuckets({{1, 0}, {0, 1}}, 2);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const WorstCaseDisclosure result = analyzer.MaxDisclosureImplications(0);
  EXPECT_NEAR(result.disclosure, 1.0, kProbabilityEpsilon);
  EXPECT_TRUE(result.antecedents.empty());
}

TEST(Minimize2EdgeTest, LargeBucketNumericStability) {
  // One bucket with 40,000 tuples over 14 near-uniform values: the DP's
  // products of many near-one factors must stay in (0, 1) and the curve
  // must remain monotone.
  std::vector<uint32_t> histogram(14);
  for (size_t s = 0; s < 14; ++s) {
    histogram[s] = 2800 + static_cast<uint32_t>(s * 17);
  }
  auto fixture = MakeBuckets({histogram}, 14);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const std::vector<double> curve = analyzer.ImplicationCurve(13);
  for (size_t k = 0; k < curve.size(); ++k) {
    EXPECT_GT(curve[k], 0.0);
    EXPECT_LE(curve[k], 1.0 + 1e-12);
    if (k > 0) {
      EXPECT_GE(curve[k] + 1e-12, curve[k - 1]);
    }
  }
  EXPECT_NEAR(curve[13], 1.0, 1e-9);  // 14 values, 13 implications
}

TEST(Minimize2EdgeTest, ManyIdenticalBucketsShareOneTable) {
  std::vector<std::vector<uint32_t>> histograms(200, {3, 2, 1});
  auto fixture = MakeBuckets(histograms, 3);
  DisclosureCache cache;
  DisclosureAnalyzer analyzer(fixture.bucketization, &cache);
  const double d = analyzer.MaxDisclosureImplications(2).disclosure;
  EXPECT_EQ(cache.entries(), 1u);
  // Identical buckets: the answer equals the single-bucket answer.
  auto single = MakeBuckets({{3, 2, 1}}, 3);
  DisclosureAnalyzer single_analyzer(single.bucketization);
  EXPECT_NEAR(d, single_analyzer.MaxDisclosureImplications(2).disclosure,
              1e-12);
}

TEST(Minimize2EdgeTest, KZeroMatchesFrequencyRatioEverywhere) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    auto histograms = testing::RandomHistograms(&rng, 3, 5, 8);
    auto fixture = MakeBuckets(histograms, 5);
    DisclosureAnalyzer analyzer(fixture.bucketization);
    EXPECT_NEAR(analyzer.MaxDisclosureImplications(0).disclosure,
                fixture.bucketization.MaxFrequencyRatio(), 1e-12);
  }
}

}  // namespace
}  // namespace cksafe
