// Adult workload tests: schema, the paper's ladders, deterministic
// synthetic generation, and the CSV loader.

#include "cksafe/adult/adult.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cksafe/anon/bucketization.h"
#include "cksafe/lattice/lattice.h"

namespace cksafe {
namespace {

TEST(AdultSchemaTest, ShapeMatchesThePaper) {
  const Schema schema = AdultSchema();
  ASSERT_EQ(schema.num_attributes(), 5u);
  EXPECT_EQ(schema.attribute(kAdultAgeColumn).name(), "Age");
  EXPECT_EQ(schema.attribute(kAdultAgeColumn).domain_size(), 74u);
  EXPECT_EQ(schema.attribute(kAdultMaritalColumn).domain_size(), 7u);
  EXPECT_EQ(schema.attribute(kAdultRaceColumn).domain_size(), 5u);
  EXPECT_EQ(schema.attribute(kAdultGenderColumn).domain_size(), 2u);
  // "its domain consists of fourteen values"
  EXPECT_EQ(schema.attribute(kAdultOccupationColumn).domain_size(), 14u);
}

TEST(AdultQuasiIdentifiersTest, LadderShapesMatchThePaper) {
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  ASSERT_EQ(qis->size(), 4u);
  // "Age can be generalized to six levels ..., Marital Status to three
  //  levels, and Race and Gender can each either be left as is or be
  //  completely suppressed."
  EXPECT_EQ((*qis)[0].hierarchy->num_levels(), 6u);
  EXPECT_EQ((*qis)[1].hierarchy->num_levels(), 3u);
  EXPECT_EQ((*qis)[2].hierarchy->num_levels(), 2u);
  EXPECT_EQ((*qis)[3].hierarchy->num_levels(), 2u);

  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(*qis);
  EXPECT_EQ(lattice.num_nodes(), 72u);

  // The Figure-5 node: Age in 20-year intervals, everything else
  // suppressed.
  const LatticeNode node = AdultFigure5Node();
  ASSERT_TRUE(lattice.Validate(node).ok());
  EXPECT_EQ((*qis)[0].hierarchy->GroupLabel(0, 3), "[17-36]");
  EXPECT_EQ((*qis)[1].hierarchy->GroupLabel(0, 2), "*");
}

TEST(AdultGeneratorTest, DeterministicAndWellFormed) {
  const Table a = GenerateSyntheticAdult(2000, 7);
  const Table b = GenerateSyntheticAdult(2000, 7);
  const Table c = GenerateSyntheticAdult(2000, 8);
  ASSERT_EQ(a.num_rows(), 2000u);
  for (size_t col = 0; col < a.num_columns(); ++col) {
    EXPECT_EQ(a.column(col), b.column(col)) << "col " << col;
  }
  // Different seeds give different data.
  bool any_diff = false;
  for (size_t col = 0; col < a.num_columns(); ++col) {
    if (a.column(col) != c.column(col)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AdultGeneratorTest, MarginalsMatchEmbeddedDistributions) {
  const Table t = GenerateSyntheticAdult(20000, 42);
  // Gender split roughly 2:1 male.
  size_t male = 0;
  for (int32_t g : t.column(kAdultGenderColumn)) male += (g == 0);
  EXPECT_NEAR(male / 20000.0, 0.675, 0.02);

  // All 14 occupations occur; the top occupation is far from uniform.
  std::vector<uint32_t> occ(kAdultOccupationValues, 0);
  for (int32_t o : t.column(kAdultOccupationColumn)) ++occ[o];
  uint32_t max_count = 0;
  for (uint32_t c : occ) max_count = std::max(max_count, c);
  EXPECT_GT(max_count / 20000.0, 1.2 / 14.0);  // skewed
  for (size_t i = 0; i + 1 < occ.size(); ++i) {  // all but Armed-Forces
    EXPECT_GT(occ[i], 0u) << "occupation " << i;
  }

  // Ages stay within the domain and skew young-adult.
  int64_t age_sum = 0;
  for (int32_t age : t.column(kAdultAgeColumn)) {
    ASSERT_GE(age, 17);
    ASSERT_LE(age, 90);
    age_sum += age;
  }
  const double mean_age = static_cast<double>(age_sum) / 20000.0;
  EXPECT_GT(mean_age, 33.0);
  EXPECT_LT(mean_age, 44.0);
}

TEST(AdultGeneratorTest, DefaultSizeIsThePapersTupleCount) {
  // Only checks the constant; the full-size table is exercised by the
  // figure benches.
  EXPECT_EQ(kAdultTupleCount, 45222u);
}

TEST(AdultLoaderTest, ParsesUciFormatAndDropsMissing) {
  const std::string path = ::testing::TempDir() + "/adult_test.data";
  std::ofstream out(path);
  // Genuine UCI format: 15 columns.
  out << "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, "
         "Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n";
  out << "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, "
         "Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, "
         "<=50K\n";
  // Missing occupation -> dropped.
  out << "18, ?, 103497, Some-college, 10, Never-married, ?, Own-child, "
         "White, Female, 0, 0, 30, United-States, <=50K\n";
  // Malformed row -> skipped.
  out << "not,a,real,row\n";
  out.close();

  auto table = LoadAdultCsv(path);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->at(0, kAdultAgeColumn), 39);
  EXPECT_EQ(table->schema()
                .attribute(kAdultOccupationColumn)
                .LabelOf(table->at(0, kAdultOccupationColumn)),
            "Adm-clerical");
  EXPECT_EQ(table->schema()
                .attribute(kAdultMaritalColumn)
                .LabelOf(table->at(1, kAdultMaritalColumn)),
            "Married-civ-spouse");
  std::remove(path.c_str());
}

TEST(AdultLoaderTest, MissingFileAndEmptyFileFail) {
  EXPECT_FALSE(LoadAdultCsv("/nonexistent/adult.data").ok());
  const std::string path = ::testing::TempDir() + "/empty_adult.data";
  std::ofstream(path) << "\n";
  EXPECT_FALSE(LoadAdultCsv(path).ok());
  std::remove(path.c_str());
}

TEST(AdultIntegrationTest, BucketizesAtFigure5Node) {
  const Table t = GenerateSyntheticAdult(5000, 11);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  auto b = BucketizeAtNode(t, *qis, AdultFigure5Node(),
                           kAdultOccupationColumn);
  ASSERT_TRUE(b.ok());
  // Age 17..90 in 20-year intervals -> four buckets.
  EXPECT_EQ(b->num_buckets(), 4u);
  EXPECT_EQ(b->num_tuples(), 5000u);
}

}  // namespace
}  // namespace cksafe
