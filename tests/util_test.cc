// Foundation tests: Status/StatusOr, strings, CSV, math, RNG/samplers,
// bitsets, text tables, flags.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "cksafe/util/bitset.h"
#include "cksafe/util/csv.h"
#include "cksafe/util/flags.h"
#include "cksafe/util/math_util.h"
#include "cksafe/util/random.h"
#include "cksafe/util/status.h"
#include "cksafe/util/string_util.h"
#include "cksafe/util/text_table.h"
#include "testing_util.h"

namespace cksafe {
namespace {

// --- Status / StatusOr ---

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "ok");
  const Status err = Status::InvalidArgument("bad k");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad k");
  EXPECT_EQ(err.ToString(), "invalid_argument: bad k");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "io_error");
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  StatusOr<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

StatusOr<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  CKSAFE_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseHalf(7, &out).ok());
}

// --- strings ---

TEST(StringTest, SplitTrimJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("one", ','), (std::vector<std::string>{"one"}));
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, ParseNumbers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("  -7 "), -7);
  EXPECT_FALSE(ParseInt64("42x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_NEAR(*ParseDouble("0.25"), 0.25, 1e-15);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringTest, ParseDoubleRejectsNonFinite) {
  // strtod parses all of these; none is a usable threshold/weight/scale,
  // so ParseDouble must reject them rather than let a NaN poison every
  // comparison downstream.
  for (const char* bad : {"nan", "NaN", "-nan", "nan(0x1)", "inf", "-inf",
                          "INF", "infinity", "-Infinity"}) {
    const auto parsed = ParseDouble(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // Overflow to infinity is equally non-finite.
  EXPECT_FALSE(ParseDouble("1e999").ok());
  // Finite values keep parsing, including extremes.
  EXPECT_NEAR(*ParseDouble("-1e308"), -1e308, 1e293);
  EXPECT_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringTest, MiscHelpers) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(StrFormat("%d/%d=%.2f", 1, 4, 0.25), "1/4=0.25");
}

// --- math ---

TEST(MathTest, Entropy) {
  EXPECT_NEAR(EntropyNats({1, 1}), std::log(2.0), 1e-12);
  EXPECT_NEAR(EntropyBits({1, 1}), 1.0, 1e-12);
  EXPECT_NEAR(EntropyNats({4, 0, 0}), 0.0, 1e-12);
  EXPECT_NEAR(EntropyNats({}), 0.0, 1e-12);
  EXPECT_NEAR(EntropyNats({2, 1, 1}),
              -(0.5 * std::log(0.5) + 2 * 0.25 * std::log(0.25)), 1e-12);
}

TEST(MathTest, Combinatorics) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(MultisetPermutationCount({2, 2, 1}), 30.0);
  EXPECT_DOUBLE_EQ(MultisetPermutationCount({2, 1, 1, 1}), 60.0);
  EXPECT_DOUBLE_EQ(MultisetPermutationCount({3}), 1.0);
  EXPECT_DOUBLE_EQ(MultisetPermutationCount({}), 1.0);
}

TEST(MathTest, SafeDivAndApprox) {
  EXPECT_DOUBLE_EQ(SafeDiv(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(SafeDiv(0.0, 0.0), 0.0);
  EXPECT_TRUE(ApproxEqual(0.1 + 0.2, 0.3));
  EXPECT_FALSE(ApproxEqual(0.1, 0.2));
}

// --- RNG / samplers ---

TEST(RandomTest, Determinism) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    if (va != c.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, RangesAndShuffle) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    const int64_t r = rng.NextInRange(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(RandomTest, DiscreteSamplerFrequencies) {
  DiscreteSampler sampler({1.0, 3.0, 0.0, 4.0});
  EXPECT_NEAR(sampler.Probability(0), 0.125, 1e-12);
  EXPECT_NEAR(sampler.Probability(2), 0.0, 1e-12);
  Rng rng(77);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);  // zero-weight index never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.125, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.375, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.5, 0.01);
}

// Regression: the end-of-range guard in Sample used to step back onto the
// *last* cumulative entry even when its weight was zero, so a draw landing
// exactly on the total returned a zero-probability index. The boundary is
// unreachable through Rng::NextDouble's 53-bit draws, so probe it through
// the IndexForPoint seam.
TEST(RandomTest, DiscreteSamplerBoundaryNeverPicksZeroWeight) {
  // Trailing zero weights: a draw at the total must step back to index 1.
  DiscreteSampler trailing({2.0, 3.0, 0.0, 0.0});
  EXPECT_EQ(trailing.IndexForPoint(trailing.total()), 1u);
  // Interior zero weight, boundary draw: index 3 is the last positive one.
  DiscreteSampler interior({1.0, 0.0, 2.0, 1.0});
  EXPECT_EQ(interior.IndexForPoint(interior.total()), 3u);
  // Interior points keep their usual upper-bound semantics.
  EXPECT_EQ(interior.IndexForPoint(0.0), 0u);
  EXPECT_EQ(interior.IndexForPoint(1.0), 2u);  // skips the zero-weight slot
  EXPECT_EQ(interior.IndexForPoint(2.9), 2u);
  EXPECT_EQ(interior.IndexForPoint(3.5), 3u);
  // Exhaustive agreement: for every probe, the returned index has positive
  // probability.
  Rng rng(testing::TestSeed(20260809));
  SCOPED_TRACE(testing::SeedTrace(20260809));
  DiscreteSampler mixed({0.0, 1.0, 0.0, 2.0, 0.0});
  for (int i = 0; i < 2000; ++i) {
    const size_t index = mixed.IndexForPoint(rng.NextDouble() * mixed.total());
    EXPECT_GT(mixed.Probability(index), 0.0) << "index " << index;
  }
  EXPECT_GT(mixed.Probability(mixed.IndexForPoint(mixed.total())), 0.0);
}

// --- Bitset ---

TEST(BitsetTest, SetTestCount) {
  Bitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(64);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, BitwiseAlgebra) {
  Bitset a(70);
  Bitset b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  EXPECT_EQ((a & b).Count(), 1u);
  EXPECT_EQ((a | b).Count(), 3u);
  EXPECT_EQ(Bitset::AndCount(a, b), 1u);
  // Not() respects the logical size: 70 - 2 = 68.
  EXPECT_EQ(a.Not().Count(), 68u);
  EXPECT_EQ((a.Not() & a).Count(), 0u);
}

TEST(BitsetTest, AllOnesConstructor) {
  Bitset ones(67, /*all_ones=*/true);
  EXPECT_EQ(ones.Count(), 67u);
  EXPECT_TRUE(ones.Test(66));
}

// --- CSV ---

TEST(CsvTest, ParseLine) {
  EXPECT_EQ(ParseCsvLine(" a , b ,c "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cksafe_csv_test.csv";
  const std::vector<std::vector<std::string>> rows = {
      {"39", "State-gov", "Male"}, {"50", "Private", "Female"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedFields) {
  // "" escapes a quote; quoted fields keep delimiters and padding.
  EXPECT_EQ(ParseCsvLine(R"("a,b",plain," pad ","say ""hi""")"),
            (std::vector<std::string>{"a,b", "plain", " pad ", "say \"hi\""}));
  // Padding around a quoted field is tolerated.
  EXPECT_EQ(ParseCsvLine(R"(  "x" , y )"),
            (std::vector<std::string>{"x", "y"}));
  // Empty and trailing fields.
  EXPECT_EQ(ParseCsvLine("a,,c,"),
            (std::vector<std::string>{"a", "", "c", ""}));
  EXPECT_EQ(ParseCsvLine(R"("",)"), (std::vector<std::string>{"", ""}));
}

TEST(CsvTest, QuotingRoundTripsAwkwardCells) {
  const std::string path = ::testing::TempDir() + "/cksafe_csv_quoted.csv";
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "comma,inside", "quote\"inside"},
      {" leading", "trailing ", "both sides "},
      {"line\nbreak", "crlf\r\nstyle", ""},
      {"\"fully quoted\""},
      {""},  // a lone empty field must not vanish as a blank line
  };
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  const auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

// Property: any cell content written with WriteCsvFile reads back
// verbatim, whatever mix of delimiters, quotes, whitespace and newlines
// the foundry throws at it.
TEST(CsvTest, RandomizedWriteReadRoundTrip) {
  const uint64_t seed = testing::TestSeed(20260809);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::string alphabet = "ab,\"\n\r '\t;x";
  const std::string path = ::testing::TempDir() + "/cksafe_csv_fuzz.csv";
  for (size_t iter = 0; iter < testing::TestIters(25); ++iter) {
    std::vector<std::vector<std::string>> rows(1 +
                                               rng.NextBelow(6));
    for (auto& row : rows) {
      row.resize(1 + rng.NextBelow(5));
      for (auto& cell : row) {
        const size_t len = rng.NextBelow(12);
        for (size_t i = 0; i < len; ++i) {
          cell += alphabet[rng.NextBelow(alphabet.size())];
        }
      }
    }
    ASSERT_TRUE(WriteCsvFile(path, rows).ok());
    const auto read = ReadCsvFile(path);
    ASSERT_TRUE(read.ok()) << read.status();
    ASSERT_EQ(*read, rows) << "round trip diverged at iteration " << iter;
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto read = ReadCsvFile("/nonexistent/path.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

// --- TextTable ---

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"k", "disclosure"});
  t.AddRow({"0", "0.4000"});
  t.AddRow({"10", "1.0000"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("k   disclosure"), std::string::npos);
  EXPECT_NE(out.find("10  1.0000"), std::string::npos);
  EXPECT_EQ(TextTable::FormatDouble(0.123456, 3), "0.123");
}

// --- Flags ---

TEST(FlagsTest, ParsesAllKinds) {
  int64_t k = 3;
  double c = 0.7;
  std::string name = "default";
  bool verbose = false;
  FlagParser parser;
  parser.AddInt64("k", &k, "attacker power");
  parser.AddDouble("c", &c, "threshold");
  parser.AddString("name", &name, "label");
  parser.AddBool("verbose", &verbose, "chatty");

  const char* argv[] = {"prog",        "--k=5",  "--c", "0.55",
                        "--name=fig5", "--verbose", "pos"};
  ASSERT_TRUE(parser.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_EQ(k, 5);
  EXPECT_NEAR(c, 0.55, 1e-12);
  EXPECT_EQ(name, "fig5");
  EXPECT_TRUE(verbose);
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"pos"}));
}

TEST(FlagsTest, RejectsUnknownAndMalformed) {
  int64_t k = 0;
  FlagParser parser;
  parser.AddInt64("k", &k, "");
  const char* unknown[] = {"prog", "--zz=1"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(unknown)).ok());
  const char* bad[] = {"prog", "--k=abc"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(bad)).ok());
  const char* dangling[] = {"prog", "--k"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(dangling)).ok());
  EXPECT_NE(parser.Usage("prog").find("--k"), std::string::npos);
}

TEST(FlagsTest, FlagShapedTokenIsNeverAValue) {
  // Regression (PR 7): `--rows --k=4` used to consume `--k=4` as the
  // value of --rows, silently dropping a flag. A token starting with --
  // must be rejected as a value with a clear Status, and the targets must
  // stay untouched.
  int64_t rows = 7;
  int64_t k = 3;
  FlagParser parser;
  parser.AddInt64("rows", &rows, "");
  parser.AddInt64("k", &k, "");
  const char* argv[] = {"prog", "--rows", "--k=4"};
  const Status status = parser.Parse(3, const_cast<char**>(argv));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("missing value for --rows"),
            std::string::npos);
  EXPECT_NE(status.message().find("--k=4"), std::string::npos);
  EXPECT_EQ(rows, 7);
  EXPECT_EQ(k, 3);

  // Dash-prefixed values that are not flag-shaped still parse
  // space-separated (negative numbers), and --name=VALUE passes
  // anything, including values beginning with --.
  const char* negative[] = {"prog", "--rows", "-5"};
  ASSERT_TRUE(parser.Parse(3, const_cast<char**>(negative)).ok());
  EXPECT_EQ(rows, -5);
  std::string label;
  parser.AddString("label", &label, "");
  const char* dashed[] = {"prog", "--label=--weird"};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(dashed)).ok());
  EXPECT_EQ(label, "--weird");
}

TEST(FlagsTest, EmptyEqualsValueOnBoolMeansTrue) {
  // Locked-in behavior: an explicit empty value on a bool (`--verbose=`)
  // enables it, matching bare `--verbose`. On non-bool flags an empty
  // value is a parse error for numbers but a legal empty string.
  bool verbose = false;
  int64_t k = 3;
  std::string name = "x";
  FlagParser parser;
  parser.AddBool("verbose", &verbose, "");
  parser.AddInt64("k", &k, "");
  parser.AddString("name", &name, "");
  const char* bool_empty[] = {"prog", "--verbose="};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(bool_empty)).ok());
  EXPECT_TRUE(verbose);
  const char* int_empty[] = {"prog", "--k="};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(int_empty)).ok());
  EXPECT_EQ(k, 3);
  const char* string_empty[] = {"prog", "--name="};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(string_empty)).ok());
  EXPECT_EQ(name, "");
}

}  // namespace
}  // namespace cksafe
