// Unit tests for the synthetic-workload foundry: cross-platform
// determinism (pinned FNV-1a fingerprints — the same constants must hold
// under gcc and clang, any libc, any architecture), seed sensitivity,
// config validation, and valid-by-construction delta streams.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cksafe/core/disclosure.h"
#include "cksafe/foundry/delta_foundry.h"
#include "cksafe/foundry/fingerprint.h"
#include "cksafe/foundry/hierarchy_foundry.h"
#include "cksafe/foundry/table_foundry.h"
#include "cksafe/stream/incremental_analyzer.h"
#include "testing_util.h"

namespace cksafe {
namespace {

// Pinned digests. The foundry generates through integer arithmetic only
// (no floating point, no std:: distributions, no pointer-order iteration),
// so these exact values must reproduce on every compiler, libc, and
// architecture — a mismatch means the generator's byte-identity contract
// broke, not that the platform is "slightly different".
constexpr uint64_t kPinnedZeroWordDigest = 0xa8c7f832281a39c5ULL;
constexpr uint64_t kPinnedCountingDigest = 0x7eb5108b368a78edULL;
constexpr uint64_t kPinnedTableDigest = 0x53976e30cb2da079ULL;
constexpr uint64_t kPinnedHierarchyDigest = 0x13e79baaacf91a9eULL;
constexpr uint64_t kPinnedDeltaDigest = 0x90d994436cb6290cULL;

// The reference config every pinned fingerprint below is derived from.
TableFoundryConfig ReferenceTableConfig() {
  TableFoundryConfig config;
  config.seed = 0x5eedf00dULL;
  config.num_rows = 200;
  config.quasi_identifiers = {
      ColumnSpec{"Region", 12, true, ValueSkew::kZipf, 2},
      ColumnSpec{"Age", 16, false, ValueSkew::kClustered, 4}};
  config.sensitive = ColumnSpec{"Dx", 6, true, ValueSkew::kUniform, 1};
  config.correlate_sensitive = true;
  return config;
}

TEST(FingerprintTest, MatchesFnv1aTestVectors) {
  // Empty input is the FNV-1a offset basis; the other vectors pin the
  // byte-by-byte LSB-first mixing order.
  Fingerprint empty;
  EXPECT_EQ(empty.digest(), 0xcbf29ce484222325ULL);

  Fingerprint zero;
  zero.MixUint64(0);
  EXPECT_EQ(zero.digest(), kPinnedZeroWordDigest);

  Fingerprint counting;
  counting.MixUint64(0x0807060504030201ULL);  // bytes 01 02 .. 08 in order
  EXPECT_EQ(counting.digest(), kPinnedCountingDigest);

  // Signed mixing is two's-complement: -1 mixes as eight 0xff bytes.
  Fingerprint minus_one;
  minus_one.MixInt32(-1);
  Fingerprint ffffffff;
  ffffffff.MixUint64(0xffffffffULL);
  EXPECT_EQ(minus_one.digest(), ffffffff.digest());
}

TEST(TableFoundryTest, SameSeedIsByteIdentical) {
  const TableFoundryConfig config = ReferenceTableConfig();
  const auto first = TableFoundry::Generate(config);
  const auto second = TableFoundry::Generate(config);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->num_rows(), config.num_rows);
  for (size_t row = 0; row < first->num_rows(); ++row) {
    for (size_t col = 0; col < first->num_columns(); ++col) {
      ASSERT_EQ(first->at(static_cast<PersonId>(row), col),
                second->at(static_cast<PersonId>(row), col))
          << "row " << row << " col " << col;
    }
  }
  EXPECT_EQ(FingerprintTable(*first), FingerprintTable(*second));
}

TEST(TableFoundryTest, FingerprintIsPinnedAcrossPlatforms) {
  const auto table = TableFoundry::Generate(ReferenceTableConfig());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(FingerprintTable(*table), kPinnedTableDigest);
}

TEST(TableFoundryTest, DifferentSeedsDiverge) {
  TableFoundryConfig config = ReferenceTableConfig();
  const auto base = TableFoundry::Generate(config);
  config.seed ^= 1;
  const auto other = TableFoundry::Generate(config);
  ASSERT_TRUE(base.ok() && other.ok());
  EXPECT_NE(FingerprintTable(*base), FingerprintTable(*other));
}

TEST(TableFoundryTest, RejectsBadConfigs) {
  TableFoundryConfig config = ReferenceTableConfig();
  config.num_rows = 0;
  EXPECT_FALSE(TableFoundry::Generate(config).ok());

  config = ReferenceTableConfig();
  config.quasi_identifiers.clear();
  EXPECT_FALSE(TableFoundry::Generate(config).ok());

  config = ReferenceTableConfig();
  config.quasi_identifiers[0].domain = 0;
  EXPECT_FALSE(TableFoundry::Generate(config).ok());

  config = ReferenceTableConfig();
  config.quasi_identifiers[0].skew_param = 0;  // Zipf exponent out of range
  EXPECT_FALSE(TableFoundry::Generate(config).ok());

  config = ReferenceTableConfig();
  config.quasi_identifiers[0].skew_param = 17;
  EXPECT_FALSE(TableFoundry::Generate(config).ok());
}

TEST(TableFoundryTest, SkewWeightShapesHold) {
  const auto zipf = SkewWeights(10, ValueSkew::kZipf, 2);
  ASSERT_TRUE(zipf.ok());
  for (size_t i = 1; i < zipf->size(); ++i) {
    EXPECT_LE((*zipf)[i], (*zipf)[i - 1]) << "Zipf weights must not increase";
  }
  EXPECT_EQ((*zipf)[0], uint64_t{1} << 32);  // floor(scale / 1^2)

  const auto clustered = SkewWeights(8, ValueSkew::kClustered, 3);
  ASSERT_TRUE(clustered.ok());
  for (uint64_t w : *clustered) {
    EXPECT_EQ(w & (w - 1), 0u) << "cluster weights are powers of two";
  }
  EXPECT_EQ(clustered->front(), 4u);  // 2^(clusters-1)
  EXPECT_EQ(clustered->back(), 1u);

  const auto uniform = SkewWeights(5, ValueSkew::kUniform, 1);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(*uniform, std::vector<uint64_t>(5, 1));
}

TEST(WeightedIndexSamplerTest, ValidatesAndStaysInRange) {
  EXPECT_FALSE(WeightedIndexSampler::Create({}).ok());
  EXPECT_FALSE(WeightedIndexSampler::Create({0, 0}).ok());

  const auto sampler = WeightedIndexSampler::Create({3, 0, 5});
  ASSERT_TRUE(sampler.ok());
  const uint64_t seed = testing::TestSeed(99);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (size_t i = 0; i < testing::TestIters(500); ++i) {
    const size_t drawn = sampler->Sample(&rng);
    ASSERT_LT(drawn, 3u);
    ASSERT_NE(drawn, 1u) << "zero-weight index must never be selected";
  }
}

TEST(HierarchyFoundryTest, LaddersNestAndArePinned) {
  const auto table = TableFoundry::Generate(ReferenceTableConfig());
  ASSERT_TRUE(table.ok());
  HierarchyFoundryConfig config;
  config.seed = 0x1adde5ULL;
  config.fanout = 3;
  config.max_levels = 4;
  const auto qis = HierarchyFoundry::MakeQuasiIdentifiers(
      *table, /*sensitive_column=*/2, config);
  ASSERT_TRUE(qis.ok()) << qis.status().ToString();
  ASSERT_EQ(qis->size(), 2u);  // sensitive column skipped

  for (const QuasiIdentifier& qi : *qis) {
    const AttributeHierarchy& h = *qi.hierarchy;
    const AttributeDef& attr = h.attribute();
    const int32_t lo = attr.is_categorical() ? 0 : attr.min_value();
    const int32_t hi = attr.is_categorical()
                           ? static_cast<int32_t>(attr.domain_size()) - 1
                           : attr.max_value();
    ASSERT_GE(h.num_levels(), 2u);
    EXPECT_EQ(h.NumGroups(h.num_levels() - 1), 1u) << "top must suppress";
    for (size_t level = 0; level + 1 < h.num_levels(); ++level) {
      // Nesting: values sharing a group at `level` share one at `level+1`.
      std::map<int32_t, int32_t> parent_of;
      for (int32_t code = lo; code <= hi; ++code) {
        const int32_t group = h.GroupOf(code, level);
        const int32_t parent = h.GroupOf(code, level + 1);
        const auto [it, inserted] = parent_of.emplace(group, parent);
        EXPECT_EQ(it->second, parent)
            << attr.name() << " level " << level << " group " << group;
      }
    }
  }

  Fingerprint combined;
  for (const QuasiIdentifier& qi : *qis) {
    combined.MixUint64(FingerprintHierarchy(*qi.hierarchy));
  }
  EXPECT_EQ(combined.digest(), kPinnedHierarchyDigest);
}

TEST(HierarchyFoundryTest, RejectsBadConfigs) {
  const auto table = TableFoundry::Generate(ReferenceTableConfig());
  ASSERT_TRUE(table.ok());
  HierarchyFoundryConfig config;
  config.fanout = 1;
  EXPECT_FALSE(
      HierarchyFoundry::MakeQuasiIdentifiers(*table, 2, config).ok());
  config.fanout = 2;
  config.max_levels = 0;
  EXPECT_FALSE(
      HierarchyFoundry::MakeQuasiIdentifiers(*table, 2, config).ok());
  config.max_levels = 4;
  EXPECT_FALSE(
      HierarchyFoundry::MakeQuasiIdentifiers(*table, 99, config).ok());
}

DeltaFoundryConfig ReferenceDeltaConfig() {
  DeltaFoundryConfig config;
  config.seed = 0xde17a5ULL;
  config.num_ops = 120;
  config.domain = 5;
  config.initial_buckets = 4;
  config.min_buckets = 2;
  config.max_batch = 7;
  config.churn_percent = 40;
  config.skew = ValueSkew::kZipf;
  config.skew_param = 2;
  return config;
}

TEST(DeltaFoundryTest, StreamsAreValidByConstruction) {
  const auto stream = DeltaFoundry::Generate(ReferenceDeltaConfig());
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->initial.size(), 4u);
  EXPECT_EQ(stream->ops.size(), 120u);

  // Applying every op must hold the analyzer's invariants (CHECK-crashes
  // on any invalid removal) and respect the bucket floor throughout.
  IncrementalAnalyzer analyzer(/*sensitive_domain_size=*/5);
  size_t removals = 0;
  for (const DeltaOp& op : stream->initial) ApplyDelta(op, &analyzer);
  for (const DeltaOp& op : stream->ops) {
    ApplyDelta(op, &analyzer);
    if (op.kind == DeltaKind::kRemoveTuples ||
        op.kind == DeltaKind::kRemoveBucket) {
      ++removals;
    }
    ASSERT_GE(analyzer.CurrentBucketization().num_buckets(), 2u);
  }
  EXPECT_GT(removals, 0u) << "40% churn must produce removals";

  // The materialized end state agrees with a from-scratch analyzer.
  const Bucketization final_state = analyzer.CurrentBucketization();
  DisclosureAnalyzer fresh(final_state);
  const DisclosureProfile incremental_profile = analyzer.Profile(3);
  const DisclosureProfile fresh_profile = fresh.Profile(3);
  EXPECT_EQ(incremental_profile.implication, fresh_profile.implication);
  EXPECT_EQ(incremental_profile.negation, fresh_profile.negation);
}

TEST(DeltaFoundryTest, FingerprintIsPinnedAcrossPlatforms) {
  const auto stream = DeltaFoundry::Generate(ReferenceDeltaConfig());
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(FingerprintDeltaStream(*stream), kPinnedDeltaDigest);
  const auto replay = DeltaFoundry::Generate(ReferenceDeltaConfig());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(FingerprintDeltaStream(*replay), FingerprintDeltaStream(*stream));
}

TEST(DeltaFoundryTest, RejectsBadConfigs) {
  DeltaFoundryConfig config = ReferenceDeltaConfig();
  config.domain = 0;
  EXPECT_FALSE(DeltaFoundry::Generate(config).ok());

  config = ReferenceDeltaConfig();
  config.min_buckets = 5;  // > initial_buckets
  EXPECT_FALSE(DeltaFoundry::Generate(config).ok());

  config = ReferenceDeltaConfig();
  config.max_batch = 0;
  EXPECT_FALSE(DeltaFoundry::Generate(config).ok());

  config = ReferenceDeltaConfig();
  config.churn_percent = 91;
  EXPECT_FALSE(DeltaFoundry::Generate(config).ok());
}

}  // namespace
}  // namespace cksafe
