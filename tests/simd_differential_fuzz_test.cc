// Scalar-vs-SIMD differential fuzz (satellite of PR 7): random bucket
// shapes — including kLogInfeasible-dense rows and saturated buckets whose
// (-inf) MINIMIZE1 floors meet +inf prefix minima in NaN-producing pruning
// bound sums — are run through the full kernel surface (forward sweep,
// argmin choices, suffix rows, per-bucket sweep, MinLogRow composition,
// row-granular incremental recomputation) under every usable backend and
// compared against the scalar reference with exact double equality. This
// proves the vector path's tile-granularity pruning conservative-exact on
// shapes nobody hand-picked, not just spot-checked at the stress shapes
// (simd_kernel_test). Seeded via TestSeed/SeedTrace; iteration volume
// scales with CKSAFE_TEST_ITERS for the nightly long-run profile.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cksafe/core/logprob.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/simd/dispatch.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { SetSimdLevelForTest(level); }
  ~ScopedSimdLevel() { ClearSimdLevelForTest(); }
};

std::vector<SimdLevel> UsableVectorLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelUsable(level)) levels.push_back(level);
  }
  return levels;
}

/// A pool of random MINIMIZE1 tables for one fuzz round. The pool always
/// contains the two saturation-heavy histograms ({1} and {2, 1}): with one
/// or two persons the minimum probability hits log 0 at tiny budgets, so
/// the f floors are -inf wherever the sweep looks, the early with_a rows
/// are kLogInfeasible-dense, and every pruning bound of the form
/// (-inf) + kLogInfeasible evaluates NaN — the exact traps the vector
/// pruning must survive without diverging.
struct TablePool {
  std::vector<std::shared_ptr<const Minimize1Table>> tables;
  std::vector<double> ratios;
};

TablePool MakePool(Rng* rng, size_t budget) {
  TablePool pool;
  const std::vector<std::vector<uint32_t>> forced = {{1}, {2, 1}};
  for (const auto& counts : forced) {
    pool.tables.push_back(
        std::make_shared<const Minimize1Table>(counts, budget));
    uint32_t n = 0;
    for (uint32_t c : counts) n += c;
    pool.ratios.push_back(static_cast<double>(n) /
                          static_cast<double>(counts.back()));
  }
  const size_t extra = 2 + rng->NextBelow(4);
  for (size_t i = 0; i < extra; ++i) {
    // Descending positive counts, small enough to saturate at reachable
    // budgets reasonably often.
    std::vector<uint32_t> counts;
    const size_t d = 1 + rng->NextBelow(6);
    uint32_t prev = 1 + static_cast<uint32_t>(rng->NextBelow(7));
    for (size_t v = 0; v < d; ++v) {
      counts.push_back(prev);
      if (prev > 1) prev -= static_cast<uint32_t>(rng->NextBelow(prev));
    }
    uint32_t n = 0;
    for (uint32_t c : counts) n += c;
    pool.tables.push_back(
        std::make_shared<const Minimize1Table>(counts, budget));
    const uint32_t s0 = counts[rng->NextBelow(counts.size())];
    pool.ratios.push_back(static_cast<double>(n) / static_cast<double>(s0));
  }
  return pool;
}

std::vector<Minimize2Bucket> RandomBuckets(Rng* rng, const TablePool& pool,
                                           size_t num_buckets) {
  std::vector<Minimize2Bucket> buckets(num_buckets);
  for (auto& bucket : buckets) {
    const size_t pick = rng->NextBelow(pool.tables.size());
    bucket.table = pool.tables[pick];
    bucket.ratio = pool.ratios[pick];
  }
  return buckets;
}

/// Full kernel surface under one backend.
struct Outputs {
  std::vector<LogProb> curve;
  std::vector<uint16_t> no_choices;
  std::vector<uint16_t> wa_choices;
  std::vector<uint8_t> wa_branches;
  std::vector<LogProb> suffix;
  std::vector<LogProb> per_bucket;
};

Outputs RunSurface(const std::vector<Minimize2Bucket>& buckets, size_t k) {
  Outputs out;
  Minimize2Forward dp(k);
  dp.Recompute(buckets, 0);
  for (size_t h = 0; h <= k; ++h) out.curve.push_back(dp.LogRMinAt(h));
  out.no_choices = dp.NoChoicesForTest();
  out.wa_choices = dp.WaChoicesForTest();
  out.wa_branches = dp.WaBranchesForTest();
  out.suffix = ComputeNoASuffix(buckets, k);
  out.per_bucket = PerBucketLogRatioSweep(buckets, k, dp, out.suffix);
  return out;
}

TEST(SimdDifferentialFuzzTest, RandomShapesBitMatchScalarEverywhere) {
  const std::vector<SimdLevel> vector_levels = UsableVectorLevels();
  if (vector_levels.empty()) {
    GTEST_SKIP() << "no vector backend usable on this build/host; the "
                    "scalar path is pinned by simd_kernel_test";
  }
  const uint64_t seed = testing::TestSeed(0x51adf422ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = testing::TestIters(32);
  for (size_t iter = 0; iter < iters; ++iter) {
    // Mostly small-k rounds with a multi-tile k (> 2 * kScanTile) every
    // eighth round, so both the vectorized chunks and the tile-boundary
    // pruning decisions get traffic.
    const size_t k = (iter % 8 == 7) ? 130 + rng.NextBelow(100)
                                     : 1 + rng.NextBelow(96);
    const size_t m = 1 + rng.NextBelow(32);
    SCOPED_TRACE("iter=" + std::to_string(iter) + " m=" + std::to_string(m) +
                 " k=" + std::to_string(k));
    const TablePool pool = MakePool(&rng, k + 1);
    const std::vector<Minimize2Bucket> buckets = RandomBuckets(&rng, pool, m);

    Outputs reference;
    {
      ScopedSimdLevel scoped(SimdLevel::kScalar);
      reference = RunSurface(buckets, k);
    }
    for (SimdLevel level : vector_levels) {
      SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
      ScopedSimdLevel scoped(level);
      const Outputs candidate = RunSurface(buckets, k);
      // Exact double equality throughout: bit-identity, no tolerance.
      ASSERT_EQ(candidate.curve, reference.curve);
      ASSERT_EQ(candidate.no_choices, reference.no_choices);
      ASSERT_EQ(candidate.wa_choices, reference.wa_choices);
      ASSERT_EQ(candidate.wa_branches, reference.wa_branches);
      ASSERT_EQ(candidate.suffix, reference.suffix);
      ASSERT_EQ(candidate.per_bucket, reference.per_bucket);
    }

    // Every fourth round also fuzzes the incremental path: mutate one
    // bucket, recompute only the dirty suffix under a vector backend, and
    // compare against a scalar from-scratch sweep of the mutated inputs.
    if (iter % 4 == 0 && m >= 2) {
      std::vector<Minimize2Bucket> mutated = buckets;
      const size_t dirty = rng.NextBelow(m);
      const size_t pick = rng.NextBelow(pool.tables.size());
      mutated[dirty].table = pool.tables[pick];
      mutated[dirty].ratio = pool.ratios[pick];
      Outputs mutated_reference;
      {
        ScopedSimdLevel scoped(SimdLevel::kScalar);
        mutated_reference = RunSurface(mutated, k);
      }
      const SimdLevel level = vector_levels[iter % vector_levels.size()];
      SCOPED_TRACE(std::string("incremental backend=") + SimdLevelName(level));
      ScopedSimdLevel scoped(level);
      Minimize2Forward dp(k);
      dp.Recompute(buckets, 0);
      dp.Recompute(mutated, dirty);
      for (size_t h = 0; h <= k; ++h) {
        ASSERT_EQ(dp.LogRMinAt(h), mutated_reference.curve[h]) << "h=" << h;
      }
      ASSERT_EQ(dp.WaChoicesForTest(), mutated_reference.wa_choices);
    }
  }
}

TEST(SimdDifferentialFuzzTest, SaturatedSingletonWorldHitsNaNBoundsExactly) {
  // The directed worst case, kept deterministic on top of the fuzz: every
  // bucket is the {1} singleton, so f[h >= 1] = -inf (kLogZero), row-1
  // with_a prefix minima are +inf, and each branch's very first pruning
  // bound is the NaN (-inf) + kLogInfeasible sum. All backends must agree
  // bit-for-bit — and with the known closed form: the target bucket's
  // MINIMIZE1(t + 1) always rules out the one person's only value, so the
  // whole log-ratio curve sits at log 0.
  constexpr size_t kAtoms = 70;  // > kScanTile: NaN bounds on both tiles
  auto table = std::make_shared<const Minimize1Table>(
      std::vector<uint32_t>{1}, kAtoms + 1);
  const std::vector<Minimize2Bucket> buckets(
      5, Minimize2Bucket{table, 1.0});
  Outputs reference;
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    reference = RunSurface(buckets, kAtoms);
  }
  for (size_t h = 0; h <= kAtoms; ++h) {
    EXPECT_EQ(reference.curve[h], kLogZero) << "h=" << h;
  }
  for (SimdLevel level : UsableVectorLevels()) {
    SCOPED_TRACE(std::string("backend=") + SimdLevelName(level));
    ScopedSimdLevel scoped(level);
    const Outputs candidate = RunSurface(buckets, kAtoms);
    EXPECT_EQ(candidate.curve, reference.curve);
    EXPECT_EQ(candidate.no_choices, reference.no_choices);
    EXPECT_EQ(candidate.wa_choices, reference.wa_choices);
    EXPECT_EQ(candidate.wa_branches, reference.wa_branches);
    EXPECT_EQ(candidate.suffix, reference.suffix);
    EXPECT_EQ(candidate.per_bucket, reference.per_bucket);
  }
}

}  // namespace
}  // namespace cksafe
