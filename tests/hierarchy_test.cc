// Generalization ladder tests: interval and tree hierarchies, nesting
// validation, labels, and the BucketizeAtNode integration.

#include "cksafe/hierarchy/hierarchy.h"

#include <gtest/gtest.h>

#include "cksafe/anon/bucketization.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kHospitalSensitiveColumn;
using testing::MakeHospitalTable;

TEST(IntervalHierarchyTest, GroupsAndLabels) {
  auto h = IntervalHierarchy::Create(AttributeDef::Numeric("Age", 17, 90),
                                     {1, 5, 10, 20, 40},
                                     /*add_suppressed_top=*/true);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_levels(), 6u);

  // Level 0: identity.
  EXPECT_EQ(h->GroupOf(17, 0), 0);
  EXPECT_EQ(h->GroupOf(90, 0), 73);
  EXPECT_EQ(h->GroupLabel(0, 0), "17");

  // Level 1: width 5 anchored at 17: [17-21], [22-26], ...
  EXPECT_EQ(h->GroupOf(17, 1), 0);
  EXPECT_EQ(h->GroupOf(21, 1), 0);
  EXPECT_EQ(h->GroupOf(22, 1), 1);
  EXPECT_EQ(h->GroupLabel(0, 1), "[17-21]");

  // Level 3: width 20.
  EXPECT_EQ(h->GroupOf(36, 3), 0);
  EXPECT_EQ(h->GroupOf(37, 3), 1);
  EXPECT_EQ(h->GroupLabel(1, 3), "[37-56]");

  // Top: suppressed.
  EXPECT_EQ(h->GroupOf(17, 5), 0);
  EXPECT_EQ(h->GroupOf(90, 5), 0);
  EXPECT_EQ(h->NumGroups(5), 1u);
  EXPECT_EQ(h->GroupLabel(0, 5), "*");

  // Last interval is clipped to the domain max.
  EXPECT_EQ(h->GroupLabel(static_cast<int32_t>(h->NumGroups(2)) - 1, 2),
            "[87-90]");
}

TEST(IntervalHierarchyTest, LevelsNest) {
  auto h = IntervalHierarchy::Create(AttributeDef::Numeric("Age", 17, 90),
                                     {1, 5, 10, 20, 40}, true);
  ASSERT_TRUE(h.ok());
  for (size_t level = 0; level + 1 < h->num_levels(); ++level) {
    for (int32_t a = 17; a <= 90; ++a) {
      for (int32_t b = 17; b <= 90; ++b) {
        if (h->GroupOf(a, level) == h->GroupOf(b, level)) {
          EXPECT_EQ(h->GroupOf(a, level + 1), h->GroupOf(b, level + 1))
              << "level " << level << " ages " << a << "," << b;
        }
      }
    }
  }
}

TEST(IntervalHierarchyTest, RejectsBadWidths) {
  const AttributeDef age = AttributeDef::Numeric("Age", 0, 99);
  EXPECT_FALSE(IntervalHierarchy::Create(age, {}, true).ok());
  EXPECT_FALSE(IntervalHierarchy::Create(age, {2, 4}, true).ok());   // no identity
  EXPECT_FALSE(IntervalHierarchy::Create(age, {1, 5, 7}, true).ok()); // 7 % 5
  EXPECT_FALSE(IntervalHierarchy::Create(age, {1, 5, 5}, true).ok()); // equal
  EXPECT_FALSE(
      IntervalHierarchy::Create(AttributeDef::Categorical("C", {"x"}), {1},
                                true)
          .ok());
}

TEST(TreeHierarchyTest, GroupsLabelsAndNesting) {
  const AttributeDef marital = AttributeDef::Categorical(
      "Marital", {"Married", "Divorced", "Widowed", "Single"});
  auto h = TreeHierarchy::Create(
      marital, {{{"Ever-married", {"Married", "Divorced", "Widowed"}},
                 {"Never-married", {"Single"}}},
                {{"*", {"Married", "Divorced", "Widowed", "Single"}}}});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_levels(), 3u);
  EXPECT_EQ(h->NumGroups(0), 4u);
  EXPECT_EQ(h->NumGroups(1), 2u);
  EXPECT_EQ(h->NumGroups(2), 1u);
  EXPECT_EQ(h->GroupOf(0, 1), h->GroupOf(1, 1));
  EXPECT_NE(h->GroupOf(0, 1), h->GroupOf(3, 1));
  EXPECT_EQ(h->GroupLabel(h->GroupOf(3, 1), 1), "Never-married");
  EXPECT_EQ(h->GroupLabel(0, 2), "*");
}

TEST(TreeHierarchyTest, RejectsIncompleteOrOverlappingLevels) {
  const AttributeDef attr =
      AttributeDef::Categorical("X", {"a", "b", "c"});
  // Missing "c".
  EXPECT_FALSE(
      TreeHierarchy::Create(attr, {{{"g", {"a", "b"}}}}).ok());
  // "a" twice.
  EXPECT_FALSE(TreeHierarchy::Create(
                   attr, {{{"g1", {"a", "b"}}, {"g2", {"a", "c"}}}})
                   .ok());
  // Unknown label.
  EXPECT_FALSE(
      TreeHierarchy::Create(attr, {{{"g", {"a", "b", "zzz"}}}}).ok());
  // Level 2 splits a level-1 group.
  EXPECT_FALSE(TreeHierarchy::Create(
                   attr, {{{"ab", {"a", "b"}}, {"c", {"c"}}},
                          {{"ac", {"a", "c"}}, {"b", {"b"}}}})
                   .ok());
}

TEST(TreeHierarchyTest, SuppressionOnly) {
  const TreeHierarchy h = TreeHierarchy::SuppressionOnly(
      AttributeDef::Categorical("Sex", {"M", "F"}));
  EXPECT_EQ(h.num_levels(), 2u);
  EXPECT_EQ(h.GroupOf(0, 1), h.GroupOf(1, 1));
  EXPECT_EQ(h.GroupLabel(0, 1), "*");
}

TEST(BucketizeAtNodeTest, HospitalSexSuppressionRecoversFigure3) {
  // Generalizing Zip and Age away and keeping Sex yields exactly the
  // Figure 2/3 buckets.
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};  // Zip
  auto age = IntervalHierarchy::Create(table.schema().attribute(1), {1}, true);
  ASSERT_TRUE(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};  // Sex

  auto b = BucketizeAtNode(table, qis, {1, 1, 0}, kHospitalSensitiveColumn);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->num_buckets(), 2u);
  EXPECT_EQ(b->bucket(0).histogram, (std::vector<uint32_t>{2, 2, 1, 0, 0, 0}));
  EXPECT_EQ(b->bucket(1).histogram, (std::vector<uint32_t>{2, 0, 0, 1, 1, 1}));
  EXPECT_EQ(b->bucket(0).qi_label, "*, *, M");

  // Fully suppressed: one bucket.
  auto top = BucketizeAtNode(table, qis, {1, 1, 1}, kHospitalSensitiveColumn);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->num_buckets(), 1u);
}

TEST(BucketizeAtNodeTest, ValidatesArityAndLevels) {
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(1);
  qis[0] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};
  EXPECT_FALSE(
      BucketizeAtNode(table, qis, {0, 1}, kHospitalSensitiveColumn).ok());
  EXPECT_FALSE(
      BucketizeAtNode(table, qis, {5}, kHospitalSensitiveColumn).ok());
}

}  // namespace
}  // namespace cksafe
