// Property tests for the paper's structural theorems:
//  * Theorem 14: coarsening a bucketization (merging buckets) never
//    increases maximum disclosure, for implications and negations alike.
//  * Lemma 10 spot check: replacing consequents by the target atom never
//    lowers disclosure, verified exhaustively on small instances.
//  * Saturation: disclosure reaches 1 once k can exhaust a bucket's values.

#include <gtest/gtest.h>

#include <algorithm>

#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;
using testing::RandomHistograms;

// Merges the given histogram list into a single-bucket histogram list.
std::vector<std::vector<uint32_t>> MergeAll(
    const std::vector<std::vector<uint32_t>>& histograms) {
  std::vector<uint32_t> merged(histograms[0].size(), 0);
  for (const auto& h : histograms) {
    for (size_t s = 0; s < h.size(); ++s) merged[s] += h[s];
  }
  return {merged};
}

// Merges adjacent pairs (a one-step coarsening in the refinement order).
std::vector<std::vector<uint32_t>> MergePairs(
    const std::vector<std::vector<uint32_t>>& histograms) {
  std::vector<std::vector<uint32_t>> out;
  for (size_t i = 0; i < histograms.size(); i += 2) {
    if (i + 1 < histograms.size()) {
      std::vector<uint32_t> merged(histograms[i].size(), 0);
      for (size_t s = 0; s < merged.size(); ++s) {
        merged[s] = histograms[i][s] + histograms[i + 1][s];
      }
      out.push_back(std::move(merged));
    } else {
      out.push_back(histograms[i]);
    }
  }
  return out;
}

struct MonotonicityCase {
  std::vector<std::vector<uint32_t>> histograms;
  size_t domain;
};

class MonotonicityPropertyTest
    : public ::testing::TestWithParam<MonotonicityCase> {};

TEST_P(MonotonicityPropertyTest, MergingBucketsNeverIncreasesDisclosure) {
  const MonotonicityCase& param = GetParam();
  auto fine = MakeBuckets(param.histograms, param.domain);
  auto pairs = MakeBuckets(MergePairs(param.histograms), param.domain);
  auto coarse = MakeBuckets(MergeAll(param.histograms), param.domain);

  DisclosureAnalyzer fine_a(fine.bucketization);
  DisclosureAnalyzer pairs_a(pairs.bucketization);
  DisclosureAnalyzer coarse_a(coarse.bucketization);
  for (size_t k = 0; k <= 4; ++k) {
    const double d_fine = fine_a.MaxDisclosureImplications(k).disclosure;
    const double d_pairs = pairs_a.MaxDisclosureImplications(k).disclosure;
    const double d_coarse = coarse_a.MaxDisclosureImplications(k).disclosure;
    EXPECT_LE(d_pairs, d_fine + 1e-12) << "k=" << k;
    EXPECT_LE(d_coarse, d_pairs + 1e-12) << "k=" << k;

    const double n_fine = fine_a.MaxDisclosureNegations(k).disclosure;
    const double n_pairs = pairs_a.MaxDisclosureNegations(k).disclosure;
    const double n_coarse = coarse_a.MaxDisclosureNegations(k).disclosure;
    EXPECT_LE(n_pairs, n_fine + 1e-12) << "k=" << k;
    EXPECT_LE(n_coarse, n_pairs + 1e-12) << "k=" << k;
  }
}

TEST_P(MonotonicityPropertyTest, DisclosureIsMonotoneInK) {
  const MonotonicityCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const std::vector<double> curve = analyzer.ImplicationCurve(6);
  for (size_t k = 1; k < curve.size(); ++k) {
    EXPECT_GE(curve[k] + 1e-12, curve[k - 1]) << "k=" << k;
  }
}

TEST_P(MonotonicityPropertyTest, ImplicationsDominateNegations) {
  const MonotonicityCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const std::vector<double> imp = analyzer.ImplicationCurve(6);
  const std::vector<double> neg = analyzer.NegationCurve(6);
  for (size_t k = 0; k < imp.size(); ++k) {
    EXPECT_GE(imp[k] + 1e-12, neg[k]) << "k=" << k;
  }
}

TEST_P(MonotonicityPropertyTest, SaturationAtMaxDistinctMinusOne) {
  const MonotonicityCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  size_t max_d = 0;
  for (const Bucket& b : fixture.bucketization.buckets()) {
    size_t d = 0;
    for (uint32_t c : b.histogram) {
      if (c > 0) ++d;
    }
    max_d = std::max(max_d, d);
  }
  DisclosureAnalyzer analyzer(fixture.bucketization);
  EXPECT_NEAR(analyzer.MaxDisclosureImplications(max_d - 1).disclosure, 1.0,
              kProbabilityEpsilon);
  EXPECT_NEAR(analyzer.MaxDisclosureNegations(max_d - 1).disclosure, 1.0,
              kProbabilityEpsilon);
}

TEST_P(MonotonicityPropertyTest, DisclosureBoundedByFrequencyRatioAndOne) {
  const MonotonicityCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  const double floor = fixture.bucketization.MaxFrequencyRatio();
  const std::vector<double> curve = analyzer.ImplicationCurve(5);
  for (size_t k = 0; k < curve.size(); ++k) {
    EXPECT_GE(curve[k] + 1e-12, floor) << "k=" << k;
    EXPECT_LE(curve[k], 1.0 + 1e-12) << "k=" << k;
  }
  EXPECT_NEAR(curve[0], floor, kProbabilityEpsilon);
}

std::vector<MonotonicityCase> MakeMonotonicityCases() {
  std::vector<MonotonicityCase> cases = {
      {{{2, 2, 1, 0}, {2, 1, 1, 1}}, 4},
      {{{3, 0, 0}, {0, 3, 0}, {0, 0, 3}}, 3},  // homogeneous buckets
      {{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}}, 3},
      {{{5, 1}, {1, 5}}, 2},
  };
  Rng rng(777);
  for (int i = 0; i < 8; ++i) {
    cases.push_back({RandomHistograms(&rng, 4, 4, 6), 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, MonotonicityPropertyTest,
    ::testing::ValuesIn(MakeMonotonicityCases()),
    [](const ::testing::TestParamInfo<MonotonicityCase>& param_info) {
      return "case" + std::to_string(param_info.index);
    });

// Lemma 10 exhaustively on a small instance: for every pair of simple
// implications and every target C, replacing both consequents by C does not
// lower Pr(C | ...).
TEST(Lemma10Test, ConsequentReplacementNeverLowersDisclosure) {
  auto fixture = MakeBuckets({{2, 1}, {1, 1}}, 2);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  const size_t atoms = engine->num_persons() * engine->domain_size();
  auto atom_at = [&](size_t i) {
    return Atom{static_cast<PersonId>(i / engine->domain_size()),
                static_cast<int32_t>(i % engine->domain_size())};
  };
  for (size_t a0 = 0; a0 < atoms; ++a0) {
    for (size_t b0 = 0; b0 < atoms; ++b0) {
      for (size_t c = 0; c < atoms; ++c) {
        KnowledgeFormula original;
        original.AddSimple(SimpleImplication{atom_at(a0), atom_at(b0)});
        KnowledgeFormula replaced;
        replaced.AddSimple(SimpleImplication{atom_at(a0), atom_at(c)});

        auto p_orig =
            engine->ConditionalProbability(atom_at(c), original);
        auto p_repl =
            engine->ConditionalProbability(atom_at(c), replaced);
        if (!p_orig.ok() || !p_repl.ok()) continue;  // inconsistent branch
        EXPECT_LE(*p_orig, *p_repl + 1e-12)
            << "a0=" << a0 << " b0=" << b0 << " c=" << c;
      }
    }
  }
}

}  // namespace
}  // namespace cksafe
