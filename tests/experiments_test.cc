// Experiment harness tests: the Figure 5 and Figure 6 drivers on a reduced
// synthetic Adult sample, checking the qualitative shapes the paper reports.

#include "cksafe/experiments/figures.h"

#include <gtest/gtest.h>

#include "cksafe/adult/adult.h"

namespace cksafe {
namespace {

class FiguresTest : public ::testing::Test {
 protected:
  FiguresTest() : table_(GenerateSyntheticAdult(4000, 3)) {
    auto qis = AdultQuasiIdentifiers();
    CKSAFE_CHECK(qis.ok());
    qis_ = *std::move(qis);
  }

  Table table_;
  std::vector<QuasiIdentifier> qis_;
};

TEST_F(FiguresTest, Figure5ShapeMatchesThePaper) {
  auto result = RunFigure5(table_, qis_, AdultFigure5Node(),
                           kAdultOccupationColumn, 13);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 14u);

  for (size_t k = 0; k < result->rows.size(); ++k) {
    const Fig5Row& row = result->rows[k];
    EXPECT_EQ(row.k, k);
    // Implications dominate negations ("the maximum disclosure for k
    // negated atoms is always smaller than ... for k implications").
    EXPECT_GE(row.implication + 1e-12, row.negation) << "k=" << k;
    // Both curves are monotone in k.
    if (k > 0) {
      EXPECT_GE(row.implication + 1e-12, result->rows[k - 1].implication);
      EXPECT_GE(row.negation + 1e-12, result->rows[k - 1].negation);
    }
  }
  // k = 0: both adversaries coincide with the frequency ratio.
  EXPECT_NEAR(result->rows[0].implication, result->rows[0].negation, 1e-12);
  // "maximum disclosure certainly reaches 1 at k = 13 because there are
  // only fourteen possible sensitive values."
  EXPECT_NEAR(result->rows[13].implication, 1.0, 1e-9);
  EXPECT_NEAR(result->rows[13].negation, 1.0, 1e-9);
  // At k = 0 the table is far from fully disclosing.
  EXPECT_LT(result->rows[0].implication, 0.9);
}

TEST_F(FiguresTest, Figure6ShapesMatchThePaper) {
  auto result = RunFigure6(table_, qis_, kAdultOccupationColumn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ks, (std::vector<size_t>{1, 3, 5, 7, 9, 11}));
  EXPECT_EQ(result->tables.size(), 72u);  // every lattice node

  // Tables are sorted by min-entropy; disclosure rows match k count.
  for (size_t i = 0; i < result->tables.size(); ++i) {
    const Fig6TableResult& t = result->tables[i];
    EXPECT_EQ(t.disclosure.size(), 6u);
    if (i > 0) {
      EXPECT_GE(t.min_entropy_nats + 1e-12,
                result->tables[i - 1].min_entropy_nats);
    }
    // For a fixed table, disclosure grows with k.
    for (size_t j = 1; j < t.disclosure.size(); ++j) {
      EXPECT_GE(t.disclosure[j] + 1e-12, t.disclosure[j - 1]);
    }
  }

  // The aggregated series: per k, the min worst-case disclosure per
  // entropy value; larger k series dominate smaller k pointwise.
  const auto series_k1 = AggregateFig6Series(*result, 0);
  const auto series_k11 = AggregateFig6Series(*result, 5);
  ASSERT_EQ(series_k1.size(), series_k11.size());
  for (size_t i = 0; i < series_k1.size(); ++i) {
    EXPECT_GE(series_k11[i].min_disclosure + 1e-12,
              series_k1[i].min_disclosure);
    if (i > 0) {
      EXPECT_GT(series_k1[i].entropy, series_k1[i - 1].entropy);
    }
  }
}

TEST_F(FiguresTest, Figure6NegationAnalogBehavesLikeThePaperSays) {
  // "We plotted an analogous graph ... for negation statements and observed
  // very similar behavior": negation disclosure is dominated by the
  // implication disclosure per table and per k, and saturates identically.
  auto result = RunFigure6(table_, qis_, kAdultOccupationColumn);
  ASSERT_TRUE(result.ok());
  for (const Fig6TableResult& t : result->tables) {
    ASSERT_EQ(t.negation_disclosure.size(), t.disclosure.size());
    for (size_t i = 0; i < t.disclosure.size(); ++i) {
      EXPECT_LE(t.negation_disclosure[i], t.disclosure[i] + 1e-12);
    }
  }
  const auto neg_k1 = AggregateFig6Series(*result, 0, 1e-6, true);
  const auto imp_k1 = AggregateFig6Series(*result, 0, 1e-6, false);
  ASSERT_EQ(neg_k1.size(), imp_k1.size());
  // Trend at the extremes, as for implications.
  EXPECT_LT(neg_k1.back().min_disclosure,
            neg_k1.front().min_disclosure + 1e-12);
}

TEST_F(FiguresTest, Figure6HighEntropyTablesDiscloseLess) {
  // The qualitative claim of Figure 6: "disclosure risk monotonically
  // decreases with increase in h". With finite data this holds as a trend;
  // we assert it between the extremes of the aggregated k=1 series.
  auto result = RunFigure6(table_, qis_, kAdultOccupationColumn);
  ASSERT_TRUE(result.ok());
  const auto series = AggregateFig6Series(*result, 0);
  ASSERT_GE(series.size(), 2u);
  const Fig6SeriesPoint& lowest = series.front();
  const Fig6SeriesPoint& highest = series.back();
  EXPECT_LT(highest.min_disclosure, lowest.min_disclosure + 1e-12);
}

TEST_F(FiguresTest, Figure5RejectsBadNode) {
  auto result = RunFigure5(table_, qis_, LatticeNode{9, 9, 9, 9},
                           kAdultOccupationColumn, 3);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace cksafe
