// ThreadPool and ParallelFor tests: task completion, Wait() semantics,
// batch completion on shared pools, and the serial fallback.

#include "cksafe/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace cksafe {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversInFlightTasksNotJustTheQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      // Long enough that Wait() is reached while tasks are mid-flight.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ParallelForTest, VisitsEachIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  // With no pool the iterations run in order on the calling thread, so a
  // non-atomic accumulator is race-free by construction.
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [&](size_t) { FAIL() << "must not be called"; });
  ParallelFor(nullptr, 0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(&pool, 100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ParallelForTest, ConcurrentBatchesOnASharedPoolStayIndependent) {
  // Two caller threads share one pool; each batch must wait only for its
  // own iterations and still complete all of them.
  ThreadPool pool(4);
  std::atomic<size_t> sum_a{0};
  std::atomic<size_t> sum_b{0};
  std::thread other([&] {
    ParallelFor(&pool, 500, [&](size_t i) { sum_b.fetch_add(i + 1); });
  });
  ParallelFor(&pool, 500, [&](size_t i) { sum_a.fetch_add(i + 1); });
  other.join();
  EXPECT_EQ(sum_a.load(), 125250u);
  EXPECT_EQ(sum_b.load(), 125250u);
}

}  // namespace
}  // namespace cksafe
