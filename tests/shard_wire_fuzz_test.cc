// shard/wire.h fuzz: every message type must round-trip bit-identically
// through encode -> frame -> decode under seeded random contents, and no
// hostile byte stream — truncated, bit-flipped, oversized, or plain random
// — may ever do worse than return a Status. The decoders run against
// adversarial input from other processes, so "never crash" here is the
// fleet's memory-safety contract (this test is part of the ASan CI wall).

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cksafe/serve/release_snapshot.h"
#include "cksafe/shard/wire.h"
#include "cksafe/util/random.h"
#include "cksafe/util/socket.h"
#include "shard_testing_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::RandomSnapshot;
using testing::SeedTrace;
using testing::TestIters;
using testing::TestSeed;

constexpr WireType kAllTypes[] = {
    WireType::kQueryRequest,   WireType::kQueryResponse,
    WireType::kPublishRequest, WireType::kPublishResponse,
    WireType::kHandoffRequest, WireType::kHandoffResponse,
    WireType::kDropRequest,    WireType::kDropResponse,
    WireType::kPingRequest,    WireType::kPingResponse,
    WireType::kShutdownRequest, WireType::kShutdownResponse,
};

std::vector<uint8_t> RandomBytes(Rng* rng, size_t size) {
  std::vector<uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->NextBelow(256));
  return bytes;
}

std::string RandomTenant(Rng* rng) {
  const size_t len = 1 + rng->NextBelow(11);  // decoders reject ""
  std::string tenant;
  for (size_t i = 0; i < len; ++i) {
    tenant.push_back(static_cast<char>('a' + rng->NextBelow(26)));
  }
  return tenant;
}

Status RandomStatus(Rng* rng) {
  const std::string msg = RandomTenant(rng);
  switch (rng->NextBelow(6)) {
    case 0: return Status::OK();
    case 1: return Status::InvalidArgument(msg);
    case 2: return Status::NotFound(msg);
    case 3: return Status::ResourceExhausted(msg);
    case 4: return Status::Unavailable(msg);
    default: return Status::Internal(msg);
  }
}

bool StatusEq(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Exact double equality via bit patterns — the doubles travel as raw
/// IEEE-754 bits, so even a NaN would have to survive verbatim.
bool BitsEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

QueryAnswer RandomAnswer(Rng* rng) {
  QueryAnswer answer;
  answer.snapshot_sequence = rng->NextUint64();
  answer.safe = rng->NextBelow(2) == 0;
  answer.disclosure = rng->NextDouble();
  answer.negation = rng->NextDouble();
  answer.log_r = rng->NextDouble() * 100.0 - 50.0;
  return answer;
}

TEST(ShardWireFuzzTest, FrameRoundTripsRandomPayloadsForEveryType) {
  const uint64_t seed = testing::TestSeed(20260801);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(200);
  for (size_t i = 0; i < iters; ++i) {
    for (const WireType type : kAllTypes) {
      const std::vector<uint8_t> payload =
          RandomBytes(&rng, rng.NextBelow(512));
      const std::vector<uint8_t> buffer = EncodeFrame(type, payload);
      ASSERT_EQ(buffer.size(), kWireHeaderSize + payload.size());
      const auto frame = DecodeFrame(buffer);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      EXPECT_EQ(frame->type, type);
      EXPECT_EQ(frame->payload, payload);
    }
  }
}

TEST(ShardWireFuzzTest, QueryMessagesRoundTrip) {
  const uint64_t seed = testing::TestSeed(20260802);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(300);
  for (size_t i = 0; i < iters; ++i) {
    WireQueryRequest req;
    req.id = rng.NextUint64();
    req.query = testing::RandomQuery(&rng, RandomTenant(&rng));
    const auto req2 = DecodeQueryRequest(EncodeQueryRequest(req));
    ASSERT_TRUE(req2.ok()) << req2.status().ToString();
    EXPECT_EQ(req2->id, req.id);
    EXPECT_EQ(req2->query.tenant, req.query.tenant);
    EXPECT_EQ(req2->query.kind, req.query.kind);
    EXPECT_TRUE(BitsEq(req2->query.c, req.query.c));
    EXPECT_EQ(req2->query.k, req.query.k);
    EXPECT_EQ(req2->query.bucket, req.query.bucket);

    WireQueryResponse resp;
    resp.id = rng.NextUint64();
    resp.status = RandomStatus(&rng);
    resp.answer = RandomAnswer(&rng);
    const auto resp2 = DecodeQueryResponse(EncodeQueryResponse(resp));
    ASSERT_TRUE(resp2.ok()) << resp2.status().ToString();
    EXPECT_EQ(resp2->id, resp.id);
    EXPECT_TRUE(StatusEq(resp2->status, resp.status));
    EXPECT_EQ(resp2->answer.snapshot_sequence, resp.answer.snapshot_sequence);
    EXPECT_EQ(resp2->answer.safe, resp.answer.safe);
    EXPECT_TRUE(BitsEq(resp2->answer.disclosure, resp.answer.disclosure));
    EXPECT_TRUE(BitsEq(resp2->answer.negation, resp.answer.negation));
    EXPECT_TRUE(BitsEq(resp2->answer.log_r, resp.answer.log_r));
  }
}

TEST(ShardWireFuzzTest, SnapshotCarryingMessagesRoundTripBitIdentically) {
  const uint64_t seed = testing::TestSeed(20260803);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(60);
  for (size_t i = 0; i < iters; ++i) {
    WirePublishRequest pub;
    pub.id = rng.NextUint64();
    pub.tenant = RandomTenant(&rng);
    pub.snapshot = RandomSnapshot(&rng, 1 + rng.NextBelow(1000),
                                  1 + rng.NextBelow(4), 2 + rng.NextBelow(3));
    const auto pub2 = DecodePublishRequest(EncodePublishRequest(pub));
    ASSERT_TRUE(pub2.ok()) << pub2.status().ToString();
    EXPECT_EQ(pub2->id, pub.id);
    EXPECT_EQ(pub2->tenant, pub.tenant);
    ASSERT_NE(pub2->snapshot, nullptr);
    EXPECT_TRUE(SnapshotsBitIdentical(*pub2->snapshot, *pub.snapshot));

    WireHandoffResponse handoff;
    handoff.id = rng.NextUint64();
    handoff.status = RandomStatus(&rng);
    const size_t count = rng.NextBelow(4);
    for (size_t s = 0; s < count; ++s) {
      handoff.snapshots.push_back(
          RandomSnapshot(&rng, s + 1, 1 + rng.NextBelow(3)));
    }
    const auto handoff2 = DecodeHandoffResponse(EncodeHandoffResponse(handoff));
    ASSERT_TRUE(handoff2.ok()) << handoff2.status().ToString();
    EXPECT_EQ(handoff2->id, handoff.id);
    EXPECT_TRUE(StatusEq(handoff2->status, handoff.status));
    ASSERT_EQ(handoff2->snapshots.size(), handoff.snapshots.size());
    for (size_t s = 0; s < count; ++s) {
      EXPECT_TRUE(
          SnapshotsBitIdentical(*handoff2->snapshots[s], *handoff.snapshots[s]));
    }
  }
}

TEST(ShardWireFuzzTest, ControlMessagesRoundTrip) {
  const uint64_t seed = testing::TestSeed(20260804);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(300);
  for (size_t i = 0; i < iters; ++i) {
    WirePublishResponse pub;
    pub.id = rng.NextUint64();
    pub.status = RandomStatus(&rng);
    pub.sequence = rng.NextUint64();
    const auto pub2 = DecodePublishResponse(EncodePublishResponse(pub));
    ASSERT_TRUE(pub2.ok());
    EXPECT_EQ(pub2->id, pub.id);
    EXPECT_TRUE(StatusEq(pub2->status, pub.status));
    EXPECT_EQ(pub2->sequence, pub.sequence);

    WireHandoffRequest handoff;
    handoff.id = rng.NextUint64();
    handoff.tenant = RandomTenant(&rng);
    const auto handoff2 = DecodeHandoffRequest(EncodeHandoffRequest(handoff));
    ASSERT_TRUE(handoff2.ok());
    EXPECT_EQ(handoff2->id, handoff.id);
    EXPECT_EQ(handoff2->tenant, handoff.tenant);

    WireDropRequest drop;
    drop.id = rng.NextUint64();
    drop.tenant = RandomTenant(&rng);
    const auto drop2 = DecodeDropRequest(EncodeDropRequest(drop));
    ASSERT_TRUE(drop2.ok());
    EXPECT_EQ(drop2->id, drop.id);
    EXPECT_EQ(drop2->tenant, drop.tenant);

    WireDropResponse dropr;
    dropr.id = rng.NextUint64();
    dropr.status = RandomStatus(&rng);
    const auto dropr2 = DecodeDropResponse(EncodeDropResponse(dropr));
    ASSERT_TRUE(dropr2.ok());
    EXPECT_EQ(dropr2->id, dropr.id);
    EXPECT_TRUE(StatusEq(dropr2->status, dropr.status));

    WirePingRequest ping;
    ping.id = rng.NextUint64();
    const auto ping2 = DecodePingRequest(EncodePingRequest(ping));
    ASSERT_TRUE(ping2.ok());
    EXPECT_EQ(ping2->id, ping.id);

    WirePingResponse pong;
    pong.id = rng.NextUint64();
    pong.status = RandomStatus(&rng);
    pong.stats.submitted = rng.NextUint64();
    pong.stats.rejected = rng.NextUint64();
    pong.stats.answered = rng.NextUint64();
    pong.stats.batches = rng.NextUint64();
    pong.stats.profile_sweeps = rng.NextUint64();
    pong.stats.per_bucket_sweeps = rng.NextUint64();
    pong.stats.snapshot_reloads = rng.NextUint64();
    pong.stats.publishes = rng.NextUint64();
    pong.stats.tenants = rng.NextUint64();
    const auto pong2 = DecodePingResponse(EncodePingResponse(pong));
    ASSERT_TRUE(pong2.ok());
    EXPECT_EQ(pong2->id, pong.id);
    EXPECT_TRUE(StatusEq(pong2->status, pong.status));
    EXPECT_EQ(pong2->stats.submitted, pong.stats.submitted);
    EXPECT_EQ(pong2->stats.rejected, pong.stats.rejected);
    EXPECT_EQ(pong2->stats.answered, pong.stats.answered);
    EXPECT_EQ(pong2->stats.batches, pong.stats.batches);
    EXPECT_EQ(pong2->stats.profile_sweeps, pong.stats.profile_sweeps);
    EXPECT_EQ(pong2->stats.per_bucket_sweeps, pong.stats.per_bucket_sweeps);
    EXPECT_EQ(pong2->stats.snapshot_reloads, pong.stats.snapshot_reloads);
    EXPECT_EQ(pong2->stats.publishes, pong.stats.publishes);
    EXPECT_EQ(pong2->stats.tenants, pong.stats.tenants);

    WireShutdownRequest down;
    down.id = rng.NextUint64();
    const auto down2 = DecodeShutdownRequest(EncodeShutdownRequest(down));
    ASSERT_TRUE(down2.ok());
    EXPECT_EQ(down2->id, down.id);

    WireShutdownResponse downr;
    downr.id = rng.NextUint64();
    downr.status = RandomStatus(&rng);
    const auto downr2 = DecodeShutdownResponse(EncodeShutdownResponse(downr));
    ASSERT_TRUE(downr2.ok());
    EXPECT_EQ(downr2->id, downr.id);
    EXPECT_TRUE(StatusEq(downr2->status, downr.status));
  }
}

TEST(ShardWireFuzzTest, EveryTruncationOfAValidFrameIsRejected) {
  const uint64_t seed = testing::TestSeed(20260805);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  WirePublishRequest pub;
  pub.id = rng.NextUint64();
  pub.tenant = "gold";
  pub.snapshot = RandomSnapshot(&rng, 7);
  const std::vector<uint8_t> buffer =
      EncodeFrame(WireType::kPublishRequest, EncodePublishRequest(pub));
  for (size_t len = 0; len < buffer.size(); ++len) {
    const std::vector<uint8_t> prefix(buffer.begin(), buffer.begin() + len);
    EXPECT_FALSE(DecodeFrame(prefix).ok()) << "prefix of " << len << " bytes";
  }
}

TEST(ShardWireFuzzTest, BitFlippedFramesAreRejected) {
  const uint64_t seed = testing::TestSeed(20260806);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(400);
  WireQueryRequest req;
  req.id = 42;
  req.query = testing::RandomQuery(&rng, "std");
  const std::vector<uint8_t> clean =
      EncodeFrame(WireType::kQueryRequest, EncodeQueryRequest(req));
  ASSERT_TRUE(DecodeFrame(clean).ok());
  for (size_t i = 0; i < iters; ++i) {
    std::vector<uint8_t> mutant = clean;
    const size_t flips = 1 + rng.NextBelow(8);
    for (size_t f = 0; f < flips; ++f) {
      const size_t bit = rng.NextBelow(mutant.size() * 8);
      mutant[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    // The checksum covers header[0..12) and the whole payload, so any
    // corruption must surface as a Status (seeded: deterministic verdict).
    const auto frame = DecodeFrame(mutant);
    if (mutant != clean) {
      EXPECT_FALSE(frame.ok()) << "flips=" << flips << " iter=" << i;
    }
  }
}

TEST(ShardWireFuzzTest, CorruptHeadersAreRejected) {
  WirePingRequest ping;
  ping.id = 9;
  const std::vector<uint8_t> clean =
      EncodeFrame(WireType::kPingRequest, EncodePingRequest(ping));

  std::vector<uint8_t> bad_magic = clean;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrame(bad_magic).ok());

  std::vector<uint8_t> bad_version = clean;
  bad_version[4] = kWireVersion + 1;
  EXPECT_FALSE(DecodeFrame(bad_version).ok());

  std::vector<uint8_t> bad_type = clean;
  bad_type[5] = 0;  // below every WireType
  EXPECT_FALSE(DecodeFrame(bad_type).ok());
  bad_type[5] = 13;  // above every WireType
  EXPECT_FALSE(DecodeFrame(bad_type).ok());

  std::vector<uint8_t> bad_reserved = clean;
  bad_reserved[6] = 0x5A;
  EXPECT_FALSE(DecodeFrame(bad_reserved).ok());

  std::vector<uint8_t> bad_length = clean;
  bad_length[8] ^= 0x01;  // payload_len no longer matches the buffer
  EXPECT_FALSE(DecodeFrame(bad_length).ok());
}

TEST(ShardWireFuzzTest, OversizedDeclaredPayloadIsRejectedWithoutAllocating) {
  // Frame whose header claims kMaxWirePayload + 1 bytes. DecodeFrame must
  // reject it, and RecvFrame must reject it from the length field alone —
  // before trusting it enough to allocate 256 MiB.
  std::vector<uint8_t> hostile(kWireHeaderSize, 0);
  hostile[0] = 0x43; hostile[1] = 0x4B; hostile[2] = 0x57; hostile[3] = 0x46;
  hostile[4] = kWireVersion;
  hostile[5] = static_cast<uint8_t>(WireType::kPingRequest);
  const uint32_t huge = kMaxWirePayload + 1;
  std::memcpy(&hostile[8], &huge, sizeof(huge));
  EXPECT_FALSE(DecodeFrame(hostile).ok());

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  UnixSocket sender(fds[0]);
  UnixSocket receiver(fds[1]);
  ASSERT_TRUE(sender.SendAll(hostile).ok());
  sender.Shutdown();
  const auto frame = RecvFrame(&receiver);
  EXPECT_FALSE(frame.ok());
}

TEST(ShardWireFuzzTest, RandomHostilePayloadsNeverCrashAnyDecoder) {
  const uint64_t seed = testing::TestSeed(20260807);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t iters = TestIters(2000);
  for (size_t i = 0; i < iters; ++i) {
    const std::vector<uint8_t> payload =
        RandomBytes(&rng, rng.NextBelow(256));
    // Each decoder either parses it or returns a reasoned Status;
    // crashing or allocating absurdly (ASan/OOM would catch both) fails
    // the test, and a rejection must carry a diagnosable message.
    const auto check = [&](const auto& result) {
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty())
            << "rejection with no diagnostic";
      }
    };
    check(DecodeQueryRequest(payload));
    check(DecodeQueryResponse(payload));
    check(DecodePublishRequest(payload));
    check(DecodePublishResponse(payload));
    check(DecodeHandoffRequest(payload));
    check(DecodeHandoffResponse(payload));
    check(DecodeDropRequest(payload));
    check(DecodeDropResponse(payload));
    check(DecodePingRequest(payload));
    check(DecodePingResponse(payload));
    check(DecodeShutdownRequest(payload));
    check(DecodeShutdownResponse(payload));
  }
}

TEST(ShardWireFuzzTest, TruncatedSnapshotPayloadsNeverCrash) {
  const uint64_t seed = testing::TestSeed(20260808);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  WirePublishRequest pub;
  pub.id = 1;
  pub.tenant = "gold";
  pub.snapshot = RandomSnapshot(&rng, 3, 4, 3);
  const std::vector<uint8_t> payload = EncodePublishRequest(pub);
  // Every prefix: either a clean parse (impossible for strict lengths) or
  // a Status — never a crash or an over-read.
  for (size_t len = 0; len < payload.size(); ++len) {
    const std::vector<uint8_t> prefix(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(DecodePublishRequest(prefix).ok())
        << "prefix of " << len << " bytes parsed";
  }
}

}  // namespace
}  // namespace cksafe
