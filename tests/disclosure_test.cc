// DisclosureAnalyzer tests: the MINIMIZE2 pipeline against the exact
// engine's brute-force maxima, witness re-scoring, the paper's worked
// numbers, and the negated-atom adversary.

#include "cksafe/core/disclosure.h"

#include <gtest/gtest.h>

#include "cksafe/exact/exact_engine.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;
using testing::MakeHospitalBucketization;
using testing::MakeHospitalTable;
using testing::RandomHistograms;

TEST(DisclosureTest, HospitalKZeroIsFrequencyRatio) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  const WorstCaseDisclosure result = analyzer.MaxDisclosureImplications(0);
  EXPECT_NEAR(result.disclosure, 2.0 / 5.0, kProbabilityEpsilon);
  EXPECT_TRUE(result.antecedents.empty());
}

TEST(DisclosureTest, HospitalKOneIsTwoThirds) {
  // The algorithmic maximum over L^1_basic is 2/3 (self-implication
  // equivalent to "Ed does not have lung cancer"), not the 10/19 the prose
  // of Section 2.3 quotes — see DESIGN.md.
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  const WorstCaseDisclosure result = analyzer.MaxDisclosureImplications(1);
  EXPECT_NEAR(result.disclosure, 2.0 / 3.0, kProbabilityEpsilon);
  ASSERT_EQ(result.antecedents.size(), 1u);
  // Witness is within one bucket: same person, most frequent target value.
  EXPECT_EQ(result.antecedents[0].person, result.target.person);
}

TEST(DisclosureTest, HospitalKTwoIsCertainDisclosure) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  EXPECT_NEAR(analyzer.MaxDisclosureImplications(2).disclosure, 1.0,
              kProbabilityEpsilon);
}

TEST(DisclosureTest, SkewedBucketBeatsNegationAdversary) {
  // Bucket {2,1,1,1}: at k=2 implications reach 4/5 while negations only
  // reach 2/3 — the separation the paper's Figure 5 shows.
  auto fixture = MakeBuckets({{2, 1, 1, 1}}, 4);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  EXPECT_NEAR(analyzer.MaxDisclosureImplications(2).disclosure, 4.0 / 5.0,
              kProbabilityEpsilon);
  EXPECT_NEAR(analyzer.MaxDisclosureNegations(2).disclosure, 2.0 / 3.0,
              kProbabilityEpsilon);
}

TEST(DisclosureTest, WitnessFormulaRescoresToSameDisclosure) {
  // The reconstructed worst-case formula, fed back through the exact
  // engine, must reproduce the DP's disclosure value exactly.
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  auto engine = ExactEngine::Create(b);
  ASSERT_TRUE(engine.ok());
  for (size_t k = 0; k <= 4; ++k) {
    const WorstCaseDisclosure result = analyzer.MaxDisclosureImplications(k);
    auto p = engine->ConditionalProbability(result.target, result.ToFormula());
    ASSERT_TRUE(p.ok()) << "k=" << k;
    EXPECT_NEAR(*p, result.disclosure, 1e-9) << "k=" << k;
  }
}

TEST(DisclosureTest, NegationWitnessRescoresToSameDisclosure) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  auto engine = ExactEngine::Create(b);
  ASSERT_TRUE(engine.ok());
  for (size_t k = 0; k <= 4; ++k) {
    const WorstCaseDisclosure result = analyzer.MaxDisclosureNegations(k);
    auto p = engine->ConditionalProbability(result.target, result.ToFormula());
    ASSERT_TRUE(p.ok()) << "k=" << k;
    EXPECT_NEAR(*p, result.disclosure, 1e-9) << "k=" << k;
  }
}

TEST(DisclosureTest, CurvesAreMonotoneAndOrdered) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  const std::vector<double> imp = analyzer.ImplicationCurve(5);
  const std::vector<double> neg = analyzer.NegationCurve(5);
  ASSERT_EQ(imp.size(), 6u);
  ASSERT_EQ(neg.size(), 6u);
  EXPECT_NEAR(imp[0], neg[0], kProbabilityEpsilon);
  for (size_t k = 0; k <= 5; ++k) {
    if (k > 0) {
      EXPECT_GE(imp[k] + 1e-12, imp[k - 1]) << "k=" << k;
      EXPECT_GE(neg[k] + 1e-12, neg[k - 1]) << "k=" << k;
    }
    // Implications subsume negations (Section 2.2).
    EXPECT_GE(imp[k] + 1e-12, neg[k]) << "k=" << k;
    EXPECT_LE(imp[k], 1.0 + 1e-12);
  }
}

TEST(DisclosureTest, SaturatesAtDistinctValuesMinusOne) {
  // A bucket with d distinct values is fully disclosed by d-1 negations.
  auto fixture = MakeBuckets({{3, 2, 2, 1}}, 4);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  EXPECT_LT(analyzer.MaxDisclosureImplications(2).disclosure, 1.0);
  EXPECT_NEAR(analyzer.MaxDisclosureImplications(3).disclosure, 1.0,
              kProbabilityEpsilon);
  EXPECT_NEAR(analyzer.MaxDisclosureNegations(3).disclosure, 1.0,
              kProbabilityEpsilon);
}

TEST(DisclosureTest, CkSafetyThresholdIsStrict) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(b);
  // Max disclosure at k=1 is exactly 2/3.
  EXPECT_TRUE(analyzer.IsCkSafe(2.0 / 3.0 + 1e-9, 1));
  EXPECT_FALSE(analyzer.IsCkSafe(2.0 / 3.0, 1));  // strict "<"
  EXPECT_FALSE(analyzer.IsCkSafe(0.5, 1));
}

TEST(DisclosureTest, CacheSharesTablesAcrossEqualHistograms) {
  // Two buckets with identical count multisets share one MINIMIZE1 table.
  auto fixture = MakeBuckets({{2, 1, 0}, {0, 2, 1}, {1, 1, 1}}, 3);
  DisclosureCache cache;
  DisclosureAnalyzer analyzer(fixture.bucketization, &cache);
  analyzer.MaxDisclosureImplications(2);
  EXPECT_EQ(cache.entries(), 2u);  // {2,1} shared, {1,1,1} separate
  EXPECT_GT(cache.hits(), 0u);
}

// --- Property sweep: DP equals brute force over random bucketizations ---

struct DisclosureCase {
  std::vector<std::vector<uint32_t>> histograms;
  size_t domain;
  size_t max_k;
};

class DisclosurePropertyTest
    : public ::testing::TestWithParam<DisclosureCase> {};

TEST_P(DisclosurePropertyTest, MatchesBruteForceSimpleImplications) {
  const DisclosureCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  DisclosureAnalyzer analyzer(fixture.bucketization);
  for (size_t k = 0; k <= param.max_k; ++k) {
    const WorstCaseDisclosure dp = analyzer.MaxDisclosureImplications(k);
    auto brute =
        engine->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_NEAR(dp.disclosure, brute->disclosure, 1e-9) << "k=" << k;
  }
}

TEST_P(DisclosurePropertyTest, MatchesBruteForceNegations) {
  const DisclosureCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  DisclosureAnalyzer analyzer(fixture.bucketization);
  for (size_t k = 0; k <= param.max_k; ++k) {
    const WorstCaseDisclosure dp = analyzer.MaxDisclosureNegations(k);
    auto brute = engine->MaxDisclosureNegations(k);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_NEAR(dp.disclosure, brute->disclosure, 1e-9) << "k=" << k;
  }
}

TEST_P(DisclosurePropertyTest, WitnessRescoresOnRandomInstances) {
  const DisclosureCase& param = GetParam();
  auto fixture = MakeBuckets(param.histograms, param.domain);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());
  DisclosureAnalyzer analyzer(fixture.bucketization);
  for (size_t k = 0; k <= param.max_k; ++k) {
    const WorstCaseDisclosure dp = analyzer.MaxDisclosureImplications(k);
    auto p = engine->ConditionalProbability(dp.target, dp.ToFormula());
    ASSERT_TRUE(p.ok()) << "k=" << k;
    EXPECT_NEAR(*p, dp.disclosure, 1e-9) << "k=" << k;
  }
}

std::vector<DisclosureCase> MakeDisclosureCases() {
  std::vector<DisclosureCase> cases = {
      {{{2, 2, 1}, {2, 1, 1}}, 3, 3},        // two-bucket hospital-like
      {{{2, 1, 1, 1}}, 4, 3},                // skewed single bucket
      {{{3, 1}, {1, 3}}, 2, 2},              // mirrored skew
      {{{1, 1}, {1, 1}, {1, 1}}, 2, 3},      // many tiny buckets
      {{{4, 1, 0}, {0, 1, 2}}, 3, 2},        // absent values
  };
  Rng rng(99);
  for (int i = 0; i < 4; ++i) {
    cases.push_back({RandomHistograms(&rng, 2, 3, 4), 3, 2});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomBucketizations, DisclosurePropertyTest,
    ::testing::ValuesIn(MakeDisclosureCases()),
    [](const ::testing::TestParamInfo<DisclosureCase>& param_info) {
      return "case" + std::to_string(param_info.index);
    });

}  // namespace
}  // namespace cksafe
