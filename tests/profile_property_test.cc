// Property tests for one-sweep disclosure profiles.
//
// On random histograms: (a) both curves are nondecreasing in k (the
// monotone-in-k half of the double monotonicity Theorem 14's lattice half
// pairs with); (b) element k matches the per-k point queries
// MaxDisclosureImplications / MaxDisclosureNegations to 1e-12 — in fact
// the implication curve is asserted bit-identical, since column k of the
// shared DP runs the same float ops as a dedicated budget-k sweep; and
// (c) for tiny tables the curve matches the exact world-enumeration
// oracle for k <= 2.

#include <gtest/gtest.h>

#include <vector>

#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

constexpr double kTol = 1e-12;

TEST(ProfilePropertyTest, CurvesAreNondecreasingInK) {
  const uint64_t seed = testing::TestSeed(20260726);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(30);
  for (size_t trial = 0; trial < trials; ++trial) {
    const size_t domain = 2 + rng.NextBelow(5);
    const auto buckets = testing::MakeBuckets(
        testing::RandomHistograms(&rng, 1 + rng.NextBelow(6), domain, 8),
        domain);
    DisclosureAnalyzer analyzer(buckets.bucketization);
    const DisclosureProfile profile = analyzer.Profile(6);
    ASSERT_EQ(profile.max_k(), 6u);
    for (size_t k = 1; k <= profile.max_k(); ++k) {
      EXPECT_GE(profile.implication[k], profile.implication[k - 1])
          << "trial " << trial << " k=" << k;
      EXPECT_GE(profile.negation[k], profile.negation[k - 1])
          << "trial " << trial << " k=" << k;
    }
    // Disclosure is a probability; k = 0 is the no-knowledge posterior.
    EXPECT_GT(profile.implication[0], 0.0);
    EXPECT_LE(profile.implication.back(), 1.0 + kTol);
  }
}

TEST(ProfilePropertyTest, ProfileMatchesPerKPointQueries) {
  const uint64_t seed = testing::TestSeed(7);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(20);
  for (size_t trial = 0; trial < trials; ++trial) {
    const size_t domain = 2 + rng.NextBelow(4);
    const auto buckets = testing::MakeBuckets(
        testing::RandomHistograms(&rng, 1 + rng.NextBelow(5), domain, 7),
        domain);
    DisclosureAnalyzer analyzer(buckets.bucketization);
    const DisclosureProfile profile = analyzer.Profile(5);
    for (size_t k = 0; k <= profile.max_k(); ++k) {
      // Bit-identical, which trivially satisfies the 1e-12 contract: the
      // point query's dedicated sweep recomputes exactly column k.
      EXPECT_EQ(profile.implication[k],
                analyzer.MaxDisclosureImplications(k).disclosure)
          << "trial " << trial << " k=" << k;
      EXPECT_EQ(profile.negation[k],
                analyzer.MaxDisclosureNegations(k).disclosure)
          << "trial " << trial << " k=" << k;
      EXPECT_EQ(profile.IsCkSafe(0.6, k), analyzer.IsCkSafe(0.6, k));
    }
    // And the view APIs are the same curves.
    EXPECT_EQ(analyzer.ImplicationCurve(profile.max_k()),
              profile.implication);
    EXPECT_EQ(analyzer.NegationCurve(profile.max_k()), profile.negation);
  }
}

TEST(ProfilePropertyTest, ProfileMatchesExactOracleForSmallK) {
  const uint64_t seed = testing::TestSeed(77);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(8);
  for (size_t trial = 0; trial < trials; ++trial) {
    const size_t domain = 2 + rng.NextBelow(2);
    const auto buckets = testing::MakeBuckets(
        testing::RandomHistograms(&rng, 1 + rng.NextBelow(3), domain, 3),
        domain);
    if (buckets.table.num_rows() > 8) continue;  // keep worlds enumerable
    auto engine = ExactEngine::Create(buckets.bucketization);
    ASSERT_TRUE(engine.ok()) << engine.status();
    DisclosureAnalyzer analyzer(buckets.bucketization);
    const DisclosureProfile profile = analyzer.Profile(2);
    for (size_t k = 0; k <= 2; ++k) {
      auto brute = engine->MaxDisclosureSimpleImplications(
          k, /*same_consequent=*/true);
      ASSERT_TRUE(brute.ok()) << brute.status();
      EXPECT_NEAR(profile.implication[k], brute->disclosure, 1e-9)
          << "trial " << trial << " k=" << k;
      // The negation oracle legitimately reports "no consistent negation
      // set" on degenerate histograms (fewer than k + 1 realizable
      // values); compare only where it has an answer.
      auto brute_neg = engine->MaxDisclosureNegations(k);
      if (brute_neg.ok()) {
        EXPECT_NEAR(profile.negation[k], brute_neg->disclosure, 1e-9)
            << "trial " << trial << " k=" << k;
      }
    }
  }
}

TEST(ProfilePropertyTest, HospitalFixtureProfile) {
  // The paper's running example (Figure 3 numbers): spot anchor so the
  // random trials cannot all silently degenerate.
  const Table table = testing::MakeHospitalTable();
  const Bucketization bucketization =
      testing::MakeHospitalBucketization(table);
  DisclosureAnalyzer analyzer(bucketization);
  const DisclosureProfile profile = analyzer.Profile(4);
  EXPECT_NEAR(profile.implication[0], 0.4, kTol);
  for (size_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(profile.implication[k],
              analyzer.MaxDisclosureImplications(k).disclosure);
  }
  // At k = 4 an attacker can pin one male bucket member to flu.
  EXPECT_NEAR(profile.implication.back(), 1.0, kTol);
}

}  // namespace
}  // namespace cksafe
