// Shared fixtures for the cksafe test suite: the paper's running example
// (Figures 1-3) and random instance generators for property tests.

#ifndef CKSAFE_TESTS_TESTING_UTIL_H_
#define CKSAFE_TESTS_TESTING_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cksafe/anon/bucketization.h"
#include "cksafe/data/table.h"
#include "cksafe/util/random.h"

namespace cksafe {
namespace testing {

/// Seed for a randomized test: `fallback` unless the CKSAFE_TEST_SEED
/// environment variable overrides it. Pair with SeedTrace so a failure
/// always logs the seed that reproduces it:
///
///   const uint64_t seed = TestSeed(20260726);
///   SCOPED_TRACE(SeedTrace(seed));
///   Rng rng(seed);
inline uint64_t TestSeed(uint64_t fallback) {
  const char* override_value = std::getenv("CKSAFE_TEST_SEED");
  if (override_value == nullptr || *override_value == '\0') return fallback;
  return std::strtoull(override_value, nullptr, 0);
}

/// Failure annotation naming the seed and how to replay it.
inline std::string SeedTrace(uint64_t seed) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                "seed=%llu (rerun with CKSAFE_TEST_SEED=%llu)",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(seed));
  return buffer;
}

/// Iteration count for a randomized test: `base`, multiplied by the
/// CKSAFE_TEST_ITERS environment variable when set (the nightly long-run
/// profile exports CKSAFE_TEST_ITERS=10).
inline size_t TestIters(size_t base) {
  const char* multiplier = std::getenv("CKSAFE_TEST_ITERS");
  if (multiplier == nullptr || *multiplier == '\0') return base;
  const unsigned long long factor = std::strtoull(multiplier, nullptr, 0);
  return factor > 0 ? base * static_cast<size_t>(factor) : base;
}

/// Disease codes of the hospital fixture, in schema order.
enum HospitalDisease : int32_t {
  kFlu = 0,
  kLungCancer = 1,
  kMumps = 2,
  kBreastCancer = 3,
  kOvarianCancer = 4,
  kHeartDisease = 5,
};

inline constexpr size_t kHospitalSensitiveColumn = 3;  // Disease

/// The paper's Figure 1 table: 10 named patients, schema
/// (Zip, Age, Sex, Disease).
inline Table MakeHospitalTable() {
  Schema schema({
      AttributeDef::Categorical("Zip", {"14850", "14853"}),
      AttributeDef::Numeric("Age", 21, 29),
      AttributeDef::Categorical("Sex", {"M", "F"}),
      AttributeDef::Categorical("Disease",
                                {"flu", "lung cancer", "mumps", "breast cancer",
                                 "ovarian cancer", "heart disease"}),
  });
  Table table(std::move(schema));
  struct Row {
    const char* name;
    const char* zip;
    int32_t age;
    const char* sex;
    int32_t disease;
  };
  const Row rows[] = {
      {"Bob", "14850", 23, "M", kFlu},
      {"Charlie", "14850", 24, "M", kFlu},
      {"Dave", "14850", 25, "M", kLungCancer},
      {"Ed", "14850", 27, "M", kLungCancer},
      {"Frank", "14853", 29, "M", kMumps},
      {"Gloria", "14850", 21, "F", kFlu},
      {"Hannah", "14850", 22, "F", kFlu},
      {"Irma", "14853", 24, "F", kBreastCancer},
      {"Jessica", "14853", 26, "F", kOvarianCancer},
      {"Karen", "14853", 28, "F", kHeartDisease},
  };
  for (const Row& r : rows) {
    const auto zip = table.schema().attribute(0).CodeOf(r.zip);
    const auto sex = table.schema().attribute(2).CodeOf(r.sex);
    CKSAFE_CHECK(zip.ok() && sex.ok());
    CKSAFE_CHECK(table.AppendRow({*zip, r.age, *sex, r.disease}).ok());
  }
  for (size_t i = 0; i < std::size(rows); ++i) {
    table.SetRowLabel(static_cast<PersonId>(i), rows[i].name);
  }
  return table;
}

/// The Figure 2/3 bucketization of the hospital table: one bucket per Sex
/// (males rows 0-4, females rows 5-9).
inline Bucketization MakeHospitalBucketization(const Table& table) {
  auto b = BucketizeExplicit(table, {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}},
                             kHospitalSensitiveColumn);
  CKSAFE_CHECK(b.ok()) << b.status().ToString();
  return *std::move(b);
}

/// A single-column table whose sensitive values realize the given
/// histograms; bucket i holds consecutive rows. Used to build arbitrary
/// bucketizations for property tests.
struct SyntheticBuckets {
  Table table;
  Bucketization bucketization;
};

inline SyntheticBuckets MakeBuckets(
    const std::vector<std::vector<uint32_t>>& histograms, size_t domain_size) {
  std::vector<std::string> labels;
  for (size_t s = 0; s < domain_size; ++s) {
    labels.push_back("v" + std::to_string(s));
  }
  Table table{Schema({AttributeDef::Categorical("S", labels)})};
  std::vector<std::vector<PersonId>> groups;
  PersonId next = 0;
  for (const auto& histogram : histograms) {
    CKSAFE_CHECK_EQ(histogram.size(), domain_size);
    std::vector<PersonId> members;
    for (size_t s = 0; s < domain_size; ++s) {
      for (uint32_t i = 0; i < histogram[s]; ++i) {
        CKSAFE_CHECK(table.AppendRow({static_cast<int32_t>(s)}).ok());
        members.push_back(next++);
      }
    }
    groups.push_back(std::move(members));
  }
  auto bucketization = BucketizeExplicit(table, groups, 0);
  CKSAFE_CHECK(bucketization.ok()) << bucketization.status().ToString();
  return SyntheticBuckets{std::move(table), *std::move(bucketization)};
}

/// Random histogram list for property tests; keeps the world count small
/// enough for the exact engine.
inline std::vector<std::vector<uint32_t>> RandomHistograms(
    Rng* rng, size_t num_buckets, size_t domain_size, uint32_t max_bucket) {
  std::vector<std::vector<uint32_t>> histograms(num_buckets);
  for (auto& histogram : histograms) {
    histogram.assign(domain_size, 0);
    const uint32_t size =
        1 + static_cast<uint32_t>(rng->NextBelow(max_bucket));
    for (uint32_t i = 0; i < size; ++i) {
      ++histogram[rng->NextBelow(domain_size)];
    }
  }
  return histograms;
}

}  // namespace testing
}  // namespace cksafe

#endif  // CKSAFE_TESTS_TESTING_UTIL_H_
