// Generalization lattice tests: ordering, traversal, encoding, chains.

#include "cksafe/lattice/lattice.h"

#include <gtest/gtest.h>

#include <set>

namespace cksafe {
namespace {

TEST(LatticeTest, BasicShapeOfAdultLattice) {
  // The paper's evaluation lattice: 6 x 3 x 2 x 2 = 72 nodes, height 9.
  GeneralizationLattice lattice({6, 3, 2, 2});
  EXPECT_EQ(lattice.num_nodes(), 72u);
  EXPECT_EQ(lattice.MaxHeight(), 9u);
  EXPECT_EQ(lattice.Bottom(), (LatticeNode{0, 0, 0, 0}));
  EXPECT_EQ(lattice.Top(), (LatticeNode{5, 2, 1, 1}));
  EXPECT_EQ(lattice.Height(lattice.Top()), 9u);
}

TEST(LatticeTest, LeqIsComponentwise) {
  GeneralizationLattice lattice({3, 3});
  EXPECT_TRUE(lattice.Leq({0, 0}, {2, 2}));
  EXPECT_TRUE(lattice.Leq({1, 2}, {1, 2}));
  EXPECT_FALSE(lattice.Leq({2, 0}, {1, 2}));
  EXPECT_FALSE(lattice.Leq({0, 2}, {2, 1}));
}

TEST(LatticeTest, ParentsAndChildren) {
  GeneralizationLattice lattice({3, 2});
  const auto parents = lattice.Parents({1, 1});
  ASSERT_EQ(parents.size(), 1u);  // second attribute already at top
  EXPECT_EQ(parents[0], (LatticeNode{2, 1}));

  const auto children = lattice.Children({1, 1});
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], (LatticeNode{0, 1}));
  EXPECT_EQ(children[1], (LatticeNode{1, 0}));

  EXPECT_TRUE(lattice.Parents(lattice.Top()).empty());
  EXPECT_TRUE(lattice.Children(lattice.Bottom()).empty());
}

TEST(LatticeTest, EncodeDecodeRoundTrip) {
  GeneralizationLattice lattice({6, 3, 2, 2});
  std::set<uint64_t> codes;
  for (const LatticeNode& node : lattice.AllNodes()) {
    const uint64_t code = lattice.Encode(node);
    EXPECT_TRUE(codes.insert(code).second) << "duplicate code " << code;
    EXPECT_EQ(lattice.Decode(code), node);
  }
  EXPECT_EQ(codes.size(), 72u);
}

TEST(LatticeTest, NodesAtHeightPartitionAllNodes) {
  GeneralizationLattice lattice({6, 3, 2, 2});
  size_t total = 0;
  for (size_t h = 0; h <= lattice.MaxHeight(); ++h) {
    for (const LatticeNode& node : lattice.NodesAtHeight(h)) {
      EXPECT_EQ(lattice.Height(node), h);
      ++total;
    }
  }
  EXPECT_EQ(total, 72u);
  EXPECT_EQ(lattice.NodesAtHeight(0).size(), 1u);
  EXPECT_EQ(lattice.NodesAtHeight(lattice.MaxHeight()).size(), 1u);
}

TEST(LatticeTest, AllNodesOrderedByHeight) {
  GeneralizationLattice lattice({4, 3, 2});
  const auto nodes = lattice.AllNodes();
  EXPECT_EQ(nodes.size(), 24u);
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(lattice.Height(nodes[i - 1]), lattice.Height(nodes[i]));
  }
}

TEST(LatticeTest, CanonicalChainIsMaximal) {
  GeneralizationLattice lattice({6, 3, 2, 2});
  const auto chain = lattice.CanonicalChain();
  ASSERT_EQ(chain.size(), lattice.MaxHeight() + 1);
  EXPECT_EQ(chain.front(), lattice.Bottom());
  EXPECT_EQ(chain.back(), lattice.Top());
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_TRUE(lattice.Leq(chain[i - 1], chain[i]));
    EXPECT_EQ(lattice.Height(chain[i]), i);
  }
}

TEST(LatticeTest, RandomChainIsMaximalAndSeeded) {
  GeneralizationLattice lattice({6, 3, 2, 2});
  Rng rng_a(5);
  Rng rng_b(5);
  const auto chain_a = lattice.RandomChain(&rng_a);
  const auto chain_b = lattice.RandomChain(&rng_b);
  EXPECT_EQ(chain_a, chain_b);
  ASSERT_EQ(chain_a.size(), lattice.MaxHeight() + 1);
  for (size_t i = 1; i < chain_a.size(); ++i) {
    EXPECT_TRUE(lattice.Leq(chain_a[i - 1], chain_a[i]));
  }
}

TEST(LatticeTest, ValidateRejectsBadNodes) {
  GeneralizationLattice lattice({3, 2});
  EXPECT_TRUE(lattice.Validate({0, 0}).ok());
  EXPECT_TRUE(lattice.Validate({2, 1}).ok());
  EXPECT_FALSE(lattice.Validate({3, 0}).ok());
  EXPECT_FALSE(lattice.Validate({0, -1}).ok());
  EXPECT_FALSE(lattice.Validate({0}).ok());
  EXPECT_FALSE(lattice.Validate({0, 0, 0}).ok());
}

TEST(LatticeTest, FromQuasiIdentifiers) {
  const AttributeDef sex = AttributeDef::Categorical("Sex", {"M", "F"});
  std::vector<QuasiIdentifier> qis(1);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(sex))};
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);
  EXPECT_EQ(lattice.num_nodes(), 2u);
  EXPECT_EQ(lattice.MaxHeight(), 1u);
}

}  // namespace
}  // namespace cksafe
