// Deterministic round-trip fuzz for the knowledge-formula parser.
//
// Two properties, over a seeded generator (so failures reproduce):
//  * parse → print → parse is a fixed point: printing a parsed formula
//    and re-parsing it yields the same implications and the same printed
//    text — the textual format loses nothing the parser accepts;
//  * malformed input NEVER crashes: random mutations of valid lines and a
//    corpus of adversarial shapes must come back as Status errors (or
//    parse cleanly), not as CHECK failures or memory errors. The CI
//    sanitizer job runs this binary explicitly under ASan+UBSan.

#include "cksafe/knowledge/parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cksafe/knowledge/formula.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

Atom RandomAtom(Rng* rng, size_t num_rows, size_t domain) {
  return Atom{static_cast<PersonId>(rng->NextBelow(num_rows)),
              static_cast<int32_t>(rng->NextBelow(domain))};
}

// A random formula in the textual format: implication lines with 1-3
// atoms per side, negation sugar lines, comments, and blank lines.
std::string RandomDocument(Rng* rng, const KnowledgePrinter& printer,
                           size_t num_rows, size_t domain) {
  std::string text;
  const size_t lines = 1 + rng->NextBelow(6);
  for (size_t i = 0; i < lines; ++i) {
    const uint64_t kind = rng->NextBelow(8);
    if (kind == 0) {
      text += "# a comment line\n";
      continue;
    }
    if (kind == 1) {
      text += "\n";
      continue;
    }
    if (kind == 2) {
      // Negation sugar over a multi-value domain.
      text += "! " + printer.AtomToString(RandomAtom(rng, num_rows, domain)) +
              "\n";
      continue;
    }
    BasicImplication imp;
    const size_t lhs = 1 + rng->NextBelow(3);
    const size_t rhs = 1 + rng->NextBelow(3);
    for (size_t a = 0; a < lhs; ++a) {
      imp.antecedents.push_back(RandomAtom(rng, num_rows, domain));
    }
    for (size_t b = 0; b < rhs; ++b) {
      imp.consequents.push_back(RandomAtom(rng, num_rows, domain));
    }
    text += printer.ImplicationToString(imp) + "\n";
  }
  return text;
}

// Renders a formula one implication per line — the parser's document
// format (FormulaToString's " AND " join is for humans, not round trips).
std::string ToDocument(const KnowledgePrinter& printer,
                       const KnowledgeFormula& formula) {
  std::string text;
  for (const BasicImplication& imp : formula.implications()) {
    text += printer.ImplicationToString(imp) + "\n";
  }
  return text;
}

void ExpectSameFormula(const KnowledgeFormula& a, const KnowledgeFormula& b) {
  ASSERT_EQ(a.k(), b.k());
  for (size_t i = 0; i < a.k(); ++i) {
    EXPECT_EQ(a.implications()[i].antecedents, b.implications()[i].antecedents)
        << "implication " << i;
    EXPECT_EQ(a.implications()[i].consequents, b.implications()[i].consequents)
        << "implication " << i;
  }
}

TEST(ParserFuzzTest, ParsePrintParseIsAFixedPoint) {
  const Table table = testing::MakeHospitalTable();
  const size_t sensitive = testing::kHospitalSensitiveColumn;
  const size_t domain =
      static_cast<size_t>(table.schema().attribute(sensitive).max_value()) + 1;
  const KnowledgeParser parser(table, sensitive);
  const KnowledgePrinter printer(table, sensitive);
  const uint64_t seed = testing::TestSeed(20260726);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);

  const size_t trials = testing::TestIters(200);
  for (size_t trial = 0; trial < trials; ++trial) {
    const std::string text =
        RandomDocument(&rng, printer, table.num_rows(), domain);
    auto first = parser.ParseFormula(text);
    ASSERT_TRUE(first.ok()) << first.status() << "\ninput:\n" << text;

    const std::string printed = ToDocument(printer, *first);
    auto second = parser.ParseFormula(printed);
    ASSERT_TRUE(second.ok()) << second.status() << "\nprinted:\n" << printed;
    ExpectSameFormula(*first, *second);
    // The printed form is the fixed point: printing again is a no-op.
    EXPECT_EQ(ToDocument(printer, *second), printed);
  }
}

TEST(ParserFuzzTest, MalformedCorpusReturnsErrorsNotCrashes) {
  const Table table = testing::MakeHospitalTable();
  const KnowledgeParser parser(table, testing::kHospitalSensitiveColumn);
  const std::vector<std::string> corpus = {
      "t[",
      "t[Bob",
      "t[Bob]",
      "t[Bob].",
      "t[Bob].Disease",
      "t[Bob].Disease=",
      "t[Bob].Disease=flu",          // atom alone: no '->'
      "->",
      "-> t[Bob].Disease=flu",
      "t[Bob].Disease=flu ->",
      "t[Bob].Disease=flu -> t[Bob].Disease",
      "t[Nobody].Disease=flu -> t[Bob].Disease=flu",
      "t[Bob].Age=23 -> t[Bob].Disease=flu",       // non-sensitive attribute
      "t[Bob].Disease=plague -> t[Bob].Disease=flu",  // unknown value
      "t[Bob].Disease=flu & -> t[Bob].Disease=flu",
      "t[Bob].Disease=flu -> | t[Bob].Disease=flu",
      "!",
      "! t[Bob]",
      "!! t[Bob].Disease=flu",
      "t]Bob[.Disease=flu -> t[Bob].Disease=flu",
      std::string(1, '\0') + "t[Bob].Disease=flu",
      std::string(4096, 'x'),
  };
  for (const std::string& line : corpus) {
    auto result = parser.ParseFormula(line);
    EXPECT_FALSE(result.ok()) << "accepted malformed input: " << line;
  }
}

TEST(ParserFuzzTest, RandomMutationsNeverCrash) {
  const Table table = testing::MakeHospitalTable();
  const size_t sensitive = testing::kHospitalSensitiveColumn;
  const size_t domain =
      static_cast<size_t>(table.schema().attribute(sensitive).max_value()) + 1;
  const KnowledgeParser parser(table, sensitive);
  const KnowledgePrinter printer(table, sensitive);
  const uint64_t seed = testing::TestSeed(4242);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::string alphabet = "t[].=&|->! #\nBobDisease\tflu\"\\%";

  const size_t trials = testing::TestIters(500);
  for (size_t trial = 0; trial < trials; ++trial) {
    std::string text =
        RandomDocument(&rng, printer, table.num_rows(), domain);
    const size_t mutations = 1 + rng.NextBelow(8);
    for (size_t m = 0; m < mutations && !text.empty(); ++m) {
      const size_t pos = rng.NextBelow(text.size());
      switch (rng.NextBelow(3)) {
        case 0:  // replace
          text[pos] = alphabet[rng.NextBelow(alphabet.size())];
          break;
        case 1:  // insert
          text.insert(text.begin() + pos,
                      alphabet[rng.NextBelow(alphabet.size())]);
          break;
        default:  // delete a span
          text.erase(pos, 1 + rng.NextBelow(4));
          break;
      }
    }
    // Any outcome is fine except a crash; on success the result must be a
    // valid formula (never an implication with an empty side).
    auto result = parser.ParseFormula(text);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok()) << "input:\n" << text;
    }
  }
}

}  // namespace
}  // namespace cksafe
