// Release-format tests: Figure-2-style generalized tables and Anatomy
// two-table releases, including the Section 2.1 equivalence — the
// bucketization reconstructed from either release carries the same
// per-bucket sensitive histograms as the original.

#include "cksafe/anon/release.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "cksafe/util/csv.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kHospitalSensitiveColumn;
using testing::MakeHospitalBucketization;
using testing::MakeHospitalTable;

std::vector<QuasiIdentifier> HospitalQis(const Table& table) {
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};  // Zip
  auto age = IntervalHierarchy::Create(table.schema().attribute(1), {1, 3},
                                       /*add_suppressed_top=*/true);
  CKSAFE_CHECK(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};  // Sex
  return qis;
}

TEST(GeneralizedReleaseTest, Figure2ShapeOnHospital) {
  // Zip suppressed, Age suppressed, Sex kept: exactly the paper's Figure 2
  // (two buckets of five with permuted diseases).
  const Table table = MakeHospitalTable();
  const auto qis = HospitalQis(table);
  auto release = BuildGeneralizedRelease(table, qis, {1, 2, 0},
                                         kHospitalSensitiveColumn, 7);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_EQ(release->header,
            (std::vector<std::string>{"Zip", "Age", "Sex", "Disease"}));
  ASSERT_EQ(release->rows.size(), 10u);
  // First five rows: the male bucket with masked quasi-identifiers.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(release->rows[i][0], "*");
    EXPECT_EQ(release->rows[i][1], "*");
    EXPECT_EQ(release->rows[i][2], "M");
  }
  for (size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(release->rows[i][2], "F");
  }

  // The released disease multiset per bucket matches Figure 2's.
  std::multiset<std::string> male_diseases;
  for (size_t i = 0; i < 5; ++i) male_diseases.insert(release->rows[i][3]);
  EXPECT_EQ(male_diseases,
            (std::multiset<std::string>{"flu", "flu", "lung cancer",
                                        "lung cancer", "mumps"}));
}

TEST(GeneralizedReleaseTest, PermutationIsSeededAndWithinBuckets) {
  const Table table = MakeHospitalTable();
  const auto qis = HospitalQis(table);
  auto a = BuildGeneralizedRelease(table, qis, {1, 2, 0},
                                   kHospitalSensitiveColumn, 1);
  auto b = BuildGeneralizedRelease(table, qis, {1, 2, 0},
                                   kHospitalSensitiveColumn, 1);
  auto c = BuildGeneralizedRelease(table, qis, {1, 2, 0},
                                   kHospitalSensitiveColumn, 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->rows, b->rows);
  // Different seed: same multisets, (almost surely) different order.
  std::multiset<std::string> ma, mc;
  for (size_t i = 0; i < 5; ++i) {
    ma.insert(a->rows[i][3]);
    mc.insert(c->rows[i][3]);
  }
  EXPECT_EQ(ma, mc);
}

TEST(GeneralizedReleaseTest, CsvRoundTrip) {
  const Table table = MakeHospitalTable();
  const auto qis = HospitalQis(table);
  auto release = BuildGeneralizedRelease(table, qis, {1, 1, 1},
                                         kHospitalSensitiveColumn, 3);
  ASSERT_TRUE(release.ok());
  const std::string path = ::testing::TempDir() + "/generalized.csv";
  ASSERT_TRUE(release->WriteCsv(path).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 11u);  // header + 10 rows
  EXPECT_EQ((*read)[0], release->header);
  std::remove(path.c_str());

  EXPECT_NE(release->Preview(3).find("more rows"), std::string::npos);
}

TEST(AnatomyReleaseTest, TwoTableShape) {
  const Table table = MakeHospitalTable();
  const auto qis = HospitalQis(table);
  const Bucketization bucketization = MakeHospitalBucketization(table);
  auto release = BuildAnatomyRelease(table, qis, bucketization,
                                     kHospitalSensitiveColumn);
  ASSERT_TRUE(release.ok()) << release.status();

  // QIT: one row per record, exact quasi-identifiers, bucket ids.
  ASSERT_EQ(release->qit_rows.size(), 10u);
  EXPECT_EQ(release->qit_header,
            (std::vector<std::string>{"record", "Zip", "Age", "Sex",
                                      "bucket"}));
  EXPECT_EQ(release->qit_rows[0][1], "14850");  // exact zip, not generalized
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(release->qit_rows[i][4], "0");
  for (size_t i = 5; i < 10; ++i) EXPECT_EQ(release->qit_rows[i][4], "1");

  // ST: per-bucket counts; reconstruct histograms and compare.
  std::map<std::pair<std::string, std::string>, uint32_t> st;
  for (const auto& row : release->st_rows) {
    st[{row[0], row[1]}] = static_cast<uint32_t>(std::stoul(row[2]));
  }
  auto count_of = [&](const std::string& bucket, const std::string& value) {
    auto it = st.find({bucket, value});
    return it == st.end() ? 0u : it->second;
  };
  EXPECT_EQ(count_of("0", "flu"), 2u);
  EXPECT_EQ(count_of("0", "lung cancer"), 2u);
  EXPECT_EQ(count_of("0", "mumps"), 1u);
  EXPECT_EQ(count_of("1", "flu"), 2u);
  EXPECT_EQ(count_of("1", "ovarian cancer"), 1u);
  EXPECT_EQ(count_of("1", "mumps"), 0u);  // zero counts omitted

  const std::string qit_path = ::testing::TempDir() + "/qit.csv";
  const std::string st_path = ::testing::TempDir() + "/st.csv";
  ASSERT_TRUE(release->WriteCsv(qit_path, st_path).ok());
  auto qit = ReadCsvFile(qit_path);
  auto st_read = ReadCsvFile(st_path);
  ASSERT_TRUE(qit.ok() && st_read.ok());
  EXPECT_EQ(qit->size(), 11u);
  EXPECT_EQ(st_read->size(), release->st_rows.size() + 1);
  std::remove(qit_path.c_str());
  std::remove(st_path.c_str());
}

TEST(AnatomyReleaseTest, RejectsMismatchedInputs) {
  const Table table = MakeHospitalTable();
  const auto qis = HospitalQis(table);
  Bucketization wrong_domain(3);
  Bucket b;
  b.members = {0};
  b.histogram = {1, 0, 0};
  ASSERT_TRUE(wrong_domain.AddBucket(std::move(b)).ok());
  EXPECT_FALSE(BuildAnatomyRelease(table, qis, wrong_domain,
                                   kHospitalSensitiveColumn)
                   .ok());
}

}  // namespace
}  // namespace cksafe
