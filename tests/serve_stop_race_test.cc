// Regression: QueryRouter::Stop racing Submit. Every future a successful
// Submit hands out must resolve — even when Stop lands between the
// admission check and the enqueue, and even with several threads hammering
// Submit while another calls Stop. The pre-fix bug dropped queries
// admitted during the close window, leaving their futures waiting forever;
// this test would hang (caught by the wait_for deadline) on any
// regression.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "cksafe/serve/query_router.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/serve/snapshot_store.h"
#include "cksafe/util/random.h"
#include "shard_testing_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::RandomSnapshot;
using testing::SeedTrace;
using testing::TestIters;
using testing::TestSeed;

TEST(ServeStopRaceTest, SubmitRacingStopResolvesEveryAcceptedFuture) {
  const uint64_t seed = TestSeed(20260810);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t rounds = TestIters(25);
  constexpr size_t kSubmitters = 4;

  for (size_t round = 0; round < rounds; ++round) {
    ServingDirectory directory;
    directory.GetOrAddTenant("gold")->Publish(RandomSnapshot(&rng, 1));

    QueryRouter::Options options;
    options.queue_capacity = 8;  // small: admission and close contend hard
    QueryRouter router(&directory, options);

    std::atomic<bool> go{false};
    std::atomic<bool> halt{false};
    std::vector<std::vector<std::future<StatusOr<QueryAnswer>>>> accepted(
        kSubmitters);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        Query query;
        query.tenant = "gold";
        query.kind = QueryKind::kDisclosure;
        query.k = 2;
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        while (!halt.load(std::memory_order_acquire)) {
          auto submitted = router.Submit(query);
          if (submitted.ok()) {
            accepted[t].push_back(std::move(submitted).value());
          }
          // Rejections (queue full, router stopped) carry no future and
          // need no bookkeeping — backpressure is the caller's signal.
        }
      });
    }

    go.store(true, std::memory_order_release);
    // Let the race build up a little in-flight work, then slam the door.
    std::this_thread::sleep_for(
        std::chrono::microseconds(50 + rng.NextBelow(500)));
    router.Stop();
    halt.store(true, std::memory_order_release);
    for (auto& thread : submitters) thread.join();

    size_t total = 0;
    for (auto& futures : accepted) {
      for (auto& future : futures) {
        // The whole point: an accepted Submit may fail, but it may never
        // dangle. A regression shows up as a timeout here, not a hang.
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "accepted future never resolved (round " << round << ")";
        (void)future.get();  // Status or answer — either is fine.
        ++total;
      }
    }
    // The race is real only if some submits were actually accepted.
    EXPECT_GT(total, 0u) << "round " << round << " accepted nothing";
  }
}

TEST(ServeStopRaceTest, ConcurrentStopCallsAreIdempotent) {
  const uint64_t seed = TestSeed(20260811);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  const size_t rounds = TestIters(25);

  for (size_t round = 0; round < rounds; ++round) {
    ServingDirectory directory;
    directory.GetOrAddTenant("gold")->Publish(RandomSnapshot(&rng, 1));
    QueryRouter router(&directory);

    Query query;
    query.tenant = "gold";
    query.kind = QueryKind::kProfileAtK;
    query.k = 1;
    std::vector<std::future<StatusOr<QueryAnswer>>> accepted;
    for (size_t i = 0; i < 16; ++i) {
      auto submitted = router.Submit(query);
      if (submitted.ok()) accepted.push_back(std::move(submitted).value());
    }

    std::thread other([&] { router.Stop(); });
    router.Stop();
    other.join();

    for (auto& future : accepted) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
      (void)future.get();
    }
    // After Stop, Submit must fail fast rather than hand out a future
    // nobody will ever resolve.
    EXPECT_FALSE(router.Submit(query).ok());
  }
}

}  // namespace
}  // namespace cksafe
