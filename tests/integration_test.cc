// Cross-module integration tests: the full publish-then-audit loop, cache
// reuse across lattice nodes (the paper's incremental-recomputation
// remark), and end-to-end agreement between the DP analyzer, the exact
// engine and the search layer on a non-trivial table.

#include <gtest/gtest.h>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/diversity.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/experiments/figures.h"
#include "cksafe/knowledge/parser.h"
#include "cksafe/search/publisher.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kHospitalSensitiveColumn;
using testing::MakeHospitalTable;

TEST(IntegrationTest, PublishThenAuditTheHospitalTable) {
  // Publish a (c,k)-safe hospital table, then audit the release with the
  // exact engine against an attacker formula written in the text format.
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};
  auto age =
      IntervalHierarchy::Create(table.schema().attribute(1), {1, 3}, true);
  ASSERT_TRUE(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};

  PublisherOptions options;
  options.c = 0.75;
  options.k = 2;
  auto release = Publisher(options).Publish(table, qis,
                                            kHospitalSensitiveColumn);
  ASSERT_TRUE(release.ok()) << release.status();

  auto engine = ExactEngine::Create(release->bucketization);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Any 2-implication attacker the auditor can write stays below c.
  KnowledgeParser parser(table, kHospitalSensitiveColumn);
  auto phi = parser.ParseFormula(
      "! t[Ed].Disease = mumps\n"
      "t[Hannah].Disease = flu -> t[Charlie].Disease = flu\n");
  ASSERT_TRUE(phi.ok());
  auto risk = engine->DisclosureRisk(*phi);
  ASSERT_TRUE(risk.ok());
  EXPECT_LT(risk->disclosure, options.c);

  // And the worst case over all of L^2_basic matches the DP bound.
  auto brute = engine->MaxDisclosureSimpleImplications(2, true);
  ASSERT_TRUE(brute.ok()) << brute.status();
  DisclosureAnalyzer analyzer(release->bucketization);
  EXPECT_NEAR(brute->disclosure,
              analyzer.MaxDisclosureImplications(2).disclosure, 1e-9);
  EXPECT_LT(brute->disclosure, options.c);
}

TEST(IntegrationTest, SharedCacheAcrossLatticeNodes) {
  // Analyzing every node of a lattice with one shared cache re-uses
  // MINIMIZE1 tables across nodes: the number of cache misses equals the
  // number of distinct bucket histograms, not the number of buckets.
  const Table table = GenerateSyntheticAdult(1500, 21);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(*qis);

  DisclosureCache cache;
  size_t total_buckets = 0;
  for (const LatticeNode& node : lattice.AllNodes()) {
    auto b = BucketizeAtNode(table, *qis, node, kAdultOccupationColumn);
    ASSERT_TRUE(b.ok());
    total_buckets += b->num_buckets();
    DisclosureAnalyzer analyzer(*b, &cache);
    analyzer.MaxDisclosureImplications(3);
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LT(cache.entries(), total_buckets);

  // Cached analysis agrees with cold analysis.
  auto b = BucketizeAtNode(table, *qis, AdultFigure5Node(),
                           kAdultOccupationColumn);
  ASSERT_TRUE(b.ok());
  DisclosureAnalyzer warm(*b, &cache);
  DisclosureAnalyzer cold(*b);
  for (size_t k = 0; k <= 5; ++k) {
    EXPECT_NEAR(warm.MaxDisclosureImplications(k).disclosure,
                cold.MaxDisclosureImplications(k).disclosure, 1e-12);
  }
}

TEST(IntegrationTest, CkSafetyImpliesWeakerBaselines) {
  // A (c,k)-safe table with c <= 1/l is also entropy/distinct l-diverse in
  // spirit: its max frequency ratio is below c. (The converse fails — the
  // whole point of the paper.)
  const Table table = GenerateSyntheticAdult(3000, 5);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  PublisherOptions options;
  options.c = 0.5;
  options.k = 2;
  auto release = Publisher(options).Publish(table, *qis,
                                            kAdultOccupationColumn);
  ASSERT_TRUE(release.ok()) << release.status();
  EXPECT_LT(release->bucketization.MaxFrequencyRatio(), options.c);
  EXPECT_GE(MaxDistinctL(release->bucketization), 3u);
}

TEST(IntegrationTest, LDiversityDoesNotBoundImplicationAdversaries) {
  // The motivating gap: a bucketization can satisfy distinct/entropy
  // l-diversity yet leak everything to an implication adversary with
  // k >= d-1 pieces of knowledge.
  auto fixture = testing::MakeBuckets({{2, 2, 2, 0}, {0, 2, 2, 2}}, 4);
  EXPECT_TRUE(IsDistinctLDiverse(fixture.bucketization, 3));
  EXPECT_TRUE(IsEntropyLDiverse(fixture.bucketization, 3.0));
  DisclosureAnalyzer analyzer(fixture.bucketization);
  EXPECT_NEAR(analyzer.MaxDisclosureImplications(2).disclosure, 1.0, 1e-9);
}

TEST(IntegrationTest, Figure5WitnessesAreRealFormulas) {
  // Reconstructed witnesses from the Adult fig-5 table parse, print and
  // re-evaluate. (The exact engine cannot hold 45k tuples, so this runs on
  // a small sample with the same pipeline.)
  const Table table = GenerateSyntheticAdult(14, 13);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok());
  auto b = BucketizeAtNode(table, *qis, AdultFigure5Node(),
                           kAdultOccupationColumn);
  ASSERT_TRUE(b.ok());
  DisclosureAnalyzer analyzer(*b);
  auto engine = ExactEngine::Create(*b, {/*max_worlds=*/1ULL << 26});
  if (!engine.ok()) GTEST_SKIP() << "instance too large for exact engine";
  for (size_t k = 0; k <= 2; ++k) {
    const WorstCaseDisclosure wc = analyzer.MaxDisclosureImplications(k);
    auto p = engine->ConditionalProbability(wc.target, wc.ToFormula());
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, wc.disclosure, 1e-9) << "k=" << k;
  }
}

}  // namespace
}  // namespace cksafe
