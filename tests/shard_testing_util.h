// Shared helpers for the shard-tier tests: scoped temp directories (socket
// paths must stay short enough for sockaddr_un), seeded random snapshots,
// and the bit-identity oracle every differential test shares — an answer
// matches iff a fresh synchronous DisclosureAnalyzer over the snapshot the
// answer names reproduces it with exact double equality.

#ifndef CKSAFE_TESTS_SHARD_TESTING_UTIL_H_
#define CKSAFE_TESTS_SHARD_TESTING_UTIL_H_

#include <stdlib.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cksafe/core/disclosure.h"
#include "cksafe/serve/query_router.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace testing {

/// mkdtemp under /tmp (not the build tree: UNIX socket paths cap at
/// ~108 bytes) with recursive removal on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    char tmpl[] = "/tmp/cksafe-shard-XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    CKSAFE_CHECK(dir != nullptr);
    path_ = dir;
  }
  ~ScopedTempDir() {
    std::error_code ec;  // best effort; never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A small random snapshot (few buckets, small domain — exact engine).
inline std::shared_ptr<const ReleaseSnapshot> RandomSnapshot(
    Rng* rng, uint64_t sequence, size_t num_buckets = 3,
    size_t domain_size = 3) {
  SyntheticBuckets buckets = MakeBuckets(
      RandomHistograms(rng, num_buckets, domain_size, /*max_bucket=*/4),
      domain_size);
  return MakeReleaseSnapshot(sequence, std::move(buckets.bucketization));
}

/// True iff `answer` equals — exact double equality — what a fresh
/// synchronous DisclosureAnalyzer over `snapshot` returns for `query`.
inline bool AnswerMatchesFresh(const Query& query, const QueryAnswer& answer,
                               const ReleaseSnapshot& snapshot) {
  DisclosureAnalyzer analyzer(snapshot.bucketization);
  switch (query.kind) {
    case QueryKind::kIsCkSafe: {
      const WorstCaseDisclosure worst =
          analyzer.MaxDisclosureImplications(query.k);
      return answer.safe == IsSafeLogRatio(worst.log_r_min, query.c) &&
             answer.disclosure == worst.disclosure &&
             answer.log_r == worst.log_r_min;
    }
    case QueryKind::kDisclosure: {
      const WorstCaseDisclosure worst =
          analyzer.MaxDisclosureImplications(query.k);
      return answer.disclosure == worst.disclosure &&
             answer.log_r == worst.log_r_min;
    }
    case QueryKind::kProfileAtK: {
      const DisclosureProfile profile = analyzer.Profile(query.k);
      return answer.disclosure == profile.implication[query.k] &&
             answer.negation == profile.negation[query.k];
    }
    case QueryKind::kPerBucket: {
      const std::vector<double> per_bucket =
          analyzer.PerBucketDisclosure(query.k);
      return query.bucket < per_bucket.size() &&
             answer.disclosure == per_bucket[query.bucket];
    }
  }
  return false;
}

/// A mixed-kind query against `tenant`, always in range for snapshots
/// built by RandomSnapshot (buckets >= num_buckets are never probed).
inline Query RandomQuery(Rng* rng, const std::string& tenant,
                         size_t num_buckets = 3, size_t max_k = 5) {
  Query query;
  query.tenant = tenant;
  switch (rng->NextBelow(4)) {
    case 0:
      query.kind = QueryKind::kIsCkSafe;
      query.c = 0.3 + 0.6 * rng->NextDouble();
      break;
    case 1:
      query.kind = QueryKind::kDisclosure;
      break;
    case 2:
      query.kind = QueryKind::kProfileAtK;
      break;
    default:
      query.kind = QueryKind::kPerBucket;
      query.bucket = rng->NextBelow(num_buckets);
      break;
  }
  query.k = rng->NextBelow(max_k + 1);
  return query;
}

}  // namespace testing
}  // namespace cksafe

#endif  // CKSAFE_TESTS_SHARD_TESTING_UTIL_H_
