// Exact-oracle cross-check of the serve path: on a world small enough to
// enumerate, every answer the QueryRouter produces — safety verdict,
// worst-case disclosure, profile-at-k, per-bucket audit — is compared
// against brute-force world enumeration (exact/), not just against the
// polynomial DP it normally mirrors. The serve layer's answers therefore
// trace all the way back to Definition 5/6 semantics, with the DP as the
// middleman being checked rather than trusted.

#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cksafe/core/disclosure.h"
#include "cksafe/exact/exact_engine.h"
#include "cksafe/knowledge/formula.h"
#include "cksafe/serve/query_router.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/serve/snapshot_store.h"
#include "testing_util.h"

namespace cksafe {
namespace {

constexpr double kTol = 1e-9;

// Brute-force per-bucket disclosure at k ∈ {0, 1}: max over targets on the
// bucket's members of Pr(target | B ∧ φ), φ ranging over the empty formula
// (k = 0) and all single same-consequent simple implications (k = 1 —
// Theorem 9's sufficient family, including self-implications).
double BrutePerBucket(const ExactEngine& oracle, const Bucketization& world,
                      size_t bucket, size_t k) {
  double best = 0.0;
  for (PersonId person : world.bucket(bucket).members) {
    for (size_t s = 0; s < oracle.domain_size(); ++s) {
      const Atom target{person, static_cast<int32_t>(s)};
      const auto unconditioned =
          oracle.ConditionalProbability(target, KnowledgeFormula());
      if (unconditioned.ok()) best = std::max(best, *unconditioned);
      if (k == 0) continue;
      for (size_t q = 0; q < oracle.num_persons(); ++q) {
        for (size_t v = 0; v < oracle.domain_size(); ++v) {
          const Atom antecedent{static_cast<PersonId>(q),
                                static_cast<int32_t>(v)};
          KnowledgeFormula formula;
          formula.AddSimple(SimpleImplication{antecedent, target});
          const auto pr = oracle.ConditionalProbability(target, formula);
          if (pr.ok()) best = std::max(best, *pr);  // skip inconsistent φ
        }
      }
    }
  }
  return best;
}

class ServeOracleTest : public ::testing::Test {
 protected:
  // 6 tuples in 2 buckets over a 3-value domain: 9 consistent worlds.
  ServeOracleTest()
      : world_(testing::MakeBuckets({{2, 1, 0}, {1, 0, 2}}, 3)) {
    directory_.GetOrAddTenant("oracle")->Publish(
        MakeReleaseSnapshot(1, world_.bucketization));
    QueryRouter::Options options;
    options.queue_capacity = 64;
    options.start_worker = false;  // deterministic manual drain
    router_ = std::make_unique<QueryRouter>(&directory_, options);
  }

  QueryAnswer Answer(const Query& query) {
    auto submitted = router_->Submit(query);
    CKSAFE_CHECK(submitted.ok()) << submitted.status().ToString();
    while (router_->DrainOnce() > 0) {
    }
    auto answer = submitted->get();
    CKSAFE_CHECK(answer.ok()) << answer.status().ToString();
    return *answer;
  }

  testing::SyntheticBuckets world_;
  ServingDirectory directory_;
  std::unique_ptr<QueryRouter> router_;
};

TEST_F(ServeOracleTest, DisclosureAnswersMatchExactEnumeration) {
  const auto oracle = ExactEngine::Create(world_.bucketization);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (size_t k = 0; k <= 2; ++k) {
    const auto brute =
        oracle->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();

    Query query;
    query.tenant = "oracle";
    query.kind = QueryKind::kDisclosure;
    query.k = k;
    const QueryAnswer answer = Answer(query);
    EXPECT_EQ(answer.snapshot_sequence, 1u);
    EXPECT_NEAR(answer.disclosure, brute->disclosure, kTol) << "k=" << k;
  }
}

TEST_F(ServeOracleTest, SafetyVerdictsMatchExactEnumeration) {
  const auto oracle = ExactEngine::Create(world_.bucketization);
  ASSERT_TRUE(oracle.ok());
  for (size_t k = 0; k <= 2; ++k) {
    const auto brute =
        oracle->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true);
    ASSERT_TRUE(brute.ok());
    // Thresholds strictly on either side of the enumerated worst case;
    // 0.05 keeps them away from FP ambiguity at the boundary.
    for (const double c : {brute->disclosure - 0.05,
                           brute->disclosure + 0.05}) {
      if (c <= 0.0 || c > 1.0) continue;
      Query query;
      query.tenant = "oracle";
      query.kind = QueryKind::kIsCkSafe;
      query.c = c;
      query.k = k;
      const QueryAnswer answer = Answer(query);
      EXPECT_EQ(answer.safe, brute->disclosure < c)
          << "k=" << k << " c=" << c;
    }
  }
}

TEST_F(ServeOracleTest, ProfileAnswersMatchExactEnumeration) {
  const auto oracle = ExactEngine::Create(world_.bucketization);
  ASSERT_TRUE(oracle.ok());
  for (size_t k = 0; k <= 2; ++k) {
    Query query;
    query.tenant = "oracle";
    query.kind = QueryKind::kProfileAtK;
    query.k = k;
    const QueryAnswer answer = Answer(query);

    const auto brute =
        oracle->MaxDisclosureSimpleImplications(k, /*same_consequent=*/true);
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(answer.disclosure, brute->disclosure, kTol) << "k=" << k;

    const auto brute_negation = oracle->MaxDisclosureNegations(k);
    if (brute_negation.ok()) {  // degenerate worlds legitimately fail
      EXPECT_NEAR(answer.negation, brute_negation->disclosure, kTol)
          << "k=" << k;
    }
  }
}

TEST_F(ServeOracleTest, PerBucketAuditsMatchExactEnumeration) {
  const auto oracle = ExactEngine::Create(world_.bucketization);
  ASSERT_TRUE(oracle.ok());
  for (size_t k = 0; k <= 1; ++k) {
    for (size_t bucket = 0; bucket < world_.bucketization.num_buckets();
         ++bucket) {
      Query query;
      query.tenant = "oracle";
      query.kind = QueryKind::kPerBucket;
      query.k = k;
      query.bucket = bucket;
      const QueryAnswer answer = Answer(query);
      EXPECT_NEAR(answer.disclosure,
                  BrutePerBucket(*oracle, world_.bucketization, bucket, k),
                  kTol)
          << "bucket=" << bucket << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace cksafe
