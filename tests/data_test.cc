// Schema and Table tests.

#include <gtest/gtest.h>

#include "cksafe/data/schema.h"
#include "cksafe/data/table.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeHospitalTable;

TEST(SchemaTest, NumericAttribute) {
  const AttributeDef age = AttributeDef::Numeric("Age", 17, 90);
  EXPECT_EQ(age.name(), "Age");
  EXPECT_FALSE(age.is_categorical());
  EXPECT_EQ(age.domain_size(), 74u);
  EXPECT_TRUE(age.IsValidCode(17));
  EXPECT_TRUE(age.IsValidCode(90));
  EXPECT_FALSE(age.IsValidCode(16));
  EXPECT_EQ(*age.CodeOf("42"), 42);
  EXPECT_FALSE(age.CodeOf("16").ok());
  EXPECT_FALSE(age.CodeOf("young").ok());
  EXPECT_EQ(age.LabelOf(42), "42");
}

TEST(SchemaTest, CategoricalAttribute) {
  const AttributeDef sex = AttributeDef::Categorical("Sex", {"M", "F"});
  EXPECT_TRUE(sex.is_categorical());
  EXPECT_EQ(sex.domain_size(), 2u);
  EXPECT_EQ(*sex.CodeOf("F"), 1);
  EXPECT_EQ(*sex.CodeOf("  M "), 0);  // trimmed
  EXPECT_FALSE(sex.CodeOf("X").ok());
  EXPECT_EQ(sex.LabelOf(0), "M");
}

TEST(SchemaTest, IndexLookup) {
  const Schema schema({AttributeDef::Numeric("Age", 0, 99),
                       AttributeDef::Categorical("Sex", {"M", "F"})});
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(*schema.IndexOf("Sex"), 1u);
  EXPECT_FALSE(schema.IndexOf("Zip").ok());
}

TEST(TableTest, AppendAndAccess) {
  Table table{Schema({AttributeDef::Numeric("Age", 0, 99),
                      AttributeDef::Categorical("Sex", {"M", "F"})})};
  ASSERT_TRUE(table.AppendRow({30, 1}).ok());
  ASSERT_TRUE(table.AppendRowFromText({"41", "M"}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(0, 0), 30);
  EXPECT_EQ(table.at(1, 1), 0);
  EXPECT_EQ(table.column(0), (std::vector<int32_t>{30, 41}));
}

TEST(TableTest, RejectsBadRows) {
  Table table{Schema({AttributeDef::Numeric("Age", 0, 99),
                      AttributeDef::Categorical("Sex", {"M", "F"})})};
  EXPECT_FALSE(table.AppendRow({30}).ok());          // arity
  EXPECT_FALSE(table.AppendRow({300, 0}).ok());      // out of domain
  EXPECT_FALSE(table.AppendRow({30, 5}).ok());       // bad categorical code
  EXPECT_FALSE(table.AppendRowFromText({"x", "M"}).ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, RowLabels) {
  Table table = MakeHospitalTable();
  EXPECT_EQ(table.RowLabel(3), "Ed");
  EXPECT_EQ(*table.FindRowByLabel("Hannah"), 6u);
  EXPECT_FALSE(table.FindRowByLabel("Nobody").ok());

  Table unlabeled{Schema({AttributeDef::Numeric("X", 0, 9)})};
  ASSERT_TRUE(unlabeled.AppendRow({1}).ok());
  EXPECT_EQ(unlabeled.RowLabel(0), "p0");
}

TEST(TableTest, Projection) {
  const Table table = MakeHospitalTable();
  auto projected = table.Project({3, 2});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 2u);
  EXPECT_EQ(projected->schema().attribute(0).name(), "Disease");
  EXPECT_EQ(projected->num_rows(), 10u);
  EXPECT_EQ(projected->at(3, 0), table.at(3, 3));
  EXPECT_EQ(projected->RowLabel(3), "Ed");  // labels carried over
  EXPECT_FALSE(table.Project({99}).ok());
}

TEST(TableTest, RowToString) {
  const Table table = MakeHospitalTable();
  EXPECT_EQ(table.RowToString(0),
            "Bob: Zip=14850, Age=23, Sex=M, Disease=flu");
}

}  // namespace
}  // namespace cksafe
