// Parallel batch-evaluation tests: FindMinimalSafeNodes must be
// bit-identical across thread counts (nodes, order, and every stats
// counter), both for synthetic monotone predicates and for the real
// (c,k)-safety predicate sharing one DisclosureCache across workers; the
// shared cache itself is hammered concurrently against fresh tables.

#include "cksafe/search/lattice_search.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "cksafe/adult/adult.h"
#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

// Structural equality of two search results, including visit order.
void ExpectIdenticalResults(const LatticeSearchResult& expected,
                            const LatticeSearchResult& actual,
                            const std::string& label) {
  EXPECT_EQ(expected.minimal_safe_nodes, actual.minimal_safe_nodes) << label;
  EXPECT_EQ(expected.stats.nodes_visited, actual.stats.nodes_visited) << label;
  EXPECT_EQ(expected.stats.evaluations, actual.stats.evaluations) << label;
  EXPECT_EQ(expected.stats.implied_safe, actual.stats.implied_safe) << label;
}

// A random monotone predicate: safe iff a positively weighted sum of the
// levels crosses a threshold.
NodePredicate RandomFrontier(Rng* rng, size_t num_attributes,
                             size_t max_height) {
  std::vector<int> weights(num_attributes);
  for (int& w : weights) w = 1 + static_cast<int>(rng->NextBelow(3));
  const int threshold = static_cast<int>(rng->NextBelow(2 * max_height + 1));
  return [weights, threshold](const LatticeNode& node) {
    int sum = 0;
    for (size_t i = 0; i < node.size(); ++i) sum += weights[i] * node[i];
    return sum >= threshold;
  };
}

TEST(ParallelSearchTest, ThreadCountsAgreeOnRandomMonotonePredicates) {
  Rng rng(123);
  const GeneralizationLattice lattice({4, 3, 3, 2});
  for (int trial = 0; trial < 10; ++trial) {
    const NodePredicate is_safe =
        RandomFrontier(&rng, lattice.num_attributes(), lattice.MaxHeight());
    for (const bool use_pruning : {true, false}) {
      const LatticeSearchResult sequential =
          FindMinimalSafeNodes(lattice, is_safe, use_pruning);
      for (const size_t threads : {1u, 2u, 8u}) {
        LatticeSearchOptions options;
        options.use_pruning = use_pruning;
        options.num_threads = threads;
        ExpectIdenticalResults(
            sequential, FindMinimalSafeNodes(lattice, is_safe, options),
            "trial " + std::to_string(trial) + " pruning=" +
                std::to_string(use_pruning) + " threads=" +
                std::to_string(threads));
      }
    }
  }
}

TEST(ParallelSearchTest, ExternalSharedPoolMatchesOwnedPool) {
  const GeneralizationLattice lattice({4, 3, 2});
  const NodePredicate is_safe = [](const LatticeNode& node) {
    return node[0] + 2 * node[1] + node[2] >= 4;
  };
  const LatticeSearchResult sequential = FindMinimalSafeNodes(lattice, is_safe);

  ThreadPool pool(3);
  LatticeSearchOptions options;
  options.pool = &pool;
  for (int round = 0; round < 5; ++round) {
    ExpectIdenticalResults(sequential,
                           FindMinimalSafeNodes(lattice, is_safe, options),
                           "round " + std::to_string(round));
  }
}

TEST(ParallelSearchTest, CkSafetyWithSharedCacheIsDeterministic) {
  // The real workload: (c,k)-safety checks over synthetic Adult, every
  // worker thread funneling through one shared DisclosureCache.
  const Table table = GenerateSyntheticAdult(/*num_rows=*/120, /*seed=*/7);
  auto qis = AdultQuasiIdentifiers();
  ASSERT_TRUE(qis.ok()) << qis.status();
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(*qis);

  DisclosureCache cache;
  std::atomic<uint64_t> calls{0};
  const NodePredicate is_safe = [&](const LatticeNode& node) {
    calls.fetch_add(1, std::memory_order_relaxed);
    auto b = BucketizeAtNode(table, *qis, node, kAdultOccupationColumn);
    CKSAFE_CHECK(b.ok()) << b.status().ToString();
    return DisclosureAnalyzer(*b, &cache).IsCkSafe(/*c=*/0.75, /*k=*/2);
  };

  const LatticeSearchResult sequential = FindMinimalSafeNodes(lattice, is_safe);
  EXPECT_EQ(calls.load(), sequential.stats.evaluations);
  EXPECT_FALSE(sequential.minimal_safe_nodes.empty());

  for (const size_t threads : {2u, 8u}) {
    calls.store(0);
    LatticeSearchOptions options;
    options.num_threads = threads;
    const LatticeSearchResult parallel =
        FindMinimalSafeNodes(lattice, is_safe, options);
    ExpectIdenticalResults(sequential, parallel,
                           "threads=" + std::to_string(threads));
    EXPECT_EQ(calls.load(), sequential.stats.evaluations);
  }
}

TEST(DisclosureCacheConcurrencyTest, HammeredCacheServesCorrectTables) {
  // 8 threads interleave lookups over 6 histograms with interleaved budget
  // upgrades; every returned table must match a freshly computed one and
  // stay valid after the cache moves past it.
  const std::vector<std::vector<uint32_t>> histograms = {
      {5, 3, 2}, {4, 4, 1}, {6, 1, 1}, {3, 3, 3}, {7, 2, 1}, {2, 2, 2}};
  std::vector<BucketStats> stats;
  for (const auto& h : histograms) stats.push_back(BucketStats::FromHistogram(h));

  DisclosureCache cache;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int iter = 0; iter < 200; ++iter) {
        const size_t which = rng.NextBelow(stats.size());
        const size_t max_k = 1 + rng.NextBelow(8);
        const auto table = cache.GetOrCompute(stats[which], max_k);
        if (table->max_k() < max_k) {
          failures.fetch_add(1);
          continue;
        }
        const Minimize1Table fresh(stats[which].counts, max_k);
        for (size_t m = 0; m <= max_k; ++m) {
          if (std::abs(table->MinProbability(m) - fresh.MinProbability(m)) >
              1e-15) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.entries(), histograms.size());
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace cksafe
