// Deep-product underflow regression suite (DESIGN.md §9, PR 4).
//
// Three differential layers gate the log-space kernel:
//  1. The PINNED regression: on a deep-product input the historical
//     linear-domain kernel (reproduced verbatim below) underflows its
//     chained product to exactly 0.0 and reports *certain* disclosure
//     (>= 1 - 1e-9), while the log-space kernel returns a finite log R
//     matching a long-double log-domain oracle to 1e-12 — the bug the
//     rewrite exists to fix, kept here so it can never regress silently.
//  2. Agreement: wherever the linear kernel does NOT underflow, old and
//     new kernels agree to 1e-12 relative on every profile column.
//  3. Pruning exactness: the tiled monotone-argmin prune must be a pure
//     optimization — bit-identical values AND witnesses against an
//     unpruned log-domain reference on random and adversarial inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "cksafe/core/disclosure.h"
#include "cksafe/core/logprob.h"
#include "cksafe/core/minimize2.h"
#include "cksafe/util/random.h"
#include "testing_util.h"

namespace cksafe {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr long double kInfL = std::numeric_limits<long double>::infinity();

// Sorted-descending positive counts, as BucketStats would produce them.
std::vector<uint32_t> Normalize(std::vector<uint32_t> histogram) {
  std::sort(histogram.begin(), histogram.end(), std::greater<uint32_t>());
  while (!histogram.empty() && histogram.back() == 0) histogram.pop_back();
  return histogram;
}

std::vector<std::vector<uint32_t>> NormalizeAll(
    const std::vector<std::vector<uint32_t>>& histograms) {
  std::vector<std::vector<uint32_t>> out;
  for (const auto& histogram : histograms) out.push_back(Normalize(histogram));
  return out;
}

// Builds MINIMIZE2 inputs from sorted-count histograms, sharing one table
// per distinct histogram (mirrors DisclosureCache behaviour).
std::vector<Minimize2Bucket> MakeInputs(
    const std::vector<std::vector<uint32_t>>& histograms, size_t budget) {
  std::vector<Minimize2Bucket> inputs;
  std::vector<std::pair<std::vector<uint32_t>,
                        std::shared_ptr<const Minimize1Table>>> cache;
  for (const std::vector<uint32_t>& counts : histograms) {
    std::shared_ptr<const Minimize1Table> table;
    for (const auto& [key, value] : cache) {
      if (key == counts) table = value;
    }
    if (table == nullptr) {
      table = std::make_shared<const Minimize1Table>(counts, budget);
      cache.emplace_back(counts, table);
    }
    uint64_t n = 0;
    for (uint32_t c : counts) n += c;
    inputs.push_back(Minimize2Bucket{
        table, static_cast<double>(n) / static_cast<double>(counts[0])});
  }
  return inputs;
}

// --- Layer 1 reference: the historical linear-domain kernel -----------------
// A verbatim reproduction of the pre-PR4 Minimize2Forward::Recompute inner
// loops: chained double *products*, O(k) scan per cell, no pruning. Returns
// with_a[m][h] (linear r_min) for every budget h <= k.
std::vector<double> LinearKernelRMinCurve(
    const std::vector<Minimize2Bucket>& buckets, size_t k) {
  const size_t m = buckets.size();
  const size_t width = k + 1;
  std::vector<double> no_a((m + 1) * width, kInf);
  std::vector<double> with_a((m + 1) * width, kInf);
  no_a[0] = 1.0;
  for (size_t i = 1; i <= m; ++i) {
    const Minimize1Table& table = *buckets[i - 1].table;
    const double ratio = buckets[i - 1].ratio;
    for (size_t h = 0; h < width; ++h) {
      double best = kInf;
      double best_w = kInf;
      for (size_t t = 0; t <= h; ++t) {
        const double head = no_a[(i - 1) * width + (h - t)];
        if (head != kInf) {
          best = std::min(best, table.MinProbability(t) * head);
          best_w = std::min(best_w,
                            table.MinProbability(t + 1) * ratio * head);
        }
        const double head_with = with_a[(i - 1) * width + (h - t)];
        if (head_with != kInf) {
          best_w = std::min(best_w, table.MinProbability(t) * head_with);
        }
      }
      no_a[i * width + h] = best;
      with_a[i * width + h] = best_w;
    }
  }
  return std::vector<double>(with_a.begin() + m * width, with_a.end());
}

// --- Layers 1/2 reference: long-double log-domain oracle --------------------

// Lemma 12 recursion in long-double log space: the high-precision
// per-bucket minimum the MINIMIZE2 oracle composes.
class OracleMinimize1 {
 public:
  OracleMinimize1(const std::vector<uint32_t>& counts, size_t max_k)
      : counts_(counts), max_k_(max_k) {
    prefix_.resize(counts.size() + 1, 0);
    for (size_t j = 0; j < counts.size(); ++j) {
      prefix_[j + 1] = prefix_[j] + counts[j];
      n_ += counts[j];
    }
    i_limit_ = std::min<uint64_t>(max_k, n_);
    memo_.assign((i_limit_ + 1) * (max_k + 1) * (max_k + 1), 0);
    computed_.assign(memo_.size(), 0);
  }

  long double MinLog(size_t atoms) {
    return atoms == 0 ? 0.0L : Solve(0, atoms, atoms);
  }

 private:
  long double Solve(size_t i, size_t cap, size_t rem) {
    if (rem == 0) return 0.0L;
    if (i >= i_limit_) return kInfL;
    const size_t index = (i * (max_k_ + 1) + cap) * (max_k_ + 1) + rem;
    if (computed_[index]) return memo_[index];
    long double best = kInfL;
    for (size_t ki = 1; ki <= std::min(cap, rem); ++ki) {
      const long double child = Solve(i + 1, ki, rem - ki);
      if (child == kInfL) continue;
      const long double numer =
          static_cast<long double>(n_) - static_cast<long double>(i) -
          static_cast<long double>(prefix_[std::min(ki, counts_.size())]);
      const long double denom =
          static_cast<long double>(n_) - static_cast<long double>(i);
      const long double factor =
          numer <= 0.0L ? -kInfL : std::log(numer / denom);
      best = std::min(best, factor + child);
    }
    computed_[index] = 1;
    memo_[index] = best;
    return best;
  }

  std::vector<uint32_t> counts_;
  std::vector<uint64_t> prefix_;
  uint64_t n_ = 0;
  size_t max_k_ = 0;
  size_t i_limit_ = 0;
  std::vector<long double> memo_;
  std::vector<uint8_t> computed_;
};

// The forward MINIMIZE2 recurrence in long-double log space, unpruned.
std::vector<long double> OracleLogRMinCurve(
    const std::vector<std::vector<uint32_t>>& histograms, size_t k) {
  const size_t m = histograms.size();
  const size_t width = k + 1;
  // One memo per distinct histogram (the O(k^3) tables dwarf the sweep).
  std::vector<std::pair<std::vector<uint32_t>,
                        std::shared_ptr<OracleMinimize1>>> cache;
  std::vector<std::shared_ptr<OracleMinimize1>> tables;
  std::vector<long double> log_ratios;
  for (const std::vector<uint32_t>& counts : histograms) {
    std::shared_ptr<OracleMinimize1> table;
    for (const auto& [key, value] : cache) {
      if (key == counts) table = value;
    }
    if (table == nullptr) {
      table = std::make_shared<OracleMinimize1>(counts, k + 1);
      cache.emplace_back(counts, table);
    }
    tables.push_back(table);
    uint64_t n = 0;
    for (uint32_t c : counts) n += c;
    log_ratios.push_back(std::log(static_cast<long double>(n) /
                                  static_cast<long double>(counts[0])));
  }
  std::vector<long double> no_a((m + 1) * width, kInfL);
  std::vector<long double> with_a((m + 1) * width, kInfL);
  no_a[0] = 0.0L;
  for (size_t i = 1; i <= m; ++i) {
    OracleMinimize1& table = *tables[i - 1];
    for (size_t h = 0; h < width; ++h) {
      long double best = kInfL;
      long double best_w = kInfL;
      for (size_t t = 0; t <= h; ++t) {
        const long double head = no_a[(i - 1) * width + (h - t)];
        if (head != kInfL) {
          best = std::min(best, table.MinLog(t) + head);
          best_w = std::min(best_w,
                            table.MinLog(t + 1) + log_ratios[i - 1] + head);
        }
        const long double head_with = with_a[(i - 1) * width + (h - t)];
        if (head_with != kInfL) {
          best_w = std::min(best_w, table.MinLog(t) + head_with);
        }
      }
      no_a[i * width + h] = best;
      with_a[i * width + h] = best_w;
    }
  }
  return std::vector<long double>(with_a.begin() + m * width, with_a.end());
}

// --- Layer 3 reference: unpruned double log kernel --------------------------
// Identical candidate evaluation and tie-breaking to Minimize2Forward, but
// the plain O(k) scan: the pruned kernel must match it bit for bit.
struct UnprunedLogSweep {
  std::vector<LogProb> no_a;
  std::vector<LogProb> with_a;
  std::vector<uint16_t> no_choice_t;
  std::vector<uint16_t> wa_choice_t;
  std::vector<uint8_t> wa_choice_branch;
  size_t width = 0;
};

UnprunedLogSweep UnprunedLogKernel(const std::vector<Minimize2Bucket>& buckets,
                                   size_t k) {
  const size_t m = buckets.size();
  UnprunedLogSweep s;
  s.width = k + 1;
  s.no_a.assign((m + 1) * s.width, kLogInfeasible);
  s.with_a.assign((m + 1) * s.width, kLogInfeasible);
  s.no_choice_t.assign((m + 1) * s.width, 0);
  s.wa_choice_t.assign((m + 1) * s.width, 0);
  s.wa_choice_branch.assign((m + 1) * s.width, 0);
  s.no_a[0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    const Minimize1Table& table = *buckets[i - 1].table;
    const double log_ratio = std::log(buckets[i - 1].ratio);
    for (size_t h = 0; h < s.width; ++h) {
      LogProb best = kLogInfeasible;
      uint16_t best_t = 0;
      for (size_t t = 0; t <= h; ++t) {
        const LogProb head = s.no_a[(i - 1) * s.width + (h - t)];
        if (head == kLogInfeasible) continue;
        const LogProb candidate = table.MinLogProbability(t) + head;
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<uint16_t>(t);
        }
      }
      s.no_a[i * s.width + h] = best;
      s.no_choice_t[i * s.width + h] = best_t;

      LogProb best_w = kLogInfeasible;
      uint16_t best_w_t = 0;
      uint8_t best_w_branch = 0;
      for (size_t t = 0; t <= h; ++t) {
        const LogProb head_with = s.with_a[(i - 1) * s.width + (h - t)];
        if (head_with != kLogInfeasible) {
          const LogProb candidate = table.MinLogProbability(t) + head_with;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint16_t>(t);
            best_w_branch = 0;
          }
        }
        const LogProb head_no = s.no_a[(i - 1) * s.width + (h - t)];
        if (head_no != kLogInfeasible) {
          const LogProb candidate =
              table.MinLogProbability(t + 1) + log_ratio + head_no;
          if (candidate < best_w) {
            best_w = candidate;
            best_w_t = static_cast<uint16_t>(t);
            best_w_branch = 1;
          }
        }
      }
      s.with_a[i * s.width + h] = best_w;
      s.wa_choice_t[i * s.width + h] = best_w_t;
      s.wa_choice_branch[i * s.width + h] = best_w_branch;
    }
  }
  return s;
}

// The deep-product workload: buckets whose minimum probabilities are tiny
// (one dominant sensitive value among many singletons), so optimal chains
// of a few dozen atoms drop below DBL_MIN.
std::vector<uint32_t> DeepHistogram(uint32_t dominant, size_t singletons) {
  std::vector<uint32_t> counts{dominant};
  counts.insert(counts.end(), singletons, 1);
  return counts;
}

TEST(UnderflowRegressionTest, LinearKernelMisreportsCertainDisclosure) {
  // 200 identical buckets of a billion tuples with 69 singleton values:
  // MinProbability(1) ~ 6.9e-8 per bucket, so the optimal 60-atom chain is
  // around e^-1100 — far below DBL_MIN.
  const std::vector<std::vector<uint32_t>> histograms(
      200, DeepHistogram(1'000'000'000, 69));
  constexpr size_t kAtoms = 60;
  const std::vector<Minimize2Bucket> inputs = MakeInputs(histograms, kAtoms + 1);

  // The historical kernel underflows to exactly 0 and claims certainty.
  const std::vector<double> linear = LinearKernelRMinCurve(inputs, kAtoms);
  EXPECT_EQ(linear[kAtoms], 0.0);
  const double linear_disclosure = 1.0 / (1.0 + linear[kAtoms]);
  EXPECT_GE(linear_disclosure, 1.0 - 1e-9);  // "certain disclosure"
  // ... and under the linear rule even the degenerate c = 1 policy
  // ("disclosure must stay below certainty") reads as violated.
  EXPECT_FALSE(linear_disclosure < 1.0);

  // The log-space kernel reports the honest, finite log R ...
  Minimize2Forward dp(kAtoms);
  dp.Recompute(inputs, 0);
  const LogProb log_r = dp.LogRMin();
  ASSERT_TRUE(std::isfinite(log_r));
  EXPECT_LT(log_r, std::log(std::numeric_limits<double>::min()))
      << "input no longer exercises the underflow regime";

  // ... matching the long-double oracle to 1e-12 relative ...
  const std::vector<long double> oracle = OracleLogRMinCurve(histograms, kAtoms);
  EXPECT_LE(std::abs(static_cast<long double>(log_r) - oracle[kAtoms]),
            1e-12L * std::abs(oracle[kAtoms]));

  // ... so disclosure is provably NOT certain: the c = 1 verdict flips to
  // the correct one, and the witness still reconstructs.
  EXPECT_TRUE(IsSafeLogRatio(log_r, 1.0));
  EXPECT_EQ(DisclosureFromLogRatio(log_r), 1.0)
      << "the linear double saturates; only the log verdict is exact";
  const std::vector<Minimize2Placement> placements = dp.WitnessPlacements();
  uint32_t placed = 0;
  size_t targets = 0;
  for (const Minimize2Placement& p : placements) {
    placed += p.atoms;
    targets += p.has_target ? 1 : 0;
  }
  EXPECT_EQ(placed, kAtoms);
  EXPECT_EQ(targets, 1u);
}

TEST(UnderflowRegressionTest, AgreesWithLinearKernelOutsideUnderflow) {
  Rng rng(20260726);
  for (int trial = 0; trial < 4; ++trial) {
    const auto histograms =
        NormalizeAll(testing::RandomHistograms(&rng, 40, 6, 24));
    constexpr size_t kAtoms = 8;
    const std::vector<Minimize2Bucket> inputs =
        MakeInputs(histograms, kAtoms + 1);
    const std::vector<double> linear = LinearKernelRMinCurve(inputs, kAtoms);
    Minimize2Forward dp(kAtoms);
    dp.Recompute(inputs, 0);
    for (size_t h = 0; h <= kAtoms; ++h) {
      const double r_new = std::exp(dp.LogRMinAt(h));
      ASSERT_NE(linear[h], kInf);
      EXPECT_LE(std::abs(r_new - linear[h]),
                1e-12 * std::max(linear[h], 1e-300))
          << "trial " << trial << " h=" << h;
    }
  }
}

TEST(UnderflowRegressionTest, ThousandsOfBucketsMatchLongDoubleOracle) {
  // Mixed deep histograms across 2500 buckets: optimal chains traverse
  // many distinct tables and reach ~e^-1000 at the full budget.
  // Both histograms keep more distinct values than the full atom budget,
  // so no structure saturates to probability 0 and the optimum stays a
  // finite (huge, negative) log.
  std::vector<std::vector<uint32_t>> histograms;
  for (size_t i = 0; i < 2500; ++i) {
    histograms.push_back(i % 2 == 0 ? DeepHistogram(1'000'000'000, 69)
                                    : DeepHistogram(100'000'000, 79));
  }
  constexpr size_t kAtoms = 60;
  const std::vector<Minimize2Bucket> inputs = MakeInputs(histograms, kAtoms + 1);
  Minimize2Forward dp(kAtoms);
  dp.Recompute(inputs, 0);
  const std::vector<long double> oracle = OracleLogRMinCurve(histograms, kAtoms);
  for (size_t h : {size_t{0}, size_t{1}, size_t{10}, size_t{30}, size_t{60}}) {
    const LogProb log_r = dp.LogRMinAt(h);
    ASSERT_TRUE(std::isfinite(log_r)) << "h=" << h;
    EXPECT_LE(std::abs(static_cast<long double>(log_r) - oracle[h]),
              1e-12L * std::max(std::abs(oracle[h]), 1.0L))
        << "h=" << h;
  }
  // The log-ratio curve is nonincreasing in h (disclosure nondecreasing).
  for (size_t h = 1; h <= kAtoms; ++h) {
    EXPECT_LE(dp.LogRMinAt(h), dp.LogRMinAt(h - 1)) << "h=" << h;
  }

  // Per-bucket sweep: the most vulnerable bucket's log R equals the global
  // minimum (the Definition 5 / Definition 6 consistency, now exact in
  // the deep regime where linear disclosures all tie at 1.0).
  const std::vector<LogProb> suffix = ComputeNoASuffix(inputs, kAtoms);
  const std::vector<LogProb> per_bucket =
      PerBucketLogRatioSweep(inputs, kAtoms, dp, suffix);
  const LogProb best =
      *std::min_element(per_bucket.begin(), per_bucket.end());
  EXPECT_LE(std::abs(best - dp.LogRMin()),
            1e-9 * std::abs(dp.LogRMin()));
}

TEST(UnderflowRegressionTest, PruningIsBitIdenticalToUnprunedLogKernel) {
  Rng rng(77);
  std::vector<std::vector<std::vector<uint32_t>>> cases;
  for (int trial = 0; trial < 5; ++trial) {
    cases.push_back(NormalizeAll(testing::RandomHistograms(&rng, 30, 5, 16)));
  }
  // One adversarial deep case: pruning must stay exact where everything
  // is astronomically small.
  cases.push_back(std::vector<std::vector<uint32_t>>(
      150, DeepHistogram(1'000'000'000, 69)));
  for (size_t c = 0; c < cases.size(); ++c) {
    const size_t k = c + 4;  // vary the budget across cases
    const std::vector<Minimize2Bucket> inputs = MakeInputs(cases[c], k + 1);
    Minimize2Forward dp(k);
    dp.Recompute(inputs, 0);
    const UnprunedLogSweep ref = UnprunedLogKernel(inputs, k);
    const size_t m = cases[c].size();
    for (size_t h = 0; h <= k; ++h) {
      EXPECT_EQ(dp.LogRMinAt(h), ref.with_a[m * ref.width + h])
          << "case " << c << " h=" << h;
    }
    for (size_t i = 0; i <= m; ++i) {
      const LogProb* row = dp.NoALogRow(i);
      for (size_t h = 0; h <= k; ++h) {
        ASSERT_EQ(row[h], ref.no_a[i * ref.width + h])
            << "case " << c << " row " << i << " h=" << h;
      }
    }
    // Witness reconstruction consumes the recorded argmins; replay the
    // reference argmins and require the identical placement.
    const std::vector<Minimize2Placement> placements = dp.WitnessPlacements();
    size_t h = k;
    bool in_with_a = true;
    for (size_t i = m; i >= 1; --i) {
      uint16_t t;
      bool has_target = false;
      if (in_with_a) {
        t = ref.wa_choice_t[i * ref.width + h];
        if (ref.wa_choice_branch[i * ref.width + h] == 1) {
          has_target = true;
          in_with_a = false;
        }
      } else {
        t = ref.no_choice_t[i * ref.width + h];
      }
      EXPECT_EQ(placements[i - 1].atoms, t) << "case " << c << " bucket " << i;
      EXPECT_EQ(placements[i - 1].has_target, has_target)
          << "case " << c << " bucket " << i;
      h -= t;
    }
  }
}

TEST(UnderflowRegressionTest, SaturatedBudgetBeyondPlaceableAtomsIsTotal) {
  // Satellite regression: a budget larger than every bucket's distinct
  // values saturates (some structure hits probability zero) instead of
  // crashing — analyzer queries stay total and report certain disclosure.
  auto fixture = testing::MakeBuckets({{2, 1, 0}, {1, 1, 1}}, 3);
  DisclosureAnalyzer analyzer(fixture.bucketization);
  constexpr size_t kAbsurd = 50;  // far beyond the 9 placeable atom slots
  const WorstCaseDisclosure worst =
      analyzer.MaxDisclosureImplications(kAbsurd);
  EXPECT_EQ(worst.disclosure, 1.0);
  EXPECT_EQ(worst.log_r_min, kLogZero);
  EXPECT_FALSE(IsSafeLogRatio(worst.log_r_min, 1.0));  // genuinely certain
  const std::vector<double> per_bucket =
      analyzer.PerBucketDisclosure(kAbsurd);
  for (double d : per_bucket) EXPECT_EQ(d, 1.0);
  EXPECT_FALSE(analyzer.IsCkSafe(0.99, kAbsurd));
}

}  // namespace
}  // namespace cksafe
