// Snapshot-consistency torture test: N reader threads issue mixed
// point/profile queries through the QueryRouter while a writer swaps
// snapshots every few milliseconds.
//
// The contract under test is the RCU one: every served answer must be
// consistent with EXACTLY ONE published snapshot — bit-identical to a
// fresh synchronous DisclosureAnalyzer over that snapshot's bucketization
// — never a torn mix of two releases. Each answer names the snapshot
// sequence it was computed against, so the assertion is direct: look the
// sequence up in the registry of everything the writer published and
// compare against the precomputed reference answers with exact double
// equality. Per reader, observed sequences must also be nondecreasing
// (a router batch never travels back in time).
//
// Runs under the ASan/UBSan and TSan CI steps (see .github/workflows).

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cksafe/core/disclosure.h"
#include "cksafe/serve/query_router.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/serve/snapshot_store.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;
using testing::RandomHistograms;
using testing::SyntheticBuckets;

constexpr size_t kSnapshots = 12;
constexpr size_t kMaxK = 6;
constexpr size_t kReaders = 4;
constexpr size_t kQueriesPerReader = 400;

/// Reference answers for one snapshot, precomputed synchronously.
struct Reference {
  std::shared_ptr<const ReleaseSnapshot> snapshot;
  DisclosureProfile profile;                        // budgets 0..kMaxK
  std::vector<std::vector<double>> per_bucket;      // [k][bucket]
};

TEST(ServeTortureTest, AnswersMatchExactlyOnePublishedSnapshot) {
  const uint64_t seed = testing::TestSeed(0x70727572ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // Distinct random bucketizations, one per future snapshot. Buckets >= 2
  // so per-bucket queries for buckets {0, 1} are always in range.
  std::vector<SyntheticBuckets> instances;
  std::vector<Reference> references(kSnapshots + 1);  // index = sequence
  for (size_t s = 1; s <= kSnapshots; ++s) {
    instances.push_back(MakeBuckets(
        RandomHistograms(&rng, 6 + s % 5, 4, 7), 4));
    const Bucketization& bucketization = instances.back().bucketization;
    Reference& ref = references[s];
    ref.snapshot = MakeReleaseSnapshot(s, bucketization);
    DisclosureAnalyzer fresh(ref.snapshot->bucketization);
    ref.profile = fresh.Profile(kMaxK);
    ref.per_bucket.resize(kMaxK + 1);
    for (size_t k = 0; k <= kMaxK; ++k) {
      ref.per_bucket[k] = fresh.PerBucketDisclosure(k);
    }
  }

  ServingDirectory directory;
  SnapshotStore* store = directory.GetOrAddTenant("tenant");
  store->Publish(references[1].snapshot);
  QueryRouter router(&directory);  // live worker thread

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (size_t s = 2; s <= kSnapshots; ++s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      store->Publish(references[s].snapshot);
    }
    writer_done = true;
  });

  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng(seed + 0xbeef + r);
      uint64_t last_sequence = 0;
      // Keep querying until BOTH the minimum count is reached and the
      // writer has swapped through every snapshot, so reads genuinely
      // straddle every transition.
      for (size_t i = 0; i < kQueriesPerReader || !writer_done.load(); ++i) {
        Query query;
        query.tenant = "tenant";
        query.k = reader_rng.NextBelow(kMaxK + 1);
        switch (reader_rng.NextBelow(4)) {
          case 0:
            query.kind = QueryKind::kIsCkSafe;
            query.c = 0.3 + 0.1 * static_cast<double>(reader_rng.NextBelow(7));
            break;
          case 1:
            query.kind = QueryKind::kDisclosure;
            break;
          case 2:
            query.kind = QueryKind::kProfileAtK;
            break;
          default:
            query.kind = QueryKind::kPerBucket;
            query.bucket = reader_rng.NextBelow(2);
            break;
        }
        // Counter sanity from inside the storm (regression, PR 7):
        // submitted is counted before the push, so no interleaving of
        // submitters, worker, and this read may show more answers than
        // submissions. Sampled every few queries to keep the loop hot.
        if (i % 16 == 0) {
          const RouterStats mid = router.stats();
          ASSERT_LE(mid.answered, mid.submitted)
              << "stats raced: answered overtook submitted";
        }
        const auto answer = router.Ask(query);
        if (!answer.ok()) {
          // Backpressure is the only admissible failure under load.
          ASSERT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        const uint64_t sequence = answer->snapshot_sequence;
        ASSERT_GE(sequence, uint64_t{1});
        ASSERT_LE(sequence, kSnapshots);
        ASSERT_GE(sequence, last_sequence)
            << "a reader observed snapshots moving backwards";
        last_sequence = sequence;

        // The answer must equal the reference for the ONE snapshot it
        // names — exact double equality, no tolerance.
        const Reference& ref = references[sequence];
        bool match = true;
        switch (query.kind) {
          case QueryKind::kIsCkSafe:
            match = answer->safe == ref.profile.IsCkSafe(query.c, query.k) &&
                    answer->disclosure == ref.profile.implication[query.k];
            break;
          case QueryKind::kDisclosure:
            match =
                answer->disclosure == ref.profile.implication[query.k] &&
                answer->log_r == ref.profile.implication_log_r[query.k];
            break;
          case QueryKind::kProfileAtK:
            match = answer->disclosure == ref.profile.implication[query.k] &&
                    answer->negation == ref.profile.negation[query.k];
            break;
          case QueryKind::kPerBucket:
            match = answer->disclosure ==
                    ref.per_bucket[query.k][query.bucket];
            break;
        }
        if (!match) ++torn;
      }
    });
  }

  for (auto& reader : readers) reader.join();
  writer.join();
  router.Stop();

  EXPECT_EQ(torn.load(), 0u)
      << "answers inconsistent with their named snapshot";
  EXPECT_TRUE(writer_done.load());
  const RouterStats stats = router.stats();
  EXPECT_GE(stats.answered, 1u);
  // At quiescence every admitted query has been answered (the worker
  // drains the queue before joining), so the inequality tightens to
  // equality — rejected queries were rolled back out of `submitted`.
  EXPECT_EQ(stats.answered, stats.submitted);
  // The coalescing machinery must actually have been exercised: strictly
  // fewer sweeps than answers (the whole point of batching), and at least
  // one snapshot reload observed from the writer's swaps.
  EXPECT_LT(stats.profile_sweeps + stats.per_bucket_sweeps, stats.answered);
  EXPECT_GE(stats.snapshot_reloads, 2u);
}

}  // namespace
}  // namespace cksafe
