// MINIMIZE1 (Lemma 12 / Algorithm 1) tests: closed form on hand-computed
// buckets, equality with exhaustive minimization over *all* atom sets via
// the exact engine, and structural properties.

#include "cksafe/core/minimize1.h"

#include <gtest/gtest.h>

#include <numeric>

#include "cksafe/exact/exact_engine.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::MakeBuckets;
using testing::RandomHistograms;

// Exhaustive oracle: minimum of Pr(∧ ¬A_i | B) over all sets of m distinct
// atoms involving the bucket's persons, computed by the exact engine.
double BruteForceMinNegationConjunction(const ExactEngine& engine, size_t m) {
  const size_t num_atoms = engine.num_persons() * engine.domain_size();
  CKSAFE_CHECK_LE(m, num_atoms);
  double best = 1.0;
  std::vector<size_t> chosen;
  const double total = static_cast<double>(engine.num_worlds());
  std::function<void(size_t, Bitset)> rec = [&](size_t start, Bitset sat) {
    if (chosen.size() == m) {
      best = std::min(best, static_cast<double>(sat.Count()) / total);
      return;
    }
    for (size_t a = start; a < num_atoms; ++a) {
      const Atom atom{static_cast<PersonId>(a / engine.domain_size()),
                      static_cast<int32_t>(a % engine.domain_size())};
      chosen.push_back(a);
      rec(a + 1, sat & engine.AtomWorlds(atom).Not());
      chosen.pop_back();
    }
  };
  rec(0, Bitset(engine.num_worlds(), /*all_ones=*/true));
  return best;
}

TEST(Minimize1Test, HandComputedHospitalMaleBucket) {
  // Counts {2, 2, 1}, n = 5 (the Figure 3 male bucket).
  Minimize1Table table({2, 2, 1}, 4);
  EXPECT_NEAR(table.MinProbability(0), 1.0, kProbabilityEpsilon);
  // m=1: avoid the most frequent value: (5-2)/5.
  EXPECT_NEAR(table.MinProbability(1), 3.0 / 5.0, kProbabilityEpsilon);
  // m=2: structures (2) -> 1/5 vs (1,1) -> (3/5)(2/4) = 3/10; min 1/5.
  EXPECT_NEAR(table.MinProbability(2), 1.0 / 5.0, kProbabilityEpsilon);
  // m=3: (3) covers all values -> 0.
  EXPECT_NEAR(table.MinProbability(3), 0.0, kProbabilityEpsilon);
  EXPECT_NEAR(table.MinProbability(4), 0.0, kProbabilityEpsilon);
}

TEST(Minimize1Test, HandComputedSkewedBucket) {
  // Counts {2, 1, 1, 1}, n = 5: the structure (1,1,1) beats (3) and (2,1)
  // at m = 3 — spreading atoms over persons exploits the without-
  // replacement dependence.
  Minimize1Table table({2, 1, 1, 1}, 3);
  EXPECT_NEAR(table.MinProbability(3), 1.0 / 10.0, kProbabilityEpsilon);
  const std::vector<uint32_t> partition = table.WitnessPartition(3);
  EXPECT_EQ(partition, (std::vector<uint32_t>{1, 1, 1}));
}

TEST(Minimize1Test, WitnessPartitionIsDescendingAndSumsToM) {
  Minimize1Table table({5, 3, 2, 1, 1}, 7);
  for (size_t m = 1; m <= 7; ++m) {
    const std::vector<uint32_t> partition = table.WitnessPartition(m);
    EXPECT_EQ(std::accumulate(partition.begin(), partition.end(), 0u), m);
    for (size_t i = 1; i < partition.size(); ++i) {
      EXPECT_LE(partition[i], partition[i - 1]) << "m=" << m;
    }
  }
}

TEST(Minimize1Test, NonincreasingInM) {
  Minimize1Table table({4, 3, 3, 2, 1}, 10);
  for (size_t m = 1; m <= 10; ++m) {
    EXPECT_LE(table.MinProbability(m), table.MinProbability(m - 1) + 1e-12)
        << "m=" << m;
  }
}

TEST(Minimize1Test, SingletonBucket) {
  Minimize1Table table({1}, 3);
  EXPECT_NEAR(table.MinProbability(0), 1.0, kProbabilityEpsilon);
  // Any atom on the single person with its (only) value: probability 0.
  EXPECT_NEAR(table.MinProbability(1), 0.0, kProbabilityEpsilon);
  EXPECT_NEAR(table.MinProbability(2), 0.0, kProbabilityEpsilon);
}

TEST(Minimize1Test, UniformBucketMatchesClosedForm) {
  // Counts {1,1,1,1,1}: structures all evaluate via distinct persons or
  // stacked values; m=1 -> 4/5, m=2 best is (2) -> 3/5 vs (1,1) ->
  // (4/5)(3/4) = 3/5; equal by exchangeability.
  Minimize1Table table({1, 1, 1, 1, 1}, 3);
  EXPECT_NEAR(table.MinProbability(1), 4.0 / 5.0, kProbabilityEpsilon);
  EXPECT_NEAR(table.MinProbability(2), 3.0 / 5.0, kProbabilityEpsilon);
  EXPECT_NEAR(table.MinProbability(3), 2.0 / 5.0, kProbabilityEpsilon);
}

// --- Property sweep: DP equals the exhaustive minimum on random buckets ---

struct Minimize1Case {
  std::vector<uint32_t> histogram;  // indexed by value code
  size_t domain;
};

class Minimize1PropertyTest
    : public ::testing::TestWithParam<Minimize1Case> {};

TEST_P(Minimize1PropertyTest, MatchesExhaustiveMinimumOverAtomSets) {
  const Minimize1Case& param = GetParam();
  auto fixture = MakeBuckets({param.histogram}, param.domain);
  auto engine = ExactEngine::Create(fixture.bucketization);
  ASSERT_TRUE(engine.ok());

  const BucketStats stats =
      BucketStats::FromHistogram(fixture.bucketization.bucket(0).histogram);
  const size_t max_m = 3;
  Minimize1Table table = Minimize1Table::FromStats(stats, max_m);
  for (size_t m = 0; m <= max_m; ++m) {
    const double brute = BruteForceMinNegationConjunction(*engine, m);
    EXPECT_NEAR(table.MinProbability(m), brute, 1e-9)
        << "m=" << m << " histogram size " << stats.n;
  }
}

std::vector<Minimize1Case> MakeMinimize1Cases() {
  std::vector<Minimize1Case> cases = {
      {{2, 2, 1}, 3},     // hospital male bucket
      {{2, 1, 1, 1}, 4},  // skewed
      {{3, 1}, 2},        // heavy head
      {{1, 1, 1, 1}, 4},  // uniform
      {{4, 2, 0}, 3},     // value absent from bucket (code 2)
      {{1, 0, 3}, 3},     // absent middle value
  };
  Rng rng(1234);
  for (int i = 0; i < 6; ++i) {
    auto histograms = RandomHistograms(&rng, 1, 3, 5);
    cases.push_back({histograms[0], 3});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomBuckets, Minimize1PropertyTest,
    ::testing::ValuesIn(MakeMinimize1Cases()),
    [](const ::testing::TestParamInfo<Minimize1Case>& param_info) {
      return "case" + std::to_string(param_info.index);
    });

}  // namespace
}  // namespace cksafe
