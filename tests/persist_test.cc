// Unit and property coverage for the durable store's building blocks:
// page framing, the label dictionary, the snapshot/dictionary codecs, the
// manifest scanner, the buffer pool, and the assembled DurableStore's
// publish → load → verify round trip. The recovery torture (kill -9,
// truncation sweeps) lives in persist_recovery_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cksafe/core/disclosure.h"
#include "cksafe/persist/buffer_pool.h"
#include "cksafe/persist/durable_store.h"
#include "cksafe/persist/manifest.h"
#include "cksafe/persist/segment.h"
#include "cksafe/serve/release_snapshot.h"
#include "cksafe/util/page_io.h"
#include "testing_util.h"

namespace cksafe {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- byte codec ---

TEST(PageIoTest, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutDouble(0.1);  // not exactly representable: must survive as bits
  w.PutString("qi label");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.U8(), 0xab);
  EXPECT_EQ(*r.U16(), 0xbeef);
  EXPECT_EQ(*r.U32(), 0xdeadbeefu);
  EXPECT_EQ(*r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.I32(), -42);
  EXPECT_EQ(*r.Double(), 0.1);  // exact: bit pattern, not text
  EXPECT_EQ(*r.String(), "qi label");
  EXPECT_TRUE(r.exhausted());
}

TEST(PageIoTest, ReaderRefusesShortInput) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.U32().ok());
  EXPECT_FALSE(r.U32().ok());  // past the end -> Status, not UB
  ByteReader str(w.bytes());
  EXPECT_FALSE(str.String().ok());  // length prefix 7 > remaining 0
}

TEST(PageIoTest, Fnv1aIsSeedableAndSensitive) {
  const std::vector<uint8_t> bytes = {1, 2, 3, 4};
  const uint64_t h = Fnv1a64(bytes.data(), bytes.size());
  EXPECT_EQ(h, Fnv1a64(bytes.data(), bytes.size()));
  std::vector<uint8_t> flipped = bytes;
  flipped[2] ^= 1;
  EXPECT_NE(h, Fnv1a64(flipped.data(), flipped.size()));
  EXPECT_NE(h, Fnv1a64(bytes.data(), bytes.size(), h));  // chained != plain
}

// --- page framing ---

TEST(SegmentTest, FramesAndUnframesAcrossPages) {
  // 3 pages: two full payloads plus a tail.
  std::vector<uint8_t> blob(2 * kPagePayloadCapacity + 123);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 31);
  }
  const std::vector<uint8_t> pages =
      FrameSegmentPages(PageType::kSnapshot, blob);
  ASSERT_EQ(pages.size(), 3 * kPageSize);
  std::vector<uint8_t> decoded;
  bool is_last = false;
  for (size_t p = 0; p < 3; ++p) {
    ASSERT_FALSE(is_last);
    ASSERT_TRUE(UnframeSegmentPage(pages.data() + p * kPageSize,
                                   PageType::kSnapshot, p == 0, &is_last,
                                   &decoded)
                    .ok());
  }
  EXPECT_TRUE(is_last);
  EXPECT_EQ(decoded, blob);
}

TEST(SegmentTest, CorruptionNeverValidates) {
  const std::vector<uint8_t> blob(100, 0x5a);
  std::vector<uint8_t> pages = FrameSegmentPages(PageType::kSnapshot, blob);
  std::vector<uint8_t> out;
  bool is_last = false;
  // Wrong type.
  EXPECT_FALSE(UnframeSegmentPage(pages.data(), PageType::kDictionary, true,
                                  &is_last, &out)
                   .ok());
  // Wrong position expectation.
  EXPECT_FALSE(
      UnframeSegmentPage(pages.data(), PageType::kSnapshot, false, &is_last,
                         &out)
          .ok());
  // Any single flipped bit (header or payload) fails the checksum.
  for (const size_t offset : {size_t{0}, size_t{5}, size_t{7},
                              kPageHeaderSize, kPageHeaderSize + 99}) {
    std::vector<uint8_t> bad = pages;
    bad[offset] ^= 0x40;
    out.clear();
    EXPECT_FALSE(UnframeSegmentPage(bad.data(), PageType::kSnapshot, true,
                                    &is_last, &out)
                     .ok())
        << "flip at byte " << offset << " validated";
  }
}

TEST(SegmentTest, EmptyBlobStillOccupiesOnePage) {
  const std::vector<uint8_t> pages = FrameSegmentPages(PageType::kDictionary, {});
  ASSERT_EQ(pages.size(), kPageSize);
  std::vector<uint8_t> out;
  bool is_last = false;
  ASSERT_TRUE(UnframeSegmentPage(pages.data(), PageType::kDictionary, true,
                                 &is_last, &out)
                  .ok());
  EXPECT_TRUE(is_last);
  EXPECT_TRUE(out.empty());
}

// --- label dictionary ---

TEST(SegmentTest, DictionaryInternStagesAndApplies) {
  LabelDictionary dict;
  LabelDictionary::Delta first;
  EXPECT_EQ(dict.InternInto("a", &first), 0u);
  EXPECT_EQ(dict.InternInto("b", &first), 1u);
  EXPECT_EQ(dict.InternInto("a", &first), 0u);  // staged label, same id
  ASSERT_TRUE(dict.Apply(first).ok());
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(*dict.Lookup(1), "b");

  LabelDictionary::Delta second;
  EXPECT_EQ(dict.InternInto("a", &second), 0u);  // committed label
  EXPECT_EQ(dict.InternInto("c", &second), 2u);
  EXPECT_EQ(second.first_id, 2u);
  // A dropped delta (crashed publish) leaves the dictionary untouched;
  // re-staging yields the same ids.
  LabelDictionary::Delta restaged;
  EXPECT_EQ(dict.InternInto("c", &restaged), 2u);
  ASSERT_TRUE(dict.Apply(restaged).ok());
  EXPECT_EQ(*dict.Lookup(2), "c");
  // Out-of-order deltas are refused (commit order is the contract).
  LabelDictionary::Delta gap;
  gap.first_id = 7;
  gap.labels = {"z"};
  EXPECT_FALSE(dict.Apply(gap).ok());
}

TEST(SegmentTest, DictionaryDeltaCodecRoundTrips) {
  LabelDictionary::Delta delta;
  delta.first_id = 5;
  delta.labels = {"Zip=148**", "", "Age=[20,30)"};
  const auto decoded = DecodeDictionaryDelta(EncodeDictionaryDelta(delta));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first_id, 5u);
  EXPECT_EQ(decoded->labels, delta.labels);
  EXPECT_FALSE(DecodeDictionaryDelta({1, 2, 3}).ok());
}

// --- snapshot codec ---

TEST(SegmentTest, SnapshotBlobRoundTripsBitIdentically) {
  const Table table = testing::MakeHospitalTable();
  auto snapshot = MakeReleaseSnapshot(
      3, testing::MakeHospitalBucketization(table), LatticeNode{1, 2, 0});
  LabelDictionary dict;
  LabelDictionary::Delta delta;
  StoredProfile profile;
  profile.implication = DisclosureAnalyzer(snapshot->bucketization)
                            .ImplicationCurve(4);
  profile.negation = DisclosureAnalyzer(snapshot->bucketization).NegationCurve(4);
  const std::vector<uint8_t> blob =
      EncodeSnapshotBlob(*snapshot, profile, dict, &delta);
  ASSERT_TRUE(dict.Apply(delta).ok());

  StoredProfile decoded_profile;
  const auto decoded = DecodeSnapshotBlob(blob, dict, &decoded_profile);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(SnapshotsBitIdentical(**decoded, *snapshot));
  EXPECT_EQ(decoded_profile.implication, profile.implication);
  EXPECT_EQ(decoded_profile.negation, profile.negation);

  // Corrupting any byte of the blob must surface as a decode error or a
  // changed payload, never silently pass structural validation AND decode
  // to the same snapshot. (Bucketization invariants are re-run inside
  // DecodeSnapshotBlob.)
  std::vector<uint8_t> bad = blob;
  bad[0] ^= 0xff;
  StoredProfile ignored;
  EXPECT_FALSE(DecodeSnapshotBlob(bad, dict, &ignored).ok());
}

TEST(SegmentTest, RandomSnapshotsRoundTrip) {
  const uint64_t seed = testing::TestSeed(20260809);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (size_t iter = 0; iter < testing::TestIters(20); ++iter) {
    const size_t domain = 2 + rng.NextBelow(5);
    const auto synthetic = testing::MakeBuckets(
        testing::RandomHistograms(&rng, 1 + rng.NextBelow(6), domain, 8),
        domain);
    auto snapshot =
        MakeReleaseSnapshot(1 + rng.NextBelow(100),
                            synthetic.bucketization);
    LabelDictionary dict;
    LabelDictionary::Delta delta;
    const std::vector<uint8_t> blob =
        EncodeSnapshotBlob(*snapshot, StoredProfile{}, dict, &delta);
    ASSERT_TRUE(dict.Apply(delta).ok());
    StoredProfile profile;
    const auto decoded = DecodeSnapshotBlob(blob, dict, &profile);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_TRUE(SnapshotsBitIdentical(**decoded, *snapshot))
        << "iteration " << iter;
    EXPECT_TRUE(profile.empty());
  }
}

// --- manifest ---

TEST(ManifestTest, ScanRecoversRecordsAndStopsAtTornTail) {
  std::vector<uint8_t> image;
  std::vector<ManifestRecord> originals;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ManifestRecord record;
    record.tenant = "t" + std::to_string(seq % 2);
    record.sequence = seq;
    record.num_rows = 10 * seq;
    record.snapshot = SegmentRef{seq * kPageSize, 1, 100 + seq, 0xfeed + seq};
    record.has_dict = seq == 1;
    if (record.has_dict) {
      record.dict_first_id = 0;
      record.dict_count = 2;
      record.dict = SegmentRef{0, 1, 40, 0xd1c7};
    }
    const std::vector<uint8_t> bytes = EncodeManifestRecord(record);
    image.insert(image.end(), bytes.begin(), bytes.end());
    originals.push_back(record);
  }
  const ManifestScan full = ScanManifest(image);
  ASSERT_EQ(full.records.size(), 3u);
  EXPECT_EQ(full.committed_bytes, image.size());
  EXPECT_EQ(full.torn_bytes, 0u);
  ASSERT_EQ(full.record_ends.size(), 3u);
  EXPECT_EQ(full.record_ends.back(), image.size());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(full.records[i].tenant, originals[i].tenant);
    EXPECT_EQ(full.records[i].sequence, originals[i].sequence);
    EXPECT_EQ(full.records[i].snapshot.offset, originals[i].snapshot.offset);
    EXPECT_EQ(full.records[i].has_dict, originals[i].has_dict);
  }

  // Truncating at *every* byte boundary yields exactly the record prefix
  // whose encodings fit — never a partial record, never a scan error.
  for (size_t cut = 0; cut < image.size(); ++cut) {
    const std::vector<uint8_t> torn(image.begin(), image.begin() + cut);
    const ManifestScan scan = ScanManifest(torn);
    size_t expect = 0;
    while (expect < full.record_ends.size() &&
           full.record_ends[expect] <= cut) {
      ++expect;
    }
    ASSERT_EQ(scan.records.size(), expect) << "cut at byte " << cut;
    ASSERT_EQ(scan.committed_bytes,
              expect == 0 ? 0 : full.record_ends[expect - 1])
        << "cut at byte " << cut;
  }

  // A bit flip inside a record cuts the committed prefix there.
  std::vector<uint8_t> flipped = image;
  flipped[full.record_ends[0] + 20] ^= 1;
  EXPECT_EQ(ScanManifest(flipped).records.size(), 1u);
}

// --- buffer pool ---

TEST(BufferPoolTest, CachesPinsAndEvictsLru) {
  const std::string dir = FreshDir("cksafe_pool_test");
  ASSERT_TRUE(std::filesystem::create_directory(dir));
  const std::string path = dir + "/pages.dat";
  AppendFile writer;
  ASSERT_TRUE(writer.Open(path).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint8_t p = 0; p < 4; ++p) {
    std::fill(page.begin(), page.end(), static_cast<uint8_t>(0x10 + p));
    ASSERT_TRUE(writer.Append(page).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());

  RandomReadFile file;
  ASSERT_TRUE(file.Open(path).ok());
  BufferPool pool(&file, 2);

  {
    const auto a = pool.Fetch(0);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->data()[0], 0x10);
    const auto a_again = pool.Fetch(0);
    ASSERT_TRUE(a_again.ok());
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(pool.stats().misses, 1u);

    const auto b = pool.Fetch(1);
    ASSERT_TRUE(b.ok());
    // Both frames pinned: a third distinct page must be refused, not
    // silently evict pinned data out from under a live ref.
    const auto c = pool.Fetch(2);
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  }
  // Refs dropped: page 2 now evicts the LRU frame (page 0).
  const auto c = pool.Fetch(2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->data()[0], 0x12);
  EXPECT_EQ(pool.stats().evictions, 1u);
  // Page 0 was evicted; re-fetching re-reads it with identical bytes.
  const auto a = pool.Fetch(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->data()[0], 0x10);
  EXPECT_EQ(pool.stats().evictions, 2u);
  EXPECT_EQ(pool.resident(), 2u);

  std::filesystem::remove_all(dir);
}

// --- durable store end to end ---

TEST(DurableStoreTest, PublishLoadVerifyRoundTrip) {
  const std::string dir = FreshDir("cksafe_store_roundtrip");
  DurableStoreOptions options;
  options.dir = dir;
  options.buffer_pool_pages = 4;
  options.profile_max_k = 3;
  auto store = DurableStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status();

  const Table table = testing::MakeHospitalTable();
  auto first = MakeReleaseSnapshot(
      1, testing::MakeHospitalBucketization(table), LatticeNode{0, 0});
  ASSERT_TRUE((*store)->AppendPublish("hospital", *first).ok());
  // Sequences must be contiguous per tenant.
  EXPECT_FALSE((*store)->AppendPublish("hospital", *first).ok());
  auto second = MakeReleaseSnapshot(
      2, testing::MakeHospitalBucketization(table), LatticeNode{1, 1});
  ASSERT_TRUE((*store)->AppendPublish("hospital", *second).ok());
  // A second tenant starts at sequence 1 again.
  ASSERT_TRUE((*store)->AppendPublish("clinic", *first).ok());

  EXPECT_EQ((*store)->tenants(),
            (std::vector<std::string>{"clinic", "hospital"}));
  EXPECT_EQ((*store)->Sequences("hospital"), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ((*store)->LatestSequence("hospital"), 2u);
  EXPECT_EQ((*store)->LatestSequence("nobody"), 0u);

  StoredProfile profile;
  const auto loaded = (*store)->LoadSnapshot("hospital", 1, &profile);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(SnapshotsBitIdentical(**loaded, *first));
  // The stored rider is the analyzer's curve, bit for bit.
  const DisclosureProfile fresh =
      DisclosureAnalyzer(first->bucketization).Profile(3);
  EXPECT_EQ(profile.implication, fresh.implication);
  EXPECT_EQ(profile.negation, fresh.negation);
  EXPECT_FALSE((*store)->LoadSnapshot("hospital", 9).ok());
  EXPECT_FALSE((*store)->LoadSnapshot("nobody", 1).ok());

  const auto report = (*store)->Verify();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->records, 3u);
  EXPECT_EQ(report->tenants, 2u);
  EXPECT_EQ(report->profiles_checked, 3u);

  // Reopen: recovery finds everything committed, nothing torn.
  store->reset();
  auto reopened = DurableStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery().records, 3u);
  EXPECT_EQ((*reopened)->recovery().manifest_torn_bytes, 0u);
  EXPECT_EQ((*reopened)->recovery().segment_torn_bytes, 0u);
  const auto reloaded = (*reopened)->LoadSnapshot("hospital", 2);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(SnapshotsBitIdentical(**reloaded, *second));

  // Rehydration restores each tenant's latest sequence into a directory.
  ServingDirectory directory;
  ASSERT_TRUE((*reopened)->RehydrateInto(&directory).ok());
  ASSERT_NE(directory.Find("hospital"), nullptr);
  EXPECT_TRUE(SnapshotsBitIdentical(
      *directory.Find("hospital")->Current(), *second));
  EXPECT_TRUE(SnapshotsBitIdentical(
      *directory.Find("clinic")->Current(), *first));

  std::filesystem::remove_all(dir);
}

TEST(DurableStoreTest, TinyBufferPoolServesHistoryLargerThanItself) {
  // A pool smaller than one tenant's history forces evict-and-reload on
  // every access pattern; every reload must stay bit-identical.
  const std::string dir = FreshDir("cksafe_store_evict");
  DurableStoreOptions options;
  options.dir = dir;
  options.buffer_pool_pages = 1;
  auto store = DurableStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status();

  const uint64_t seed = testing::TestSeed(20260810);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  std::vector<std::shared_ptr<const ReleaseSnapshot>> published;
  for (uint64_t seq = 1; seq <= 6; ++seq) {
    const size_t domain = 3;
    const auto synthetic = testing::MakeBuckets(
        testing::RandomHistograms(&rng, 2 + rng.NextBelow(4), domain, 6),
        domain);
    auto snapshot = MakeReleaseSnapshot(seq, synthetic.bucketization);
    ASSERT_TRUE((*store)->AppendPublish("fleet", *snapshot).ok());
    published.push_back(std::move(snapshot));
  }
  // Random access across the whole history, repeatedly.
  for (size_t probe = 0; probe < 40; ++probe) {
    const uint64_t seq = 1 + rng.NextBelow(published.size());
    const auto loaded = (*store)->LoadSnapshot("fleet", seq);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_TRUE(SnapshotsBitIdentical(**loaded, *published[seq - 1]));
  }
  const BufferPool::Stats stats = (*store)->buffer_stats();
  EXPECT_GT(stats.evictions, 0u) << "a 1-frame pool must have evicted";
  std::filesystem::remove_all(dir);
}

TEST(DurableStoreTest, OpenValidatesOptions) {
  EXPECT_FALSE(DurableStore::Open({}).ok());
  DurableStoreOptions no_pool;
  no_pool.dir = FreshDir("cksafe_store_nopool");
  no_pool.buffer_pool_pages = 0;
  EXPECT_FALSE(DurableStore::Open(no_pool).ok());
}

}  // namespace
}  // namespace cksafe
