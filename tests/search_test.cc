// Lattice search tests: Incognito-style minimal-node enumeration against an
// exhaustive oracle, pruning equivalence, chain binary search, utility
// metrics and the end-to-end Publisher.

#include "cksafe/search/lattice_search.h"

#include <gtest/gtest.h>

#include <set>

#include "cksafe/anon/diversity.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/search/publisher.h"
#include "cksafe/search/utility.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kHospitalSensitiveColumn;
using testing::MakeHospitalTable;

// Exhaustive minimal-safe oracle for small lattices.
std::set<uint64_t> OracleMinimalSafe(const GeneralizationLattice& lattice,
                                     const NodePredicate& is_safe) {
  std::set<uint64_t> safe;
  const auto all = lattice.AllNodes();
  for (const auto& node : all) {
    if (is_safe(node)) safe.insert(lattice.Encode(node));
  }
  std::set<uint64_t> minimal;
  for (const auto& node : all) {
    if (safe.count(lattice.Encode(node)) == 0) continue;
    bool child_safe = false;
    for (const auto& child : lattice.Children(node)) {
      if (safe.count(lattice.Encode(child)) > 0) child_safe = true;
    }
    if (!child_safe) minimal.insert(lattice.Encode(node));
  }
  return minimal;
}

// A monotone predicate on a {4,3,2} lattice: safe above a fixed frontier.
bool FrontierSafe(const LatticeNode& node) {
  return node[0] + 2 * node[1] + node[2] >= 4;
}

TEST(LatticeSearchTest, MatchesExhaustiveOracle) {
  GeneralizationLattice lattice({4, 3, 2});
  const auto result = FindMinimalSafeNodes(lattice, FrontierSafe);
  std::set<uint64_t> found;
  for (const auto& node : result.minimal_safe_nodes) {
    found.insert(lattice.Encode(node));
  }
  EXPECT_EQ(found, OracleMinimalSafe(lattice, FrontierSafe));
}

TEST(LatticeSearchTest, PruningDoesNotChangeTheAnswer) {
  GeneralizationLattice lattice({4, 3, 2});
  const auto pruned = FindMinimalSafeNodes(lattice, FrontierSafe, true);
  const auto full = FindMinimalSafeNodes(lattice, FrontierSafe, false);
  std::set<uint64_t> a, b;
  for (const auto& node : pruned.minimal_safe_nodes) a.insert(lattice.Encode(node));
  for (const auto& node : full.minimal_safe_nodes) b.insert(lattice.Encode(node));
  EXPECT_EQ(a, b);
  // Pruning must save evaluations on this lattice (many nodes above the
  // frontier).
  EXPECT_LT(pruned.stats.evaluations, full.stats.evaluations);
  EXPECT_GT(pruned.stats.implied_safe, 0u);
}

TEST(LatticeSearchTest, NothingSafeAndEverythingSafe) {
  GeneralizationLattice lattice({3, 3});
  const auto none = FindMinimalSafeNodes(
      lattice, [](const LatticeNode&) { return false; });
  EXPECT_TRUE(none.minimal_safe_nodes.empty());

  const auto all = FindMinimalSafeNodes(
      lattice, [](const LatticeNode&) { return true; });
  ASSERT_EQ(all.minimal_safe_nodes.size(), 1u);
  EXPECT_EQ(all.minimal_safe_nodes[0], lattice.Bottom());
  // Only the bottom is ever evaluated when everything is safe.
  EXPECT_EQ(all.stats.evaluations, 1u);
}

TEST(ChainBinarySearchTest, FindsTheFrontier) {
  GeneralizationLattice lattice({6, 3, 2, 2});
  const auto chain = lattice.CanonicalChain();
  // Monotone predicate: height >= 5.
  const NodePredicate safe = [&](const LatticeNode& node) {
    return lattice.Height(node) >= 5;
  };
  LatticeSearchStats stats;
  auto index = ChainBinarySearch(chain, safe, &stats);
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 5u);
  EXPECT_TRUE(safe(chain[*index]));
  EXPECT_FALSE(safe(chain[*index - 1]));
  // Logarithmic evaluation count (chain length 9 -> about 1 + log2(9)).
  EXPECT_LE(stats.evaluations, 6u);
}

TEST(ChainBinarySearchTest, EdgeCases) {
  GeneralizationLattice lattice({3, 2});
  const auto chain = lattice.CanonicalChain();
  EXPECT_FALSE(
      ChainBinarySearch(chain, [](const LatticeNode&) { return false; })
          .has_value());
  auto always = ChainBinarySearch(
      chain, [](const LatticeNode&) { return true; });
  ASSERT_TRUE(always.has_value());
  EXPECT_EQ(*always, 0u);
}

TEST(ChainBinarySearchTest, AgreesWithLinearScanForCkSafety) {
  // On the hospital table with a Zip/Age/Sex lattice, binary search along
  // the canonical chain must find the same frontier index as a linear scan
  // (Theorem 14 guarantees monotonicity along chains).
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};
  auto age = IntervalHierarchy::Create(table.schema().attribute(1), {1, 3},
                                       true);
  ASSERT_TRUE(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);

  const NodePredicate safe = [&](const LatticeNode& node) {
    auto b = BucketizeAtNode(table, qis, node, kHospitalSensitiveColumn);
    CKSAFE_CHECK(b.ok());
    return DisclosureAnalyzer(*b).IsCkSafe(0.75, 1);
  };
  const auto chain = lattice.CanonicalChain();
  auto index = ChainBinarySearch(chain, safe);
  size_t linear = chain.size();
  for (size_t i = 0; i < chain.size(); ++i) {
    if (safe(chain[i])) {
      linear = i;
      break;
    }
  }
  if (linear == chain.size()) {
    EXPECT_FALSE(index.has_value());
  } else {
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(*index, linear);
  }
}

TEST(UtilityTest, MetricsOnHospital) {
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(1);
  qis[0] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};  // Sex
  auto by_sex = BucketizeAtNode(table, qis, {0}, kHospitalSensitiveColumn);
  ASSERT_TRUE(by_sex.ok());
  const UtilityMetrics sex_metrics =
      ComputeUtility(table, qis, {0}, *by_sex);
  EXPECT_DOUBLE_EQ(sex_metrics.discernibility, 25.0 + 25.0);
  EXPECT_DOUBLE_EQ(sex_metrics.avg_class_size, 5.0);
  EXPECT_DOUBLE_EQ(sex_metrics.height, 0.0);
  EXPECT_DOUBLE_EQ(sex_metrics.loss, 0.0);  // nothing generalized

  auto suppressed = BucketizeAtNode(table, qis, {1}, kHospitalSensitiveColumn);
  ASSERT_TRUE(suppressed.ok());
  const UtilityMetrics sup_metrics =
      ComputeUtility(table, qis, {1}, *suppressed);
  EXPECT_DOUBLE_EQ(sup_metrics.discernibility, 100.0);
  EXPECT_DOUBLE_EQ(sup_metrics.height, 1.0);
  EXPECT_DOUBLE_EQ(sup_metrics.loss, 1.0);  // whole domain per record

  EXPECT_LT(UtilityScore(sex_metrics, UtilityObjective::kDiscernibility),
            UtilityScore(sup_metrics, UtilityObjective::kDiscernibility));
  EXPECT_EQ(UtilityObjectiveName(UtilityObjective::kLoss), "loss");
}

TEST(PublisherTest, EndToEndOnHospital) {
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(3);
  qis[0] = {0, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(0)))};
  auto age = IntervalHierarchy::Create(table.schema().attribute(1), {1, 3},
                                       true);
  ASSERT_TRUE(age.ok());
  qis[1] = {1, ShareHierarchy(*std::move(age))};
  qis[2] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};

  PublisherOptions options;
  options.c = 0.75;
  options.k = 1;
  Publisher publisher(options);
  auto release = publisher.Publish(table, qis, kHospitalSensitiveColumn);
  ASSERT_TRUE(release.ok()) << release.status();

  // The chosen node is actually safe and its published assignment is a
  // valid within-bucket permutation.
  DisclosureAnalyzer analyzer(release->bucketization);
  EXPECT_LT(analyzer.MaxDisclosureImplications(1).disclosure, 0.75);
  EXPECT_TRUE(release->bucketization.IsConsistentAssignment(
      release->published_sensitive));
  EXPECT_NEAR(release->worst_case.disclosure,
              analyzer.MaxDisclosureImplications(1).disclosure, 1e-12);

  // Every reported minimal safe node is safe and has no safe child.
  const GeneralizationLattice lattice =
      GeneralizationLattice::FromQuasiIdentifiers(qis);
  const NodePredicate safe = [&](const LatticeNode& node) {
    auto b = BucketizeAtNode(table, qis, node, kHospitalSensitiveColumn);
    CKSAFE_CHECK(b.ok());
    return DisclosureAnalyzer(*b).IsCkSafe(options.c, options.k);
  };
  for (const LatticeNode& node : release->minimal_safe_nodes) {
    EXPECT_TRUE(safe(node));
    for (const LatticeNode& child : lattice.Children(node)) {
      EXPECT_FALSE(safe(child));
    }
  }

  const std::string summary =
      Publisher::Summary(*release, table, kHospitalSensitiveColumn);
  EXPECT_NE(summary.find("worst-case disclosure"), std::string::npos);
}

TEST(PublisherTest, ImpossibleThresholdIsNotFound) {
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(1);
  qis[0] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};
  PublisherOptions options;
  options.c = 0.05;  // below even the all-in-one bucket's disclosure
  options.k = 2;
  Publisher publisher(options);
  auto release = publisher.Publish(table, qis, kHospitalSensitiveColumn);
  EXPECT_FALSE(release.ok());
  EXPECT_EQ(release.status().code(), StatusCode::kNotFound);
}

TEST(PublisherTest, SeedChangesPermutationNotBuckets) {
  const Table table = MakeHospitalTable();
  std::vector<QuasiIdentifier> qis(1);
  qis[0] = {2, ShareHierarchy(TreeHierarchy::SuppressionOnly(
                   table.schema().attribute(2)))};
  PublisherOptions a;
  a.c = 0.9;
  a.k = 1;
  a.seed = 1;
  PublisherOptions b = a;
  b.seed = 2;
  auto ra = Publisher(a).Publish(table, qis, kHospitalSensitiveColumn);
  auto rb = Publisher(b).Publish(table, qis, kHospitalSensitiveColumn);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->node, rb->node);
  EXPECT_TRUE(ra->bucketization.IsConsistentAssignment(rb->published_sensitive));
}

}  // namespace
}  // namespace cksafe
