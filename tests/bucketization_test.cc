// Bucketization and baseline-criteria tests: grouping at lattice nodes,
// histogram bookkeeping, published-permutation consistency, k-anonymity and
// the ℓ-diversity family.

#include "cksafe/anon/bucketization.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cksafe/anon/diversity.h"
#include "cksafe/util/math_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::kHospitalSensitiveColumn;
using testing::MakeBuckets;
using testing::MakeHospitalBucketization;
using testing::MakeHospitalTable;

TEST(BucketizationTest, HospitalFixtureHistograms) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  ASSERT_EQ(b.num_buckets(), 2u);
  EXPECT_EQ(b.num_tuples(), 10u);
  // Bucket 0 (males): flu:2, lung:2, mumps:1.
  EXPECT_EQ(b.bucket(0).histogram,
            (std::vector<uint32_t>{2, 2, 1, 0, 0, 0}));
  // Bucket 1 (females): flu:2, breast:1, ovarian:1, heart:1.
  EXPECT_EQ(b.bucket(1).histogram,
            (std::vector<uint32_t>{2, 0, 0, 1, 1, 1}));
  EXPECT_EQ(b.MinBucketSize(), 5u);
  EXPECT_NEAR(b.MaxFrequencyRatio(), 0.4, kProbabilityEpsilon);
}

TEST(BucketizationTest, BucketOfLookups) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  for (PersonId p = 0; p < 5; ++p) {
    auto bucket = b.BucketOf(p);
    ASSERT_TRUE(bucket.ok());
    EXPECT_EQ(*bucket, 0u);
  }
  for (PersonId p = 5; p < 10; ++p) {
    auto bucket = b.BucketOf(p);
    ASSERT_TRUE(bucket.ok());
    EXPECT_EQ(*bucket, 1u);
  }
  EXPECT_FALSE(b.BucketOf(99).ok());
}

TEST(BucketizationTest, RejectsOverlapAndBadHistograms) {
  Bucketization b(3);
  Bucket good;
  good.members = {0, 1};
  good.histogram = {1, 1, 0};
  ASSERT_TRUE(b.AddBucket(good).ok());

  Bucket overlap;
  overlap.members = {1, 2};
  overlap.histogram = {2, 0, 0};
  EXPECT_EQ(b.AddBucket(overlap).code(), StatusCode::kAlreadyExists);

  Bucket bad_histogram;
  bad_histogram.members = {3};
  bad_histogram.histogram = {2, 0, 0};  // total != member count
  EXPECT_EQ(b.AddBucket(bad_histogram).code(), StatusCode::kInvalidArgument);

  Bucket bad_domain;
  bad_domain.members = {3};
  bad_domain.histogram = {1, 0};  // wrong domain size
  EXPECT_EQ(b.AddBucket(bad_domain).code(), StatusCode::kInvalidArgument);

  Bucket empty;
  empty.histogram = {0, 0, 0};
  EXPECT_EQ(b.AddBucket(empty).code(), StatusCode::kInvalidArgument);
}

TEST(BucketizationTest, PublishedAssignmentIsConsistentAndSeeded) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  Rng rng_a(7);
  Rng rng_b(7);
  Rng rng_c(8);
  const std::vector<int32_t> pub_a = b.SamplePublishedAssignment(&rng_a);
  const std::vector<int32_t> pub_b = b.SamplePublishedAssignment(&rng_b);
  const std::vector<int32_t> pub_c = b.SamplePublishedAssignment(&rng_c);
  EXPECT_TRUE(b.IsConsistentAssignment(pub_a));
  EXPECT_TRUE(b.IsConsistentAssignment(pub_c));
  EXPECT_EQ(pub_a, pub_b);  // deterministic given the seed
}

TEST(BucketizationTest, IsConsistentAssignmentRejectsWrongMultiset) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  // The original column is consistent by construction...
  std::vector<int32_t> original(10);
  for (PersonId p = 0; p < 10; ++p) {
    original[p] = table.at(p, kHospitalSensitiveColumn);
  }
  EXPECT_TRUE(b.IsConsistentAssignment(original));
  // ...but moving a female disease into the male bucket is not.
  std::vector<int32_t> wrong = original;
  std::swap(wrong[0], wrong[9]);
  EXPECT_FALSE(b.IsConsistentAssignment(wrong));
}

TEST(BucketizationTest, EntropyOfUniformAndSkewedBuckets) {
  auto uniform = MakeBuckets({{2, 2, 2, 2}}, 4);
  EXPECT_NEAR(uniform.bucketization.MinBucketEntropyNats(), std::log(4.0),
              1e-12);
  auto skewed = MakeBuckets({{2, 2, 2, 2}, {7, 1, 0, 0}}, 4);
  const double h_skew =
      -(7.0 / 8.0) * std::log(7.0 / 8.0) - (1.0 / 8.0) * std::log(1.0 / 8.0);
  EXPECT_NEAR(skewed.bucketization.MinBucketEntropyNats(), h_skew, 1e-12);
}

TEST(BucketizationTest, AllInOneAndPerRow) {
  const Table table = MakeHospitalTable();
  auto top = BucketizeAllInOne(table, kHospitalSensitiveColumn);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->num_buckets(), 1u);
  EXPECT_EQ(top->bucket(0).size(), 10u);

  auto bottom = BucketizePerRow(table, kHospitalSensitiveColumn);
  ASSERT_TRUE(bottom.ok());
  EXPECT_EQ(bottom->num_buckets(), 10u);
  EXPECT_EQ(bottom->MinBucketSize(), 1u);
  // One tuple per bucket discloses everything even at k = 0.
  EXPECT_NEAR(bottom->MaxFrequencyRatio(), 1.0, kProbabilityEpsilon);
}

TEST(BucketizationTest, ExplicitGroupsMustCoverTable) {
  const Table table = MakeHospitalTable();
  auto partial =
      BucketizeExplicit(table, {{0, 1, 2}}, kHospitalSensitiveColumn);
  EXPECT_FALSE(partial.ok());
}

TEST(BucketizationTest, SensitiveAttributeMustBeCategorical) {
  const Table table = MakeHospitalTable();
  auto bad = BucketizeAllInOne(table, 1);  // Age is numeric
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- k-anonymity / ℓ-diversity baselines ---

TEST(DiversityTest, KAnonymityOnHospital) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  EXPECT_TRUE(IsKAnonymous(b, 5));
  EXPECT_FALSE(IsKAnonymous(b, 6));
  EXPECT_EQ(MaxAnonymityK(b), 5u);
}

TEST(DiversityTest, DistinctLDiversity) {
  const Table table = MakeHospitalTable();
  const Bucketization b = MakeHospitalBucketization(table);
  // Males have 3 distinct diseases; females 4.
  EXPECT_TRUE(IsDistinctLDiverse(b, 3));
  EXPECT_FALSE(IsDistinctLDiverse(b, 4));
  EXPECT_EQ(MaxDistinctL(b), 3u);
}

TEST(DiversityTest, EntropyLDiversity) {
  auto uniform = MakeBuckets({{3, 3, 3}}, 3);
  EXPECT_TRUE(IsEntropyLDiverse(uniform.bucketization, 3.0));
  EXPECT_NEAR(MaxEntropyL(uniform.bucketization), 3.0, 1e-9);

  auto skewed = MakeBuckets({{7, 1, 1}}, 3);
  EXPECT_FALSE(IsEntropyLDiverse(skewed.bucketization, 2.0));
  EXPECT_LT(MaxEntropyL(skewed.bucketization), 2.0);
}

TEST(DiversityTest, RecursiveCLDiversity) {
  // Counts sorted: {5, 3, 2}. (c=2, l=2): r1=5 < 2*(3+2)=10 -> diverse.
  auto b = MakeBuckets({{5, 3, 2}}, 3);
  EXPECT_TRUE(IsRecursiveCLDiverse(b.bucketization, 2.0, 2));
  // (c=1, l=2): 5 < 1*5 fails (not strict).
  EXPECT_FALSE(IsRecursiveCLDiverse(b.bucketization, 1.0, 2));
  // l larger than the number of distinct values fails.
  EXPECT_FALSE(IsRecursiveCLDiverse(b.bucketization, 10.0, 4));
}

TEST(DiversityTest, HomogeneousBucketFailsEverything) {
  auto b = MakeBuckets({{4, 0}}, 2);
  EXPECT_EQ(MaxDistinctL(b.bucketization), 1u);
  EXPECT_FALSE(IsDistinctLDiverse(b.bucketization, 2));
  EXPECT_FALSE(IsEntropyLDiverse(b.bucketization, 1.5));
  EXPECT_FALSE(IsRecursiveCLDiverse(b.bucketization, 100.0, 2));
}

}  // namespace
}  // namespace cksafe
