// Metamorphic properties of worst-case disclosure on foundry-generated
// worlds. Each test applies a structure-preserving transform to a random
// instance and checks the analyzer's output moves exactly as the theory
// says it must:
//
//  - transforms that leave the per-bucket histogram multiset untouched
//    (member reorder, sensitive relabeling, hierarchy group relabeling)
//    must leave every curve BIT-identical — the analyzer may depend on
//    nothing else;
//  - permuting bucket ORDER changes the accumulation order of the
//    MINIMIZE2 log-sum, so the implication curve is only equal to ~1e-9
//    (floating-point associativity), while the negation curve — a max of
//    independently computed per-bucket terms — stays bit-identical;
//  - duplicating every tuple m times fixes the k=0 posterior (same value
//    fractions) and can only shrink disclosure at k > 0: eliminating one
//    tuple removes a smaller fraction of each bucket.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cksafe/anon/bucketization.h"
#include "cksafe/core/disclosure.h"
#include "cksafe/foundry/hierarchy_foundry.h"
#include "cksafe/foundry/table_foundry.h"
#include "cksafe/lattice/lattice.h"
#include "testing_util.h"

namespace cksafe {
namespace {

constexpr size_t kMaxK = 5;
constexpr double kAssocTol = 1e-9;   // FP reassociation across buckets
constexpr double kScaleTol = 1e-12;  // same math, different literals

std::vector<std::vector<uint32_t>> HistogramsOf(const Bucketization& b) {
  std::vector<std::vector<uint32_t>> histograms;
  histograms.reserve(b.num_buckets());
  for (size_t i = 0; i < b.num_buckets(); ++i) {
    histograms.push_back(b.bucket(i).histogram);
  }
  return histograms;
}

// A random foundry world reduced to its per-bucket histograms.
std::vector<std::vector<uint32_t>> RandomWorld(Rng* rng, size_t* domain_out) {
  TableFoundryConfig config;
  config.seed = rng->NextUint64();
  config.num_rows = 40 + rng->NextBelow(120);
  config.quasi_identifiers = {
      ColumnSpec{"G", 3 + rng->NextBelow(6), true, ValueSkew::kZipf, 2}};
  config.sensitive =
      ColumnSpec{"S", 3 + rng->NextBelow(4), true, ValueSkew::kUniform, 1};
  auto table = TableFoundry::Generate(config);
  CKSAFE_CHECK(table.ok()) << table.status().ToString();
  auto buckets = BucketizeAtNode(
      *table,
      {QuasiIdentifier{0, std::make_shared<TreeHierarchy>(
                              TreeHierarchy::SuppressionOnly(
                                  table->schema().attribute(0)))}},
      LatticeNode{0}, /*sensitive_column=*/1);
  CKSAFE_CHECK(buckets.ok()) << buckets.status().ToString();
  *domain_out = config.sensitive.domain;
  return HistogramsOf(*buckets);
}

void ExpectBitIdentical(const DisclosureProfile& a,
                        const DisclosureProfile& b) {
  EXPECT_EQ(a.implication, b.implication);
  EXPECT_EQ(a.implication_log_r, b.implication_log_r);
  EXPECT_EQ(a.negation, b.negation);
}

TEST(FoundryPropertyTest, WithinBucketMemberOrderIsBitIdentical) {
  const uint64_t seed = testing::TestSeed(0xf00d01ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(8);
  for (size_t trial = 0; trial < trials; ++trial) {
    size_t domain = 0;
    const auto histograms = RandomWorld(&rng, &domain);
    const auto base = testing::MakeBuckets(histograms, domain);

    // Re-append each bucket's tuples in a shuffled order; the histograms —
    // the only state the analyzer may read — are untouched.
    Table table{Schema({base.table.schema().attribute(0)})};
    std::vector<std::vector<PersonId>> groups;
    PersonId next = 0;
    for (const auto& histogram : histograms) {
      std::vector<int32_t> values;
      for (size_t s = 0; s < histogram.size(); ++s) {
        values.insert(values.end(), histogram[s], static_cast<int32_t>(s));
      }
      rng.Shuffle(&values);
      std::vector<PersonId> members;
      for (int32_t v : values) {
        ASSERT_TRUE(table.AppendRow({v}).ok());
        members.push_back(next++);
      }
      groups.push_back(std::move(members));
    }
    const auto shuffled = BucketizeExplicit(table, groups, 0);
    ASSERT_TRUE(shuffled.ok());

    ExpectBitIdentical(DisclosureAnalyzer(base.bucketization).Profile(kMaxK),
                       DisclosureAnalyzer(*shuffled).Profile(kMaxK));
  }
}

TEST(FoundryPropertyTest, SensitiveRelabelingIsBitIdentical) {
  const uint64_t seed = testing::TestSeed(0xf00d02ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(8);
  for (size_t trial = 0; trial < trials; ++trial) {
    size_t domain = 0;
    const auto histograms = RandomWorld(&rng, &domain);

    std::vector<int32_t> perm(domain);
    for (size_t s = 0; s < domain; ++s) perm[s] = static_cast<int32_t>(s);
    rng.Shuffle(&perm);
    std::vector<std::vector<uint32_t>> relabeled(histograms.size());
    for (size_t b = 0; b < histograms.size(); ++b) {
      relabeled[b].assign(domain, 0);
      for (size_t s = 0; s < domain; ++s) {
        relabeled[b][static_cast<size_t>(perm[s])] = histograms[b][s];
      }
    }

    const auto base = testing::MakeBuckets(histograms, domain);
    const auto renamed = testing::MakeBuckets(relabeled, domain);
    ExpectBitIdentical(
        DisclosureAnalyzer(base.bucketization).Profile(kMaxK),
        DisclosureAnalyzer(renamed.bucketization).Profile(kMaxK));
  }
}

TEST(FoundryPropertyTest, BucketOrderPermutationPreservesCurves) {
  const uint64_t seed = testing::TestSeed(0xf00d03ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(8);
  for (size_t trial = 0; trial < trials; ++trial) {
    size_t domain = 0;
    const auto histograms = RandomWorld(&rng, &domain);
    auto shuffled = histograms;
    rng.Shuffle(&shuffled);

    const auto base = testing::MakeBuckets(histograms, domain);
    const auto permuted = testing::MakeBuckets(shuffled, domain);
    const DisclosureProfile a =
        DisclosureAnalyzer(base.bucketization).Profile(kMaxK);
    const DisclosureProfile b =
        DisclosureAnalyzer(permuted.bucketization).Profile(kMaxK);

    // Implication: the MINIMIZE2 DP folds buckets in order, so the curve
    // is mathematically invariant but only numerically equal.
    for (size_t k = 0; k <= kMaxK; ++k) {
      EXPECT_NEAR(a.implication[k], b.implication[k], kAssocTol) << "k=" << k;
    }
    // Negation: a max over per-bucket terms, each computed from one
    // bucket's histogram alone — reordering must be bit-identical.
    EXPECT_EQ(a.negation, b.negation);
  }
}

TEST(FoundryPropertyTest, DuplicateTupleScalingIsMonotone) {
  const uint64_t seed = testing::TestSeed(0xf00d04ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(6);
  for (size_t trial = 0; trial < trials; ++trial) {
    size_t domain = 0;
    const auto histograms = RandomWorld(&rng, &domain);
    const uint32_t m = 2 + static_cast<uint32_t>(rng.NextBelow(3));
    auto scaled = histograms;
    for (auto& histogram : scaled) {
      for (uint32_t& count : histogram) count *= m;
    }

    const auto base = testing::MakeBuckets(histograms, domain);
    const auto bigger = testing::MakeBuckets(scaled, domain);
    const DisclosureProfile a =
        DisclosureAnalyzer(base.bucketization).Profile(kMaxK);
    const DisclosureProfile b =
        DisclosureAnalyzer(bigger.bucketization).Profile(kMaxK);

    // k = 0: the no-knowledge posterior sees identical value fractions.
    EXPECT_NEAR(a.implication[0], b.implication[0], kScaleTol);
    // k > 0: each eliminated tuple is a smaller share of a scaled bucket,
    // so worst-case disclosure cannot grow.
    for (size_t k = 1; k <= kMaxK; ++k) {
      EXPECT_LE(b.implication[k], a.implication[k] + kScaleTol) << "k=" << k;
      EXPECT_LE(b.negation[k], a.negation[k] + kScaleTol) << "k=" << k;
    }
  }
}

// Wraps a ladder with shuffled group ids per level: the same partition of
// the domain under different (still dense) group numbering.
class RelabeledHierarchy : public AttributeHierarchy {
 public:
  RelabeledHierarchy(std::shared_ptr<const AttributeHierarchy> base, Rng* rng)
      : base_(std::move(base)) {
    for (size_t level = 0; level < base_->num_levels(); ++level) {
      std::vector<int32_t> perm(base_->NumGroups(level));
      for (size_t g = 0; g < perm.size(); ++g) {
        perm[g] = static_cast<int32_t>(g);
      }
      rng->Shuffle(&perm);
      perms_.push_back(std::move(perm));
    }
  }

  const AttributeDef& attribute() const override {
    return base_->attribute();
  }
  size_t num_levels() const override { return base_->num_levels(); }
  int32_t GroupOf(int32_t code, size_t level) const override {
    return perms_[level][static_cast<size_t>(base_->GroupOf(code, level))];
  }
  size_t NumGroups(size_t level) const override {
    return base_->NumGroups(level);
  }
  std::string GroupLabel(int32_t group, size_t level) const override {
    return "relabeled_" + std::to_string(level) + "_" + std::to_string(group);
  }

 private:
  std::shared_ptr<const AttributeHierarchy> base_;
  std::vector<std::vector<int32_t>> perms_;
};

TEST(FoundryPropertyTest, HierarchyGroupRelabelingIsBitIdentical) {
  const uint64_t seed = testing::TestSeed(0xf00d05ULL);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const size_t trials = testing::TestIters(6);
  for (size_t trial = 0; trial < trials; ++trial) {
    TableFoundryConfig config;
    config.seed = rng.NextUint64();
    config.num_rows = 60 + rng.NextBelow(120);
    config.quasi_identifiers = {
        ColumnSpec{"Zip", 8, true, ValueSkew::kZipf, 2},
        ColumnSpec{"Age", 12, false, ValueSkew::kUniform, 1}};
    config.sensitive = ColumnSpec{"S", 4, true, ValueSkew::kUniform, 1};
    auto table = TableFoundry::Generate(config);
    ASSERT_TRUE(table.ok());
    HierarchyFoundryConfig ladders;
    ladders.seed = rng.NextUint64();
    auto qis = HierarchyFoundry::MakeQuasiIdentifiers(*table, 2, ladders);
    ASSERT_TRUE(qis.ok());

    std::vector<QuasiIdentifier> renamed;
    LatticeNode node;
    for (const QuasiIdentifier& qi : *qis) {
      renamed.push_back(QuasiIdentifier{
          qi.column,
          std::make_shared<RelabeledHierarchy>(qi.hierarchy, &rng)});
      // A mid-ladder level so group ids actually matter.
      node.push_back(static_cast<int>(qi.hierarchy->num_levels() / 2));
    }

    const auto base = BucketizeAtNode(*table, *qis, node, 2);
    const auto relabeled = BucketizeAtNode(*table, renamed, node, 2);
    ASSERT_TRUE(base.ok() && relabeled.ok());
    // Same partition, same first-occurrence bucket order.
    ASSERT_EQ(base->num_buckets(), relabeled->num_buckets());
    ExpectBitIdentical(DisclosureAnalyzer(*base).Profile(kMaxK),
                       DisclosureAnalyzer(*relabeled).Profile(kMaxK));
  }
}

}  // namespace
}  // namespace cksafe
