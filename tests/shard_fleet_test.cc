// ShardFleet end-to-end: fork real shard processes, route over the wire,
// and hold the serving tier's one non-negotiable — every answer is
// bit-identical to a fresh synchronous DisclosureAnalyzer over the
// snapshot the answer names, across process boundaries and the codec.
// Plus the fleet-level mechanics: deterministic consistent-hash routing,
// in-flight-window backpressure (ResourceExhausted before any bytes
// move), stats scrape, and shutdown/restart.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cksafe/serve/release_snapshot.h"
#include "cksafe/shard/fleet.h"
#include "cksafe/util/random.h"
#include "shard_testing_util.h"
#include "testing_util.h"

namespace cksafe {
namespace {

using testing::AnswerMatchesFresh;
using testing::RandomQuery;
using testing::RandomSnapshot;
using testing::ScopedTempDir;
using testing::SeedTrace;
using testing::TestIters;
using testing::TestSeed;

ShardFleetOptions BaseOptions(const std::string& socket_dir,
                              size_t num_shards) {
  ShardFleetOptions options;
  options.num_shards = num_shards;
  options.socket_dir = socket_dir;
  return options;
}

TEST(ShardFleetTest, AnswersAreBitIdenticalToAFreshAnalyzer) {
  const uint64_t seed = TestSeed(20260820);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  auto fleet_or = ShardFleet::Start(BaseOptions(dir.path(), 3));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  const std::vector<std::string> tenants = {"gold", "std",  "free", "bulk",
                                            "acme", "zeta", "nova", "iris"};
  for (const std::string& tenant : tenants) {
    for (uint64_t sequence = 1; sequence <= 2; ++sequence) {
      ASSERT_TRUE(
          fleet->PublishSnapshot(tenant, RandomSnapshot(&rng, sequence)).ok());
    }
  }
  const auto registry = fleet->PublishedRegistry();
  ASSERT_EQ(registry.size(), tenants.size() * 2);

  const size_t iters = TestIters(120);
  for (size_t i = 0; i < iters; ++i) {
    const Query query =
        RandomQuery(&rng, tenants[rng.NextBelow(tenants.size())]);
    const auto answer = fleet->Ask(query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->snapshot_sequence, 2u);  // latest published
    const auto snapshot =
        registry.find({query.tenant, answer->snapshot_sequence});
    ASSERT_NE(snapshot, registry.end());
    EXPECT_TRUE(AnswerMatchesFresh(query, *answer, *snapshot->second))
        << "tenant " << query.tenant << " diverged from a fresh analyzer";
  }
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardFleetTest, RoutingIsDeterministicAndSpreadsTenants) {
  ScopedTempDir dir;
  auto fleet_or = ShardFleet::Start(BaseOptions(dir.path(), 3));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  std::vector<bool> used(fleet->num_shards(), false);
  for (size_t i = 0; i < 64; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const size_t shard = fleet->ShardOf(tenant);
    ASSERT_LT(shard, fleet->num_shards());
    EXPECT_EQ(fleet->ShardOf(tenant), shard);  // stable, no hidden state
    used[shard] = true;
  }
  // 64 tenants over a 3-shard, 16-virtual-node ring: every shard serves.
  for (size_t shard = 0; shard < used.size(); ++shard) {
    EXPECT_TRUE(used[shard]) << "shard " << shard << " owns no tenants";
  }
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardFleetTest, UnknownTenantAndOutOfRangeBucketReturnStatus) {
  const uint64_t seed = TestSeed(20260821);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  auto fleet_or = ShardFleet::Start(BaseOptions(dir.path(), 2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  Query unknown;
  unknown.tenant = "nobody";
  unknown.kind = QueryKind::kDisclosure;
  EXPECT_FALSE(fleet->Ask(unknown).ok());

  // 3 buckets published; probing bucket 99 is a per-query error that must
  // travel back over the wire as a Status, not poison the connection.
  ASSERT_TRUE(fleet->PublishSnapshot("gold", RandomSnapshot(&rng, 1)).ok());
  Query probe;
  probe.tenant = "gold";
  probe.kind = QueryKind::kPerBucket;
  probe.bucket = 99;
  EXPECT_FALSE(fleet->Ask(probe).ok());

  // The link survives both errors: a well-formed query still answers.
  Query fine;
  fine.tenant = "gold";
  fine.kind = QueryKind::kDisclosure;
  fine.k = 2;
  EXPECT_TRUE(fleet->Ask(fine).ok());
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardFleetTest, InFlightWindowShedsWithResourceExhausted) {
  const uint64_t seed = TestSeed(20260822);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  ShardFleetOptions options = BaseOptions(dir.path(), 1);
  options.max_in_flight_per_shard = 4;
  options.test_stall_queries_ms = 200;  // hold queries so the window fills
  auto fleet_or = ShardFleet::Start(options);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();
  ASSERT_TRUE(fleet->PublishSnapshot("gold", RandomSnapshot(&rng, 1)).ok());

  Query query;
  query.tenant = "gold";
  query.kind = QueryKind::kDisclosure;
  query.k = 1;
  std::vector<std::future<StatusOr<QueryAnswer>>> accepted;
  size_t shed = 0;
  for (size_t i = 0; i < 16; ++i) {
    auto submitted = fleet->Submit(query);
    if (submitted.ok()) {
      accepted.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted)
          << submitted.status().ToString();
      ++shed;
    }
  }
  EXPECT_LE(accepted.size(), 4u);  // never more than the window
  EXPECT_GT(shed, 0u);
  for (auto& future : accepted) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const auto answer = future.get();
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  }
  // Window slots freed: the next submit is admitted again.
  EXPECT_TRUE(fleet->Submit(query).ok());
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardFleetTest, PingReportsPublishesTenantsAndAnsweredQueries) {
  const uint64_t seed = TestSeed(20260823);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  auto fleet_or = ShardFleet::Start(BaseOptions(dir.path(), 2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();

  const std::vector<std::string> tenants = {"gold", "std", "free"};
  for (const std::string& tenant : tenants) {
    ASSERT_TRUE(fleet->PublishSnapshot(tenant, RandomSnapshot(&rng, 1)).ok());
    Query query;
    query.tenant = tenant;
    query.kind = QueryKind::kDisclosure;
    query.k = 2;
    ASSERT_TRUE(fleet->Ask(query).ok());
  }

  uint64_t publishes = 0, tenant_count = 0, answered = 0;
  for (size_t shard = 0; shard < fleet->num_shards(); ++shard) {
    const auto stats = fleet->PingShard(shard);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    publishes += stats->publishes;
    tenant_count += stats->tenants;
    answered += stats->answered;
  }
  EXPECT_EQ(publishes, tenants.size());
  EXPECT_EQ(tenant_count, tenants.size());
  EXPECT_EQ(answered, tenants.size());
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

TEST(ShardFleetTest, ShutdownAllStopsServingAndRestartRecovers) {
  const uint64_t seed = TestSeed(20260824);
  SCOPED_TRACE(SeedTrace(seed));
  Rng rng(seed);
  ScopedTempDir dir;
  auto fleet_or = ShardFleet::Start(BaseOptions(dir.path(), 2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  std::unique_ptr<ShardFleet> fleet = std::move(fleet_or).value();
  const auto snapshot = RandomSnapshot(&rng, 1);
  ASSERT_TRUE(fleet->PublishSnapshot("gold", snapshot).ok());

  ASSERT_TRUE(fleet->ShutdownAll().ok());
  for (size_t shard = 0; shard < fleet->num_shards(); ++shard) {
    EXPECT_TRUE(fleet->ShardDown(shard));
  }
  Query query;
  query.tenant = "gold";
  query.kind = QueryKind::kDisclosure;
  EXPECT_FALSE(fleet->Submit(query).ok());  // down => fail fast, no hang

  // Restarting a live shard is a caller error; restarting a down one
  // brings a fresh (empty, in-memory) shard back onto the same socket.
  for (size_t shard = 0; shard < fleet->num_shards(); ++shard) {
    ASSERT_TRUE(fleet->RestartShard(shard).ok());
    EXPECT_FALSE(fleet->ShardDown(shard));
    EXPECT_EQ(fleet->RestartShard(shard).code(),
              StatusCode::kFailedPrecondition);
  }
  // The in-memory shard forgot the tenant; re-adopting the same snapshot
  // (same sequence, same bytes) restores service.
  ASSERT_TRUE(fleet->PublishSnapshot("gold", snapshot).ok());
  query.k = 1;
  const auto answer = fleet->Ask(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(AnswerMatchesFresh(query, *answer, *snapshot));
  EXPECT_TRUE(fleet->ShutdownAll().ok());
}

}  // namespace
}  // namespace cksafe
